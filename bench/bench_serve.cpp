// bench_serve — the point of the serving daemon, measured: a warm
// (cache-hit) evaluation request must cost a small fraction of a cold
// one, because the cold path runs parse -> check -> canonicalize ->
// flatten -> translate -> assemble -> optimize -> verify and the warm
// path runs only the VM.
//
// Acceptance bar (ISSUE 6): warm-request latency < 10% of cold-compile
// latency at the same request. BENCH_serve.json reports both as
// engines "cold" and "warm" plus the concurrent-throughput run
// ("warm-mt", n = requests served), so the claim is machine-checkable.
//
// ISSUE 7 adds the telemetry-overhead pair. "warm"/"warm-notel" is the
// micro pair: the same trivial warm request with and without the
// telemetry wrapper (ServerOptions::telemetry = false), so the
// absolute envelope cost (request id + clocks + histogram lock, a few
// hundred ns) is visible on a request that does nothing else.
// "warm-deep"/"warm-deep-notel" is the representative pair — a warm
// quicksort eval (~300 us of VM work), the kind of request the daemon
// actually serves — and carries the acceptance bar, CI-checked over
// BENCH_serve.json: warm-deep <= warm-deep-notel * 1.02 (the
// unsampled, log-off telemetry path costs < 2% of a real warm eval).
// The warm runs' metrics now carry serve.eval.duration_us.p50/.p99
// (flattened histogram summaries).
#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"

namespace {

using namespace proteus;
using namespace proteus::bench;

// Large enough that compilation visibly dominates a single evaluation:
// several mutually recursive nested-parallel functions (the same shape
// the Section 6 workloads use), evaluated on a tiny input.
const char* kProgram = R"(
  fun quicksort(v: seq(int)): seq(int) =
    if #v <= 1 then v
    else
      let pivot = v[1 + (#v / 2)] in
      let parts = [p <- [[x <- v | x < pivot : x],
                         [x <- v | x > pivot : x]] : quicksort(p)] in
      parts[1] ++ [x <- v | x == pivot : x] ++ parts[2]
  fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]
  fun total(xs: seq(seq(int))): int = sum([x <- xs : sum(x)])
  fun smallest(v: seq(int), k: int): seq(int) =
    [i <- [1 .. k] : quicksort(v)[i]]
  fun sq(n: int): int = n * n
)";

const char* kEvalLine =
    "{\"op\":\"eval\",\"source\":\"fun sq(n: int): int = n * n\","
    "\"fun\":\"sq\",\"args\":[\"12\"]}";

// The measured request evaluates the CHEAP function of the expensive
// program: the cold/warm delta is then almost entirely the pipeline the
// cache skips, not the evaluation both paths share.
std::string eval_request(int n) {
  return std::string("{\"op\":\"eval\",\"source\":") +
         serve::Json(std::string(kProgram)).dump() +
         ",\"fun\":\"sq\",\"args\":[\"" + std::to_string(n) + "\"]}";
}

/// Cold request: every iteration gets a FRESH server, so the eval pays
/// the whole pipeline. This is the denominator of the 10% bar.
void BM_serve_cold(benchmark::State& state) {
  const std::string line = eval_request(3);
  obs::MetricsRegistry last;
  const std::uint64_t best = best_wall_ns(state, [&] {
    serve::Server server;
    benchmark::DoNotOptimize(server.handle_line(line));
    last = server.metrics();
  });
  JsonReporter::instance().record("serve", "cold", state.range(0), best,
                                  last);
}

/// Warm request: same server, same request — after the first hit the
/// cache serves it, so only argument parsing + the VM run remain.
void BM_serve_warm(benchmark::State& state) {
  serve::Server server;
  const std::string line = eval_request(3);
  benchmark::DoNotOptimize(server.handle_line(line));  // prime the cache
  const std::uint64_t best = best_wall_ns(state, [&] {
    benchmark::DoNotOptimize(server.handle_line(line));
  });
  JsonReporter::instance().record("serve", "warm", state.range(0), best,
                                  server.metrics());
}

/// Warm request with the telemetry wrapper off: the PR 6 request path
/// exactly (no request ids, histograms, logs, or sampling). Against
/// BM_serve_warm this shows the absolute envelope cost on a request
/// that does nothing else.
void BM_serve_warm_notel(benchmark::State& state) {
  serve::ServerOptions options;
  options.telemetry = false;
  serve::Server server(options);
  const std::string line = eval_request(3);
  benchmark::DoNotOptimize(server.handle_line(line));  // prime the cache
  const std::uint64_t best = best_wall_ns(state, [&] {
    benchmark::DoNotOptimize(server.handle_line(line));
  });
  JsonReporter::instance().record("serve", "warm-notel", state.range(0), best,
                                  server.metrics());
}

/// A representative warm request: quicksort of `n` ints through the
/// cached VM — hundreds of microseconds of real evaluation, the
/// denominator of the < 2% telemetry-overhead bar.
std::string quicksort_request(int n) {
  std::string args = "[";
  for (int i = 0; i < n; ++i) {
    args += std::to_string((i * 37) % 101);
    if (i + 1 < n) args += ",";
  }
  args += "]";
  return std::string("{\"op\":\"eval\",\"source\":") +
         serve::Json(std::string(kProgram)).dump() +
         ",\"fun\":\"quicksort\",\"args\":[" + serve::Json(args).dump() + "]}";
}

/// Both warm-deep variants measured round-robin in ONE loop: the true
/// telemetry overhead is sub-0.1% at this request size, so the two
/// variants must see the same frequency scaling and machine load for
/// the CI ratio check (warm-deep <= warm-deep-notel * 1.02) to be
/// meaningful.
void BM_serve_warm_deep(benchmark::State& state) {
  const std::string line = quicksort_request(static_cast<int>(state.range(0)));
  serve::Server with_telemetry;
  serve::ServerOptions notel_options;
  notel_options.telemetry = false;
  serve::Server without_telemetry(notel_options);
  benchmark::DoNotOptimize(with_telemetry.handle_line(line));     // prime
  benchmark::DoNotOptimize(without_telemetry.handle_line(line));  // prime

  std::uint64_t best_with = UINT64_MAX;
  std::uint64_t best_without = UINT64_MAX;
  const auto timed = [&](serve::Server& server) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(server.handle_line(line));
    const auto dt = std::chrono::steady_clock::now() - t0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count());
  };
  bool with_first = true;
  for (auto _ : state) {
    // ABBA ordering: alternate which variant goes first so a monotonic
    // drift (frequency ramp, thermal throttle) cancels out of the ratio.
    if (with_first) {
      best_with = std::min(best_with, timed(with_telemetry));
      best_without = std::min(best_without, timed(without_telemetry));
    } else {
      best_without = std::min(best_without, timed(without_telemetry));
      best_with = std::min(best_with, timed(with_telemetry));
    }
    with_first = !with_first;
  }
  JsonReporter::instance().record("serve", "warm-deep", state.range(0),
                                  best_with, with_telemetry.metrics());
  JsonReporter::instance().record("serve", "warm-deep-notel", state.range(0),
                                  best_without, without_telemetry.metrics());
}

/// ISSUE 10 acceptance pair: the hardened configuration (bounded
/// admission, connection deadlines, drain support — every overload &
/// lifecycle knob set to a non-default value) against the stock
/// defaults, on the same representative warm quicksort request. The
/// hardening lives on the transport loop (admission check, poll-sliced
/// reads, lifecycle atomics); the request path itself only gains a few
/// relaxed atomic loads, and this pair proves it: CI checks
/// warm-hard <= warm-hard-base * 1.02 over BENCH_serve.json. Same ABBA
/// round-robin as BM_serve_warm_deep so both variants see identical
/// machine conditions.
void BM_serve_warm_hardened(benchmark::State& state) {
  const std::string line = quicksort_request(static_cast<int>(state.range(0)));
  serve::ServerOptions hard_options;
  hard_options.max_queue = 8;
  hard_options.max_conns = 32;
  hard_options.idle_timeout_ms = 1000;
  hard_options.io_timeout_ms = 250;
  hard_options.max_line_bytes = 1u << 20;
  hard_options.drain_ms = 500;
  hard_options.retry_after_ms = 25;
  serve::Server hardened(hard_options);
  serve::Server baseline;
  benchmark::DoNotOptimize(hardened.handle_line(line));  // prime
  benchmark::DoNotOptimize(baseline.handle_line(line));  // prime

  std::uint64_t best_hard = UINT64_MAX;
  std::uint64_t best_base = UINT64_MAX;
  const auto timed = [&](serve::Server& server) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(server.handle_line(line));
    const auto dt = std::chrono::steady_clock::now() - t0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count());
  };
  bool hard_first = true;
  for (auto _ : state) {
    if (hard_first) {
      best_hard = std::min(best_hard, timed(hardened));
      best_base = std::min(best_base, timed(baseline));
    } else {
      best_base = std::min(best_base, timed(baseline));
      best_hard = std::min(best_hard, timed(hardened));
    }
    hard_first = !hard_first;
  }
  JsonReporter::instance().record("serve", "warm-hard", state.range(0),
                                  best_hard, hardened.metrics());
  JsonReporter::instance().record("serve", "warm-hard-base", state.range(0),
                                  best_base, baseline.metrics());
}

/// Concurrent warm throughput: `threads` workers hammer one server with
/// cache-hitting requests; reported wall_ns is for the WHOLE batch and
/// n is the number of requests served, so requests/second falls out.
void BM_serve_warm_concurrent(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr int kPerThread = 50;
  serve::Server server;
  benchmark::DoNotOptimize(server.handle_line(kEvalLine));
  const std::uint64_t best = best_wall_ns(state, [&] {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&server] {
        for (int i = 0; i < kPerThread; ++i) {
          benchmark::DoNotOptimize(server.handle_line(kEvalLine));
        }
      });
    }
    for (std::thread& t : pool) t.join();
  });
  state.SetItemsProcessed(state.iterations() * threads * kPerThread);
  JsonReporter::instance().record("serve", "warm-mt", threads * kPerThread,
                                  best, server.metrics());
}

BENCHMARK(BM_serve_cold)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_serve_warm)->Arg(1)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_serve_warm_notel)->Arg(1)->Unit(benchmark::kMicrosecond);
// Explicit MinTime so the CI smoke-run's --benchmark_min_time=0.01
// can't starve the best-of floors the ratio check depends on.
BENCHMARK(BM_serve_warm_deep)
    ->Arg(64)
    ->MinTime(0.5)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_serve_warm_hardened)
    ->Arg(64)
    ->MinTime(0.5)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_serve_warm_concurrent)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
