// bench_vl_primitives — per-primitive throughput of the flat vector
// library (the CVL substrate), including the segmented variants that carry
// the flattening translation. Corresponds to the primitive-level tables of
// the CVL report [BCS+90] the paper targets.
//
// Expected shape: elementwise/scan/reduce throughput is flat in n
// (bandwidth bound); segmented variants track their unsegmented
// counterparts (the whole point of the segmented representation).
#include <benchmark/benchmark.h>

#include "seq/build.hpp"
#include "vl/vl.hpp"

namespace {

using namespace proteus;
using vl::Int;
using vl::IntVec;
using vl::Size;

IntVec data(Size n) { return seq::random_ints(7, n, -1000, 1000); }

/// Segment lengths averaging 8 covering n elements.
IntVec segments(Size n) {
  IntVec lens;
  Size covered = 0;
  std::uint64_t x = 12345;
  while (covered < n) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    Int len = static_cast<Int>(x >> 60);  // 0..15
    if (covered + len > n) len = n - covered;
    lens.push_back(len);
    covered += len;
  }
  return lens;
}

void BM_elementwise_add(benchmark::State& state) {
  IntVec a = data(state.range(0));
  IntVec b = data(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(vl::add(a, b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_elementwise_select(benchmark::State& state) {
  IntVec a = data(state.range(0));
  IntVec b = data(state.range(0));
  vl::BoolVec m = seq::random_mask(3, state.range(0), 1, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vl::select(m, a, b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_scan_add(benchmark::State& state) {
  IntVec a = data(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(vl::scan_add(a));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_seg_scan_add(benchmark::State& state) {
  IntVec a = data(state.range(0));
  IntVec lens = segments(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(vl::seg_scan_add(a, lens));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_reduce_add(benchmark::State& state) {
  IntVec a = data(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(vl::reduce_add(a));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_seg_reduce_add(benchmark::State& state) {
  IntVec a = data(state.range(0));
  IntVec lens = segments(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(vl::seg_reduce_add(a, lens));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_gather(benchmark::State& state) {
  IntVec a = data(state.range(0));
  IntVec idx = seq::random_ints(9, state.range(0), 0, state.range(0) - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vl::gather(a, idx));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_pack(benchmark::State& state) {
  IntVec a = data(state.range(0));
  vl::BoolVec m = seq::random_mask(5, state.range(0), 1, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vl::pack(a, m));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_combine(benchmark::State& state) {
  vl::BoolVec m = seq::random_mask(5, state.range(0), 1, 2);
  Size trues = vl::count(m);
  IntVec t = data(trues);
  IntVec f = data(state.range(0) - trues);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vl::combine(m, t, f));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_seg_iota1(benchmark::State& state) {
  IntVec lens = segments(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(vl::seg_iota1(lens));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_seg_dist(benchmark::State& state) {
  IntVec lens = segments(state.range(0));
  IntVec vals = data(lens.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(vl::seg_dist(vals, lens));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

constexpr int kLo = 1 << 10;
constexpr int kHi = 1 << 21;

BENCHMARK(BM_elementwise_add)->Range(kLo, kHi);
BENCHMARK(BM_elementwise_select)->Range(kLo, kHi);
BENCHMARK(BM_scan_add)->Range(kLo, kHi);
BENCHMARK(BM_seg_scan_add)->Range(kLo, kHi);
BENCHMARK(BM_reduce_add)->Range(kLo, kHi);
BENCHMARK(BM_seg_reduce_add)->Range(kLo, kHi);
BENCHMARK(BM_gather)->Range(kLo, kHi);
BENCHMARK(BM_pack)->Range(kLo, kHi);
BENCHMARK(BM_combine)->Range(kLo, kHi);
BENCHMARK(BM_seg_iota1)->Range(kLo, kHi);
BENCHMARK(BM_seg_dist)->Range(kLo, kHi);

}  // namespace

BENCHMARK_MAIN();
