// bench_fig3_fd_translation — Figure 3 / rule T1: a depth-d parallel
// extension f^d runs as extract + f^1 + insert. Measures the realized
// cost of mult^d against (a) the flat mult^1 on the same data (the T1
// overhead should be the constant-ish spine surgery) and (b) a boxed
// per-element evaluation of the same frame (the serial baseline).
//
// Expected shape: f^d cost ~= f^1 cost, independent of d; the boxed
// traversal is several times slower and degrades with depth.
#include <benchmark/benchmark.h>

#include <functional>

#include "exec/prims.hpp"
#include "interp/value.hpp"
#include "lang/types.hpp"
#include "seq/seq.hpp"
#include "vl/vl.hpp"

namespace {

using namespace proteus;
using exec::VValue;
using seq::Array;

constexpr std::int64_t kTop = 256;

/// A depth-d frame of ints with ~4 kTop leaves.
VValue frame_of_depth(int d) {
  return VValue::seq(seq::random_nested_ints(31, d - 1, kTop, 4));
}

void BM_mult_d_via_T1(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  VValue v = frame_of_depth(d);
  for (auto _ : state) {
    // T1: insert(mult^1(extract(v,d-1), extract(v,d-1)), v, d-1)
    VValue flat = exec::apply_prim0(
        lang::Prim::kExtract, {v, VValue::ints(d - 1)});
    VValue squared =
        exec::apply_prim1(lang::Prim::kMul, {flat, flat}, {1, 1});
    benchmark::DoNotOptimize(exec::apply_prim0(
        lang::Prim::kInsert, {squared, v, VValue::ints(d - 1)}));
  }
  state.counters["leaves"] =
      static_cast<double>(v.as_seq().leaf_count());
}

void BM_mult_1_flat_baseline(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  VValue v = frame_of_depth(d);
  VValue flat =
      exec::apply_prim0(lang::Prim::kExtract, {v, VValue::ints(d - 1)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exec::apply_prim1(lang::Prim::kMul, {flat, flat}, {1, 1}));
  }
}

void BM_mult_d_boxed_traversal(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  VValue v = frame_of_depth(d);
  auto type = lang::Type::seq_n(lang::Type::int_(), d);
  interp::Value boxed = exec::to_boxed(v, type);

  // per-element recursive traversal (the serial per-element view)
  std::function<interp::Value(const interp::Value&, int)> walk =
      [&](const interp::Value& x, int depth) -> interp::Value {
    if (depth == 0) return interp::Value::ints(x.as_int() * x.as_int());
    interp::ValueList out;
    out.reserve(x.as_seq().size());
    for (const interp::Value& c : x.as_seq()) {
      out.push_back(walk(c, depth - 1));
    }
    return interp::Value::seq(std::move(out));
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(walk(boxed, d));
  }
}

BENCHMARK(BM_mult_d_via_T1)->DenseRange(1, 5);
BENCHMARK(BM_mult_1_flat_baseline)->DenseRange(1, 5);
BENCHMARK(BM_mult_d_boxed_traversal)->DenseRange(1, 5);

}  // namespace

BENCHMARK_MAIN();
