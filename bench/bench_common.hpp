// bench_common.hpp — shared programs and input builders for the
// reproduction benches. Every bench reports, besides wall time, the
// machine-independent cost counters the Proteus methodology is about:
//   work   — vector-model element work (vl element touches)
//   prims  — vector primitives issued (the "step" count)
//   iters  — reference-interpreter iterator body evaluations
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/proteus.hpp"
#include "core/report.hpp"

namespace proteus::bench {

inline interp::Value random_int_seq(std::uint64_t seed, int n, vl::Int lo,
                                    vl::Int hi) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<vl::Int> dist(lo, hi);
  interp::ValueList elems;
  elems.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    elems.push_back(interp::Value::ints(dist(rng)));
  }
  return interp::Value::seq(std::move(elems));
}

/// Ragged collection with the given per-row lengths.
inline interp::Value ragged(std::uint64_t seed,
                            const std::vector<int>& row_lengths) {
  interp::ValueList rows;
  rows.reserve(row_lengths.size());
  for (std::size_t r = 0; r < row_lengths.size(); ++r) {
    rows.push_back(random_int_seq(seed + r, row_lengths[r], -1000, 1000));
  }
  return interp::Value::seq(std::move(rows));
}

/// Row-length profiles for the irregularity benches.
inline std::vector<int> uniform_rows(int rows, int len) {
  return std::vector<int>(static_cast<std::size_t>(rows), len);
}

inline std::vector<int> skewed_rows(std::uint64_t seed, int rows, int total) {
  // Power-law-ish skew: a few rows get most of the elements.
  std::mt19937_64 rng(seed);
  std::vector<int> lens(static_cast<std::size_t>(rows), 1);
  int remaining = total - rows;
  while (remaining > 0) {
    std::size_t r = rng() % lens.size();
    int grab = std::min<int>(remaining, 1 + static_cast<int>(rng() % 64));
    // concentrate on the first few rows half the time
    if (rng() % 2 == 0) r %= std::max<std::size_t>(1, lens.size() / 16);
    lens[r] += grab;
    remaining -= grab;
  }
  return lens;
}

inline std::vector<int> one_giant_rows(int rows, int total) {
  std::vector<int> lens(static_cast<std::size_t>(rows), 1);
  lens[0] = total - (rows - 1);
  return lens;
}

/// Attaches the cost counters of the session's last run.
inline void report_cost(::benchmark::State& state, const Session& session) {
  const RunCost& c = session.last_cost();
  state.counters["work"] =
      static_cast<double>(c.vector_work.element_work);
  state.counters["prims"] =
      static_cast<double>(c.vector_work.primitive_calls);
  state.counters["segments"] =
      static_cast<double>(c.vector_work.segment_work);
}

inline void report_interp_cost(::benchmark::State& state,
                               const Session& session) {
  state.counters["iters"] =
      static_cast<double>(session.last_cost().reference.iterations);
  state.counters["scalar_ops"] =
      static_cast<double>(session.last_cost().reference.scalar_ops);
}

inline const char* backend_name() {
  return vl::backend() == vl::Backend::kOpenMP ? "openmp" : "serial";
}

/// Times `fn` once per benchmark iteration and returns the best (minimum)
/// wall-clock nanoseconds observed — the usual noise-resistant estimator
/// for machine-readable reports.
template <class Fn>
inline std::uint64_t best_wall_ns(::benchmark::State& state, Fn&& fn) {
  std::uint64_t best = UINT64_MAX;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto dt = std::chrono::steady_clock::now() - t0;
    best = std::min(best, static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
  }
  return best;
}

/// Machine-readable bench output: accumulates one record per measured
/// run and, at process exit, writes a BENCH_<workload>.json file per
/// workload into the current directory:
///
///   {"bench": "<workload>", "schema": 1,
///    "runs": [{"engine": "...", "backend": "...", "n": N,
///              "wall_ns": T, "metrics": {"vl.element_work": ..., ...}},
///             ...]}
///
/// `metrics` is the session's unified per-run registry (the same names
/// `proteusc --stats=json` emits), so work / steps / per-primitive
/// counters ride along with the wall-clock numbers.
class JsonReporter {
 public:
  static JsonReporter& instance() {
    static JsonReporter reporter;
    return reporter;
  }

  void record(const std::string& workload, std::string_view engine,
              std::int64_t n, std::uint64_t wall_ns,
              const Session& session) {
    record(workload, engine, n, wall_ns, session.last_cost().metrics);
  }

  /// For benches whose unit of measurement is not a Session run (e.g.
  /// bench_serve reports the daemon's serve.* counters instead).
  void record(const std::string& workload, std::string_view engine,
              std::int64_t n, std::uint64_t wall_ns,
              const obs::MetricsRegistry& metrics) {
    std::ostringstream os;
    os << "{\"engine\":\"" << engine << "\",\"backend\":\""
       << backend_name() << "\",\"n\":" << n << ",\"wall_ns\":" << wall_ns
       << ",\"metrics\":";
    metrics.write_json(os);
    os << '}';
    // google-benchmark re-enters the bench function while calibrating the
    // iteration count; keep only the final (longest-running) measurement
    // of each configuration.
    std::ostringstream key;
    key << engine << '/' << backend_name() << '/' << n;
    auto& runs = runs_[workload];
    for (auto& [k, json] : runs) {
      if (k == key.str()) {
        json = os.str();
        return;
      }
    }
    runs.emplace_back(key.str(), os.str());
  }

  ~JsonReporter() {
    for (const auto& [workload, runs] : runs_) {
      std::ofstream out("BENCH_" + workload + ".json");
      if (!out) continue;
      out << "{\"bench\":\"" << workload << "\",\"schema\":1,\"runs\":[";
      for (std::size_t i = 0; i < runs.size(); ++i) {
        if (i > 0) out << ',';
        out << runs[i].second;
      }
      out << "]}\n";
    }
  }

 private:
  JsonReporter() = default;
  std::map<std::string,
           std::vector<std::pair<std::string, std::string>>> runs_;
};

}  // namespace proteus::bench
