// bench_sec6_quicksort — Section 6: "recursive parallel computations (as
// found, for example, in parallel divide-and-conquer algorithms)".
//
// Flattened parallel quicksort across n and key distributions, on both
// engines, plus std::sort as the absolute yardstick. The shape that must
// hold: vector primitives ~ O(recursion depth); element work ~ O(n log n);
// the vector executor beats the per-element interpreter by a widening
// factor; sorted/equal-key inputs change depth, not correctness.
#include <algorithm>

#include "bench_common.hpp"

namespace {

using namespace proteus;
using namespace proteus::bench;

const char* kProgram = R"(
  fun quicksort(v: seq(int)): seq(int) =
    if #v <= 1 then v
    else
      let pivot = v[1 + (#v / 2)] in
      let parts = [p <- [[x <- v | x < pivot : x],
                         [x <- v | x > pivot : x]] : quicksort(p)] in
      parts[1] ++ [x <- v | x == pivot : x] ++ parts[2]

  fun sortall(m: seq(seq(int))): seq(seq(int)) = [row <- m : quicksort(row)]
)";

interp::Value keys(std::int64_t n, const std::string& mode) {
  if (mode == "sorted") {
    interp::ValueList v;
    for (std::int64_t i = 0; i < n; ++i) {
      v.push_back(interp::Value::ints(i));
    }
    return interp::Value::seq(std::move(v));
  }
  if (mode == "fewkeys") {
    return random_int_seq(3, static_cast<int>(n), 0, 7);
  }
  return random_int_seq(3, static_cast<int>(n), 0, 1 << 30);
}

void quicksort_vector(benchmark::State& state, const std::string& mode) {
  Session session(kProgram);
  interp::Value input = keys(state.range(0), mode);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run_vector("quicksort", {input}));
  }
  report_cost(state, session);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_quicksort_vector_random(benchmark::State& state) {
  quicksort_vector(state, "random");
}
void BM_quicksort_vector_sorted(benchmark::State& state) {
  quicksort_vector(state, "sorted");
}
void BM_quicksort_vector_fewkeys(benchmark::State& state) {
  quicksort_vector(state, "fewkeys");
}

void BM_quicksort_interp_random(benchmark::State& state) {
  Session session(kProgram);
  interp::Value input = keys(state.range(0), "random");
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run_reference("quicksort", {input}));
  }
  report_interp_cost(state, session);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_std_sort_yardstick(benchmark::State& state) {
  seq::IntVec raw =
      seq::random_ints(3, state.range(0), 0, 1 << 30);
  for (auto _ : state) {
    seq::IntVec copy = raw;
    std::sort(copy.begin(), copy.end());
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_sortall_ragged_vector(benchmark::State& state) {
  Session session(kProgram);
  interp::Value m =
      ragged(9, skewed_rows(11, 64, static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run_vector("sortall", {m}));
  }
  report_cost(state, session);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

BENCHMARK(BM_quicksort_vector_random)->RangeMultiplier(4)->Range(256, 16384);
BENCHMARK(BM_quicksort_vector_sorted)->RangeMultiplier(4)->Range(256, 4096);
BENCHMARK(BM_quicksort_vector_fewkeys)->RangeMultiplier(4)->Range(256, 16384);
BENCHMARK(BM_quicksort_interp_random)->RangeMultiplier(4)->Range(256, 16384);
BENCHMARK(BM_std_sort_yardstick)->RangeMultiplier(4)->Range(256, 16384);
BENCHMARK(BM_sortall_ragged_vector)->RangeMultiplier(4)->Range(1024, 16384);

}  // namespace

BENCHMARK_MAIN();
