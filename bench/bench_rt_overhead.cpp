// bench_rt_overhead — cost of the always-on execution governor.
//
// Every vl allocation charges resident bytes and every kernel charges
// element work against the governor. With no budget installed the charge
// paths are one relaxed atomic op plus a predictable branch; with a
// budget installed (but never tripped) each charge also runs the limit
// comparison. The acceptance bar: the *governed-but-untripped* quicksort
// at n = 100k must be within 3% of the ungoverned run on both engines
// (compare BM_quicksort_*_governed against BM_quicksort_* in the same
// invocation — same build, same input, back to back).
#include "bench_common.hpp"

#include "rt/rt.hpp"

namespace {

using namespace proteus;
using namespace proteus::bench;

const char* kProgram = R"(
  fun quicksort(v: seq(int)): seq(int) =
    if #v <= 1 then v
    else
      let pivot = v[1 + (#v / 2)] in
      let parts = [p <- [[x <- v | x < pivot : x],
                         [x <- v | x > pivot : x]] : quicksort(p)] in
      parts[1] ++ [x <- v | x == pivot : x] ++ parts[2]
)";

/// A budget loose enough that a 100k-element quicksort never comes close:
/// measures pure bookkeeping, not trap handling.
rt::ExecBudget generous_budget() {
  rt::ExecBudget b;
  b.max_resident_bytes = 1ull << 40;
  b.max_steps = 1ull << 50;
  b.max_depth = 1 << 20;
  b.deadline_ms = 0;  // no deadline: the strided clock check stays off
  return b;
}

void quicksort_run(benchmark::State& state, const std::string& engine,
                   bool governed) {
  Session session(kProgram);
  if (governed) session.set_budget(generous_budget());
  interp::Value input =
      random_int_seq(3, static_cast<int>(state.range(0)), 0, 1 << 30);

  const std::uint64_t best = best_wall_ns(state, [&] {
    if (engine == "vm") {
      benchmark::DoNotOptimize(session.run_vm("quicksort", {input}));
    } else {
      benchmark::DoNotOptimize(session.run_vector("quicksort", {input}));
    }
  });
  report_cost(state, session);
  state.SetItemsProcessed(state.iterations() * state.range(0));
  JsonReporter::instance().record(
      "rt_overhead", governed ? engine + "-governed" : engine,
      state.range(0), best, session);
}

void BM_quicksort_vec(benchmark::State& s) { quicksort_run(s, "vec", false); }
void BM_quicksort_vec_governed(benchmark::State& s) {
  quicksort_run(s, "vec", true);
}
void BM_quicksort_vm(benchmark::State& s) { quicksort_run(s, "vm", false); }
void BM_quicksort_vm_governed(benchmark::State& s) {
  quicksort_run(s, "vm", true);
}

BENCHMARK(BM_quicksort_vec)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_quicksort_vec_governed)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_quicksort_vm)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_quicksort_vm_governed)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
