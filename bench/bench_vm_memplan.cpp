// bench_vm_memplan — the plan-backed arena allocator (Session::set_arena)
// against the default per-Vec heap path on the bytecode VM (-O1, warm).
//
// Two workload families bracket the analyzer:
//
//   quicksort  — recursive divide-and-conquer that churns same-sized
//                intermediate buffers (the arena's best case: freed
//                partitions are recycled into the next level's builds,
//                so vl.buffer_allocs should drop by >= 50%); its plan
//                bound is "unbounded" (recursion), so the record also
//                documents that admission stays inert;
//   fma_chain  — a flat elementwise map whose plan carries a finite
//                affine peak bound, checked here against the governor's
//                observed resident-byte watermark (bound >= observed is
//                the soundness claim admission control relies on).
//
// Each record in BENCH_vm_memplan.json carries, besides wall time and
// the usual vl.* registry (including vl.buffer_allocs and the
// vl.arena.* family), three plan fields:
//
//   plan.bounded              1 if the function's peak bound is finite
//   plan.peak_bound_bytes     the bound evaluated at this run's N (0 if
//                             unbounded)
//   rt.peak_resident_bytes    the governor's watermark for the last run
//
// so the CI gate can assert both the >= 50% allocation drop and
// bound >= observed without re-running anything.
#include <cstdint>
#include <string>

#include "analysis/lifetime.hpp"
#include "bench_common.hpp"
#include "rt/rt.hpp"

namespace {

using namespace proteus;
using namespace proteus::bench;

const char* kQuicksort = R"(
  fun quicksort(v: seq(int)): seq(int) =
    if #v <= 1 then v
    else
      let pivot = v[1 + (#v / 2)] in
      let parts = [p <- [[x <- v | x < pivot : x],
                         [x <- v | x > pivot : x]] : quicksort(p)] in
      parts[1] ++ [x <- v | x == pivot : x] ++ parts[2]
)";

const char* kFmaChain = R"(
  fun fma_chain(v: seq(int)): seq(int) =
    [x <- v : (x * 3 + 1) * (x - 2) + x * x]
)";

/// Runs `fn(arg)` on the VM with the arena off or on, under a generous
/// (never-tripping) budget so the governor's resident watermark is
/// exact, and records wall time + the plan fields described above.
void run_memplan(benchmark::State& state, const char* source,
                 const std::string& fn, bool arena) {
  const auto n = static_cast<int>(state.range(0));
  interp::Value input = random_int_seq(11, n, 0, 1 << 30);
  Session session(source);
  session.set_arena(arena);
  rt::ExecBudget budget;
  budget.max_resident_bytes = 1ull << 32;  // governs; never trips
  session.set_budget(budget);

  const std::uint64_t best = best_wall_ns(state, [&] {
    rt::reset_peak_resident_bytes();
    interp::Value v = session.run_vm(fn, {input});
    benchmark::DoNotOptimize(v);
  });
  const std::uint64_t observed = rt::peak_resident_bytes();

  // The function's static peak bound, evaluated at this run's input
  // scale (N = leaf scalars in the argument list = n here).
  const auto& module = *session.compiled().module;
  const auto it = module.fn_index.find(fn);
  analysis::SymBound bound = analysis::SymBound::top();
  if (module.plan != nullptr && it != module.fn_index.end()) {
    bound = module.plan->functions[it->second].peak_bytes;
  }

  report_cost(state, session);
  state.counters["buffer_allocs"] = static_cast<double>(
      session.last_cost().vector_work.buffer_allocs);
  state.counters["arena_recycled"] = static_cast<double>(
      session.last_cost().vector_work.arena_recycled);
  state.counters["peak_resident"] = static_cast<double>(observed);
  state.SetItemsProcessed(state.iterations() * state.range(0));

  obs::MetricsRegistry metrics = session.last_cost().metrics;
  metrics.set("plan.bounded", bound.is_top() ? 0 : 1);
  metrics.set("plan.peak_bound_bytes",
              bound.is_top() ? 0 : bound.eval(static_cast<std::uint64_t>(n)));
  metrics.set("rt.peak_resident_bytes", observed);
  JsonReporter::instance().record("vm_memplan",
                                  arena ? "vm-arena" : "vm-heap",
                                  state.range(0), best, metrics);
}

void BM_quicksort_heap(benchmark::State& s) {
  run_memplan(s, kQuicksort, "quicksort", false);
}
void BM_quicksort_arena(benchmark::State& s) {
  run_memplan(s, kQuicksort, "quicksort", true);
}
void BM_fma_chain_heap(benchmark::State& s) {
  run_memplan(s, kFmaChain, "fma_chain", false);
}
void BM_fma_chain_arena(benchmark::State& s) {
  run_memplan(s, kFmaChain, "fma_chain", true);
}

// The acceptance bar: >= 50% fewer buffer allocations on quicksort at
// n = 100k with bit-identical output (the identity is asserted by
// tests/vm/memplan_test.cpp; this bench records the counts).
BENCHMARK(BM_quicksort_heap)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_quicksort_arena)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_fma_chain_heap)->Arg(1000000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_fma_chain_arena)->Arg(1000000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
