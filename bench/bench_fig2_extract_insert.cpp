// bench_fig2_extract_insert — Figure 2 / Section 4.5: "it is critically
// important that the insert and extract operations have minimal overhead.
// The ... representation ... was chosen specifically because those
// operations can be implemented inexpensively."
//
// Expected shape: extract/insert cost depends on the *descriptor spine*
// only — constant in leaf count, linear in depth — while a naive data
// restructure (rebuilding through a gather) is linear in the data.
#include <benchmark/benchmark.h>

#include "seq/seq.hpp"
#include "vl/vl.hpp"

namespace {

using namespace proteus;
using seq::Array;

Array deep(std::int64_t leaves_scale, int depth) {
  return seq::random_nested_ints(21, depth, leaves_scale, 4);
}

void BM_extract_vs_leafcount(benchmark::State& state) {
  Array a = deep(state.range(0), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::extract(a, 3));
  }
  state.counters["leaves"] = static_cast<double>(a.leaf_count());
}

void BM_insert_vs_leafcount(benchmark::State& state) {
  Array a = deep(state.range(0), 4);
  Array flat = seq::extract(a, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::insert(flat, a, 3));
  }
  state.counters["leaves"] = static_cast<double>(a.leaf_count());
}

void BM_extract_insert_roundtrip_vs_depth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Array a = deep(64, depth);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::insert(seq::extract(a, depth), a, depth));
  }
}

void BM_naive_restructure_for_comparison(benchmark::State& state) {
  // What extract would cost if it copied: materialize the flattened data
  // through an explicit gather.
  Array a = deep(state.range(0), 4);
  Array flat = seq::extract(a, 3);
  vl::IntVec idx = vl::iota(flat.length(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::gather(flat, idx));
  }
  state.counters["leaves"] = static_cast<double>(a.leaf_count());
}

BENCHMARK(BM_extract_vs_leafcount)->Range(1 << 4, 1 << 14);
BENCHMARK(BM_insert_vs_leafcount)->Range(1 << 4, 1 << 14);
BENCHMARK(BM_extract_insert_roundtrip_vs_depth)->DenseRange(1, 8);
BENCHMARK(BM_naive_restructure_for_comparison)->Range(1 << 4, 1 << 14);

}  // namespace

BENCHMARK_MAIN();
