// bench_sec6_higher_order — Section 6: "high-order parallel function
// application (as found in the parallel reduction of a sequence of values
// using an arbitrary function)". Also exercises the translation of
// function values, which the paper singles out as going beyond NESL/
// Paralation-Lisp flattening.
//
// A user-defined fold parameterized by a function value runs (a) at top
// level, (b) in parallel over every row of a ragged collection — the
// function value is broadcast, the fold's recursion is flattened.
#include "bench_common.hpp"

namespace {

using namespace proteus;
using namespace proteus::bench;

const char* kProgram = R"(
  fun add2(a: int, b: int): int = a + b
  fun max2(a: int, b: int): int = if a > b then a else b
  fun fold(f: (int,int) -> int, z: int, v: seq(int)): int =
    if #v == 0 then z
    else f(fold(f, z, [i <- [1 .. #v - 1] : v[i]]), v[#v])
  fun foldrows(m: seq(seq(int))): seq(int) =
    [row <- m : fold(add2, 0, row)]
  fun maxrows(m: seq(seq(int))): seq(int) =
    [row <- m : fold(max2, -1000000, row)]
  // the built-in reduction as the flat comparison point
  fun sumrows(m: seq(seq(int))): seq(int) = [row <- m : sum(row)]
)";

void BM_fold_rows_vector(benchmark::State& state) {
  Session session(kProgram);
  interp::Value m =
      ragged(3, uniform_rows(static_cast<int>(state.range(0)), 16));
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run_vector("foldrows", {m}));
  }
  report_cost(state, session);
  state.SetItemsProcessed(state.iterations() * state.range(0) * 16);
}

void BM_fold_rows_interp(benchmark::State& state) {
  Session session(kProgram);
  interp::Value m =
      ragged(3, uniform_rows(static_cast<int>(state.range(0)), 16));
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run_reference("foldrows", {m}));
  }
  report_interp_cost(state, session);
  state.SetItemsProcessed(state.iterations() * state.range(0) * 16);
}

void BM_max_fold_rows_vector(benchmark::State& state) {
  Session session(kProgram);
  interp::Value m =
      ragged(5, uniform_rows(static_cast<int>(state.range(0)), 16));
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run_vector("maxrows", {m}));
  }
  report_cost(state, session);
}

void BM_builtin_sum_rows_vector(benchmark::State& state) {
  // Section 4.5's point about enlarging the predefined set: the built-in
  // segmented reduction versus the general flattened fold.
  Session session(kProgram);
  interp::Value m =
      ragged(3, uniform_rows(static_cast<int>(state.range(0)), 16));
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run_vector("sumrows", {m}));
  }
  report_cost(state, session);
}

BENCHMARK(BM_fold_rows_vector)->RangeMultiplier(4)->Range(16, 1024);
BENCHMARK(BM_fold_rows_interp)->RangeMultiplier(4)->Range(16, 1024);
BENCHMARK(BM_max_fold_rows_vector)->RangeMultiplier(4)->Range(16, 1024);
BENCHMARK(BM_builtin_sum_rows_vector)->RangeMultiplier(4)->Range(16, 1024);

}  // namespace

BENCHMARK_MAIN();
