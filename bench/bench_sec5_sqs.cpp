// bench_sec5_sqs — the worked example of Section 5, end to end:
//     [k <- [1..n] : sqs(k)]
// on both engines across n. The transformed program issues a *constant*
// number of vector primitives (reported as the `prims` counter) while the
// interpreter's work is per-element.
//
// Expected shape: vector execution wins by a growing factor as n grows;
// `prims` stays constant; `work` grows with the triangular output size.
#include "bench_common.hpp"

namespace {

using namespace proteus;
using namespace proteus::bench;

const char* kProgram =
    "fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]";

std::string entry(std::int64_t n) {
  return "[k <- [1 .. " + std::to_string(n) + "] : sqs(k)]";
}

void BM_sqs_reference_interpreter(benchmark::State& state) {
  Session session(kProgram, entry(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run_entry_reference());
  }
  report_interp_cost(state, session);
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          (state.range(0) + 1) / 2);
}

void BM_sqs_vector_executor(benchmark::State& state) {
  Session session(kProgram, entry(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run_entry_vector());
  }
  report_cost(state, session);
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          (state.range(0) + 1) / 2);
}

void BM_sqs_transformation_itself(benchmark::State& state) {
  // Cost of the directed transformation (parse -> check -> R1 -> R2 ->
  // 4.5 -> T1); a compile-time cost, constant in the data size.
  std::string e = entry(state.range(0));
  for (auto _ : state) {
    Session session(kProgram, e);
    benchmark::DoNotOptimize(session.compiled().vec.functions.size());
  }
}

BENCHMARK(BM_sqs_reference_interpreter)->RangeMultiplier(4)->Range(16, 4096);
BENCHMARK(BM_sqs_vector_executor)->RangeMultiplier(4)->Range(16, 4096);
BENCHMARK(BM_sqs_transformation_itself)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
