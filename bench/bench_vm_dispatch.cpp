// bench_vm_dispatch — bytecode VM vs tree-walking executor on the three
// showcase workloads: quicksort (recursive divide-and-conquer), quickhull
// (tuples + nested recursion), and spmv (irregular segmented reduction).
//
// Both engines issue the identical sequence of vl kernel calls (they share
// one kernel table), so any wall-clock difference is pure dispatch: tree
// traversal + environment maps vs a linear fetch/decode loop over
// slot-addressed registers. The shape that must hold: the VM is at parity
// or better everywhere, with the gap widest on small frames where per-node
// overhead is not amortised by vector work.
#include <cstdint>
#include <random>
#include <string>

#include "bench_common.hpp"
#include "exec/exec.hpp"
#include "vm/vm.hpp"

namespace {

using namespace proteus;
using namespace proteus::bench;

const char* kQuicksort = R"(
  fun quicksort(v: seq(int)): seq(int) =
    if #v <= 1 then v
    else
      let pivot = v[1 + (#v / 2)] in
      let parts = [p <- [[x <- v | x < pivot : x],
                         [x <- v | x > pivot : x]] : quicksort(p)] in
      parts[1] ++ [x <- v | x == pivot : x] ++ parts[2]
)";

const char* kQuickhull = R"(
  fun cross(o: (int,int), a: (int,int), b: (int,int)): int =
    (a.1 - o.1) * (b.2 - o.2) - (a.2 - o.2) * (b.1 - o.1)

  fun farthest(l: (int,int), r: (int,int), pts: seq((int,int))): (int,int) =
    let ds = [p <- pts : cross(l, r, p)] in
    let best = maxval(ds) in
    [i <- [1 .. #pts] | ds[i] == best : pts[i]][1]

  fun hullside(l: (int,int), r: (int,int), pts: seq((int,int)))
      : seq((int,int)) =
    let above = [p <- pts | cross(l, r, p) > 0 : p] in
    if #above == 0 then ([] : seq((int,int)))
    else
      let m = farthest(l, r, above) in
      let halves = [side <- [(l, m), (m, r)]
                    : hullside(side.1, side.2, above)] in
      halves[1] ++ [m] ++ halves[2]

  fun quickhull(pts: seq((int,int))): seq((int,int)) =
    let xs = [p <- pts : p.1] in
    let lx = minval(xs) in
    let rx = maxval(xs) in
    let ly = minval([p <- pts | p.1 == lx : p.2]) in
    let ry = maxval([p <- pts | p.1 == rx : p.2]) in
    let l = (lx, ly) in
    let r = (rx, ry) in
    [l] ++ hullside(l, r, pts) ++ [r] ++ hullside(r, l, pts)
)";

const char* kSpmv = R"(
  fun spmv(rows: seq(seq((int, real))), x: seq(real)): seq(real) =
    [row <- rows : sum([e <- row : e.2 * x[e.1]])]
)";

interp::Value random_points(std::uint64_t seed, int n) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<vl::Int> coord(-100000, 100000);
  interp::ValueList pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back(interp::Value::tuple(
        {interp::Value::ints(coord(rng)), interp::Value::ints(coord(rng))}));
  }
  return interp::Value::seq(std::move(pts));
}

interp::Value random_matrix(std::uint64_t seed, int rows, int cols) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> col(1, cols);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  interp::ValueList out;
  for (int r = 0; r < rows; ++r) {
    int nnz = 1 << (rng() % 7);  // 1..64 nonzeros: the irregular case
    interp::ValueList row;
    for (int k = 0; k < nnz; ++k) {
      row.push_back(interp::Value::tuple(
          {interp::Value::ints(col(rng)), interp::Value::reals(val(rng))}));
    }
    out.push_back(interp::Value::seq(std::move(row)));
  }
  return interp::Value::seq(std::move(out));
}

interp::Value random_real_seq(std::uint64_t seed, int n) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  interp::ValueList out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(interp::Value::reals(val(rng)));
  return interp::Value::seq(std::move(out));
}

/// Runs `fn` through either engine of a shared Session; the boxed<->flat
/// conversion outside the timed loop is identical for both, so the
/// comparison isolates dispatch + kernels.
enum class Engine { kTree, kVm };

void run_pair(benchmark::State& state, Session& session, Engine engine,
              const std::string& fn, const interp::ValueList& args) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine == Engine::kTree
                                 ? session.run_vector(fn, args)
                                 : session.run_vm(fn, args));
  }
  report_cost(state, session);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_quicksort_tree(benchmark::State& state) {
  Session session(kQuicksort);
  interp::ValueList args = {
      random_int_seq(3, static_cast<int>(state.range(0)), 0, 1 << 30)};
  run_pair(state, session, Engine::kTree, "quicksort", args);
}

void BM_quicksort_vm(benchmark::State& state) {
  Session session(kQuicksort);
  interp::ValueList args = {
      random_int_seq(3, static_cast<int>(state.range(0)), 0, 1 << 30)};
  run_pair(state, session, Engine::kVm, "quicksort", args);
}

void BM_quickhull_tree(benchmark::State& state) {
  Session session(kQuickhull);
  interp::ValueList args = {
      random_points(7, static_cast<int>(state.range(0)))};
  run_pair(state, session, Engine::kTree, "quickhull", args);
}

void BM_quickhull_vm(benchmark::State& state) {
  Session session(kQuickhull);
  interp::ValueList args = {
      random_points(7, static_cast<int>(state.range(0)))};
  run_pair(state, session, Engine::kVm, "quickhull", args);
}

void BM_spmv_tree(benchmark::State& state) {
  Session session(kSpmv);
  const int cols = 4096;
  interp::ValueList args = {
      random_matrix(11, static_cast<int>(state.range(0)), cols),
      random_real_seq(13, cols)};
  run_pair(state, session, Engine::kTree, "spmv", args);
}

void BM_spmv_vm(benchmark::State& state) {
  Session session(kSpmv);
  const int cols = 4096;
  interp::ValueList args = {
      random_matrix(11, static_cast<int>(state.range(0)), cols),
      random_real_seq(13, cols)};
  run_pair(state, session, Engine::kVm, "spmv", args);
}

/// Pure dispatch overhead: a tiny frame (n = 64) where vector work is
/// negligible, run directly on Executor / VM over pre-converted flat
/// values — no Session, no boxing, nothing but engine-internal cost.
void BM_dispatch_only_tree(benchmark::State& state) {
  Session session(kQuicksort);
  const lang::FunDef* f = session.compiled().checked.find("quicksort");
  exec::VValue arg = exec::from_boxed(
      random_int_seq(5, static_cast<int>(state.range(0)), 0, 1 << 20),
      f->params[0].type);
  exec::Executor engine(session.compiled().vec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.call_function("quicksort", {arg}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_dispatch_only_vm(benchmark::State& state) {
  Session session(kQuicksort);
  const lang::FunDef* f = session.compiled().checked.find("quicksort");
  exec::VValue arg = exec::from_boxed(
      random_int_seq(5, static_cast<int>(state.range(0)), 0, 1 << 20),
      f->params[0].type);
  vm::VM engine(session.compiled().module);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.call_function("quicksort", {arg}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

// Quicksort up to n = 100000: the acceptance bar is VM at parity or
// better with the tree walker at the top size.
BENCHMARK(BM_quicksort_tree)->RangeMultiplier(10)->Range(100, 100000);
BENCHMARK(BM_quicksort_vm)->RangeMultiplier(10)->Range(100, 100000);
BENCHMARK(BM_quickhull_tree)->RangeMultiplier(8)->Range(256, 16384);
BENCHMARK(BM_quickhull_vm)->RangeMultiplier(8)->Range(256, 16384);
BENCHMARK(BM_spmv_tree)->RangeMultiplier(8)->Range(128, 8192);
BENCHMARK(BM_spmv_vm)->RangeMultiplier(8)->Range(128, 8192);
BENCHMARK(BM_dispatch_only_tree)->Arg(64);
BENCHMARK(BM_dispatch_only_vm)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
