// bench_vm_fusion — VCODE superinstruction fusion (-O1) vs the unfused
// instruction stream (-O0) on the bytecode VM.
//
// Two workload families stress the optimizer from opposite ends:
//
//   fma_chain  — a long elementwise arithmetic chain over a flat vector
//                (the best case: one fused kernel replaces seven
//                primitive dispatches and six intermediate buffers);
//   quicksort  — recursive divide-and-conquer where only the pivot
//                compare chains fuse and most time is in permutation
//                primitives (the realistic case: fusion must help a
//                little and hurt nothing).
//
// Both sessions compile the identical source; the only difference is
// PipelineOptions::optimize_vcode, so the wall-clock gap is pure
// fusion: saved dispatch, saved intermediate allocations (visible as
// the vl.buffer_allocs metric in BENCH_vm_fusion.json), and in-place
// execution of last-use operands.
#include <cstdint>
#include <string>

#include "bench_common.hpp"

namespace {

using namespace proteus;
using namespace proteus::bench;

// Seven fusible primitives per element; every intermediate is dead
// after one use, so -O1 collapses the body to one kFusedMap that
// writes into the (last-use) input buffer.
const char* kFmaChain = R"(
  fun fma_chain(v: seq(int)): seq(int) =
    [x <- v : (x * 3 + 1) * (x - 2) + x * x]
)";

// The same chain applied round after round: fusion wins once per
// round, so the gap should persist (not amortise away) as work grows.
const char* kFmaRounds = R"(
  fun step(v: seq(int)): seq(int) =
    [x <- v : (x * 3 + 1) * (x - 2) + x * x]

  fun rounds(v: seq(int), k: int): seq(int) =
    if k <= 0 then v else rounds(step(v), k - 1)
)";

const char* kQuicksort = R"(
  fun quicksort(v: seq(int)): seq(int) =
    if #v <= 1 then v
    else
      let pivot = v[1 + (#v / 2)] in
      let parts = [p <- [[x <- v | x < pivot : x],
                         [x <- v | x > pivot : x]] : quicksort(p)] in
      parts[1] ++ [x <- v | x == pivot : x] ++ parts[2]
)";

xform::PipelineOptions options_for(bool fused) {
  xform::PipelineOptions options;
  options.optimize_vcode = fused;
  return options;
}

/// Runs `fn(args)` on the VM of a session compiled with or without the
/// VCODE optimizer and records the best wall time plus the run's metric
/// registry (vl.buffer_allocs shows the saved intermediates) into
/// BENCH_vm_fusion.json under engine "vm-O0" / "vm-O1".
void run_fusion(benchmark::State& state, const std::string& source,
                bool fused, const std::string& fn,
                const interp::ValueList& args) {
  Session session(source, {}, options_for(fused));
  const std::uint64_t best = best_wall_ns(state, [&] {
    interp::Value v = session.run_vm(fn, args);
    benchmark::DoNotOptimize(v);
  });
  report_cost(state, session);
  state.counters["buffer_allocs"] = static_cast<double>(
      session.last_cost().vector_work.buffer_allocs);
  state.counters["fused_chains"] = static_cast<double>(
      session.compiled().fusion.fused_chains);
  state.SetItemsProcessed(state.iterations() * state.range(0));
  JsonReporter::instance().record("vm_fusion", fused ? "vm-O1" : "vm-O0",
                                  state.range(0), best, session);
}

void fma_chain_bench(benchmark::State& state, bool fused) {
  interp::Value input =
      random_int_seq(3, static_cast<int>(state.range(0)), -1000, 1000);
  run_fusion(state, kFmaChain, fused, "fma_chain", {input});
}

void fma_rounds_bench(benchmark::State& state, bool fused) {
  interp::Value input =
      random_int_seq(5, static_cast<int>(state.range(0)), -1000, 1000);
  interp::ValueList args = {input, interp::Value::ints(16)};
  run_fusion(state, kFmaRounds, fused, "rounds", args);
}

void quicksort_bench(benchmark::State& state, bool fused) {
  interp::Value input =
      random_int_seq(7, static_cast<int>(state.range(0)), 0, 1 << 30);
  run_fusion(state, kQuicksort, fused, "quicksort", {input});
}

void BM_fma_chain_O0(benchmark::State& s) { fma_chain_bench(s, false); }
void BM_fma_chain_O1(benchmark::State& s) { fma_chain_bench(s, true); }
void BM_fma_rounds_O0(benchmark::State& s) { fma_rounds_bench(s, false); }
void BM_fma_rounds_O1(benchmark::State& s) { fma_rounds_bench(s, true); }
void BM_quicksort_O0(benchmark::State& s) { quicksort_bench(s, false); }
void BM_quicksort_O1(benchmark::State& s) { quicksort_bench(s, true); }

// The acceptance bar: >= 1.5x on the elementwise chain at n = 1M+.
BENCHMARK(BM_fma_chain_O0)->RangeMultiplier(10)->Range(10000, 4000000);
BENCHMARK(BM_fma_chain_O1)->RangeMultiplier(10)->Range(10000, 4000000);
BENCHMARK(BM_fma_rounds_O0)->Arg(1000000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_fma_rounds_O1)->Arg(1000000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_quicksort_O0)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_quicksort_O1)->Arg(100000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
