// bench_45_optimizations — ablation of the Section 4.5 vector-level
// optimizations:
//
//   (a) shared-source seq_index: a fixed sequence indexed inside an
//       iterator is gathered from one copy instead of being replicated
//       ("clearly a waste of time and space");
//   (b) shared-row gather: rule R2c's replication of a frame variable
//       through an inner iterator is removed when the variable is only a
//       seq_index source — without it, flattened divide-and-conquer is
//       QUADRATIC (measured here);
//   (c) native flatten: flatten as descriptor surgery versus the
//       user-level reduce/concat definition of Section 2.
//
// Expected shape: optimized work is O(n) / O(n log n); naive work blows up
// by the replication factor; results are identical (pinned by tests).
#include "bench_common.hpp"

namespace {

using namespace proteus;
using namespace proteus::bench;

xform::PipelineOptions naive_options() {
  xform::PipelineOptions o;
  o.flatten.broadcast_invariant_seq_args = false;
  o.shared_row_gather = false;
  return o;
}

const char* kGather = R"(
  fun rev(v: seq(int)): seq(int) = [i <- [1 .. #v] : v[#v + 1 - i]]
)";

void BM_shared_source_gather_optimized(benchmark::State& state) {
  Session session(kGather);
  interp::Value v = random_int_seq(1, static_cast<int>(state.range(0)), 0, 99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run_vector("rev", {v}));
  }
  report_cost(state, session);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_shared_source_gather_replicated(benchmark::State& state) {
  Session session(kGather, {}, naive_options());
  interp::Value v = random_int_seq(1, static_cast<int>(state.range(0)), 0, 99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run_vector("rev", {v}));
  }
  report_cost(state, session);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

const char* kRecursion = R"(
  fun halves(v: seq(int)): seq(int) =
    if #v <= 1 then v
    else
      let h = #v / 2 in
      let a = [i <- [1 .. h] : v[i]] in
      let b = [i <- [1 .. #v - h] : v[i + h]] in
      let t = [p <- [a, b] : halves(p)] in
      t[1] ++ t[2]
)";

void BM_recursion_shared_rows(benchmark::State& state) {
  Session session(kRecursion);
  interp::Value v =
      random_int_seq(2, static_cast<int>(state.range(0)), 0, 1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run_vector("halves", {v}));
  }
  report_cost(state, session);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_recursion_replicated_quadratic(benchmark::State& state) {
  Session session(kRecursion, {}, naive_options());
  interp::Value v =
      random_int_seq(2, static_cast<int>(state.range(0)), 0, 1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run_vector("halves", {v}));
  }
  report_cost(state, session);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

const char* kFlatten = R"(
  // Section 2's user-level flatten via a recursive fold of concat ...
  fun cat2(a: seq(int), b: seq(int)): seq(int) = a ++ b
  fun user_flatten(v: seq(seq(int))): seq(int) =
    if #v == 0 then ([] : seq(int))
    else if #v == 1 then v[1]
    else cat2(user_flatten([i <- [1 .. #v - 1] : v[i]]), v[#v])
  // ... versus the native descriptor-surgery primitive (Section 4.5)
  fun native_flatten(v: seq(seq(int))): seq(int) = flatten(v)
)";

void BM_flatten_user_level(benchmark::State& state) {
  Session session(kFlatten);
  interp::Value m =
      ragged(4, uniform_rows(static_cast<int>(state.range(0)), 8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run_vector("user_flatten", {m}));
  }
  report_cost(state, session);
}

void BM_flatten_native(benchmark::State& state) {
  Session session(kFlatten);
  interp::Value m =
      ragged(4, uniform_rows(static_cast<int>(state.range(0)), 8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run_vector("native_flatten", {m}));
  }
  report_cost(state, session);
}

BENCHMARK(BM_shared_source_gather_optimized)
    ->RangeMultiplier(4)
    ->Range(256, 16384);
BENCHMARK(BM_shared_source_gather_replicated)
    ->RangeMultiplier(4)
    ->Range(256, 4096);  // quadratic: 16K would take ~a minute
BENCHMARK(BM_recursion_shared_rows)->RangeMultiplier(4)->Range(256, 4096);
BENCHMARK(BM_recursion_replicated_quadratic)
    ->RangeMultiplier(4)
    ->Range(256, 1024);  // quadratic by construction
BENCHMARK(BM_flatten_user_level)->RangeMultiplier(4)->Range(16, 256);
BENCHMARK(BM_flatten_native)->RangeMultiplier(4)->Range(16, 256);

}  // namespace

BENCHMARK_MAIN();
