// bench_sec1_prototyping — Section 1: "The parallel semantics of such a
// program can be simulated sequentially, to observe its behavior and make
// measurements of machine-independent characteristics such as total work
// and available concurrency."
//
// For each prototype the reference interpreter reports total work
// (scalar_ops) and the parallel critical path (steps); work/steps is the
// available concurrency. Expected shape: data-parallel prototypes have
// concurrency that grows linearly (squares), superlinearly (triangular
// sqs), or as n/log n (divide and conquer) — visible long before any
// parallel machine is involved, which is the methodology's point.
#include "bench_common.hpp"

namespace {

using namespace proteus;
using namespace proteus::bench;

void measure(benchmark::State& state, const char* program, const char* fn,
             interp::ValueList args) {
  Session session(program);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run_reference(fn, args));
  }
  const auto& c = session.last_cost().reference;
  state.counters["work"] = static_cast<double>(c.scalar_ops);
  state.counters["steps"] = static_cast<double>(c.steps);
  state.counters["concurrency"] =
      c.steps == 0 ? 0.0
                   : static_cast<double>(c.scalar_ops) /
                         static_cast<double>(c.steps);
}

void BM_concurrency_squares(benchmark::State& state) {
  measure(state, "fun f(v: seq(int)): seq(int) = [x <- v : x * x + 1]", "f",
          {random_int_seq(1, static_cast<int>(state.range(0)), -9, 9)});
}

void BM_concurrency_triangular(benchmark::State& state) {
  measure(state,
          "fun f(n: int): seq(seq(int)) = "
          "[i <- [1 .. n] : [j <- [1 .. i] : i * j]]",
          "f", {interp::Value::ints(state.range(0))});
}

void BM_concurrency_quicksort(benchmark::State& state) {
  const char* qs = R"(
    fun qs(v: seq(int)): seq(int) =
      if #v <= 1 then v
      else
        let pivot = v[1 + (#v / 2)] in
        let parts = [p <- [[x <- v | x < pivot : x],
                           [x <- v | x > pivot : x]] : qs(p)] in
        parts[1] ++ [x <- v | x == pivot : x] ++ parts[2]
  )";
  measure(state, qs, "qs",
          {random_int_seq(3, static_cast<int>(state.range(0)), 0, 1 << 20)});
}

void BM_concurrency_sequential_fold(benchmark::State& state) {
  // Contrast: here the additions chain sequentially, so steps grow
  // linearly with n (unlike every data-parallel prototype above, whose
  // critical path is constant or logarithmic) — the prototype itself
  // reveals the serial bottleneck before any parallel machine is involved.
  const char* fold = R"(
    fun f(v: seq(int)): int =
      if #v == 0 then 0 else v[1] + f([i <- [1 .. #v - 1] : v[i + 1]])
  )";
  measure(state, fold, "f",
          {random_int_seq(5, static_cast<int>(state.range(0)), -9, 9)});
}

BENCHMARK(BM_concurrency_squares)->RangeMultiplier(4)->Range(64, 4096);
BENCHMARK(BM_concurrency_triangular)->RangeMultiplier(2)->Range(8, 64);
BENCHMARK(BM_concurrency_quicksort)->RangeMultiplier(4)->Range(64, 1024);
BENCHMARK(BM_concurrency_sequential_fold)->RangeMultiplier(4)->Range(16, 256);

}  // namespace

BENCHMARK_MAIN();
