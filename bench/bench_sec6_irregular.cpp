// bench_sec6_irregular — Section 6: "irregular parallel computations (as
// found in the parallel application of a function to each of a collection
// of sequences of different length) ... can be executed with excellent
// load-balance".
//
// The same nested computation (per-row squares-and-sum) runs over three
// row-length profiles with IDENTICAL total element counts: uniform,
// skewed, and one-giant-row. The flattened execution operates on the flat
// value vector, so its time and work must be (nearly) profile-independent
// — that flatness IS the load-balance claim, measurable even on one core.
// A per-row outer loop (the naive "parallelize the outer iterator"
// strategy) would be hostage to the longest row.
#include "bench_common.hpp"

namespace {

using namespace proteus;
using namespace proteus::bench;

const char* kProgram = R"(
  fun rowwork(m: seq(seq(int))): seq(int) =
    [row <- m : sum([x <- row : x * x + 1])]
)";

constexpr int kRows = 512;
constexpr int kTotal = 1 << 16;

void run_profile(benchmark::State& state, const std::vector<int>& lens) {
  Session session(kProgram);
  interp::Value m = ragged(33, lens);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run_vector("rowwork", {m}));
  }
  report_cost(state, session);
  state.SetItemsProcessed(state.iterations() * kTotal);
}

void BM_uniform_rows_vector(benchmark::State& state) {
  run_profile(state, uniform_rows(kRows, kTotal / kRows));
}

void BM_skewed_rows_vector(benchmark::State& state) {
  run_profile(state, skewed_rows(5, kRows, kTotal));
}

void BM_one_giant_row_vector(benchmark::State& state) {
  run_profile(state, one_giant_rows(kRows, kTotal));
}

void run_profile_interp(benchmark::State& state,
                        const std::vector<int>& lens) {
  Session session(kProgram);
  interp::Value m = ragged(33, lens);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run_reference("rowwork", {m}));
  }
  report_interp_cost(state, session);
  state.SetItemsProcessed(state.iterations() * kTotal);
}

void BM_uniform_rows_interp(benchmark::State& state) {
  run_profile_interp(state, uniform_rows(kRows, kTotal / kRows));
}

void BM_skewed_rows_interp(benchmark::State& state) {
  run_profile_interp(state, skewed_rows(5, kRows, kTotal));
}

void BM_one_giant_row_interp(benchmark::State& state) {
  run_profile_interp(state, one_giant_rows(kRows, kTotal));
}

// The "longest row" metric the naive outer-parallel strategy is hostage
// to: simulated critical path = max row length (per-element work), versus
// the vector model's total/P behaviour.
void BM_critical_path_report(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(state.range(0));
  }
  std::vector<int> uniform = uniform_rows(kRows, kTotal / kRows);
  std::vector<int> skewed = skewed_rows(5, kRows, kTotal);
  std::vector<int> giant = one_giant_rows(kRows, kTotal);
  auto longest = [](const std::vector<int>& v) {
    return *std::max_element(v.begin(), v.end());
  };
  state.counters["uniform_max_row"] = longest(uniform);
  state.counters["skewed_max_row"] = longest(skewed);
  state.counters["giant_max_row"] = longest(giant);
}

BENCHMARK(BM_uniform_rows_vector);
BENCHMARK(BM_skewed_rows_vector);
BENCHMARK(BM_one_giant_row_vector);
BENCHMARK(BM_uniform_rows_interp);
BENCHMARK(BM_skewed_rows_interp);
BENCHMARK(BM_one_giant_row_interp);
BENCHMARK(BM_critical_path_report)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
