// bench_sec6_seq_overhead — Section 6, "Implications for sequential
// execution": "One of the objections often raised to the iterator
// construct is that it incurs substantial overhead in the repeated
// evaluation of the iterator body. The transformation rules suggest ...
// that by replacing the iterators with vector primitives, the overhead of
// repeated calls can be eliminated."
//
// Both engines run on ONE thread (serial backend): this isolates exactly
// the interpretation overhead the paper describes.
//
// Expected shape: the vector executor wins by a large constant factor
// (one type dispatch per *vector* instead of per *element*), growing
// mildly with n as boxing costs dominate the interpreter.
#include "bench_common.hpp"

namespace {

using namespace proteus;
using namespace proteus::bench;

const char* kPrograms = R"(
  fun squares(v: seq(int)): seq(int) = [x <- v : x * x]
  fun dot(a: seq(int), b: seq(int)): int =
    sum([i <- [1 .. #a] : a[i] * b[i]])
  fun filter_sum(v: seq(int)): int = sum([x <- v | x > 0 : x * 3 - 1])
  fun saxpy(a: int, x: seq(int), y: seq(int)): seq(int) =
    [i <- [1 .. #x] : a * x[i] + y[i]]
)";

class Fixture {
 public:
  explicit Fixture(std::int64_t n)
      : session(kPrograms),
        v(random_int_seq(1, static_cast<int>(n), -1000, 1000)),
        w(random_int_seq(2, static_cast<int>(n), -1000, 1000)) {}

  Session session;
  interp::Value v;
  interp::Value w;
};

void BM_squares_interp(benchmark::State& state) {
  Fixture f(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.session.run_reference("squares", {f.v}));
  }
  report_interp_cost(state, f.session);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_squares_vector(benchmark::State& state) {
  Fixture f(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.session.run_vector("squares", {f.v}));
  }
  report_cost(state, f.session);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_dot_interp(benchmark::State& state) {
  Fixture f(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.session.run_reference("dot", {f.v, f.w}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_dot_vector(benchmark::State& state) {
  Fixture f(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.session.run_vector("dot", {f.v, f.w}));
  }
  report_cost(state, f.session);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_filter_sum_interp(benchmark::State& state) {
  Fixture f(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.session.run_reference("filter_sum", {f.v}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_filter_sum_vector(benchmark::State& state) {
  Fixture f(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.session.run_vector("filter_sum", {f.v}));
  }
  report_cost(state, f.session);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_saxpy_interp(benchmark::State& state) {
  Fixture f(state.range(0));
  interp::Value a = interp::Value::ints(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.session.run_reference("saxpy", {a, f.v, f.w}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_saxpy_vector(benchmark::State& state) {
  Fixture f(state.range(0));
  interp::Value a = interp::Value::ints(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.session.run_vector("saxpy", {a, f.v, f.w}));
  }
  report_cost(state, f.session);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

constexpr int kLo = 1 << 8;
constexpr int kHi = 1 << 16;

BENCHMARK(BM_squares_interp)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_squares_vector)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_dot_interp)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_dot_vector)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_filter_sum_interp)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_filter_sum_vector)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_saxpy_interp)->RangeMultiplier(8)->Range(kLo, kHi);
BENCHMARK(BM_saxpy_vector)->RangeMultiplier(8)->Range(kLo, kHi);

}  // namespace

BENCHMARK_MAIN();
