// bench_workloads — the end-to-end reproduction workloads (quicksort,
// quickhull, spmv) on all three engines, with machine-readable output.
//
// Besides the usual google-benchmark console table, this bench writes
// BENCH_quicksort.json / BENCH_quickhull.json / BENCH_spmv.json into the
// current directory (see bench::JsonReporter in bench_common.hpp for the
// schema): per engine and backend, the best wall-clock time plus the
// unified metric registry of the run (element work, primitive steps,
// per-primitive counters). scripts/reproduce.sh relies on these files;
// CI parses and archives them.
//
// The reference interpreter runs smaller inputs than the vector engines —
// it evaluates per element, and the point of the record is the
// machine-independent counters next to the wall clock, not a same-n race
// (bench_sec6_quicksort covers the scaling comparison).
#include <random>

#include "bench_common.hpp"

namespace {

using namespace proteus;
using namespace proteus::bench;

const char* kQuicksortProgram = R"(
  fun quicksort(v: seq(int)): seq(int) =
    if #v <= 1 then v
    else
      let pivot = v[1 + (#v / 2)] in
      let parts = [p <- [[x <- v | x < pivot : x],
                         [x <- v | x > pivot : x]] : quicksort(p)] in
      parts[1] ++ [x <- v | x == pivot : x] ++ parts[2]
)";

const char* kQuickhullProgram = R"(
  fun cross(o: (int,int), a: (int,int), b: (int,int)): int =
    (a.1 - o.1) * (b.2 - o.2) - (a.2 - o.2) * (b.1 - o.1)

  fun farthest(l: (int,int), r: (int,int), pts: seq((int,int))): (int,int) =
    let ds = [p <- pts : cross(l, r, p)] in
    let best = maxval(ds) in
    [i <- [1 .. #pts] | ds[i] == best : pts[i]][1]

  fun hullside(l: (int,int), r: (int,int), pts: seq((int,int)))
      : seq((int,int)) =
    let above = [p <- pts | cross(l, r, p) > 0 : p] in
    if #above == 0 then ([] : seq((int,int)))
    else
      let m = farthest(l, r, above) in
      let halves = [side <- [(l, m), (m, r)]
                    : hullside(side.1, side.2, above)] in
      halves[1] ++ [m] ++ halves[2]

  fun quickhull(pts: seq((int,int))): seq((int,int)) =
    let xs = [p <- pts : p.1] in
    let lx = minval(xs) in
    let rx = maxval(xs) in
    let ly = minval([p <- pts | p.1 == lx : p.2]) in
    let ry = maxval([p <- pts | p.1 == rx : p.2]) in
    let l = (lx, ly) in
    let r = (rx, ry) in
    [l] ++ hullside(l, r, pts) ++ [r] ++ hullside(r, l, pts)
)";

const char* kSpmvProgram = R"(
  fun spmv(rows: seq(seq((int, real))), x: seq(real)): seq(real) =
    [row <- rows : sum([e <- row : e.2 * x[e.1]])]
)";

interp::Value random_points(std::uint64_t seed, std::int64_t n) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<vl::Int> coord(-100000, 100000);
  interp::ValueList pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    pts.push_back(interp::Value::tuple({interp::Value::ints(coord(rng)),
                                        interp::Value::ints(coord(rng))}));
  }
  return interp::Value::seq(std::move(pts));
}

/// Skewed sparse matrix: each row has 1..64 nonzeros.
interp::Value random_matrix(std::uint64_t seed, std::int64_t rows, int cols) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> col(1, cols);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  interp::ValueList out;
  for (std::int64_t r = 0; r < rows; ++r) {
    int nnz = 1 << (rng() % 7);
    interp::ValueList row;
    for (int k = 0; k < nnz; ++k) {
      row.push_back(interp::Value::tuple(
          {interp::Value::ints(col(rng)), interp::Value::reals(val(rng))}));
    }
    out.push_back(interp::Value::seq(std::move(row)));
  }
  return interp::Value::seq(std::move(out));
}

interp::Value random_real_vector(std::uint64_t seed, int n) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  interp::ValueList out;
  for (int i = 0; i < n; ++i) out.push_back(interp::Value::reals(val(rng)));
  return interp::Value::seq(std::move(out));
}

/// Runs `fn(args)` on `engine` ("ref" | "vec" | "vm") under the
/// google-benchmark loop and records the best wall-clock time plus the
/// run's metric registry into BENCH_<workload>.json.
void run_workload(benchmark::State& state, const std::string& workload,
                  const std::string& engine, Session& session,
                  const std::string& fn, const interp::ValueList& args) {
  const std::uint64_t best = best_wall_ns(state, [&] {
    interp::Value v = engine == "ref"  ? session.run_reference(fn, args)
                      : engine == "vm" ? session.run_vm(fn, args)
                                       : session.run_vector(fn, args);
    benchmark::DoNotOptimize(v);
  });
  if (engine == "ref") {
    report_interp_cost(state, session);
  } else {
    report_cost(state, session);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  JsonReporter::instance().record(workload, engine, state.range(0), best,
                                  session);
}

void quicksort_bench(benchmark::State& state, const std::string& engine) {
  Session session(kQuicksortProgram);
  interp::Value input =
      random_int_seq(3, static_cast<int>(state.range(0)), 0, 1 << 30);
  run_workload(state, "quicksort", engine, session, "quicksort", {input});
}

void quickhull_bench(benchmark::State& state, const std::string& engine) {
  Session session(kQuickhullProgram);
  interp::Value pts = random_points(17, state.range(0));
  run_workload(state, "quickhull", engine, session, "quickhull", {pts});
}

void spmv_bench(benchmark::State& state, const std::string& engine) {
  Session session(kSpmvProgram);
  const int cols = 1024;
  interp::Value a = random_matrix(5, state.range(0), cols);
  interp::Value x = random_real_vector(7, cols);
  run_workload(state, "spmv", engine, session, "spmv", {a, x});
}

void BM_quicksort_ref(benchmark::State& s) { quicksort_bench(s, "ref"); }
void BM_quicksort_vec(benchmark::State& s) { quicksort_bench(s, "vec"); }
void BM_quicksort_vm(benchmark::State& s) { quicksort_bench(s, "vm"); }
void BM_quickhull_ref(benchmark::State& s) { quickhull_bench(s, "ref"); }
void BM_quickhull_vec(benchmark::State& s) { quickhull_bench(s, "vec"); }
void BM_quickhull_vm(benchmark::State& s) { quickhull_bench(s, "vm"); }
void BM_spmv_ref(benchmark::State& s) { spmv_bench(s, "ref"); }
void BM_spmv_vec(benchmark::State& s) { spmv_bench(s, "vec"); }
void BM_spmv_vm(benchmark::State& s) { spmv_bench(s, "vm"); }

BENCHMARK(BM_quicksort_ref)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_quicksort_vec)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_quicksort_vm)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_quickhull_ref)->Arg(2000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_quickhull_vec)->Arg(20000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_quickhull_vm)->Arg(20000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_spmv_ref)->Arg(512)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_spmv_vec)->Arg(4096)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_spmv_vm)->Arg(4096)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
