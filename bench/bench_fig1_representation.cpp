// bench_fig1_representation — Figure 1: the vector representation of
// nested sequences. Measures (a) conversion between the boxed nesting-tree
// form and the descriptor-stack form, (b) structural queries, and (c) the
// O(1) copy the shared spine buys.
//
// Expected shape: conversion is linear in leaf count and *independent of
// nesting irregularity*; copies are constant time at every size.
#include <benchmark/benchmark.h>

#include "interp/value.hpp"
#include "lang/types.hpp"
#include "seq/seq.hpp"

namespace {

using namespace proteus;
using seq::Array;

void BM_build_from_descriptor_levels(benchmark::State& state) {
  // Building the representation from raw descriptor data (the generator
  // does exactly the level-by-level construction of Figure 1).
  const auto n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        seq::random_nested_ints(11, 3, n, 4));
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_boxed_to_vector_representation(benchmark::State& state) {
  auto type = lang::Type::seq_n(lang::Type::int_(), 3);
  Array a = seq::random_nested_ints(11, 2, state.range(0), 4);
  interp::Value boxed = interp::from_array(a, type);
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp::to_array(boxed, type));
  }
  state.SetItemsProcessed(state.iterations() * a.leaf_count());
}

void BM_vector_representation_to_boxed(benchmark::State& state) {
  auto type = lang::Type::seq_n(lang::Type::int_(), 3);
  Array a = seq::random_nested_ints(11, 2, state.range(0), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp::from_array(a, type));
  }
  state.SetItemsProcessed(state.iterations() * a.leaf_count());
}

void BM_descriptor_stack_walk(benchmark::State& state) {
  Array a = seq::random_nested_ints(13, 5, state.range(0), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::descriptor_stack(a));
  }
}

void BM_validate_invariants(benchmark::State& state) {
  Array a = seq::random_nested_ints(13, 3, state.range(0), 4);
  for (auto _ : state) {
    a.validate();
  }
  state.SetItemsProcessed(state.iterations() * a.leaf_count());
}

void BM_copy_is_constant_time(benchmark::State& state) {
  Array a = seq::random_nested_ints(17, 3, state.range(0), 4);
  for (auto _ : state) {
    Array b = a;
    benchmark::DoNotOptimize(b);
  }
}

BENCHMARK(BM_build_from_descriptor_levels)->Range(1 << 6, 1 << 14);
BENCHMARK(BM_boxed_to_vector_representation)->Range(1 << 6, 1 << 14);
BENCHMARK(BM_vector_representation_to_boxed)->Range(1 << 6, 1 << 14);
BENCHMARK(BM_descriptor_stack_walk)->Range(1 << 6, 1 << 12);
BENCHMARK(BM_validate_invariants)->Range(1 << 6, 1 << 14);
BENCHMARK(BM_copy_is_constant_time)->Range(1 << 6, 1 << 16);

}  // namespace

BENCHMARK_MAIN();
