// bench_obs_overhead — cost of the always-compiled-in instrumentation.
//
// Every vector primitive in the tree executor and every kernel opcode in
// the VM constructs an obs::Span. With no tracer installed that is one
// relaxed atomic load and a branch, so the *untraced* numbers here must
// match the pre-instrumentation baseline within noise (< 2% on quicksort
// n = 100k is the acceptance bar; compare BM_quicksort_*_untraced against
// the same-revision-minus-obs build or historical bench_sec6_quicksort
// output). The *traced* variants show the real price of recording —
// expected to be visible, which is why tracing is opt-in.
#include "bench_common.hpp"

#include "obs/obs.hpp"

namespace {

using namespace proteus;
using namespace proteus::bench;

const char* kProgram = R"(
  fun quicksort(v: seq(int)): seq(int) =
    if #v <= 1 then v
    else
      let pivot = v[1 + (#v / 2)] in
      let parts = [p <- [[x <- v | x < pivot : x],
                         [x <- v | x > pivot : x]] : quicksort(p)] in
      parts[1] ++ [x <- v | x == pivot : x] ++ parts[2]
)";

void quicksort_run(benchmark::State& state, const std::string& engine,
                   bool traced) {
  Session session(kProgram);
  interp::Value input =
      random_int_seq(3, static_cast<int>(state.range(0)), 0, 1 << 30);

  obs::Tracer tracer;
  obs::MaybeTracerScope scope(traced ? &tracer : nullptr);
  if (traced) session.set_tracer(&tracer);

  for (auto _ : state) {
    // Keep the traced variant honest: don't let the event buffer grow
    // (and reallocate) across iterations.
    tracer.clear();
    if (engine == "vm") {
      benchmark::DoNotOptimize(session.run_vm("quicksort", {input}));
    } else {
      benchmark::DoNotOptimize(session.run_vector("quicksort", {input}));
    }
  }
  report_cost(state, session);
  if (traced) {
    state.counters["events"] = static_cast<double>(tracer.event_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_quicksort_vec_untraced(benchmark::State& s) {
  quicksort_run(s, "vec", false);
}
void BM_quicksort_vec_traced(benchmark::State& s) {
  quicksort_run(s, "vec", true);
}
void BM_quicksort_vm_untraced(benchmark::State& s) {
  quicksort_run(s, "vm", false);
}
void BM_quicksort_vm_traced(benchmark::State& s) {
  quicksort_run(s, "vm", true);
}

BENCHMARK(BM_quicksort_vec_untraced)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_quicksort_vec_traced)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_quicksort_vm_untraced)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_quicksort_vm_traced)->Arg(100000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
