// bench_obs_overhead — cost of the always-compiled-in instrumentation.
//
// Every vector primitive in the tree executor and every kernel opcode in
// the VM constructs an obs::Span. With no tracer installed that is one
// relaxed atomic load and a branch, so the *untraced* numbers here must
// match the pre-instrumentation baseline within noise (< 2% on quicksort
// n = 100k is the acceptance bar; compare BM_quicksort_*_untraced against
// the same-revision-minus-obs build or historical bench_sec6_quicksort
// output). The *traced* variants show the real price of recording —
// expected to be visible, which is why tracing is opt-in.
//
// The serve-path variants (ISSUE 7) measure the daemon's per-request
// telemetry wrapper the same way, on a representative warm eval (a
// cached-VM quicksort of 64 ints, ~300 us of real work): "serve-notel"
// is the PR 6 request path (ServerOptions::telemetry = false),
// "serve-unsampled" is telemetry on with sampling off and logging off
// — the production default — and "serve-sampled" records a full span
// trace per request. The acceptance bar (CI-checked over
// BENCH_obs_overhead.json): serve-unsampled stays within 2% of
// serve-notel. The absolute envelope cost on a request that does
// nothing else is bench_serve's warm/warm-notel pair.
#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "serve/server.hpp"

namespace {

using namespace proteus;
using namespace proteus::bench;

const char* kProgram = R"(
  fun quicksort(v: seq(int)): seq(int) =
    if #v <= 1 then v
    else
      let pivot = v[1 + (#v / 2)] in
      let parts = [p <- [[x <- v | x < pivot : x],
                         [x <- v | x > pivot : x]] : quicksort(p)] in
      parts[1] ++ [x <- v | x == pivot : x] ++ parts[2]
)";

void quicksort_run(benchmark::State& state, const std::string& engine,
                   bool traced) {
  Session session(kProgram);
  interp::Value input =
      random_int_seq(3, static_cast<int>(state.range(0)), 0, 1 << 30);

  obs::Tracer tracer;
  obs::MaybeTracerScope scope(traced ? &tracer : nullptr);
  if (traced) session.set_tracer(&tracer);

  for (auto _ : state) {
    // Keep the traced variant honest: don't let the event buffer grow
    // (and reallocate) across iterations.
    tracer.clear();
    if (engine == "vm") {
      benchmark::DoNotOptimize(session.run_vm("quicksort", {input}));
    } else {
      benchmark::DoNotOptimize(session.run_vector("quicksort", {input}));
    }
  }
  report_cost(state, session);
  if (traced) {
    state.counters["events"] = static_cast<double>(tracer.event_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_quicksort_vec_untraced(benchmark::State& s) {
  quicksort_run(s, "vec", false);
}
void BM_quicksort_vec_traced(benchmark::State& s) {
  quicksort_run(s, "vec", true);
}
void BM_quicksort_vm_untraced(benchmark::State& s) {
  quicksort_run(s, "vm", false);
}
void BM_quicksort_vm_traced(benchmark::State& s) {
  quicksort_run(s, "vm", true);
}

BENCHMARK(BM_quicksort_vec_untraced)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_quicksort_vec_traced)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_quicksort_vm_untraced)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_quicksort_vm_traced)->Arg(100000)->Unit(benchmark::kMillisecond);

// ---- serve request path ------------------------------------------------
// One warm (cache-hit) eval request, measured through handle_line so the
// whole telemetry wrapper — request id, histograms, sampling decision —
// is inside the timed region. Logging stays off (the logger defaults to
// kOff); only the sampled variant pays for span capture.

std::string serve_eval_line(int n) {
  std::string args = "[";
  for (int i = 0; i < n; ++i) {
    args += std::to_string((i * 37) % 101);
    if (i + 1 < n) args += ",";
  }
  args += "]";
  return std::string("{\"op\":\"eval\",\"source\":") +
         serve::Json(std::string(kProgram)).dump() +
         ",\"fun\":\"quicksort\",\"args\":[" + serve::Json(args).dump() + "]}";
}

std::uint64_t timed_request(serve::Server& server, const std::string& line) {
  const auto t0 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(server.handle_line(line));
  const auto dt = std::chrono::steady_clock::now() - t0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count());
}

/// The ratio-critical pair, measured alternately inside ONE benchmark
/// loop so frequency scaling and machine load hit both the same way —
/// a between-runs drift of a few percent would otherwise swamp the
/// sub-0.1% true overhead of the unsampled path and make the CI ratio
/// check meaningless. The sampled variant deliberately stays OUT of
/// this loop: its allocation-heavy span capture pollutes the cache
/// state the next variant inherits, skewing the pair.
void BM_serve_overhead_pair(benchmark::State& state) {
  const std::string line = serve_eval_line(static_cast<int>(state.range(0)));
  serve::ServerOptions notel_options;
  notel_options.telemetry = false;
  serve::Server notel(notel_options);
  serve::Server unsampled;  // telemetry on, sample rate 0, logging off
  benchmark::DoNotOptimize(notel.handle_line(line));      // prime
  benchmark::DoNotOptimize(unsampled.handle_line(line));  // prime

  std::uint64_t best_notel = UINT64_MAX;
  std::uint64_t best_unsampled = UINT64_MAX;
  bool notel_first = true;
  for (auto _ : state) {
    // ABBA ordering: alternate which variant goes first so a monotonic
    // drift (frequency ramp, thermal throttle) cancels out of the ratio.
    if (notel_first) {
      best_notel = std::min(best_notel, timed_request(notel, line));
      best_unsampled =
          std::min(best_unsampled, timed_request(unsampled, line));
    } else {
      best_unsampled =
          std::min(best_unsampled, timed_request(unsampled, line));
      best_notel = std::min(best_notel, timed_request(notel, line));
    }
    notel_first = !notel_first;
  }
  JsonReporter::instance().record("obs_overhead", "serve-notel",
                                  state.range(0), best_notel,
                                  notel.metrics());
  JsonReporter::instance().record("obs_overhead", "serve-unsampled",
                                  state.range(0), best_unsampled,
                                  unsampled.metrics());
}

/// The opt-in price: every request records a full span trace into the
/// flight-recorder ring. Not ratio-checked — expected to be visible.
void BM_serve_sampled(benchmark::State& state) {
  const std::string line = serve_eval_line(static_cast<int>(state.range(0)));
  serve::ServerOptions options;
  options.trace_sample_rate = 1.0;
  serve::Server server(options);
  benchmark::DoNotOptimize(server.handle_line(line));  // prime
  const std::uint64_t best = best_wall_ns(state, [&] {
    benchmark::DoNotOptimize(server.handle_line(line));
  });
  JsonReporter::instance().record("obs_overhead", "serve-sampled",
                                  state.range(0), best, server.metrics());
}

// Explicit MinTime: the CI smoke-run passes --benchmark_min_time=0.01,
// far too few iterations for the best-of floors of both variants to
// converge — the ratio check needs a few hundred samples each.
BENCHMARK(BM_serve_overhead_pair)
    ->Arg(64)
    ->MinTime(0.5)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_serve_sampled)->Arg(64)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
