// quickstart.cpp — the worked example of Section 5 of the paper, end to
// end: compile `[k <- [1..5] : sqs(k)]`, inspect every transformation
// stage, and run it on both engines.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/proteus.hpp"
#include "lang/printer.hpp"

int main() {
  // The program of Section 2 / Section 5: a data-parallel squares function
  // applied, in parallel, to every k in [1..5] — nested data-parallelism.
  const char* program = R"(
    fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]
  )";
  const char* entry = "[k <- [1 .. 5] : sqs(k)]";

  proteus::Session session(program, entry);

  std::cout << "=== source program (P) ===\n"
            << proteus::lang::to_text(session.compiled().checked) << '\n';
  std::cout << "=== entry expression ===\n"
            << proteus::lang::to_text(session.compiled().entry_checked)
            << "\n\n";
  std::cout << "=== after iterator elimination (R1 + R2) ===\n"
            << proteus::lang::to_text(session.compiled().entry_flat)
            << "\n\n";
  std::cout << "=== transformed program (V form, after T1) ===\n"
            << proteus::lang::to_text(session.compiled().vec) << '\n';

  auto reference = session.run_entry_reference();
  auto vectorised = session.run_entry_vector();

  std::cout << "reference interpreter: " << reference << '\n';
  std::cout << "vector-model executor: " << vectorised << '\n';
  std::cout << "results match: " << (reference == vectorised ? "yes" : "NO")
            << '\n';

  const auto& cost = session.last_cost();
  std::cout << "\nvector-model cost: " << cost.vector_work.primitive_calls
            << " vector primitives over " << cost.vector_work.element_work
            << " elements\n";
  return reference == vectorised ? 0 : 1;
}
