// primes.cpp — nested parallelism with filters and higher-order functions:
// a prime sieve and per-number divisor structure, showing the filtered
// iterator [x <- d | b : e] of Section 2 end to end, plus a user-defined
// higher-order fold applied in parallel (the "high-order parallel function
// application" of Section 6).
//
// Build & run:  ./build/examples/primes
#include <iostream>

#include "core/proteus.hpp"
#include "lang/printer.hpp"

namespace {

const char* kProgram = R"(
  fun divisors(n: int): seq(int) = [d <- [1 .. n] | n mod d == 0 : d]

  fun is_prime(n: int): bool = n >= 2 and #divisors(n) == 2

  fun primes_upto(n: int): seq(int) = [k <- [2 .. n] | is_prime(k) : k]

  // sum of proper divisors, via a user-defined parallel-applicable fold
  fun add2(a: int, b: int): int = a + b
  fun fold(f: (int,int) -> int, z: int, v: seq(int)): int =
    if #v == 0 then z
    else f(fold(f, z, [i <- [1 .. #v - 1] : v[i]]), v[#v])
  fun aliquot(n: int): int = fold(add2, 0, [d <- divisors(n) | d != n : d])

  // perfect numbers: aliquot(n) == n — nested parallelism three deep
  fun perfect_upto(n: int): seq(int) =
    [k <- [2 .. n] | aliquot(k) == k : k]
)";

}  // namespace

int main() {
  proteus::Session session(kProgram);
  using proteus::parse_value;

  auto primes_ref = session.run_reference("primes_upto", {parse_value("60")});
  auto primes_vec = session.run_vector("primes_upto", {parse_value("60")});
  std::cout << "primes <= 60:  " << primes_vec << '\n';

  auto perfect = session.run_vector("perfect_upto", {parse_value("500")});
  std::cout << "perfect <= 500: " << perfect << '\n';

  auto divisors = session.run_vector("divisors", {parse_value("36")});
  std::cout << "divisors(36):  " << divisors << '\n';

  bool ok = primes_ref == primes_vec &&
            perfect == parse_value("[6,28,496]");
  std::cout << "checks pass: " << (ok ? "yes" : "NO") << '\n';

  // Show which parallel extensions the transformation generated — the
  // "static property of the program" of Section 3.
  std::cout << "\ngenerated parallel extensions:\n";
  for (const auto& f : session.compiled().vec.functions) {
    if (!f.extension_of.empty()) {
      std::cout << "  " << f.name << "  (from " << f.extension_of << ")\n";
    }
  }
  return ok ? 0 : 1;
}
