// spmv.cpp — sparse matrix–vector product: the canonical *irregular*
// nested data-parallel computation (each row has a different number of
// nonzeros), which the paper's Section 6 claims executes "with excellent
// load-balance" after flattening.
//
// The matrix is a sequence of rows; each row a sequence of (column, value)
// pairs. The program is three lines of P; the transformation turns the
// per-row dot products into segmented vector operations over one flat
// value vector, so a single long row cannot stall the others.
//
// Build & run:  ./build/examples/spmv
#include <iostream>
#include <random>

#include "core/proteus.hpp"

namespace {

const char* kProgram = R"(
  // y[r] = sum_j A[r][j].2 * x[A[r][j].1]
  fun spmv(rows: seq(seq((int, real))), x: seq(real)): seq(real) =
    [row <- rows : sum([e <- row : e.2 * x[e.1]])]

  fun row_nnz(rows: seq(seq((int, real)))): seq(int) =
    [row <- rows : #row]
)";

using proteus::interp::Value;
using proteus::interp::ValueList;

/// Random sparse matrix with a skewed nonzero distribution (some rows 64x
/// denser than others — the irregular case).
Value random_matrix(std::uint64_t seed, int rows, int cols) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> col(1, cols);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  ValueList out;
  for (int r = 0; r < rows; ++r) {
    int nnz = 1 << (rng() % 7);  // 1..64 nonzeros
    ValueList row;
    for (int k = 0; k < nnz; ++k) {
      row.push_back(Value::tuple({Value::ints(col(rng)),
                                  Value::reals(val(rng))}));
    }
    out.push_back(Value::seq(std::move(row)));
  }
  return Value::seq(std::move(out));
}

Value random_vector(std::uint64_t seed, int n) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  ValueList out;
  for (int i = 0; i < n; ++i) out.push_back(Value::reals(val(rng)));
  return Value::seq(std::move(out));
}

}  // namespace

int main() {
  proteus::Session session(kProgram);

  const int rows = 64;
  const int cols = 48;
  Value a = random_matrix(3, rows, cols);
  Value x = random_vector(4, cols);

  Value y_ref = session.run_reference("spmv", {a, x});
  Value y_vec = session.run_vector("spmv", {a, x});
  const bool ok = y_ref == y_vec;

  Value nnz = session.run_vector("row_nnz", {a});
  std::cout << "row nonzero counts (irregular!): " << nnz << '\n';
  std::cout << "y[1..4] = ";
  for (int i = 0; i < 4; ++i) {
    std::cout << y_vec.as_seq()[static_cast<std::size_t>(i)] << ' ';
  }
  std::cout << "\nengines agree: " << (ok ? "yes" : "NO") << '\n';

  const auto& w = session.last_cost().vector_work;
  std::cout << "vector-model cost: " << w.primitive_calls
            << " primitives over " << w.element_work << " elements\n";
  std::cout << "(primitive count is independent of row lengths: the "
               "flattened dot products\n run as segmented operations over "
               "one flat nonzero vector)\n";
  return ok ? 0 : 1;
}
