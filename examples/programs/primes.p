// Filtered nested parallelism: trial-division primes.
fun divisors(n: int): seq(int) = [d <- [1 .. n] | n mod d == 0 : d]
fun is_prime(n: int): bool = n >= 2 and #divisors(n) == 2
fun primes_upto(n: int): seq(int) = [k <- [2 .. n] | is_prime(k) : k]
