// Reachability on an adjacency-list graph by parallel frontier expansion:
// flatten the neighbor lists of the whole frontier at once, mark the
// newly visited vertices, recurse until the frontier is empty.
fun member(x: int, v: seq(int)): bool = any([y <- v : y == x])

fun expand(adj: seq(seq(int)), frontier: seq(int)): seq(int) =
  flatten([v <- frontier : adj[v]])

fun reach_from(adj: seq(seq(int)), visited: seq(bool),
               frontier: seq(int)): seq(bool) =
  if #frontier == 0 then visited
  else
    let nbrs = expand(adj, frontier) in
    let fresh = [i <- [1 .. #visited]
                 | not visited[i] and member(i, nbrs) : i] in
    let visited2 = [i <- [1 .. #visited]
                    : visited[i] or member(i, fresh)] in
    reach_from(adj, visited2, fresh)

fun reachable(adj: seq(seq(int)), start: int): seq(bool) =
  let init = [i <- [1 .. #adj] : i == start] in
  reach_from(adj, init, [start])

fun count_reachable(adj: seq(seq(int)), start: int): int =
  sum([b <- reachable(adj, start) : if b then 1 else 0])
