// Parallel divide-and-conquer quicksort (the paper's Section 1 motivation).
fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]

fun quicksort(v: seq(int)): seq(int) =
  if #v <= 1 then v
  else
    let pivot = v[1 + (#v / 2)] in
    let parts = [p <- [[x <- v | x < pivot : x],
                       [x <- v | x > pivot : x]] : quicksort(p)] in
    parts[1] ++ [x <- v | x == pivot : x] ++ parts[2]

fun sortall(m: seq(seq(int))): seq(seq(int)) = [row <- m : quicksort(row)]
