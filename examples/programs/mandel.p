// Mandelbrot escape-time — every pixel iterates a DIFFERENT number of
// times; the flattened program masks off escaped pixels each round (rule
// R2d), which is precisely how SIMD machines rendered fractals.
fun escape(cx: real, cy: real, x: real, y: real, k: int, limit: int): int =
  if k >= limit then limit
  else if x * x + y * y > 4.0 then k
  else escape(cx, cy, x * x - y * y + cx, 2.0 * x * y + cy, k + 1, limit)

fun row(cy: real, w: int, limit: int): seq(int) =
  [i <- [1 .. w] :
     let cx = -2.0 + 3.0 * real(i - 1) / real(w) in
     escape(cx, cy, 0.0, 0.0, 0, limit)]

fun image(w: int, h: int, limit: int): seq(seq(int)) =
  [j <- [1 .. h] :
     let cy = -1.2 + 2.4 * real(j - 1) / real(h) in
     row(cy, w, limit)]

// total escape mass — a single checkable number for tests
fun mass(w: int, h: int, limit: int): int =
  sum([r <- image(w, h, limit) : sum(r)])
