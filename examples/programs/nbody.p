// All-pairs gravity step (see examples/nbody.cpp for the driver).
// a body is ((x, y), (vx, vy), mass)
fun accel_on(i: int, bodies: seq(((real,real),(real,real),real)))
    : (real, real) =
  let pi = bodies[i].1 in
  let axs = [j <- [1 .. #bodies] | j != i :
               let b = bodies[j] in
               let dx = b.1.1 - pi.1 in
               let dy = b.1.2 - pi.2 in
               let d2 = dx * dx + dy * dy + 0.01 in
               let inv = b.3 / (d2 * sqrt(d2)) in
               (dx * inv, dy * inv)] in
  (sum([a <- axs : a.1]), sum([a <- axs : a.2]))

fun step(bodies: seq(((real,real),(real,real),real)), dt: real)
    : seq(((real,real),(real,real),real)) =
  [i <- [1 .. #bodies] :
     let b = bodies[i] in
     let a = accel_on(i, bodies) in
     let vx = b.2.1 + a.1 * dt in
     let vy = b.2.2 + a.2 * dt in
     ((b.1.1 + vx * dt, b.1.2 + vy * dt), (vx, vy), b.3)]

fun kinetic(bodies: seq(((real,real),(real,real),real))): real =
  sum([b <- bodies : 0.5 * b.3 * (b.2.1 * b.2.1 + b.2.2 * b.2.2)])
