// Per-row statistics over a ragged collection.
fun mean(v: seq(real)): real = sum(v) / real(#v)
fun centered(v: seq(real)): seq(real) = let m = mean(v) in [x <- v : x - m]
fun variance(v: seq(real)): real = sum([x <- centered(v) : x * x]) / real(#v)
fun rowvars(m: seq(seq(real))): seq(real) = [row <- m : variance(row)]
