// quickhull.cpp — planar convex hull by recursive divide-and-conquer: the
// showcase nested data-parallel algorithm of the NESL lineage the paper
// builds on. Each level filters the points above a line (data-parallel),
// finds the farthest point (parallel reduction), and recurses on BOTH
// sub-problems in parallel through a nested iterator — irregularity,
// recursion, tuples, and filters in one program.
//
// Build & run:  ./build/examples/quickhull
#include <iostream>
#include <random>

#include "core/proteus.hpp"

namespace {

const char* kProgram = R"(
  // cross(o, a, b) > 0 iff b is left of the directed line o -> a
  fun cross(o: (int,int), a: (int,int), b: (int,int)): int =
    (a.1 - o.1) * (b.2 - o.2) - (a.2 - o.2) * (b.1 - o.1)

  // farthest point from the line l -> r among pts (pts nonempty)
  fun farthest(l: (int,int), r: (int,int), pts: seq((int,int))): (int,int) =
    let ds = [p <- pts : cross(l, r, p)] in
    let best = maxval(ds) in
    [i <- [1 .. #pts] | ds[i] == best : pts[i]][1]

  // hull points strictly left of l -> r, in hull order (excludes l, r)
  fun hullside(l: (int,int), r: (int,int), pts: seq((int,int)))
      : seq((int,int)) =
    let above = [p <- pts | cross(l, r, p) > 0 : p] in
    if #above == 0 then ([] : seq((int,int)))
    else
      let m = farthest(l, r, above) in
      let halves = [side <- [(l, m), (m, r)]
                    : hullside(side.1, side.2, above)] in
      halves[1] ++ [m] ++ halves[2]

  // full hull, counter-clockwise, starting at the leftmost point
  // endpoints are the lexicographic extremes (ties on x broken by y), so
  // both are true hull vertices even when several points share an x
  fun quickhull(pts: seq((int,int))): seq((int,int)) =
    let xs = [p <- pts : p.1] in
    let lx = minval(xs) in
    let rx = maxval(xs) in
    let ly = minval([p <- pts | p.1 == lx : p.2]) in
    let ry = maxval([p <- pts | p.1 == rx : p.2]) in
    let l = (lx, ly) in
    let r = (rx, ry) in
    [l] ++ hullside(l, r, pts) ++ [r] ++ hullside(r, l, pts)
)";

proteus::interp::Value random_points(std::uint64_t seed, int n) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<proteus::vl::Int> coord(-1000, 1000);
  proteus::interp::ValueList pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back(proteus::interp::Value::tuple(
        {proteus::interp::Value::ints(coord(rng)),
         proteus::interp::Value::ints(coord(rng))}));
  }
  return proteus::interp::Value::seq(std::move(pts));
}

}  // namespace

int main() {
  proteus::Session session(kProgram);

  proteus::interp::Value small = proteus::parse_value(
      "[(0,0),(4,0),(4,4),(0,4),(2,2),(1,3),(3,1),(2,0),(0,2)]");
  auto hull_ref = session.run_reference("quickhull", {small});
  auto hull_vec = session.run_vector("quickhull", {small});
  std::cout << "points: " << small << '\n';
  std::cout << "hull:   " << hull_vec << '\n';
  std::cout << "engines agree: " << (hull_ref == hull_vec ? "yes" : "NO")
            << "\n\n";

  std::cout << "n       hull  vector primitives  element work\n";
  bool all_ok = hull_ref == hull_vec;
  for (int n : {64, 256, 1024}) {
    proteus::interp::Value pts = random_points(17, n);
    auto ref = session.run_reference("quickhull", {pts});
    auto vec = session.run_vector("quickhull", {pts});
    all_ok = all_ok && ref == vec;
    const auto& w = session.last_cost().vector_work;
    std::cout.width(8);
    std::cout << std::left << n;
    std::cout.width(6);
    std::cout << vec.as_seq().size();
    std::cout.width(19);
    std::cout << w.primitive_calls << w.element_work << '\n';
  }
  std::cout << "\nall runs agree across engines: " << (all_ok ? "yes" : "NO")
            << '\n';
  return all_ok ? 0 : 1;
}
