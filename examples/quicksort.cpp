// quicksort.cpp — the paper's motivating example (Section 1): recursive
// divide-and-conquer expressed with nested data-parallelism, flattened to
// vector operations.
//
// "a data-parallel sort function can not be applied in parallel to every
//  sequence in a collection of sequences [in flat languages]. Yet this is
//  the key step in several parallel divide-and-conquer sorting
//  algorithms."
//
// This example sorts one large sequence AND a ragged collection of
// sequences (`sortall`), and prints the vector-model cost of each: note
// how the primitive count grows with recursion depth (O(log n)) while the
// element work grows with data size — the load-balance claim of Section 6.
//
// Build & run:  ./build/examples/quicksort
#include <iostream>
#include <random>

#include "core/proteus.hpp"

namespace {

const char* kProgram = R"(
  fun quicksort(v: seq(int)): seq(int) =
    if #v <= 1 then v
    else
      let pivot = v[1 + (#v / 2)] in
      let parts = [part <- [[x <- v | x < pivot : x],
                            [x <- v | x > pivot : x]] : quicksort(part)] in
      parts[1] ++ [x <- v | x == pivot : x] ++ parts[2]

  fun sortall(m: seq(seq(int))): seq(seq(int)) = [row <- m : quicksort(row)]
)";

proteus::interp::Value random_seq(std::uint64_t seed, int n) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<proteus::vl::Int> dist(0, 999);
  proteus::interp::ValueList elems;
  elems.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    elems.push_back(proteus::interp::Value::ints(dist(rng)));
  }
  return proteus::interp::Value::seq(std::move(elems));
}

}  // namespace

int main() {
  proteus::Session session(kProgram);

  // 1. Sort one sequence; compare engines.
  proteus::interp::Value input = random_seq(1, 24);
  auto reference = session.run_reference("quicksort", {input});
  auto vectorised = session.run_vector("quicksort", {input});
  std::cout << "input : " << input << '\n';
  std::cout << "sorted: " << vectorised << '\n';
  std::cout << "engines agree: " << (reference == vectorised ? "yes" : "NO")
            << "\n\n";

  // 2. The vector-model cost profile: primitives ~ recursion depth.
  std::cout << "n        vector primitives   element work\n";
  for (int n : {64, 256, 1024, 4096}) {
    (void)session.run_vector("quicksort", {random_seq(7, n)});
    const auto& w = session.last_cost().vector_work;
    std::cout.width(8);
    std::cout << std::left << n;
    std::cout.width(20);
    std::cout << w.primitive_calls << w.element_work << '\n';
  }

  // 3. Nested application: sort every row of a ragged collection at once.
  proteus::interp::ValueList rows;
  std::mt19937_64 rng(42);
  for (int r = 0; r < 6; ++r) {
    rows.push_back(random_seq(100 + static_cast<std::uint64_t>(r),
                              static_cast<int>(rng() % 8)));
  }
  proteus::interp::Value ragged = proteus::interp::Value::seq(rows);
  std::cout << "\nragged: " << ragged << '\n';
  std::cout << "sorted: " << session.run_vector("sortall", {ragged}) << '\n';
  return reference == vectorised ? 0 : 1;
}
