// nbody.cpp — all-pairs gravitational interactions: the classic O(n^2)
// data-parallel kernel, written as an iterator over bodies whose body is
// itself an iterator over all bodies (nested parallelism over the SAME
// sequence — the "fixed source" case of Section 4.5: the body list is
// gathered from one shared copy, never replicated).
//
// Build & run:  ./build/examples/nbody
#include <cmath>
#include <iostream>
#include <random>

#include "core/proteus.hpp"

namespace {

const char* kProgram = R"(
  // a body is ((x, y), (vx, vy), mass)
  fun accel_on(i: int, bodies: seq(((real,real),(real,real),real)))
      : (real, real) =
    let pi = bodies[i].1 in
    let axs = [j <- [1 .. #bodies] | j != i :
                 let b = bodies[j] in
                 let dx = b.1.1 - pi.1 in
                 let dy = b.1.2 - pi.2 in
                 let d2 = dx * dx + dy * dy + 0.01 in
                 let inv = b.3 / (d2 * sqrt(d2)) in
                 (dx * inv, dy * inv)] in
    (sum([a <- axs : a.1]), sum([a <- axs : a.2]))

  // one leapfrog step: every body updated in parallel, all-pairs forces
  fun step(bodies: seq(((real,real),(real,real),real)), dt: real)
      : seq(((real,real),(real,real),real)) =
    [i <- [1 .. #bodies] :
       let b = bodies[i] in
       let a = accel_on(i, bodies) in
       let vx = b.2.1 + a.1 * dt in
       let vy = b.2.2 + a.2 * dt in
       ((b.1.1 + vx * dt, b.1.2 + vy * dt), (vx, vy), b.3)]

  fun kinetic(bodies: seq(((real,real),(real,real),real))): real =
    sum([b <- bodies : 0.5 * b.3 * (b.2.1 * b.2.1 + b.2.2 * b.2.2)])
)";

using proteus::interp::Value;
using proteus::interp::ValueList;

Value random_bodies(std::uint64_t seed, int n) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> pos(-1.0, 1.0);
  std::uniform_real_distribution<double> mass(0.5, 2.0);
  ValueList bodies;
  for (int i = 0; i < n; ++i) {
    bodies.push_back(Value::tuple(
        {Value::tuple({Value::reals(pos(rng)), Value::reals(pos(rng))}),
         Value::tuple({Value::reals(0.0), Value::reals(0.0)}),
         Value::reals(mass(rng))}));
  }
  return Value::seq(std::move(bodies));
}

}  // namespace

int main() {
  proteus::Session session(kProgram);
  Value dt = Value::reals(0.01);

  Value bodies = random_bodies(11, 24);
  Value ref = session.run_reference("step", {bodies, dt});
  Value vec = session.run_vector("step", {bodies, dt});
  bool ok = ref == vec;
  std::cout << "engines agree on one step: " << (ok ? "yes" : "NO") << '\n';

  // run a few steps on the vector engine, tracking kinetic energy
  Value state = bodies;
  for (int s = 0; s < 5; ++s) {
    state = session.run_vector("step", {state, dt});
    Value ke = session.run_vector("kinetic", {state});
    std::cout << "step " << s + 1 << ": kinetic energy = " << ke << '\n';
  }

  const auto& w = session.last_cost().vector_work;
  (void)session.run_vector("step", {bodies, dt});
  std::cout << "\none step of n=24 all-pairs: "
            << session.last_cost().vector_work.primitive_calls
            << " vector primitives, "
            << session.last_cost().vector_work.element_work
            << " elements touched\n";
  (void)w;
  return ok ? 0 : 1;
}
