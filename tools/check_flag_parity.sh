#!/bin/sh
# check_flag_parity.sh — asserts a tool's --help documents every flag its
# argv loop actually parses.
#
#   check_flag_parity.sh <binary> <source.cpp>
#
# The source of truth is the parser itself: every string literal compared
# against an argument (`a == "--engine"`, `arg == "-O0"`) is extracted from
# the .cpp and must appear verbatim in the --help text. A flag added to the
# parser without a help line fails this test — that is the point (the help
# screen has drifted from the parser before).
set -eu

if [ $# -ne 2 ]; then
  echo "usage: $0 <binary> <source.cpp>" >&2
  exit 2
fi
bin="$1"
src="$2"

help_text=$("$bin" --help)

# Flag literals the parser compares against: "--long-flag" or "-X0" forms.
flags=$(grep -o -- '== "--\{0,1\}-[A-Za-z0-9=-]*"' "$src" |
  sed -e 's/^== "//' -e 's/"$//' -e 's/=.*$//' | sort -u)

if [ -z "$flags" ]; then
  echo "no flag literals found in $src (extraction pattern broken?)" >&2
  exit 1
fi

fail=0
for flag in $flags; do
  case "$help_text" in
    *"$flag"*) ;;
    *)
      echo "PARITY: $(basename "$bin") parses '$flag' but --help never mentions it" >&2
      fail=1
      ;;
  esac
done

if [ "$fail" -eq 0 ]; then
  echo "flag parity ok: $(echo "$flags" | wc -l | tr -d ' ') flags documented"
fi
exit $fail
