// loadgen — a small closed-loop load generator for proteusd
// (docs/SERVING.md "Overload & lifecycle").
//
// Hammers a running daemon with concurrent eval requests through the
// retrying client (serve/client.hpp), verifying every successful reply
// bit-for-bit against the locally computed expected result. This is the
// chaos/overload smoke the CI job drives: under PROTEUS_FAULT socket
// injection and under shedding, the daemon must produce zero wrong
// answers — shed requests come back as structured S001/S005 busy frames
// (counted, not failures), injected resets are absorbed by the client's
// backoff-and-retry.
//
//   loadgen --port N [--host H] [--threads T] [--requests R]
//           [--max-attempts A] [--base-backoff-ms B] [--io-timeout-ms MS]
//
// Prints a one-line JSON summary and exits 0 iff there were no wrong
// answers and no requests whose every attempt failed at the transport.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/json.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: loadgen --port N [options]\n"
        "  --port N             TCP port of a running proteusd (required)\n"
        "  --host ADDR          daemon address (default 127.0.0.1)\n"
        "  --threads N          concurrent client threads (default 4)\n"
        "  --requests N         requests per thread (default 25)\n"
        "  --max-attempts N     tries per request incl. the first\n"
        "                       (default 6)\n"
        "  --base-backoff-ms N  first-retry backoff (default 10)\n"
        "  --io-timeout-ms N    per-attempt I/O bound (default 5000)\n"
        "  --help               show this help\n";
}

bool parse_u64(std::string_view s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

struct ThreadTally {
  std::uint64_t ok = 0;          ///< correct result received
  std::uint64_t wrong = 0;       ///< a reply that should not exist
  std::uint64_t shed_final = 0;  ///< retry budget ended on a busy frame
  std::uint64_t failed = 0;      ///< every attempt failed at the transport
  proteus::serve::ClientStats stats;
};

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = -1;
  int threads = 4;
  int requests = 25;
  proteus::serve::RetryPolicy policy;
  policy.max_attempts = 6;

  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "loadgen: " << argv[i] << " needs a value\n";
      std::exit(2);
    }
    return argv[i + 1];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::uint64_t n = 0;
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (arg == "--port") {
      if (!parse_u64(need_value(i), &n) || n > 65535) {
        std::cerr << "loadgen: --port needs 0..65535\n";
        return 2;
      }
      port = static_cast<int>(n);
      ++i;
    } else if (arg == "--host") {
      host = need_value(i);
      ++i;
    } else if (arg == "--threads") {
      if (!parse_u64(need_value(i), &n) || n == 0 || n > 256) {
        std::cerr << "loadgen: --threads needs 1..256\n";
        return 2;
      }
      threads = static_cast<int>(n);
      ++i;
    } else if (arg == "--requests") {
      if (!parse_u64(need_value(i), &n) || n == 0 || n > 1000000) {
        std::cerr << "loadgen: --requests needs 1..1000000\n";
        return 2;
      }
      requests = static_cast<int>(n);
      ++i;
    } else if (arg == "--max-attempts") {
      if (!parse_u64(need_value(i), &n) || n == 0 || n > 100) {
        std::cerr << "loadgen: --max-attempts needs 1..100\n";
        return 2;
      }
      policy.max_attempts = static_cast<int>(n);
      ++i;
    } else if (arg == "--base-backoff-ms") {
      if (!parse_u64(need_value(i), &n) || n == 0 || n > 60000) {
        std::cerr << "loadgen: --base-backoff-ms needs 1..60000\n";
        return 2;
      }
      policy.base_backoff_ms = static_cast<int>(n);
      ++i;
    } else if (arg == "--io-timeout-ms") {
      if (!parse_u64(need_value(i), &n) || n == 0 || n > 600000) {
        std::cerr << "loadgen: --io-timeout-ms needs 1..600000\n";
        return 2;
      }
      policy.io_timeout_ms = static_cast<int>(n);
      ++i;
    } else {
      std::cerr << "loadgen: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    }
  }
  if (port < 0) {
    std::cerr << "loadgen: --port is required\n";
    return 2;
  }

  const std::string source = "fun sq(n: int): int = n*n";
  std::vector<ThreadTally> tallies(static_cast<std::size_t>(threads));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      proteus::serve::RetryPolicy my_policy = policy;
      // Decorrelate the threads' retry schedules.
      my_policy.jitter_seed =
          policy.jitter_seed + static_cast<std::uint64_t>(t) * 0x9E37u + 1;
      proteus::serve::RetryingClient client(host, port, my_policy);
      ThreadTally& tally = tallies[static_cast<std::size_t>(t)];
      for (int r = 0; r < requests; ++r) {
        const int k = (t * requests + r) % 97;
        proteus::serve::Json::Object req;
        req["op"] = "eval";
        req["source"] = source;
        req["fun"] = "sq";
        proteus::serve::Json::Array args;
        args.emplace_back(std::to_string(k));
        req["args"] = std::move(args);

        std::string error;
        std::optional<proteus::serve::Json> reply =
            client.call(proteus::serve::Json(std::move(req)), &error);
        if (!reply.has_value()) {
          ++tally.failed;
          continue;
        }
        if (!reply->get("ok").as_bool(false)) {
          const std::string& code =
              reply->get("error").get("code").as_string();
          if (code == "S001" || code == "S005") {
            ++tally.shed_final;  // shed is correct behaviour, not a bug
          } else {
            ++tally.wrong;
          }
          continue;
        }
        if (reply->get("result").as_string() == std::to_string(k * k)) {
          ++tally.ok;
        } else {
          ++tally.wrong;
        }
      }
      tally.stats = client.stats();
    });
  }
  for (std::thread& t : pool) t.join();

  ThreadTally total;
  for (const ThreadTally& t : tallies) {
    total.ok += t.ok;
    total.wrong += t.wrong;
    total.shed_final += t.shed_final;
    total.failed += t.failed;
    total.stats.attempts += t.stats.attempts;
    total.stats.busy_retries += t.stats.busy_retries;
    total.stats.io_retries += t.stats.io_retries;
  }

  proteus::serve::Json::Object summary;
  summary["requests"] =
      static_cast<std::uint64_t>(threads) * static_cast<std::uint64_t>(requests);
  summary["ok"] = total.ok;
  summary["wrong"] = total.wrong;
  summary["shed_final"] = total.shed_final;
  summary["failed"] = total.failed;
  summary["attempts"] = total.stats.attempts;
  summary["busy_retries"] = total.stats.busy_retries;
  summary["io_retries"] = total.stats.io_retries;
  std::cout << proteus::serve::Json(std::move(summary)).dump() << "\n";

  return (total.wrong == 0 && total.failed == 0) ? 0 : 1;
}
