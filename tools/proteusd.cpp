// proteusd — the compile-once / evaluate-many serving daemon
// (docs/SERVING.md).
//
// Speaks newline-delimited JSON: one request object per line, one reply
// per line. Programs compile once through the full pipeline, land in a
// module cache keyed by source hash + compile options (optionally
// persisted as VCODE module images shared with `proteusc
// --module-cache`), and every evaluation runs inside its own governor
// scope, so a request that blows its budget gets a structured T00x error
// reply while the daemon keeps serving.
//
//   proteusd --stdio                      # stdin/stdout (tests, CI smoke)
//   proteusd --port 0                     # TCP; port 0 picks a free port
//   proteusd --port 7571 --workers 4 --cache-dir /var/tmp/proteus-cache
//   proteusd --port 0 --metrics-port 9090 --trace-sample-rate 0.01
//
// Telemetry (docs/OBSERVABILITY.md): every request gets a request_id,
// latency histograms, and a structured log line on stderr; sampled
// requests keep their span trace in a ring served by {"op":"trace"}.
// --metrics-port starts a second listener answering HTTP GET /metrics
// with the OpenMetrics exposition for Prometheus.
//
// Overload & lifecycle (docs/SERVING.md): admission is bounded
// (--max-queue/--max-conns shed with S001 busy frames), every connection
// is deadline-guarded (--idle-timeout-ms/--io-timeout-ms/
// --max-line-bytes), and SIGTERM/SIGINT drain gracefully: stop
// accepting, serve in-flight and queued requests for up to --drain-ms,
// then exit 0. {"op":"health"} reports ok|draining for readiness probes.
//
// Exit codes: 0 clean shutdown (including a signal-driven drain),
// 1 transport failure, 2 usage error.
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>

#include "core/proteus.hpp"
#include "obs/log.hpp"
#include "rt/fault.hpp"
#include "serve/server.hpp"

namespace {

// Signal handling: the handlers only set this flag (the only thing
// async-signal-safe to do); the transports poll it through
// ServerOptions::shutdown_flag and run the drain on their own threads.
// Installed WITHOUT SA_RESTART so a SIGTERM interrupts a blocked
// stdin read with EINTR instead of silently restarting it — that is
// what lets --stdio drain promptly.
volatile std::sig_atomic_t g_shutdown_requested = 0;

#if !defined(_WIN32)
extern "C" void on_shutdown_signal(int) { g_shutdown_requested = 1; }

void install_signal_handlers() {
  struct sigaction sa{};
  sa.sa_handler = on_shutdown_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocked reads must see EINTR
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}
#else
void install_signal_handlers() {
  std::signal(SIGTERM, [](int) { g_shutdown_requested = 1; });
  std::signal(SIGINT, [](int) { g_shutdown_requested = 1; });
}
#endif

void usage(std::ostream& os) {
  os << "usage: proteusd [--stdio | --port N] [options]\n"
        "\n"
        "transports:\n"
        "  --stdio                serve newline-delimited JSON on stdin/stdout\n"
        "  --port N               serve TCP on --host:N (0 picks a free port;\n"
        "                         the chosen port is announced on stdout)\n"
        "  --host ADDR            TCP bind address (default 127.0.0.1)\n"
        "  --workers N            TCP worker threads (default 2)\n"
        "  --metrics-port N       also answer HTTP GET /metrics on --host:N\n"
        "                         with the OpenMetrics text exposition\n"
        "                         (0 picks a free port, announced on stderr)\n"
        "\n"
        "compilation and cache:\n"
        "  --cache-dir DIR        persist compiled modules as <hash>.pvcm\n"
        "                         images under DIR (shared with proteusc\n"
        "                         --module-cache); default: in-memory only\n"
        "  --no-optimize          skip the VCODE optimizer (-O0 modules)\n"
        "  --no-verify            skip bytecode verification of assembled\n"
        "                         and disk-loaded modules\n"
        "\n"
        "memory plan (docs/ANALYSIS.md, docs/VM.md):\n"
        "  --arena                plan-backed arena execution: evals recycle\n"
        "                         buffers through a per-evaluation arena\n"
        "                         sized from the module's memory plan\n"
        "  --admission            reject evals whose static peak-resident\n"
        "                         bound exceeds the request's byte budget\n"
        "                         (trap T001 before any work runs)\n"
        "\n"
        "telemetry (docs/OBSERVABILITY.md):\n"
        "  --log-level LVL        request/trap log threshold: debug, info,\n"
        "                         warn, error, off (default info; logs go\n"
        "                         to stderr)\n"
        "  --log-json             structured NDJSON log lines instead of\n"
        "                         key=value text\n"
        "  --trace-sample-rate R  fraction of requests (0..1) whose span\n"
        "                         trace is recorded for {\"op\":\"trace\"}\n"
        "                         (default 0)\n"
        "  --trace-ring N         keep the last N sampled request traces\n"
        "                         (default 32)\n"
        "  --no-telemetry         disable the per-request telemetry wrapper\n"
        "                         entirely (request ids, histograms, logs,\n"
        "                         sampling)\n"
        "\n"
        "per-request resource ceilings (0 = unlimited; a request's own\n"
        "\"budget\" object can tighten but never exceed these):\n"
        "  --max-budget-bytes N   resident vector bytes (T001)\n"
        "  --max-budget-steps N   element-work steps (T002)\n"
        "  --max-budget-depth N   call/nesting depth (T003)\n"
        "  --max-budget-deadline-ms N  wall-clock per request (T004)\n"
        "\n"
        "overload protection & lifecycle (docs/SERVING.md; TCP transport;\n"
        "0 disables a knob):\n"
        "  --max-queue N          connections waiting for a worker before\n"
        "                         new ones are shed with an S001 busy frame\n"
        "                         (default 64)\n"
        "  --max-conns N          total accepted connections, queued plus\n"
        "                         in service (default 0 = unbounded)\n"
        "  --idle-timeout-ms N    close a connection that sends nothing for\n"
        "                         this long, S002 (default 60000)\n"
        "  --io-timeout-ms N      close a connection whose mid-request I/O\n"
        "                         stalls this long, S003 (default 10000)\n"
        "  --max-line-bytes N     per-request-line byte bound, S004\n"
        "                         (default 8388608)\n"
        "  --drain-ms N           SIGTERM/SIGINT grace: serve in-flight and\n"
        "                         queued requests for up to N ms, then exit\n"
        "                         0 (default 5000)\n"
        "  --retry-after-ms N     backoff hint stamped into S001/S005\n"
        "                         shedding frames (default 100)\n"
        "  --inject SPEC          deterministic fault injection at the\n"
        "                         socket wrappers, e.g. sock-read:3 (S006),\n"
        "                         sock-write:2 (S007), sock-stall:1 (S008);\n"
        "                         also via PROTEUS_FAULT\n"
        "\n"
        "  --help                 show this help\n"
        "\n"
        "protocol (one JSON object per line; docs/SERVING.md has the full\n"
        "schema):\n"
        "  {\"op\":\"ping\"}\n"
        "  {\"op\":\"compile\",\"source\":\"fun f(n: int): int = n*n\"}\n"
        "  {\"op\":\"eval\",\"source\":\"...\",\"fun\":\"f\",\"args\":[\"7\"],\n"
        "   \"budget\":{\"steps\":100000}}\n"
        "  {\"op\":\"metrics\"}   {\"op\":\"metrics\",\"format\":\"openmetrics\"}\n"
        "  {\"op\":\"trace\",\"limit\":5}   {\"op\":\"health\"}   "
        "{\"op\":\"shutdown\"}\n";
}

bool parse_u64(std::string_view s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool parse_rate(std::string_view s, double* out) {
  if (s.empty()) return false;
  try {
    std::size_t used = 0;
    const double v = std::stod(std::string(s), &used);
    if (used != s.size() || v < 0.0 || v > 1.0) return false;
    *out = v;
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  proteus::serve::ServerOptions options;
  bool stdio = false;
  bool have_port = false;
  int port = 0;
  bool have_metrics_port = false;
  int metrics_port = 0;
  std::string host = "127.0.0.1";
  proteus::obs::LogLevel log_level = proteus::obs::LogLevel::kInfo;
  bool log_json = false;

  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "proteusd: " << argv[i] << " needs a value\n";
      std::exit(2);
    }
    return argv[i + 1];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::uint64_t n = 0;
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (arg == "--stdio") {
      stdio = true;
    } else if (arg == "--port") {
      if (!parse_u64(need_value(i), &n) || n > 65535) {
        std::cerr << "proteusd: --port needs 0..65535\n";
        return 2;
      }
      port = static_cast<int>(n);
      have_port = true;
      ++i;
    } else if (arg == "--metrics-port") {
      if (!parse_u64(need_value(i), &n) || n > 65535) {
        std::cerr << "proteusd: --metrics-port needs 0..65535\n";
        return 2;
      }
      metrics_port = static_cast<int>(n);
      have_metrics_port = true;
      ++i;
    } else if (arg == "--host") {
      host = need_value(i);
      ++i;
    } else if (arg == "--workers") {
      if (!parse_u64(need_value(i), &n) || n == 0 || n > 256) {
        std::cerr << "proteusd: --workers needs 1..256\n";
        return 2;
      }
      options.workers = static_cast<int>(n);
      ++i;
    } else if (arg == "--cache-dir") {
      options.cache_dir = need_value(i);
      ++i;
    } else if (arg == "--no-optimize") {
      options.optimize = false;
    } else if (arg == "--no-verify") {
      options.verify = false;
    } else if (arg == "--arena") {
      options.arena = true;
    } else if (arg == "--admission") {
      options.admission = true;
    } else if (arg == "--log-level") {
      bool ok = false;
      log_level = proteus::obs::parse_log_level(need_value(i), &ok);
      if (!ok) {
        std::cerr << "proteusd: --log-level needs debug, info, warn, error,"
                     " or off\n";
        return 2;
      }
      ++i;
    } else if (arg == "--log-json") {
      log_json = true;
    } else if (arg == "--trace-sample-rate") {
      if (!parse_rate(need_value(i), &options.trace_sample_rate)) {
        std::cerr << "proteusd: --trace-sample-rate needs 0..1\n";
        return 2;
      }
      ++i;
    } else if (arg == "--trace-ring") {
      if (!parse_u64(need_value(i), &n) || n == 0 || n > 65536) {
        std::cerr << "proteusd: --trace-ring needs 1..65536\n";
        return 2;
      }
      options.trace_ring_capacity = static_cast<std::size_t>(n);
      ++i;
    } else if (arg == "--no-telemetry") {
      options.telemetry = false;
    } else if (arg == "--max-budget-bytes") {
      if (!parse_u64(need_value(i), &n)) {
        std::cerr << "proteusd: --max-budget-bytes needs a number\n";
        return 2;
      }
      options.max_budget.max_resident_bytes = n;
      ++i;
    } else if (arg == "--max-budget-steps") {
      if (!parse_u64(need_value(i), &n)) {
        std::cerr << "proteusd: --max-budget-steps needs a number\n";
        return 2;
      }
      options.max_budget.max_steps = n;
      ++i;
    } else if (arg == "--max-budget-depth") {
      if (!parse_u64(need_value(i), &n) || n > 1000000) {
        std::cerr << "proteusd: --max-budget-depth needs 0..1000000\n";
        return 2;
      }
      options.max_budget.max_depth = static_cast<int>(n);
      ++i;
    } else if (arg == "--max-budget-deadline-ms") {
      if (!parse_u64(need_value(i), &n)) {
        std::cerr << "proteusd: --max-budget-deadline-ms needs a number\n";
        return 2;
      }
      options.max_budget.deadline_ms = n;
      ++i;
    } else if (arg == "--max-queue") {
      if (!parse_u64(need_value(i), &n) || n > 1000000) {
        std::cerr << "proteusd: --max-queue needs 0..1000000\n";
        return 2;
      }
      options.max_queue = static_cast<int>(n);
      ++i;
    } else if (arg == "--max-conns") {
      if (!parse_u64(need_value(i), &n) || n > 1000000) {
        std::cerr << "proteusd: --max-conns needs 0..1000000\n";
        return 2;
      }
      options.max_conns = static_cast<int>(n);
      ++i;
    } else if (arg == "--idle-timeout-ms") {
      if (!parse_u64(need_value(i), &n) || n > 86400000) {
        std::cerr << "proteusd: --idle-timeout-ms needs 0..86400000\n";
        return 2;
      }
      options.idle_timeout_ms = static_cast<int>(n);
      ++i;
    } else if (arg == "--io-timeout-ms") {
      if (!parse_u64(need_value(i), &n) || n > 86400000) {
        std::cerr << "proteusd: --io-timeout-ms needs 0..86400000\n";
        return 2;
      }
      options.io_timeout_ms = static_cast<int>(n);
      ++i;
    } else if (arg == "--max-line-bytes") {
      if (!parse_u64(need_value(i), &n)) {
        std::cerr << "proteusd: --max-line-bytes needs a number\n";
        return 2;
      }
      options.max_line_bytes = static_cast<std::size_t>(n);
      ++i;
    } else if (arg == "--drain-ms") {
      if (!parse_u64(need_value(i), &n) || n > 86400000) {
        std::cerr << "proteusd: --drain-ms needs 0..86400000\n";
        return 2;
      }
      options.drain_ms = static_cast<int>(n);
      ++i;
    } else if (arg == "--retry-after-ms") {
      if (!parse_u64(need_value(i), &n) || n > 86400000) {
        std::cerr << "proteusd: --retry-after-ms needs 0..86400000\n";
        return 2;
      }
      options.retry_after_ms = static_cast<int>(n);
      ++i;
    } else if (arg == "--inject") {
      try {
        proteus::rt::arm_faults(
            proteus::rt::parse_fault_plan(need_value(i)));
      } catch (const proteus::Error& e) {
        std::cerr << "proteusd: " << e.what() << "\n";
        return 2;
      }
      ++i;
    } else {
      std::cerr << "proteusd: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    }
  }

  if (stdio == have_port) {
    std::cerr << "proteusd: pick exactly one transport: --stdio or --port N\n";
    return 2;
  }

  // Request/trap logs go to stderr so --stdio's NDJSON stays clean.
  proteus::obs::logger().configure(
      options.telemetry ? log_level : proteus::obs::LogLevel::kOff, log_json,
      &std::cerr);

  install_signal_handlers();
  options.shutdown_flag = &g_shutdown_requested;

  proteus::serve::Server server(options);
  if (!options.cache_dir.empty()) {
    std::cerr << "proteusd: module cache at " << options.cache_dir << "\n";
  }

  // The metrics scrape endpoint runs on its own thread next to the main
  // transport; its announce line goes to stderr so it never pollutes the
  // --stdio NDJSON stream.
  std::thread metrics_thread;
  if (have_metrics_port) {
    metrics_thread = std::thread([&server, host, metrics_port] {
      if (server.serve_metrics_http(host, metrics_port, std::cerr) != 0) {
        std::cerr << "proteusd: failed to bind metrics port\n";
      }
    });
  }

  int rc = 0;
  if (stdio) {
    rc = server.serve_stdio(std::cin, std::cout);
  } else {
    rc = server.serve_tcp(host, port, std::cout);
    if (rc != 0) {
      std::cerr << "proteusd: failed to bind " << host << ":" << port << "\n";
    }
  }
  server.request_stop();  // winds the metrics listener down too
  if (metrics_thread.joinable()) metrics_thread.join();
  return rc;
}
