// proteusd — the compile-once / evaluate-many serving daemon
// (docs/SERVING.md).
//
// Speaks newline-delimited JSON: one request object per line, one reply
// per line. Programs compile once through the full pipeline, land in a
// module cache keyed by source hash + compile options (optionally
// persisted as VCODE module images shared with `proteusc
// --module-cache`), and every evaluation runs inside its own governor
// scope, so a request that blows its budget gets a structured T00x error
// reply while the daemon keeps serving.
//
//   proteusd --stdio                      # stdin/stdout (tests, CI smoke)
//   proteusd --port 0                     # TCP; port 0 picks a free port
//   proteusd --port 7571 --workers 4 --cache-dir /var/tmp/proteus-cache
//
// Exit codes: 0 clean shutdown, 1 transport failure, 2 usage error.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>

#include "serve/server.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: proteusd [--stdio | --port N] [options]\n"
        "\n"
        "transports:\n"
        "  --stdio                serve newline-delimited JSON on stdin/stdout\n"
        "  --port N               serve TCP on --host:N (0 picks a free port;\n"
        "                         the chosen port is announced on stdout)\n"
        "  --host ADDR            TCP bind address (default 127.0.0.1)\n"
        "  --workers N            TCP worker threads (default 2)\n"
        "\n"
        "compilation and cache:\n"
        "  --cache-dir DIR        persist compiled modules as <hash>.pvcm\n"
        "                         images under DIR (shared with proteusc\n"
        "                         --module-cache); default: in-memory only\n"
        "  --no-optimize          skip the VCODE optimizer (-O0 modules)\n"
        "  --no-verify            skip bytecode verification of assembled\n"
        "                         and disk-loaded modules\n"
        "\n"
        "per-request resource ceilings (0 = unlimited; a request's own\n"
        "\"budget\" object can tighten but never exceed these):\n"
        "  --max-budget-bytes N   resident vector bytes (T001)\n"
        "  --max-budget-steps N   element-work steps (T002)\n"
        "  --max-budget-depth N   call/nesting depth (T003)\n"
        "  --max-budget-deadline-ms N  wall-clock per request (T004)\n"
        "\n"
        "  --help                 show this help\n"
        "\n"
        "protocol (one JSON object per line; docs/SERVING.md has the full\n"
        "schema):\n"
        "  {\"op\":\"ping\"}\n"
        "  {\"op\":\"compile\",\"source\":\"fun f(n: int): int = n*n\"}\n"
        "  {\"op\":\"eval\",\"source\":\"...\",\"fun\":\"f\",\"args\":[\"7\"],\n"
        "   \"budget\":{\"steps\":100000}}\n"
        "  {\"op\":\"metrics\"}   {\"op\":\"shutdown\"}\n";
}

bool parse_u64(std::string_view s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  proteus::serve::ServerOptions options;
  bool stdio = false;
  bool have_port = false;
  int port = 0;
  std::string host = "127.0.0.1";

  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "proteusd: " << argv[i] << " needs a value\n";
      std::exit(2);
    }
    return argv[i + 1];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::uint64_t n = 0;
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (arg == "--stdio") {
      stdio = true;
    } else if (arg == "--port") {
      if (!parse_u64(need_value(i), &n) || n > 65535) {
        std::cerr << "proteusd: --port needs 0..65535\n";
        return 2;
      }
      port = static_cast<int>(n);
      have_port = true;
      ++i;
    } else if (arg == "--host") {
      host = need_value(i);
      ++i;
    } else if (arg == "--workers") {
      if (!parse_u64(need_value(i), &n) || n == 0 || n > 256) {
        std::cerr << "proteusd: --workers needs 1..256\n";
        return 2;
      }
      options.workers = static_cast<int>(n);
      ++i;
    } else if (arg == "--cache-dir") {
      options.cache_dir = need_value(i);
      ++i;
    } else if (arg == "--no-optimize") {
      options.optimize = false;
    } else if (arg == "--no-verify") {
      options.verify = false;
    } else if (arg == "--max-budget-bytes") {
      if (!parse_u64(need_value(i), &n)) {
        std::cerr << "proteusd: --max-budget-bytes needs a number\n";
        return 2;
      }
      options.max_budget.max_resident_bytes = n;
      ++i;
    } else if (arg == "--max-budget-steps") {
      if (!parse_u64(need_value(i), &n)) {
        std::cerr << "proteusd: --max-budget-steps needs a number\n";
        return 2;
      }
      options.max_budget.max_steps = n;
      ++i;
    } else if (arg == "--max-budget-depth") {
      if (!parse_u64(need_value(i), &n) || n > 1000000) {
        std::cerr << "proteusd: --max-budget-depth needs 0..1000000\n";
        return 2;
      }
      options.max_budget.max_depth = static_cast<int>(n);
      ++i;
    } else if (arg == "--max-budget-deadline-ms") {
      if (!parse_u64(need_value(i), &n)) {
        std::cerr << "proteusd: --max-budget-deadline-ms needs a number\n";
        return 2;
      }
      options.max_budget.deadline_ms = n;
      ++i;
    } else {
      std::cerr << "proteusd: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    }
  }

  if (stdio == have_port) {
    std::cerr << "proteusd: pick exactly one transport: --stdio or --port N\n";
    return 2;
  }

  proteus::serve::Server server(options);
  if (!options.cache_dir.empty()) {
    std::cerr << "proteusd: module cache at " << options.cache_dir << "\n";
  }
  if (stdio) {
    return server.serve_stdio(std::cin, std::cout);
  }
  const int rc = server.serve_tcp(host, port, std::cout);
  if (rc != 0) {
    std::cerr << "proteusd: failed to bind " << host << ":" << port << "\n";
  }
  return rc;
}
