// proteusc — command-line driver for the proteus-vec pipeline.
//
//   proteusc FILE.p [options]
//
//   --entry EXPR       expression to evaluate in the program's scope
//   --call F A1 A2 ..  call function F with P literals as arguments
//   --engine E         vec (default) | ref | vm | both (ref vs vec) |
//                      all (ref vs vec vs vm)
//   --dump STAGE       print a stage instead of running:
//                      checked | canon | flat | vec | vcode | trace
//   --stats            print cost counters after the run
//   --naive            disable the Section 4.5 optimizations (ablation)
//   --backend B        serial (default) | openmp — vl execution policy
//
// Examples:
//   proteusc examples/programs/sort.p --call quicksort '[3,1,2]'
//   proteusc examples/programs/sort.p --entry '[k <- [1..5] : sqs(k)]' --dump vec
//   proteusc examples/programs/sort.p --call quicksort '[3,1,2]' --engine vm --stats
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/proteus.hpp"
#include "lang/printer.hpp"
#include "vm/disasm.hpp"

namespace {

[[noreturn]] void usage(const std::string& err = {}) {
  if (!err.empty()) std::cerr << "proteusc: " << err << "\n\n";
  std::cerr <<
      "usage: proteusc FILE.p [--entry EXPR | --call F ARGS...]\n"
      "                [--engine vec|ref|vm|both|all]\n"
      "                [--dump checked|canon|flat|vec|vcode|trace]\n"
      "                [--backend serial|openmp] [--stats] [--naive]\n";
  std::exit(err.empty() ? 0 : 2);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) usage("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void print_stats(const proteus::RunCost& cost, const std::string& engine) {
  if (engine == "ref") {
    std::cerr << "[stats] iterator iterations: " << cost.reference.iterations
              << ", scalar ops (work): " << cost.reference.scalar_ops
              << ", steps (critical path): " << cost.reference.steps
              << ", user calls: " << cost.reference.calls << '\n';
    return;
  }
  std::cerr << "[stats] vector primitives: "
            << cost.vector_work.primitive_calls
            << ", element work: " << cost.vector_work.element_work
            << ", user calls: "
            << (engine == "vm" ? cost.vm_ops.calls : cost.vector_ops.calls)
            << '\n';
  std::cerr << "[stats] instruction mix:";
  const auto& per_prim =
      engine == "vm" ? cost.vm_ops.per_prim : cost.vector_ops.per_prim;
  for (const auto& [op, count] : per_prim) {
    std::cerr << ' ' << proteus::lang::prim_name(op) << '=' << count;
  }
  std::cerr << '\n';
  if (engine == "vm") {
    std::cerr << "[stats] vm instructions: " << cost.vm_ops.instructions
              << "; per-opcode count/work/us:";
    for (int i = 0; i < proteus::vm::kNumOps; ++i) {
      const proteus::vm::OpProfile& p =
          cost.vm_ops.per_op[static_cast<std::size_t>(i)];
      if (p.count == 0) continue;
      std::cerr << ' ' << proteus::vm::op_name(static_cast<proteus::vm::Op>(i))
                << '=' << p.count << '/' << p.element_work << '/'
                << p.nanos / 1000;
    }
    std::cerr << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) usage();

  std::string file;
  std::string entry;
  std::string call;
  std::vector<std::string> call_args;
  std::string engine = "vec";
  std::string dump;
  bool stats = false;
  bool naive = false;
  std::string backend = "serial";

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&](const char* what) -> std::string {
      if (++i >= args.size()) usage(std::string("missing value for ") + what);
      return args[i];
    };
    if (a == "--help" || a == "-h") {
      usage();
    } else if (a == "--entry") {
      entry = next("--entry");
    } else if (a == "--call") {
      call = next("--call");
      while (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
        call_args.push_back(args[++i]);
      }
    } else if (a == "--engine") {
      engine = next("--engine");
    } else if (a == "--dump") {
      dump = next("--dump");
    } else if (a == "--stats") {
      stats = true;
    } else if (a == "--naive") {
      naive = true;
    } else if (a == "--backend") {
      backend = next("--backend");
    } else if (a.rfind("--", 0) == 0) {
      usage("unknown option '" + a + "'");
    } else if (file.empty()) {
      file = a;
    } else {
      usage("multiple input files");
    }
  }
  if (file.empty()) usage("no input file");
  if (engine != "vec" && engine != "ref" && engine != "vm" &&
      engine != "both" && engine != "all") {
    usage("--engine must be vec, ref, vm, both, or all");
  }
  if (backend == "openmp") {
    proteus::vl::set_backend(proteus::vl::Backend::kOpenMP);
    if (proteus::vl::backend() != proteus::vl::Backend::kOpenMP) {
      std::cerr << "proteusc: OpenMP backend unavailable, using serial\n";
    }
  } else if (backend != "serial") {
    usage("--backend must be serial or openmp");
  }

  try {
    proteus::xform::PipelineOptions options;
    options.collect_trace = dump == "trace";
    if (naive) {
      options.flatten.broadcast_invariant_seq_args = false;
      options.shared_row_gather = false;
    }
    proteus::Session session(read_file(file), entry, options);

    if (dump == "trace") {
      for (const std::string& line : session.compiled().derivation) {
        std::cout << line << '\n';
      }
      return 0;
    }
    if (dump == "vcode") {
      std::cout << proteus::vm::to_text(*session.compiled().module);
      return 0;
    }
    if (!dump.empty()) {
      const auto& c = session.compiled();
      const proteus::lang::Program* stage = nullptr;
      const proteus::lang::ExprPtr* entry_stage = nullptr;
      if (dump == "checked") {
        stage = &c.checked;
        entry_stage = &c.entry_checked;
      } else if (dump == "canon") {
        stage = &c.canonical;
      } else if (dump == "flat") {
        stage = &c.flat;
        entry_stage = &c.entry_flat;
      } else if (dump == "vec") {
        stage = &c.vec;
        entry_stage = &c.entry_vec;
      } else {
        usage("--dump must be checked, canon, flat, vec, vcode, or trace");
      }
      std::cout << proteus::lang::to_text(*stage);
      if (entry_stage != nullptr && *entry_stage != nullptr) {
        std::cout << "// entry:\n"
                  << proteus::lang::to_text(*entry_stage) << '\n';
      }
      return 0;
    }

    if (stats && (engine == "vm" || engine == "all")) {
      session.set_vm_profile(true);
    }

    auto run = [&](const std::string& eng) -> proteus::interp::Value {
      proteus::interp::Value result;
      if (!call.empty()) {
        proteus::interp::ValueList values;
        for (const std::string& lit : call_args) {
          values.push_back(proteus::parse_value(lit));
        }
        result = eng == "ref"  ? session.run_reference(call, values)
                 : eng == "vm" ? session.run_vm(call, values)
                               : session.run_vector(call, values);
      } else if (!entry.empty()) {
        result = eng == "ref"  ? session.run_entry_reference()
                 : eng == "vm" ? session.run_entry_vm()
                               : session.run_entry_vector();
      } else {
        usage("nothing to run: give --entry or --call (or --dump)");
      }
      if (stats) print_stats(session.last_cost(), eng);
      return result;
    };

    if (engine == "both" || engine == "all") {
      proteus::interp::Value ref = run("ref");
      proteus::interp::Value vec = run("vec");
      bool agree = ref == vec;
      if (engine == "all") {
        proteus::interp::Value vmv = run("vm");
        if (!(vec == vmv)) {
          std::cerr << "proteusc: ENGINE MISMATCH\n  vec: " << vec
                    << "\n  vm:  " << vmv << '\n';
          return 1;
        }
      }
      std::cout << vec << '\n';
      if (!agree) {
        std::cerr << "proteusc: ENGINE MISMATCH\n  ref: " << ref
                  << "\n  vec: " << vec << '\n';
        return 1;
      }
      std::cerr << (engine == "all" ? "[all] engines agree\n"
                                    : "[both] engines agree\n");
    } else {
      std::cout << run(engine) << '\n';
    }
    return 0;
  } catch (const proteus::Error& e) {
    std::cerr << "proteusc: " << e.what() << '\n';
    return 1;
  }
}
