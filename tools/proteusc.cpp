// proteusc — command-line driver for the proteus-vec pipeline.
//
//   proteusc FILE.p [options]
//
//   --entry EXPR       expression to evaluate in the program's scope
//   --call F A1 A2 ..  call function F with P literals as arguments
//   --engine E         vec (default) | ref | vm | both (ref vs vec) |
//                      all (ref vs vec vs vm)
//   --dump STAGE       print a stage instead of running:
//                      checked | canon | flat | vec | vcode | trace
//   --stats[=json]     print cost counters after the run (text to
//                      stderr, or one machine-readable JSON document to
//                      stdout — see docs/OBSERVABILITY.md for the schema)
//   --trace-json FILE  record compile + runtime spans and write a Chrome
//                      trace-event file (open in Perfetto)
//   --analyze[=json]   run the static shape/depth analyzer and the VCODE
//                      bytecode verifier, print their diagnostics (text or
//                      one JSON document; schema in docs/ANALYSIS.md), and
//                      exit 0 (clean) or 3 (rejected) without running
//   --no-verify-vcode  skip bytecode verification of the assembled module
//   -O0 / -O1          disable / enable (default) the VCODE optimizer:
//                      elementwise chain fusion + dead-move elimination
//   --naive            disable the Section 4.5 optimizations (ablation)
//   --backend B        serial (default) | openmp — vl execution policy
//   --budget-mem N     cap live vl vector memory at N bytes (trap T001)
//   --budget-steps N   cap element-work steps at N (trap T002)
//   --budget-depth N   cap call/nesting depth at N (trap T003)
//   --budget-deadline-ms N  wall-clock deadline per run (trap T004)
//   --inject SPEC      deterministic fault injection, e.g. alloc:3,kernel:7
//                      (also via the PROTEUS_FAULT environment variable)
//   --no-fallback      disable the graceful-degradation ladder: traps
//                      propagate instead of retrying on a simpler engine
//   --emit-module FILE write the compiled VCODE module image (vm/module_io)
//   --load-module FILE run a module image instead of compiling source
//   --module-cache DIR AOT module cache keyed by source+options hash,
//                      shared with proteusd --cache-dir
//
// Exit codes: 0 success; 1 compile or runtime error; 2 usage error;
// 3 static analysis / bytecode verification rejected the program;
// 4 resource trap (budget exceeded, cancelled, or injected fault with no
//   fallback left) — see docs/ROBUSTNESS.md.
//
// Examples:
//   proteusc examples/programs/sort.p --call quicksort '[3,1,2]'
//   proteusc examples/programs/sort.p --entry '[k <- [1..5] : sqs(k)]' --dump vec
//   proteusc examples/programs/sort.p --call quicksort '[3,1,2]' --engine vm --stats
//   proteusc sort.p --call quicksort '[3,1,2]' --trace-json t.json --stats=json
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "analysis/lifetime.hpp"
#include "core/proteus.hpp"
#include "core/report.hpp"
#include "lang/printer.hpp"
#include "rt/rt.hpp"
#include "vm/disasm.hpp"
#include "vm/module_io.hpp"
#include "vm/verify.hpp"

namespace {

[[noreturn]] void usage(const std::string& err = {}) {
  if (!err.empty()) std::cerr << "proteusc: " << err << "\n\n";
  // Requested help goes to stdout (so `proteusc --help | grep` works);
  // the usage dump accompanying a bad invocation goes to stderr.
  (err.empty() ? std::cout : std::cerr) <<
      "usage: proteusc FILE.p [options]\n"
      "       proteusc --load-module FILE.pvcm [--call F ARGS...] [options]\n"
      "\n"
      "what to run:\n"
      "  --entry EXPR        evaluate EXPR in the program's scope\n"
      "  --call F A1 A2 ..   call function F with P literals as arguments\n"
      "  --engine E          vec (default) | ref | vm | both (ref vs vec) |\n"
      "                      all (ref vs vec vs vm)\n"
      "  --backend B         serial (default) | openmp - vl execution policy\n"
      "\n"
      "inspection instead of running:\n"
      "  --dump STAGE        checked | canon | flat | vec | vcode | trace\n"
      "  --analyze[=json]    run the static shape/depth analyzer and the\n"
      "                      VCODE verifier, print diagnostics (schema in\n"
      "                      docs/ANALYSIS.md), exit 0 (clean) / 3 (rejected);\n"
      "                      json output includes the \"memory\" section\n"
      "  --analyze=memory    print the per-function memory plan (peak bound,\n"
      "                      arena slots, static allocs) and the M3xx\n"
      "                      advisories of the buffer-lifetime analyzer\n"
      "\n"
      "compilation:\n"
      "  -O0 / -O1           disable / enable (default) the VCODE optimizer\n"
      "  --no-verify-vcode   skip bytecode verification of the module\n"
      "  --naive             disable the Section 4.5 optimizations (ablation)\n"
      "  --arena             plan-backed arena execution on the vm engine:\n"
      "                      buffers recycle through a per-run arena sized\n"
      "                      from the memory plan (docs/VM.md)\n"
      "  --admission         trap T001 up front when the plan's static\n"
      "                      peak-resident bound exceeds --budget-mem\n"
      "\n"
      "module images (docs/SERVING.md):\n"
      "  --emit-module FILE  write the compiled VCODE module image to FILE\n"
      "                      and exit (add --call to also run it)\n"
      "  --load-module FILE  run a module image instead of compiling source\n"
      "                      (vm engine; --call F, or the baked entry when\n"
      "                      no --call is given)\n"
      "  --module-cache DIR  AOT cache: load <hash>.pvcm from DIR when the\n"
      "                      source+options hash is present - skipping\n"
      "                      parse/check/transform/compile entirely - and\n"
      "                      write it back after a miss (shared with\n"
      "                      proteusd --cache-dir)\n"
      "\n"
      "observability (docs/OBSERVABILITY.md):\n"
      "  --stats[=json]      print cost counters after the run (text on\n"
      "                      stderr, or one JSON document on stdout),\n"
      "                      including run.<engine>.duration_us wall-time\n"
      "                      histograms (count/p50/p95/p99)\n"
      "  --trace-json FILE   write compile + runtime spans as a Chrome\n"
      "                      trace-event file (open in Perfetto)\n"
      "\n"
      "robustness (docs/ROBUSTNESS.md):\n"
      "  --budget-mem N      cap live vl vector memory at N bytes (T001)\n"
      "  --budget-steps N    cap element-work steps at N (T002)\n"
      "  --budget-depth N    cap call/nesting depth at N (T003)\n"
      "  --budget-deadline-ms N  wall-clock deadline per run (T004)\n"
      "  --inject SPEC       deterministic fault injection, e.g.\n"
      "                      alloc:3,kernel:7,opt:1 (also via PROTEUS_FAULT)\n"
      "  --no-fallback       disable the graceful-degradation ladder: traps\n"
      "                      propagate instead of retrying simpler engines\n"
      "\n"
      "  --help              show this help\n"
      "\n"
      "exit codes: 0 success; 1 compile or runtime error; 2 usage error;\n"
      "            3 static analysis / bytecode verification rejected the\n"
      "              program (one line per diagnostic on stderr);\n"
      "            4 resource trap: a --budget-* limit was exceeded or an\n"
      "              injected fault had no fallback left (docs/ROBUSTNESS.md)\n";
  std::exit(err.empty() ? 0 : 2);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) usage("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

void write_rule_counts_json(std::ostream& os,
                            const proteus::xform::RuleCounts& rules) {
  os << '{';
  bool first = true;
  for (const auto& [rule, count] : rules) {
    if (!first) os << ',';
    first = false;
    os << '"' << proteus::obs::json_escape(rule) << "\":" << count;
  }
  os << '}';
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) usage();

  std::string file;
  std::string entry;
  std::string call;
  std::vector<std::string> call_args;
  std::string engine = "vec";
  std::string dump;
  bool analyze = false;
  bool analyze_json = false;
  bool analyze_memory = false;
  bool arena = false;
  bool admission = false;
  bool verify_vcode = true;
  bool optimize_vcode = true;
  bool stats = false;
  bool stats_json = false;
  bool naive = false;
  std::string backend = "serial";
  std::string trace_json;
  proteus::rt::ExecBudget budget;
  std::string inject;
  bool fallback = true;
  std::string emit_module;
  std::string load_module;
  std::string module_cache;

  auto parse_u64 = [](const std::string& text,
                      const char* what) -> std::uint64_t {
    try {
      std::size_t used = 0;
      const std::uint64_t v = std::stoull(text, &used);
      if (used != text.size()) throw std::invalid_argument(text);
      return v;
    } catch (const std::exception&) {
      usage(std::string(what) + " expects a non-negative integer, got '" +
            text + "'");
    }
  };

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&](const char* what) -> std::string {
      if (++i >= args.size()) usage(std::string("missing value for ") + what);
      return args[i];
    };
    if (a == "--help" || a == "-h") {
      usage();
    } else if (a == "--entry") {
      entry = next("--entry");
    } else if (a == "--call") {
      call = next("--call");
      while (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
        call_args.push_back(args[++i]);
      }
    } else if (a == "--engine") {
      engine = next("--engine");
    } else if (a == "--dump") {
      dump = next("--dump");
    } else if (a == "--analyze") {
      analyze = true;
    } else if (a == "--analyze=json") {
      analyze = true;
      analyze_json = true;
    } else if (a == "--analyze=memory") {
      analyze = true;
      analyze_memory = true;
    } else if (a == "--arena") {
      arena = true;
    } else if (a == "--admission") {
      admission = true;
    } else if (a == "--no-verify-vcode") {
      verify_vcode = false;
    } else if (a == "-O0") {
      optimize_vcode = false;
    } else if (a == "-O1") {
      optimize_vcode = true;
    } else if (a == "--stats") {
      stats = true;
    } else if (a == "--stats=json") {
      stats = true;
      stats_json = true;
    } else if (a == "--trace-json") {
      trace_json = next("--trace-json");
    } else if (a == "--naive") {
      naive = true;
    } else if (a == "--backend") {
      backend = next("--backend");
    } else if (a == "--budget-mem") {
      budget.max_resident_bytes = parse_u64(next("--budget-mem"),
                                            "--budget-mem");
    } else if (a == "--budget-steps") {
      budget.max_steps = parse_u64(next("--budget-steps"), "--budget-steps");
    } else if (a == "--budget-depth") {
      budget.max_depth =
          static_cast<int>(parse_u64(next("--budget-depth"), "--budget-depth"));
    } else if (a == "--budget-deadline-ms") {
      budget.deadline_ms = parse_u64(next("--budget-deadline-ms"),
                                     "--budget-deadline-ms");
    } else if (a == "--inject") {
      inject = next("--inject");
    } else if (a == "--no-fallback") {
      fallback = false;
    } else if (a == "--emit-module") {
      emit_module = next("--emit-module");
    } else if (a == "--load-module") {
      load_module = next("--load-module");
    } else if (a == "--module-cache") {
      module_cache = next("--module-cache");
    } else if (a.rfind("--", 0) == 0) {
      usage("unknown option '" + a + "'");
    } else if (file.empty()) {
      file = a;
    } else {
      usage("multiple input files");
    }
  }
  if (!load_module.empty()) {
    if (!file.empty()) usage("--load-module replaces the source FILE");
    if (!entry.empty()) {
      usage("--entry needs source forms; a module image runs its baked "
            "entry when no --call is given");
    }
    if (!dump.empty() || analyze) {
      usage("--dump/--analyze need source forms; module images carry none");
    }
    if (!emit_module.empty() || !module_cache.empty()) {
      usage("--load-module cannot combine with --emit-module/--module-cache");
    }
    if (engine != "vec" && engine != "vm") {
      usage("module images run on the vm engine only");
    }
  } else if (file.empty()) {
    usage("no input file");
  }
  if (engine != "vec" && engine != "ref" && engine != "vm" &&
      engine != "both" && engine != "all") {
    usage("--engine must be vec, ref, vm, both, or all");
  }
  if (backend == "openmp") {
    proteus::vl::set_backend(proteus::vl::Backend::kOpenMP);
    if (proteus::vl::backend() != proteus::vl::Backend::kOpenMP) {
      std::cerr << "proteusc: OpenMP backend unavailable, using serial\n";
    }
  } else if (backend != "serial") {
    usage("--backend must be serial or openmp");
  }
  if (!inject.empty()) {
    try {
      proteus::rt::arm_faults(proteus::rt::parse_fault_plan(inject));
    } catch (const proteus::Error& e) {
      usage(e.what());
    }
  }
  // The budget covers compilation too (the parser and printer are
  // depth-governed; the optimizer can trap under injection) — the
  // Session re-installs the same budget around each run.
  proteus::rt::GovernorScope governor(budget);

  // One tracer covers compilation (installed before the Session is
  // constructed) and every run; `--dump trace` renders its rule events
  // as text, `--trace-json` exports the whole stream as a Chrome trace.
  const bool tracing = !trace_json.empty() || dump == "trace";
  proteus::obs::Tracer tracer;
  proteus::obs::MaybeTracerScope trace_scope(tracing ? &tracer : nullptr);

  auto write_trace = [&]() {
    if (trace_json.empty()) return;
    std::ofstream out(trace_json);
    if (!out) {
      std::cerr << "proteusc: cannot write '" << trace_json << "'\n";
      std::exit(1);
    }
    tracer.write_chrome_trace(out);
  };

  try {
    proteus::xform::PipelineOptions options;
    if (naive) {
      options.flatten.broadcast_invariant_seq_args = false;
      options.shared_row_gather = false;
    }
    options.verify_vcode = verify_vcode;
    options.optimize_vcode = optimize_vcode;

    // Tool-local wall-time distributions (run.<engine>.duration_us).
    // These are machine-dependent, so they live in their own registry —
    // never in the engine cost metrics, which must agree across
    // backends — and render as separate "[stats]" histogram lines.
    proteus::obs::MetricsRegistry timing;

    // Runs a deserialized module on the VM, driven by its serialized
    // signatures — no source forms, no pipeline.
    auto run_module =
        [&](std::shared_ptr<const proteus::vm::Module> module) -> int {
      proteus::ModuleRunner runner(std::move(module));
      runner.set_budget(budget);
      runner.set_arena(arena);
      runner.set_admission(admission);
      if (tracing) runner.set_tracer(&tracer);
      proteus::interp::Value result;
      const auto run_start = std::chrono::steady_clock::now();
      if (!call.empty()) {
        proteus::interp::ValueList values;
        for (const std::string& lit : call_args) {
          values.push_back(proteus::parse_value(lit));
        }
        result = runner.run(call, values);
      } else {
        result = runner.run_entry();
      }
      timing.observe("run.vm.duration_us", elapsed_us(run_start));
      std::cout << result << '\n';
      if (stats) {
        proteus::print_stats_text(std::cerr, runner.last_cost(), "vm");
        proteus::print_histograms_text(std::cerr, timing);
      }
      write_trace();
      return 0;
    };

    if (!load_module.empty()) {
      proteus::vm::ModuleLoadResult loaded =
          proteus::vm::load_module_file(load_module, verify_vcode);
      if (!loaded.ok()) {
        // Corrupt / truncated / wrong-version images land here with one
        // structured diagnostic per finding (B215/B216 + verifier B2xx).
        std::cerr << loaded.report.to_text();
        std::cerr << "proteusc: module image rejected\n";
        return 3;
      }
      return run_module(loaded.module);
    }

    const std::string source = read_file(file);
    const std::uint64_t module_key = proteus::vm::source_hash(
        source + '\x1E' + entry,
        proteus::vm::options_tag(optimize_vcode, verify_vcode));

    if (!module_cache.empty() && dump.empty() && !analyze &&
        emit_module.empty()) {
      const std::string image_path =
          module_cache + "/" + proteus::vm::hash_hex(module_key) + ".pvcm";
      proteus::vm::ModuleLoadResult loaded =
          proteus::vm::load_module_file(image_path, verify_vcode);
      if (loaded.ok() && loaded.source_hash == module_key) {
        // AOT cache hit: parse/check/transform/compile all skipped.
        return run_module(loaded.module);
      }
      // Miss (or stale/corrupt image): compile below and write it back.
    }

    if (analyze) {
      // Compile through every stage and report the analyzer's + bytecode
      // verifier's findings instead of running; exit 3 on rejection.
      // The memory report (M3xx) is advisory and never affects the exit
      // code — only analyzer/verifier *errors* reject a program.
      proteus::analysis::Report report;
      proteus::analysis::Report memory;
      std::shared_ptr<const proteus::vm::Module> module;
      try {
        proteus::xform::Compiled compiled =
            proteus::xform::compile(source, entry, options);
        report = std::move(compiled.analysis);
        memory = std::move(compiled.memory_report);
        module = compiled.module;
      } catch (const proteus::analysis::AnalysisError& e) {
        report = e.report();
      }
      if (analyze_json) {
        // The "memory" section: the advisory report plus one plan summary
        // per planned function (docs/ANALYSIS.md).
        std::ostringstream mem;
        mem << "\"memory\":{\"report\":";
        memory.write_json(mem);
        mem << ",\"functions\":[";
        if (module != nullptr && module->plan != nullptr) {
          bool first = true;
          for (std::size_t i = 0; i < module->plan->functions.size(); ++i) {
            const proteus::analysis::FunctionPlan& fp =
                module->plan->functions[i];
            if (!first) mem << ',';
            first = false;
            mem << "{\"name\":\""
                << proteus::obs::json_escape(module->functions[i].name)
                << "\",\"peak_bytes\":\"" << fp.peak_bytes.to_text()
                << "\",\"static_allocs\":" << fp.static_allocs
                << ",\"slots\":" << fp.slots.size() << '}';
          }
        }
        mem << "]}";
        report.write_json(std::cout, mem.str());
        std::cout << '\n';
      } else if (analyze_memory) {
        // Human-readable plan dump: one block per function, advisories
        // after (they name functions and pcs themselves).
        if (module != nullptr && module->plan != nullptr) {
          for (std::size_t i = 0; i < module->plan->functions.size(); ++i) {
            std::cout << "fun " << module->functions[i].name << ":\n"
                      << proteus::analysis::plan_to_text(
                             module->plan->functions[i]);
          }
        }
        std::cerr << memory.to_text();
        std::cerr << "memory plan: " << memory.warning_count()
                  << " advisories\n";
      } else {
        std::cerr << report.to_text();
        std::cerr << "analysis: " << (report.ok() ? "ok" : "reject") << " ("
                  << report.error_count() << " errors, "
                  << report.warning_count() << " warnings)\n";
      }
      write_trace();
      return report.ok() ? 0 : 3;
    }

    proteus::Session session(source, entry, options);
    if (tracing) session.set_tracer(&tracer);
    session.set_budget(budget);
    session.set_fallback(fallback);
    session.set_arena(arena);
    session.set_admission(admission);
    for (const std::string& note : session.compiled().compile_fallbacks) {
      std::cerr << "proteusc: [degraded] " << note << '\n';
    }

    if (!module_cache.empty() && dump.empty()) {
      // Write-back after a miss, so the next run of this source+options
      // skips the pipeline. Best-effort: cache trouble must not fail a
      // run that already compiled.
      std::error_code ec;
      std::filesystem::create_directories(module_cache, ec);
      try {
        proteus::vm::write_module_file(
            module_cache + "/" + proteus::vm::hash_hex(module_key) + ".pvcm",
            *session.compiled().module, module_key);
      } catch (const proteus::Error& e) {
        std::cerr << "proteusc: [module-cache] " << e.what() << '\n';
      }
    }
    if (!emit_module.empty()) {
      proteus::vm::write_module_file(emit_module, *session.compiled().module,
                                     module_key);
      if (call.empty()) {
        // Image written; nothing asked to run (an --entry, if given, was
        // baked into the image as its entry function).
        write_trace();
        return 0;
      }
    }

    if (dump == "trace") {
      // Same event stream as --trace-json, rendered textually: the two
      // derivation views cannot diverge.
      for (const std::string& line : tracer.rule_lines()) {
        std::cout << line << '\n';
      }
      write_trace();
      return 0;
    }
    if (dump == "vcode") {
      // Header states the verifier's verdict over the module being shown
      // (re-checked here so --no-verify-vcode still reports honestly).
      const proteus::analysis::Report verdict =
          proteus::vm::verify_module(*session.compiled().module);
      std::cout << "// vcode verify: " << (verdict.ok() ? "ok" : "reject")
                << " (" << verdict.error_count() << " errors, "
                << verdict.warning_count() << " warnings)\n";
      std::cout << proteus::vm::to_text(*session.compiled().module);
      return verdict.ok() ? 0 : 3;
    }
    if (!dump.empty()) {
      const auto& c = session.compiled();
      const proteus::lang::Program* stage = nullptr;
      const proteus::lang::ExprPtr* entry_stage = nullptr;
      if (dump == "checked") {
        stage = &c.checked;
        entry_stage = &c.entry_checked;
      } else if (dump == "canon") {
        stage = &c.canonical;
      } else if (dump == "flat") {
        stage = &c.flat;
        entry_stage = &c.entry_flat;
      } else if (dump == "vec") {
        stage = &c.vec;
        entry_stage = &c.entry_vec;
      } else {
        usage("--dump must be checked, canon, flat, vec, vcode, or trace");
      }
      std::cout << proteus::lang::to_text(*stage);
      if (entry_stage != nullptr && *entry_stage != nullptr) {
        std::cout << "// entry:\n"
                  << proteus::lang::to_text(*entry_stage) << '\n';
      }
      return 0;
    }

    if (stats && (engine == "vm" || engine == "all")) {
      session.set_vm_profile(true);
    }

    std::vector<std::string> run_reports;  // one JSON object per run
    auto run = [&](const std::string& eng) -> proteus::interp::Value {
      proteus::interp::Value result;
      const auto run_start = std::chrono::steady_clock::now();
      if (!call.empty()) {
        proteus::interp::ValueList values;
        for (const std::string& lit : call_args) {
          values.push_back(proteus::parse_value(lit));
        }
        result = eng == "ref"  ? session.run_reference(call, values)
                 : eng == "vm" ? session.run_vm(call, values)
                               : session.run_vector(call, values);
      } else if (!entry.empty()) {
        result = eng == "ref"  ? session.run_entry_reference()
                 : eng == "vm" ? session.run_entry_vm()
                               : session.run_entry_vector();
      } else {
        usage("nothing to run: give --entry or --call (or --dump)");
      }
      timing.observe("run." + eng + ".duration_us", elapsed_us(run_start));
      for (const std::string& note : session.last_degradations()) {
        std::cerr << "proteusc: [degraded] " << note << '\n';
      }
      if (stats) {
        if (stats_json) {
          std::ostringstream os;
          proteus::write_run_json(os, session.last_cost(), eng);
          run_reports.push_back(os.str());
        } else {
          proteus::print_stats_text(std::cerr, session.last_cost(), eng);
        }
      }
      return result;
    };

    proteus::interp::Value final_result;
    if (engine == "both" || engine == "all") {
      proteus::interp::Value ref = run("ref");
      proteus::interp::Value vec = run("vec");
      bool agree = ref == vec;
      if (engine == "all") {
        proteus::interp::Value vmv = run("vm");
        if (!(vec == vmv)) {
          std::cerr << "proteusc: ENGINE MISMATCH\n  vec: " << vec
                    << "\n  vm:  " << vmv << '\n';
          return 1;
        }
      }
      if (!agree) {
        std::cerr << "proteusc: ENGINE MISMATCH\n  ref: " << ref
                  << "\n  vec: " << vec << '\n';
        return 1;
      }
      if (!stats_json) {
        std::cout << vec << '\n';
        std::cerr << (engine == "all" ? "[all] engines agree\n"
                                      : "[both] engines agree\n");
      }
      final_result = vec;
    } else {
      final_result = run(engine);
      if (!stats_json) std::cout << final_result << '\n';
    }

    if (stats && !stats_json) {
      const proteus::vm::FuseStats& f = session.compiled().fusion;
      std::cerr << "[compile] vcode optimizer: " << f.fused_chains
                << " fused chains (" << f.fused_prims << " prims), "
                << f.eliminated_instrs << " instrs eliminated ("
                << f.eliminated_moves << " moves)\n";
      proteus::print_histograms_text(std::cerr, timing);
    }

    if (stats_json) {
      // One machine-readable document on stdout: result, per-run
      // metrics, and compile-time rule-firing counts.
      std::ostringstream result_text;
      result_text << final_result;
      std::cout << "{\"program\":\"" << proteus::obs::json_escape(file)
                << "\",\"engine\":\"" << proteus::obs::json_escape(engine)
                << "\",\"backend\":\""
                << (proteus::vl::backend() == proteus::vl::Backend::kOpenMP
                        ? "openmp"
                        : "serial")
                << "\",\"result\":\""
                << proteus::obs::json_escape(result_text.str())
                << "\",\"runs\":[";
      for (std::size_t i = 0; i < run_reports.size(); ++i) {
        if (i > 0) std::cout << ',';
        std::cout << run_reports[i];
      }
      std::cout << "],\"timings\":";
      timing.write_json(std::cout);
      std::cout << ",\"compile\":{\"rule_counts\":";
      write_rule_counts_json(std::cout, session.compiled().rule_counts);
      const proteus::vm::FuseStats& f = session.compiled().fusion;
      std::cout << ",\"fusion\":{\"fused_chains\":" << f.fused_chains
                << ",\"fused_prims\":" << f.fused_prims
                << ",\"eliminated_instrs\":" << f.eliminated_instrs
                << ",\"eliminated_moves\":" << f.eliminated_moves << "}}}\n";
    }

    write_trace();
    return 0;
  } catch (const proteus::analysis::AnalysisError& e) {
    // One clean line per diagnostic, then the verdict — no uncaught-
    // exception abort, and a distinct exit code for analysis rejection.
    std::cerr << e.report().to_text();
    std::cerr << "proteusc: static analysis rejected the program\n";
    return 3;
  } catch (const proteus::rt::RuntimeTrap& e) {
    // A resource budget was exceeded, cancellation was requested, or an
    // injected fault had no fallback left: a distinct exit code so
    // harnesses can tell "out of budget" from "broken program".
    std::cerr << "proteusc: resource trap: " << e.what() << '\n';
    return 4;
  } catch (const proteus::Error& e) {
    std::cerr << "proteusc: " << e.what() << '\n';
    return 1;
  }
}
