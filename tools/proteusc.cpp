// proteusc — command-line driver for the proteus-vec pipeline.
//
//   proteusc FILE.p [options]
//
//   --entry EXPR       expression to evaluate in the program's scope
//   --call F A1 A2 ..  call function F with P literals as arguments
//   --engine E         vec (default) | ref | both (compare)
//   --dump STAGE       print a stage instead of running:
//                      checked | canon | flat | vec | trace
//   --stats            print cost counters after the run
//   --naive            disable the Section 4.5 optimizations (ablation)
//   --backend B        serial (default) | openmp — vl execution policy
//
// Examples:
//   proteusc examples/programs/sort.p --call quicksort '[3,1,2]'
//   proteusc examples/programs/sort.p --entry '[k <- [1..5] : sqs(k)]' --dump vec
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/proteus.hpp"
#include "lang/printer.hpp"

namespace {

[[noreturn]] void usage(const std::string& err = {}) {
  if (!err.empty()) std::cerr << "proteusc: " << err << "\n\n";
  std::cerr <<
      "usage: proteusc FILE.p [--entry EXPR | --call F ARGS...]\n"
      "                [--engine vec|ref|both] [--dump checked|canon|flat|vec]\n"
      "                [--stats] [--naive]\n";
  std::exit(err.empty() ? 0 : 2);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) usage("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void print_stats(const proteus::RunCost& cost, bool vector_engine) {
  if (vector_engine) {
    std::cerr << "[stats] vector primitives: "
              << cost.vector_work.primitive_calls
              << ", element work: " << cost.vector_work.element_work
              << ", user calls: " << cost.vector_ops.calls << '\n';
    std::cerr << "[stats] instruction mix:";
    for (const auto& [op, count] : cost.vector_ops.per_prim) {
      std::cerr << ' ' << proteus::lang::prim_name(op) << '=' << count;
    }
    std::cerr << '\n';
  } else {
    std::cerr << "[stats] iterator iterations: " << cost.reference.iterations
              << ", scalar ops (work): " << cost.reference.scalar_ops
              << ", steps (critical path): " << cost.reference.steps
              << ", user calls: " << cost.reference.calls << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) usage();

  std::string file;
  std::string entry;
  std::string call;
  std::vector<std::string> call_args;
  std::string engine = "vec";
  std::string dump;
  bool stats = false;
  bool naive = false;
  std::string backend = "serial";

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&](const char* what) -> std::string {
      if (++i >= args.size()) usage(std::string("missing value for ") + what);
      return args[i];
    };
    if (a == "--help" || a == "-h") {
      usage();
    } else if (a == "--entry") {
      entry = next("--entry");
    } else if (a == "--call") {
      call = next("--call");
      while (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
        call_args.push_back(args[++i]);
      }
    } else if (a == "--engine") {
      engine = next("--engine");
    } else if (a == "--dump") {
      dump = next("--dump");
    } else if (a == "--stats") {
      stats = true;
    } else if (a == "--naive") {
      naive = true;
    } else if (a == "--backend") {
      backend = next("--backend");
    } else if (a.rfind("--", 0) == 0) {
      usage("unknown option '" + a + "'");
    } else if (file.empty()) {
      file = a;
    } else {
      usage("multiple input files");
    }
  }
  if (file.empty()) usage("no input file");
  if (engine != "vec" && engine != "ref" && engine != "both") {
    usage("--engine must be vec, ref, or both");
  }
  if (backend == "openmp") {
    proteus::vl::set_backend(proteus::vl::Backend::kOpenMP);
    if (proteus::vl::backend() != proteus::vl::Backend::kOpenMP) {
      std::cerr << "proteusc: OpenMP backend unavailable, using serial\n";
    }
  } else if (backend != "serial") {
    usage("--backend must be serial or openmp");
  }

  try {
    proteus::xform::PipelineOptions options;
    options.collect_trace = dump == "trace";
    if (naive) {
      options.flatten.broadcast_invariant_seq_args = false;
      options.shared_row_gather = false;
    }
    proteus::Session session(read_file(file), entry, options);

    if (dump == "trace") {
      for (const std::string& line : session.compiled().derivation) {
        std::cout << line << '\n';
      }
      return 0;
    }
    if (!dump.empty()) {
      const auto& c = session.compiled();
      const proteus::lang::Program* stage = nullptr;
      const proteus::lang::ExprPtr* entry_stage = nullptr;
      if (dump == "checked") {
        stage = &c.checked;
        entry_stage = &c.entry_checked;
      } else if (dump == "canon") {
        stage = &c.canonical;
      } else if (dump == "flat") {
        stage = &c.flat;
        entry_stage = &c.entry_flat;
      } else if (dump == "vec") {
        stage = &c.vec;
        entry_stage = &c.entry_vec;
      } else {
        usage("--dump must be checked, canon, flat, or vec");
      }
      std::cout << proteus::lang::to_text(*stage);
      if (entry_stage != nullptr && *entry_stage != nullptr) {
        std::cout << "// entry:\n"
                  << proteus::lang::to_text(*entry_stage) << '\n';
      }
      return 0;
    }

    auto run = [&](bool vector_engine) -> proteus::interp::Value {
      proteus::interp::Value result;
      if (!call.empty()) {
        proteus::interp::ValueList values;
        for (const std::string& lit : call_args) {
          values.push_back(proteus::parse_value(lit));
        }
        result = vector_engine ? session.run_vector(call, values)
                               : session.run_reference(call, values);
      } else if (!entry.empty()) {
        result = vector_engine ? session.run_entry_vector()
                               : session.run_entry_reference();
      } else {
        usage("nothing to run: give --entry or --call (or --dump)");
      }
      if (stats) print_stats(session.last_cost(), vector_engine);
      return result;
    };

    if (engine == "both") {
      proteus::interp::Value ref = run(false);
      proteus::interp::Value vec = run(true);
      std::cout << vec << '\n';
      if (!(ref == vec)) {
        std::cerr << "proteusc: ENGINE MISMATCH\n  ref: " << ref
                  << "\n  vec: " << vec << '\n';
        return 1;
      }
      std::cerr << "[both] engines agree\n";
    } else {
      std::cout << run(engine == "vec") << '\n';
    }
    return 0;
  } catch (const proteus::Error& e) {
    std::cerr << "proteusc: " << e.what() << '\n';
    return 1;
  }
}
