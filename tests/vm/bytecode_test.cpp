// Tests for the bytecode compiler and module format: structure of the
// assembled vm::Module, constant interning, call resolution, the
// kBranchEmpty fusion of the R2d guard, and the disassembler.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "vm/compile.hpp"
#include "vm/disasm.hpp"
#include "xform/pipeline.hpp"

namespace proteus::vm {
namespace {

std::shared_ptr<const Module> module_of(std::string_view program,
                                        std::string_view entry = {}) {
  return xform::compile(program, entry).module;
}

const Function& fn(const Module& m, const std::string& name) {
  const Function* f = m.find(name);
  EXPECT_NE(f, nullptr) << name;
  return *f;
}

bool has_op(const Function& f, Op op) {
  return std::any_of(f.code.begin(), f.code.end(),
                     [&](const Instr& in) { return in.op == op; });
}

TEST(Compile, PipelineAlwaysProducesAModule) {
  auto m = module_of("fun inc(x: int): int = x + 1");
  ASSERT_NE(m, nullptr);
  EXPECT_TRUE(m->fn_index.contains("inc"));
  EXPECT_EQ(m->entry, -1);
}

TEST(Compile, EntryCompilesAsDedicatedFunction) {
  auto m = module_of("fun inc(x: int): int = x + 1", "inc(41)");
  ASSERT_GE(m->entry, 0);
  const Function& e =
      m->functions[static_cast<std::size_t>(m->entry)];
  EXPECT_EQ(e.n_params, 0);
  EXPECT_TRUE(has_op(e, Op::kCall));
  EXPECT_EQ(e.code.back().op, Op::kRet);
}

TEST(Compile, ConstantsAreInterned) {
  // 7 appears three times in the source but once in the pool.
  auto m = module_of("fun f(x: int): int = (x + 7) * (7 - x) + 7");
  int sevens = 0;
  for (const auto& c : m->constants) {
    if (c.is_int() && c.as_int() == 7) ++sevens;
  }
  EXPECT_EQ(sevens, 1);
}

TEST(Compile, DirectCallsResolveAtCompileTime) {
  auto m = module_of(
      "fun inc(x: int): int = x + 1\n"
      "fun twice(x: int): int = inc(inc(x))");
  const Function& f = fn(*m, "twice");
  for (const Instr& in : f.code) {
    if (in.op == Op::kCall) {
      ASSERT_GE(in.aux, 0);
      EXPECT_EQ(m->functions[static_cast<std::size_t>(in.aux)].name, "inc");
    }
  }
  EXPECT_TRUE(has_op(f, Op::kCall));
}

TEST(Compile, ParamsOccupyLowRegistersAndFrameStaysSmall) {
  auto m = module_of(
      "fun f(a: int, b: int): int = let c = a + b in let d = c * 2 in d");
  const Function& f = fn(*m, "f");
  EXPECT_EQ(f.n_params, 2);
  // a, b, the result slot, and a couple of reused temporaries.
  EXPECT_LE(f.n_regs, 6);
}

TEST(Compile, RegistersAreReusedAcrossReleasedTemporaries) {
  // A long chain of independent additions must not grow the frame
  // linearly: released temporaries come back from the free list.
  std::string body = "x";
  for (int i = 0; i < 20; ++i) body = "(" + body + " + 1)";
  auto m = module_of("fun f(x: int): int = " + body);
  EXPECT_LE(fn(*m, "f").n_regs, 8);
}

TEST(Compile, RecursionGuardFusesIntoBranchEmpty) {
  // Flattened recursion produces `if any_true(M) then ... else ...` in
  // the depth-1 extension; the compiler must emit kBranchEmpty and no
  // standalone any_true reduction for the guard.
  auto m = module_of(
      "fun count(n: int): int = if n <= 0 then 0 else count(n - 1) + 1",
      "[k <- [1 .. 4] : count(k)]");
  const Function& ext = fn(*m, "count^1");
  EXPECT_TRUE(has_op(ext, Op::kBranchEmpty));
}

TEST(Compile, ExtractInsertFoldTheirDepthLiteral) {
  auto m = module_of(
      "fun sqs(n: int): seq(int) = [i <- range1(n) : i * i]",
      "[k <- [1 .. 3] : sqs(k)]");
  bool saw_extract = false;
  for (const Function& f : m->functions) {
    for (const Instr& in : f.code) {
      if (in.op == Op::kExtract || in.op == Op::kInsert) {
        saw_extract = true;
        EXPECT_GE(int{in.depth}, 1);
        // the depth literal is folded, not passed through a register
        EXPECT_EQ(in.args_count, in.op == Op::kExtract ? 1 : 2);
      }
    }
  }
  EXPECT_TRUE(saw_extract);
}

TEST(Compile, LiftedSetsAreSharedPerFunction) {
  auto m = module_of(
      "fun addk(s: seq(int), k: int): seq(int) = [x <- s : x + k]");
  const Function& ext = fn(*m, "addk");
  for (const Instr& in : ext.code) {
    if (in.lifted >= 0) {
      ASSERT_LT(static_cast<std::size_t>(in.lifted),
                ext.lifted_sets.size());
    }
  }
}

TEST(Disasm, EveryOpcodeHasAName) {
  for (int i = 0; i < kNumOps; ++i) {
    EXPECT_STRNE(op_name(static_cast<Op>(i)), "?");
  }
}

TEST(Disasm, ListingShowsFunctionsAndMnemonics) {
  auto m = module_of(
      "fun sqs(n: int): seq(int) = [i <- range1(n) : i * i]",
      "sqs(5)");
  std::string text = to_text(*m);
  EXPECT_NE(text.find("fun sqs"), std::string::npos);
  EXPECT_NE(text.find("; entry"), std::string::npos);
  EXPECT_NE(text.find("build"), std::string::npos);
  EXPECT_NE(text.find("elementwise"), std::string::npos);
  EXPECT_NE(text.find("ret"), std::string::npos);
  EXPECT_NE(text.find("lifted="), std::string::npos);
}

TEST(Compile, RejectsUntransformedPrograms) {
  // Feeding a raw P program (iterators intact) to the bytecode compiler
  // must throw, not silently mis-compile.
  lang::Program p = xform::compile(
      "fun f(s: seq(int)): seq(int) = [x <- s : x + 1]").checked;
  EXPECT_THROW((void)compile_module(p), TransformError);
}

}  // namespace
}  // namespace proteus::vm
