// Tests for the bytecode VM dispatch loop: results against the other two
// engines, error parity with the tree executor, the per-opcode profile,
// and the Session-level run_vm / run_entry_vm entry points.
#include <gtest/gtest.h>

#include <string>

#include "testing.hpp"
#include "vm/vm.hpp"

namespace proteus {
namespace {

using testing::val;

TEST(VmExec, ScalarsControlFlowAndCalls) {
  Session s(R"(
    fun fact(n: int): int = if n <= 1 then 1 else n * fact(n - 1)
    fun pick(b: bool, x: int, y: int): int = if b then x else y
  )");
  EXPECT_EQ(s.run_vm("fact", {val("6")}), val("720"));
  EXPECT_EQ(s.run_vm("pick", {val("true"), val("1"), val("2")}), val("1"));
  EXPECT_EQ(s.run_vm("pick", {val("false"), val("1"), val("2")}), val("2"));
}

TEST(VmExec, FlattenedRecursionMatchesOtherEngines) {
  Session s(R"(
    fun qs(v: seq(int)): seq(int) =
      if #v <= 1 then v
      else let p = v[1 + #v / 2] in
        qs([x <- v | x < p : x]) ++ [x <- v | x == p : x]
          ++ qs([x <- v | x > p : x])
  )");
  testing::expect_both(s, "qs", {val("[5,3,9,1,3,7,2]")},
                       "[1,2,3,3,5,7,9]");
  testing::expect_both(s, "qs", {val("([] : seq(int))")},
                       "([] : seq(int))");
}

TEST(VmExec, TuplesRealsAndIndirectCalls) {
  Session s(R"(
    fun norm2(p: (real, real)): real = p.1 * p.1 + p.2 * p.2
    fun apply(f: (int) -> int, xs: seq(int)): seq(int) = [x <- xs : f(x)]
    fun double(x: int): int = 2 * x
    fun use(xs: seq(int)): seq(int) = apply(double, xs)
  )");
  EXPECT_EQ(s.run_vm("norm2", {val("(3.0, 4.0)")}), val("25.0"));
  testing::expect_both(s, "use", {val("[1,2,3]")}, "[2,4,6]");
}

TEST(VmExec, EntryExpressionRunsOnTheVm) {
  Session s("fun sqs(n: int): seq(int) = [i <- range1(n) : i * i]",
            "[k <- [1 .. 4] : sqs(k)]");
  interp::Value reference = s.run_entry_reference();
  EXPECT_EQ(s.run_entry_vector(), reference);
  EXPECT_EQ(s.run_entry_vm(), reference);
}

TEST(VmExec, VectorWorkMatchesTreeExecutorExactly) {
  // The two vector engines share one kernel table, so the vl-level cost
  // of a run must be identical, not merely the results.
  Session s(R"(
    fun qs(v: seq(int)): seq(int) =
      if #v <= 1 then v
      else let p = v[1 + #v / 2] in
        qs([x <- v | x < p : x]) ++ [x <- v | x == p : x]
          ++ qs([x <- v | x > p : x])
  )");
  interp::ValueList args = {val("[9,4,8,2,7,1,6,3,5]")};
  (void)s.run_vector("qs", args);
  const vl::VectorStats tree_work = s.last_cost().vector_work;
  const exec::ExecStats tree_ops = s.last_cost().vector_ops;
  (void)s.run_vm("qs", args);
  const vl::VectorStats vm_work = s.last_cost().vector_work;
  EXPECT_EQ(vm_work.primitive_calls, tree_work.primitive_calls);
  EXPECT_EQ(vm_work.element_work, tree_work.element_work);
  EXPECT_EQ(s.last_cost().vm_ops.calls, tree_ops.calls);
  EXPECT_EQ(s.last_cost().vm_ops.per_prim, tree_ops.per_prim);
}

TEST(VmExec, PerOpcodeProfileIsPopulated) {
  Session s("fun sqs(n: int): seq(int) = [i <- range1(n) : i * i]");
  s.set_vm_profile(true);
  (void)s.run_vm("sqs", {val("100")});
  const vm::VMStats& st = s.last_cost().vm_ops;
  EXPECT_GT(st.instructions, 0u);
  EXPECT_EQ(st.calls, 1u);
  const vm::OpProfile& build =
      st.per_op[static_cast<std::size_t>(vm::Op::kBuild)];
  const vm::OpProfile& ew =
      st.per_op[static_cast<std::size_t>(vm::Op::kElementwise)];
  EXPECT_EQ(build.count, 1u);   // range1(n)
  EXPECT_EQ(ew.count, 1u);      // i *^1 i
  EXPECT_GE(build.element_work, 100u);
  EXPECT_GE(ew.element_work, 100u);
  std::uint64_t total = 0;
  for (const vm::OpProfile& p : st.per_op) total += p.count;
  EXPECT_EQ(total, st.instructions);
}

TEST(VmExec, ErrorParityWithTreeExecutor) {
  // Unknown function and wrong arity must throw the same EvalError the
  // tree executor throws; runaway recursion now trips the execution
  // governor's depth budget (rt::RuntimeTrap T003, not retryable — the
  // degradation ladder must NOT mask it behind a fallback engine).
  Session s("fun spin(n: int): int = spin(n + 1)");
  vm::VM machine(s.compiled().module);
  EXPECT_THROW((void)machine.call_function("nosuch", {}), EvalError);
  EXPECT_THROW((void)machine.call_function("spin", {}), EvalError);
  try {
    (void)s.run_vm("spin", {val("0")});
    FAIL() << "expected depth-limit RuntimeTrap";
  } catch (const rt::RuntimeTrap& e) {
    EXPECT_EQ(e.trap(), rt::Trap::kDepth);
    EXPECT_NE(std::string(e.what()).find("call depth limit exceeded"),
              std::string::npos);
  }
}

TEST(VmExec, EmptyFramesAndEmptyLiterals) {
  Session s(R"(
    fun rowsums(m: seq(seq(int))): seq(int) = [r <- m : sum(r)]
    fun nil(n: int): seq(int) = ([] : seq(int))
  )");
  testing::expect_both(s, "rowsums",
                       {val("[[1,2],([] : seq(int)),[3,4,5]]")}, "[3,0,12]");
  testing::expect_both(s, "rowsums", {val("([] : seq(seq(int)))")},
                       "([] : seq(int))");
  testing::expect_both(s, "nil", {val("3")}, "([] : seq(int))");
}

TEST(VmExec, VmIsReusableAcrossCalls) {
  Session s("fun inc(x: int): int = x + 1");
  vm::VM machine(s.compiled().module);
  for (int i = 0; i < 5; ++i) {
    exec::VValue r =
        machine.call_function("inc", {exec::VValue::ints(i)});
    EXPECT_EQ(r.as_int(), i + 1);
  }
  EXPECT_EQ(machine.stats().calls, 5u);
}

}  // namespace
}  // namespace proteus
