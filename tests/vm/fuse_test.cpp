// The VCODE optimizer (vm/fuse.hpp): fusion actually fires on
// elementwise chains, -O1 and -O0 agree on results AND on the emulated
// cost model (only the physical buffer_allocs counter may drop),
// in-place buffer reuse is suppressed when the caller retains the input,
// and throw behaviour (division by zero mid-chain) survives fusion.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "testing.hpp"
#include "vm/disasm.hpp"
#include "vm/fuse.hpp"
#include "vm/verify.hpp"
#include "vm/vm.hpp"

namespace proteus {
namespace {

using testing::val;

const char* kChain = R"(
  fun chain(v: seq(int)): seq(int) =
    [x <- v : (x * 3 + 1) * (x - 2) + x * x]
)";

xform::PipelineOptions unfused_options() {
  xform::PipelineOptions options;
  options.optimize_vcode = false;
  return options;
}

std::size_t count_fused(const vm::Module& m) {
  std::size_t n = 0;
  for (const vm::Function& f : m.functions) {
    for (const vm::Instr& in : f.code) {
      if (in.op == vm::Op::kFusedMap) ++n;
    }
  }
  return n;
}

TEST(VmFuse, FusionFiresOnElementwiseChains) {
  Session s(kChain);
  EXPECT_GT(count_fused(*s.compiled().module), 0u);
  EXPECT_GT(s.compiled().fusion.fused_chains, 0u);
  EXPECT_GE(s.compiled().fusion.fused_prims, 2u);
  EXPECT_GT(s.compiled().fusion.eliminated_instrs, 0u);
  // The disassembler renders the chain as a micro-expression tree.
  EXPECT_NE(vm::to_text(*s.compiled().module).find("fused"),
            std::string::npos);
  // -O0 leaves the stream untouched.
  Session s0(kChain, {}, unfused_options());
  EXPECT_EQ(count_fused(*s0.compiled().module), 0u);
  EXPECT_EQ(s0.compiled().fusion.fused_chains, 0u);
}

TEST(VmFuse, OptimizedModuleVerifiesClean) {
  Session s(kChain);
  analysis::Report r = vm::verify_module(*s.compiled().module);
  EXPECT_TRUE(r.ok()) << r.to_text();
  EXPECT_EQ(r.warning_count(), 0u) << r.to_text();
}

TEST(VmFuse, O1AgreesWithO0AndEveryEngine) {
  Session fused(kChain);
  Session unfused(kChain, {}, unfused_options());
  for (const char* input :
       {"[1,2,3,4,5]", "[-3,0,7]", "([] : seq(int))", "[100]"}) {
    interp::ValueList args = {val(input)};
    interp::Value want = testing::both(fused, "chain", args);
    EXPECT_EQ(unfused.run_vm("chain", args), want) << input;
  }
}

TEST(VmFuse, CostModelIsEmulatedExactly) {
  // Fusion must be invisible to the logical cost model: primitive calls,
  // element work, and the per-prim tally all match the unfused stream.
  // Only buffer_allocs — the physical counter — drops.
  Session fused(kChain);
  Session unfused(kChain, {}, unfused_options());
  interp::ValueList args = {val("[4,8,15,16,23,42]")};
  (void)fused.run_vm("chain", args);
  const vl::VectorStats f = fused.last_cost().vector_work;
  const vm::VMStats fo = fused.last_cost().vm_ops;
  (void)unfused.run_vm("chain", args);
  const vl::VectorStats u = unfused.last_cost().vector_work;
  const vm::VMStats uo = unfused.last_cost().vm_ops;
  EXPECT_EQ(f.primitive_calls, u.primitive_calls);
  EXPECT_EQ(f.element_work, u.element_work);
  EXPECT_EQ(fo.prim_applications, uo.prim_applications);
  EXPECT_EQ(fo.per_prim, uo.per_prim);
  EXPECT_LT(f.buffer_allocs, u.buffer_allocs);
}

TEST(VmFuse, OptimizeModuleRoundTrip) {
  // optimize_module over an unoptimized module: fuses, verifies clean,
  // and the optimized module's VM agrees with the original.
  Session s0(kChain, {}, unfused_options());
  vm::FuseStats stats;
  std::shared_ptr<const vm::Module> opt =
      vm::optimize_module(*s0.compiled().module, &stats);
  EXPECT_GT(stats.fused_chains, 0u);
  EXPECT_GT(count_fused(*opt), 0u);
  analysis::Report r = vm::verify_module(*opt);
  EXPECT_TRUE(r.ok()) << r.to_text();

  const lang::FunDef* f = s0.compiled().checked.find("chain");
  ASSERT_NE(f, nullptr);
  exec::VValue arg =
      exec::from_boxed(val("[3,1,4,1,5,9,2,6]"), f->params[0].type);
  vm::VM plain(s0.compiled().module);
  vm::VM optimized(opt);
  EXPECT_EQ(exec::to_boxed(plain.call_function("chain", {arg}), f->result),
            exec::to_boxed(optimized.call_function("chain", {arg}),
                           f->result));
}

TEST(VmFuse, InPlaceReuseIsSuppressedWhenCallerRetainsTheInput) {
  // call_function takes its arguments by value: passing {arg} while the
  // test retains `arg` leaves the buffer shared, so the fused kernel's
  // sole-ownership check must refuse to steal it. The input survives
  // unchanged and repeated calls agree.
  Session s(kChain);
  ASSERT_GT(s.compiled().fusion.fused_chains, 0u);
  const lang::FunDef* f = s.compiled().checked.find("chain");
  ASSERT_NE(f, nullptr);
  interp::Value boxed = val("[7,-2,0,31,8]");
  exec::VValue arg = exec::from_boxed(boxed, f->params[0].type);
  vm::VM machine(s.compiled().module);
  interp::Value r1 =
      exec::to_boxed(machine.call_function("chain", {arg}), f->result);
  // The retained argument still holds its original contents...
  EXPECT_EQ(exec::to_boxed(arg, f->params[0].type), boxed);
  // ...and a second call over the same buffer reproduces the result.
  interp::Value r2 =
      exec::to_boxed(machine.call_function("chain", {arg}), f->result);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1, s.run_reference("chain", {boxed}));
}

TEST(VmFuse, MoveConsumedArgumentsEnableInPlaceExecution) {
  // When the caller hands over its only reference, the fused chain runs
  // in the input's buffer: same result, one alloc fewer than the shared
  // case above.
  Session s(kChain);
  const lang::FunDef* f = s.compiled().checked.find("chain");
  ASSERT_NE(f, nullptr);
  vm::VM machine(s.compiled().module);
  exec::VValue owned = exec::from_boxed(val("[7,-2,0,31,8]"),
                                        f->params[0].type);
  interp::Value moved = exec::to_boxed(
      machine.call_function("chain", {std::move(owned)}), f->result);
  EXPECT_EQ(moved, s.run_reference("chain", {val("[7,-2,0,31,8]")}));
}

TEST(VmFuse, ThrowsSurviveFusionMidChain) {
  // Division by zero inside a fused chain must throw exactly as the
  // unfused instructions would — including on the serial small-frame
  // path (n far below the parallel grain).
  const char* kDiv = R"(
    fun g(v: seq(int)): seq(int) = [x <- v : (10 / x) * 2 + 1]
  )";
  Session fused(kDiv);
  Session unfused(kDiv, {}, unfused_options());
  ASSERT_GT(fused.compiled().fusion.fused_chains, 0u);
  interp::ValueList ok = {val("[1,2,5]")};
  EXPECT_EQ(fused.run_vm("g", ok), unfused.run_vm("g", ok));
  interp::ValueList bad = {val("[1,0,5]")};
  EXPECT_THROW((void)unfused.run_vm("g", bad), EvalError);
  try {
    (void)fused.run_vm("g", bad);
    FAIL() << "expected division-by-zero EvalError from the fused chain";
  } catch (const EvalError& e) {
    EXPECT_NE(std::string(e.what()).find("division by zero"),
              std::string::npos);
  }
}

TEST(VmFuse, RepeatedOperandAliasingIsLaneSafe) {
  // x*x + x reads the frame operand in three leaves; with the chain run
  // in place the root writes into that same buffer, which is safe only
  // lane-by-lane. A wrong traversal order corrupts later lanes.
  Session s("fun g(v: seq(int)): seq(int) = [x <- v : x * x + x]");
  ASSERT_GT(s.compiled().fusion.fused_chains, 0u);
  testing::expect_both(s, "g", {val("[1,2,3,4]")}, "[2,6,12,20]");
}

TEST(VmFuse, FusionStatsRideThePipelineSpans) {
  // The optimize-vcode stage runs between assembly and verification and
  // its tallies land in Compiled::fusion (consumed by proteusc --stats).
  Session s(kChain);
  const vm::FuseStats& fs = s.compiled().fusion;
  EXPECT_GE(fs.fused_prims, fs.fused_chains * 2);
  EXPECT_GE(fs.eliminated_instrs, fs.fused_prims - fs.fused_chains);
}

}  // namespace
}  // namespace proteus
