// module_io_test.cpp — the versioned module image (de)serializer
// (vm/module_io.hpp): roundtrip identity, header validation, and the
// untrusted-input contract (truncation / corruption never crashes — it
// yields a structured B215/B216 report or a module the verifier accepted).
#include "vm/module_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/proteus.hpp"
#include "testing.hpp"

namespace proteus::vm {
namespace {

// A program that exercises most of the encoder's surface: several
// functions (so signatures and the function table matter), nested
// sequences, tuples, reals, conditionals, recursion, and an entry.
constexpr const char* kProgram = R"(
  fun sq(n: int): int = n * n
  fun sqs(n: int): seq(int) = [i <- [1 .. n] : sq(i)]
  fun total(xs: seq(seq(int))): int = sum([x <- xs : sum(x)])
  fun mix(p: (int, real)): real = real(p.1) + p.2
  fun fact(n: int): int = if n <= 1 then 1 else n * fact(n - 1)
)";

std::shared_ptr<const Module> compile_program(
    std::string_view source, std::string_view entry = "sqs(4)") {
  Session session(source, entry);
  return session.compiled().module;
}

TEST(ModuleIO, RoundtripBytesAreAFixedPoint) {
  auto module = compile_program(kProgram);
  const std::uint64_t hash = source_hash(kProgram, options_tag(true, true));
  const std::string bytes = module_bytes(*module, hash);

  ModuleLoadResult loaded = load_module(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.report.to_text();
  EXPECT_EQ(loaded.source_hash, hash);

  // serialize . deserialize . serialize == serialize: the image is a
  // fixed point, so nothing is lost or reordered by a decode cycle.
  EXPECT_EQ(module_bytes(*loaded.module, loaded.source_hash), bytes);
}

TEST(ModuleIO, RoundtripPreservesStructureAndSignatures) {
  auto module = compile_program(kProgram);
  ModuleLoadResult loaded = load_module(module_bytes(*module));
  ASSERT_TRUE(loaded.ok()) << loaded.report.to_text();

  EXPECT_EQ(loaded.module->functions.size(), module->functions.size());
  EXPECT_EQ(loaded.module->constants.size(), module->constants.size());
  EXPECT_EQ(loaded.module->entry, module->entry);
  ASSERT_EQ(loaded.module->signatures.size(), module->signatures.size());
  auto it = loaded.module->fn_index.find("total");
  ASSERT_NE(it, loaded.module->fn_index.end());
  const Signature* sig = loaded.module->signature(it->second);
  ASSERT_NE(sig, nullptr);
  ASSERT_EQ(sig->params.size(), 1u);
  EXPECT_EQ(lang::to_string(sig->params[0]), "seq(seq(int))");
  EXPECT_EQ(lang::to_string(sig->result), "int");
}

TEST(ModuleIO, LoadedModuleComputesTheSameResults) {
  Session session(kProgram, "sqs(4)");
  ModuleLoadResult loaded =
      load_module(module_bytes(*session.compiled().module));
  ASSERT_TRUE(loaded.ok()) << loaded.report.to_text();

  ModuleRunner runner(loaded.module);
  EXPECT_EQ(runner.run_entry(), session.run_entry_vm());
  EXPECT_EQ(runner.run("fact", {testing::val("6")}),
            session.run_vm("fact", {testing::val("6")}));
  EXPECT_EQ(runner.run("total", {testing::val("[[1,2],[3,4,5]]")}),
            session.run_vm("total", {testing::val("[[1,2],[3,4,5]]")}));
  EXPECT_EQ(runner.run("mix", {testing::val("(3, 0.5)")}),
            session.run_vm("mix", {testing::val("(3, 0.5)")}));
}

TEST(ModuleIO, BadMagicAndVersionAreB216) {
  auto module = compile_program(kProgram);
  std::string bytes = module_bytes(*module);

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  ModuleLoadResult r = load_module(bad_magic);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.report.has("B216")) << r.report.to_text();

  std::string bad_version = bytes;
  bad_version[4] = 99;  // version word
  r = load_module(bad_version);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.report.has("B216")) << r.report.to_text();

  r = load_module(std::string_view{});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.report.has("B216")) << r.report.to_text();
}

TEST(ModuleIO, EveryTruncationFailsCleanly) {
  auto module = compile_program(kProgram);
  const std::string bytes = module_bytes(*module);
  ASSERT_GT(bytes.size(), 16u);

  // A module image decodes to exactly its full length (the loader rejects
  // trailing bytes), so *every* proper prefix must be rejected — with a
  // structured diagnostic, never a crash or an exception.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    ModuleLoadResult r = load_module(std::string_view(bytes.data(), len));
    EXPECT_FALSE(r.ok()) << "prefix of " << len << " bytes decoded";
    EXPECT_TRUE(r.report.has("B215") || r.report.has("B216"))
        << "prefix of " << len << " bytes: " << r.report.to_text();
  }

  // Trailing garbage after a well-formed image is also malformed.
  ModuleLoadResult r = load_module(bytes + "extra");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.report.has("B215")) << r.report.to_text();
}

TEST(ModuleIO, EveryCorruptedByteIsHandled) {
  auto module = compile_program(kProgram);
  const std::string bytes = module_bytes(*module);

  // Flip every byte in turn. The contract is not that every flip is
  // detected (a flipped constant payload is a different, equally valid
  // image) but that none of them crashes the loader and that a rejected
  // image always carries a structured diagnostic.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    ModuleLoadResult r = load_module(mutated);
    if (!r.ok()) {
      EXPECT_FALSE(r.report.ok())
          << "byte " << i << ": rejected without a diagnostic";
    }
  }
}

TEST(ModuleIO, EveryCorruptedPlanByteIsRejected) {
  // The memory-plan section is stronger than the rest of the image:
  // a plan either decodes byte-exactly to what the analyzer recomputes
  // from the decoded bytecode, or the load is rejected. So *every*
  // corrupted plan byte must yield B215 (malformed), B216 (header), or
  // B217 (plan/bytecode mismatch) — a flipped plan can never steer the
  // VM's register clearing.
  auto module = compile_program(kProgram);
  ASSERT_NE(module->plan, nullptr);
  const std::string bytes = module_bytes(*module);

  // The plan section is the image's tail: everything after the common
  // prefix shared with the same module serialized plan-less (the prefix
  // ends at the u8 has_plan flag).
  Module stripped = *module;
  stripped.plan = nullptr;
  const std::string without = module_bytes(stripped);
  ASSERT_LT(without.size(), bytes.size());
  const std::size_t plan_start = without.size() - 1;  // the has_plan byte
  ASSERT_EQ(bytes.compare(0, plan_start, without, 0, plan_start), 0);

  for (std::size_t i = plan_start; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    ModuleLoadResult r = load_module(mutated);
    EXPECT_FALSE(r.ok()) << "flipped plan byte " << i << " decoded";
    EXPECT_TRUE(r.report.has("B215") || r.report.has("B216") ||
                r.report.has("B217"))
        << "flipped plan byte " << i << ": " << r.report.to_text();
  }

  // And the plan-less image still loads (plans are optional in v2).
  ModuleLoadResult r = load_module(without);
  EXPECT_TRUE(r.ok()) << r.report.to_text();
  EXPECT_EQ(r.module->plan, nullptr);
}

TEST(ModuleIO, FileRoundtripAndMissingFile) {
  auto module = compile_program(kProgram);
  const std::uint64_t hash = source_hash(kProgram);
  const std::string path =
      ::testing::TempDir() + "/module_io_test_roundtrip.pvcm";

  write_module_file(path, *module, hash);
  ModuleLoadResult loaded = load_module_file(path);
  ASSERT_TRUE(loaded.ok()) << loaded.report.to_text();
  EXPECT_EQ(loaded.source_hash, hash);
  EXPECT_EQ(module_bytes(*loaded.module, hash), module_bytes(*module, hash));
  std::remove(path.c_str());

  ModuleLoadResult missing =
      load_module_file(::testing::TempDir() + "/no_such_module.pvcm");
  EXPECT_FALSE(missing.ok());
  EXPECT_TRUE(missing.report.has("B215")) << missing.report.to_text();
}

TEST(ModuleIO, RoundtripIsIdentityOnTheExampleCorpus) {
  // The property test over real programs: for every example in the
  // repository, serialize . deserialize is the identity (checked via the
  // fixed-point formulation, which covers every table and pool at once)
  // and the decoded module still satisfies the bytecode verifier.
  const char* corpus[] = {"examples/programs/sort.p",
                          "examples/programs/primes.p",
                          "examples/programs/graph.p",
                          "examples/programs/stats.p",
                          "examples/programs/nbody.p",
                          "examples/programs/mandel.p"};
  for (const char* path : corpus) {
    SCOPED_TRACE(path);
    std::ifstream in(std::string(PROTEUS_SOURCE_DIR) + "/" + path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    Session session(buf.str());
    const std::uint64_t hash = source_hash(buf.str(), options_tag(true, true));
    const std::string bytes =
        module_bytes(*session.compiled().module, hash);

    ModuleLoadResult loaded = load_module(bytes);
    ASSERT_TRUE(loaded.ok()) << loaded.report.to_text();
    EXPECT_EQ(loaded.source_hash, hash);
    EXPECT_EQ(module_bytes(*loaded.module, loaded.source_hash), bytes);
  }
}

TEST(ModuleIO, SourceHashSeparatesSourceFromOptions) {
  // The 0x1F separator keeps ("ab","c") distinct from ("a","bc"), and the
  // options tag distinguishes otherwise identical sources.
  EXPECT_NE(source_hash("ab", "c"), source_hash("a", "bc"));
  EXPECT_NE(source_hash("x", options_tag(true, true)),
            source_hash("x", options_tag(false, true)));
  EXPECT_NE(source_hash("x", options_tag(true, true)),
            source_hash("x", options_tag(true, false)));
  // Stable across calls/processes (FNV-1a is fully deterministic).
  EXPECT_EQ(source_hash("fun f(): int = 1", "O1:v"),
            source_hash("fun f(): int = 1", "O1:v"));

  EXPECT_EQ(options_tag(true, true), "O1:v");
  EXPECT_EQ(options_tag(false, false), "O0:nv");
  EXPECT_EQ(hash_hex(0x0123456789abcdefull), "0123456789abcdef");
  EXPECT_EQ(hash_hex(0).size(), 16u);
}

}  // namespace
}  // namespace proteus::vm
