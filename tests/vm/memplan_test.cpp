// Plan-backed arena execution (VMOptions::arena) against the default
// heap allocator: results and traps must be bit-identical, the arena
// must actually recycle buffers, and plan-based admission control
// (VMOptions::admission) must trap oversized calls before any work runs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/lifetime.hpp"
#include "core/proteus.hpp"
#include "rt/rt.hpp"
#include "testing.hpp"
#include "vm/module_io.hpp"

namespace proteus {
namespace {

constexpr const char* kQuicksort = R"(
  fun quicksort(v: seq(int)): seq(int) =
    if #v <= 1 then v
    else
      let pivot = v[1 + (#v / 2)] in
      let parts = [p <- [[x <- v | x < pivot : x],
                         [x <- v | x > pivot : x]] : quicksort(p)] in
      parts[1] ++ [x <- v | x == pivot : x] ++ parts[2]
)";

std::string pseudo_random_seq(int n, int modulus) {
  std::string lit = "[";
  for (int i = 1; i <= n; ++i) {
    if (i > 1) lit += ',';
    lit += std::to_string((i * 37) % modulus);
  }
  return lit + "]";
}

/// Runs `fn(args)` with the arena off and on; asserts identical results
/// and identical machine-independent cost counters, and returns the
/// buffer_allocs pair (heap, arena).
std::pair<std::uint64_t, std::uint64_t> differential(
    std::string_view program, const std::string& fn,
    const interp::ValueList& args) {
  Session heap(program);
  const interp::Value expected = heap.run_vm(fn, args);
  const vl::VectorStats heap_work = heap.last_cost().vector_work;

  Session arena(program);
  arena.set_arena(true);
  const interp::Value got = arena.run_vm(fn, args);
  const vl::VectorStats arena_work = arena.last_cost().vector_work;

  EXPECT_EQ(expected, got) << fn;
  // Same program, same work: only the allocator changed.
  EXPECT_EQ(heap_work.primitive_calls, arena_work.primitive_calls);
  EXPECT_EQ(heap_work.element_work, arena_work.element_work);
  EXPECT_EQ(heap_work.segment_work, arena_work.segment_work);
  // Recycled buffers and heap allocations partition the arena run's
  // allocation count, which equals the heap run's.
  EXPECT_EQ(heap_work.buffer_allocs,
            arena_work.buffer_allocs + arena_work.arena_recycled);
  return {heap_work.buffer_allocs, arena_work.buffer_allocs};
}

TEST(MemPlan, QuicksortIsBitIdenticalAndRecycles) {
  const auto [heap_allocs, arena_allocs] = differential(
      kQuicksort, "quicksort", {testing::val(pseudo_random_seq(3000, 997))});
  // The headline property: divide-and-conquer churns same-sized buffers,
  // so the arena halves (at least) the allocation count.
  EXPECT_LE(arena_allocs * 2, heap_allocs)
      << "heap " << heap_allocs << " vs arena " << arena_allocs;
}

TEST(MemPlan, RegularWorkloadsAreBitIdentical) {
  const char* programs[] = {
      "fun f(xs: seq(int)): seq(int) = [x <- xs : x * 2 + 1]",
      "fun f(xs: seq(int)): int = sum([x <- xs : x * x])",
      "fun f(xs: seq(int)): seq(int) = [x <- xs | x > 10 : x]",
      "fun f(xs: seq(real)): real = sum([x <- xs : sqrt(x * x + 1.0)])",
      "fun f(xs: seq(seq(int))): seq(int) = [row <- xs : sum(row)]",
  };
  const char* args[] = {
      "[5,3,8,1,9,2,7,4,6,0,11,13,12,15,14]",
      "[5,3,8,1,9,2,7,4,6,0,11,13,12,15,14]",
      "[5,3,8,1,9,2,7,4,6,0,11,13,12,15,14]",
      "[1.5,2.25,3.75,0.5,4.125]",
      "[[1,2,3],[4,5],[6],[7,8,9,10]]",
  };
  for (std::size_t i = 0; i < std::size(programs); ++i) {
    differential(programs[i], "f", {testing::val(args[i])});
  }
}

TEST(MemPlan, EntryExpressionRunsUnderTheArena) {
  // Large enough that freed buffers clear the arena's minimum donation
  // size (tiny buffers are cheaper to reallocate than to recycle).
  const std::string entry =
      "quicksort([i <- [1 .. 300] : (i * 37) mod 83])";
  Session heap(kQuicksort, entry);
  Session arena(kQuicksort, entry);
  arena.set_arena(true);
  EXPECT_EQ(heap.run_entry_vm(), arena.run_entry_vm());
  EXPECT_GT(arena.last_cost().vector_work.arena_recycled, 0u);
}

TEST(MemPlan, ModuleRunnerHonorsTheArena) {
  Session s(kQuicksort, "quicksort([4,2,5,1,3])");
  vm::ModuleLoadResult loaded =
      vm::load_module(vm::module_bytes(*s.compiled().module));
  ASSERT_TRUE(loaded.ok()) << loaded.report.to_text();

  ModuleRunner runner(loaded.module);
  runner.set_arena(true);
  const interp::Value arg = testing::val(pseudo_random_seq(200, 61));
  EXPECT_EQ(runner.run("quicksort", {arg}), s.run_vm("quicksort", {arg}));
  EXPECT_GT(runner.last_cost().vector_work.arena_recycled, 0u);
}

TEST(MemPlan, TrapsAreIdenticalUnderTheArena) {
  // A budget small enough that quicksort trips T001 mid-run: both
  // allocators must surface the same trap code (no fallback, so the
  // trap propagates).
  const std::string arg = pseudo_random_seq(2000, 997);
  for (const bool use_arena : {false, true}) {
    Session s(kQuicksort);
    s.set_fallback(false);
    s.set_arena(use_arena);
    rt::ExecBudget budget;
    budget.max_resident_bytes = 4096;
    s.set_budget(budget);
    try {
      (void)s.run_vm("quicksort", {testing::val(arg)});
      FAIL() << "expected T001 with arena=" << use_arena;
    } catch (const rt::RuntimeTrap& trap) {
      EXPECT_STREQ(trap.code(), "T001") << "arena=" << use_arena;
    }
  }
}

TEST(MemPlan, AdmissionRejectsOversizedCallsUpFront) {
  // A bounded one-pass map: the plan knows its peak, so admission can
  // reject before any element work happens.
  Session s("fun double(xs: seq(int)): seq(int) = [x <- xs : 2 * x]");
  s.set_fallback(false);
  s.set_admission(true);
  rt::ExecBudget budget;
  budget.max_resident_bytes = 256;  // below the plan's static bound
  s.set_budget(budget);
  try {
    (void)s.run_vm("double", {testing::val("[1,2,3,4,5,6,7,8]")});
    FAIL() << "expected admission trap";
  } catch (const rt::RuntimeTrap& trap) {
    EXPECT_STREQ(trap.code(), "T001");
    EXPECT_EQ(trap.site(), "vm.admit");
  }
  // No element work ran: admission fired before the first instruction.
  EXPECT_EQ(s.last_cost().vector_work.element_work, 0u);
}

TEST(MemPlan, AdmissionPassesHealthyCalls) {
  Session s("fun double(xs: seq(int)): seq(int) = [x <- xs : 2 * x]");
  s.set_admission(true);
  s.set_arena(true);
  rt::ExecBudget budget;
  budget.max_resident_bytes = 1u << 20;
  s.set_budget(budget);
  EXPECT_EQ(s.run_vm("double", {testing::val("[1,2,3]")}),
            testing::val("[2,4,6]"));
}

TEST(MemPlan, AdmissionIsInertForUnboundedPlans) {
  // Recursive programs have no static bound: admission must not reject
  // them up front (the runtime governor still guards the actual run).
  Session s(kQuicksort);
  s.set_admission(true);
  rt::ExecBudget budget;
  budget.max_resident_bytes = 1u << 20;
  s.set_budget(budget);
  EXPECT_EQ(s.run_vm("quicksort", {testing::val("[3,1,2]")}),
            testing::val("[1,2,3]"));
}

TEST(MemPlan, StaticBoundCoversObservedPeak) {
  // The soundness claim behind admission control: evaluate the plan's
  // bound at the call's input scale and compare against the governor's
  // resident-byte watermark for the run.
  Session s("fun sumsq(xs: seq(int)): int = sum([x <- xs : x * x])");
  ASSERT_NE(s.compiled().module->plan, nullptr);
  const auto it = s.compiled().module->fn_index.find("sumsq");
  ASSERT_NE(it, s.compiled().module->fn_index.end());
  const analysis::SymBound bound =
      s.compiled().module->plan->functions[it->second].peak_bytes;
  ASSERT_FALSE(bound.is_top());

  rt::ExecBudget budget;
  budget.max_resident_bytes = 1u << 24;  // generous: governs, never trips
  s.set_budget(budget);
  const std::string arg = pseudo_random_seq(512, 317);
  rt::reset_peak_resident_bytes();
  (void)s.run_vm("sumsq", {testing::val(arg)});
  const std::uint64_t observed = rt::peak_resident_bytes();
  EXPECT_GE(bound.eval(512), observed)
      << "bound " << bound.to_text() << " at N=512";
}

}  // namespace
}  // namespace proteus
