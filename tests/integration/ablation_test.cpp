// The Section 4.5 optimizations must not change results — only costs.
#include <gtest/gtest.h>

#include "testing.hpp"

namespace proteus {
namespace {

using testing::val;

xform::PipelineOptions naive_options() {
  xform::PipelineOptions o;
  o.flatten.broadcast_invariant_seq_args = false;
  o.shared_row_gather = false;
  return o;
}

const char* kGatherHeavy = R"(
  fun rev(v: seq(int)): seq(int) = [i <- [1 .. #v] : v[#v + 1 - i]]
  fun spread(v: seq(int), n: int): seq(seq(int)) =
    [i <- [1 .. n] : [j <- [1 .. #v] : v[j] + i]]
)";

TEST(Ablation, ResultsIdenticalWithAndWithoutSharedSource) {
  Session optimized(kGatherHeavy);
  Session naive(kGatherHeavy, {}, naive_options());
  interp::Value v = val("[5,6,7,8,9]");
  EXPECT_EQ(optimized.run_vector("rev", {v}), naive.run_vector("rev", {v}));
  EXPECT_EQ(optimized.run_vector("spread", {v, val("4")}),
            naive.run_vector("spread", {v, val("4")}));
  EXPECT_EQ(optimized.run_vector("rev", {v}),
            optimized.run_reference("rev", {v}));
}

TEST(Ablation, ReplicationCostsMoreElementWork) {
  // The paper: replicating the fixed source means "each set of index
  // values would retrieve from their own copy of the source sequence,
  // clearly a waste of time and space".
  Session optimized(kGatherHeavy);
  Session naive(kGatherHeavy, {}, naive_options());
  // Built with += throughout: the `"[" + s + "]"` temporary-insert form
  // trips GCC 12's -Werror=restrict false positive (PR105651) at -O2+.
  std::string literal = "[";
  for (int i = 0; i < 500; ++i) {
    if (i) literal += ',';
    literal += std::to_string(i);
  }
  literal += ']';
  interp::ValueList arg{val(literal)};
  (void)optimized.run_vector("rev", arg);
  auto opt_work = optimized.last_cost().vector_work.element_work;
  (void)naive.run_vector("rev", arg);
  auto naive_work = naive.last_cost().vector_work.element_work;
  EXPECT_GT(naive_work, opt_work);
}

TEST(Ablation, QuicksortAgreesUnderBothModes) {
  const char* qs = R"(
    fun quicksort(v: seq(int)): seq(int) =
      if #v <= 1 then v
      else
        let pivot = v[1 + (#v / 2)] in
        let parts = [part <- [[x <- v | x < pivot : x],
                              [x <- v | x > pivot : x]] : quicksort(part)] in
        parts[1] ++ [x <- v | x == pivot : x] ++ parts[2]
  )";
  Session optimized(qs);
  Session naive(qs, {}, naive_options());
  interp::Value input = val("[4,2,9,4,1,7,0,-3,4]");
  EXPECT_EQ(optimized.run_vector("quicksort", {input}),
            naive.run_vector("quicksort", {input}));
}

}  // namespace
}  // namespace proteus
