// Randomized differential testing: generate well-typed P programs from a
// seeded grammar, compile them through the full pipeline, and require all
// three engines — the reference interpreter, the vector-model tree
// executor, and the bytecode VM — to agree on random inputs (a thrown
// EvalError from every engine also counts as agreement).
//
// The generator sticks to total operations plus guarded conditionals, so
// almost every program runs to completion; sizes are kept small enough
// that arithmetic cannot overflow.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "testing.hpp"
#include "vm/verify.hpp"
#include "xform/verify.hpp"

namespace proteus {
namespace {

class Gen {
 public:
  explicit Gen(std::uint64_t seed) : rng_(seed) {}

  /// A function body of the requested result type, over parameters
  /// s: seq(int), m: seq(seq(int)), k: int.
  std::string body(const std::string& type) {
    if (type == "int") return int_expr(4);
    if (type == "bool") return bool_expr(4);
    if (type == "seq(int)") return seq_expr(4);
    return seqseq_expr(4);
  }

 private:
  int pick(int n) { return static_cast<int>(rng_() % std::uint64_t(n)); }

  std::string small_int() { return std::to_string(pick(5)); }

  std::string int_expr(int fuel) {
    if (fuel <= 0) {
      switch (pick(3)) {
        case 0:
          return small_int();
        case 1:
          return "k";
        default:
          return int_vars_.empty()
                     ? "k"
                     : int_vars_[std::size_t(pick(
                           static_cast<int>(int_vars_.size())))];
      }
    }
    switch (pick(10)) {
      case 0:
        return "(" + int_expr(fuel - 1) + " + " + int_expr(fuel - 1) + ")";
      case 1:
        return "(" + int_expr(fuel - 1) + " - " + int_expr(fuel - 1) + ")";
      case 2:
        return "min(" + int_expr(fuel - 1) + ", " + int_expr(fuel - 1) + ")";
      case 3:
        return "max(" + int_expr(fuel - 1) + ", " + int_expr(fuel - 1) + ")";
      case 4:
        return "#" + seq_expr(fuel - 2);
      case 5:
        return "sum(" + seq_expr(fuel - 1) + ")";
      case 6:
        return "(if " + bool_expr(fuel - 1) + " then " + int_expr(fuel - 1) +
               " else " + int_expr(fuel - 1) + ")";
      case 7: {
        std::string init = int_expr(fuel - 1);
        std::string v = fresh();
        int_vars_.push_back(v);
        std::string rest = int_expr(fuel - 1);
        int_vars_.pop_back();
        return "(let " + v + " = " + init + " in " + rest + ")";
      }
      case 8:
        return "(" + int_expr(fuel - 1) + " * " + small_int() + ")";
      default:
        return "-" + int_expr(fuel - 1);
    }
  }

  std::string bool_expr(int fuel) {
    if (fuel <= 0) return pick(2) ? "true" : "false";
    switch (pick(6)) {
      case 0:
        return "(" + int_expr(fuel - 1) + " < " + int_expr(fuel - 1) + ")";
      case 1:
        return "(" + int_expr(fuel - 1) + " == " + int_expr(fuel - 1) + ")";
      case 2:
        return "(" + bool_expr(fuel - 1) + " and " + bool_expr(fuel - 1) +
               ")";
      case 3:
        return "(" + bool_expr(fuel - 1) + " or " + bool_expr(fuel - 1) + ")";
      case 4:
        return "not " + bool_expr(fuel - 1);
      default:
        return "(" + int_expr(fuel - 1) + " >= " + int_expr(fuel - 1) + ")";
    }
  }

  std::string seq_expr(int fuel) {
    if (fuel <= 0) {
      switch (pick(3)) {
        case 0:
          return "s";
        case 1:
          return "[" + small_int() + ", " + small_int() + "]";
        default:
          return "range1(" + small_int() + ")";
      }
    }
    switch (pick(10)) {
      case 8:
        return "reverse(" + seq_expr(fuel - 1) + ")";
      case 9: {
        std::string a = seq_expr(fuel - 1);
        return "[zp <- zip(" + a + ", reverse(" + a + ")) : zp.1 + zp.2]";
      }
      case 0: {  // iterator with optional filter
        std::string dom = seq_expr(fuel - 1);
        std::string v = fresh();
        int_vars_.push_back(v);
        std::string filter = pick(2) ? " | " + bool_expr(fuel - 2) : "";
        std::string body = int_expr(fuel - 1);
        int_vars_.pop_back();
        return "[" + v + " <- " + dom + filter + " : " + body + "]";
      }
      case 1:
        return "(" + seq_expr(fuel - 1) + " ++ " + seq_expr(fuel - 1) + ")";
      case 2:
        return "flatten(" + seqseq_expr(fuel - 1) + ")";
      case 3:
        return "dist(" + int_expr(fuel - 1) + ", " + small_int() + ")";
      case 4:
        return "[" + int_expr(fuel - 1) + " .. " + int_expr(fuel - 1) + "]";
      case 5:
        return "(if " + bool_expr(fuel - 1) + " then " + seq_expr(fuel - 1) +
               " else " + seq_expr(fuel - 1) + ")";
      case 6:
        return "range1(min(" + int_expr(fuel - 1) + ", 6))";
      default:
        return "s";
    }
  }

  std::string seqseq_expr(int fuel) {
    if (fuel <= 0) return "m";
    switch (pick(4)) {
      case 0: {
        std::string dom = seq_expr(fuel - 1);
        std::string v = fresh();
        int_vars_.push_back(v);
        std::string body = seq_expr(fuel - 1);
        int_vars_.pop_back();
        return "[" + v + " <- " + dom + " : " + body + "]";
      }
      case 1:
        return "dist(" + seq_expr(fuel - 1) + ", " + small_int() + ")";
      case 2:
        return "(" + seqseq_expr(fuel - 1) + " ++ " + seqseq_expr(fuel - 1) +
               ")";
      default:
        return "m";
    }
  }

  std::string fresh() { return "g" + std::to_string(++counter_); }

  std::mt19937_64 rng_;
  std::vector<std::string> int_vars_;
  int counter_ = 0;
};

struct Outcome {
  bool threw = false;
  interp::Value value;
};

enum class Engine { kRef, kVec, kVm };

Outcome run(Session& s, const std::string& fn, const interp::ValueList& args,
            Engine engine) {
  Outcome o;
  try {
    switch (engine) {
      case Engine::kRef:
        o.value = s.run_reference(fn, args);
        break;
      case Engine::kVec:
        o.value = s.run_vector(fn, args);
        break;
      case Engine::kVm:
        o.value = s.run_vm(fn, args);
        break;
    }
  } catch (const EvalError&) {
    o.threw = true;
  } catch (const rt::RuntimeTrap&) {
    // Budget/depth traps from the governor count as "threw" for engine
    // agreement, same as EvalError (all engines share the limits).
    o.threw = true;
  }
  return o;
}

/// Runs `fn` on all three engines (plus, when given, the VM of a session
/// compiled without the VCODE optimizer) and asserts pairwise agreement.
void expect_engines_agree(Session& s, const std::string& fn,
                          const interp::ValueList& args,
                          std::uint64_t input,
                          Session* unfused = nullptr) {
  Outcome ref = run(s, fn, args, Engine::kRef);
  Outcome vec = run(s, fn, args, Engine::kVec);
  Outcome bc = run(s, fn, args, Engine::kVm);
  // The plan-backed arena VM must agree bit-for-bit with the heap VM,
  // including on which programs throw.
  s.set_arena(true);
  Outcome arena = run(s, fn, args, Engine::kVm);
  s.set_arena(false);
  EXPECT_EQ(ref.threw, vec.threw) << "input " << input;
  EXPECT_EQ(ref.threw, bc.threw) << "input " << input << " (vm)";
  EXPECT_EQ(bc.threw, arena.threw) << "input " << input << " (vm arena)";
  if (!bc.threw && !arena.threw) {
    EXPECT_EQ(bc.value, arena.value)
        << "input " << input << ": vm heap " << interp::to_text(bc.value)
        << " vs vm arena " << interp::to_text(arena.value);
  }
  if (!ref.threw && !vec.threw) {
    EXPECT_EQ(ref.value, vec.value)
        << "input " << input << ": ref " << interp::to_text(ref.value)
        << " vs vec " << interp::to_text(vec.value);
  }
  if (!ref.threw && !bc.threw) {
    EXPECT_EQ(ref.value, bc.value)
        << "input " << input << ": ref " << interp::to_text(ref.value)
        << " vs vm " << interp::to_text(bc.value);
  }
  if (unfused != nullptr) {
    Outcome plain = run(*unfused, fn, args, Engine::kVm);
    EXPECT_EQ(bc.threw, plain.threw) << "input " << input << " (vm -O0)";
    if (!bc.threw && !plain.threw) {
      EXPECT_EQ(bc.value, plain.value)
          << "input " << input << ": vm -O1 " << interp::to_text(bc.value)
          << " vs vm -O0 " << interp::to_text(plain.value);
    }
  }
}

xform::PipelineOptions unfused_options() {
  xform::PipelineOptions options;
  options.optimize_vcode = false;
  return options;
}

class Fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fuzz, EnginesAgreeOnRandomPrograms) {
  const std::uint64_t seed = GetParam();
  const char* kTypes[] = {"int", "bool", "seq(int)", "seq(seq(int))"};

  for (int variant = 0; variant < 4; ++variant) {
    Gen gen(seed * 41 + static_cast<std::uint64_t>(variant));
    std::string result_type = kTypes[variant % 4];
    std::string program =
        "fun fz(s: seq(int), m: seq(seq(int)), k: int): " + result_type +
        " = " + gen.body(result_type);

    SCOPED_TRACE(program);
    Session session(program);
    Session unfused(program, {}, unfused_options());
    // every random program's transformed output must be structurally valid
    xform::verify_vector_program(session.compiled().vec);
    // ...and pass the shape/depth analyzer and bytecode verifier clean
    EXPECT_TRUE(session.compiled().analysis.ok())
        << session.compiled().analysis.to_text();
    EXPECT_TRUE(vm::verify_module(*session.compiled().module).ok())
        << vm::verify_module(*session.compiled().module).to_text();

    for (std::uint64_t input = 0; input < 3; ++input) {
      interp::ValueList args;
      seq::Array sa =
          seq::random_nested_ints(seed + input, 0, 4, 0);
      seq::Array ma = seq::random_nested_ints(seed + input + 50, 1, 3, 3);
      args.push_back(interp::from_array(
          seq::Array::ints(seq::random_ints(seed + input, 4, -5, 5)),
          lang::Type::seq(lang::Type::int_())));
      args.push_back(interp::from_array(
          seq::Array::nested(
              ma.lengths(),
              seq::Array::ints(seq::random_ints(seed + input + 9,
                                                ma.inner().length(), -5, 5))),
          lang::Type::seq(lang::Type::seq(lang::Type::int_()))));
      args.push_back(interp::Value::ints(static_cast<vl::Int>(input) + 1));

      expect_engines_agree(session, "fz", args, input, &unfused);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz,
                         ::testing::Range<std::uint64_t>(1, 33));

/// Second family: random bodies fed through fixed helper functions —
/// covers extension synthesis, broadcast function values, and flattened
/// recursion inside randomly generated iterators.
class FuzzHelpers : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzHelpers, EnginesAgreeWithUserFunctionCalls) {
  const std::uint64_t seed = GetParam();
  Gen gen(seed * 97 + 5);
  std::string program = R"(
    fun clampid(x: int): int = if x < 0 then -x else x
    fun tri(n: int): seq(int) = [i <- [1 .. min(n, 6)] : i]
    fun rsum(v: seq(int)): int =
      if #v == 0 then 0 else v[1] + rsum([i <- [1 .. #v - 1] : v[i + 1]])
    fun apply2(f: (int) -> int, x: int): int = f(f(x))
  )";
  // A random seq body wrapped so every helper is exercised at depth 1.
  program += "fun fz(s: seq(int), m: seq(seq(int)), k: int): seq(int) = "
             "[g0 <- " + gen.body("seq(int)") +
             " : clampid(g0) + rsum(tri(g0)) + apply2(clampid, g0)]";

  SCOPED_TRACE(program);
  Session session(program);
  Session unfused(program, {}, unfused_options());
  xform::verify_vector_program(session.compiled().vec);
  EXPECT_TRUE(session.compiled().analysis.ok())
      << session.compiled().analysis.to_text();
  EXPECT_TRUE(vm::verify_module(*session.compiled().module).ok())
      << vm::verify_module(*session.compiled().module).to_text();

  for (std::uint64_t input = 0; input < 3; ++input) {
    interp::ValueList args;
    args.push_back(interp::from_array(
        seq::Array::ints(seq::random_ints(seed + input, 5, -6, 6)),
        lang::Type::seq(lang::Type::int_())));
    seq::Array ma = seq::random_nested_ints(seed + input + 70, 1, 3, 3);
    args.push_back(interp::from_array(
        seq::Array::nested(
            ma.lengths(),
            seq::Array::ints(seq::random_ints(seed + input + 9,
                                              ma.inner().length(), -6, 6))),
        lang::Type::seq(lang::Type::seq(lang::Type::int_()))));
    args.push_back(interp::Value::ints(static_cast<vl::Int>(input) + 2));

    expect_engines_agree(session, "fz", args, input, &unfused);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzHelpers,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace proteus
