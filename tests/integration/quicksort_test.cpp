// The paper's motivating example (Section 1): a data-parallel sort applied
// in parallel to every sequence in a collection — flattened recursive
// divide and conquer.
#include <gtest/gtest.h>

#include <algorithm>

#include "testing.hpp"

namespace proteus {
namespace {

using testing::val;

const char* kQuicksort = R"(
  fun quicksort(v: seq(int)): seq(int) =
    if #v <= 1 then v
    else
      let pivot = v[1 + (#v / 2)] in
      let less = [x <- v | x < pivot : x] in
      let same = [x <- v | x == pivot : x] in
      let more = [x <- v | x > pivot : x] in
      let sorted = [part <- [less, more] : quicksort(part)] in
      sorted[1] ++ same ++ sorted[2]

  // "a data-parallel sort function applied in parallel to every sequence
  // in a collection of sequences" — the key step the paper says flat
  // languages cannot express.
  fun sortall(m: seq(seq(int))): seq(seq(int)) = [row <- m : quicksort(row)]
)";

interp::Value sorted_value(std::vector<vl::Int> v) {
  std::sort(v.begin(), v.end());
  std::string lit = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) lit += ',';
    lit += std::to_string(v[i]);
  }
  lit += ']';
  return v.empty() ? val("([] : seq(int))") : val(lit);
}

class QuicksortBoth : public ::testing::TestWithParam<const char*> {};

TEST_P(QuicksortBoth, SortsAndEnginesAgree) {
  Session s(kQuicksort);
  interp::Value input = val(GetParam());
  interp::Value r = s.run_reference("quicksort", {input});
  interp::Value v = s.run_vector("quicksort", {input});
  EXPECT_EQ(r, v);
  // verify it actually sorts
  std::vector<vl::Int> xs;
  for (const auto& e : input.as_seq()) xs.push_back(e.as_int());
  EXPECT_EQ(r, sorted_value(xs));
}

INSTANTIATE_TEST_SUITE_P(
    Inputs, QuicksortBoth,
    ::testing::Values("([] : seq(int))", "[1]", "[2,1]", "[1,2]",
                      "[5,5,5,5]", "[3,1,4,1,5,9,2,6,5,3,5]",
                      "[9,8,7,6,5,4,3,2,1]", "[1,2,3,4,5,6,7,8,9]",
                      "[-3,7,-1,0,7,-3,2]"));

TEST(Quicksort, RandomLargeInput) {
  Session s(kQuicksort);
  seq::IntVec raw = seq::random_ints(2024, 500, -1000, 1000);
  interp::ValueList arg;
  interp::ValueList elems;
  std::vector<vl::Int> xs;
  for (vl::Size i = 0; i < raw.size(); ++i) {
    elems.push_back(interp::Value::ints(raw[i]));
    xs.push_back(raw[i]);
  }
  arg.push_back(interp::Value::seq(std::move(elems)));
  interp::Value v = s.run_vector("quicksort", arg);
  EXPECT_EQ(v, sorted_value(xs));
}

TEST(Quicksort, NestedApplication) {
  Session s(kQuicksort);
  testing::expect_both(
      s, "sortall",
      {val("[[3,1,2],([] : seq(int)),[9,-1],[5],[2,2,1,2]]")},
      "[[1,2,3],([] : seq(int)),[-1,9],[5],[1,2,2,2]]");
}

TEST(Quicksort, VectorPrimCountGrowsWithDepthNotSize) {
  // Flattened D&C: the number of vector primitives is proportional to the
  // recursion depth (O(log n) expected), not to n.
  Session s(kQuicksort);
  auto run = [&](vl::Size n) {
    seq::IntVec raw = seq::random_ints(7, n, 0, 1 << 30);
    interp::ValueList elems;
    for (vl::Size i = 0; i < raw.size(); ++i) {
      elems.push_back(interp::Value::ints(raw[i]));
    }
    (void)s.run_vector("quicksort", {interp::Value::seq(std::move(elems))});
    return s.last_cost().vector_work.primitive_calls;
  };
  auto p128 = run(128);
  auto p4096 = run(4096);
  // 32x the data should cost far fewer than 32x the primitives (log-ratio).
  EXPECT_LT(p4096, p128 * 4);
}

}  // namespace
}  // namespace proteus
