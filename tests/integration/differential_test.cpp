// End-to-end differential tests: for a battery of P programs, the
// reference interpreter and the vector-model executor must agree exactly.
#include <gtest/gtest.h>

#include "testing.hpp"

namespace proteus {
namespace {

using testing::both;
using testing::expect_both;
using testing::val;

TEST(Differential, ScalarFunctions) {
  Session s(R"(
    fun odd(a: int): bool = 1 == (a mod 2)
    fun collatz(x: int): int = if x mod 2 == 0 then x / 2 else 3 * x + 1
  )");
  expect_both(s, "odd", {val("3")}, "true");
  expect_both(s, "odd", {val("4")}, "false");
  expect_both(s, "collatz", {val("7")}, "22");
}

TEST(Differential, PaperSection2Functions) {
  Session s(R"(
    fun odd(a: int): bool = 1 == (a mod 2)
    fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]
    fun concat2(v: seq(int), w: seq(int)): seq(int) =
      [i <- [1 .. #v + #w] : if i <= #v then v[i] else w[i - #v]]
    fun oddsq(n: int): seq(seq(int)) = [i <- [1 .. n] | odd(i) : sqs(i)]
  )");
  expect_both(s, "sqs", {val("5")}, "[1,4,9,16,25]");
  expect_both(s, "concat2", {val("[1,2]"), val("[8,9]")}, "[1,2,8,9]");
  expect_both(s, "concat2", {val("([] : seq(int))"), val("[7]")}, "[7]");
  expect_both(s, "oddsq", {val("6")}, "[[1],[1,4,9],[1,4,9,16,25]]");
  expect_both(s, "oddsq", {val("0")}, "([] : seq(seq(int)))");
}

TEST(Differential, IrregularNesting) {
  Session s(R"(
    fun tri(n: int): seq(seq(int)) = [i <- [1 .. n] : [j <- [1 .. i] : j]]
    fun ragged(v: seq(int)): seq(seq(int)) = [x <- v : [j <- [1 .. x] : x * j]]
  )");
  expect_both(s, "tri", {val("4")}, "[[1],[1,2],[1,2,3],[1,2,3,4]]");
  expect_both(s, "ragged", {val("[2,0,3]")}, "[[2,4],[],[3,6,9]]");
}

TEST(Differential, SharedSourceGather) {
  Session s(R"(
    fun rev(v: seq(int)): seq(int) = [i <- [1 .. #v] : v[#v + 1 - i]]
    fun permute_by(v: seq(int), p: seq(int)): seq(int) = [i <- p : v[i]]
  )");
  expect_both(s, "rev", {val("[1,2,3,4]")}, "[4,3,2,1]");
  expect_both(s, "permute_by", {val("[10,20,30]"), val("[3,3,1]")},
              "[30,30,10]");
}

TEST(Differential, NestedParallelSum) {
  Session s(R"(
    fun rowsums(m: seq(seq(int))): seq(int) = [row <- m : sum(row)]
    fun grandsum(m: seq(seq(int))): int = sum([row <- m : sum(row)])
  )");
  expect_both(s, "rowsums", {val("[[1,2],([] : seq(int)),[3,4,5]]")},
              "[3,0,12]");
  expect_both(s, "grandsum", {val("[[1,2],[3]]")}, "6");
}

TEST(Differential, ConditionalsInsideIterators) {
  Session s(R"(
    fun clamp(v: seq(int)): seq(int) =
      [x <- v : if x < 0 then 0 else if x > 9 then 9 else x]
    fun signs(v: seq(int)): seq(int) =
      [x <- v : if x < 0 then -1 else if x == 0 then 0 else 1]
  )");
  expect_both(s, "clamp", {val("[-5,3,12,0]")}, "[0,3,9,0]");
  expect_both(s, "signs", {val("[-7,0,4]")}, "[-1,0,1]");
}

TEST(Differential, BranchesWithDifferentWork) {
  // One branch recurses, the other does not: exercises the empty-frame
  // guards when the mask is all-true or all-false.
  Session s(R"(
    fun halve(v: seq(int)): seq(int) = [x <- v : if x mod 2 == 0 then x / 2 else x]
  )");
  expect_both(s, "halve", {val("[2,4,8]")}, "[1,2,4]");   // all true
  expect_both(s, "halve", {val("[1,3,5]")}, "[1,3,5]");   // all false
  expect_both(s, "halve", {val("([] : seq(int))")}, "([] : seq(int))");
}

TEST(Differential, FilteredIterators) {
  Session s(R"(
    fun evens(v: seq(int)): seq(int) = [x <- v | x mod 2 == 0 : x]
    fun bigpairs(v: seq(int)): seq((int,int)) =
      [x <- v | x > 10 : (x, x * x)]
  )");
  expect_both(s, "evens", {val("[1,2,3,4,5,6]")}, "[2,4,6]");
  expect_both(s, "evens", {val("[1,3]")}, "([] : seq(int))");
  expect_both(s, "bigpairs", {val("[5,11,20]")}, "[(11,121),(20,400)]");
}

TEST(Differential, DestructuringLet) {
  Session s(R"(
    fun swap(p: (int, int)): (int, int) = let (a, b) = p in (b, a)
    fun dots(v: seq(((int,int),(int,int)))): seq(int) =
      [pair <- v :
         let (p, q) = pair in
         let (px, py) = p in
         let (qx, qy) = q in
         px * qx + py * qy]
  )");
  expect_both(s, "swap", {val("(1,2)")}, "(2,1)");
  expect_both(s, "dots", {val("[((1,2),(3,4)),((0,1),(5,6))]")}, "[11,6]");
}

TEST(Differential, TupleManipulation) {
  Session s(R"(
    fun zipadd(v: seq((int, int))): seq(int) = [p <- v : p.1 + p.2]
    fun mkpairs(v: seq(int)): seq((int, int)) = [x <- v : (x, -x)]
    fun nested_tuple(v: seq(int)): seq((int, (int, bool))) =
      [x <- v : (x, (x * 2, x > 0))]
  )");
  expect_both(s, "zipadd", {val("[(1,10),(2,20)]")}, "[11,22]");
  expect_both(s, "mkpairs", {val("[3]")}, "[(3,-3)]");
  expect_both(s, "nested_tuple", {val("[-1,2]")},
              "[(-1,(-2,false)),(2,(4,true))]");
}

TEST(Differential, TupleFramesAtDepthTwo) {
  // tuple_cons^2 / tuple_extract^2 exercise the T1 path for tuples.
  Session s(R"(
    fun grid(n: int): seq(seq((int, int))) =
      [i <- [1 .. n] : [j <- [1 .. i] : (i, j)]]
    fun unwrap(m: seq(seq((int, int)))): seq(seq(int)) =
      [row <- m : [p <- row : p.1 * 10 + p.2]]
  )");
  expect_both(s, "grid", {val("3")},
              "[[(1,1)],[(2,1),(2,2)],[(3,1),(3,2),(3,3)]]");
  expect_both(s, "unwrap", {val("[[(1,2)],[(3,4),(5,6)]]")},
              "[[12],[34,56]]");
}

TEST(Differential, SeqConsAtDepthTwo) {
  Session s(R"(
    fun pairsof(n: int): seq(seq(seq(int))) =
      [i <- [1 .. n] : [j <- [1 .. i] : [i, j, i + j]]]
  )");
  expect_both(s, "pairsof", {val("2")},
              "[[[1,1,2]],[[2,1,3],[2,2,4]]]");
}

TEST(Differential, ReverseAndZip) {
  Session s(R"(
    fun revrows(m: seq(seq(int))): seq(seq(int)) = [row <- m : reverse(row)]
    fun zipup(a: seq(int), b: seq(int)): seq((int, int)) = zip(a, b)
    fun zipself(m: seq(seq(int))): seq(seq((int, int)))
      = [row <- m : zip(row, reverse(row))]
    fun pal(v: seq(int)): bool = all([p <- zip(v, reverse(v)) : p.1 == p.2])
  )");
  expect_both(s, "revrows", {val("[[1,2,3],([] : seq(int)),[4]]")},
              "[[3,2,1],([] : seq(int)),[4]]");
  expect_both(s, "zipup", {val("[1,2]"), val("[8,9]")}, "[(1,8),(2,9)]");
  expect_both(s, "zipself", {val("[[1,2],[5]]")},
              "[[(1,2),(2,1)],[(5,5)]]");
  expect_both(s, "pal", {val("[1,2,1]")}, "true");
  expect_both(s, "pal", {val("[1,2,2]")}, "false");
  EXPECT_THROW((void)s.run_vector("zipup", {val("[1]"), val("[1,2]")}),
               EvalError);
  EXPECT_THROW((void)s.run_reference("zipup", {val("[1]"), val("[1,2]")}),
               EvalError);
}

TEST(Differential, RealArithmetic) {
  Session s(R"(
    fun scale(v: seq(real), k: real): seq(real) = [x <- v : x * k]
    fun mean(v: seq(real)): real = sum(v) / real(#v)
    fun norms(v: seq((real, real))): seq(real) =
      [p <- v : sqrt(p.1 * p.1 + p.2 * p.2)]
  )");
  expect_both(s, "scale", {val("[1.5, 2.5]"), val("2.0")}, "[3.0, 5.0]");
  expect_both(s, "mean", {val("[1.0, 2.0, 3.0]")}, "2.0");
  expect_both(s, "norms", {val("[(3.0,4.0),(0.0,2.0)]")}, "[5.0, 2.0]");
}

TEST(Differential, DeepNesting) {
  Session s(R"(
    fun d3(n: int): seq(seq(seq(int))) =
      [i <- [1 .. n] : [j <- [1 .. i] : [k <- [1 .. j] : i*100+j*10+k]]]
    fun d4(n: int): seq(seq(seq(seq(int)))) =
      [a <- [1 .. n] : [b <- [1 .. a] : [c <- [1 .. b] : [d <- [1 .. c] : d]]]]
  )");
  both(s, "d3", {val("5")});
  both(s, "d4", {val("4")});
  expect_both(s, "d3", {val("1")}, "[[[111]]]");
}

TEST(Differential, HigherOrderReduce) {
  Session s(R"(
    fun add2(a: int, b: int): int = a + b
    fun mul2(a: int, b: int): int = a * b
    fun fold(f: (int,int) -> int, v: seq(int)): int =
      if #v == 1 then v[1]
      else f(fold(f, [i <- [1 .. #v - 1] : v[i]]), v[#v])
    fun foldrows(m: seq(seq(int))): seq(int) = [row <- m : fold(add2, row)]
    fun prodrows(m: seq(seq(int))): seq(int) = [row <- m : fold(mul2, row)]
  )");
  expect_both(s, "fold", {interp::Value::fun("add2"), val("[1,2,3,4]")}, "10");
  expect_both(s, "foldrows", {val("[[1,2,3],[10],[4,5]]")}, "[6,10,9]");
  expect_both(s, "prodrows", {val("[[2,3],[7]]")}, "[6,7]");
}

TEST(Differential, IndirectCallWithBroadcastArgument) {
  // f is applied through a function value at depth 1 with one frame
  // argument and one uniform argument (which must be replicated for the
  // user-function calling convention).
  Session s(R"(
    fun addc(x: int, c: int): int = x + c
    fun mulc(x: int, c: int): int = x * c
    fun mapc(f: (int, int) -> int, v: seq(int), c: int): seq(int) =
      [x <- v : f(x, c)]
  )");
  expect_both(s, "mapc",
              {interp::Value::fun("addc"), val("[1,2,3]"), val("10")},
              "[11,12,13]");
  expect_both(s, "mapc",
              {interp::Value::fun("mulc"), val("[1,2,3]"), val("10")},
              "[10,20,30]");
}

TEST(Differential, LambdasAsArguments) {
  Session s(R"(
    fun mapit(f: (int) -> int, v: seq(int)): seq(int) = [x <- v : f(x)]
    fun use(v: seq(int)): seq(int) = mapit(fun(x: int) => x * x + 1, v)
  )");
  expect_both(s, "use", {val("[1,2,3]")}, "[2,5,10]");
}

TEST(Differential, FlattenAndConcat) {
  Session s(R"(
    fun flat(m: seq(seq(int))): seq(int) = flatten(m)
    fun dup(v: seq(int)): seq(int) = v ++ v
    fun flatdup(m: seq(seq(int))): seq(seq(int)) = [row <- m : row ++ row]
  )");
  expect_both(s, "flat", {val("[[1],([] : seq(int)),[2,3]]")}, "[1,2,3]");
  expect_both(s, "dup", {val("[4,5]")}, "[4,5,4,5]");
  expect_both(s, "flatdup", {val("[[1],[2,3]]")}, "[[1,1],[2,3,2,3]]");
}

TEST(Differential, DeepUpdatePath) {
  Session s(R"(
    fun set2(m: seq(seq(int)), i: int, j: int, x: int): seq(seq(int)) =
      (m; [i][j] : x)
    fun setall(m: seq(seq(int)), x: int): seq(seq(seq(int))) =
      [i <- [1 .. #m] : (m; [i][1] : x)]
  )");
  expect_both(s, "set2", {val("[[1,2],[3,4,5]]"), val("2"), val("3"),
                          val("9")},
              "[[1,2],[3,4,9]]");
  expect_both(s, "setall", {val("[[1,2],[3]]"), val("7")},
              "[[[7,2],[3]],[[1,2],[7]]]");
}

TEST(Differential, UpdateInsideIterator) {
  Session s(R"(
    fun upd(v: seq(int)): seq(seq(int)) = [x <- v : update([0,0,0], 2, x)]
  )");
  expect_both(s, "upd", {val("[7,8]")}, "[[0,7,0],[0,8,0]]");
}

TEST(Differential, DistInsideIterator) {
  Session s("fun d(v: seq(int)): seq(seq(int)) = [x <- v : dist(x, x)]");
  expect_both(s, "d", {val("[3,0,1]")}, "[[3,3,3],[],[1]]");
}

TEST(Differential, RangesInsideIterators) {
  Session s(R"(
    fun f(v: seq(int)): seq(seq(int)) = [x <- v : [x .. x + 2]]
    fun g(v: seq(int)): seq(seq(int)) = [x <- v : [x .. 3]]
  )");
  expect_both(s, "f", {val("[5,0]")}, "[[5,6,7],[0,1,2]]");
  expect_both(s, "g", {val("[1,5]")}, "[[1,2,3],([] : seq(int))]");
}

TEST(Differential, RecursiveScalarFunctionAtDepth1) {
  Session s(R"(
    fun fact(n: int): int = if n <= 1 then 1 else n * fact(n - 1)
    fun facts(v: seq(int)): seq(int) = [x <- v : fact(x)]
  )");
  expect_both(s, "facts", {val("[1,3,5,0]")}, "[1,6,120,1]");
}

TEST(Differential, MaxMinAnyAll) {
  Session s(R"(
    fun rowmax(m: seq(seq(int))): seq(int) = [row <- m : maxval(row)]
    fun anyneg(m: seq(seq(int))): seq(bool) =
      [row <- m : any([x <- row : x < 0])]
  )");
  expect_both(s, "rowmax", {val("[[3,9],[5]]")}, "[9,5]");
  expect_both(s, "anyneg", {val("[[1,-2],[3],([] : seq(int))]")},
              "[true,false,false]");
}

TEST(Differential, LengthsAndArithmetic) {
  Session s(R"(
    fun lens(m: seq(seq(int))): seq(int) = [row <- m : #row]
    fun weighted(m: seq(seq(int))): seq(int) = [row <- m : #row * sum(row)]
  )");
  expect_both(s, "lens", {val("[[1,2,3],([] : seq(int)),[9]]")}, "[3,0,1]");
  expect_both(s, "weighted", {val("[[1,2],[5]]")}, "[6,5]");
}

TEST(Differential, UpdateOfNestedElements) {
  // update^1 where the replaced elements are themselves sequences — the
  // generic splice path over nested representations.
  Session s(R"(
    fun f(m: seq(seq(seq(int)))): seq(seq(seq(int))) =
      [x <- m : update(x, 1, [9, 9])]
    fun g(m: seq(seq(int)), v: seq(int)): seq(seq(seq(int))) =
      [row <- m : update([[1], [2, 2]], 2, v)]
  )");
  expect_both(s, "f", {val("[[[1],[2,3]],[[4]]]")},
              "[[[9,9],[2,3]],[[9,9]]]");
  expect_both(s, "g", {val("[[0],[0,0]]"), val("[7]")},
              "[[[1],[7]],[[1],[7]]]");
}

TEST(Differential, SeqLiteralsOfSequencesInsideIterators) {
  // seq_cons^1 with nested (sequence) element frames.
  Session s(R"(
    fun f(v: seq(int)): seq(seq(seq(int))) =
      [x <- v : [[x], [x, x * 2]]]
  )");
  expect_both(s, "f", {val("[3,0]")},
              "[[[3],[3,6]],[[0],[0,0]]]");
}

TEST(Differential, EmptyInputsEverywhere) {
  Session s(R"(
    fun tri(n: int): seq(seq(int)) = [i <- [1 .. n] : [j <- [1 .. i] : j]]
    fun rowsums(m: seq(seq(int))): seq(int) = [row <- m : sum(row)]
  )");
  expect_both(s, "tri", {val("0")}, "([] : seq(seq(int)))");
  expect_both(s, "rowsums", {val("([] : seq(seq(int)))")},
              "([] : seq(int))");
}

TEST(Differential, VectorCostIsDataIndependentInPrimCount) {
  // The number of vector primitives issued depends on the program, not on
  // the data size (work grows, step count does not).
  Session s("fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]");
  (void)s.run_vector("sqs", {val("4")});
  auto small = s.last_cost().vector_work.primitive_calls;
  (void)s.run_vector("sqs", {val("4000")});
  auto large = s.last_cost().vector_work.primitive_calls;
  EXPECT_EQ(small, large);
}

}  // namespace
}  // namespace proteus
