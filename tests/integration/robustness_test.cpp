// End-to-end tests of the execution governor, deterministic fault
// injection, and the graceful-degradation ladder (docs/ROBUSTNESS.md):
//
//   * every trap code T001-T008 is triggered through the public API,
//   * every ladder rung fires at least once (vm -O1 -> vm -O0 ->
//     tree executor -> reference interpreter; compile-time -O1 -> -O0),
//   * fallback results match the healthy engine byte for byte, and
//   * an exception-safety sweep checks that injected faults leak nothing
//     and leave descriptor invariants intact.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lang/parser.hpp"
#include "seq/nested.hpp"
#include "testing.hpp"

namespace proteus {
namespace {

using testing::val;

constexpr const char* kSquares =
    "fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]";

/// Recursion-bounded but work-heavy: each level issues ~2n element work,
/// so deadlines and step budgets trip long before the call-depth limit.
constexpr const char* kHeavy = R"(
  fun level(n: int): int = sum([i <- [1 .. n] : i]) - sum([i <- [1 .. n] : i])
  fun heavy(n: int, k: int): int =
    if k <= 0 then n else heavy(level(n) + n, k - 1)
)";

/// Clears any leaked governor/fault state even when an assertion fails.
class RobustnessTest : public ::testing::Test {
 protected:
  void TearDown() override {
    rt::clear_cancel();
    rt::disarm_faults();
  }
};

TEST_F(RobustnessTest, MemoryBudgetTrapsT001) {
  Session s(kSquares);
  rt::ExecBudget b;
  b.max_resident_bytes = rt::resident_bytes() + 4096;
  s.set_budget(b);
  try {
    (void)s.run_vector("sqs", {val("100000")});
    FAIL() << "expected T001";
  } catch (const rt::RuntimeTrap& e) {
    EXPECT_EQ(e.trap(), rt::Trap::kMemory);
  }
  EXPECT_EQ(s.last_degradations().size(), 1u);
  // A budget trap is deterministic: the ladder must NOT have burned the
  // budget retrying simpler engines.
  EXPECT_EQ(s.last_cost().metrics.get("rt.trap.T001"), 1u);
  // Lifting the budget makes the same call succeed.
  s.set_budget(rt::ExecBudget{});
  EXPECT_TRUE(s.run_vector("sqs", {val("10")}) == val("[1,4,9,16,25,36,49,64,81,100]"));
  EXPECT_TRUE(s.last_degradations().empty());
}

TEST_F(RobustnessTest, StepBudgetTrapsT002) {
  Session s(kSquares);
  rt::ExecBudget b;
  b.max_steps = 50;
  s.set_budget(b);
  try {
    (void)s.run_vm("sqs", {val("100000")});
    FAIL() << "expected T002";
  } catch (const rt::RuntimeTrap& e) {
    EXPECT_EQ(e.trap(), rt::Trap::kSteps);
    EXPECT_GT(e.steps_at_trip(), 50u);
  }
  EXPECT_EQ(s.last_cost().metrics.get("rt.trap.T002"), 1u);
}

TEST_F(RobustnessTest, DepthBudgetTrapsT003OnEveryEngine) {
  Session s("fun spin(n: int): int = spin(n + 1)");
  rt::ExecBudget b;
  b.max_depth = 64;
  s.set_budget(b);
  for (const char* engine : {"ref", "vec", "vm"}) {
    try {
      if (engine[0] == 'r') {
        (void)s.run_reference("spin", {val("0")});
      } else if (engine[0] == 'v' && engine[1] == 'e') {
        (void)s.run_vector("spin", {val("0")});
      } else {
        (void)s.run_vm("spin", {val("0")});
      }
      FAIL() << "expected T003 from " << engine;
    } catch (const rt::RuntimeTrap& e) {
      EXPECT_EQ(e.trap(), rt::Trap::kDepth) << engine;
      EXPECT_NE(std::string(e.what()).find("call depth limit exceeded"),
                std::string::npos)
          << engine;
    }
  }
}

TEST_F(RobustnessTest, DeadlineTrapsT004) {
  Session s(kHeavy);
  rt::ExecBudget b;
  b.deadline_ms = 10;
  s.set_budget(b);
  try {
    // ~200 levels x ~200k element work each: seconds of work if the
    // deadline never fired, caught within milliseconds when it does.
    (void)s.run_vm("heavy", {val("100000"), val("200")});
    FAIL() << "expected T004";
  } catch (const rt::RuntimeTrap& e) {
    EXPECT_EQ(e.trap(), rt::Trap::kDeadline);
  }
  EXPECT_EQ(s.last_cost().metrics.get("rt.trap.T004"), 1u);
}

TEST_F(RobustnessTest, CancellationTrapsT005) {
  Session s(kSquares);
  rt::request_cancel();
  try {
    (void)s.run_vector("sqs", {val("100")});
    FAIL() << "expected T005";
  } catch (const rt::RuntimeTrap& e) {
    EXPECT_EQ(e.trap(), rt::Trap::kCancelled);
  }
  rt::clear_cancel();
  EXPECT_TRUE(s.run_vector("sqs", {val("3")}) == val("[1,4,9]"));
}

TEST_F(RobustnessTest, InjectedAllocFaultPropagatesWithFallbackOff) {
  Session s(kSquares);
  s.set_fallback(false);
  rt::FaultPlan plan;
  plan.alloc = 1;
  rt::arm_faults(plan);
  try {
    (void)s.run_vm("sqs", {val("100")});
    FAIL() << "expected T006";
  } catch (const rt::RuntimeTrap& e) {
    EXPECT_EQ(e.trap(), rt::Trap::kInjectAlloc);
  }
  EXPECT_EQ(s.last_cost().metrics.get("rt.trap.T006"), 1u);
  EXPECT_FALSE(rt::faults_armed());  // one-shot: drained even on the trap
}

TEST_F(RobustnessTest, LadderVmO1ToVmO0OnInjectedKernelFault) {
  Session s(kSquares);
  const interp::Value healthy = s.run_vm("sqs", {val("100")});
  ASSERT_NE(s.compiled().module_o0, nullptr);
  ASSERT_NE(s.compiled().module, s.compiled().module_o0)
      << "expected a distinct optimized module for the -O1 -> -O0 rung";

  rt::FaultPlan plan;
  plan.kernel = 1;
  rt::arm_faults(plan);
  const interp::Value recovered = s.run_vm("sqs", {val("100")});
  EXPECT_TRUE(recovered == healthy);
  ASSERT_EQ(s.last_degradations().size(), 1u);
  EXPECT_NE(s.last_degradations()[0].find("vm -> vm-o0"), std::string::npos)
      << s.last_degradations()[0];
  EXPECT_EQ(s.last_cost().metrics.get("rt.trap.T007"), 1u);
  EXPECT_EQ(s.last_cost().metrics.get("rt.fallback.vm"), 1u);
}

TEST_F(RobustnessTest, LadderVmToExecWhenNoOptimizedModule) {
  xform::PipelineOptions options;
  options.optimize_vcode = false;  // -O0: no separate module to retry on
  Session s(kSquares, {}, options);
  EXPECT_EQ(s.compiled().module, s.compiled().module_o0);
  const interp::Value healthy = s.run_vm("sqs", {val("100")});

  rt::FaultPlan plan;
  plan.kernel = 1;
  rt::arm_faults(plan);
  const interp::Value recovered = s.run_vm("sqs", {val("100")});
  EXPECT_TRUE(recovered == healthy);
  ASSERT_EQ(s.last_degradations().size(), 1u);
  EXPECT_NE(s.last_degradations()[0].find("vm -> exec"), std::string::npos)
      << s.last_degradations()[0];
  EXPECT_EQ(s.last_cost().metrics.get("rt.fallback.vm"), 1u);
}

TEST_F(RobustnessTest, LadderExecToInterpOnInjectedAllocFault) {
  Session s(kSquares);
  const interp::Value healthy = s.run_vector("sqs", {val("100")});

  rt::FaultPlan plan;
  plan.alloc = 1;
  rt::arm_faults(plan);
  // The fault strikes during argument conversion or the first kernel
  // allocation; the interpreter never touches vl, so it is immune.
  const interp::Value recovered = s.run_vector("sqs", {val("100")});
  EXPECT_TRUE(recovered == healthy);
  ASSERT_EQ(s.last_degradations().size(), 1u);
  EXPECT_NE(s.last_degradations()[0].find("exec -> interp"),
            std::string::npos)
      << s.last_degradations()[0];
  EXPECT_EQ(s.last_cost().metrics.get("rt.trap.T006"), 1u);
  EXPECT_EQ(s.last_cost().metrics.get("rt.fallback.exec"), 1u);
}

TEST_F(RobustnessTest, CompileTimeO1ToO0OnInjectedOptimizerFault) {
  rt::FaultPlan plan;
  plan.opt = 1;
  rt::arm_faults(plan);
  Session degraded(kSquares);  // T008 fires inside optimize-vcode
  rt::disarm_faults();
  ASSERT_EQ(degraded.compiled().compile_fallbacks.size(), 1u);
  EXPECT_NE(degraded.compiled().compile_fallbacks[0].find("T008"),
            std::string::npos)
      << degraded.compiled().compile_fallbacks[0];
  EXPECT_EQ(degraded.compiled().module, degraded.compiled().module_o0);
  EXPECT_EQ(degraded.compiled().fusion.fused_chains, 0u);

  // The degraded (-O0) module still computes the right answers.
  Session healthy(kSquares);
  EXPECT_TRUE(healthy.compiled().compile_fallbacks.empty());
  EXPECT_TRUE(degraded.run_vm("sqs", {val("50")}) ==
              healthy.run_vm("sqs", {val("50")}));
}

TEST_F(RobustnessTest, ExceptionSafetySweepUnderAllocInjection) {
  // Fail the 1st, 2nd, ... Nth allocation of a run with fallback on: the
  // result must always match the healthy run, pre-existing arrays must
  // keep their descriptor invariants, and nothing may leak (the CI matrix
  // re-runs this suite under ASan).
  Session s(R"(
    fun qs(v: seq(int)): seq(int) =
      if #v <= 1 then v
      else let p = v[1 + #v / 2] in
           qs([x <- v | x < p : x]) ++ [x <- v | x == p : x]
             ++ qs([x <- v | x > p : x])
  )");
  const interp::Value input =
      val("[5,3,8,1,9,2,7,4,6,0,5,3,8,1,9,2,7,4,6,0]");
  const interp::Value healthy = s.run_vm("qs", {input});

  // An array alive across every injected unwind; validated after each.
  const exec::VValue pristine =
      exec::from_boxed(val("[[1,2],[3],[4,5,6]]"),
                       lang::parse_type("seq(seq(int))"));
  for (std::uint64_t nth = 1; nth <= 12; ++nth) {
    rt::FaultPlan plan;
    plan.alloc = nth;
    rt::arm_faults(plan);
    const interp::Value recovered = s.run_vm("qs", {input});
    EXPECT_TRUE(recovered == healthy) << "alloc:" << nth;
    pristine.as_seq().validate();
    // Results that came through a fallback engine still convert to
    // well-formed flat arrays.
    exec::from_boxed(recovered, lang::parse_type("seq(int)"))
        .as_seq()
        .validate();
    rt::disarm_faults();
    // Uninjected rerun right after the fault: identical again.
    EXPECT_TRUE(s.run_vm("qs", {input}) == healthy) << "alloc:" << nth;
    EXPECT_TRUE(s.last_degradations().empty());
  }
}

TEST_F(RobustnessTest, KernelInjectionSweepAcrossTheLadder) {
  Session s(kHeavy);
  const interp::Value healthy = s.run_vm("heavy", {val("64"), val("3")});
  for (std::uint64_t nth = 1; nth <= 8; ++nth) {
    rt::FaultPlan plan;
    plan.kernel = nth;
    rt::arm_faults(plan);
    const interp::Value recovered = s.run_vm("heavy", {val("64"), val("3")});
    EXPECT_TRUE(recovered == healthy) << "kernel:" << nth;
    EXPECT_GE(s.last_degradations().size(), 1u) << "kernel:" << nth;
    rt::disarm_faults();
  }
}

TEST_F(RobustnessTest, GovernedRunLeavesNoResidentBytesBehind) {
  const std::uint64_t before = rt::resident_bytes();
  {
    Session s(kSquares);
    rt::ExecBudget b;
    b.max_steps = 1'000'000'000;
    s.set_budget(b);
    (void)s.run_vm("sqs", {val("1000")});
  }
  EXPECT_EQ(rt::resident_bytes(), before);
}

}  // namespace
}  // namespace proteus
