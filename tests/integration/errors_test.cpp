// Failure injection at the system level: runtime errors must surface as
// typed exceptions from BOTH engines (not crashes, not wrong answers).
#include <gtest/gtest.h>

#include "testing.hpp"

namespace proteus {
namespace {

using testing::val;

TEST(Errors, IndexOutOfRangeBothEngines) {
  Session s("fun pick(v: seq(int), i: int): int = v[i]");
  EXPECT_THROW((void)s.run_reference("pick", {val("[1,2]"), val("3")}),
               EvalError);
  EXPECT_THROW((void)s.run_vector("pick", {val("[1,2]"), val("3")}),
               EvalError);
  EXPECT_THROW((void)s.run_vector("pick", {val("[1,2]"), val("0")}),
               EvalError);
}

TEST(Errors, IndexOutOfRangeInsideIterator) {
  Session s("fun f(v: seq(int)): seq(int) = [i <- [1 .. #v] : v[i + 1]]");
  EXPECT_THROW((void)s.run_reference("f", {val("[1,2,3]")}), EvalError);
  EXPECT_THROW((void)s.run_vector("f", {val("[1,2,3]")}), EvalError);
}

TEST(Errors, DivisionByZeroInsideIterator) {
  Session s("fun f(v: seq(int)): seq(int) = [x <- v : 10 / x]");
  EXPECT_THROW((void)s.run_reference("f", {val("[1,0,2]")}), EvalError);
  EXPECT_THROW((void)s.run_vector("f", {val("[1,0,2]")}), EvalError);
  // but the guarded version must NOT fail: the conditional restricts the
  // divisor frame before dividing (rule R2d's whole point).
  Session g(
      "fun f(v: seq(int)): seq(int) = "
      "[x <- v : if x == 0 then 0 else 10 / x]");
  testing::expect_both(g, "f", {val("[1,0,2]")}, "[10,0,5]");
}

TEST(Errors, MaxvalOfEmptyInsideIterator) {
  Session s("fun f(m: seq(seq(int))): seq(int) = [row <- m : maxval(row)]");
  EXPECT_THROW((void)s.run_reference("f", {val("[[1],([] : seq(int))]")}),
               EvalError);
  EXPECT_THROW((void)s.run_vector("f", {val("[[1],([] : seq(int))]")}),
               EvalError);
}

TEST(Errors, WrongArgumentCount) {
  Session s("fun f(x: int): int = x");
  EXPECT_THROW((void)s.run_vector("f", {}), EvalError);
  EXPECT_THROW((void)s.run_reference("f", {val("1"), val("2")}), EvalError);
}

TEST(Errors, UnknownFunction) {
  Session s("fun f(x: int): int = x");
  EXPECT_THROW((void)s.run_vector("nosuch", {val("1")}), EvalError);
}

TEST(Errors, CompileTimeErrorsPropagate) {
  EXPECT_THROW((void)Session("fun f(x: int): int = x +"), SyntaxError);
  EXPECT_THROW((void)Session("fun f(x: int): int = x + true"), TypeError);
}

TEST(Errors, UpdateOutOfRange) {
  Session s("fun f(v: seq(int)): seq(int) = update(v, 5, 0)");
  EXPECT_THROW((void)s.run_vector("f", {val("[1,2]")}), EvalError);
}

}  // namespace
}  // namespace proteus
