// Property tests: randomized *inputs* swept through a fixed battery of
// programs on both engines. (The programs cover every construct; the
// sweeps cover the data-shape space: empty, skewed, negative, large.)
#include <gtest/gtest.h>

#include <sstream>

#include "testing.hpp"

namespace proteus {
namespace {

/// Renders a random nested sequence literal from the deterministic
/// generator (depth 1 or 2).
std::string random_literal(std::uint64_t seed, int depth, vl::Size top,
                           vl::Size max_seg) {
  seq::Array a = seq::random_nested_ints(seed, depth - 1, top, max_seg);
  // Always ascribe: generated shapes may contain only empty subsequences.
  // (Built with += — the `"(" + s + ...` temporary-insert form trips GCC
  // 12's -Werror=restrict false positive, PR105651, at -O2+.)
  std::string out = "(";
  out += seq::to_text(a);
  out += " : ";
  out += depth == 1 ? "seq(int)" : "seq(seq(int))";
  out += ')';
  return out;
}

struct Sweep {
  std::uint64_t seed;
  vl::Size top;
  vl::Size max_seg;
};

xform::PipelineOptions unfused_options() {
  xform::PipelineOptions options;
  options.optimize_vcode = false;
  return options;
}

/// All three engines agree, and the VM of an -O0 compile of the same
/// source (no VCODE fusion) matches the default (-O1) VM.
void both_and_unfused(Session& s, Session& unfused, const char* fn,
                      const interp::ValueList& args) {
  interp::Value reference = testing::both(s, fn, args);
  EXPECT_EQ(unfused.run_vm(fn, args), reference) << fn << " (vm -O0)";
}

class RandomInputs : public ::testing::TestWithParam<Sweep> {};

TEST_P(RandomInputs, FlatPrograms) {
  const Sweep& p = GetParam();
  const char* source = R"(
    fun evens(v: seq(int)): seq(int) = [x <- v | x mod 2 == 0 : x]
    fun clamp(v: seq(int)): seq(int) =
      [x <- v : if x < 0 then 0 else x]
    fun revidx(v: seq(int)): seq(int) = [i <- [1 .. #v] : v[#v + 1 - i]]
    fun squares(v: seq(int)): seq(int) = [x <- v : x * x]
    fun runningpairs(v: seq(int)): seq((int, int)) = [x <- v : (x, x + 1)]
  )";
  Session s(source);
  Session unfused(source, {}, unfused_options());
  interp::Value input = testing::val(random_literal(p.seed, 1, p.top, 0));
  for (const char* fn :
       {"evens", "clamp", "revidx", "squares", "runningpairs"}) {
    both_and_unfused(s, unfused, fn, {input});
  }
}

TEST_P(RandomInputs, NestedPrograms) {
  const Sweep& p = GetParam();
  const char* source = R"(
    fun rowsums(m: seq(seq(int))): seq(int) = [row <- m : sum(row)]
    fun lens(m: seq(seq(int))): seq(int) = [row <- m : #row]
    fun sq_each(m: seq(seq(int))): seq(seq(int)) =
      [row <- m : [x <- row : x * x]]
    fun keep_pos(m: seq(seq(int))): seq(seq(int)) =
      [row <- m : [x <- row | x > 0 : x]]
    fun headszero(m: seq(seq(int))): seq(int) =
      [row <- m : if #row == 0 then 0 else row[1]]
    fun flatit(m: seq(seq(int))): seq(int) = flatten(m)
    fun dupcat(m: seq(seq(int))): seq(seq(int)) = [row <- m : row ++ row]
  )";
  Session s(source);
  Session unfused(source, {}, unfused_options());
  interp::Value input =
      testing::val(random_literal(p.seed + 100, 2, p.top, p.max_seg));
  for (const char* fn : {"rowsums", "lens", "sq_each", "keep_pos",
                         "headszero", "flatit", "dupcat"}) {
    both_and_unfused(s, unfused, fn, {input});
  }
}

TEST_P(RandomInputs, RecursiveProgram) {
  const Sweep& p = GetParam();
  const char* source = R"(
    fun qs(v: seq(int)): seq(int) =
      if #v <= 1 then v
      else
        let pivot = v[1] in
        let rest = [i <- [1 .. #v - 1] : v[i + 1]] in
        qs([x <- rest | x < pivot : x]) ++ [pivot] ++
        qs([x <- rest | x >= pivot : x])
    fun sortrows(m: seq(seq(int))): seq(seq(int)) = [row <- m : qs(row)]
  )";
  Session s(source);
  Session unfused(source, {}, unfused_options());
  interp::Value input =
      testing::val(random_literal(p.seed + 200, 2, p.top, p.max_seg));
  both_and_unfused(s, unfused, "sortrows", {input});
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, RandomInputs,
    ::testing::Values(Sweep{1, 0, 3},     // empty outer
                      Sweep{2, 1, 0},     // single empty row
                      Sweep{3, 1, 5},     // single row
                      Sweep{4, 8, 1},     // many tiny rows
                      Sweep{5, 8, 8},     // balanced
                      Sweep{6, 30, 4},    //
                      Sweep{7, 50, 2},    //
                      Sweep{8, 5, 40},    // few long rows
                      Sweep{9, 100, 6},   //
                      Sweep{10, 17, 17},  //
                      Sweep{11, 64, 0},   // all rows empty
                      Sweep{12, 200, 3}));

}  // namespace
}  // namespace proteus
