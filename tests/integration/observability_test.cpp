// observability_test.cpp — the tracing/metrics layer end to end:
// RunCost resets on every run (no accumulation across back-to-back
// runs), the unified metric registry mirrors the engine stat structs,
// Session tracers capture run/prim/op spans, compile() emits one span
// per pipeline phase, and `--dump trace` text (Compiled::derivation) is
// exactly Tracer::rule_lines() — one renderer, two views.
#include <set>
#include <string>
#include <string_view>

#include "core/report.hpp"
#include "testing.hpp"

namespace {

using namespace proteus;
using proteus::testing::val;

const char* kProgram = R"(
  fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]
  fun total(n: int): int = sum(sqs(n))
)";

TEST(RunCostReset, BackToBackRunsDoNotAccumulate) {
  Session session(kProgram);
  (void)session.run_vector("total", {val("100")});
  const std::uint64_t work = session.last_cost().vector_work.element_work;
  const std::uint64_t prims =
      session.last_cost().vector_work.primitive_calls;
  ASSERT_GT(work, 0u);
  (void)session.run_vector("total", {val("100")});
  EXPECT_EQ(session.last_cost().vector_work.element_work, work);
  EXPECT_EQ(session.last_cost().vector_work.primitive_calls, prims);
  EXPECT_EQ(session.last_cost().metrics.get("vl.element_work"), work);

  (void)session.run_vm("total", {val("100")});
  const std::uint64_t vm_instr = session.last_cost().vm_ops.instructions;
  (void)session.run_vm("total", {val("100")});
  EXPECT_EQ(session.last_cost().vm_ops.instructions, vm_instr);

  (void)session.run_reference("total", {val("100")});
  const std::uint64_t iters = session.last_cost().reference.iterations;
  (void)session.run_reference("total", {val("100")});
  EXPECT_EQ(session.last_cost().reference.iterations, iters);
}

TEST(RunCostReset, EnginesDoNotLeakIntoEachOther) {
  Session session(kProgram);
  (void)session.run_vector("total", {val("50")});
  ASSERT_GT(session.last_cost().vector_work.element_work, 0u);

  (void)session.run_reference("total", {val("50")});
  // The whole RunCost was reset: no stale vector counters, and the
  // registry only holds the reference engine's metrics.
  EXPECT_EQ(session.last_cost().vector_work.element_work, 0u);
  EXPECT_GT(session.last_cost().reference.iterations, 0u);
  EXPECT_TRUE(session.last_cost().metrics.contains("ref.iterations"));
  EXPECT_FALSE(session.last_cost().metrics.contains("vec.calls"));
  EXPECT_FALSE(session.last_cost().metrics.contains("vl.element_work"));
}

TEST(Metrics, PublishedUnderUnifiedSchema) {
  Session session(kProgram);
  (void)session.run_vector("total", {val("64")});
  {
    const RunCost& c = session.last_cost();
    EXPECT_EQ(c.metrics.get("vl.element_work"),
              c.vector_work.element_work);
    EXPECT_EQ(c.metrics.get("vl.primitive_calls"),
              c.vector_work.primitive_calls);
    EXPECT_EQ(c.metrics.get("vl.segment_work"),
              c.vector_work.segment_work);
    EXPECT_EQ(c.metrics.get("vec.calls"), c.vector_ops.calls);
    EXPECT_EQ(c.metrics.get("vec.prim_applications"),
              c.vector_ops.prim_applications);
  }

  (void)session.run_vm("total", {val("64")});
  {
    const RunCost& c = session.last_cost();
    EXPECT_EQ(c.metrics.get("vm.instructions"), c.vm_ops.instructions);
    EXPECT_EQ(c.metrics.get("vm.calls"), c.vm_ops.calls);
    bool has_per_op = false;
    for (const auto& [name, value] : c.metrics.all()) {
      if (name.rfind("vm.op.", 0) == 0) has_per_op = true;
    }
    EXPECT_TRUE(has_per_op);
  }

  (void)session.run_reference("total", {val("64")});
  {
    const RunCost& c = session.last_cost();
    EXPECT_EQ(c.metrics.get("ref.iterations"), c.reference.iterations);
    EXPECT_EQ(c.metrics.get("ref.scalar_ops"), c.reference.scalar_ops);
  }
}

TEST(Tracing, SessionTracerRecordsRunPrimAndOpSpans) {
  Session session(kProgram);
  obs::Tracer tracer;
  session.set_tracer(&tracer);
  ASSERT_EQ(obs::tracer(), nullptr);  // install is per-run, not global

  (void)session.run_reference("total", {val("32")});
  (void)session.run_vector("total", {val("32")});
  (void)session.run_vm("total", {val("32")});
  EXPECT_EQ(obs::tracer(), nullptr);  // restored after every run

  std::set<std::string> run_spans;
  bool prim_span = false;
  bool op_span = false;
  for (const auto& e : tracer.events()) {
    const std::string_view cat = e.cat;
    if (cat == "run") run_spans.insert(e.name);
    if (cat == "prim") prim_span = true;
    if (cat == "op") op_span = true;
  }
  EXPECT_TRUE(run_spans.count("run.reference"));
  EXPECT_TRUE(run_spans.count("run.vector"));
  EXPECT_TRUE(run_spans.count("run.vm"));
  EXPECT_TRUE(prim_span);  // tree executor: one span per vl primitive
  EXPECT_TRUE(op_span);    // VM: one span per kernel opcode
}

TEST(Tracing, CompileEmitsPhaseSpansAndRuleEvents) {
  obs::Tracer tracer;
  obs::TracerScope scope(&tracer);
  Session session(kProgram);

  std::set<std::string> spans;
  std::uint64_t rule_events = 0;
  for (const auto& e : tracer.events()) {
    const std::string_view cat = e.cat;
    if (cat == "compile") spans.insert(e.name);
    if (cat == "rule") ++rule_events;
  }
  for (const char* want :
       {"parse", "check", "canonicalize[R1]", "flatten[R2]", "optimize",
        "translate[T1]", "analyze", "vm-assemble", "verify-vcode",
        "compile"}) {
    EXPECT_TRUE(spans.count(want)) << "missing compile span: " << want;
  }

  // Every rule firing is both tallied and (with a tracer) an event.
  std::uint64_t tallied = 0;
  for (const auto& [rule, count] : session.compiled().rule_counts) {
    tallied += count;
  }
  EXPECT_GT(tallied, 0u);
  EXPECT_EQ(rule_events, tallied);
}

TEST(Tracing, DerivationIsExactlyRuleLines) {
  xform::PipelineOptions options;
  options.collect_trace = true;

  // Without a tracer: compile() records into a pipeline-local one.
  Session plain(kProgram, "", options);
  ASSERT_FALSE(plain.compiled().derivation.empty());

  // With a tracer installed: same events land in it, same rendering.
  obs::Tracer tracer;
  {
    obs::TracerScope scope(&tracer);
    Session traced(kProgram, "", options);
    EXPECT_EQ(traced.compiled().derivation, tracer.rule_lines());
  }
  EXPECT_EQ(plain.compiled().derivation, tracer.rule_lines());
}

}  // namespace
