// Three-way differential: every program is evaluated as
//   (a) the checked source on the reference interpreter,
//   (b) the optimized flattened (pre-T1) form on the SAME interpreter
//       via its generic depth-extension semantics,
//   (c) the fully translated V form on the vector executor,
// and all three must agree. Leg (b) isolates R2 + the §4.5 rewrites from
// T1 and from the vector kernels — in particular it exercises the boxed
// semantics of seq_index_inner and the replicated-length rewrite.
#include <gtest/gtest.h>

#include "interp/interp.hpp"
#include "testing.hpp"

namespace proteus {
namespace {

using testing::val;

struct TriCase {
  const char* name;
  const char* program;
  const char* fn;
  const char* arg;
};

class Triangle : public ::testing::TestWithParam<TriCase> {};

TEST_P(Triangle, AllThreeAgree) {
  const TriCase& p = GetParam();
  Session s(p.program);
  interp::ValueList args{val(p.arg)};

  interp::Value source_interp = s.run_reference(p.fn, args);

  interp::Interpreter flat_interp(s.compiled().flat);
  interp::Value flat_result = flat_interp.call_function(p.fn, args);
  EXPECT_EQ(source_interp, flat_result)
      << p.name << ": flattened form diverges under boxed semantics";

  interp::Value vec_result = s.run_vector(p.fn, args);
  EXPECT_EQ(source_interp, vec_result)
      << p.name << ": vector execution diverges";
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Triangle,
    ::testing::Values(
        TriCase{"shared_row_gather",
                "fun f(m: seq(seq(int))): seq(seq(int)) = "
                "[row <- m : [i <- [1 .. #row] : row[i] * 2]]",
                "f", "[[1,2,3],[],[4,5]]"},
        TriCase{"replicated_lengths",
                "fun f(m: seq(seq(int))): seq(seq(int)) = "
                "[row <- m : [i <- [1 .. #row] : row[#row + 1 - i]]]",
                "f", "[[1,2,3],[],[4,5]]"},
        TriCase{"masked_recursion",
                "fun f(v: seq(int)): seq(int) = "
                "if #v <= 1 then v else "
                "let p = v[1] in "
                "f([x <- v | x < p : x]) ++ [x <- v | x == p : x] ++ "
                "f([x <- v | x > p : x])",
                "f", "[4,1,3,1,5,9,2]"},
        TriCase{"deep_triangular",
                "fun f(n: int): seq(seq(seq(int))) = "
                "[i <- [1 .. n] : [j <- [1 .. i] : [k <- [1 .. j] : i+j+k]]]",
                "f", "4"},
        TriCase{"tuple_frames",
                "fun f(v: seq(int)): seq((int, seq(int))) = "
                "[x <- v : (x, [j <- [1 .. x] : j * x])]",
                "f", "[2,0,3]"},
        TriCase{"guarded_division",
                "fun f(v: seq(int)): seq(int) = "
                "[x <- v : if x == 0 then 0 else 100 / x]",
                "f", "[1,0,4,-5]"}),
    [](const ::testing::TestParamInfo<TriCase>& pinfo) {
      return pinfo.param.name;
    });

}  // namespace
}  // namespace proteus
