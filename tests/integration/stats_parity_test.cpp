// stats_parity_test.cpp — the machine-independent cost counters must be
// exactly that: machine-independent. Element work, segment work, the
// per-primitive tallies and the per-opcode VM profile have to come out
// bit-identical whether the vl kernels run serially or threaded, on
// inputs big enough to actually cross kParallelGrain and take the OpenMP
// paths. Any divergence means a kernel counts work differently when it
// parallelises — exactly the bug class this guards against.
#include <cstdint>
#include <random>
#include <string>

#include "core/report.hpp"
#include "testing.hpp"
#include "vl/backend.hpp"

namespace {

using namespace proteus;
using proteus::testing::val;

const char* kQuicksort = R"(
  fun quicksort(v: seq(int)): seq(int) =
    if #v <= 1 then v
    else
      let pivot = v[1 + (#v / 2)] in
      let parts = [p <- [[x <- v | x < pivot : x],
                         [x <- v | x > pivot : x]] : quicksort(p)] in
      parts[1] ++ [x <- v | x == pivot : x] ++ parts[2]
)";

const char* kRowSums = R"(
  fun rowsums(m: seq(seq(int))): seq(int) =
    [row <- m : sum([x <- row : x * x])]
)";

const char* kPrefix = R"(
  fun prefix(v: seq(int)): seq(int) =
    [i <- [1 .. #v] : sum([j <- [1 .. i] : v[j]])]
)";

interp::Value random_ints(std::uint64_t seed, int n) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<vl::Int> dist(-1000, 1000);
  interp::ValueList out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(interp::Value::ints(dist(rng)));
  return interp::Value::seq(std::move(out));
}

interp::Value ragged_rows(std::uint64_t seed, int rows, int big_row_len) {
  interp::ValueList out;
  for (int r = 0; r < rows; ++r) {
    // One row well past kParallelGrain, the rest short: the irregular
    // case where segmented kernels split serial/threaded differently.
    const int len = r == 0 ? big_row_len : 1 + r % 7;
    out.push_back(random_ints(seed + static_cast<std::uint64_t>(r), len));
  }
  return interp::Value::seq(std::move(out));
}

/// Runs `fn(args)` on `engine` under `backend` and returns the full
/// published metric registry (deterministic: vm profiling is off, so no
/// wall-clock keys appear).
obs::MetricsRegistry::Map run_metrics(Session& session, vl::Backend backend,
                                      const std::string& engine,
                                      const std::string& fn,
                                      const interp::ValueList& args) {
  vl::BackendGuard guard(backend);
  if (engine == "vm") {
    (void)session.run_vm(fn, args);
  } else {
    (void)session.run_vector(fn, args);
  }
  return session.last_cost().metrics.all();
}

void expect_parity(const char* program, const std::string& fn,
                   const interp::ValueList& args) {
  Session session(program);
  for (const std::string engine : {"vec", "vm"}) {
    const auto serial =
        run_metrics(session, vl::Backend::kSerial, engine, fn, args);
    const auto openmp =
        run_metrics(session, vl::Backend::kOpenMP, engine, fn, args);
    EXPECT_EQ(serial, openmp)
        << fn << " on " << engine
        << ": cost counters differ between serial and openmp backends";
    EXPECT_GT(serial.at("vl.element_work"), 0u) << fn << " on " << engine;
  }
}

TEST(StatsParity, QuicksortSerialVsOpenMP) {
  if (!vl::openmp_available()) GTEST_SKIP() << "serial-only build";
  expect_parity(kQuicksort, "quicksort", {random_ints(3, 6000)});
}

TEST(StatsParity, IrregularRowSumsSerialVsOpenMP) {
  if (!vl::openmp_available()) GTEST_SKIP() << "serial-only build";
  expect_parity(kRowSums, "rowsums", {ragged_rows(7, 64, 8192)});
}

TEST(StatsParity, NestedPrefixSumsSerialVsOpenMP) {
  if (!vl::openmp_available()) GTEST_SKIP() << "serial-only build";
  // n rows of lengths 1..n flatten to n(n+1)/2 ~ 20k elements.
  expect_parity(kPrefix, "prefix", {random_ints(11, 200)});
}

}  // namespace
