// Convex hull by nested divide-and-conquer (tuples + filters + recursion
// + argmax search in one program), verified against a direct C++ hull.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "testing.hpp"

namespace proteus {
namespace {

const char* kProgram = R"(
  fun cross(o: (int,int), a: (int,int), b: (int,int)): int =
    (a.1 - o.1) * (b.2 - o.2) - (a.2 - o.2) * (b.1 - o.1)

  fun farthest(l: (int,int), r: (int,int), pts: seq((int,int))): (int,int) =
    let ds = [p <- pts : cross(l, r, p)] in
    let best = maxval(ds) in
    [i <- [1 .. #pts] | ds[i] == best : pts[i]][1]

  fun hullside(l: (int,int), r: (int,int), pts: seq((int,int)))
      : seq((int,int)) =
    let above = [p <- pts | cross(l, r, p) > 0 : p] in
    if #above == 0 then ([] : seq((int,int)))
    else
      let m = farthest(l, r, above) in
      let halves = [side <- [(l, m), (m, r)]
                    : hullside(side.1, side.2, above)] in
      halves[1] ++ [m] ++ halves[2]

  // endpoints are the lexicographic extremes (ties on x broken by y), so
  // both are true hull vertices even when several points share an x
  fun quickhull(pts: seq((int,int))): seq((int,int)) =
    let xs = [p <- pts : p.1] in
    let lx = minval(xs) in
    let rx = maxval(xs) in
    let ly = minval([p <- pts | p.1 == lx : p.2]) in
    let ry = maxval([p <- pts | p.1 == rx : p.2]) in
    let l = (lx, ly) in
    let r = (rx, ry) in
    [l] ++ hullside(l, r, pts) ++ [r] ++ hullside(r, l, pts)
)";

using Point = std::pair<vl::Int, vl::Int>;

interp::Value to_value(const std::vector<Point>& pts) {
  interp::ValueList out;
  for (const Point& p : pts) {
    out.push_back(interp::Value::tuple(
        {interp::Value::ints(p.first), interp::Value::ints(p.second)}));
  }
  return interp::Value::seq(std::move(out));
}

std::vector<Point> from_value(const interp::Value& v) {
  std::vector<Point> out;
  for (const interp::Value& p : v.as_seq()) {
    out.emplace_back(p.as_tuple()[0].as_int(), p.as_tuple()[1].as_int());
  }
  return out;
}

/// Reference: Andrew's monotone chain (strict hull, no collinear points).
std::vector<Point> reference_hull(std::vector<Point> pts) {
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  if (pts.size() < 3) return pts;
  auto cross = [](const Point& o, const Point& a, const Point& b) {
    return (a.first - o.first) * (b.second - o.second) -
           (a.second - o.second) * (b.first - o.first);
  };
  std::vector<Point> hull;
  for (int phase = 0; phase < 2; ++phase) {
    std::size_t start = hull.size();
    for (const Point& p : pts) {
      while (hull.size() >= start + 2 &&
             cross(hull[hull.size() - 2], hull.back(), p) <= 0) {
        hull.pop_back();
      }
      hull.push_back(p);
    }
    hull.pop_back();
    std::reverse(pts.begin(), pts.end());
  }
  return hull;
}

class Quickhull : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Quickhull, MatchesReferenceHullAndEnginesAgree) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<vl::Int> coord(-40, 40);
  std::vector<Point> pts;
  const int n = 3 + static_cast<int>(rng() % 120);
  for (int i = 0; i < n; ++i) pts.emplace_back(coord(rng), coord(rng));

  Session session(kProgram);
  interp::Value input = to_value(pts);
  interp::Value ref_engine = session.run_reference("quickhull", {input});
  interp::Value vec_engine = session.run_vector("quickhull", {input});
  EXPECT_EQ(ref_engine, vec_engine);

  // Same point set as the reference hull (order may differ in rotation).
  std::vector<Point> got = from_value(vec_engine);
  std::vector<Point> expect = reference_hull(pts);
  std::sort(got.begin(), got.end());
  got.erase(std::unique(got.begin(), got.end()), got.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Quickhull,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(Quickhull, DegenerateInputs) {
  Session session(kProgram);
  // all points collinear: hull is the two extremes
  interp::Value line = testing::val("[(0,0),(1,1),(2,2),(3,3)]");
  interp::Value got = session.run_vector("quickhull", {line});
  EXPECT_EQ(got, session.run_reference("quickhull", {line}));
  std::vector<Point> hull = from_value(got);
  std::sort(hull.begin(), hull.end());
  hull.erase(std::unique(hull.begin(), hull.end()), hull.end());
  EXPECT_EQ(hull, (std::vector<Point>{{0, 0}, {3, 3}}));
}

}  // namespace
}  // namespace proteus
