// server_test.cpp — proteusd's request engine (serve/server.hpp):
// protocol ops, the compile-once / evaluate-many cache, per-request
// budget isolation, the disk tier, and handle_line under concurrency
// (this suite runs under the TSan CI job, so the locking is proved, not
// assumed).
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace proteus::serve {
namespace {

constexpr const char* kSource =
    "fun sq(n: int): int = n * n\n"
    "fun down(n: int): int = if n == 0 then 0 else down(n - 1)\n";

Json request(std::initializer_list<std::pair<const std::string, Json>> kv) {
  return Json(Json::Object(kv));
}

Json args_of(std::initializer_list<const char*> literals) {
  Json::Array a;
  for (const char* s : literals) a.emplace_back(s);
  return Json(std::move(a));
}

TEST(ServeServer, PingEchoesIdAndUnknownOpIsBadRequest) {
  Server server;
  Json reply = server.handle_request(request({{"op", "ping"}, {"id", 7}}));
  EXPECT_TRUE(reply.get("ok").as_bool());
  EXPECT_TRUE(reply.get("pong").as_bool());
  EXPECT_EQ(reply.get("id").as_int(), 7);

  reply = server.handle_request(request({{"op", "frobnicate"}}));
  EXPECT_FALSE(reply.get("ok").as_bool(true));
  EXPECT_EQ(reply.get("error").get("kind").as_string(), "bad_request");
}

TEST(ServeServer, MalformedLineIsAParseErrorReply) {
  Server server;
  const std::string reply = server.handle_line("{\"op\":");
  EXPECT_NE(reply.find("\"ok\":false"), std::string::npos) << reply;
  EXPECT_NE(reply.find("\"kind\":\"parse\""), std::string::npos) << reply;
}

TEST(ServeServer, CompileThenEvalByKeyAndWarmReuse) {
  Server server;
  Json compiled = server.handle_request(
      request({{"op", "compile"}, {"source", kSource}}));
  ASSERT_TRUE(compiled.get("ok").as_bool()) << compiled.dump();
  EXPECT_FALSE(compiled.get("cached").as_bool(true));
  const std::string key = compiled.get("key").as_string();
  ASSERT_EQ(key.size(), 16u);
  ASSERT_EQ(compiled.get("functions").as_array().size(), 2u);

  // Same source again: served from cache, same key.
  Json again = server.handle_request(
      request({{"op", "compile"}, {"source", kSource}}));
  EXPECT_TRUE(again.get("cached").as_bool());
  EXPECT_EQ(again.get("key").as_string(), key);

  // Eval by key alone — no source resent.
  Json eval = server.handle_request(request(
      {{"op", "eval"}, {"key", key}, {"fun", "sq"}, {"args", args_of({"9"})}}));
  ASSERT_TRUE(eval.get("ok").as_bool()) << eval.dump();
  EXPECT_EQ(eval.get("result").as_string(), "81");
  EXPECT_TRUE(eval.get("cached").as_bool());
  EXPECT_EQ(eval.get("engine").as_string(), "vm");

  // An unknown key is a structured miss telling the client to resend
  // source, and a bad key is rejected before the cache is consulted.
  Json miss = server.handle_request(request(
      {{"op", "eval"}, {"key", "00000000deadbeef"}, {"fun", "sq"}}));
  EXPECT_EQ(miss.get("error").get("kind").as_string(), "unknown_key");
  Json bad = server.handle_request(
      request({{"op", "eval"}, {"key", "not-hex"}, {"fun", "sq"}}));
  EXPECT_EQ(bad.get("error").get("kind").as_string(), "bad_request");
}

TEST(ServeServer, EntryExpressionIsPartOfTheCacheKey) {
  Server server;
  Json a = server.handle_request(request(
      {{"op", "eval"}, {"source", kSource}, {"entry", "sq(3)"}}));
  Json b = server.handle_request(request(
      {{"op", "eval"}, {"source", kSource}, {"entry", "sq(4)"}}));
  ASSERT_TRUE(a.get("ok").as_bool()) << a.dump();
  ASSERT_TRUE(b.get("ok").as_bool()) << b.dump();
  EXPECT_EQ(a.get("result").as_string(), "9");
  EXPECT_EQ(b.get("result").as_string(), "16");
  EXPECT_NE(a.get("key").as_string(), b.get("key").as_string());
}

TEST(ServeServer, CompileErrorsAndBadArgumentsAreStructured) {
  Server server;
  Json reply = server.handle_request(request(
      {{"op", "eval"}, {"source", "fun f(: int = 1"}, {"fun", "f"}}));
  EXPECT_FALSE(reply.get("ok").as_bool(true));
  EXPECT_EQ(reply.get("error").get("kind").as_string(), "compile");

  reply = server.handle_request(request({{"op", "eval"},
                                         {"source", kSource},
                                         {"fun", "sq"},
                                         {"args", args_of({"]["})}}));
  EXPECT_EQ(reply.get("error").get("kind").as_string(), "bad_request");

  reply = server.handle_request(
      request({{"op", "eval"}, {"source", kSource}}));
  EXPECT_EQ(reply.get("error").get("kind").as_string(), "bad_request");

  reply = server.handle_request(request({{"op", "eval"}}));
  EXPECT_EQ(reply.get("error").get("kind").as_string(), "bad_request");
}

TEST(ServeServer, BudgetTrapIsPerRequestAndTheServerKeepsServing) {
  Server server;
  Json::Object budget;
  budget["depth"] = 10;
  Json trapped = server.handle_request(request({{"op", "eval"},
                                                {"source", kSource},
                                                {"fun", "down"},
                                                {"args", args_of({"500"})},
                                                {"budget", Json(budget)}}));
  ASSERT_FALSE(trapped.get("ok").as_bool(true)) << trapped.dump();
  EXPECT_EQ(trapped.get("error").get("kind").as_string(), "trap");
  EXPECT_EQ(trapped.get("error").get("code").as_string(), "T003");
  EXPECT_TRUE(trapped.get("error").has("site"));

  // The trap was request-local: the very same call without the tight
  // budget succeeds on the cached program.
  Json fine = server.handle_request(request({{"op", "eval"},
                                             {"source", kSource},
                                             {"fun", "down"},
                                             {"args", args_of({"500"})}}));
  ASSERT_TRUE(fine.get("ok").as_bool()) << fine.dump();
  EXPECT_EQ(fine.get("result").as_string(), "0");
  EXPECT_TRUE(fine.get("cached").as_bool());

  Json metrics = server.handle_request(request({{"op", "metrics"}}));
  EXPECT_GE(metrics.get("metrics").get("serve.trap.T003").as_int(), 1);
}

TEST(ServeServer, ClientBudgetCannotExceedTheServerCeiling) {
  ServerOptions options;
  options.max_budget.max_depth = 10;
  Server server(options);
  // The client asks for far more depth than the daemon allows; the
  // ceiling wins and the request traps.
  Json::Object budget;
  budget["depth"] = 1000000;
  Json reply = server.handle_request(request({{"op", "eval"},
                                              {"source", kSource},
                                              {"fun", "down"},
                                              {"args", args_of({"500"})},
                                              {"budget", Json(budget)}}));
  ASSERT_FALSE(reply.get("ok").as_bool(true)) << reply.dump();
  EXPECT_EQ(reply.get("error").get("code").as_string(), "T003");
}

TEST(ServeServer, MistypedBudgetIsRejectedNotIgnored) {
  Server server;
  // A typo'd knob must not silently grant an unbounded run.
  Json::Object budget;
  budget["max_depth"] = 5;
  Json reply = server.handle_request(request({{"op", "eval"},
                                              {"source", kSource},
                                              {"fun", "down"},
                                              {"args", args_of({"500"})},
                                              {"budget", Json(budget)}}));
  ASSERT_FALSE(reply.get("ok").as_bool(true)) << reply.dump();
  EXPECT_EQ(reply.get("error").get("kind").as_string(), "bad_request");
  EXPECT_NE(reply.get("error").get("message").as_string().find("max_depth"),
            std::string::npos)
      << reply.dump();

  // Non-object budgets and non-numeric knob values are equally rejected.
  Json bad = server.handle_request(request({{"op", "eval"},
                                            {"source", kSource},
                                            {"fun", "down"},
                                            {"args", args_of({"1"})},
                                            {"budget", Json("tight")}}));
  EXPECT_EQ(bad.get("error").get("kind").as_string(), "bad_request");
  Json::Object text_knob;
  text_knob["depth"] = Json("ten");
  Json bad2 = server.handle_request(request({{"op", "eval"},
                                             {"source", kSource},
                                             {"fun", "down"},
                                             {"args", args_of({"1"})},
                                             {"budget", Json(text_knob)}}));
  EXPECT_EQ(bad2.get("error").get("kind").as_string(), "bad_request");
}

TEST(ServeServer, WarmEvalCompilesNothing) {
  obs::Tracer tracer;
  obs::TracerScope scope(&tracer);
  Server server;

  auto eval = request({{"op", "eval"},
                       {"source", kSource},
                       {"fun", "sq"},
                       {"args", args_of({"6"})}});
  Json cold = server.handle_request(eval);
  ASSERT_TRUE(cold.get("ok").as_bool()) << cold.dump();
  EXPECT_FALSE(cold.get("cached").as_bool(true));

  auto compile_spans_since = [&tracer](std::size_t from) {
    std::size_t n = 0;
    const std::vector<obs::TraceEvent> events = tracer.events();
    for (std::size_t i = from; i < events.size(); ++i) {
      if (std::string_view(events[i].cat) == "compile") ++n;
    }
    return n;
  };
  // The cold request ran the pipeline: parse/check/…/vm-assemble spans.
  ASSERT_GT(compile_spans_since(0), 0u);

  // The warm request must add ZERO compile-category spans — the cache
  // hit skips parse, typecheck, transformation, and compilation
  // entirely; only run-category work remains.
  const std::size_t mark = tracer.event_count();
  Json warm = server.handle_request(eval);
  ASSERT_TRUE(warm.get("ok").as_bool()) << warm.dump();
  EXPECT_TRUE(warm.get("cached").as_bool());
  EXPECT_EQ(warm.get("result").as_string(), "36");
  EXPECT_EQ(compile_spans_since(mark), 0u);
}

TEST(ServeServer, DiskTierServesAFreshProcessByKeyAlone) {
  const std::string dir =
      ::testing::TempDir() + "/proteus_serve_disk_tier_test";
  std::filesystem::remove_all(dir);

  std::string key;
  {
    ServerOptions options;
    options.cache_dir = dir;
    Server first(options);
    Json compiled = first.handle_request(
        request({{"op", "compile"}, {"source", kSource}}));
    ASSERT_TRUE(compiled.get("ok").as_bool()) << compiled.dump();
    key = compiled.get("key").as_string();
  }

  // A brand-new server over the same directory — as after a daemon
  // restart — serves the key without ever seeing the source. The module
  // image carries its own calling convention, so the run works with no
  // AST in the process (engine "vm-module").
  ServerOptions options;
  options.cache_dir = dir;
  Server second(options);
  Json eval = second.handle_request(request(
      {{"op", "eval"}, {"key", key}, {"fun", "sq"}, {"args", args_of({"5"})}}));
  ASSERT_TRUE(eval.get("ok").as_bool()) << eval.dump();
  EXPECT_EQ(eval.get("result").as_string(), "25");
  EXPECT_EQ(eval.get("engine").as_string(), "vm-module");
  EXPECT_TRUE(eval.get("cached").as_bool());
  std::filesystem::remove_all(dir);
}

TEST(ServeServer, HandleLineIsThreadSafeUnderConcurrentMixedLoad) {
  Server server;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::atomic<int> ok_count{0};
  std::atomic<int> trap_count{0};

  // Prime both programs serially: cache insertion is first-writer-wins,
  // so two threads racing the FIRST compile of the same source may
  // legitimately both compile (one insert is discarded). Priming pins
  // the compile count at exactly one per distinct program and makes
  // every threaded request below a cache hit.
  (void)server.handle_line(
      "{\"op\":\"compile\","
      "\"source\":\"fun sq(n: int): int = n * n\"}");
  (void)server.handle_line(
      "{\"op\":\"compile\",\"source\":\"fun down(n: int): int = "
      "if n == 0 then 0 else down(n - 1)\"}");

  // Every thread hammers the same server with a mix of cache-hitting
  // evals, budget traps, and metrics requests. Run
  // under TSan (the CI job builds this suite with it) this proves the
  // cache and metrics locking; functionally, every reply must be a
  // well-formed verdict — ok, or the trap we asked for.
  auto worker = [&](int tid) {
    for (int i = 0; i < kPerThread; ++i) {
      const std::string reply = server.handle_line(
          "{\"op\":\"eval\",\"source\":\"fun sq(n: int): int = n * n\","
          "\"fun\":\"sq\",\"args\":[\"" +
          std::to_string(tid * 100 + i) + "\"]}");
      if (reply.find("\"ok\":true") != std::string::npos) ++ok_count;

      const std::string trap = server.handle_line(
          "{\"op\":\"eval\",\"source\":\"fun down(n: int): int = if n == 0 "
          "then 0 else down(n - 1)\",\"fun\":\"down\",\"args\":[\"99\"],"
          "\"budget\":{\"depth\":5}}");
      if (trap.find("\"code\":\"T003\"") != std::string::npos) ++trap_count;

      (void)server.handle_line("{\"op\":\"metrics\"}");
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(ok_count.load(), kThreads * kPerThread);
  EXPECT_EQ(trap_count.load(), kThreads * kPerThread);

  // One compile per distinct program (the serial priming), many serves:
  // every threaded eval must have hit the cache.
  obs::MetricsRegistry metrics = server.metrics();
  EXPECT_EQ(metrics.get("serve.compile.count"), 2u);
  EXPECT_GE(metrics.get("serve.cache.hit"),
            static_cast<std::uint64_t>(kThreads * kPerThread * 2));
}

TEST(ServeServer, StdioLoopServesUntilShutdown) {
  Server server;
  std::istringstream in(
      "{\"op\":\"ping\",\"id\":1}\n"
      "\n"
      "{\"op\":\"eval\",\"source\":\"fun sq(n: int): int = n * n\","
      "\"fun\":\"sq\",\"args\":[\"3\"]}\n"
      "{\"op\":\"shutdown\"}\n"
      "{\"op\":\"ping\",\"id\":2}\n");
  std::ostringstream out;
  EXPECT_EQ(server.serve_stdio(in, out), 0);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"pong\":true"), std::string::npos) << text;
  EXPECT_NE(text.find("\"result\":\"9\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"stopping\":true"), std::string::npos) << text;
  // The ping after shutdown was never served.
  EXPECT_EQ(text.find("\"id\":2"), std::string::npos) << text;
}

// --- ISSUE 7 telemetry: request ids, latency histograms, the metrics
// --- exposition ops, and the trace flight recorder.

Json eval_sq(int n) {
  return request({{"op", "eval"},
                  {"source", kSource},
                  {"fun", "sq"},
                  {"args", args_of({std::to_string(n).c_str()})}});
}

TEST(ServeTelemetry, RequestIdsAreAssignedAndUnique) {
  Server server;
  const Json a = server.handle_request(request({{"op", "ping"}}));
  const Json b = server.handle_request(request({{"op", "ping"}}));
  const std::string id_a = a.get("request_id").as_string();
  const std::string id_b = b.get("request_id").as_string();
  EXPECT_EQ(id_a.size(), 16u) << a.dump();  // same hex shape as cache keys
  EXPECT_EQ(id_b.size(), 16u);
  EXPECT_NE(id_a, id_b);
}

TEST(ServeTelemetry, ErrorAndParseRepliesCarryRequestIds) {
  Server server;
  const Json bad = server.handle_request(request({{"op", "frobnicate"}}));
  EXPECT_FALSE(bad.get("ok").as_bool(true));
  EXPECT_EQ(bad.get("request_id").as_string().size(), 16u) << bad.dump();

  // Even a line that never parsed gets an id the client can quote back.
  const std::string reply = server.handle_line("{\"op\":");
  EXPECT_NE(reply.find("\"request_id\":\""), std::string::npos) << reply;
}

TEST(ServeTelemetry, NoTelemetryMeansNoRequestIdsAndNoHistograms) {
  ServerOptions options;
  options.telemetry = false;
  Server server(options);
  const Json reply = server.handle_request(eval_sq(4));
  ASSERT_TRUE(reply.get("ok").as_bool()) << reply.dump();
  EXPECT_FALSE(reply.has("request_id"));
  const obs::MetricsRegistry metrics = server.metrics();
  EXPECT_EQ(metrics.histogram("serve.request.duration_us"), nullptr);
  EXPECT_EQ(metrics.get("serve.requests"), 1u);  // counters still work
}

TEST(ServeTelemetry, LatencyHistogramsSplitEvalHitsFromMisses) {
  Server server;
  ASSERT_TRUE(server.handle_request(eval_sq(4)).get("ok").as_bool());
  const Json hit = server.handle_request(eval_sq(4));
  ASSERT_TRUE(hit.get("cached").as_bool()) << hit.dump();

  const obs::MetricsRegistry metrics = server.metrics();
  const obs::Histogram* requests =
      metrics.histogram("serve.request.duration_us");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->count(), 2u);
  EXPECT_EQ(metrics.histogram("serve.eval.duration_us")->count(), 2u);
  EXPECT_EQ(metrics.histogram("serve.eval.miss.duration_us")->count(), 1u);
  EXPECT_EQ(metrics.histogram("serve.eval.hit.duration_us")->count(), 1u);

  // Point-in-time gauges are stamped on every snapshot; nothing is in
  // flight from the caller's thread once handle_request returned.
  EXPECT_TRUE(metrics.is_gauge("serve.uptime_seconds"));
  EXPECT_TRUE(metrics.is_gauge("serve.requests_inflight"));
  EXPECT_EQ(metrics.get("serve.requests_inflight"), 0u);
}

TEST(ServeTelemetry, MetricsOpFlattensHistogramsIntoJson) {
  Server server;
  ASSERT_TRUE(server.handle_request(eval_sq(3)).get("ok").as_bool());
  const Json reply = server.handle_request(request({{"op", "metrics"}}));
  ASSERT_TRUE(reply.get("ok").as_bool()) << reply.dump();
  const Json& metrics = reply.get("metrics");
  EXPECT_GE(metrics.get("serve.requests").as_int(), 1);
  EXPECT_EQ(metrics.get("serve.eval.duration_us.count").as_int(), 1);
  EXPECT_TRUE(metrics.has("serve.eval.duration_us.p50"));
  EXPECT_TRUE(metrics.has("serve.eval.duration_us.p99"));
  EXPECT_TRUE(metrics.has("serve.uptime_seconds"));
}

TEST(ServeTelemetry, OpenMetricsBodyMatchesRegistryExposition) {
  Server server;
  ASSERT_TRUE(server.handle_request(eval_sq(5)).get("ok").as_bool());
  const Json reply = server.handle_request(
      request({{"op", "metrics"}, {"format", "openmetrics"}}));
  ASSERT_TRUE(reply.get("ok").as_bool()) << reply.dump();
  EXPECT_EQ(reply.get("content_type").as_string(),
            "application/openmetrics-text; version=1.0.0; charset=utf-8");
  const std::string body = reply.get("body").as_string();
  EXPECT_NE(body.find("# TYPE serve_eval_duration_us histogram"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("serve_eval_duration_us_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos)
      << body;
  ASSERT_GE(body.size(), 6u);
  EXPECT_EQ(body.substr(body.size() - 6), "# EOF\n");

  // The op's body and MetricsRegistry::write_openmetrics agree line for
  // line on the stable series (the eval histogram); volatile series —
  // request counters, uptime, inflight — move between the two snapshots.
  const auto eval_lines = [](const std::string& text) {
    std::string picked;
    std::istringstream in(text);
    for (std::string line; std::getline(in, line);) {
      if (line.find("serve_eval_duration_us") != std::string::npos) {
        picked += line + "\n";
      }
    }
    return picked;
  };
  std::ostringstream direct;
  server.metrics().write_openmetrics(direct);
  EXPECT_EQ(eval_lines(body), eval_lines(direct.str()));
  EXPECT_FALSE(eval_lines(body).empty());
}

TEST(ServeTelemetry, UnknownMetricsFormatIsABadRequest) {
  Server server;
  const Json reply = server.handle_request(
      request({{"op", "metrics"}, {"format", "xml"}}));
  EXPECT_FALSE(reply.get("ok").as_bool(true));
  EXPECT_EQ(reply.get("error").get("kind").as_string(), "bad_request");
}

TEST(ServeTelemetry, SampledRequestsAreRetrievableAsChromeTraces) {
  ServerOptions options;
  options.trace_sample_rate = 1.0;
  Server server(options);
  const Json eval = server.handle_request(eval_sq(6));
  ASSERT_TRUE(eval.get("ok").as_bool()) << eval.dump();
  const std::string rid = eval.get("request_id").as_string();

  const Json reply = server.handle_request(
      request({{"op", "trace"}, {"request_id", rid}}));
  ASSERT_TRUE(reply.get("ok").as_bool()) << reply.dump();
  const Json::Array& traces = reply.get("traces").as_array();
  ASSERT_EQ(traces.size(), 1u);
  const Json& entry = traces[0];
  EXPECT_EQ(entry.get("request_id").as_string(), rid);
  EXPECT_EQ(entry.get("op").as_string(), "eval");
  EXPECT_GE(entry.get("duration_us").as_int(), 0);

  // The embedded document is Chrome-trace shaped: Perfetto loads it.
  const Json& doc = entry.get("trace");
  EXPECT_EQ(doc.get("displayTimeUnit").as_string(), "ms");
  const Json::Array& events = doc.get("traceEvents").as_array();
  ASSERT_FALSE(events.empty());  // a cold eval compiles: spans exist
  for (const Json& e : events) {
    const std::string& ph = e.get("ph").as_string();
    EXPECT_TRUE(ph == "X" || ph == "i") << e.dump();
    EXPECT_FALSE(e.get("name").as_string().empty());
    EXPECT_TRUE(e.has("ts"));
    if (ph == "X") {
      EXPECT_TRUE(e.has("dur"));
    }
  }
}

TEST(ServeTelemetry, TraceRingIsBoundedAndLimitTakesTheMostRecent) {
  ServerOptions options;
  options.trace_sample_rate = 1.0;
  options.trace_ring_capacity = 2;
  Server server(options);
  std::vector<std::string> rids;
  for (int i = 1; i <= 4; ++i) {
    const Json reply = server.handle_request(eval_sq(i));
    ASSERT_TRUE(reply.get("ok").as_bool()) << reply.dump();
    rids.push_back(reply.get("request_id").as_string());
  }

  // Only the newest `capacity` traces survive. (Trace requests are
  // themselves sampled at rate 1, so query the ring oldest-first.)
  const Json all = server.handle_request(request({{"op", "trace"}}));
  const Json::Array& traces = all.get("traces").as_array();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].get("request_id").as_string(), rids[2]);
  EXPECT_EQ(traces[1].get("request_id").as_string(), rids[3]);
  EXPECT_GE(server.metrics().get("serve.trace.dropped"), 2u);

  const Json evicted = server.handle_request(
      request({{"op", "trace"}, {"request_id", rids[0]}}));
  EXPECT_TRUE(evicted.get("traces").as_array().empty());

  const Json limited = server.handle_request(
      request({{"op", "trace"}, {"limit", 1}}));
  EXPECT_EQ(limited.get("traces").as_array().size(), 1u);

  const Json bad = server.handle_request(
      request({{"op", "trace"}, {"limit", 0}}));
  EXPECT_FALSE(bad.get("ok").as_bool(true));
  EXPECT_EQ(bad.get("error").get("kind").as_string(), "bad_request");
}

TEST(ServeTelemetry, SamplingIsDeterministicInTheSequenceNumber) {
  ServerOptions options;
  options.trace_sample_rate = 0.5;
  Server server(options);
  for (int i = 1; i <= 8; ++i) {
    ASSERT_TRUE(server.handle_request(eval_sq(i)).get("ok").as_bool());
  }
  // floor(seq * 0.5) advances on every even seq: exactly half sampled.
  const Json reply = server.handle_request(request({{"op", "trace"}}));
  EXPECT_EQ(reply.get("traces").as_array().size(), 4u);
  EXPECT_EQ(server.metrics().get("serve.trace.sampled"), 4u);
}

TEST(ServeTelemetry, UnsampledServersLeaveTheTraceRingEmpty) {
  Server server;  // trace_sample_rate defaults to 0
  ASSERT_TRUE(server.handle_request(eval_sq(2)).get("ok").as_bool());
  const Json reply = server.handle_request(request({{"op", "trace"}}));
  ASSERT_TRUE(reply.get("ok").as_bool());
  EXPECT_TRUE(reply.get("traces").as_array().empty());
  EXPECT_EQ(server.metrics().get("serve.trace.sampled"), 0u);
}

TEST(ServeTelemetry, RequestLogLinesAreStructured) {
  std::ostringstream sink;
  obs::logger().configure(obs::LogLevel::kInfo, true, &sink);
  {
    Server server;
    ASSERT_TRUE(server.handle_request(eval_sq(7)).get("ok").as_bool());
  }
  obs::logger().configure(obs::LogLevel::kOff, false, nullptr);

  const std::string out = sink.str();
  EXPECT_NE(out.find("\"event\":\"serve.request\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"op\":\"eval\""), std::string::npos);
  EXPECT_NE(out.find("\"ok\":1"), std::string::npos);
  EXPECT_NE(out.find("\"cache\":\"miss\""), std::string::npos);
  EXPECT_NE(out.find("\"request_id\":\""), std::string::npos);
  EXPECT_NE(out.find("\"duration_us\":"), std::string::npos);
}

}  // namespace
}  // namespace proteus::serve
