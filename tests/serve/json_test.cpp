// json_test.cpp — the serving layer's NDJSON value/parser/writer
// (serve/json.hpp). The parser faces arbitrary network input, so the
// tests lean on the same contract as the module loader's: malformed text
// is a structured failure, never a crash or an exception.
#include "serve/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace proteus::serve {
namespace {

Json parse_ok(const std::string& text) {
  std::string error;
  std::optional<Json> v = parse_json(text, &error);
  EXPECT_TRUE(v.has_value()) << text << ": " << error;
  return v.value_or(Json());
}

void expect_rejected(const std::string& text) {
  std::string error;
  std::optional<Json> v = parse_json(text, &error);
  EXPECT_FALSE(v.has_value()) << text << " parsed";
  EXPECT_FALSE(error.empty()) << text << " rejected without a reason";
}

TEST(ServeJson, Scalars) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_TRUE(parse_ok("true").as_bool());
  EXPECT_FALSE(parse_ok("false").as_bool(true));
  EXPECT_EQ(parse_ok("42").as_int(), 42);
  EXPECT_EQ(parse_ok("-7").as_int(), -7);
  EXPECT_TRUE(parse_ok("42").is_int());
  EXPECT_DOUBLE_EQ(parse_ok("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(parse_ok("-1e3").as_double(), -1000.0);
  EXPECT_FALSE(parse_ok("2.5").is_int());
  EXPECT_EQ(parse_ok("\"hi\"").as_string(), "hi");
}

TEST(ServeJson, StringEscapes) {
  EXPECT_EQ(parse_ok(R"("a\"b\\c\/d\n\t\r\b\f")").as_string(),
            "a\"b\\c/d\n\t\r\b\f");
  // \uXXXX decodes to UTF-8; unpaired surrogates become U+FFFD instead of
  // crashing or producing invalid UTF-8.
  EXPECT_EQ(parse_ok(R"("Aé")").as_string(), "A\xc3\xa9");
  EXPECT_EQ(parse_ok(R"("\ud800")").as_string(), "\xef\xbf\xbd");
  expect_rejected(R"("\x41")");
  expect_rejected("\"unterminated");
}

TEST(ServeJson, ArraysAndObjects) {
  Json v = parse_ok(R"({"op":"eval","args":["1","[2,3]"],"n":3})");
  ASSERT_TRUE(v.is_object());
  EXPECT_TRUE(v.has("op"));
  EXPECT_FALSE(v.has("missing"));
  EXPECT_EQ(v.get("op").as_string(), "eval");
  EXPECT_EQ(v.get("n").as_int(), 3);
  ASSERT_EQ(v.get("args").as_array().size(), 2u);
  EXPECT_EQ(v.get("args").as_array()[1].as_string(), "[2,3]");
  // get() on absent keys / non-objects degrades to null, never throws.
  EXPECT_TRUE(v.get("missing").is_null());
  EXPECT_TRUE(Json(7).get("anything").is_null());

  EXPECT_EQ(parse_ok("[]").as_array().size(), 0u);
  EXPECT_EQ(parse_ok("{}").as_object().size(), 0u);
  EXPECT_EQ(parse_ok(" [ 1 , 2 ] ").as_array().size(), 2u);
}

TEST(ServeJson, MalformedInputIsRejectedWithAReason) {
  expect_rejected("");
  expect_rejected("{");
  expect_rejected("[1,");
  expect_rejected("{\"a\":}");
  expect_rejected("{\"a\" 1}");
  expect_rejected("{'a':1}");
  expect_rejected("[1,2,]");
  expect_rejected("nul");
  expect_rejected("1 2");          // trailing garbage
  expect_rejected("{\"a\":1}x");   // trailing garbage
  expect_rejected("+1");
  expect_rejected("01");
}

TEST(ServeJson, DepthLimitHolds) {
  // 1000 nested arrays would overflow an unguarded recursive-descent
  // parser's stack; the depth limit turns it into a clean rejection.
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  expect_rejected(deep);

  std::string shallow(8, '[');
  shallow += "1";
  shallow += std::string(8, ']');
  EXPECT_TRUE(parse_ok(shallow).is_array());
}

TEST(ServeJson, DumpIsSingleLineAndRoundTrips) {
  const std::string text =
      R"({"a":[1,2.5,true,null],"b":"line\nbreak \"q\"","c":{"d":-3}})";
  Json v = parse_ok(text);
  const std::string dumped = v.dump();
  EXPECT_EQ(dumped.find('\n'), std::string::npos) << dumped;
  // parse . dump is the identity on the dumped form (std::map keys keep
  // object order deterministic).
  EXPECT_EQ(parse_ok(dumped).dump(), dumped);
  EXPECT_EQ(dumped, text);
}

}  // namespace
}  // namespace proteus::serve
