// lifecycle_test.cpp — the serve layer's overload-and-lifecycle hardening
// (docs/SERVING.md "Overload & lifecycle"): bounded admission and S001
// shedding, idle/IO deadlines against slow and hostile clients, the
// per-line byte bound, graceful drain, the health op, crash-safe disk
// cache publication, and the chaos sites consumed through the retrying
// client. These tests drive real sockets against a live serve_tcp, so
// they are POSIX-only, like the transport itself.
#include <gtest/gtest.h>

#if !defined(_WIN32)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "rt/fault.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace proteus::serve {
namespace {

constexpr const char* kSource = "fun sq(n: int): int = n * n\n";

Json request(std::initializer_list<std::pair<const std::string, Json>> kv) {
  return Json(Json::Object(kv));
}

/// A raw test client: one blocking TCP connection with a receive timeout,
/// free to misbehave in ways RetryingClient never would.
class RawConn {
 public:
  explicit RawConn(int port, int recv_timeout_ms = 5000) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    timeval tv{};
    tv.tv_sec = recv_timeout_ms / 1000;
    tv.tv_usec =
        static_cast<decltype(tv.tv_usec)>((recv_timeout_ms % 1000) * 1000);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }
  ~RawConn() { close(); }
  RawConn(const RawConn&) = delete;
  RawConn& operator=(const RawConn&) = delete;

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  bool send_raw(const std::string& data) const {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads one reply line (newline stripped); "" on EOF/timeout.
  std::string read_line() {
    while (buffer_.find('\n') == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    const std::size_t nl = buffer_.find('\n');
    std::string line = buffer_.substr(0, nl);
    buffer_.erase(0, nl + 1);
    return line;
  }

  /// True when the peer closed the connection (EOF within the timeout).
  bool read_eof() const {
    char c = 0;
    return ::read(fd_, &c, 1) == 0;
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Parses a reply line and returns error.code ("" when none/ok).
std::string error_code_of(const std::string& line) {
  std::string parse_error;
  std::optional<Json> parsed = parse_json(line, &parse_error);
  if (!parsed.has_value()) return "unparseable: " + parse_error;
  return parsed->get("error").get("code").as_string();
}

/// A live serve_tcp on a free port, torn down with the fixture. Tests
/// read gauges through server().handle_request (thread-safe) to sequence
/// deterministically instead of sleeping.
class LifecycleTest : public ::testing::Test {
 protected:
  void start(ServerOptions options) {
    server_ = std::make_unique<Server>(std::move(options));
    thread_ = std::thread([this] {
      rc_ = server_->serve_tcp("127.0.0.1", 0, announce_);
    });
    while (server_->tcp_port() < 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  /// Joins the transport and returns its exit code.
  int finish() {
    if (thread_.joinable()) thread_.join();
    return rc_;
  }

  void TearDown() override {
    rt::disarm_faults();
    if (server_ != nullptr) server_->request_stop();
    if (thread_.joinable()) thread_.join();
  }

  Server& server() { return *server_; }
  int port() { return server_->tcp_port(); }

  Json health() { return server_->handle_request(request({{"op", "health"}})); }

  /// Spins until the health gauges match (the accept/pop hand-off is
  /// asynchronous); fails the test on timeout.
  void wait_gauges(std::uint64_t queue_depth, std::uint64_t active_conns) {
    for (int i = 0; i < 2000; ++i) {
      Json h = health();
      if (h.get("queue_depth").as_int(-1) ==
              static_cast<std::int64_t>(queue_depth) &&
          h.get("active_conns").as_int(-1) ==
              static_cast<std::int64_t>(active_conns)) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    FAIL() << "gauges never reached queue_depth=" << queue_depth
           << " active_conns=" << active_conns << ": " << health().dump();
  }

  std::unique_ptr<Server> server_;
  std::thread thread_;
  std::ostringstream announce_;
  int rc_ = -1;
};

TEST(ServeHealth, ReportsStatusAndGauges) {
  Server server;
  Json h = server.handle_request(request({{"op", "health"}, {"id", 3}}));
  EXPECT_TRUE(h.get("ok").as_bool());
  EXPECT_EQ(h.get("id").as_int(), 3);
  EXPECT_EQ(h.get("status").as_string(), "ok");
  EXPECT_FALSE(h.get("draining").as_bool(true));
  EXPECT_EQ(h.get("queue_depth").as_int(-1), 0);
  EXPECT_EQ(h.get("cache_entries").as_int(-1), 0);

  server.begin_drain();
  h = server.handle_request(request({{"op", "health"}}));
  EXPECT_EQ(h.get("status").as_string(), "draining");
  EXPECT_TRUE(h.get("draining").as_bool(false));
  server.begin_drain();  // idempotent
  EXPECT_EQ(h.get("status").as_string(), "draining");

  server.request_stop();
  h = server.handle_request(request({{"op", "health"}}));
  EXPECT_EQ(h.get("status").as_string(), "stopping");
}

TEST_F(LifecycleTest, ShedsBeyondMaxQueueWithS001) {
  ServerOptions options;
  options.workers = 1;
  options.max_queue = 1;
  options.retry_after_ms = 77;
  start(options);

  // Pin the single worker with an idle connection, then fill the queue.
  RawConn pin(port());
  ASSERT_TRUE(pin.connected());
  wait_gauges(/*queue_depth=*/0, /*active_conns=*/1);
  RawConn queued(port());
  ASSERT_TRUE(queued.connected());
  wait_gauges(/*queue_depth=*/1, /*active_conns=*/1);

  // The next connection is over capacity: shed with a structured S001
  // busy frame carrying the configured backoff hint, then closed.
  RawConn shed(port());
  ASSERT_TRUE(shed.connected());
  const std::string frame = shed.read_line();
  ASSERT_FALSE(frame.empty());
  std::optional<Json> parsed = parse_json(frame, nullptr);
  ASSERT_TRUE(parsed.has_value()) << frame;
  EXPECT_FALSE(parsed->get("ok").as_bool(true));
  EXPECT_EQ(parsed->get("error").get("code").as_string(), "S001");
  EXPECT_EQ(parsed->get("error").get("kind").as_string(), "overload");
  EXPECT_EQ(parsed->get("error").get("retry_after_ms").as_int(0), 77);
  EXPECT_TRUE(shed.read_eof());

  // The shed is counted; the admitted connections are untouched.
  Json metrics =
      server().handle_request(request({{"op", "metrics"}}));
  EXPECT_EQ(metrics.get("metrics").get("serve.shed_total").as_int(0), 1);

  // Capacity frees as soon as the pins close; the next connection is
  // admitted and served, not shed.
  pin.close();
  queued.close();
  wait_gauges(/*queue_depth=*/0, /*active_conns=*/0);
  RawConn ping(port());
  ASSERT_TRUE(ping.connected());
  ASSERT_TRUE(ping.send_raw("{\"op\":\"ping\"}\n"));
  const std::string reply = ping.read_line();
  EXPECT_NE(reply.find("\"pong\":true"), std::string::npos) << reply;
}

TEST_F(LifecycleTest, IdleTimeoutReclaimsWorkerS002) {
  ServerOptions options;
  options.workers = 1;
  options.idle_timeout_ms = 150;
  start(options);

  RawConn idle(port());
  ASSERT_TRUE(idle.connected());
  const std::string frame = idle.read_line();
  EXPECT_EQ(error_code_of(frame), "S002") << frame;
  EXPECT_TRUE(idle.read_eof());

  // The worker is reclaimed and serves the next connection.
  RawConn next(port());
  ASSERT_TRUE(next.connected());
  ASSERT_TRUE(next.send_raw("{\"op\":\"ping\"}\n"));
  EXPECT_NE(next.read_line().find("\"pong\""), std::string::npos);
}

TEST_F(LifecycleTest, MidRequestStallIsS003) {
  ServerOptions options;
  options.workers = 1;
  options.idle_timeout_ms = 10000;  // idle is patient...
  options.io_timeout_ms = 150;      // ...mid-request is not
  start(options);

  RawConn slow(port());
  ASSERT_TRUE(slow.connected());
  // Half a request, then silence: the I/O deadline must reclaim the
  // worker long before the idle timeout would.
  ASSERT_TRUE(slow.send_raw("{\"op\":\"pi"));
  const std::string frame = slow.read_line();
  EXPECT_EQ(error_code_of(frame), "S003") << frame;
  EXPECT_TRUE(slow.read_eof());
}

TEST_F(LifecycleTest, OversizedLinesAreS004) {
  ServerOptions options;
  options.workers = 1;
  options.max_line_bytes = 1024;
  start(options);

  // A newline-free flood must not grow the buffer without bound.
  {
    RawConn flood(port());
    ASSERT_TRUE(flood.connected());
    ASSERT_TRUE(flood.send_raw(std::string(4096, 'x')));
    const std::string frame = flood.read_line();
    EXPECT_EQ(error_code_of(frame), "S004") << frame;
    EXPECT_TRUE(flood.read_eof());
  }
  // A giant line that DOES arrive with its newline in one chunk is
  // rejected at extraction, not evaluated.
  {
    RawConn giant(port());
    ASSERT_TRUE(giant.connected());
    ASSERT_TRUE(giant.send_raw(std::string(2048, 'y') + "\n"));
    const std::string frame = giant.read_line();
    EXPECT_EQ(error_code_of(frame), "S004") << frame;
    EXPECT_TRUE(giant.read_eof());
  }
}

TEST_F(LifecycleTest, PartialFramesAndPipeliningServe) {
  ServerOptions options;
  options.workers = 1;
  start(options);

  RawConn conn(port());
  ASSERT_TRUE(conn.connected());
  // One request dribbled in three chunks...
  ASSERT_TRUE(conn.send_raw("{\"op\":"));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(conn.send_raw("\"ping\","));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // ...completed in the same chunk as a second, pipelined request.
  ASSERT_TRUE(conn.send_raw("\"id\":1}\n{\"op\":\"ping\",\"id\":2}\n"));
  const std::string first = conn.read_line();
  const std::string second = conn.read_line();
  EXPECT_NE(first.find("\"id\":1"), std::string::npos) << first;
  EXPECT_NE(second.find("\"id\":2"), std::string::npos) << second;
}

TEST_F(LifecycleTest, MidRequestDisconnectReclaimsWorker) {
  ServerOptions options;
  options.workers = 1;
  start(options);

  {
    RawConn rude(port());
    ASSERT_TRUE(rude.connected());
    ASSERT_TRUE(rude.send_raw("{\"op\":\"eval\",\"sour"));
  }  // destructor closes mid-request

  RawConn next(port());
  ASSERT_TRUE(next.connected());
  ASSERT_TRUE(next.send_raw("{\"op\":\"ping\"}\n"));
  EXPECT_NE(next.read_line().find("\"pong\""), std::string::npos);
}

TEST_F(LifecycleTest, DrainServesQueuedThenExitsZero) {
  ServerOptions options;
  options.workers = 1;
  options.drain_ms = 5000;
  start(options);

  // Pin the worker with an idle connection; a queued connection already
  // has a full request buffered in its socket.
  RawConn pin(port());
  ASSERT_TRUE(pin.connected());
  wait_gauges(/*queue_depth=*/0, /*active_conns=*/1);
  RawConn queued(port());
  ASSERT_TRUE(queued.connected());
  ASSERT_TRUE(queued.send_raw("{\"op\":\"ping\",\"id\":9}\n"));
  wait_gauges(/*queue_depth=*/1, /*active_conns=*/1);

  const auto drain_start = std::chrono::steady_clock::now();
  server().begin_drain();

  // The idle pin is retired with S005 after its short drain grace, which
  // frees the worker to serve the queued request before stopping.
  const std::string pin_frame = pin.read_line();
  EXPECT_EQ(error_code_of(pin_frame), "S005") << pin_frame;
  const std::string queued_reply = queued.read_line();
  EXPECT_NE(queued_reply.find("\"pong\":true"), std::string::npos)
      << queued_reply;
  EXPECT_NE(queued_reply.find("\"id\":9"), std::string::npos);

  EXPECT_EQ(finish(), 0);
  const auto took = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - drain_start);
  EXPECT_LT(took.count(), options.drain_ms) << "drain overran its grace";

  // Draining refuses new connections: the listener is gone.
  RawConn refused(port());
  if (refused.connected()) {
    // A connect that races the close still gets nothing served.
    EXPECT_TRUE(refused.read_eof());
  }
}

TEST_F(LifecycleTest, StopRetiresQueuedWithS005) {
  ServerOptions options;
  options.workers = 1;
  start(options);

  RawConn pin(port());
  ASSERT_TRUE(pin.connected());
  wait_gauges(/*queue_depth=*/0, /*active_conns=*/1);
  RawConn queued(port());
  ASSERT_TRUE(queued.connected());
  wait_gauges(/*queue_depth=*/1, /*active_conns=*/1);

  server().request_stop();
  EXPECT_EQ(finish(), 0);
  // Hard stop: both the in-service and the queued connection are retired
  // with a draining frame, never silence.
  EXPECT_EQ(error_code_of(pin.read_line()), "S005");
  EXPECT_EQ(error_code_of(queued.read_line()), "S005");
}

TEST_F(LifecycleTest, RetryingClientAbsorbsInjectedSocketFaults) {
  ServerOptions options;
  options.workers = 2;
  start(options);

  RetryPolicy policy;
  policy.base_backoff_ms = 5;
  policy.max_backoff_ms = 50;
  RetryingClient client("127.0.0.1", port(), policy);

  const Json eval = request({{"op", "eval"},
                             {"source", kSource},
                             {"entry", "sq(6)"}});

  // An injected read-reset (S006), then a write-drop (S007), then a
  // stall (S008): each kills exactly one attempt; the client's backoff
  // absorbs all of them with zero wrong answers.
  const char* specs[] = {"sock-read:1", "sock-write:1", "sock-stall:1"};
  for (const char* spec : specs) {
    rt::arm_faults(rt::parse_fault_plan(spec));
    std::string error;
    std::optional<Json> reply = client.call(eval, &error);
    ASSERT_TRUE(reply.has_value()) << spec << ": " << error;
    EXPECT_TRUE(reply->get("ok").as_bool(false)) << reply->dump();
    EXPECT_EQ(reply->get("result").as_string(), "36") << spec;
    EXPECT_FALSE(rt::faults_armed()) << spec << " never fired";
  }
  EXPECT_GE(client.stats().io_retries, 3u);

  // The injected faults were counted under their serve-trap codes.
  Json metrics = server().handle_request(request({{"op", "metrics"}}));
  const Json& m = metrics.get("metrics");
  EXPECT_EQ(m.get("serve.trap.S006").as_int(0), 1);
  EXPECT_EQ(m.get("serve.trap.S007").as_int(0), 1);
  EXPECT_EQ(m.get("serve.trap.S008").as_int(0), 1);
}

TEST_F(LifecycleTest, RetryingClientHonorsBusyFrames) {
  ServerOptions options;
  options.workers = 1;
  options.max_queue = 1;
  options.retry_after_ms = 20;
  start(options);

  // Saturate: worker pinned + queue full, so the client's first attempts
  // are shed with S001.
  auto pin = std::make_unique<RawConn>(port());
  ASSERT_TRUE(pin->connected());
  wait_gauges(/*queue_depth=*/0, /*active_conns=*/1);
  auto queued = std::make_unique<RawConn>(port());
  ASSERT_TRUE(queued->connected());
  wait_gauges(/*queue_depth=*/1, /*active_conns=*/1);

  // Free the capacity while the client is mid-backoff.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    pin->close();
    queued->close();
  });

  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.base_backoff_ms = 5;
  RetryingClient client("127.0.0.1", port(), policy);
  std::string error;
  std::optional<Json> reply =
      client.call(request({{"op", "ping"}}), &error);
  releaser.join();
  ASSERT_TRUE(reply.has_value()) << error;
  EXPECT_TRUE(reply->get("pong").as_bool(false)) << reply->dump();
  EXPECT_GE(client.stats().busy_retries, 1u);
}

TEST(ServeCache, DiskInsertIsAtomicAndLeavesNoTmp) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("proteus-lifecycle-cache-" +
        std::to_string(static_cast<std::uint64_t>(::getpid()))))
          .string();
  std::filesystem::remove_all(dir);
  {
    ServerOptions options;
    options.cache_dir = dir;
    Server server(options);
    Json reply = server.handle_request(
        request({{"op", "eval"}, {"source", kSource}, {"entry", "sq(5)"}}));
    ASSERT_TRUE(reply.get("ok").as_bool(false)) << reply.dump();
    EXPECT_EQ(reply.get("result").as_string(), "25");
  }
  // Exactly one published image; the .tmp sibling was renamed away, so a
  // crash mid-write could never have been observed as a torn .pvcm.
  std::size_t images = 0;
  std::size_t temporaries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp.") != std::string::npos) {
      ++temporaries;
    } else if (entry.path().extension() == ".pvcm") {
      ++images;
    }
  }
  EXPECT_EQ(images, 1u);
  EXPECT_EQ(temporaries, 0u);

  // And a fresh process (a fresh Server) rehydrates it.
  ServerOptions options;
  options.cache_dir = dir;
  Server warm(options);
  Json reply = warm.handle_request(
      request({{"op", "eval"}, {"source", kSource}, {"entry", "sq(5)"}}));
  EXPECT_TRUE(reply.get("ok").as_bool(false)) << reply.dump();
  EXPECT_EQ(reply.get("result").as_string(), "25");
  EXPECT_TRUE(reply.get("cached").as_bool(false));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace proteus::serve

#endif  // !defined(_WIN32)
