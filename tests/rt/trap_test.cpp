// Unit tests for the trap taxonomy: stable codes, reasons, retryability,
// and the formatted what() message.
#include <gtest/gtest.h>

#include <string>

#include "rt/rt.hpp"

namespace proteus::rt {
namespace {

TEST(Trap, CodesAreStable) {
  EXPECT_STREQ(trap_code(Trap::kMemory), "T001");
  EXPECT_STREQ(trap_code(Trap::kSteps), "T002");
  EXPECT_STREQ(trap_code(Trap::kDepth), "T003");
  EXPECT_STREQ(trap_code(Trap::kDeadline), "T004");
  EXPECT_STREQ(trap_code(Trap::kCancelled), "T005");
  EXPECT_STREQ(trap_code(Trap::kInjectAlloc), "T006");
  EXPECT_STREQ(trap_code(Trap::kInjectKernel), "T007");
  EXPECT_STREQ(trap_code(Trap::kInjectOpt), "T008");
}

TEST(Trap, EveryCodeHasAReason) {
  for (int i = 1; i <= 8; ++i) {
    const Trap t = static_cast<Trap>(i);
    EXPECT_NE(std::string(trap_reason(t)), "");
  }
}

TEST(Trap, OnlyInjectedFaultsAreRetryable) {
  // Budget traps are deterministic — retrying the same work would trip
  // again — while injected faults are one-shot, so a retry runs clean.
  EXPECT_FALSE(retryable(Trap::kMemory));
  EXPECT_FALSE(retryable(Trap::kSteps));
  EXPECT_FALSE(retryable(Trap::kDepth));
  EXPECT_FALSE(retryable(Trap::kDeadline));
  EXPECT_FALSE(retryable(Trap::kCancelled));
  EXPECT_TRUE(retryable(Trap::kInjectAlloc));
  EXPECT_TRUE(retryable(Trap::kInjectKernel));
  EXPECT_TRUE(retryable(Trap::kInjectOpt));
}

TEST(Trap, WhatCarriesCodeSiteAndCounters) {
  RuntimeTrap t(Trap::kMemory, "resident bytes over budget", "vl.alloc",
                /*bytes=*/4096, /*steps=*/17);
  const std::string what = t.what();
  EXPECT_NE(what.find("[T001]"), std::string::npos) << what;
  EXPECT_NE(what.find("vl.alloc"), std::string::npos) << what;
  EXPECT_NE(what.find("4096"), std::string::npos) << what;
  EXPECT_EQ(t.trap(), Trap::kMemory);
  EXPECT_STREQ(t.code(), "T001");
  EXPECT_EQ(t.site(), "vl.alloc");
  EXPECT_EQ(t.bytes_at_trip(), 4096u);
  EXPECT_EQ(t.steps_at_trip(), 17u);
  EXPECT_EQ(t.pc(), -1);
}

TEST(Trap, VmTrapsCarryThePc) {
  RuntimeTrap t(Trap::kCancelled, "cancelled", "vm", 0, 0, /*pc=*/42);
  EXPECT_EQ(t.pc(), 42);
  EXPECT_NE(std::string(t.what()).find("pc=42"), std::string::npos);
}

TEST(Trap, IsAProteusErrorButNotAnEvalError) {
  // Engine-degradation code catches RuntimeTrap specifically; generic
  // error reporting still catches it as proteus::Error.
  RuntimeTrap t(Trap::kSteps, "steps", "vm", 0, 9);
  const Error& as_error = t;
  EXPECT_NE(std::string(as_error.what()).find("T002"), std::string::npos);
  EXPECT_EQ(dynamic_cast<const EvalError*>(&as_error), nullptr);
}

}  // namespace
}  // namespace proteus::rt
