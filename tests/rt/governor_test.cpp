// Unit tests for the execution governor: byte/step accounting, budget
// enforcement, cooperative cancellation, scope save/restore, and the
// structural-nesting guard.
//
// Each test installs its own GovernorScope so the process-global governor
// state is always restored — these tests run in the same binary as
// everything else.
#include <gtest/gtest.h>

#include <string>

#include "rt/rt.hpp"
#include "vl/vec.hpp"

namespace proteus::rt {
namespace {

TEST(Governor, DefaultLimitsWithNoBudget) {
  EXPECT_EQ(depth_limit(), kDefaultMaxCallDepth);
  EXPECT_EQ(nesting_limit(), kDefaultMaxNesting);
  EXPECT_FALSE(ExecBudget{}.limits_anything());
}

TEST(Governor, BudgetTightensDepthAndNestingLimits) {
  ExecBudget b;
  b.max_depth = 100;
  GovernorScope scope(b);
  EXPECT_EQ(depth_limit(), 100);
  EXPECT_EQ(nesting_limit(), 100);
  // A budget looser than the structural default only affects call depth.
  ExecBudget loose;
  loose.max_depth = 50000;
  GovernorScope inner(loose);
  EXPECT_EQ(depth_limit(), 50000);
  EXPECT_EQ(nesting_limit(), kDefaultMaxNesting);
}

TEST(Governor, VecChargesAndReleasesResidentBytes) {
  const std::uint64_t before = resident_bytes();
  {
    vl::Vec<std::int64_t> v(1024, std::int64_t{7});
    EXPECT_GE(resident_bytes(), before + 1024 * sizeof(std::int64_t));
    vl::Vec<std::int64_t> copy = v;  // copies charge too
    EXPECT_GE(resident_bytes(), before + 2 * 1024 * sizeof(std::int64_t));
    vl::Vec<std::int64_t> moved = std::move(copy);  // moves transfer
    EXPECT_GE(resident_bytes(), before + 2 * 1024 * sizeof(std::int64_t));
  }
  EXPECT_EQ(resident_bytes(), before);
}

TEST(Governor, MemoryBudgetTrapsAsT001) {
  const std::uint64_t before = resident_bytes();
  ExecBudget b;
  b.max_resident_bytes = before + 1024;
  GovernorScope scope(b);
  try {
    vl::Vec<std::int64_t> big(100000, std::int64_t{1});
    FAIL() << "expected T001";
  } catch (const RuntimeTrap& e) {
    EXPECT_EQ(e.trap(), Trap::kMemory);
    EXPECT_EQ(e.site(), "vl.alloc");
  }
  // The failed allocation must have been rolled back in full.
  EXPECT_EQ(resident_bytes(), before);
  // Small allocations under the cap still succeed afterwards.
  vl::Vec<std::int64_t> small(8, std::int64_t{1});
  EXPECT_EQ(small.size(), 8);
}

TEST(Governor, StepBudgetTrapsAsT002) {
  ExecBudget b;
  b.max_steps = 10;
  GovernorScope scope(b);
  EXPECT_EQ(steps(), 0u);
  charge_work(8);
  EXPECT_EQ(steps(), 8u);
  try {
    charge_work(8);
    FAIL() << "expected T002";
  } catch (const RuntimeTrap& e) {
    EXPECT_EQ(e.trap(), Trap::kSteps);
    EXPECT_GE(e.steps_at_trip(), 10u);
  }
}

TEST(Governor, CancellationTrapsAtNextPollAsT005) {
  GovernorScope scope(ExecBudget{});
  EXPECT_FALSE(cancel_requested());
  poll("test");  // no-op while not cancelled
  request_cancel();
  EXPECT_TRUE(cancel_requested());
  try {
    poll("test");
    FAIL() << "expected T005";
  } catch (const RuntimeTrap& e) {
    EXPECT_EQ(e.trap(), Trap::kCancelled);
    EXPECT_EQ(e.site(), "test");
  }
  clear_cancel();
  EXPECT_FALSE(cancel_requested());
  poll("test");
}

TEST(Governor, DeadlineTrapsAsT004) {
  ExecBudget b;
  b.deadline_ms = 1;
  GovernorScope scope(b);
  // Poll until the 1ms deadline passes; the deadline check is strided,
  // so spin on poll() rather than asserting the first call traps.
  bool trapped = false;
  for (int i = 0; i < 100000000 && !trapped; ++i) {
    try {
      poll("test");
    } catch (const RuntimeTrap& e) {
      EXPECT_EQ(e.trap(), Trap::kDeadline);
      trapped = true;
    }
  }
  EXPECT_TRUE(trapped);
}

TEST(Governor, ScopeRestoresPreviousBudget) {
  ExecBudget outer;
  outer.max_steps = 1000;
  GovernorScope outer_scope(outer);
  charge_work(5);
  EXPECT_EQ(steps(), 5u);
  {
    ExecBudget inner;
    inner.max_steps = 50;
    GovernorScope inner_scope(inner);
    EXPECT_EQ(steps(), 0u);  // fresh step counter per scope
    charge_work(40);
    EXPECT_EQ(steps(), 40u);
  }
  EXPECT_EQ(steps(), 5u);  // outer counter restored
  charge_work(500);        // would have tripped the inner 50-step budget
}

TEST(Governor, NestingGuardTrapsBeyondTheLimit) {
  ExecBudget b;
  b.max_depth = 4;
  GovernorScope scope(b);
  int depth = 0;
  NestingGuard g1(&depth, "test");
  NestingGuard g2(&depth, "test");
  NestingGuard g3(&depth, "test");
  NestingGuard g4(&depth, "test");
  EXPECT_EQ(depth, 4);
  try {
    NestingGuard g5(&depth, "test");
    FAIL() << "expected T003";
  } catch (const RuntimeTrap& e) {
    EXPECT_EQ(e.trap(), Trap::kDepth);
  }
  EXPECT_EQ(depth, 4);  // the failed guard rolled its increment back
}

TEST(Governor, RaiseCapturesCounters) {
  ExecBudget b;
  b.max_steps = 1000;  // step accounting is active only under a budget
  GovernorScope scope(b);
  charge_work(3);
  try {
    raise(Trap::kCancelled, "unit-test raise", "test", 7);
    FAIL();
  } catch (const RuntimeTrap& e) {
    EXPECT_EQ(e.trap(), Trap::kCancelled);
    EXPECT_EQ(e.steps_at_trip(), 3u);
    EXPECT_EQ(e.pc(), 7);
  }
}

}  // namespace
}  // namespace proteus::rt
