// Unit tests for deterministic fault injection: spec parsing, arming,
// one-shot countdown semantics, and the optimizer injection site.
#include <gtest/gtest.h>

#include "rt/rt.hpp"
#include "vl/vec.hpp"

namespace proteus::rt {
namespace {

/// Every test disarms on exit so a failure cannot leak a live countdown
/// into the rest of the binary.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { disarm_faults(); }
};

TEST_F(FaultTest, ParseFaultPlan) {
  const FaultPlan p = parse_fault_plan("alloc:3,kernel:7,opt:1");
  EXPECT_EQ(p.alloc, 3u);
  EXPECT_EQ(p.kernel, 7u);
  EXPECT_EQ(p.opt, 1u);
  EXPECT_TRUE(p.armed());

  const FaultPlan partial = parse_fault_plan("kernel:2");
  EXPECT_EQ(partial.alloc, 0u);
  EXPECT_EQ(partial.kernel, 2u);

  EXPECT_FALSE(parse_fault_plan("").armed());
}

TEST_F(FaultTest, ParseSockSites) {
  const FaultPlan p =
      parse_fault_plan("sock-read:4,sock-write:2,sock-stall:1");
  EXPECT_EQ(p.sock_read, 4u);
  EXPECT_EQ(p.sock_write, 2u);
  EXPECT_EQ(p.sock_stall, 1u);
  EXPECT_EQ(p.alloc, 0u);
  EXPECT_TRUE(p.armed());

  // Governor and socket sites compose in one spec.
  const FaultPlan mixed = parse_fault_plan("alloc:1,sock-read:3");
  EXPECT_EQ(mixed.alloc, 1u);
  EXPECT_EQ(mixed.sock_read, 3u);
}

TEST_F(FaultTest, SockSitesAreOneShotCountdowns) {
  FaultPlan p;
  p.sock_read = 2;
  p.sock_write = 1;
  arm_faults(p);
  EXPECT_TRUE(faults_armed());

  // sock-read fires on the 2nd guarded read, then disarms itself.
  EXPECT_FALSE(detail::fire_sock_read());
  EXPECT_TRUE(detail::fire_sock_read());
  EXPECT_FALSE(detail::fire_sock_read());
  EXPECT_EQ(pending_faults().sock_read, 0u);

  // sock-write is independent and also one-shot.
  EXPECT_TRUE(detail::fire_sock_write());
  EXPECT_FALSE(detail::fire_sock_write());
  EXPECT_FALSE(faults_armed());

  // A never-armed site never fires.
  EXPECT_FALSE(detail::fire_sock_stall());
}

TEST_F(FaultTest, ParseRejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_fault_plan("bogus:1"), Error);
  EXPECT_THROW((void)parse_fault_plan("alloc"), Error);
  EXPECT_THROW((void)parse_fault_plan("alloc:x"), Error);
  EXPECT_THROW((void)parse_fault_plan("alloc:1,,kernel:2"), Error);
}

TEST_F(FaultTest, ArmAndDisarm) {
  EXPECT_FALSE(faults_armed());
  FaultPlan p;
  p.alloc = 5;
  arm_faults(p);
  EXPECT_TRUE(faults_armed());
  EXPECT_EQ(pending_faults().alloc, 5u);
  disarm_faults();
  EXPECT_FALSE(faults_armed());
  EXPECT_EQ(pending_faults().alloc, 0u);
}

TEST_F(FaultTest, AllocFaultFiresOnTheNthChargeThenDisarms) {
  FaultPlan p;
  p.alloc = 3;
  arm_faults(p);
  vl::Vec<std::int64_t> a(16, std::int64_t{1});  // 1st charge
  vl::Vec<std::int64_t> b(16, std::int64_t{2});  // 2nd charge
  EXPECT_EQ(pending_faults().alloc, 1u);
  try {
    vl::Vec<std::int64_t> c(16, std::int64_t{3});  // 3rd charge: fires
    FAIL() << "expected T006";
  } catch (const RuntimeTrap& e) {
    EXPECT_EQ(e.trap(), Trap::kInjectAlloc);
    EXPECT_EQ(e.site(), "vl.alloc");
  }
  // One-shot: the countdown drained, so the retry (and everything after
  // it) allocates clean.
  EXPECT_EQ(pending_faults().alloc, 0u);
  EXPECT_FALSE(faults_armed());
  vl::Vec<std::int64_t> retry(16, std::int64_t{3});
  EXPECT_EQ(retry.size(), 16);
}

TEST_F(FaultTest, KernelFaultFiresOnWorkCharge) {
  FaultPlan p;
  p.kernel = 1;
  arm_faults(p);
  try {
    charge_work(100);
    FAIL() << "expected T007";
  } catch (const RuntimeTrap& e) {
    EXPECT_EQ(e.trap(), Trap::kInjectKernel);
    EXPECT_EQ(e.site(), "vl.kernel");
  }
  EXPECT_FALSE(faults_armed());
  charge_work(100);  // clean after the one-shot fired
}

TEST_F(FaultTest, OptFaultFiresInMaybeFailOpt) {
  FaultPlan p;
  p.opt = 1;
  arm_faults(p);
  try {
    maybe_fail_opt();
    FAIL() << "expected T008";
  } catch (const RuntimeTrap& e) {
    EXPECT_EQ(e.trap(), Trap::kInjectOpt);
  }
  maybe_fail_opt();  // disarmed now: no throw
}

TEST_F(FaultTest, UnarmedSitesNeverFire) {
  FaultPlan p;
  p.opt = 1;  // only the optimizer site is armed
  arm_faults(p);
  vl::Vec<std::int64_t> a(64, std::int64_t{1});
  charge_work(64);
  EXPECT_EQ(pending_faults().opt, 1u);
}

}  // namespace
}  // namespace proteus::rt
