// Property sweep: every vl kernel family produces identical results on
// the Serial and OpenMP backends (the vector model is deterministic; the
// backend is a pure performance policy).
#include <gtest/gtest.h>

#include "seq/build.hpp"
#include "vl/vl.hpp"

namespace proteus::vl {
namespace {

struct ParityCase {
  std::uint64_t seed;
  Size n;
};

class BackendParity : public ::testing::TestWithParam<ParityCase> {
 protected:
  void SetUp() override {
    if (!openmp_available()) GTEST_SKIP();
  }

  template <typename F>
  void expect_parity(F&& run) {
    decltype(run()) serial;
    {
      BackendGuard g(Backend::kSerial);
      serial = run();
    }
    BackendGuard g(Backend::kOpenMP);
    EXPECT_EQ(serial, run());
  }
};

TEST_P(BackendParity, Elementwise) {
  const auto& p = GetParam();
  IntVec a = seq::random_ints(p.seed, p.n, -999, 999);
  IntVec b = seq::random_ints(p.seed + 1, p.n, 1, 999);
  expect_parity([&] { return add(a, b); });
  expect_parity([&] { return mul(a, b); });
  expect_parity([&] { return div(a, b); });
  expect_parity([&] { return lt(a, b); });
  expect_parity([&] { return select(ge(a, b), a, b); });
}

TEST_P(BackendParity, ScansAndReductions) {
  const auto& p = GetParam();
  IntVec a = seq::random_ints(p.seed + 2, p.n, -999, 999);
  expect_parity([&] { return scan_add(a); });
  expect_parity([&] { return scan_max_inclusive(a); });
  expect_parity([&] { return IntVec{reduce_add(a)}; });
  expect_parity([&] { return IntVec{reduce_min(a)}; });
}

TEST_P(BackendParity, FlatPairScanOnSkewedSegments) {
  // The OpenMP segmented scan uses the flag/value-pair algorithm over the
  // flat vector; it must agree with the serial per-segment path on every
  // segment profile, including one giant segment and many empty ones.
  const auto& p = GetParam();
  IntVec vals = seq::random_ints(p.seed + 20, p.n, -99, 99);
  std::vector<IntVec> profiles;
  profiles.push_back(IntVec{p.n});                      // one giant segment
  {
    IntVec lens{0, 0, p.n - 1, 0, 1, 0};                // empties + giant
    profiles.push_back(lens);
  }
  {
    IntVec lens;                                        // alternating 0/1/2
    Size covered = 0;
    Int k = 0;
    while (covered < p.n) {
      Int len = k % 3;
      if (covered + len > p.n) len = p.n - covered;
      lens.push_back(len);
      covered += len;
      ++k;
    }
    profiles.push_back(lens);
  }
  for (const IntVec& lens : profiles) {
    expect_parity([&] { return seg_scan_add(vals, lens); });
    expect_parity([&] { return seg_scan_add_inclusive(vals, lens); });
    expect_parity([&] { return seg_scan_max_inclusive(vals, lens); });
    expect_parity([&] { return seg_scan_min(vals, lens); });
  }
}

TEST_P(BackendParity, SegmentedFamily) {
  const auto& p = GetParam();
  IntVec lens = seq::random_ints(p.seed + 3, p.n / 4 + 1, 0, 7);
  IntVec vals = seq::random_ints(p.seed + 4, lengths_total(lens), -99, 99);
  expect_parity([&] { return seg_scan_add_inclusive(vals, lens); });
  expect_parity([&] { return seg_reduce_add(vals, lens); });
  expect_parity([&] { return seg_iota1(lens); });
  expect_parity([&] { return segment_ids(lens); });
  expect_parity([&] { return segment_ranks(lens); });
  IntVec small = seq::random_ints(p.seed + 5, lens.size(), -9, 9);
  expect_parity([&] { return seg_dist(small, lens); });
}

TEST_P(BackendParity, MovementFamily) {
  const auto& p = GetParam();
  IntVec a = seq::random_ints(p.seed + 6, p.n, -999, 999);
  IntVec idx = seq::random_ints(p.seed + 7, p.n, 0, p.n - 1);
  BoolVec m = seq::random_mask(p.seed + 8, p.n, 1, 3);
  expect_parity([&] { return gather(a, idx); });
  expect_parity([&] { return pack(a, m); });
  expect_parity([&] { return pack_indices(m); });
  expect_parity([&] { return reverse(a); });
  expect_parity([&] { return rotate(a, 13); });
  Size trues = count(m);
  IntVec t = seq::random_ints(p.seed + 9, trues, -9, 9);
  IntVec f = seq::random_ints(p.seed + 10, p.n - trues, -9, 9);
  expect_parity([&] { return combine(m, t, f); });
}

INSTANTIATE_TEST_SUITE_P(Sizes, BackendParity,
                         ::testing::Values(ParityCase{100, 64},
                                           ParityCase{101, 4096},
                                           ParityCase{102, 4097},
                                           ParityCase{103, 65536}));

TEST(Sqrt, Elementwise) {
  RealVec v{0.0, 1.0, 4.0, 2.25};
  EXPECT_EQ(sqrt(v), (RealVec{0.0, 1.0, 2.0, 1.5}));
}

}  // namespace
}  // namespace proteus::vl
