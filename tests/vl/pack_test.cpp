// Unit and property tests for pack (restrict) and combine — the data
// routing of flattened conditionals (rule R2d).
#include <gtest/gtest.h>

#include "seq/build.hpp"
#include "vl/vl.hpp"

namespace proteus::vl {
namespace {

TEST(Pack, Basic) {
  EXPECT_EQ(pack(IntVec{1, 2, 3, 4}, BoolVec{1, 0, 0, 1}), (IntVec{1, 4}));
}

TEST(Pack, AllAndNone) {
  EXPECT_EQ(pack(IntVec{1, 2}, BoolVec{1, 1}), (IntVec{1, 2}));
  EXPECT_EQ(pack(IntVec{1, 2}, BoolVec{0, 0}), IntVec{});
  EXPECT_EQ(pack(IntVec{}, BoolVec{}), IntVec{});
}

TEST(Pack, MismatchThrows) {
  EXPECT_THROW((void)pack(IntVec{1}, BoolVec{1, 0}), VectorError);
}

TEST(Pack, Indices) {
  EXPECT_EQ(pack_indices(BoolVec{0, 1, 1, 0, 1}), (IntVec{1, 2, 4}));
  EXPECT_EQ(pack_indices(BoolVec{}), IntVec{});
}

TEST(Combine, Basic) {
  EXPECT_EQ(combine(BoolVec{1, 0, 0, 1, 0}, IntVec{10, 20},
                    IntVec{1, 2, 3}),
            (IntVec{10, 1, 2, 20, 3}));
}

TEST(Combine, SizeRulesEnforced) {
  EXPECT_THROW((void)combine(BoolVec{1, 0}, IntVec{1, 2}, IntVec{3}), VectorError);
  EXPECT_THROW((void)combine(BoolVec{1, 1}, IntVec{1}, IntVec{2}), VectorError);
}

TEST(SegPackLengths, SurvivorCounts) {
  // segments [a,b][c][d,e,f] with mask 1,0 | 1 | 0,0,1
  EXPECT_EQ(seg_pack_lengths(IntVec{2, 1, 3}, BoolVec{1, 0, 1, 0, 0, 1}),
            (IntVec{1, 1, 1}));
}

TEST(Concat, Basic) {
  EXPECT_EQ(concat(IntVec{1, 2}, IntVec{3}), (IntVec{1, 2, 3}));
  EXPECT_EQ(concat(IntVec{}, IntVec{}), IntVec{});
}

/// The paper's defining identities:
///   restrict(combine(M,V,U), M) == V
///   restrict(combine(M,V,U), not M) == U
/// and conversely combine(M, restrict(R,M), restrict(R,not M)) == R.
class PackCombineLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PackCombineLaws, CombineThenRestrict) {
  const std::uint64_t seed = GetParam();
  BoolVec m = seq::random_mask(seed, 500, 1, 3);
  Size trues = count(m);
  IntVec v = seq::random_ints(seed + 1, trues, -99, 99);
  IntVec u = seq::random_ints(seed + 2, m.size() - trues, -99, 99);
  IntVec r = combine(m, v, u);
  EXPECT_EQ(pack(r, m), v);
  EXPECT_EQ(pack(r, logical_not(m)), u);
}

TEST_P(PackCombineLaws, RestrictThenCombine) {
  const std::uint64_t seed = GetParam();
  BoolVec m = seq::random_mask(seed + 10, 321, 2, 5);
  IntVec r = seq::random_ints(seed + 11, 321, -99, 99);
  EXPECT_EQ(combine(m, pack(r, m), pack(r, logical_not(m))), r);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackCombineLaws,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6, 7,
                                                          8));

}  // namespace
}  // namespace proteus::vl
