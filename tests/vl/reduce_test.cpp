// Unit and property tests for reductions and segmented reductions.
#include <gtest/gtest.h>

#include "seq/build.hpp"
#include "vl/vl.hpp"

namespace proteus::vl {
namespace {

TEST(Reduce, Add) {
  EXPECT_EQ(reduce_add(IntVec{1, 2, 3}), 6);
  EXPECT_EQ(reduce_add(IntVec{}), 0);
  EXPECT_EQ(reduce_add(RealVec{0.5, 0.25}), 0.75);
}

TEST(Reduce, MaxMin) {
  EXPECT_EQ(reduce_max(IntVec{3, 9, 2}), 9);
  EXPECT_EQ(reduce_min(IntVec{3, 9, 2}), 2);
}

TEST(Reduce, BoolReductions) {
  EXPECT_EQ(reduce_or(BoolVec{0, 0, 1}), 1);
  EXPECT_EQ(reduce_or(BoolVec{0, 0}), 0);
  EXPECT_EQ(reduce_and(BoolVec{1, 1}), 1);
  EXPECT_EQ(reduce_and(BoolVec{1, 0}), 0);
  // identities on the empty vector
  EXPECT_EQ(reduce_or(BoolVec{}), 0);
  EXPECT_EQ(reduce_and(BoolVec{}), 1);
}

TEST(Reduce, AnyAllCount) {
  EXPECT_TRUE(any(BoolVec{0, 1}));
  EXPECT_FALSE(any(BoolVec{0, 0}));
  EXPECT_TRUE(all(BoolVec{1, 1}));
  EXPECT_FALSE(all(BoolVec{1, 0}));
  EXPECT_EQ(count(BoolVec{1, 0, 1, 1}), 3);
  EXPECT_EQ(count(BoolVec{}), 0);
}

TEST(SegReduce, Add) {
  EXPECT_EQ(seg_reduce_add(IntVec{1, 2, 3, 4, 5}, IntVec{2, 0, 3}),
            (IntVec{3, 0, 12}));
}

TEST(SegReduce, MaxOnEmptySegmentYieldsIdentity) {
  IntVec result = seg_reduce_max(IntVec{7}, IntVec{0, 1});
  EXPECT_EQ(result[1], 7);
  EXPECT_EQ(result[0], std::numeric_limits<Int>::lowest());
}

TEST(SegReduce, BoolSegments) {
  EXPECT_EQ(seg_reduce_or(BoolVec{0, 1, 0, 0}, IntVec{2, 2}), (BoolVec{1, 0}));
  EXPECT_EQ(seg_reduce_and(BoolVec{1, 1, 1, 0}, IntVec{2, 2}),
            (BoolVec{1, 0}));
}

TEST(SegReduce, DescriptorMismatchThrows) {
  EXPECT_THROW((void)seg_reduce_add(IntVec{1, 2, 3}, IntVec{2, 2}), VectorError);
}

struct RedCase {
  std::uint64_t seed;
  Size segments;
  Size max_len;
  Backend backend;
};

class SegReduceProperty : public ::testing::TestWithParam<RedCase> {};

TEST_P(SegReduceProperty, MatchesPerSegmentReduce) {
  const auto& p = GetParam();
  if (p.backend == Backend::kOpenMP && !openmp_available()) GTEST_SKIP();
  BackendGuard guard(p.backend);

  IntVec lens = seq::random_ints(p.seed, p.segments, 0, p.max_len);
  IntVec values = seq::random_ints(p.seed + 7, lengths_total(lens), -99, 99);

  IntVec sums = seg_reduce_add(values, lens);
  ASSERT_EQ(sums.size(), lens.size());
  Size pos = 0;
  for (Size s = 0; s < lens.size(); ++s) {
    Int acc = 0;
    for (Int k = 0; k < lens[s]; ++k) acc += values[pos++];
    EXPECT_EQ(sums[s], acc) << "segment " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SegReduceProperty,
    ::testing::Values(RedCase{10, 1, 4, Backend::kSerial},
                      RedCase{11, 50, 9, Backend::kSerial},
                      RedCase{12, 2000, 10, Backend::kSerial},
                      RedCase{13, 2000, 10, Backend::kOpenMP},
                      RedCase{14, 1, 100000, Backend::kOpenMP}));

/// Property: reduce == inclusive scan's last element.
class ReduceScanAgreement : public ::testing::TestWithParam<Size> {};

TEST_P(ReduceScanAgreement, ReduceIsScanLast) {
  const Size n = GetParam();
  IntVec v = seq::random_ints(42 + static_cast<std::uint64_t>(n), n, -10, 10);
  if (n == 0) {
    EXPECT_EQ(reduce_add(v), 0);
    return;
  }
  EXPECT_EQ(reduce_add(v), scan_add_inclusive(v)[n - 1]);
  EXPECT_EQ(reduce_max(v), scan_max_inclusive(v)[n - 1]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ReduceScanAgreement,
                         ::testing::Values<Size>(0, 1, 3, 100, 9999));

}  // namespace
}  // namespace proteus::vl
