// Unit tests for segment-descriptor encodings and their conversions.
#include <gtest/gtest.h>

#include "vl/vl.hpp"

namespace proteus::vl {
namespace {

TEST(SegDesc, LengthsToOffsets) {
  EXPECT_EQ(lengths_to_offsets(IntVec{2, 0, 3}), (IntVec{0, 2, 2}));
  EXPECT_EQ(lengths_to_offsets(IntVec{}), IntVec{});
}

TEST(SegDesc, LengthsTotal) {
  EXPECT_EQ(lengths_total(IntVec{2, 0, 3}), 5);
  EXPECT_EQ(lengths_total(IntVec{}), 0);
  EXPECT_THROW((void)lengths_total(IntVec{1, -1}), VectorError);
}

TEST(SegDesc, OffsetsToLengthsRoundTrip) {
  IntVec lens{4, 0, 1, 7, 0};
  EXPECT_EQ(offsets_to_lengths(lengths_to_offsets(lens), lengths_total(lens)),
            lens);
}

TEST(SegDesc, OffsetsNotMonotoneThrows) {
  EXPECT_THROW((void)offsets_to_lengths(IntVec{0, 5, 3}, 10), VectorError);
}

TEST(SegDesc, LengthsToFlags) {
  EXPECT_EQ(lengths_to_flags(IntVec{2, 3}, 5), (BoolVec{1, 0, 1, 0, 0}));
}

TEST(SegDesc, ZeroLengthSegmentHasNoFlagEncoding) {
  // This is exactly why the representation of the paper stores lengths.
  EXPECT_THROW((void)lengths_to_flags(IntVec{2, 0, 1}, 3), VectorError);
}

TEST(SegDesc, FlagsToLengths) {
  EXPECT_EQ(flags_to_lengths(BoolVec{1, 0, 1, 0, 0}), (IntVec{2, 3}));
  EXPECT_EQ(flags_to_lengths(BoolVec{}), IntVec{});
  EXPECT_THROW((void)flags_to_lengths(BoolVec{0, 1}), VectorError);
}

TEST(SegDesc, FlagsRoundTrip) {
  IntVec lens{1, 4, 2, 1};
  EXPECT_EQ(flags_to_lengths(lengths_to_flags(lens, 8)), lens);
}

TEST(SegDesc, SegmentIds) {
  EXPECT_EQ(segment_ids(IntVec{2, 0, 3}), (IntVec{0, 0, 2, 2, 2}));
  EXPECT_EQ(segment_ids(IntVec{}), IntVec{});
}

TEST(SegDesc, SegmentRanks) {
  EXPECT_EQ(segment_ranks(IntVec{2, 0, 3}), (IntVec{1, 2, 1, 2, 3}));
}

TEST(SegDesc, RequireDescriptor) {
  EXPECT_NO_THROW(require_descriptor(IntVec{1, 2}, 3, "test"));
  EXPECT_THROW((void)require_descriptor(IntVec{1, 2}, 4, "test"), VectorError);
}

}  // namespace
}  // namespace proteus::vl
