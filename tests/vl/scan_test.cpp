// Unit and property tests for scans and segmented scans.
#include <gtest/gtest.h>

#include "seq/build.hpp"
#include "vl/vl.hpp"

namespace proteus::vl {
namespace {

TEST(Scan, ExclusiveAdd) {
  EXPECT_EQ(scan_add(IntVec{1, 2, 3, 4}), (IntVec{0, 1, 3, 6}));
}

TEST(Scan, InclusiveAdd) {
  EXPECT_EQ(scan_add_inclusive(IntVec{1, 2, 3, 4}), (IntVec{1, 3, 6, 10}));
}

TEST(Scan, Empty) {
  EXPECT_EQ(scan_add(IntVec{}), IntVec{});
  EXPECT_EQ(scan_add_inclusive(IntVec{}), IntVec{});
}

TEST(Scan, AddTotalReportsSum) {
  Int total = -1;
  EXPECT_EQ(scan_add_total(IntVec{5, 5, 5}, total), (IntVec{0, 5, 10}));
  EXPECT_EQ(total, 15);
}

TEST(Scan, MaxMin) {
  EXPECT_EQ(scan_max_inclusive(IntVec{3, 1, 4, 1, 5}), (IntVec{3, 3, 4, 4, 5}));
  EXPECT_EQ(scan_min_inclusive(IntVec{3, 1, 4, 1, 5}), (IntVec{3, 1, 1, 1, 1}));
}

TEST(Scan, BoolScans) {
  EXPECT_EQ(scan_or_inclusive(BoolVec{0, 0, 1, 0}), (BoolVec{0, 0, 1, 1}));
  EXPECT_EQ(scan_and_inclusive(BoolVec{1, 1, 0, 1}), (BoolVec{1, 1, 0, 0}));
}

TEST(Scan, RealScan) {
  EXPECT_EQ(scan_add_inclusive(RealVec{0.5, 0.5, 1.0}),
            (RealVec{0.5, 1.0, 2.0}));
}

TEST(SegScan, RestartsPerSegment) {
  // segments: [1,2,3] [4] [] [5,6]
  IntVec values{1, 2, 3, 4, 5, 6};
  IntVec lens{3, 1, 0, 2};
  EXPECT_EQ(seg_scan_add(values, lens), (IntVec{0, 1, 3, 0, 0, 5}));
  EXPECT_EQ(seg_scan_add_inclusive(values, lens), (IntVec{1, 3, 6, 4, 5, 11}));
}

TEST(SegScan, MaxPerSegment) {
  EXPECT_EQ(seg_scan_max_inclusive(IntVec{1, 5, 2, 9, 3}, IntVec{3, 2}),
            (IntVec{1, 5, 5, 9, 9}));
}

TEST(SegScan, BadDescriptorThrows) {
  EXPECT_THROW((void)seg_scan_add(IntVec{1, 2}, IntVec{3}), VectorError);
  EXPECT_THROW((void)seg_scan_add(IntVec{1, 2}, IntVec{3, -1}), VectorError);
}

/// Property: a segmented scan equals independent flat scans per segment,
/// on both backends.
struct SegScanCase {
  std::uint64_t seed;
  Size segments;
  Size max_len;
  Backend backend;
};

class SegScanProperty : public ::testing::TestWithParam<SegScanCase> {};

TEST_P(SegScanProperty, MatchesPerSegmentScan) {
  const auto& p = GetParam();
  if (p.backend == Backend::kOpenMP && !openmp_available()) GTEST_SKIP();
  BackendGuard guard(p.backend);

  IntVec lens = seq::random_ints(p.seed, p.segments, 0, p.max_len);
  const Size total = lengths_total(lens);
  IntVec values = seq::random_ints(p.seed + 1, total, -100, 100);

  IntVec got = seg_scan_add_inclusive(values, lens);

  IntVec expected(total);
  Size pos = 0;
  for (Size s = 0; s < lens.size(); ++s) {
    Int acc = 0;
    for (Int k = 0; k < lens[s]; ++k) {
      acc += values[pos];
      expected[pos] = acc;
      ++pos;
    }
  }
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SegScanProperty,
    ::testing::Values(SegScanCase{1, 1, 5, Backend::kSerial},
                      SegScanCase{2, 10, 8, Backend::kSerial},
                      SegScanCase{3, 100, 50, Backend::kSerial},
                      SegScanCase{4, 1000, 20, Backend::kSerial},
                      SegScanCase{5, 10, 8, Backend::kOpenMP},
                      SegScanCase{6, 1000, 20, Backend::kOpenMP},
                      SegScanCase{7, 5000, 3, Backend::kOpenMP}));

/// Property: the blocked OpenMP scan equals the serial scan.
class ScanBackendProperty : public ::testing::TestWithParam<Size> {};

TEST_P(ScanBackendProperty, OpenMPMatchesSerial) {
  if (!openmp_available()) GTEST_SKIP();
  const Size n = GetParam();
  IntVec v = seq::random_ints(99, n, -1000, 1000);
  IntVec serial;
  IntVec threaded;
  {
    BackendGuard g(Backend::kSerial);
    serial = scan_add(v);
  }
  {
    BackendGuard g(Backend::kOpenMP);
    threaded = scan_add(v);
  }
  EXPECT_EQ(serial, threaded);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanBackendProperty,
                         ::testing::Values<Size>(0, 1, 2, 4095, 4096, 4097,
                                                 100000));

}  // namespace
}  // namespace proteus::vl
