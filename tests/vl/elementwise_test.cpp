// Unit tests for the elementwise vector primitives (depth-1 extensions of
// the scalar functions of Table 2).
#include <gtest/gtest.h>

#include "seq/build.hpp"
#include "vl/vl.hpp"

namespace proteus::vl {
namespace {

TEST(Elementwise, AddVectors) {
  EXPECT_EQ(add(IntVec{1, 2, 3}, IntVec{10, 20, 30}), (IntVec{11, 22, 33}));
}

TEST(Elementwise, AddScalarBroadcast) {
  EXPECT_EQ(add(IntVec{1, 2, 3}, Int{5}), (IntVec{6, 7, 8}));
}

TEST(Elementwise, AddReal) {
  EXPECT_EQ(add(RealVec{1.5, 2.5}, RealVec{1.0, 1.0}), (RealVec{2.5, 3.5}));
}

TEST(Elementwise, SubBothDirections) {
  EXPECT_EQ(sub(IntVec{5, 7}, IntVec{1, 2}), (IntVec{4, 5}));
  EXPECT_EQ(sub(Int{10}, IntVec{1, 2}), (IntVec{9, 8}));
  EXPECT_EQ(sub(IntVec{5, 7}, Int{5}), (IntVec{0, 2}));
}

TEST(Elementwise, MulDivMod) {
  EXPECT_EQ(mul(IntVec{2, 3}, IntVec{4, 5}), (IntVec{8, 15}));
  EXPECT_EQ(div(IntVec{9, 7}, IntVec{2, 7}), (IntVec{4, 1}));
  EXPECT_EQ(mod(IntVec{9, 7}, IntVec{2, 7}), (IntVec{1, 0}));
}

TEST(Elementwise, DivByZeroThrows) {
  EXPECT_THROW((void)div(IntVec{1}, IntVec{0}), EvalError);
  EXPECT_THROW((void)mod(IntVec{1}, Int{0}), EvalError);
}

TEST(Elementwise, LengthMismatchThrows) {
  EXPECT_THROW((void)add(IntVec{1}, IntVec{1, 2}), VectorError);
}

TEST(Elementwise, NegAbsMinMax) {
  EXPECT_EQ(neg(IntVec{1, -2}), (IntVec{-1, 2}));
  EXPECT_EQ(abs(IntVec{-3, 4}), (IntVec{3, 4}));
  EXPECT_EQ(min(IntVec{1, 9}, IntVec{5, 2}), (IntVec{1, 2}));
  EXPECT_EQ(max(IntVec{1, 9}, IntVec{5, 2}), (IntVec{5, 9}));
}

TEST(Elementwise, Comparisons) {
  IntVec a{1, 2, 3};
  IntVec b{2, 2, 2};
  EXPECT_EQ(lt(a, b), (BoolVec{1, 0, 0}));
  EXPECT_EQ(le(a, b), (BoolVec{1, 1, 0}));
  EXPECT_EQ(gt(a, b), (BoolVec{0, 0, 1}));
  EXPECT_EQ(ge(a, b), (BoolVec{0, 1, 1}));
  EXPECT_EQ(eq(a, b), (BoolVec{0, 1, 0}));
  EXPECT_EQ(ne(a, b), (BoolVec{1, 0, 1}));
}

TEST(Elementwise, ComparisonScalarForms) {
  IntVec a{1, 2, 3};
  EXPECT_EQ(lt(a, Int{2}), (BoolVec{1, 0, 0}));
  EXPECT_EQ(ge(a, Int{2}), (BoolVec{0, 1, 1}));
  EXPECT_EQ(eq(a, Int{3}), (BoolVec{0, 0, 1}));
}

TEST(Elementwise, BooleanConnectives) {
  BoolVec a{1, 1, 0, 0};
  BoolVec b{1, 0, 1, 0};
  EXPECT_EQ(logical_and(a, b), (BoolVec{1, 0, 0, 0}));
  EXPECT_EQ(logical_or(a, b), (BoolVec{1, 1, 1, 0}));
  EXPECT_EQ(logical_xor(a, b), (BoolVec{0, 1, 1, 0}));
  EXPECT_EQ(logical_not(a), (BoolVec{0, 0, 1, 1}));
}

TEST(Elementwise, Select) {
  EXPECT_EQ(select(BoolVec{1, 0, 1}, IntVec{1, 2, 3}, IntVec{9, 8, 7}),
            (IntVec{1, 8, 3}));
}

TEST(Elementwise, SelectLengthMismatchThrows) {
  EXPECT_THROW((void)select(BoolVec{1}, IntVec{1, 2}, IntVec{3, 4}), VectorError);
}

TEST(Elementwise, Conversions) {
  EXPECT_EQ(to_real(IntVec{1, 2}), (RealVec{1.0, 2.0}));
  EXPECT_EQ(to_int(RealVec{1.9, -1.9}), (IntVec{1, -1}));
}

TEST(Elementwise, EmptyVectorsWork) {
  EXPECT_EQ(add(IntVec{}, IntVec{}), IntVec{});
  EXPECT_EQ(logical_not(BoolVec{}), BoolVec{});
}

TEST(Elementwise, RecordsWorkStats) {
  reset_stats();
  (void)add(IntVec{1, 2, 3}, IntVec{1, 2, 3});
  EXPECT_EQ(stats().primitive_calls, 1u);
  EXPECT_EQ(stats().element_work, 3u);
}

/// Property sweep: scalar broadcast form == explicit dist form.
class BroadcastEquivalence : public ::testing::TestWithParam<Size> {};

TEST_P(BroadcastEquivalence, AddMatchesDist) {
  const Size n = GetParam();
  IntVec v = seq::random_ints(1234 + static_cast<std::uint64_t>(n), n, -50, 50);
  EXPECT_EQ(add(v, Int{7}), add(v, dist(Int{7}, n)));
  EXPECT_EQ(lt(v, Int{3}), lt(v, dist(Int{3}, n)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BroadcastEquivalence,
                         ::testing::Values<Size>(0, 1, 2, 17, 256, 5000));

}  // namespace
}  // namespace proteus::vl
