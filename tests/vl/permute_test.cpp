// Unit tests for the data-movement primitives.
#include <gtest/gtest.h>

#include "seq/build.hpp"
#include "vl/vl.hpp"

namespace proteus::vl {
namespace {

TEST(Gather, Basic) {
  EXPECT_EQ(gather(IntVec{10, 20, 30}, IntVec{2, 0, 2, 1}),
            (IntVec{30, 10, 30, 20}));
}

TEST(Gather, EmptyIndices) {
  EXPECT_EQ(gather(IntVec{1, 2}, IntVec{}), IntVec{});
}

TEST(Gather, OutOfRangeThrows) {
  EXPECT_THROW((void)gather(IntVec{1, 2}, IntVec{2}), EvalError);
  EXPECT_THROW((void)gather(IntVec{1, 2}, IntVec{-1}), EvalError);
}

TEST(Permute, Basic) {
  // element i goes to position positions[i]
  EXPECT_EQ(permute(IntVec{10, 20, 30}, IntVec{2, 0, 1}),
            (IntVec{20, 30, 10}));
}

TEST(Permute, NotAPermutationThrows) {
  EXPECT_THROW((void)permute(IntVec{1, 2}, IntVec{0, 0}), VectorError);
  EXPECT_THROW((void)permute(IntVec{1, 2}, IntVec{0, 5}), VectorError);
}

TEST(Permute, InverseOfGather) {
  IntVec v = seq::random_ints(7, 100, -50, 50);
  IntVec idx(100);
  for (Size i = 0; i < 100; ++i) idx[i] = 99 - i;  // reversal permutation
  EXPECT_EQ(gather(permute(v, idx), idx), v);
}

TEST(Scatter, Basic) {
  EXPECT_EQ(scatter(IntVec{0, 0, 0, 0}, IntVec{3, 1}, IntVec{9, 8}),
            (IntVec{0, 8, 0, 9}));
}

TEST(Scatter, DuplicatePositionThrows) {
  EXPECT_THROW((void)scatter(IntVec{0, 0}, IntVec{1, 1}, IntVec{5, 6}),
               VectorError);
}

TEST(Scatter, PositionOutOfRangeThrows) {
  EXPECT_THROW((void)scatter(IntVec{0}, IntVec{1}, IntVec{5}), EvalError);
}

TEST(SegGather, PerSegmentLookup) {
  // source segments: [10,20,30] [40]; lengths 3,1; offsets 0,3
  IntVec values{10, 20, 30, 40};
  IntVec offsets{0, 3};
  IntVec lengths{3, 1};
  // read (seg 0, idx 2), (seg 1, idx 0), (seg 0, idx 0)
  EXPECT_EQ(seg_gather(values, offsets, lengths, IntVec{0, 1, 0},
                       IntVec{2, 0, 0}),
            (IntVec{30, 40, 10}));
}

TEST(SegGather, IndexBeyondSegmentThrows) {
  EXPECT_THROW((void)seg_gather(IntVec{1, 2}, IntVec{0, 1}, IntVec{1, 1},
                          IntVec{0}, IntVec{1}),
               EvalError);
}

TEST(Reverse, Basic) {
  EXPECT_EQ(reverse(IntVec{1, 2, 3}), (IntVec{3, 2, 1}));
  EXPECT_EQ(reverse(IntVec{}), IntVec{});
}

TEST(Rotate, Basic) {
  EXPECT_EQ(rotate(IntVec{1, 2, 3, 4}, 1), (IntVec{2, 3, 4, 1}));
  EXPECT_EQ(rotate(IntVec{1, 2, 3, 4}, -1), (IntVec{4, 1, 2, 3}));
  EXPECT_EQ(rotate(IntVec{1, 2, 3, 4}, 4), (IntVec{1, 2, 3, 4}));
  EXPECT_EQ(rotate(IntVec{}, 3), IntVec{});
}

TEST(Gather, BoolAndRealCarriers) {
  EXPECT_EQ(gather(BoolVec{1, 0}, IntVec{1, 1, 0}), (BoolVec{0, 0, 1}));
  EXPECT_EQ(gather(RealVec{1.5, 2.5}, IntVec{1, 0}), (RealVec{2.5, 1.5}));
}

class GatherBackends : public ::testing::TestWithParam<Size> {};

TEST_P(GatherBackends, OpenMPMatchesSerial) {
  if (!openmp_available()) GTEST_SKIP();
  const Size n = GetParam();
  IntVec v = seq::random_ints(5, n, -9, 9);
  IntVec idx = seq::random_ints(6, n * 2, 0, n > 0 ? n - 1 : 0);
  if (n == 0) return;
  IntVec serial;
  IntVec threaded;
  {
    BackendGuard g(Backend::kSerial);
    serial = gather(v, idx);
  }
  {
    BackendGuard g(Backend::kOpenMP);
    threaded = gather(v, idx);
  }
  EXPECT_EQ(serial, threaded);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GatherBackends,
                         ::testing::Values<Size>(1, 4096, 50000));

}  // namespace
}  // namespace proteus::vl
