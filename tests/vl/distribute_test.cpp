// Unit tests for replication / index generation — range1 and dist, which
// Section 3 identifies as sufficient to rebuild all bound-variable
// references inside nested iterators.
#include <gtest/gtest.h>

#include "vl/vl.hpp"

namespace proteus::vl {
namespace {

TEST(Iota, Basic) {
  EXPECT_EQ(iota(4, 0), (IntVec{0, 1, 2, 3}));
  EXPECT_EQ(iota(3, 10), (IntVec{10, 11, 12}));
  EXPECT_EQ(iota(0, 5), IntVec{});
}

TEST(Iota1, Range1Semantics) {
  EXPECT_EQ(iota1(3), (IntVec{1, 2, 3}));
  EXPECT_EQ(iota1(0), IntVec{});
  EXPECT_EQ(iota1(-5), IntVec{});  // [1..n] is empty for n < 1
}

TEST(SegIota1, Range1ParallelExtension) {
  // range1^1([3,0,2]) == [1,2,3, 1,2]
  EXPECT_EQ(seg_iota1(IntVec{3, 0, 2}), (IntVec{1, 2, 3, 1, 2}));
}

TEST(SegIota1, NegativeCountsClampToEmpty) {
  EXPECT_EQ(seg_iota1(IntVec{-2, 2}), (IntVec{1, 2}));
}

TEST(Dist, Basic) {
  EXPECT_EQ(dist(Int{7}, 3), (IntVec{7, 7, 7}));
  EXPECT_EQ(dist(Int{7}, 0), IntVec{});
  EXPECT_EQ(dist(Real{1.5}, 2), (RealVec{1.5, 1.5}));
  EXPECT_EQ(dist(Bool{1}, 2), (BoolVec{1, 1}));
}

TEST(Dist, NegativeCountThrows) {
  EXPECT_THROW((void)dist(Int{1}, -1), VectorError);
}

TEST(SegDist, PaperExample) {
  // dist([3,4,5],[3,2,1]) yields [[3,3,3],[4,4],[5]] — value vector:
  EXPECT_EQ(seg_dist(IntVec{3, 4, 5}, IntVec{3, 2, 1}),
            (IntVec{3, 3, 3, 4, 4, 5}));
}

TEST(SegDist, EmptyCounts) {
  EXPECT_EQ(seg_dist(IntVec{1, 2}, IntVec{0, 0}), IntVec{});
}

TEST(SegDist, MismatchThrows) {
  EXPECT_THROW((void)seg_dist(IntVec{1}, IntVec{1, 1}), VectorError);
}

TEST(Range, General) {
  EXPECT_EQ(range(2, 5, 1), (IntVec{2, 3, 4, 5}));
  EXPECT_EQ(range(5, 2, -1), (IntVec{5, 4, 3, 2}));
  EXPECT_EQ(range(1, 10, 3), (IntVec{1, 4, 7, 10}));
  EXPECT_EQ(range(5, 2, 1), IntVec{});  // moves away from hi
  EXPECT_EQ(range(3, 3, 1), (IntVec{3}));
}

TEST(Range, ZeroStepThrows) { EXPECT_THROW((void)range(1, 2, 0), VectorError); }

/// Property: seg_iota1(ns) has descriptor ns (clamped), and each segment
/// is exactly [1..ns[s]].
class SegIotaProperty : public ::testing::TestWithParam<int> {};

TEST_P(SegIotaProperty, SegmentsAreRanges) {
  const int variant = GetParam();
  IntVec ns;
  for (int i = 0; i < 50; ++i) {
    ns.push_back((i * 7 + variant) % 11 - 2);  // mix of negatives and sizes
  }
  IntVec flat = seg_iota1(ns);
  Size pos = 0;
  for (Size s = 0; s < ns.size(); ++s) {
    Int n = ns[s] < 0 ? 0 : ns[s];
    for (Int k = 1; k <= n; ++k) {
      ASSERT_LT(pos, flat.size());
      EXPECT_EQ(flat[pos++], k);
    }
  }
  EXPECT_EQ(pos, flat.size());
}

INSTANTIATE_TEST_SUITE_P(Variants, SegIotaProperty,
                         ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace proteus::vl
