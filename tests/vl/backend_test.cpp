// Tests for the execution-policy plumbing and work counters.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string_view>

#include "vl/vl.hpp"

namespace proteus::vl {
namespace {

TEST(Backend, DefaultFollowsEnvironment) {
  // Serial unless the process was launched with PROTEUS_BACKEND=openmp
  // (how the CI matrix runs the whole suite on the parallel kernels).
  const char* env = std::getenv("PROTEUS_BACKEND");
  const bool want_openmp = env != nullptr &&
                           std::string_view(env) == "openmp" &&
                           openmp_available();
  EXPECT_EQ(backend(),
            want_openmp ? Backend::kOpenMP : Backend::kSerial);
}

TEST(Backend, GuardRestores) {
  Backend before = backend();
  {
    BackendGuard guard(Backend::kOpenMP);
    if (openmp_available()) {
      EXPECT_EQ(backend(), Backend::kOpenMP);
    }
  }
  EXPECT_EQ(backend(), before);
}

TEST(Backend, OpenMPFallsBackWhenUnavailable) {
  // set_backend never leaves the process in an unrunnable state.
  Backend prev = set_backend(Backend::kOpenMP);
  if (!openmp_available()) {
    EXPECT_EQ(backend(), Backend::kSerial);
  }
  set_backend(prev);
}

TEST(Backend, ThreadCountPositive) {
  EXPECT_GE(backend_threads(), 1);
}

TEST(Stats, AccumulateAndReset) {
  reset_stats();
  EXPECT_EQ(stats().primitive_calls, 0u);
  (void)iota(100, 0);
  (void)scan_add(iota(100, 0));
  EXPECT_GE(stats().primitive_calls, 3u);  // two iotas + one scan
  EXPECT_GE(stats().element_work, 300u);
  reset_stats();
  EXPECT_EQ(stats().element_work, 0u);
}

TEST(Vec, BoundsCheckedAccess) {
  IntVec v{1, 2, 3};
  EXPECT_EQ(v[0], 1);
  EXPECT_THROW((void)v[3], VectorError);
  EXPECT_THROW((void)v[-1], VectorError);
}

TEST(Vec, NegativeSizeThrows) {
  EXPECT_THROW((void)IntVec(Size{-1}), VectorError);
}

TEST(Vec, Printing) {
  std::ostringstream os;
  os << IntVec{1, 2} << ' ' << BoolVec{1, 0};
  EXPECT_EQ(os.str(), "[1,2] [T,F]");
}

}  // namespace
}  // namespace proteus::vl
