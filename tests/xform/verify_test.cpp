// The V-form verifier run over every program in the repository (and over
// deliberately broken trees to prove it catches violations).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/proteus.hpp"
#include "xform/verify.hpp"

namespace proteus::xform {
namespace {

void expect_valid(const char* program, const char* entry = "") {
  Session s(program, entry);
  verify_vector_program(s.compiled().vec);
  if (s.compiled().entry_vec != nullptr) {
    verify_vector_expression(s.compiled().vec, s.compiled().entry_vec);
  }
}

TEST(Verify, AcceptsAllPipelineOutputs) {
  expect_valid("fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]",
               "[k <- [1 .. 5] : sqs(k)]");
  expect_valid(R"(
    fun quicksort(v: seq(int)): seq(int) =
      if #v <= 1 then v
      else
        let pivot = v[1 + (#v / 2)] in
        let parts = [p <- [[x <- v | x < pivot : x],
                           [x <- v | x > pivot : x]] : quicksort(p)] in
        parts[1] ++ [x <- v | x == pivot : x] ++ parts[2]
  )");
  expect_valid(R"(
    fun add2(a: int, b: int): int = a + b
    fun fold(f: (int,int) -> int, z: int, v: seq(int)): int =
      if #v == 0 then z
      else f(fold(f, z, [i <- [1 .. #v - 1] : v[i]]), v[#v])
    fun use(m: seq(seq(int))): seq(int) = [row <- m : fold(add2, 0, row)]
  )");
  expect_valid(R"(
    fun d4(n: int): seq(seq(seq(seq(int)))) =
      [a <- [1 .. n] : [b <- [1 .. a] : [c <- [1 .. b] : [d <- [1 .. c] :
        a * b + c * d]]]]
  )");
  expect_valid(R"(
    fun pairs(v: seq(int)): seq((int, (int, bool))) =
      [x <- v : (x, (x * 2, x > 0))]
  )");
}

TEST(Verify, AcceptsSampleProgramFiles) {
  for (const char* path : {"examples/programs/sort.p",
                           "examples/programs/stats.p",
                           "examples/programs/primes.p"}) {
    std::ifstream in(std::string(PROTEUS_SOURCE_DIR) + "/" + path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    SCOPED_TRACE(path);
    expect_valid(buf.str().c_str());
  }
}

TEST(Verify, RejectsSurvivingIterator) {
  Session s("fun f(n: int): seq(int) = [i <- [1 .. n] : i]");
  // The *checked* (untransformed) program must fail V verification.
  EXPECT_THROW(verify_vector_program(s.compiled().checked), TransformError);
}

TEST(Verify, RejectsOutOfScopeVariable) {
  using namespace lang;
  Program empty;
  ExprPtr stray = make_expr(VarRef{"ghost", false}, Type::int_());
  EXPECT_THROW(verify_vector_expression(empty, stray), TransformError);
  EXPECT_NO_THROW(verify_vector_expression(empty, stray, {"ghost"}));
}

TEST(Verify, RejectsDeepExtensions) {
  using namespace lang;
  Program empty;
  ExprPtr v = make_expr(VarRef{"v", false},
                        Type::seq_n(Type::int_(), 2));
  ExprPtr deep = make_expr(PrimCall{Prim::kMul, 2, {v, v}, {1, 1}},
                           Type::seq_n(Type::int_(), 2));
  EXPECT_THROW(verify_vector_expression(empty, deep, {"v"}), TransformError);
}

TEST(Verify, RejectsMissingTypeAnnotation) {
  using namespace lang;
  Program empty;
  ExprPtr untyped = make_expr(IntLit{1});  // no type
  EXPECT_THROW(verify_vector_expression(empty, untyped), TransformError);
}

TEST(Verify, RejectsUnknownCallTarget) {
  using namespace lang;
  Program empty;
  ExprPtr call = make_expr(FunCall{"nosuch", 0, {}, {}}, Type::int_());
  EXPECT_THROW(verify_vector_expression(empty, call), TransformError);
}

TEST(Verify, RejectsAllBroadcastDepthOneCall) {
  using namespace lang;
  Program empty;
  ExprPtr one = make_expr(IntLit{1}, Type::int_());
  ExprPtr bad = make_expr(PrimCall{Prim::kAdd, 1, {one, one}, {0, 0}},
                          Type::seq(Type::int_()));
  EXPECT_THROW(verify_vector_expression(empty, bad), TransformError);
}

}  // namespace
}  // namespace proteus::xform
