// Tests for the T1 translation (Section 4.3 / Figure 3): every depth >= 2
// call is reduced to extract / depth-1 / insert, and semantics are
// preserved (interpreter oracle again).
#include <gtest/gtest.h>

#include "core/proteus.hpp"
#include "interp/interp.hpp"
#include "lang/lang.hpp"
#include "xform/xform.hpp"

namespace proteus::xform {
namespace {

using namespace lang;

/// Maximum parallel-extension depth occurring anywhere in `e`
/// (kEmptyFrame's depth marker is exempt — it is not an extension).
int max_call_depth(const ExprPtr& e) {
  if (e == nullptr) return 0;
  return std::visit(
      [&](const auto& node) -> int {
        using T = std::decay_t<decltype(node)>;
        int deepest = 0;
        auto take = [&](int d) { deepest = std::max(deepest, d); };
        if constexpr (std::is_same_v<T, Let>) {
          take(max_call_depth(node.init));
          take(max_call_depth(node.body));
        } else if constexpr (std::is_same_v<T, If>) {
          take(max_call_depth(node.cond));
          take(max_call_depth(node.then_expr));
          take(max_call_depth(node.else_expr));
        } else if constexpr (std::is_same_v<T, PrimCall>) {
          if (node.op != Prim::kEmptyFrame && node.op != Prim::kAnyTrue) {
            take(node.depth);
          }
          for (const auto& a : node.args) take(max_call_depth(a));
        } else if constexpr (std::is_same_v<T, FunCall>) {
          take(node.depth);
          for (const auto& a : node.args) take(max_call_depth(a));
        } else if constexpr (std::is_same_v<T, IndirectCall>) {
          take(node.depth);
          take(max_call_depth(node.fn));
          for (const auto& a : node.args) take(max_call_depth(a));
        } else if constexpr (std::is_same_v<T, TupleExpr> ||
                             std::is_same_v<T, SeqExpr>) {
          take(node.depth);
          for (const auto& a : node.elems) take(max_call_depth(a));
        } else if constexpr (std::is_same_v<T, TupleGet>) {
          take(node.depth);
          take(max_call_depth(node.tuple));
        }
        return deepest;
      },
      e->node);
}

TEST(Translate, EverythingReducesToDepthOne) {
  Compiled c = compile(R"(
    fun triple(n: int): seq(seq(seq(int))) =
      [i <- [1 .. n] : [j <- [1 .. i] : [k <- [1 .. j] : i + j + k]]]
    fun quad(n: int): seq(seq(seq(seq(int)))) =
      [a <- [1 .. n] : [b <- [1 .. a] : [c <- [1 .. b] : [d <- [1 .. c] :
        a * b + c * d]]]]
  )");
  for (const FunDef& f : c.vec.functions) {
    EXPECT_LE(max_call_depth(f.body), 1) << f.name << ":\n" << to_text(f);
  }
  // and before translation the depths really were deeper:
  EXPECT_GE(max_call_depth(c.flat.find("quad")->body), 4);
}

TEST(Translate, UserCallsRenamedToExtensions) {
  Compiled c = compile(R"(
    fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]
    fun use(n: int): seq(seq(int)) = [k <- [1 .. n] : sqs(k)]
  )");
  std::string text = to_text(*c.vec.find("use"));
  EXPECT_NE(text.find("sqs^1("), std::string::npos) << text;
  // the flat form still says depth-1 FunCall on the base name, printed the
  // same way; but the vec form must contain a real definition:
  EXPECT_NE(c.vec.find("sqs^1"), nullptr);
}

TEST(Translate, T1IntroducesExtractInsert) {
  Compiled c = compile(R"(
    fun f(n: int): seq(seq(int)) = [i <- [1 .. n] : [j <- [1 .. i] : j * j]]
  )");
  std::string text = to_text(*c.vec.find("f"));
  EXPECT_NE(text.find("extract("), std::string::npos) << text;
  EXPECT_NE(text.find("insert("), std::string::npos) << text;
}

TEST(Translate, FrameSourceBoundOnce) {
  // T1 binds the frame argument in a let so extract and insert share it.
  Compiled c = compile(R"(
    fun f(n: int): seq(seq(int)) = [i <- [1 .. n] : [j <- [1 .. i] : j * j]]
  )");
  std::string text = to_text(*c.vec.find("f"));
  EXPECT_NE(text.find("_f"), std::string::npos) << text;
}

/// Interpreter oracle: the fully translated program still evaluates
/// identically under boxed semantics.
struct TCase {
  const char* name;
  const char* program;
  const char* fn;
  const char* arg;
};

class TranslateSemantics : public ::testing::TestWithParam<TCase> {};

TEST_P(TranslateSemantics, InterpreterOracle) {
  const TCase& p = GetParam();
  Compiled c = compile(p.program);
  interp::Interpreter ref(c.checked);
  interp::Interpreter oracle(c.vec);
  interp::ValueList args{parse_value(p.arg)};
  EXPECT_EQ(ref.call_function(p.fn, args), oracle.call_function(p.fn, args))
      << p.name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TranslateSemantics,
    ::testing::Values(
        TCase{"depth2",
              "fun f(n: int): seq(seq(int)) = "
              "[i <- [1 .. n] : [j <- [1 .. i] : i * j]]",
              "f", "6"},
        TCase{"depth3",
              "fun f(n: int): seq(seq(seq(int))) = "
              "[i <- [1 .. n] : [j <- [1 .. i] : [k <- [1 .. j] : k]]]",
              "f", "4"},
        TCase{"deep_conditional",
              "fun f(n: int): seq(seq(int)) = "
              "[i <- [1 .. n] : [j <- [1 .. i] : "
              "if j mod 2 == 0 then j else 0]]",
              "f", "5"},
        TCase{"deep_filter",
              "fun f(n: int): seq(seq(int)) = "
              "[i <- [1 .. n] : [j <- [1 .. i] | j != i : j]]",
              "f", "5"}),
    [](const ::testing::TestParamInfo<TCase>& pinfo) {
      return pinfo.param.name;
    });

}  // namespace
}  // namespace proteus::xform
