// Tests for rule R1 (iterator canonical form) and the filtered-iterator
// desugaring.
#include <gtest/gtest.h>

#include "core/proteus.hpp"
#include "interp/interp.hpp"
#include "lang/lang.hpp"
#include "xform/canon.hpp"

namespace proteus::xform {
namespace {

using namespace lang;

ExprPtr canon_expr(std::string_view program, std::string_view expr) {
  Program checked = typecheck(parse_program(program));
  ExprPtr typed = typecheck_expression(checked, parse_expression(expr));
  NameGen names;
  return canonicalize(typed, names);
}

/// Collects every iterator in an expression.
void iterators(const ExprPtr& e, std::vector<const Iterator*>& out) {
  if (e == nullptr) return;
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, Iterator>) {
          out.push_back(&node);
          iterators(node.domain, out);
          iterators(node.filter, out);
          iterators(node.body, out);
        } else if constexpr (std::is_same_v<T, Let>) {
          iterators(node.init, out);
          iterators(node.body, out);
        } else if constexpr (std::is_same_v<T, If>) {
          iterators(node.cond, out);
          iterators(node.then_expr, out);
          iterators(node.else_expr, out);
        } else if constexpr (std::is_same_v<T, PrimCall> ||
                             std::is_same_v<T, FunCall>) {
          for (const auto& a : node.args) iterators(a, out);
        } else if constexpr (std::is_same_v<T, IndirectCall>) {
          iterators(node.fn, out);
          for (const auto& a : node.args) iterators(a, out);
        } else if constexpr (std::is_same_v<T, TupleExpr> ||
                             std::is_same_v<T, SeqExpr>) {
          for (const auto& a : node.elems) iterators(a, out);
        } else if constexpr (std::is_same_v<T, TupleGet>) {
          iterators(node.tuple, out);
        }
      },
      e->node);
}

void expect_canonical(const ExprPtr& e) {
  std::vector<const Iterator*> its;
  iterators(e, its);
  for (const Iterator* it : its) {
    EXPECT_EQ(it->filter, nullptr) << "filter survived canonicalization";
    const auto* dom = as<PrimCall>(it->domain);
    ASSERT_NE(dom, nullptr);
    EXPECT_EQ(dom->op, Prim::kRange1) << "domain is not range1";
  }
}

TEST(Canon, AlreadyCanonicalKept) {
  ExprPtr e = canon_expr("", "[i <- [1 .. 9] : i * 2]");
  const auto* it = as<Iterator>(e);
  ASSERT_NE(it, nullptr) << "no let-wrapping expected for canonical domains";
  EXPECT_EQ(it->var, "i");
  expect_canonical(e);
}

TEST(Canon, IdentityIteratorIsItsDomain) {
  // [x <- d : x] == d (ubiquitous after filter desugaring).
  ExprPtr e = canon_expr("", "[i <- [1 .. 9] : i]");
  EXPECT_EQ(as<Iterator>(e), nullptr);
  lang::Program empty;
  interp::Interpreter in(empty);
  EXPECT_EQ(in.eval(e), parse_value("[1,2,3,4,5,6,7,8,9]"));
}

TEST(Canon, GeneralDomainRewritten) {
  ExprPtr e = canon_expr("", "[x <- [5,7,9] : x + 1]");
  // R1: let _v = [5,7,9] in [_i <- range1(#_v) : let x = _v[_i] in x + 1]
  const auto* let = as<Let>(e);
  ASSERT_NE(let, nullptr);
  expect_canonical(e);
  // semantics preserved
  lang::Program empty;
  interp::Interpreter in(empty);
  EXPECT_EQ(in.eval(e), parse_value("[6,8,10]"));
}

TEST(Canon, FilterDesugared) {
  ExprPtr e = canon_expr("", "[x <- [1 .. 10] | x mod 2 == 0 : x * x]");
  expect_canonical(e);
  lang::Program empty;
  interp::Interpreter in(empty);
  EXPECT_EQ(in.eval(e), parse_value("[4,16,36,64,100]"));
}

TEST(Canon, NestedIteratorsAllCanonical) {
  ExprPtr e = canon_expr(
      "", "[v <- [[1,2],[3]] : [x <- v | x > 1 : x]]");
  expect_canonical(e);
  lang::Program empty;
  interp::Interpreter in(empty);
  EXPECT_EQ(in.eval(e), parse_value("[[2],[3]]"));
}

TEST(Canon, RangeWithNonUnitLowerBoundRewritten) {
  ExprPtr e = canon_expr("", "[i <- [3 .. 5] : i]");
  expect_canonical(e);
  lang::Program empty;
  interp::Interpreter in(empty);
  EXPECT_EQ(in.eval(e), parse_value("[3,4,5]"));
}

TEST(Canon, ProgramBodiesCanonicalized) {
  Program checked = typecheck(parse_program(R"(
    fun evens(v: seq(int)): seq(int) = [x <- v | x mod 2 == 0 : x]
  )"));
  NameGen names;
  Program canon = canonicalize(checked, names);
  std::vector<const Iterator*> its;
  iterators(canon.find("evens")->body, its);
  // the mask iterator remains; the main (identity) iterator reduced to
  // restrict(d, m)
  EXPECT_GE(its.size(), 1u);
  for (const Iterator* it : its) EXPECT_EQ(it->filter, nullptr);
}

/// Property: canonicalization preserves interpreter semantics.
class CanonSemantics : public ::testing::TestWithParam<const char*> {};

TEST_P(CanonSemantics, Preserved) {
  const char* src = GetParam();
  lang::Program empty;
  ExprPtr typed = typecheck_expression(empty, parse_expression(src));
  NameGen names;
  ExprPtr canon = canonicalize(typed, names);
  interp::Interpreter in(empty);
  EXPECT_EQ(in.eval(typed), in.eval(canon)) << src;
}

TEST(Canon, Idempotent) {
  Program checked = typecheck(parse_program(R"(
    fun f(v: seq(int)): seq(int) = [x <- v | x > 0 : x * 2]
    fun g(n: int): seq(seq(int)) = [i <- [1 .. n] : [j <- [1 .. i] : j]]
  )"));
  NameGen names;
  Program once = canonicalize(checked, names);
  Program twice = canonicalize(once, names);
  EXPECT_EQ(to_text(twice), to_text(once));
}

INSTANTIATE_TEST_SUITE_P(
    Exprs, CanonSemantics,
    ::testing::Values(
        "[i <- [1 .. 6] : i * i]",
        "[x <- [4,5,6] : x - 1]",
        "[x <- [9,8,7] | x mod 2 == 1 : x]",
        "[v <- [[1],[2,3],([] : seq(int))] : #v]",
        "[i <- [1 .. 3] : [j <- [1 .. i] | j != 2 : j * 10]]",
        "sum([x <- [1 .. 100] | x mod 3 == 0 : x])"));

}  // namespace
}  // namespace proteus::xform
