// Golden test: the worked example of Section 5 of the paper.
//
// The paper transforms
//     [k <- [1..5] : sqs(k)]     with  fun sqs(n) = [j <- [1..n] : mult(j,j)]
// into (paper notation):
//     fun sqs^1(V) =
//       let ib = #V
//           i  = range1(ib)
//           n  = seq_index(V, i)     -- seq_index^1, shared source
//           jb = n
//           j  = range1^1(jb)
//       in  insert(mult^1(extract(j,1), extract(j,1)), j, 1)
// and the top level into  sqs^1(range1(5)).
// These tests pin the same structure in our output.
#include <gtest/gtest.h>

#include "core/proteus.hpp"
#include "lang/printer.hpp"

namespace proteus {
namespace {

class Section5 : public ::testing::Test {
 protected:
  Section5()
      : session_("fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]",
                 "[k <- [1 .. 5] : sqs(k)]") {}

  Session session_;
};

TEST_F(Section5, EntryBecomesRange1ThenSqs1) {
  std::string text = lang::to_text(session_.compiled().entry_vec);
  // kb = 5; k = range1(kb); sqs^1(k)
  EXPECT_NE(text.find("range1("), std::string::npos) << text;
  EXPECT_NE(text.find("sqs^1(k)"), std::string::npos) << text;
  EXPECT_EQ(text.find("["), std::string::npos) << "iterator survived: " << text;
}

TEST_F(Section5, Sqs1HasThePaperShape) {
  const lang::FunDef* ext = session_.compiled().vec.find("sqs^1");
  ASSERT_NE(ext, nullptr);
  std::string text = lang::to_text(*ext);
  // let ib = #V
  EXPECT_NE(text.find("length("), std::string::npos) << text;
  // i = range1(ib)
  EXPECT_NE(text.find("range1("), std::string::npos) << text;
  // n = seq_index^1(V, i) — the Section 4.5 shared-source gather
  EXPECT_NE(text.find("seq_index^1("), std::string::npos) << text;
  // j = range1^1(n)
  EXPECT_NE(text.find("range1^1("), std::string::npos) << text;
  // T1: insert(mult^1(extract(.,1), extract(.,1)), ., 1)
  EXPECT_NE(text.find("insert(mult^1(extract("), std::string::npos) << text;
}

TEST_F(Section5, NumberOfExtensionsIsStatic) {
  // Exactly one extension is needed for this program: sqs^1.
  int extensions = 0;
  for (const lang::FunDef& f : session_.compiled().vec.functions) {
    if (!f.extension_of.empty()) {
      ++extensions;
      EXPECT_EQ(f.name, "sqs^1");
    }
  }
  EXPECT_EQ(extensions, 1);
}

TEST_F(Section5, BothEnginesProduceThePaperResult) {
  interp::Value expected =
      parse_value("[[1],[1,4],[1,4,9],[1,4,9,16],[1,4,9,16,25]]");
  EXPECT_EQ(session_.run_entry_reference(), expected);
  EXPECT_EQ(session_.run_entry_vector(), expected);
}

TEST_F(Section5, VectorWorkMatchesTriangularSize) {
  (void)session_.run_entry_vector();
  const auto& cost = session_.last_cost();
  // 1+2+3+4+5 = 15 leaf values; the executor touches each a small constant
  // number of times.
  EXPECT_GE(cost.vector_work.element_work, 15u);
  EXPECT_LE(cost.vector_work.element_work, 15u * 12u);
  // A fixed number of vector primitives regardless of n — that is the point
  // of the vector model (measured again at larger n in bench_sec5_sqs).
  EXPECT_LE(cost.vector_work.primitive_calls, 40u);
}

TEST_F(Section5, PrimitiveCountIndependentOfProblemSize) {
  Session big("fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]",
              "[k <- [1 .. 300] : sqs(k)]");
  (void)big.run_entry_vector();
  std::uint64_t big_prims = big.last_cost().vector_work.primitive_calls;
  (void)session_.run_entry_vector();
  std::uint64_t small_prims =
      session_.last_cost().vector_work.primitive_calls;
  EXPECT_EQ(big_prims, small_prims);
}

}  // namespace
}  // namespace proteus
