// Tests for the Section 4.5 shared-row optimization pass.
#include <gtest/gtest.h>

#include "core/proteus.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "xform/optimize.hpp"
#include "testing.hpp"

namespace proteus::xform {
namespace {

using testing::val;

// The only depth-2 use of `row` is as a seq_index source (the bound #row
// is evaluated at depth 1, in the iterator domain).
const char* kInnerGather =
    "fun f(m: seq(seq(int))): seq(seq(int)) = "
    "[row <- m : [i <- [1 .. #row] : row[i] * 2]]";

TEST(Optimize, RewritesReplicatedSourceToSharedRowGather) {
  Session s(kInnerGather);
  std::string text = lang::to_text(*s.compiled().flat.find("f"));
  EXPECT_NE(text.find("seq_index_inner^1("), std::string::npos) << text;
  EXPECT_EQ(text.find("dist^1(row"), std::string::npos) << text;
}

TEST(Optimize, NaiveModeKeepsReplication) {
  xform::PipelineOptions naive;
  naive.shared_row_gather = false;
  Session s(kInnerGather, {}, naive);
  std::string text = lang::to_text(*s.compiled().flat.find("f"));
  EXPECT_EQ(text.find("seq_index_inner"), std::string::npos) << text;
  EXPECT_NE(text.find("dist^1(row"), std::string::npos) << text;
}

TEST(Optimize, SemanticsIdenticalBothModes) {
  xform::PipelineOptions naive;
  naive.shared_row_gather = false;
  Session opt(kInnerGather);
  Session plain(kInnerGather, {}, naive);
  interp::Value m = val("[[1,2,3],[],[4,5]]");
  interp::Value expect = val("[[2,4,6],[],[8,10]]");
  EXPECT_EQ(opt.run_vector("f", {m}), expect);
  EXPECT_EQ(plain.run_vector("f", {m}), expect);
  EXPECT_EQ(opt.run_reference("f", {m}), expect);
}

TEST(Optimize, KeptWhenVariableHasOtherUses) {
  // `row` is also summed inside the inner iterator: the dist must stay
  // (only pure seq_index sources may share).
  Session s(
      "fun f(m: seq(seq(int))): seq(seq(int)) = "
      "[row <- m : [i <- [1 .. #row] : row[i] + sum(row)]]");
  std::string text = lang::to_text(*s.compiled().flat.find("f"));
  EXPECT_NE(text.find("dist^1(row"), std::string::npos) << text;
  testing::expect_both(s, "f", {val("[[1,2],[7]]")}, "[[4,5],[14]]");
}

TEST(Optimize, LengthOfReplicatedRowsRewrites) {
  // `#row` inside the inner body is the other §4.5 pattern: lengths of
  // replicated rows are replicated lengths — dist^1(length^1(row), ib) —
  // so the row replication itself still disappears.
  Session s(
      "fun f(m: seq(seq(int))): seq(seq(int)) = "
      "[row <- m : [i <- [1 .. #row] : row[#row + 1 - i]]]");
  std::string text = lang::to_text(*s.compiled().flat.find("f"));
  EXPECT_EQ(text.find("dist^1(row"), std::string::npos) << text;
  EXPECT_NE(text.find("seq_index_inner^1(row"), std::string::npos) << text;
  EXPECT_NE(text.find("dist^1(length^1(row)"), std::string::npos) << text;
  testing::expect_both(s, "f", {val("[[1,2,3],[],[4,5]]")},
                       "[[3,2,1],[],[5,4]]");
}

TEST(Optimize, RemovesQuadraticBlowupInFlattenedRecursion) {
  const char* split = R"(
    fun halves(v: seq(int)): seq(int) =
      if #v <= 1 then v
      else
        let h = #v / 2 in
        let a = [i <- [1 .. h] : v[i]] in
        let b = [i <- [1 .. #v - h] : v[i + h]] in
        let t = [p <- [a, b] : halves(p)] in
        t[1] ++ t[2]
  )";
  Session s(split);
  auto work = [&](int n) {
    interp::ValueList elems;
    for (int i = 0; i < n; ++i) {
      elems.push_back(interp::Value::ints(i * 37 % 1000));
    }
    (void)s.run_vector("halves", {interp::Value::seq(std::move(elems))});
    return s.last_cost().vector_work.element_work;
  };
  auto w512 = work(512);
  auto w4096 = work(4096);
  // 8x data: O(n log n) predicts ~9-10x work; quadratic would be 64x.
  EXPECT_LT(w4096, w512 * 16);
}

TEST(Optimize, Depth2IndexingStillCorrect) {
  // Three nesting levels: the innermost use is a chained replication the
  // pass does not rewrite — results must still be right.
  Session s(
      "fun f(m: seq(seq(int))): seq(seq(seq(int))) = "
      "[row <- m : [i <- [1 .. #row] : [j <- [1 .. i] : row[j]]]]");
  testing::expect_both(s, "f", {val("[[5,6],[9]]")},
                       "[[[5],[5,6]],[[9]]]");
}

TEST(Optimize, DeadLetsRemoved) {
  // Unused witnesses and replaced replications are cleaned out of the
  // final program.
  Session s("fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]");
  std::string text = lang::to_text(*s.compiled().flat.find("sqs"));
  EXPECT_EQ(text.find("_w"), std::string::npos) << text;
}

TEST(Optimize, RemoveDeadLetsDirect) {
  lang::Program checked = lang::typecheck(lang::parse_program(
      "fun f(x: int): int = let unused = x * 2 in let y = x + 1 in y"));
  lang::ExprPtr cleaned = remove_dead_lets(checked.find("f")->body);
  std::string text = lang::to_text(cleaned);
  EXPECT_EQ(text.find("unused"), std::string::npos) << text;
  EXPECT_NE(text.find("let y"), std::string::npos) << text;
}

TEST(Optimize, Idempotent) {
  Session s(kInnerGather);
  const lang::Program& flat = s.compiled().flat;
  lang::Program again = optimize_shared_rows(flat);
  again = remove_dead_lets(again);
  EXPECT_EQ(lang::to_text(again), lang::to_text(flat));
}

TEST(Optimize, PaperQuoteBench) {
  // The quicksort prim-vs-data profile pinned at small scale: primitive
  // count O(recursion depth), element work O(n log n).
  Session s(R"(
    fun qs(v: seq(int)): seq(int) =
      if #v <= 1 then v
      else
        let pivot = v[1 + (#v / 2)] in
        let parts = [p <- [[x <- v | x < pivot : x],
                           [x <- v | x > pivot : x]] : qs(p)] in
        parts[1] ++ [x <- v | x == pivot : x] ++ parts[2]
  )");
  auto run = [&](int n) {
    interp::ValueList elems;
    for (int i = 0; i < n; ++i) {
      elems.push_back(
          interp::Value::ints(vl::Int{i} * 2654435761 % 1000000));
    }
    (void)s.run_vector("qs", {interp::Value::seq(std::move(elems))});
    return s.last_cost().vector_work;
  };
  auto w256 = run(256);
  auto w2048 = run(2048);
  EXPECT_LT(w2048.element_work, w256.element_work * 8 * 3);
  EXPECT_LT(w2048.primitive_calls, w256.primitive_calls * 3);
}

}  // namespace
}  // namespace proteus::xform
