// Rule-level unit tests: each R2 case of Section 3.2 observed on a
// minimal expression, by inspecting the flattened form directly.
#include <gtest/gtest.h>

#include "core/proteus.hpp"
#include "interp/interp.hpp"
#include "lang/lang.hpp"
#include "xform/xform.hpp"

namespace proteus::xform {
namespace {

using namespace lang;

/// Flattened body text of a one-function program.
std::string flat_text(const std::string& fun_src) {
  Session s(fun_src);
  const FunDef* f = s.compiled().flat.functions.empty()
                        ? nullptr
                        : &s.compiled().flat.functions.front();
  return f == nullptr ? "" : to_text(*f);
}

// R2a/R2b: identifiers and constants translate to themselves — an
// iterator body that is a constant or a parameter reference compiles to a
// replication (dist), with no per-element machinery.
TEST(Rules, R2a_IdentifierToItself) {
  std::string text =
      flat_text("fun f(v: seq(int), c: int): seq(int) = [x <- v : c]");
  EXPECT_NE(text.find("dist(c"), std::string::npos) << text;
  EXPECT_EQ(text.find("c^"), std::string::npos) << text;
}

TEST(Rules, R2b_ConstantToItself) {
  std::string text =
      flat_text("fun f(v: seq(int)): seq(int) = [x <- v : 7]");
  EXPECT_NE(text.find("dist(7"), std::string::npos) << text;
}

// R2c: the application rule introduces the depth-j extension of the
// applied function.
TEST(Rules, R2c_ApplicationGetsDepth) {
  std::string text =
      flat_text("fun f(v: seq(int)): seq(int) = [x <- v : x + 1]");
  EXPECT_NE(text.find("add^1("), std::string::npos) << text;
}

TEST(Rules, R2c_NestedIteratorGetsRangeExtension) {
  std::string text = flat_text(
      "fun f(n: int): seq(seq(int)) = "
      "[i <- [1 .. n] : [j <- [1 .. i] : j * 2]]");
  EXPECT_NE(text.find("range1^1("), std::string::npos) << text;
}

TEST(Rules, R1_IdentityInnerIteratorBecomesItsDomain) {
  // [j <- [1..i] : j] IS [1..i]: the whole inner iterator reduces to the
  // (per-slot) range, flattened as range^1.
  std::string text = flat_text(
      "fun f(n: int): seq(seq(int)) = [i <- [1 .. n] : [j <- [1 .. i] : j]]");
  EXPECT_NE(text.find("range^1(1, i)"), std::string::npos) << text;
}

TEST(Rules, R2c_BoundVariableDistributedThroughInnerIterator) {
  // `i` occurs in the inner body, so R2c replicates it one level down.
  std::string text = flat_text(
      "fun f(n: int): seq(seq(int)) = "
      "[i <- [1 .. n] : [j <- [1 .. i] : i]]");
  EXPECT_NE(text.find("dist^1(i"), std::string::npos) << text;
}

// R2d: the conditional rule.
TEST(Rules, R2d_MaskRestrictCombineEmittedOnce) {
  std::string text = flat_text(
      "fun f(v: seq(int)): seq(int) = [x <- v : if x > 0 then x else 0]");
  auto count = [&](const char* needle) {
    std::size_t c = 0;
    for (std::size_t p = text.find(needle); p != std::string::npos;
         p = text.find(needle, p + 1)) {
      ++c;
    }
    return c;
  };
  EXPECT_EQ(count("combine("), 1u) << text;
  EXPECT_EQ(count("any_true("), 2u) << text;          // one guard per branch
  EXPECT_EQ(count("empty_frame"), 2u) << text;        // one fallback per branch
  EXPECT_GE(count("restrict("), 2u) << text;          // vars + witnesses
  EXPECT_NE(text.find("not^1("), std::string::npos) << text;
}

TEST(Rules, R2d_OnlyOccurringVariablesRestricted) {
  // `w` does not occur in the branches: it must not be restricted.
  std::string text = flat_text(
      "fun f(v: seq(int), w: seq(int)): seq(int) = "
      "[i <- [1 .. #v] : if v[i] > 0 then v[i] else 0]");
  EXPECT_EQ(text.find("restrict(w"), std::string::npos) << text;
}

// R2e: let translates componentwise.
TEST(Rules, R2e_LetBodyAtSameDepth) {
  std::string text = flat_text(
      "fun f(v: seq(int)): seq(int) = [x <- v : let y = x * 2 in y + 1]");
  EXPECT_NE(text.find("let y = mult^1(x, 2)"), std::string::npos) << text;
  EXPECT_NE(text.find("add^1(y, 1)"), std::string::npos) << text;
}

// R2f: functions are fully parameterized — a lambda value inside an
// iterator stays a plain broadcast function value.
TEST(Rules, R2f_FunctionValuesIndependentOfIterators) {
  Session s(R"(
    fun apply1(f: (int) -> int, x: int): int = f(x)
    fun use(v: seq(int)): seq(int) = [x <- v : apply1(fun(y: int) => y + 1, x)]
  )");
  std::string text = to_text(*s.compiled().flat.find("use"));
  // the lambda was lifted to a named function referenced by value
  EXPECT_NE(text.find("use_lam1"), std::string::npos) << text;
  EXPECT_EQ(text.find("dist(use_lam1"), std::string::npos)
      << "function values must not be replicated: " << text;
}

// Static extension count (end of Section 3): exactly the needed f^1.
TEST(Rules, ExtensionSetIsMinimalForStraightLinePrograms) {
  Session s(R"(
    fun a(x: int): int = x + 1
    fun b(x: int): int = a(x) * 2
    fun use(v: seq(int)): seq(int) = [x <- v : b(x)]
  )");
  std::set<std::string> extensions;
  for (const auto& f : s.compiled().vec.functions) {
    if (!f.extension_of.empty()) extensions.insert(f.name);
  }
  // b^1 is required; a is called inside b at depth 1 => a^1 too.
  EXPECT_TRUE(extensions.contains("b^1"));
  EXPECT_TRUE(extensions.contains("a^1"));
  EXPECT_EQ(extensions.size(), 2u);
}

// Filtered-iterator desugaring (Section 2's definition).
TEST(Rules, FilterDesugarsToRestrict) {
  std::string text =
      flat_text("fun f(v: seq(int)): seq(int) = [x <- v | x > 2 : x * x]");
  EXPECT_NE(text.find("restrict("), std::string::npos) << text;
  EXPECT_NE(text.find("gt^1("), std::string::npos) << text;
}

// Depth annotation correctness: three nested iterators produce a depth-3
// application in the pre-T1 form.
TEST(Rules, DepthsAccumulatePerIterator) {
  xform::PipelineOptions keep;
  keep.shared_row_gather = false;  // keep the raw R2 output readable
  Session s(
      "fun f(n: int): seq(seq(seq(int))) = "
      "[a <- [1 .. n] : [b <- [1 .. a] : [c <- [1 .. b] : a * c]]]",
      {}, keep);
  std::string text = to_text(*s.compiled().flat.find("f"));
  EXPECT_NE(text.find("mult^3("), std::string::npos) << text;
  EXPECT_NE(text.find("range1^2("), std::string::npos) << text;
}

TEST(Rules, DerivationTraceRecordsRuleFirings) {
  xform::PipelineOptions opts;
  opts.collect_trace = true;
  Session s(
      "fun f(v: seq(int)): seq(int) = [x <- v : if x > 0 then x else -x]",
      {}, opts);
  const auto& d = s.compiled().derivation;
  ASSERT_FALSE(d.empty());
  auto has_prefix = [&](const char* rule) {
    for (const std::string& line : d) {
      if (line.rfind(rule, 0) == 0) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_prefix("{R2a}"));
  EXPECT_TRUE(has_prefix("{R2c}"));
  EXPECT_TRUE(has_prefix("{R2d}"));
  EXPECT_TRUE(has_prefix("{R2e}"));
}

TEST(Rules, TraceOffByDefault) {
  Session s("fun f(x: int): int = x");
  EXPECT_TRUE(s.compiled().derivation.empty());
}

}  // namespace
}  // namespace proteus::xform
