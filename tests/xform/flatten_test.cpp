// Tests for iterator elimination (rules R2a–R2f): structural properties of
// the flattened form plus semantic preservation via the interpreter's
// generic depth-extension oracle.
#include <gtest/gtest.h>

#include "core/proteus.hpp"
#include "interp/interp.hpp"
#include "lang/lang.hpp"
#include "xform/xform.hpp"

namespace proteus::xform {
namespace {

using namespace lang;

/// True when the expression contains no Iterator node.
bool iterator_free(const ExprPtr& e) {
  if (e == nullptr) return true;
  return std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, Iterator>) {
          return false;
        } else if constexpr (std::is_same_v<T, Let>) {
          return iterator_free(node.init) && iterator_free(node.body);
        } else if constexpr (std::is_same_v<T, If>) {
          return iterator_free(node.cond) && iterator_free(node.then_expr) &&
                 iterator_free(node.else_expr);
        } else if constexpr (std::is_same_v<T, PrimCall> ||
                             std::is_same_v<T, FunCall>) {
          for (const auto& a : node.args) {
            if (!iterator_free(a)) return false;
          }
          return true;
        } else if constexpr (std::is_same_v<T, IndirectCall>) {
          if (!iterator_free(node.fn)) return false;
          for (const auto& a : node.args) {
            if (!iterator_free(a)) return false;
          }
          return true;
        } else if constexpr (std::is_same_v<T, TupleExpr> ||
                             std::is_same_v<T, SeqExpr>) {
          for (const auto& a : node.elems) {
            if (!iterator_free(a)) return false;
          }
          return true;
        } else if constexpr (std::is_same_v<T, TupleGet>) {
          return iterator_free(node.tuple);
        } else {
          return true;
        }
      },
      e->node);
}

struct FlatCase {
  Program checked;
  Program canonical;
  FlattenedProgram flat;
  ExprPtr entry_checked;
  ExprPtr entry_flat;
};

FlatCase flatten_case(std::string_view program,
                      std::string_view expr = {}) {
  FlatCase out;
  out.checked = typecheck(parse_program(program));
  NameGen names;
  if (!expr.empty()) {
    out.entry_checked =
        typecheck_expression(out.checked, parse_expression(expr));
    out.canonical = canonicalize(out.checked, names);
    ExprPtr entry_canon = canonicalize(out.entry_checked, names);
    out.entry_flat = flatten_expression(out.canonical, entry_canon, names,
                                        &out.flat);
  } else {
    out.canonical = canonicalize(out.checked, names);
    out.flat = flatten(out.canonical, names);
  }
  return out;
}

TEST(Flatten, RemovesEveryIterator) {
  FlatCase c = flatten_case(R"(
    fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]
    fun nested(n: int): seq(seq(seq(int))) =
      [i <- [1 .. n] : [j <- [1 .. i] : [k <- [1 .. j] : k]]]
  )",
                            "[k <- [1 .. 5] : sqs(k)]");
  for (const FunDef& f : c.flat.program.functions) {
    EXPECT_TRUE(iterator_free(f.body)) << f.name;
  }
  EXPECT_TRUE(iterator_free(c.entry_flat));
}

TEST(Flatten, GeneratesRequestedExtensions) {
  FlatCase c = flatten_case(
      "fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]",
      "[k <- [1 .. 5] : sqs(k)]");
  const FunDef* ext = c.flat.program.find("sqs^1");
  ASSERT_NE(ext, nullptr);
  EXPECT_EQ(ext->extension_of, "sqs");
  EXPECT_EQ(ext->extension_depth, 1);
  ASSERT_EQ(ext->params.size(), 1u);
  EXPECT_TRUE(equal(ext->params[0].type, Type::seq(Type::int_())));
  EXPECT_TRUE(equal(ext->result, Type::seq(Type::seq(Type::int_()))));
}

TEST(Flatten, NoExtensionWhenNotNeeded) {
  FlatCase c = flatten_case(
      "fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]", "sqs(5)");
  EXPECT_EQ(c.flat.program.find("sqs^1"), nullptr);
}

TEST(Flatten, FunctionValuesGetExtensions) {
  // add2 is only used as a *value*; its depth-1 extension must still exist
  // (static property of the program).
  FlatCase c = flatten_case(R"(
    fun add2(a: int, b: int): int = a + b
    fun fold(f: (int,int) -> int, v: seq(int)): int =
      if #v == 1 then v[1] else f(fold(f, [i <- [1 .. #v - 1] : v[i]]), v[#v])
    fun use(m: seq(seq(int))): seq(int) = [row <- m : fold(add2, row)]
  )");
  EXPECT_NE(c.flat.program.find("add2^1"), nullptr);
  EXPECT_NE(c.flat.program.find("fold^1"), nullptr);
}

TEST(Flatten, InvariantSubexpressionsHoisted) {
  // The whole `sum(w)` is invariant w.r.t. the iterator and must appear at
  // depth 0 (no sum^... extension, no replication).
  FlatCase c = flatten_case(
      "fun f(v: seq(int), w: seq(int)): seq(int) = [x <- v : x + sum(w)]");
  std::string text = to_text(*c.flat.program.find("f"));
  EXPECT_NE(text.find("sum(w)"), std::string::npos) << text;
  EXPECT_EQ(text.find("sum^1"), std::string::npos) << text;
}

TEST(Flatten, SharedSourceIndexingStaysBroadcast) {
  // Section 4.5: v is a fixed source; seq_index^1 must receive it
  // unreplicated (lifted flag 0), with no dist of v in the output.
  FlatCase c = flatten_case(
      "fun f(v: seq(int)): seq(int) = [i <- [1 .. #v] : v[i]]");
  std::string text = to_text(*c.flat.program.find("f"));
  EXPECT_NE(text.find("seq_index^1(v, i)"), std::string::npos) << text;
  EXPECT_EQ(text.find("dist(v"), std::string::npos) << text;
}

TEST(Flatten, AblationReplicatesSequenceArgs) {
  FlattenOptions naive;
  naive.broadcast_invariant_seq_args = false;
  Program checked = typecheck(parse_program(
      "fun f(v: seq(int)): seq(int) = [i <- [1 .. #v] : v[i]]"));
  NameGen names;
  Program canon = canonicalize(checked, names);
  FlattenedProgram flat = flatten(canon, names, naive);
  std::string text = to_text(*flat.program.find("f"));
  // v must now be replicated (a dist appears feeding seq_index^1).
  EXPECT_NE(text.find("dist(v"), std::string::npos) << text;
}

TEST(Flatten, ConditionalUsesMaskRestrictCombine) {
  FlatCase c = flatten_case(
      "fun f(v: seq(int)): seq(int) = [x <- v : if x > 0 then x else -x]");
  std::string text = to_text(*c.flat.program.find("f"));
  EXPECT_NE(text.find("restrict("), std::string::npos) << text;
  EXPECT_NE(text.find("combine("), std::string::npos) << text;
  EXPECT_NE(text.find("any_true("), std::string::npos) << text;
  EXPECT_NE(text.find("empty_frame"), std::string::npos) << text;
}

TEST(Flatten, UniformConditionStaysScalar) {
  // b is invariant: the conditional must remain an ordinary if on a
  // scalar bool, not a mask/combine.
  FlatCase c = flatten_case(
      "fun f(v: seq(int), b: bool): seq(int) = "
      "[x <- v : if b then x else -x]");
  std::string text = to_text(*c.flat.program.find("f"));
  EXPECT_EQ(text.find("combine("), std::string::npos) << text;
  EXPECT_NE(text.find("if b then"), std::string::npos) << text;
}

/// Differential property: flattened programs (pre-T1!) evaluated with the
/// interpreter's generic depth-extension semantics match the source
/// program. This isolates R2 from T1 and from the vector kernels.
struct DiffCase {
  const char* name;
  const char* program;
  const char* fn;
  const char* arg;
};

class FlattenSemantics : public ::testing::TestWithParam<DiffCase> {};

TEST_P(FlattenSemantics, InterpreterOracle) {
  const DiffCase& p = GetParam();
  Program checked = typecheck(parse_program(p.program));
  NameGen names;
  Program canon = canonicalize(checked, names);
  FlattenedProgram flat = flatten(canon, names);

  interp::Interpreter ref(checked);
  interp::Interpreter oracle(flat.program);
  interp::ValueList args{parse_value(p.arg)};
  EXPECT_EQ(ref.call_function(p.fn, args),
            oracle.call_function(p.fn, args))
      << p.name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FlattenSemantics,
    ::testing::Values(
        DiffCase{"sqs", "fun f(n: int): seq(int) = [i <- [1 .. n] : i * i]",
                 "f", "7"},
        DiffCase{"nested",
                 "fun f(n: int): seq(seq(int)) = "
                 "[i <- [1 .. n] : [j <- [1 .. i] : i * 10 + j]]",
                 "f", "5"},
        DiffCase{"filter",
                 "fun f(v: seq(int)): seq(int) = [x <- v | x > 2 : x * x]",
                 "f", "[3,1,4,1,5]"},
        DiffCase{"conditional",
                 "fun f(v: seq(int)): seq(int) = "
                 "[x <- v : if x mod 2 == 0 then x / 2 else 3 * x + 1]",
                 "f", "[1,2,3,4,5,6,7,8]"},
        DiffCase{"gather",
                 "fun f(v: seq(int)): seq(int) = [i <- [1 .. #v] : v[#v + 1 - i]]",
                 "f", "[5,6,7,8]"},
        DiffCase{"rowsums",
                 "fun f(m: seq(seq(int))): seq(int) = [row <- m : sum(row)]",
                 "f", "[[1,2],([] : seq(int)),[3,4,5]]"}),
    [](const ::testing::TestParamInfo<DiffCase>& pinfo) {
      return pinfo.param.name;
    });

}  // namespace
}  // namespace proteus::xform
