// Kernel-level tests for the vector-model primitives (depth 0 and their
// depth-1 parallel extensions).
#include <gtest/gtest.h>

#include "core/proteus.hpp"
#include "exec/prims.hpp"
#include "lang/parser.hpp"
#include "seq/build.hpp"

namespace proteus::exec {
namespace {

using lang::Prim;
using lang::Type;

/// Builds a VValue from a P literal with the given type text.
VValue vval(std::string_view literal, std::string_view type_text) {
  return from_boxed(parse_value(literal), lang::parse_type(type_text));
}

/// Renders a VValue through its boxed form.
std::string text(const VValue& v, std::string_view type_text) {
  return interp::to_text(to_boxed(v, lang::parse_type(type_text)));
}

TEST(Prim0, Scalars) {
  EXPECT_EQ(apply_prim0(Prim::kAdd, {VValue::ints(2), VValue::ints(3)})
                .as_int(),
            5);
  EXPECT_EQ(apply_prim0(Prim::kDiv, {VValue::reals(1.0), VValue::reals(4.0)})
                .as_real(),
            0.25);
  EXPECT_TRUE(apply_prim0(Prim::kLt, {VValue::ints(1), VValue::ints(2)})
                  .as_bool());
  EXPECT_TRUE(apply_prim0(Prim::kAnd, {VValue::bools(true),
                                       VValue::bools(true)})
                  .as_bool());
  EXPECT_THROW((void)apply_prim0(Prim::kDiv, {VValue::ints(1), VValue::ints(0)}),
               EvalError);
}

TEST(Prim0, SequenceOps) {
  VValue v = vval("[3,1,2]", "seq(int)");
  EXPECT_EQ(apply_prim0(Prim::kLength, {v}).as_int(), 3);
  EXPECT_EQ(apply_prim0(Prim::kSum, {v}).as_int(), 6);
  EXPECT_EQ(apply_prim0(Prim::kMaxVal, {v}).as_int(), 3);
  EXPECT_EQ(apply_prim0(Prim::kMinVal, {v}).as_int(), 1);
  EXPECT_EQ(apply_prim0(Prim::kSeqIndex, {v, VValue::ints(2)}).as_int(), 1);
  EXPECT_THROW((void)apply_prim0(Prim::kSeqIndex, {v, VValue::ints(0)}), EvalError);
  EXPECT_EQ(text(apply_prim0(Prim::kRange1, {VValue::ints(3)}), "seq(int)"),
            "[1,2,3]");
  EXPECT_EQ(text(apply_prim0(Prim::kRange,
                             {VValue::ints(4), VValue::ints(6)}),
                 "seq(int)"),
            "[4,5,6]");
  EXPECT_EQ(text(apply_prim0(Prim::kSeqUpdate,
                             {v, VValue::ints(1), VValue::ints(9)}),
                 "seq(int)"),
            "[9,1,2]");
}

TEST(Prim0, RestrictCombineDist) {
  VValue v = vval("[1,2,3,4]", "seq(int)");
  VValue m = vval("[true,false,true,false]", "seq(bool)");
  VValue r = apply_prim0(Prim::kRestrict, {v, m});
  EXPECT_EQ(text(r, "seq(int)"), "[1,3]");
  VValue f = vval("[2,4]", "seq(int)");
  EXPECT_EQ(text(apply_prim0(Prim::kCombine, {m, r, f}), "seq(int)"),
            "[1,2,3,4]");
  EXPECT_EQ(text(apply_prim0(Prim::kDist, {VValue::ints(7), VValue::ints(3)}),
                 "seq(int)"),
            "[7,7,7]");
  // dist of a sequence element
  EXPECT_EQ(text(apply_prim0(Prim::kDist,
                             {vval("[1,2]", "seq(int)"), VValue::ints(2)}),
                 "seq(seq(int))"),
            "[[1,2],[1,2]]");
}

TEST(Prim0, NestedSeqOps) {
  VValue m = vval("[[1,2],[],[3]]", "seq(seq(int))");
  EXPECT_EQ(text(apply_prim0(Prim::kFlatten, {m}), "seq(int)"), "[1,2,3]");
  EXPECT_EQ(text(apply_prim0(Prim::kSeqIndex, {m, VValue::ints(3)}),
                 "seq(int)"),
            "[3]");
  VValue w = vval("[[9]]", "seq(seq(int))");
  EXPECT_EQ(text(apply_prim0(Prim::kConcat, {m, w}), "seq(seq(int))"),
            "[[1,2],[],[3],[9]]");
}

TEST(Prim0, ExtractInsertRoundTrip) {
  VValue m = vval("[[1,2],[],[3]]", "seq(seq(int))");
  VValue flat = apply_prim0(Prim::kExtract, {m, VValue::ints(1)});
  EXPECT_EQ(text(flat, "seq(int)"), "[1,2,3]");
  VValue back = apply_prim0(Prim::kInsert, {flat, m, VValue::ints(1)});
  EXPECT_EQ(text(back, "seq(seq(int))"), "[[1,2],[],[3]]");
}

// --- depth-1 extensions -------------------------------------------------------

TEST(Prim1, ElementwiseFrames) {
  VValue a = vval("[1,2,3]", "seq(int)");
  VValue b = vval("[10,20,30]", "seq(int)");
  EXPECT_EQ(text(apply_prim1(Prim::kAdd, {a, b}, {}), "seq(int)"),
            "[11,22,33]");
  EXPECT_EQ(text(apply_prim1(Prim::kLt, {a, b}, {}), "seq(bool)"),
            "[true,true,true]");
}

TEST(Prim1, BroadcastScalarArgument) {
  VValue a = vval("[1,2,3]", "seq(int)");
  EXPECT_EQ(text(apply_prim1(Prim::kMul, {a, VValue::ints(5)}, {1, 0}),
                 "seq(int)"),
            "[5,10,15]");
  EXPECT_EQ(text(apply_prim1(Prim::kSub, {VValue::ints(10), a}, {0, 1}),
                 "seq(int)"),
            "[9,8,7]");
}

TEST(Prim1, Range1IsSegmentedIota) {
  VValue ns = vval("[3,0,2]", "seq(int)");
  EXPECT_EQ(text(apply_prim1(Prim::kRange1, {ns}, {}), "seq(seq(int))"),
            "[[1,2,3],[],[1,2]]");
}

TEST(Prim1, RangeFrames) {
  VValue lo = vval("[1,5,3]", "seq(int)");
  VValue hi = vval("[3,4,3]", "seq(int)");
  EXPECT_EQ(text(apply_prim1(Prim::kRange, {lo, hi}, {}), "seq(seq(int))"),
            "[[1,2,3],[],[3]]");
}

TEST(Prim1, DistFrames) {
  VValue c = vval("[3,4,5]", "seq(int)");
  VValue r = vval("[3,2,1]", "seq(int)");
  // the paper's example: dist([3,4,5],[3,2,1]) = [[3,3,3],[4,4],[5]]
  EXPECT_EQ(text(apply_prim1(Prim::kDist, {c, r}, {}), "seq(seq(int))"),
            "[[3,3,3],[4,4],[5]]");
}

TEST(Prim1, SeqIndexSharedSource) {
  VValue src = vval("[10,20,30]", "seq(int)");
  VValue idx = vval("[3,1,3,2]", "seq(int)");
  EXPECT_EQ(text(apply_prim1(Prim::kSeqIndex, {src, idx}, {0, 1}),
                 "seq(int)"),
            "[30,10,30,20]");
  // the ablation path (replication) must agree
  PrimOptions naive;
  naive.shared_source_gather = false;
  EXPECT_EQ(text(apply_prim1(Prim::kSeqIndex, {src, idx}, {0, 1}, naive),
                 "seq(int)"),
            "[30,10,30,20]");
}

TEST(Prim1, SeqIndexFrameSource) {
  VValue src = vval("[[1,2],[3,4,5]]", "seq(seq(int))");
  VValue idx = vval("[2,3]", "seq(int)");
  EXPECT_EQ(text(apply_prim1(Prim::kSeqIndex, {src, idx}, {1, 1}),
                 "seq(int)"),
            "[2,5]");
  VValue bad = vval("[2,4]", "seq(int)");
  EXPECT_THROW((void)apply_prim1(Prim::kSeqIndex, {src, bad}, {1, 1}), EvalError);
}

TEST(Prim1, SeqIndexInner) {
  // shared-row gather: result[s] = [v[s][i] : i in idx[s]]
  VValue v = vval("[[10,20,30],[40,50]]", "seq(seq(int))");
  VValue idx = vval("[[3,1],[2,2,1]]", "seq(seq(int))");
  EXPECT_EQ(text(apply_prim1(Prim::kSeqIndexInner, {v, idx}, {1, 1}),
                 "seq(seq(int))"),
            "[[30,10],[50,50,40]]");
  VValue bad = vval("[[4],[1]]", "seq(seq(int))");
  EXPECT_THROW((void)apply_prim1(Prim::kSeqIndexInner, {v, bad}, {1, 1}),
               EvalError);
}

TEST(Prim0, SeqIndexInner) {
  VValue v = vval("[7,8,9]", "seq(int)");
  VValue idx = vval("[3,3,1]", "seq(int)");
  EXPECT_EQ(text(apply_prim0(Prim::kSeqIndexInner, {v, idx}), "seq(int)"),
            "[9,9,7]");
  EXPECT_THROW((void)apply_prim0(Prim::kSeqIndexInner,
                                 {v, vval("[0]", "seq(int)")}),
               EvalError);
}

TEST(Prim1, LengthFrames) {
  VValue v = vval("[[1],[],[2,3]]", "seq(seq(int))");
  EXPECT_EQ(text(apply_prim1(Prim::kLength, {v}, {}), "seq(int)"), "[1,0,2]");
}

TEST(Prim1, RestrictPerSegment) {
  VValue v = vval("[[1,2,3],[4,5]]", "seq(seq(int))");
  VValue m = vval("[[true,false,true],[false,false]]", "seq(seq(bool))");
  EXPECT_EQ(text(apply_prim1(Prim::kRestrict, {v, m}, {}), "seq(seq(int))"),
            "[[1,3],[]]");
}

TEST(Prim1, CombinePerSegment) {
  VValue m = vval("[[true,false],[false,true,true]]", "seq(seq(bool))");
  VValue t = vval("[[1],[2,3]]", "seq(seq(int))");
  VValue f = vval("[[9],[8]]", "seq(seq(int))");
  EXPECT_EQ(text(apply_prim1(Prim::kCombine, {m, t, f}, {}),
                 "seq(seq(int))"),
            "[[1,9],[8,2,3]]");
}

TEST(Prim1, UpdatePerSegment) {
  VValue s = vval("[[1,2],[3,4,5]]", "seq(seq(int))");
  VValue i = vval("[2,1]", "seq(int)");
  VValue x = vval("[9,8]", "seq(int)");
  EXPECT_EQ(text(apply_prim1(Prim::kSeqUpdate, {s, i, x}, {}),
                 "seq(seq(int))"),
            "[[1,9],[8,4,5]]");
}

TEST(Prim1, ConcatPerSegment) {
  VValue a = vval("[[1],[],[2,3]]", "seq(seq(int))");
  VValue b = vval("[[9],[8],[7]]", "seq(seq(int))");
  EXPECT_EQ(text(apply_prim1(Prim::kConcat, {a, b}, {}), "seq(seq(int))"),
            "[[1,9],[8],[2,3,7]]");
}

TEST(Prim1, ReversePerSegment) {
  VValue v = vval("[[1,2,3],[],[4,5]]", "seq(seq(int))");
  EXPECT_EQ(text(apply_prim1(Prim::kReverse, {v}, {}), "seq(seq(int))"),
            "[[3,2,1],[],[5,4]]");
  // nested elements reverse as whole units
  VValue d = vval("[[[1],[2,3]]]", "seq(seq(seq(int)))");
  EXPECT_EQ(text(apply_prim1(Prim::kReverse, {d}, {}), "seq(seq(seq(int)))"),
            "[[[2,3],[1]]]");
}

TEST(Prim1, ZipPerSegment) {
  VValue a = vval("[[1,2],[3]]", "seq(seq(int))");
  VValue b = vval("[[8,9],[7]]", "seq(seq(int))");
  EXPECT_EQ(text(apply_prim1(Prim::kZip, {a, b}, {}),
                 "seq(seq((int, int)))"),
            "[[(1,8),(2,9)],[(3,7)]]");
  VValue bad = vval("[[8],[7,9]]", "seq(seq(int))");
  EXPECT_THROW((void)apply_prim1(Prim::kZip, {a, bad}, {}), EvalError);
}

TEST(Prim1, FlattenPerSegment) {
  VValue v = vval("[[[1],[2,3]],[[4,5],[]]]", "seq(seq(seq(int)))");
  EXPECT_EQ(text(apply_prim1(Prim::kFlatten, {v}, {}), "seq(seq(int))"),
            "[[1,2,3],[4,5]]");
}

TEST(Prim1, Reductions) {
  VValue v = vval("[[1,2],[],[3,4,5]]", "seq(seq(int))");
  EXPECT_EQ(text(apply_prim1(Prim::kSum, {v}, {}), "seq(int)"), "[3,0,12]");
  VValue nz = vval("[[1,9],[3]]", "seq(seq(int))");
  EXPECT_EQ(text(apply_prim1(Prim::kMaxVal, {nz}, {}), "seq(int)"), "[9,3]");
  EXPECT_EQ(text(apply_prim1(Prim::kMinVal, {nz}, {}), "seq(int)"), "[1,3]");
  EXPECT_THROW((void)apply_prim1(Prim::kMaxVal, {v}, {}), EvalError);
  VValue bs = vval("[[true,false],[false]]", "seq(seq(bool))");
  EXPECT_EQ(text(apply_prim1(Prim::kAnyV, {bs}, {}), "seq(bool)"),
            "[true,false]");
  EXPECT_EQ(text(apply_prim1(Prim::kAllV, {bs}, {}), "seq(bool)"),
            "[false,false]");
}

TEST(Prim1, SeqCons) {
  VValue a = vval("[1,2]", "seq(int)");
  VValue b = vval("[8,9]", "seq(int)");
  EXPECT_EQ(text(seq_cons1({a, b}), "seq(seq(int))"), "[[1,8],[2,9]]");
}

TEST(Prim1, BroadcastMaskMaterialized) {
  // restrict^1 with a uniform mask: replicated across the frame.
  VValue v = vval("[[1,2],[3,4]]", "seq(seq(int))");
  VValue m = vval("[true,false]", "seq(bool)");
  EXPECT_EQ(text(apply_prim1(Prim::kRestrict, {v, m}, {1, 0}),
                 "seq(seq(int))"),
            "[[1],[3]]");
}

TEST(Prim1, BroadcastDistValue) {
  // dist^1 with a uniform value and per-slot counts.
  VValue counts = vval("[2,0,3]", "seq(int)");
  EXPECT_EQ(text(apply_prim1(Prim::kDist, {VValue::ints(7), counts}, {0, 1}),
                 "seq(seq(int))"),
            "[[7,7],[],[7,7,7]]");
  // ... and a uniform sequence value
  VValue row = vval("[1,2]", "seq(int)");
  EXPECT_EQ(text(apply_prim1(Prim::kDist, {row, vval("[2,1]", "seq(int)")},
                             {0, 1}),
                 "seq(seq(seq(int)))"),
            "[[[1,2],[1,2]],[[1,2]]]");
}

TEST(Prim1, BroadcastConcatSide) {
  VValue a = vval("[[1],[2,3]]", "seq(seq(int))");
  VValue suffix = vval("[9]", "seq(int)");
  EXPECT_EQ(text(apply_prim1(Prim::kConcat, {a, suffix}, {1, 0}),
                 "seq(seq(int))"),
            "[[1,9],[2,3,9]]");
}

TEST(Prim1, BroadcastUpdateValue) {
  VValue s = vval("[[1,2],[3,4]]", "seq(seq(int))");
  VValue i = vval("[1,2]", "seq(int)");
  EXPECT_EQ(text(apply_prim1(Prim::kSeqUpdate, {s, i, VValue::ints(0)},
                             {1, 1, 0}),
                 "seq(seq(int))"),
            "[[0,2],[3,0]]");
}

TEST(Prim1, BroadcastSumArgument) {
  // sum^1 of a uniform sequence: same total for every slot. The frame
  // length comes from... no frame argument exists, so this must throw.
  EXPECT_THROW((void)apply_prim1(Prim::kSum,
                                 {vval("[1,2]", "seq(int)")}, {0}),
               EvalError);
}

TEST(Prim1, NoFrameArgumentThrows) {
  EXPECT_THROW((void)apply_prim1(Prim::kAdd, {VValue::ints(1), VValue::ints(2)},
                           {0, 0}),
               EvalError);
}

TEST(Helpers, EmptyFrameValue) {
  VValue mask = vval("[[true,false],[true]]", "seq(seq(bool))");
  VValue e = empty_frame_value(mask, 2,
                               lang::parse_type("seq(seq(int))"));
  EXPECT_EQ(text(e, "seq(seq(int))"), "[[],[]]");
  VValue flat_mask = vval("[true,true]", "seq(bool)");
  VValue e1 = empty_frame_value(flat_mask, 1, lang::parse_type("seq(int)"));
  EXPECT_EQ(text(e1, "seq(int)"), "[]");
}

TEST(Helpers, AnyTrueFrame) {
  EXPECT_TRUE(any_true_frame(vval("[[false],[true]]", "seq(seq(bool))")));
  EXPECT_FALSE(any_true_frame(vval("[false,false]", "seq(bool)")));
  EXPECT_FALSE(any_true_frame(vval("([] : seq(bool))", "seq(bool)")));
}

TEST(Helpers, Materialize) {
  EXPECT_EQ(text(VValue::seq(materialize(VValue::ints(7), 3)), "seq(int)"),
            "[7,7,7]");
  VValue s = vval("[1,2]", "seq(int)");
  EXPECT_EQ(text(VValue::seq(materialize(s, 2)), "seq(seq(int))"),
            "[[1,2],[1,2]]");
  VValue t = VValue::tuple({VValue::ints(1), VValue::bools(true)});
  EXPECT_EQ(text(VValue::seq(materialize(t, 2)), "seq((int, bool))"),
            "[(1,true),(1,true)]");
  EXPECT_THROW((void)materialize(VValue::fun("f"), 2), EvalError);
}

TEST(Helpers, ElementValue) {
  seq::Array a = seq::from_ints2({{1, 2}, {3}});
  VValue e = element_value(a, 0);
  EXPECT_EQ(text(e, "seq(int)"), "[1,2]");
  EXPECT_THROW((void)element_value(a, 2), EvalError);
}

}  // namespace
}  // namespace proteus::exec
