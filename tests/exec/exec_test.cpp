// Tests for the vector-model executor on whole V programs.
#include <gtest/gtest.h>

#include "core/proteus.hpp"
#include "testing.hpp"
#include "exec/exec.hpp"
#include "lang/parser.hpp"
#include "lang/typecheck.hpp"
#include "lang/printer.hpp"

namespace proteus::exec {
namespace {

TEST(Exec, RunsTransformedFunctions) {
  Session s("fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]");
  EXPECT_EQ(s.run_vector("sqs", {parse_value("6")}),
            parse_value("[1,4,9,16,25,36]"));
  EXPECT_EQ(s.run_vector("sqs", {parse_value("0")}),
            parse_value("([] : seq(int))"));
}

TEST(Exec, RunsGeneratedExtensionsDirectly) {
  Session s("fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]",
            "[k <- [1 .. 3] : sqs(k)]");
  Executor ex(s.compiled().vec);
  VValue arg = from_boxed(parse_value("[2, 4]"),
                          lang::parse_type("seq(int)"));
  VValue out = ex.call_function("sqs^1", {arg});
  EXPECT_EQ(to_boxed(out, lang::parse_type("seq(seq(int))")),
            parse_value("[[1,4],[1,4,9,16]]"));
}

TEST(Exec, RejectsUntransformedInput) {
  lang::Program checked = lang::typecheck(lang::parse_program(
      "fun f(n: int): seq(int) = [i <- [1 .. n] : i]"));
  Executor ex(checked);
  EXPECT_THROW((void)ex.call_function("f", {VValue::ints(3)}), EvalError);
}

TEST(Exec, UnknownFunctionThrows) {
  Session s("fun f(x: int): int = x");
  Executor ex(s.compiled().vec);
  EXPECT_THROW((void)ex.call_function("nosuch", {}), EvalError);
}

TEST(Exec, IndirectCallsResolveExtensions) {
  Session s(R"(
    fun inc(x: int): int = x + 1
    fun mapit(f: (int) -> int, v: seq(int)): seq(int) = [x <- v : f(x)]
  )");
  EXPECT_EQ(s.run_vector("mapit",
                         {interp::Value::fun("inc"), parse_value("[1,2,3]")}),
            parse_value("[2,3,4]"));
}

TEST(Exec, CallDepthLimit) {
  Session s("fun loop(n: int): int = loop(n + 1)");
  try {
    (void)s.run_vector("loop", {parse_value("0")});
    FAIL() << "expected a depth trap";
  } catch (const rt::RuntimeTrap& e) {
    EXPECT_EQ(e.trap(), rt::Trap::kDepth);
  }
}

TEST(Exec, StatsCountPrimsAndCalls) {
  Session s("fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]");
  Executor ex(s.compiled().vec);
  ex.reset_stats();
  (void)ex.call_function("sqs", {VValue::ints(100)});
  EXPECT_EQ(ex.stats().calls, 1u);
  EXPECT_GE(ex.stats().prim_applications, 2u);
}

TEST(Exec, InstructionMixRecorded) {
  Session s("fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]");
  Executor ex(s.compiled().vec);
  (void)ex.call_function("sqs", {VValue::ints(10)});
  EXPECT_GE(ex.stats().per_prim[lang::Prim::kRange1], 1u);
  EXPECT_GE(ex.stats().per_prim[lang::Prim::kMul], 1u);
  EXPECT_EQ(ex.stats().per_prim[lang::Prim::kCombine], 0u);
}

TEST(Exec, TupleFlow) {
  Session s(R"(
    fun swap(p: (int, int)): (int, int) = (p.2, p.1)
    fun swapall(v: seq((int, int))): seq((int, int)) = [p <- v : swap(p)]
  )");
  EXPECT_EQ(s.run_vector("swapall", {parse_value("[(1,2),(3,4)]")}),
            parse_value("[(2,1),(4,3)]"));
}

TEST(Exec, EmptyLiteralWithType) {
  Session s("fun f(n: int): seq(int) = ([] : seq(int)) ++ [n]");
  EXPECT_EQ(s.run_vector("f", {parse_value("5")}), parse_value("[5]"));
}

TEST(Exec, SeqLiteralBroadcastAndFrame) {
  Session s("fun f(v: seq(int)): seq(seq(int)) = [x <- v : [x, x * 2, 7]]");
  EXPECT_EQ(s.run_vector("f", {parse_value("[1,5]")}),
            parse_value("[[1,2,7],[5,10,7]]"));
}

TEST(Exec, Depth0PrimitiveSurface) {
  // Whole-value (depth-0) primitive paths through real programs.
  Session s(R"(
    fun f1(v: seq(int)): int = minval(v) + maxval(v)
    fun f2(v: seq(int), m: seq(bool)): seq(int) =
      combine(m, restrict(v, m), restrict(v, [b <- m : not b]))
    fun f3(v: seq(int)): seq(int) = reverse(v) ++ v
    fun f4(s: seq(seq(int))): seq(int) = flatten(s) ++ s[1]
    fun f5(x: real): real = sqrt(x * x)
    fun f6(v: seq(bool)): (bool, bool) = (any(v), all(v))
  )");
  using testing::expect_both;
  using testing::val;
  expect_both(s, "f1", {val("[4,9,2]")}, "11");
  expect_both(s, "f2", {val("[1,2,3,4]"), val("[true,false,true,false]")},
              "[1,2,3,4]");
  expect_both(s, "f3", {val("[1,2]")}, "[2,1,1,2]");
  expect_both(s, "f4", {val("[[5],[6,7]]")}, "[5,6,7,5]");
  expect_both(s, "f5", {val("-3.0")}, "3.0");
  expect_both(s, "f6", {val("[true,false]")}, "(true,false)");
}

TEST(Exec, VValueAccessorsThrowOnWrongKind) {
  EXPECT_THROW((void)VValue::ints(1).as_seq(), EvalError);
  EXPECT_THROW((void)VValue::ints(1).as_bool(), EvalError);
  EXPECT_THROW((void)VValue::fun("f").as_int(), EvalError);
  EXPECT_THROW((void)VValue::ints(1).fun_name(), EvalError);
  EXPECT_THROW((void)VValue::ints(1).as_tuple(), EvalError);
  EXPECT_THROW((void)VValue::ints(1).as_real(), EvalError);
}

TEST(Exec, EmptyArrayOfRejectsFunctionTypes) {
  EXPECT_THROW((void)empty_array_of(lang::parse_type("(int) -> int")), EvalError);
}

}  // namespace
}  // namespace proteus::exec
