// The shape/depth analyzer: a corpus of deliberately broken V-IR trees
// asserting each diagnostic code fires, plus clean verdicts over every
// pipeline output in the repository.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "analysis/shape.hpp"
#include "core/proteus.hpp"

namespace proteus::analysis {
namespace {

using namespace lang;

ExprPtr lit(vl::Int v) { return make_expr(IntLit{v}, Type::int_()); }

ExprPtr var(const char* name, TypePtr t) {
  return make_expr(VarRef{name, false}, std::move(t));
}

Report check(const ExprPtr& e, const std::vector<std::string>& scope = {}) {
  Program empty;
  return analyze_expression(empty, e, scope);
}

// --- structural corpus (V0xx) ------------------------------------------------

TEST(ShapeAnalysis, V001_MissingTypeAnnotation) {
  EXPECT_TRUE(check(make_expr(IntLit{1})).has("V001"));
}

TEST(ShapeAnalysis, V002_OutOfScopeVariable) {
  ExprPtr stray = var("ghost", Type::int_());
  EXPECT_TRUE(check(stray).has("V002"));
  EXPECT_TRUE(check(stray, {"ghost"}).ok());
}

TEST(ShapeAnalysis, V003_UnknownCallTarget) {
  EXPECT_TRUE(
      check(make_expr(FunCall{"nosuch", 0, {}, {}}, Type::int_()))
          .has("V003"));
  EXPECT_TRUE(
      check(make_expr(VarRef{"nosuch", true},
                      Type::fun({Type::int_()}, Type::int_())))
          .has("V003"));
}

TEST(ShapeAnalysis, V004_NonBoolCondition) {
  ExprPtr bad = make_expr(If{lit(1), lit(2), lit(3)}, Type::int_());
  EXPECT_TRUE(check(bad).has("V004"));
}

TEST(ShapeAnalysis, V005_SurvivingSourceConstructs) {
  Session s("fun f(n: int): seq(int) = [i <- [1 .. n] : i]");
  // The *checked* (untransformed) program still has its iterator.
  EXPECT_TRUE(analyze_program(s.compiled().checked).has("V005"));
  // The transformed program does not.
  EXPECT_TRUE(analyze_program(s.compiled().vec).ok());
}

TEST(ShapeAnalysis, V006_DepthAboveOne) {
  ExprPtr v = var("v", Type::seq_n(Type::int_(), 2));
  ExprPtr deep = make_expr(PrimCall{Prim::kMul, 2, {v, v}, {1, 1}},
                           Type::seq_n(Type::int_(), 2));
  EXPECT_TRUE(check(deep, {"v"}).has("V006"));
}

TEST(ShapeAnalysis, V006_AnyTrueMustBeWholeFrame) {
  ExprPtr m = var("m", Type::seq(Type::bool_()));
  ExprPtr bad = make_expr(PrimCall{Prim::kAnyTrue, 1, {m}, {}},
                          Type::bool_());
  EXPECT_TRUE(check(bad, {"m"}).has("V006"));
}

TEST(ShapeAnalysis, V007_LiftFlagArityMismatch) {
  ExprPtr v = var("v", Type::seq(Type::int_()));
  ExprPtr bad = make_expr(PrimCall{Prim::kAdd, 1, {v, v}, {1}},
                          Type::seq(Type::int_()));
  EXPECT_TRUE(check(bad, {"v"}).has("V007"));
}

TEST(ShapeAnalysis, V008_AllBroadcastDepthOneCall) {
  ExprPtr one = lit(1);
  ExprPtr bad = make_expr(PrimCall{Prim::kAdd, 1, {one, one}, {0, 0}},
                          Type::seq(Type::int_()));
  EXPECT_TRUE(check(bad).has("V008"));
}

TEST(ShapeAnalysis, V009_EmptyFrameWithoutDepthMarker) {
  ExprPtr m = var("m", Type::seq(Type::bool_()));
  ExprPtr bad = make_expr(PrimCall{Prim::kEmptyFrame, 0, {m}, {}},
                          Type::seq(Type::int_()));
  EXPECT_TRUE(check(bad, {"m"}).has("V009"));
}

TEST(ShapeAnalysis, V010_ExtractNeedsLiteralDepth) {
  ExprPtr v = var("v", Type::seq_n(Type::int_(), 2));
  ExprPtr d = var("d", Type::int_());
  ExprPtr bad = make_expr(PrimCall{Prim::kExtract, 0, {v, d}, {}},
                          Type::seq(Type::int_()));
  EXPECT_TRUE(check(bad, {"v", "d"}).has("V010"));
}

TEST(ShapeAnalysis, V011_PrimArityMismatch) {
  ExprPtr bad =
      make_expr(PrimCall{Prim::kAdd, 0, {lit(1)}, {}}, Type::int_());
  EXPECT_TRUE(check(bad).has("V011"));
}

TEST(ShapeAnalysis, V012_UserCallArityMismatch) {
  Program p;
  p.functions.push_back(FunDef{"f",
                               {Param{"a", Type::int_()}},
                               Type::int_(),
                               lit(1),
                               {},
                               "",
                               0});
  ExprPtr bad = make_expr(FunCall{"f", 0, {}, {}}, Type::int_());
  EXPECT_TRUE(analyze_expression(p, bad).has("V012"));
}

TEST(ShapeAnalysis, V013_IndirectCallThroughNonFunction) {
  ExprPtr bad = make_expr(IndirectCall{lit(7), 0, {}, {}}, Type::int_());
  EXPECT_TRUE(check(bad).has("V013"));
}

TEST(ShapeAnalysis, V014_TupleIndexOrigin) {
  ExprPtr t = var("t", Type::tuple({Type::int_(), Type::int_()}));
  ExprPtr bad = make_expr(TupleGet{t, 0, 0}, Type::int_());
  EXPECT_TRUE(check(bad, {"t"}).has("V014"));
}

TEST(ShapeAnalysis, V015_EmptySeqLiteralWithoutElementType) {
  ExprPtr bad =
      make_expr(SeqExpr{{}, nullptr, 0}, Type::seq(Type::int_()));
  EXPECT_TRUE(check(bad).has("V015"));
}

// --- shape/depth corpus (V1xx / V2xx) ----------------------------------------

TEST(ShapeAnalysis, V101_ScalarUsedAsFrame) {
  ExprPtr k = var("k", Type::int_());
  ExprPtr v = var("v", Type::seq(Type::int_()));
  ExprPtr bad = make_expr(PrimCall{Prim::kAdd, 1, {k, v}, {1, 1}},
                          Type::seq(Type::int_()));
  EXPECT_TRUE(check(bad, {"k", "v"}).has("V101"));
}

TEST(ShapeAnalysis, V101_ExtractDeeperThanOperand) {
  ExprPtr v = var("v", Type::seq(Type::int_()));
  ExprPtr bad = make_expr(PrimCall{Prim::kExtract, 0, {v, lit(2)}, {}},
                          Type::seq(Type::int_()));
  EXPECT_TRUE(check(bad, {"v"}).has("V101"));
}

TEST(ShapeAnalysis, V102_ConcreteLengthConflict) {
  // zip of a 2-element and a 3-element literal can never run.
  ExprPtr a = make_expr(SeqExpr{{lit(1), lit(2)}, nullptr, 0},
                        Type::seq(Type::int_()));
  ExprPtr b = make_expr(SeqExpr{{lit(1), lit(2), lit(3)}, nullptr, 0},
                        Type::seq(Type::int_()));
  ExprPtr bad = make_expr(
      PrimCall{Prim::kZip, 0, {a, b}, {}},
      Type::seq(Type::tuple({Type::int_(), Type::int_()})));
  EXPECT_TRUE(check(bad).has("V102"));
}

TEST(ShapeAnalysis, V103_UnbalancedInsert) {
  // insert re-attaches 1 level of a depth-2 frame onto a depth-1 value:
  // the result must be depth 2, but the node claims depth 1.
  ExprPtr inner = var("r", Type::seq(Type::int_()));
  ExprPtr frame = var("f", Type::seq_n(Type::int_(), 2));
  ExprPtr bad = make_expr(
      PrimCall{Prim::kInsert, 0, {inner, frame, lit(1)}, {}},
      Type::seq(Type::int_()));
  EXPECT_TRUE(check(bad, {"r", "f"}).has("V103"));
}

TEST(ShapeAnalysis, V104_UnguardedFlattenedRecursion) {
  // A synthesized extension f^1 that recurses without the R2d
  // any_true/empty-frame guard can never terminate.
  Program p;
  ExprPtr m = var("m", Type::seq(Type::bool_()));
  ExprPtr rec = make_expr(FunCall{"f^1", 0, {m}, {}},
                          Type::seq(Type::int_()));
  FunDef ext{"f^1",
             {Param{"m", Type::seq(Type::bool_())}},
             Type::seq(Type::int_()),
             rec,
             {},
             "f",
             1};
  p.functions.push_back(ext);
  EXPECT_TRUE(analyze_program(p).has("V104"));

  // The same call under the guard is accepted.
  ExprPtr guard = make_expr(PrimCall{Prim::kAnyTrue, 0, {m}, {}},
                            Type::bool_());
  ExprPtr empty = make_expr(PrimCall{Prim::kEmptyFrame, 1, {m}, {}},
                            Type::seq(Type::int_()));
  Program ok;
  FunDef guarded = ext;
  guarded.body = make_expr(If{guard, rec, empty}, Type::seq(Type::int_()));
  ok.functions.push_back(guarded);
  EXPECT_TRUE(analyze_program(ok).ok());
}

TEST(ShapeAnalysis, V201_IdentitySurgeryWarnsButStaysOk) {
  ExprPtr v = var("v", Type::seq(Type::int_()));
  ExprPtr noop = make_expr(PrimCall{Prim::kExtract, 0, {v, lit(0)}, {}},
                           Type::seq(Type::int_()));
  Report r = check(noop, {"v"});
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.has("V201"));
}

// --- clean verdicts over real pipeline outputs -------------------------------

TEST(ShapeAnalysis, PipelineOutputsAnalyzeClean) {
  for (const char* program : {
           "fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]",
           R"(
             fun quicksort(v: seq(int)): seq(int) =
               if #v <= 1 then v
               else
                 let pivot = v[1 + (#v / 2)] in
                 let parts = [p <- [[x <- v | x < pivot : x],
                                    [x <- v | x > pivot : x]] :
                              quicksort(p)] in
                 parts[1] ++ [x <- v | x == pivot : x] ++ parts[2]
           )",
           R"(
             fun d4(n: int): seq(seq(seq(seq(int)))) =
               [a <- [1 .. n] : [b <- [1 .. a] : [c <- [1 .. b] :
                 [d <- [1 .. c] : a * b + c * d]]]]
           )"}) {
    SCOPED_TRACE(program);
    Session s(program);
    Report r = analyze_program(s.compiled().vec);
    EXPECT_TRUE(r.ok()) << r.to_text();
    EXPECT_EQ(r.warning_count(), 0u) << r.to_text();
  }
}

TEST(ShapeAnalysis, SampleProgramFilesAnalyzeClean) {
  for (const char* path : {"examples/programs/sort.p",
                           "examples/programs/stats.p",
                           "examples/programs/primes.p"}) {
    std::ifstream in(std::string(PROTEUS_SOURCE_DIR) + "/" + path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    SCOPED_TRACE(path);
    Session s(buf.str());
    // Compiled::analysis already holds the pipeline's own run (analyzer
    // plus bytecode verifier) — both must be error-free.
    EXPECT_TRUE(s.compiled().analysis.ok())
        << s.compiled().analysis.to_text();
  }
}

}  // namespace
}  // namespace proteus::analysis
