// The buffer-lifetime / memory-plan analyzer (analysis/lifetime.hpp):
// the SymBound domain, liveness-driven death tables, slot coloring,
// peak-resident bounds, the M3xx wasteful-pattern advisories, and the
// B217 plan/bytecode consistency check of the module loader.
#include "analysis/lifetime.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "core/proteus.hpp"
#include "kernels/vvalue.hpp"
#include "seq/build.hpp"
#include "testing.hpp"
#include "vm/module_io.hpp"
#include "vm/verify.hpp"

namespace proteus::analysis {
namespace {

using lang::Prim;
using vm::Function;
using vm::Instr;
using vm::Module;
using vm::Op;

constexpr std::uint64_t kSat = std::numeric_limits<std::uint64_t>::max();

TEST(SymBound, ArithmeticAndSaturation) {
  const SymBound a = SymBound::linear(64, 8);
  const SymBound b = SymBound::linear(100, 2);
  EXPECT_EQ(a.plus(b), SymBound::linear(164, 10));
  EXPECT_EQ(a.max(b), SymBound::linear(100, 8));
  EXPECT_EQ(a.times(3), SymBound::linear(192, 24));
  EXPECT_EQ(a.eval(10), 144u);

  EXPECT_TRUE(SymBound::top().is_top());
  EXPECT_TRUE(a.plus(SymBound::top()).is_top());
  EXPECT_TRUE(a.max(SymBound::top()).is_top());
  EXPECT_EQ(SymBound::top().eval(5), kSat);

  // Saturating, never wrapping.
  const SymBound huge = SymBound::konst(kSat - 1);
  EXPECT_EQ(huge.plus(SymBound::konst(100)).c0, kSat);
  EXPECT_EQ(huge.times(2).c0, kSat);
}

TEST(SymBound, ComposeSubstitutesTheInnerScale) {
  // (16 + 2*N) with N := (3 + 5*M)  =  22 + 10*M.
  const SymBound outer = SymBound::linear(16, 2);
  const SymBound inner = SymBound::linear(3, 5);
  EXPECT_EQ(outer.compose(inner), SymBound::linear(22, 10));
  EXPECT_TRUE(outer.compose(SymBound::top()).is_top());
}

TEST(SymBound, TextForms) {
  EXPECT_EQ(SymBound::konst(512).to_text(), "512");
  EXPECT_EQ(SymBound::linear(64, 8).to_text(), "64 + 8*N");
  EXPECT_EQ(SymBound::linear(0, 1).to_text(), "1*N");
  EXPECT_EQ(SymBound::top().to_text(), "unbounded");
}

std::shared_ptr<const Module> module_of(std::string_view program,
                                        std::string_view entry = {}) {
  Session s(program, entry);
  return s.compiled().module;
}

const FunctionPlan& plan_for(const Module& m, const MemoryPlan& plan,
                             const std::string& name) {
  const auto it = m.fn_index.find(name);
  EXPECT_NE(it, m.fn_index.end()) << name;
  return plan.functions[it->second];
}

TEST(MemoryPlan, PipelineAttachesAPlanToEveryFunction) {
  auto m = module_of("fun double(xs: seq(int)): seq(int) = [x <- xs : 2 * x]");
  ASSERT_NE(m->plan, nullptr);
  EXPECT_EQ(m->plan->functions.size(), m->functions.size());
  for (std::size_t i = 0; i < m->functions.size(); ++i) {
    // The death table is a CSR over the code: code.size()+1 offsets.
    EXPECT_EQ(m->plan->functions[i].death_off.size(),
              m->functions[i].code.size() + 1);
    EXPECT_EQ(m->plan->functions[i].reg_slot.size(),
              m->functions[i].n_regs);
  }
}

TEST(MemoryPlan, StraightLineMapHasALinearBound) {
  auto m = module_of("fun double(xs: seq(int)): seq(int) = [x <- xs : 2 * x]");
  const FunctionPlan& fp = plan_for(*m, *m->plan, "double");
  // One pass over the input: peak is affine in N, never unbounded.
  ASSERT_FALSE(fp.peak_bytes.is_top()) << fp.peak_bytes.to_text();
  EXPECT_GT(fp.peak_bytes.c1, 0u);
  EXPECT_GT(fp.static_allocs, 0u);
  ASSERT_FALSE(fp.slots.empty());
  // Every tracked flat register landed on a slot with a finite bound.
  for (const SlotPlan& s : fp.slots) {
    EXPECT_FALSE(s.elems.is_top()) << plan_to_text(fp);
  }
}

TEST(MemoryPlan, RecursionIsUnbounded) {
  auto m = module_of(R"(
    fun quicksort(v: seq(int)): seq(int) =
      if #v <= 1 then v
      else
        let pivot = v[1 + (#v / 2)] in
        let parts = [p <- [[x <- v | x < pivot : x],
                           [x <- v | x > pivot : x]] : quicksort(p)] in
        parts[1] ++ [x <- v | x == pivot : x] ++ parts[2]
  )");
  const FunctionPlan& fp = plan_for(*m, *m->plan, "quicksort");
  // The call chain's depth depends on the data: the static peak must
  // honestly say so instead of inventing a bound.
  EXPECT_TRUE(fp.peak_bytes.is_top());
}

TEST(MemoryPlan, PlanIsDeterministic) {
  auto m = module_of(
      "fun f(xs: seq(int)): int = sum([x <- xs : x * x])", "f([1,2,3])");
  PlanResult a = plan_module(*m);
  PlanResult b = plan_module(*m);
  EXPECT_TRUE(a.plan == b.plan);
  ASSERT_NE(m->plan, nullptr);
  EXPECT_TRUE(a.plan == *m->plan);
}

TEST(MemoryPlan, InputScaleCountsLeaves) {
  EXPECT_EQ(input_scale({}), 0u);
  EXPECT_EQ(input_scale({kernels::VValue::ints(7)}), 0u);

  // input_scale operates on kernel values: the scale of a call is the
  // total leaf count across its sequence arguments.
  auto flat = kernels::VValue::seq(seq::from_ints({1, 2, 3, 4}));
  EXPECT_EQ(input_scale({flat}), 4u);
  EXPECT_EQ(input_scale({flat, flat}), 8u);
}

/// fun f(a) with one dead range1 buffer: M301 must fire.
Module dead_store_module() {
  Module m;
  Function f;
  f.name = "f";
  f.n_params = 1;
  f.n_regs = 2;
  f.arg_pool = {0, 0};
  f.code = {
      Instr{.op = Op::kBuild,
            .prim = Prim::kRange1,
            .dst = 1,
            .args_count = 1,
            .args_off = 0},
      Instr{.op = Op::kRet, .args_count = 1, .args_off = 1},
  };
  m.functions.push_back(std::move(f));
  m.fn_index["f"] = 0;
  return m;
}

TEST(MemoryPlan, M301_DeadStore) {
  Module m = dead_store_module();
  ASSERT_TRUE(vm::verify_module(m).ok());
  PlanResult pr = plan_module(m);
  EXPECT_TRUE(pr.report.has("M301")) << pr.report.to_text();
  // Advisory only: the report carries no errors.
  EXPECT_TRUE(pr.report.ok());
}

/// fun f(a) = a (via a register copy whose source dies): M303 must fire.
Module redundant_copy_module() {
  Module m;
  Function f;
  f.name = "f";
  f.n_params = 1;
  f.n_regs = 2;
  f.arg_pool = {0, 1};
  f.code = {
      Instr{.op = Op::kMove, .dst = 1, .args_count = 1, .args_off = 0},
      Instr{.op = Op::kRet, .args_count = 1, .args_off = 1},
  };
  m.functions.push_back(std::move(f));
  m.fn_index["f"] = 0;
  return m;
}

TEST(MemoryPlan, M303_RedundantCopy) {
  Module m = redundant_copy_module();
  ASSERT_TRUE(vm::verify_module(m).ok());
  PlanResult pr = plan_module(m);
  EXPECT_TRUE(pr.report.has("M303")) << pr.report.to_text();
}

/// fun f(a) = sum([1..a] + [1..a]): the elementwise sum is materialized
/// only to feed the reduction — M302 must fire.
Module materialize_to_reduce_module() {
  Module m;
  Function f;
  f.name = "f";
  f.n_params = 1;
  f.n_regs = 4;
  f.arg_pool = {0, 1, 1, 2, 3};
  f.code = {
      Instr{.op = Op::kBuild,
            .prim = Prim::kRange1,
            .dst = 1,
            .args_count = 1,
            .args_off = 0},
      Instr{.op = Op::kElementwise,
            .prim = Prim::kAdd,
            .depth = 1,
            .dst = 2,
            .args_count = 2,
            .args_off = 1},
      Instr{.op = Op::kReduce,
            .prim = Prim::kSum,
            .dst = 3,
            .args_count = 1,
            .args_off = 3},
      Instr{.op = Op::kRet, .args_count = 1, .args_off = 4},
  };
  m.functions.push_back(std::move(f));
  m.fn_index["f"] = 0;
  return m;
}

TEST(MemoryPlan, M302_MaterializedOnlyToReduce) {
  Module m = materialize_to_reduce_module();
  ASSERT_TRUE(vm::verify_module(m).ok()) << vm::verify_module(m).to_text();
  PlanResult pr = plan_module(m);
  EXPECT_TRUE(pr.report.has("M302")) << pr.report.to_text();
}

TEST(MemoryPlan, DeathTablesNeverKillLiveRegisters) {
  // On a real program, a register listed as dying at pc must not appear
  // as an operand (or destination) of any later reachable instruction
  // before being redefined — spot-check the straight-line case.
  auto m = module_of(
      "fun f(xs: seq(int)): int = sum([x <- xs : x * x + 1])");
  const FunctionPlan& fp = plan_for(*m, *m->plan, "f");
  const Function& fn = *m->find("f");
  for (std::size_t pc = 0; pc < fn.code.size(); ++pc) {
    for (std::uint32_t i = fp.death_off[pc]; i < fp.death_off[pc + 1]; ++i) {
      const std::uint16_t dead = fp.death_regs[i];
      for (std::size_t q = pc + 1; q < fn.code.size(); ++q) {
        const Instr& later = fn.code[q];
        bool redefined = false;
        for (std::size_t j = 0; j < later.args_count; ++j) {
          EXPECT_NE(fn.arg_pool[later.args_off + j], dead)
              << "r" << dead << " dies at pc " << pc << " but is read at pc "
              << q;
        }
        if (later.op != Op::kRet && later.dst == dead) redefined = true;
        if (redefined) break;
      }
    }
  }
}

TEST(MemoryPlan, SerializedPlanRoundtrips) {
  auto m = module_of(
      "fun f(xs: seq(int)): seq(int) = [x <- xs : x + 1]", "f([1,2,3])");
  ASSERT_NE(m->plan, nullptr);
  vm::ModuleLoadResult loaded = vm::load_module(vm::module_bytes(*m));
  ASSERT_TRUE(loaded.ok()) << loaded.report.to_text();
  ASSERT_NE(loaded.module->plan, nullptr);
  EXPECT_TRUE(*loaded.module->plan == *m->plan);
}

TEST(MemoryPlan, B217_TamperedPlanIsRejected) {
  auto m = module_of(
      "fun f(xs: seq(int)): seq(int) = [x <- xs : x + 1]", "f([1,2,3])");
  ASSERT_NE(m->plan, nullptr);

  // Same bytecode, stale/tampered plan: the verifying load must notice.
  Module tampered = *m;
  auto plan = std::make_shared<MemoryPlan>(*m->plan);
  plan->functions[0].static_allocs += 1;
  tampered.plan = std::move(plan);
  vm::ModuleLoadResult r = vm::load_module(vm::module_bytes(tampered));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.report.has("B217")) << r.report.to_text();

  // A trusting load (verify=false) surfaces the plan as-is; callers who
  // skip verification own the consequences, exactly like bytecode.
  vm::ModuleLoadResult trusting =
      vm::load_module(vm::module_bytes(tampered), /*verify=*/false);
  ASSERT_TRUE(trusting.ok());
  ASSERT_NE(trusting.module->plan, nullptr);
  EXPECT_FALSE(*trusting.module->plan == *m->plan);
}

TEST(MemoryPlan, PlanTextNamesSlotsAndBound) {
  auto m = module_of("fun double(xs: seq(int)): seq(int) = [x <- xs : 2 * x]");
  const FunctionPlan& fp = plan_for(*m, *m->plan, "double");
  const std::string text = plan_to_text(fp);
  EXPECT_NE(text.find("memory plan"), std::string::npos) << text;
  EXPECT_NE(text.find("slot 0"), std::string::npos) << text;
  EXPECT_NE(text.find("N"), std::string::npos) << text;
}

}  // namespace
}  // namespace proteus::analysis
