// Unit tests for the structured diagnostic engine: rendering, ordering,
// deduplication, JSON schema, obs event publication, and AnalysisError.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/diagnostic.hpp"
#include "obs/tracer.hpp"

namespace proteus::analysis {
namespace {

TEST(Diagnostic, LineRenderingCarriesCodeFunctionSpanAndRule) {
  Diagnostic d{Severity::kError, "V103", "unbalanced extract/insert",
               "quicksort^1", lang::SourceLoc{3, 7}, "Fig.2"};
  EXPECT_EQ(to_line(d),
            "error[V103] fun quicksort^1 @3:7 : unbalanced extract/insert "
            "(rule Fig.2)");
}

TEST(Diagnostic, SyntheticFunctionNamesSkipTheFunPrefix) {
  Diagnostic d{Severity::kWarning, "V201", "identity surgery",
               "<expression>", lang::SourceLoc{}, ""};
  EXPECT_EQ(to_line(d), "warning[V201] <expression> : identity surgery");
}

TEST(Report, CountsBySeverityAndOkIgnoresWarnings) {
  Report r;
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.empty());
  r.warning("V201", "w", "f");
  EXPECT_TRUE(r.ok());
  r.error("V001", "e", "f");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error_count(), 1u);
  EXPECT_EQ(r.warning_count(), 1u);
  EXPECT_TRUE(r.has("V201"));
  EXPECT_TRUE(r.has("V001"));
  EXPECT_FALSE(r.has("V999"));
}

TEST(Report, DeduplicatesIdenticalFindings) {
  Report r;
  r.error("V002", "variable 'x' is not in scope", "f", {1, 2});
  r.error("V002", "variable 'x' is not in scope", "f", {1, 2});
  r.error("V002", "variable 'x' is not in scope", "f", {9, 9});  // distinct
  EXPECT_EQ(r.size(), 2u);
}

TEST(Report, TextPutsErrorsBeforeWarnings) {
  Report r;
  r.warning("V201", "later", "f");
  r.error("V001", "first", "f");
  const std::string text = r.to_text();
  EXPECT_LT(text.find("V001"), text.find("V201"));
}

TEST(Report, JsonDocumentMatchesSchema) {
  Report r;
  r.error("V103", "msg \"quoted\"", "qs^1", {3, 7}, "Fig.2");
  std::ostringstream os;
  r.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"verdict\":\"reject\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\":0"), std::string::npos);
  EXPECT_NE(json.find("\"code\":\"V103\""), std::string::npos);
  EXPECT_NE(json.find("\"function\":\"qs^1\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":3"), std::string::npos);
  EXPECT_NE(json.find("\"column\":7"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"Fig.2\""), std::string::npos);
  EXPECT_NE(json.find("msg \\\"quoted\\\""), std::string::npos);

  Report clean;
  std::ostringstream os2;
  clean.write_json(os2);
  EXPECT_EQ(os2.str(),
            "{\"verdict\":\"ok\",\"errors\":0,\"warnings\":0,"
            "\"diagnostics\":[]}");
}

TEST(Report, MergeAppendsEverything) {
  Report a;
  a.error("V001", "e", "f");
  Report b;
  b.warning("B210", "w", "g");
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_TRUE(a.has("B210"));
}

TEST(Report, AddedFindingsPublishAnalysisInstantEvents) {
  obs::Tracer tracer;
  obs::MaybeTracerScope scope(&tracer);
  Report r;
  r.error("V104", "unguarded recursion", "f^1", {}, "R2d");
  bool seen = false;
  for (const auto& e : tracer.events()) {
    if (std::string_view(e.cat) == "analysis" &&
        std::string_view(e.name) == "V104") {
      seen = true;
    }
  }
  EXPECT_TRUE(seen);
}

TEST(AnalysisError, CarriesReportAndRendersEveryLine) {
  Report r;
  r.error("V005", "iterator survived the transformation", "f", {}, "R2");
  r.warning("V201", "identity surgery", "f");
  AnalysisError err(r);
  const std::string what = err.what();
  EXPECT_NE(what.find("1 error"), std::string::npos);
  EXPECT_NE(what.find("1 warning"), std::string::npos);
  EXPECT_NE(what.find("V005"), std::string::npos);
  EXPECT_NE(what.find("V201"), std::string::npos);
  EXPECT_EQ(err.report().size(), 2u);
  // The old throw-on-failure contract: an AnalysisError is a
  // TransformError is a proteus::Error.
  EXPECT_THROW(throw AnalysisError(r), TransformError);
  EXPECT_THROW(throw AnalysisError(r), Error);
}

}  // namespace
}  // namespace proteus::analysis
