// The VCODE bytecode verifier: hand-corrupted modules asserting each B2xx
// diagnostic fires, clean verdicts for compiler output, and the VM's
// load-time verification hook.
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "core/proteus.hpp"
#include "vm/verify.hpp"
#include "vm/vm.hpp"

namespace proteus::vm {
namespace {

using analysis::Report;
using lang::Prim;

/// fun f(a, b) = a + b, hand-assembled.
Module add_module() {
  Module m;
  m.constants.push_back(kernels::VValue::ints(1));
  Function f;
  f.name = "f";
  f.n_params = 2;
  f.n_regs = 3;
  f.arg_pool = {0, 1, 2};
  f.code = {
      Instr{.op = Op::kScalar,
            .prim = Prim::kAdd,
            .dst = 2,
            .args_count = 2,
            .args_off = 0},
      Instr{.op = Op::kRet, .args_count = 1, .args_off = 2},
  };
  m.functions.push_back(std::move(f));
  m.fn_index["f"] = 0;
  return m;
}

TEST(VcodeVerify, AcceptsHandAssembledModule) {
  Report r = verify_module(add_module());
  EXPECT_TRUE(r.ok()) << r.to_text();
}

TEST(VcodeVerify, AcceptsEveryCompilerOutput) {
  Session s(R"(
    fun quicksort(v: seq(int)): seq(int) =
      if #v <= 1 then v
      else
        let pivot = v[1 + (#v / 2)] in
        let parts = [p <- [[x <- v | x < pivot : x],
                           [x <- v | x > pivot : x]] : quicksort(p)] in
        parts[1] ++ [x <- v | x == pivot : x] ++ parts[2]
  )",
            "quicksort([3,1,2])");
  Report r = verify_module(*s.compiled().module);
  EXPECT_TRUE(r.ok()) << r.to_text();
  EXPECT_EQ(r.warning_count(), 0u) << r.to_text();
}

TEST(VcodeVerify, B201_ModuleTableInvalid) {
  Module m = add_module();
  m.entry = 99;
  EXPECT_TRUE(verify_module(m).has("B201"));

  Module m2 = add_module();
  m2.fn_index["ghost"] = 7;
  EXPECT_TRUE(verify_module(m2).has("B201"));

  Module m3 = add_module();
  m3.fn_index["g"] = 0;  // names function 'f'
  EXPECT_TRUE(verify_module(m3).has("B201"));
}

TEST(VcodeVerify, B202_ControlFlowFallsOffTheEnd) {
  Module m = add_module();
  m.functions[0].code.pop_back();  // drop the kRet
  EXPECT_TRUE(verify_module(m).has("B202"));

  Module m2 = add_module();
  m2.functions[0].code.clear();
  EXPECT_TRUE(verify_module(m2).has("B202"));
}

TEST(VcodeVerify, B203_RegisterOutsideTheFile) {
  Module m = add_module();
  m.functions[0].code[0].dst = 999;
  EXPECT_TRUE(verify_module(m).has("B203"));

  Module m2 = add_module();
  m2.functions[0].arg_pool[0] = 999;
  EXPECT_TRUE(verify_module(m2).has("B203"));
}

TEST(VcodeVerify, B204_OperandListOutsidePool) {
  Module m = add_module();
  m.functions[0].code[0].args_off = 1000;
  EXPECT_TRUE(verify_module(m).has("B204"));
}

TEST(VcodeVerify, B205_OperandArityAndSelectorMismatch) {
  Module m = add_module();
  m.functions[0].code[0].args_count = 1;  // add with one operand
  EXPECT_TRUE(verify_module(m).has("B205"));

  Module m2 = add_module();
  m2.functions[0].code[0].prim = Prim::kSum;  // reduce under kScalar
  EXPECT_TRUE(verify_module(m2).has("B205"));
}

TEST(VcodeVerify, B206_PoolIndexOutOfRange) {
  Module m = add_module();
  m.functions[0].code[0] =
      Instr{.op = Op::kConst, .dst = 2, .aux = 42};
  EXPECT_TRUE(verify_module(m).has("B206"));
}

TEST(VcodeVerify, B207_JumpTargetOutOfRange) {
  Module m = add_module();
  m.functions[0].code[0] = Instr{.op = Op::kJump, .aux = 99};
  EXPECT_TRUE(verify_module(m).has("B207"));
}

TEST(VcodeVerify, B208_CallArgumentCountMismatch) {
  Module m = add_module();
  Function g;
  g.name = "g";
  g.n_params = 0;
  g.n_regs = 1;
  g.arg_pool = {0};
  g.code = {
      // f takes two parameters; pass none.
      Instr{.op = Op::kCall, .dst = 0, .args_count = 0, .aux = 0},
      Instr{.op = Op::kRet, .args_count = 1, .args_off = 0},
  };
  m.functions.push_back(std::move(g));
  m.fn_index["g"] = 1;
  EXPECT_TRUE(verify_module(m).has("B208"));
}

TEST(VcodeVerify, B209_LiftSetSizeMismatch) {
  Module m = add_module();
  Function& f = m.functions[0];
  f.lifted_sets.push_back({1});  // one flag for two operands
  f.code[0].op = Op::kElementwise;
  f.code[0].depth = 1;
  f.code[0].lifted = 0;
  EXPECT_TRUE(verify_module(m).has("B209"));
}

TEST(VcodeVerify, B210_UseBeforeDefinition) {
  Module m = add_module();
  m.functions[0].n_params = 1;  // r1 is no longer a parameter
  EXPECT_TRUE(verify_module(m).has("B210"));
}

TEST(VcodeVerify, B210_JoinOverBranches) {
  // r1 is written on only one arm of a branch, then read after the join.
  Module m;
  m.constants.push_back(kernels::VValue::ints(1));
  Function f;
  f.name = "f";
  f.n_params = 1;
  f.n_regs = 2;
  f.arg_pool = {0, 1};
  f.code = {
      Instr{.op = Op::kJumpIfFalse, .args_count = 1, .args_off = 0,
            .aux = 2},
      Instr{.op = Op::kConst, .dst = 1, .aux = 0},
      Instr{.op = Op::kRet, .args_count = 1, .args_off = 1},  // join
  };
  m.functions.push_back(std::move(f));
  m.fn_index["f"] = 0;
  EXPECT_TRUE(verify_module(m).has("B210"));
}

TEST(VcodeVerify, B211_DepthIncompatibleSurgery) {
  // extract of a scalar register can never satisfy Figure 2.
  Module m;
  m.constants.push_back(kernels::VValue::ints(1));
  Function f;
  f.name = "f";
  f.n_params = 0;
  f.n_regs = 2;
  f.arg_pool = {0, 1};
  f.code = {
      Instr{.op = Op::kConst, .dst = 0, .aux = 0},
      Instr{.op = Op::kExtract,
            .prim = Prim::kExtract,
            .depth = 1,
            .dst = 1,
            .args_count = 1,
            .args_off = 0},
      Instr{.op = Op::kRet, .args_count = 1, .args_off = 1},
  };
  m.functions.push_back(std::move(f));
  m.fn_index["f"] = 0;
  EXPECT_TRUE(verify_module(m).has("B211"));
}

TEST(VcodeVerify, B212_DepthFieldOutOfRange) {
  Module m = add_module();
  m.functions[0].code[0].depth = 3;  // kernel depth must be <= 1
  EXPECT_TRUE(verify_module(m).has("B212"));
}

/// fun f(a: seq, b: seq) = (a + b) * a as one fused superinstruction.
Module fused_module() {
  Module m;
  Function f;
  f.name = "f";
  f.n_params = 2;
  f.n_regs = 3;
  f.arg_pool = {0, 1, 2};
  kernels::FusedExpr fe;
  fe.nodes = {
      kernels::MicroOp{.kind = kernels::MicroOp::Kind::kInput, .input = 0},
      kernels::MicroOp{.kind = kernels::MicroOp::Kind::kInput, .input = 1},
      kernels::MicroOp{.kind = kernels::MicroOp::Kind::kPrim,
                       .prim = Prim::kAdd,
                       .a = 0,
                       .b = 1},
      kernels::MicroOp{.kind = kernels::MicroOp::Kind::kPrim,
                       .prim = Prim::kMul,
                       .a = 2,
                       .b = 0},
  };
  fe.input_flags = {0, 0};
  f.fused.push_back(std::move(fe));
  f.code = {
      Instr{.op = Op::kFusedMap,
            .depth = 1,
            .dst = 2,
            .args_count = 2,
            .args_off = 0,
            .aux = 0},
      Instr{.op = Op::kRet, .args_count = 1, .args_off = 2},
  };
  m.functions.push_back(std::move(f));
  m.fn_index["f"] = 0;
  return m;
}

TEST(VcodeVerify, AcceptsHandAssembledFusedModule) {
  Report r = verify_module(fused_module());
  EXPECT_TRUE(r.ok()) << r.to_text();
}

TEST(VcodeVerify, B212_FusedInstructionMustBeDepthOne) {
  Module m = fused_module();
  m.functions[0].code[0].depth = 0;
  EXPECT_TRUE(verify_module(m).has("B212"));
}

TEST(VcodeVerify, B213_FusedExpressionIndexOutOfRange) {
  Module m = fused_module();
  m.functions[0].code[0].aux = 7;
  EXPECT_TRUE(verify_module(m).has("B213"));

  Module m2 = fused_module();
  m2.functions[0].code[0].aux = -1;
  EXPECT_TRUE(verify_module(m2).has("B213"));
}

TEST(VcodeVerify, B213_FusedExpressionNodeCount) {
  Module m = fused_module();
  m.functions[0].fused[0].nodes.clear();
  EXPECT_TRUE(verify_module(m).has("B213"));

  Module m2 = fused_module();
  m2.functions[0].fused[0].nodes.resize(
      kernels::kMaxFusedNodes + 1,
      kernels::MicroOp{.kind = kernels::MicroOp::Kind::kInput, .input = 0});
  EXPECT_TRUE(verify_module(m2).has("B213"));
}

TEST(VcodeVerify, B213_FusedRootMustBeAPrim) {
  Module m = fused_module();
  m.functions[0].fused[0].nodes.push_back(
      kernels::MicroOp{.kind = kernels::MicroOp::Kind::kInput, .input = 0});
  EXPECT_TRUE(verify_module(m).has("B213"));
}

TEST(VcodeVerify, B213_NonElementwisePrimInsideAFusedExpression) {
  Module m = fused_module();
  m.functions[0].fused[0].nodes[2].prim = Prim::kSum;  // a reduction
  EXPECT_TRUE(verify_module(m).has("B213"));
}

TEST(VcodeVerify, B213_MicroOpReadsANodeAtOrAfterItself) {
  Module m = fused_module();
  m.functions[0].fused[0].nodes[2].a = 2;  // self-reference
  EXPECT_TRUE(verify_module(m).has("B213"));

  Module m2 = fused_module();
  m2.functions[0].fused[0].nodes[2].b = 3;  // forward reference
  EXPECT_TRUE(verify_module(m2).has("B213"));
}

TEST(VcodeVerify, B214_OperandSlotFlagsMismatch) {
  Module m = fused_module();
  m.functions[0].fused[0].input_flags.push_back(0);  // 3 flags, 2 operands
  EXPECT_TRUE(verify_module(m).has("B214"));
}

TEST(VcodeVerify, B214_MicroOpReadsAMissingOperandSlot) {
  Module m = fused_module();
  m.functions[0].fused[0].nodes[1].input = 9;
  EXPECT_TRUE(verify_module(m).has("B214"));
}

TEST(VcodeVerify, B214_FusedExpressionNeedsAFrameOperand) {
  Module m = fused_module();
  m.functions[0].fused[0].input_flags = {kernels::kFusedBroadcast,
                                         kernels::kFusedBroadcast};
  EXPECT_TRUE(verify_module(m).has("B214"));
}

TEST(VcodeVerify, B211_FusedFrameOperandMustBeASequence) {
  // Feed the fused instruction a scalar constant as its frame operand.
  Module m = fused_module();
  m.constants.push_back(kernels::VValue::ints(3));
  Function& f = m.functions[0];
  f.code.insert(f.code.begin(),
                Instr{.op = Op::kConst, .dst = 0, .aux = 0});
  f.n_params = 0;
  // r1 is now undefined too, but the scalar-frame complaint must appear.
  EXPECT_TRUE(verify_module(m).has("B211"));
}

TEST(VcodeVerify, VMConstructionVerifiesByDefault) {
  Module bad = add_module();
  bad.functions[0].code[0].dst = 999;
  auto module = std::make_shared<const Module>(std::move(bad));
  EXPECT_THROW(VM machine(module), analysis::AnalysisError);
  // Re-verification can be turned off by holders of pre-verified modules.
  VMOptions no_verify;
  no_verify.verify = false;
  EXPECT_NO_THROW(VM machine(module, no_verify));
}

TEST(VcodeVerify, OrThrowCarriesTheReport) {
  Module bad = add_module();
  bad.functions[0].code[0].args_off = 1000;
  try {
    verify_module_or_throw(bad);
    FAIL() << "expected AnalysisError";
  } catch (const analysis::AnalysisError& e) {
    EXPECT_TRUE(e.report().has("B204"));
  }
}

}  // namespace
}  // namespace proteus::vm
