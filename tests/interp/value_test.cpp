// Tests for boxed values and boxed <-> flat conversions.
#include <gtest/gtest.h>

#include "core/proteus.hpp"
#include "interp/value.hpp"
#include "lang/parser.hpp"
#include "seq/build.hpp"

namespace proteus::interp {
namespace {

using lang::Type;

TEST(Value, ScalarsAndAccessors) {
  EXPECT_EQ(Value::ints(7).as_int(), 7);
  EXPECT_EQ(Value::reals(1.5).as_real(), 1.5);
  EXPECT_TRUE(Value::bools(true).as_bool());
  EXPECT_EQ(Value::fun("f").fun_name(), "f");
  EXPECT_THROW((void)Value::ints(1).as_bool(), EvalError);
  EXPECT_THROW((void)Value::ints(1).as_seq(), EvalError);
}

TEST(Value, Equality) {
  EXPECT_EQ(parse_value("[[1,2],[3]]"), parse_value("[[1,2],[3]]"));
  EXPECT_FALSE(parse_value("[1]") == parse_value("[2]"));
  EXPECT_FALSE(parse_value("[1]") == parse_value("1"));
  EXPECT_FALSE(parse_value("(1,2)") == parse_value("[1,2]"));
  EXPECT_EQ(Value::fun("f"), Value::fun("f"));
  EXPECT_FALSE(Value::fun("f") == Value::fun("g"));
}

TEST(Value, Rendering) {
  EXPECT_EQ(to_text(parse_value("[[1],[],[2,3]]")), "[[1],[],[2,3]]");
  EXPECT_EQ(to_text(parse_value("(1,(true,2))")), "(1,(true,2))");
  EXPECT_EQ(to_text(Value::fun("sqs")), "<sqs>");
}

TEST(Conversions, FlatIntSeq) {
  Value v = parse_value("[1,2,3]");
  auto t = Type::seq(Type::int_());
  seq::Array a = to_array(v, t);
  EXPECT_EQ(a.int_values(), (vl::IntVec{1, 2, 3}));
  EXPECT_EQ(from_array(a, t), v);
}

TEST(Conversions, NestedSeq) {
  Value v = parse_value("[[1,2],[],[3]]");
  auto t = Type::seq(Type::seq(Type::int_()));
  seq::Array a = to_array(v, t);
  EXPECT_EQ(a.lengths(), (vl::IntVec{2, 0, 1}));
  EXPECT_EQ(from_array(a, t), v);
}

TEST(Conversions, EmptySeqUsesTypeStructure) {
  Value v = parse_value("([] : seq(seq(int)))");
  auto t = Type::seq(Type::seq(Type::int_()));
  seq::Array a = to_array(v, t);
  EXPECT_EQ(a.length(), 0);
  EXPECT_EQ(a.kind(), seq::Array::Kind::kNested);
  EXPECT_EQ(from_array(a, t), v);
}

TEST(Conversions, TupleElements) {
  Value v = parse_value("[(1,true),(2,false)]");
  auto t = Type::seq(Type::tuple({Type::int_(), Type::bool_()}));
  seq::Array a = to_array(v, t);
  ASSERT_EQ(a.components().size(), 2u);
  EXPECT_EQ(a.components()[0].int_values(), (vl::IntVec{1, 2}));
  EXPECT_EQ(from_array(a, t), v);
}

TEST(Conversions, RealElements) {
  Value v = parse_value("[1.5, 2.5]");
  auto t = Type::seq(Type::real());
  EXPECT_EQ(from_array(to_array(v, t), t), v);
}

TEST(Conversions, DeepRoundTrip) {
  Value v = parse_value("[[[1],[2,3]],[],[[4,5,6]]]");
  auto t = Type::seq_n(Type::int_(), 3);
  EXPECT_EQ(from_array(to_array(v, t), t), v);
}

TEST(Conversions, TupleOfSeqs) {
  Value v = parse_value("[([1,2], 7), (([] : seq(int)), 8)]");
  auto t = Type::seq(Type::tuple({Type::seq(Type::int_()), Type::int_()}));
  EXPECT_EQ(from_array(to_array(v, t), t), v);
}

TEST(Conversions, ErrorsOnWrongShape) {
  auto t = Type::seq(Type::int_());
  EXPECT_THROW((void)to_array(parse_value("1"), t), EvalError);
  EXPECT_THROW((void)to_array(parse_value("[1]"), Type::int_()), EvalError);
  EXPECT_THROW((void)to_array(parse_value("[true]"), t), EvalError);
}

}  // namespace
}  // namespace proteus::interp
