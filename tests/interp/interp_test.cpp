// Semantics tests for the reference interpreter, construct by construct.
#include <gtest/gtest.h>

#include "interp/interp.hpp"
#include "lang/parser.hpp"
#include "lang/typecheck.hpp"
#include "core/proteus.hpp"

namespace proteus::interp {
namespace {

Value eval(std::string_view program, std::string_view expr) {
  lang::Program checked = lang::typecheck(lang::parse_program(program));
  lang::Program lifted;
  lang::ExprPtr typed = lang::typecheck_expression(
      checked, lang::parse_expression(expr), &lifted);
  for (auto& f : lifted.functions) checked.functions.push_back(std::move(f));
  Interpreter in(checked);
  return in.eval(typed);
}

Value ev(std::string_view expr) { return eval("", expr); }

TEST(Interp, Scalars) {
  EXPECT_EQ(ev("1 + 2 * 3"), parse_value("7"));
  EXPECT_EQ(ev("7 mod 3"), parse_value("1"));
  EXPECT_EQ(ev("-(4 - 9)"), parse_value("5"));
  EXPECT_EQ(ev("min(3, 8) + max(3, 8)"), parse_value("11"));
  EXPECT_EQ(ev("1.5 * 2.0"), parse_value("3.0"));
  EXPECT_EQ(ev("real(3) / 2.0"), parse_value("1.5"));
  EXPECT_EQ(ev("int(3.9)"), parse_value("3"));
}

TEST(Interp, Booleans) {
  EXPECT_EQ(ev("true and not false"), parse_value("true"));
  EXPECT_EQ(ev("1 < 2 or 2 < 1"), parse_value("true"));
  EXPECT_EQ(ev("3 == 3 and 3 != 4"), parse_value("true"));
}

TEST(Interp, SequencePrimitives) {
  EXPECT_EQ(ev("#[4,5,6]"), parse_value("3"));
  EXPECT_EQ(ev("[2 .. 5]"), parse_value("[2,3,4,5]"));
  EXPECT_EQ(ev("[5 .. 2]"), parse_value("([] : seq(int))"));
  EXPECT_EQ(ev("range1(4)"), parse_value("[1,2,3,4]"));
  EXPECT_EQ(ev("[9,8,7][2]"), parse_value("8"));
  EXPECT_EQ(ev("restrict([1,2,3,4],[true,false,true,false])"),
            parse_value("[1,3]"));
  EXPECT_EQ(ev("combine([false,true,false],[5],[1,2])"),
            parse_value("[1,5,2]"));
  EXPECT_EQ(ev("dist(7, 3)"), parse_value("[7,7,7]"));
  EXPECT_EQ(ev("dist([1,2], 2)"), parse_value("[[1,2],[1,2]]"));
  EXPECT_EQ(ev("update([1,2,3], 2, 9)"), parse_value("[1,9,3]"));
  EXPECT_EQ(ev("flatten([[1],[],[2,3]])"), parse_value("[1,2,3]"));
  EXPECT_EQ(ev("[1,2] ++ [3]"), parse_value("[1,2,3]"));
  EXPECT_EQ(ev("sum([1,2,3])"), parse_value("6"));
  EXPECT_EQ(ev("maxval([3,9,1])"), parse_value("9"));
  EXPECT_EQ(ev("minval([3,9,1])"), parse_value("1"));
  EXPECT_EQ(ev("any([false,true])"), parse_value("true"));
  EXPECT_EQ(ev("all([true,false])"), parse_value("false"));
}

TEST(Interp, ExtendedPrimitives) {
  EXPECT_EQ(ev("reverse([1,2,3])"), parse_value("[3,2,1]"));
  EXPECT_EQ(ev("reverse(([] : seq(int)))"), parse_value("([] : seq(int))"));
  EXPECT_EQ(ev("zip([1,2],[true,false])"),
            parse_value("[(1,true),(2,false)]"));
  EXPECT_THROW((void)ev("zip([1],[1,2])"), EvalError);
  EXPECT_EQ(ev("sqrt(6.25)"), parse_value("2.5"));
}

TEST(Interp, PaperDistExample) {
  // dist([3,4,5],[3,2,1]) via the depth-1 extension... expressed with an
  // iterator here: the Section 2 example.
  EXPECT_EQ(ev("[p <- [(3,3),(4,2),(5,1)] : dist(p.1, p.2)]"),
            parse_value("[[3,3,3],[4,4],[5]]"));
}

TEST(Interp, IndexOriginIsOne) {
  EXPECT_EQ(ev("[[2,7],[3,9,8]][1][2]"), parse_value("7"));
  EXPECT_THROW((void)ev("[1,2][0]"), EvalError);
  EXPECT_THROW((void)ev("[1,2][3]"), EvalError);
}

TEST(Interp, ErrorsThrow) {
  EXPECT_THROW((void)ev("1 / 0"), EvalError);
  EXPECT_THROW((void)ev("1 mod 0"), EvalError);
  EXPECT_THROW((void)ev("maxval(([] : seq(int)))"), EvalError);
  EXPECT_THROW((void)ev("update([1], 2, 5)"), EvalError);
}

TEST(Interp, LetAndShadowing) {
  EXPECT_EQ(ev("let x = 2 in let x = x * x in x + 1"), parse_value("5"));
}

TEST(Interp, Conditional) {
  EXPECT_EQ(ev("if 1 < 2 then 10 else 20"), parse_value("10"));
  // branches are lazy: the untaken division by zero must not run
  EXPECT_EQ(ev("if true then 1 else 1 / 0"), parse_value("1"));
}

TEST(Interp, Iterators) {
  EXPECT_EQ(ev("[i <- [1 .. 4] : i * i]"), parse_value("[1,4,9,16]"));
  EXPECT_EQ(ev("[x <- [5,1,4] | x > 2 : x * 10]"), parse_value("[50,40]"));
  EXPECT_EQ(ev("[i <- [1 .. 3] : [j <- [1 .. i] : j]]"),
            parse_value("[[1],[1,2],[1,2,3]]"));
  EXPECT_EQ(ev("[i <- [1 .. 0] : i]"), parse_value("([] : seq(int))"));
}

TEST(Interp, IteratorSemanticsPerElement) {
  // Definition from Section 2: [x <- d : e][k] == e[x := d[k]]
  Value v = ev("[x <- [3,1,2] : x + 100]");
  const ValueList& xs = v.as_seq();
  ASSERT_EQ(xs.size(), 3u);
  EXPECT_EQ(xs[0], parse_value("103"));
  EXPECT_EQ(xs[1], parse_value("101"));
  EXPECT_EQ(xs[2], parse_value("102"));
}

TEST(Interp, FunctionsAndRecursion) {
  const char* prog = R"(
    fun fact(n: int): int = if n <= 1 then 1 else n * fact(n - 1)
    fun fib(n: int): int = if n < 2 then n else fib(n-1) + fib(n-2)
  )";
  EXPECT_EQ(eval(prog, "fact(10)"), parse_value("3628800"));
  EXPECT_EQ(eval(prog, "fib(15)"), parse_value("610"));
}

TEST(Interp, HigherOrderFunctions) {
  const char* prog = R"(
    fun inc(x: int): int = x + 1
    fun twice(f: (int) -> int, x: int): int = f(f(x))
  )";
  EXPECT_EQ(eval(prog, "twice(inc, 5)"), parse_value("7"));
  EXPECT_EQ(eval(prog, "twice(fun(x: int) => x * 3, 2)"), parse_value("18"));
}

TEST(Interp, RunawayRecursionIsReported) {
  const char* prog = "fun loop(n: int): int = loop(n + 1)";
  try {
    (void)eval(prog, "loop(0)");
    FAIL() << "expected a depth trap";
  } catch (const rt::RuntimeTrap& e) {
    EXPECT_EQ(e.trap(), rt::Trap::kDepth);
  }
}

TEST(Interp, StepsMeasureAvailableConcurrency) {
  // The paper: Proteus simulation measures "total work and available
  // concurrency". For sqs(n) the per-element bodies run in parallel:
  // work is O(n) but the critical path is O(1).
  lang::Program checked = lang::typecheck(lang::parse_program(
      "fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]"));
  Interpreter in(checked);
  (void)in.call_function("sqs", {Value::ints(10)});
  std::uint64_t steps10 = in.stats().steps;
  std::uint64_t work10 = in.stats().scalar_ops;
  in.reset_stats();
  (void)in.call_function("sqs", {Value::ints(1000)});
  std::uint64_t steps1000 = in.stats().steps;
  std::uint64_t work1000 = in.stats().scalar_ops;
  EXPECT_EQ(steps10, steps1000) << "critical path must not grow with n";
  EXPECT_GT(work1000, work10 * 50) << "work must grow with n";
}

TEST(Interp, StepsSumSequentialWork) {
  // Without iterators everything is sequential: steps == scalar ops.
  lang::Program checked = lang::typecheck(lang::parse_program(
      "fun f(x: int): int = (x + 1) * (x - 2)"));
  Interpreter in(checked);
  (void)in.call_function("f", {Value::ints(5)});
  EXPECT_EQ(in.stats().steps, in.stats().scalar_ops);
  EXPECT_EQ(in.stats().steps, 3u);
}

TEST(Interp, StepsNestParallelism) {
  // Nested iterators: depth is the max over all (i, j) bodies plus
  // constant per-level assembly, still O(1) in n.
  lang::Program checked = lang::typecheck(lang::parse_program(
      "fun tri(n: int): seq(seq(int)) = "
      "[i <- [1 .. n] : [j <- [1 .. i] : i * j]]"));
  Interpreter in(checked);
  (void)in.call_function("tri", {Value::ints(6)});
  std::uint64_t s6 = in.stats().steps;
  in.reset_stats();
  (void)in.call_function("tri", {Value::ints(60)});
  EXPECT_EQ(in.stats().steps, s6);
}

TEST(Interp, StatsCountWork) {
  lang::Program checked =
      lang::typecheck(lang::parse_program("fun f(n: int): seq(int) ="
                                          " [i <- [1 .. n] : i * i]"));
  Interpreter in(checked);
  (void)in.call_function("f", {Value::ints(10)});
  EXPECT_EQ(in.stats().iterations, 10u);
  EXPECT_GE(in.stats().scalar_ops, 10u);
  EXPECT_EQ(in.stats().calls, 1u);
  in.reset_stats();
  EXPECT_EQ(in.stats().iterations, 0u);
}

TEST(Interp, TransformedConstructs) {
  // The interpreter understands the V-form representation primitives via
  // boxed semantics (used as a second oracle for transformed code).
  using lang::Prim;
  lang::Program empty;
  Interpreter in(empty);

  auto vv = parse_value("[[1,2],[3]]");
  lang::ExprPtr lit = lang::parse_expression("[[1,2],[3]]");
  lang::ExprPtr typed = lang::typecheck_expression(empty, lit);

  lang::ExprPtr ext = lang::make_expr(
      lang::PrimCall{Prim::kExtract, 0, {typed, lang::make_expr(
          lang::IntLit{1}, lang::Type::int_())}, {}},
      lang::Type::seq(lang::Type::int_()));
  EXPECT_EQ(in.eval(ext), parse_value("[1,2,3]"));

  lang::ExprPtr ins = lang::make_expr(
      lang::PrimCall{Prim::kInsert, 0,
                     {ext, typed, lang::make_expr(lang::IntLit{1},
                                                  lang::Type::int_())},
                     {}},
      typed->type);
  EXPECT_EQ(in.eval(ins), vv);
}

}  // namespace
}  // namespace proteus::interp
