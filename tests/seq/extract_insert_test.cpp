// Tests for extract/insert (Section 4.2, Figure 2), including the paper's
// identity insert(extract(V,d), V, d) == V and the structural-sharing
// claim that makes them cheap.
#include <gtest/gtest.h>

#include "seq/seq.hpp"
#include "vl/vl.hpp"

namespace proteus::seq {
namespace {

TEST(Extract, Depth0IsIdentity) {
  Array a = from_ints2({{1, 2}, {3}});
  EXPECT_EQ(extract(a, 0), a);
}

TEST(Extract, FlattensTopLevels) {
  Array a = from_ints3({{{2, 7}, {3, 9, 8}}, {{3}, {4, 3, 2}}});
  Array e1 = extract(a, 1);
  EXPECT_EQ(to_text(e1), "[[2,7],[3,9,8],[3],[4,3,2]]");
  Array e2 = extract(a, 2);
  EXPECT_EQ(to_text(e2), "[2,7,3,9,8,3,4,3,2]");
}

TEST(Extract, TooDeepThrows) {
  Array a = from_ints2({{1}});
  EXPECT_THROW((void)extract(a, 2), RepresentationError);
  EXPECT_THROW((void)extract(a, -1), RepresentationError);
}

TEST(Extract, SharesValueVectors) {
  // extract is descriptor surgery: the leaf node must be the same object.
  Array a = from_ints3({{{1, 2}}, {{3}}});
  Array flat = extract(a, 2);
  EXPECT_EQ(flat.node_identity(), a.inner().inner().node_identity());
}

TEST(Insert, RestoresDescriptors) {
  Array a = from_ints3({{{2, 7}, {3, 9, 8}}, {{3}, {4, 3, 2}}});
  Array flat = extract(a, 1);
  Array back = insert(flat, a, 1);
  EXPECT_EQ(back, a);
}

TEST(Insert, LengthMismatchThrows) {
  Array a = from_ints2({{1, 2}, {3}});
  Array wrong = Array::ints(IntVec{1, 2});  // needs 3 elements
  EXPECT_THROW((void)insert(wrong, a, 1), RepresentationError);
}

TEST(Insert, CanReshapeDifferentValues) {
  // insert is not tied to the extracted values: any conformable result
  // can be re-framed (this is how f^1 results are restored).
  Array frame = from_ints2({{1, 2}, {}, {3}});
  Array result = Array::ints(IntVec{10, 20, 30});
  EXPECT_EQ(to_text(insert(result, frame, 1)), "[[10,20],[],[30]]");
}

TEST(Insert, DeepFrames) {
  Array a = from_ints3({{{1}, {2, 3}}, {{4}}});
  Array squares = Array::ints(IntVec{1, 4, 9, 16});
  EXPECT_EQ(to_text(insert(squares, a, 2)), "[[[1],[4,9]],[[16]]]");
}

/// The paper's identity on random shapes and depths.
class ExtractInsertIdentity
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ExtractInsertIdentity, RoundTrip) {
  auto [depth, d] = GetParam();
  if (d > depth) GTEST_SKIP();
  Array v = random_nested_ints(77 + static_cast<std::uint64_t>(depth), depth,
                               30, 4);
  EXPECT_EQ(insert(extract(v, d), v, d), v);
}

INSTANTIATE_TEST_SUITE_P(DepthPairs, ExtractInsertIdentity,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 6),
                                            ::testing::Values(0, 1, 2, 3, 4,
                                                              6)));

/// Checks Figure 1's well-formedness invariant of the descriptor stack:
/// each level's lengths must sum to the number of segments one level
/// down, i.e. #V_{i+1} == sum(V_i), with the leaf vector closing the
/// chain.
void expect_descriptors_wellformed(const Array& a) {
  std::vector<IntVec> stack = descriptor_stack(a);
  for (std::size_t i = 0; i + 1 < stack.size(); ++i) {
    vl::Int total = 0;
    for (vl::Size j = 0; j < stack[i].size(); ++j) total += stack[i][j];
    EXPECT_EQ(stack[i + 1].size(), total)
        << "descriptor level " << i + 1 << " of " << to_text(a);
  }
  vl::Int total = 0;
  const IntVec& deepest = stack.back();
  for (vl::Size j = 0; j < deepest.size(); ++j) total += deepest[j];
  EXPECT_EQ(leaf_int_values(a).size(), total) << "leaves of " << to_text(a);
}

/// Round-trip property at randomized depths 1..4: insert(extract(V,d),V,d)
/// reproduces V with a well-formed descriptor stack for every legal d.
class DescriptorInvariant : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DescriptorInvariant, RoundTripAtRandomizedDepths) {
  const std::uint64_t seed = GetParam();
  for (int trial = 0; trial < 6; ++trial) {
    const std::uint64_t mix =
        seed * std::uint64_t{6364136223846793005} +
        static_cast<std::uint64_t>(trial);
    const int depth = 1 + static_cast<int>(mix % 4);
    Array v = random_nested_ints(mix, depth, 12, 3);
    for (int d = 0; d <= depth; ++d) {
      SCOPED_TRACE("depth=" + std::to_string(depth) +
                   " d=" + std::to_string(d));
      Array round = insert(extract(v, d), v, d);
      EXPECT_EQ(round, v);
      expect_descriptors_wellformed(round);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DescriptorInvariant,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(DescriptorInvariantEdge, AllEmptySegments) {
  // Every frame slot empty: extract reaches an empty value vector and
  // insert must rebuild the all-zero descriptors verbatim.
  Array inner = Array::nested(IntVec{0, 0, 0}, Array::ints(IntVec{}));
  Array outer = Array::nested(IntVec{2, 0, 1}, inner);
  for (const Array& v : {inner, outer}) {
    for (int d = 0; d <= v.element_depth(); ++d) {
      Array round = insert(extract(v, d), v, d);
      EXPECT_EQ(round, v) << "d=" << d;
      expect_descriptors_wellformed(round);
    }
  }
}

TEST(DescriptorInvariantEdge, ZeroLengthTopFrame) {
  // The R2d empty frame: no slots at all, at several nesting depths.
  Array v = Array::nested(IntVec{}, Array::ints(IntVec{}));
  for (int extra = 0; extra < 3; ++extra) {
    for (int d = 0; d <= extra + 1; ++d) {
      Array round = insert(extract(v, d), v, d);
      EXPECT_EQ(round, v) << "d=" << d;
      expect_descriptors_wellformed(round);
    }
    v = Array::nested(IntVec{}, v);
  }
}

/// extract/insert commute with elementwise work on the flat values — the
/// essence of the T1 translation (Figure 3).
TEST(Translation, FdViaExtractInsert) {
  Array v = random_nested_ints(5, 3, 20, 5);  // three descriptor levels
  // The depth-extended square via extract / mult^1 / insert (Figure 3):
  Array flat = extract(v, 3);
  const IntVec& xs = flat.int_values();
  Array squared = Array::ints(vl::mul(xs, xs));
  Array result = insert(squared, v, 3);
  // reference: per-leaf squaring, preserving all descriptors
  std::vector<IntVec> stack = descriptor_stack(v);
  const IntVec& leaves = leaf_int_values(v);
  Array expect = Array::ints(vl::mul(leaves, leaves));
  expect = Array::nested(stack[3], expect);
  expect = Array::nested(stack[2], expect);
  expect = Array::nested(stack[1], expect);
  EXPECT_EQ(result, expect);
}

}  // namespace
}  // namespace proteus::seq
