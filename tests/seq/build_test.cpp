// Tests for the construction helpers and deterministic generators.
#include <gtest/gtest.h>

#include "seq/seq.hpp"
#include "vl/vl.hpp"

namespace proteus::seq {
namespace {

TEST(Build, FromInts) {
  EXPECT_EQ(to_text(from_ints({1, 2, 3})), "[1,2,3]");
  EXPECT_EQ(to_text(from_ints({})), "[]");
}

TEST(Build, FromInts2RoundTrip) {
  std::vector<std::vector<Int>> v{{1, 2}, {}, {3}};
  EXPECT_EQ(to_ints2(from_ints2(v)), v);
}

TEST(Build, ToInts2RejectsWrongDepth) {
  EXPECT_THROW((void)to_ints2(from_ints({1})), RepresentationError);
}

TEST(Build, RandomIsDeterministic) {
  EXPECT_EQ(random_nested_ints(9, 3, 20, 6), random_nested_ints(9, 3, 20, 6));
  EXPECT_EQ(random_ints(5, 50, -3, 3), random_ints(5, 50, -3, 3));
  EXPECT_EQ(random_mask(5, 50, 1, 2), random_mask(5, 50, 1, 2));
}

TEST(Build, RandomRespectsBounds) {
  IntVec v = random_ints(11, 1000, -3, 3);
  for (Size i = 0; i < v.size(); ++i) {
    EXPECT_GE(v[i], -3);
    EXPECT_LE(v[i], 3);
  }
}

TEST(Build, RandomMaskDensity) {
  vl::BoolVec m = random_mask(13, 10000, 1, 4);
  Size c = vl::count(m);
  EXPECT_GT(c, 2000);
  EXPECT_LT(c, 3000);
}

TEST(Build, RandomDepthZeroIsFlat) {
  Array a = random_nested_ints(1, 0, 10, 5);
  EXPECT_EQ(a.kind(), Array::Kind::kInt);
  EXPECT_EQ(a.length(), 10);
}

}  // namespace
}  // namespace proteus::seq
