// Tests for the vector representation of nested sequences (Section 4.1,
// Figure 1): descriptor stacks, invariants, failure injection.
#include <gtest/gtest.h>

#include "seq/seq.hpp"
#include "vl/vl.hpp"

namespace proteus::seq {
namespace {

/// The exact value of Figure 1: [[[2,7],[3,9,8]], [[3],[4,3,2]]]... the
/// paper's figure shows [[2,7],[3,9,8]],[[3],[4,3,2]] at depth 3.
Array figure1() {
  return from_ints3({{{2, 7}, {3, 9, 8}}, {{3}, {4, 3, 2}}});
}

TEST(Nested, Figure1DescriptorStack) {
  Array a = figure1();
  // Descriptor stack: V1 = [2] (singleton top), V2 = [2,2], V3 = [2,3,1,3];
  // value vector [2,7,3,9,8,3,4,3,2].
  std::vector<IntVec> stack = descriptor_stack(a);
  ASSERT_EQ(stack.size(), 3u);
  EXPECT_EQ(stack[0], (IntVec{2}));
  EXPECT_EQ(stack[1], (IntVec{2, 2}));
  EXPECT_EQ(stack[2], (IntVec{2, 3, 1, 3}));
  EXPECT_EQ(leaf_int_values(a), (IntVec{2, 7, 3, 9, 8, 3, 4, 3, 2}));
}

TEST(Nested, DescriptorInvariant) {
  // #V_{i+1} == sum(V_i) for every adjacent descriptor pair.
  Array a = random_nested_ints(42, 4, 10, 5);
  std::vector<IntVec> stack = descriptor_stack(a);
  for (std::size_t i = 0; i + 1 < stack.size(); ++i) {
    EXPECT_EQ(vl::lengths_total(stack[i]),
              static_cast<Size>(stack[i + 1].size()));
  }
  a.validate();
}

TEST(Nested, LengthAndDepth) {
  Array a = figure1();
  EXPECT_EQ(a.length(), 2);
  EXPECT_EQ(a.element_depth(), 2);  // elements are depth-2 sequences
  EXPECT_EQ(spine_depth(a), 2);
  EXPECT_EQ(a.leaf_count(), 9);
}

TEST(Nested, EmptySequencesAtLeaves) {
  // "empty sequences at the leaves are represented by a zero ... in the
  // lowest-level descriptor vector"
  Array a = from_ints2({{1, 2}, {}, {3}});
  EXPECT_EQ(a.lengths(), (IntVec{2, 0, 1}));
  EXPECT_EQ(a.length(), 3);
  EXPECT_EQ(to_text(a), "[[1,2],[],[3]]");
}

TEST(Nested, WhollyEmpty) {
  Array a = from_ints2({});
  EXPECT_EQ(a.length(), 0);
  EXPECT_EQ(to_text(a), "[]");
}

TEST(Nested, ConstructorRejectsBadDescriptor) {
  EXPECT_THROW((void)Array::nested(IntVec{2, 2}, Array::ints(IntVec{1, 2, 3})),
               VectorError);
  EXPECT_THROW((void)Array::nested(IntVec{-1, 4}, Array::ints(IntVec{1, 2, 3})),
               VectorError);
}

TEST(Nested, TupleComponentsMustAgree) {
  EXPECT_THROW((void)Array::tuple({Array::ints(IntVec{1, 2}),
                             Array::ints(IntVec{1})}),
               RepresentationError);
  EXPECT_THROW((void)Array::tuple({}), RepresentationError);
}

TEST(Nested, TupleOfVectors) {
  // Seq((Int, Bool)) as structure-of-arrays — the "k > d+1 vectors" case.
  Array a = Array::tuple(
      {Array::ints(IntVec{1, 2}), Array::bools(vl::BoolVec{1, 0})});
  EXPECT_EQ(a.length(), 2);
  EXPECT_EQ(to_text(a), "[(1,true),(2,false)]");
  EXPECT_THROW((void)descriptor_stack(a), RepresentationError);
}

TEST(Nested, AccessorsThrowOnWrongKind) {
  Array a = Array::ints(IntVec{1});
  EXPECT_THROW((void)a.lengths(), RepresentationError);
  EXPECT_THROW((void)a.inner(), RepresentationError);
  EXPECT_THROW((void)a.components(), RepresentationError);
  EXPECT_THROW((void)a.real_values(), RepresentationError);
  Array n = from_ints2({{1}});
  EXPECT_THROW((void)n.int_values(), RepresentationError);
}

TEST(Nested, StructuralEquality) {
  EXPECT_EQ(from_ints2({{1, 2}, {3}}), from_ints2({{1, 2}, {3}}));
  EXPECT_FALSE(from_ints2({{1, 2}, {3}}) == from_ints2({{1}, {2, 3}}));
  EXPECT_FALSE(from_ints2({{1}}) == from_ints({1}));
}

TEST(Nested, CopiesShareStructure) {
  Array a = random_nested_ints(7, 3, 100, 4);
  Array b = a;  // O(1) copy
  EXPECT_EQ(a.node_identity(), b.node_identity());
  EXPECT_EQ(a, b);
}

TEST(Nested, RoundTripToText) {
  Array a = from_ints3({{{1}, {}}, {}, {{2, 3}}});
  EXPECT_EQ(to_text(a), "[[[1],[]],[],[[2,3]]]");
}

TEST(Nested, RealAndBoolLeaves) {
  Array r = Array::reals(RealVec{0.5, 1.5});
  EXPECT_EQ(to_text(r), "[0.5,1.5]");
  Array b = Array::bools(vl::BoolVec{1, 0});
  EXPECT_EQ(to_text(b), "[true,false]");
}

class RandomNestedValidation
    : public ::testing::TestWithParam<std::tuple<int, Size>> {};

TEST_P(RandomNestedValidation, GeneratedArraysAreConsistent) {
  auto [depth, top] = GetParam();
  Array a = random_nested_ints(1000 + static_cast<std::uint64_t>(depth), depth,
                               top, 4);
  a.validate();
  EXPECT_EQ(spine_depth(a), depth);
  EXPECT_EQ(descriptor_stack(a).size(), static_cast<std::size_t>(depth) + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RandomNestedValidation,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 5),
                       ::testing::Values<Size>(0, 1, 16, 200)));

}  // namespace
}  // namespace proteus::seq
