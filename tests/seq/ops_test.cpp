// Tests for the structural kernels on the flat representation.
#include <gtest/gtest.h>

#include "seq/seq.hpp"
#include "vl/vl.hpp"

namespace proteus::seq {
namespace {

using vl::BoolVec;

TEST(Gather, ScalarElements) {
  Array a = from_ints({10, 20, 30});
  EXPECT_EQ(to_text(gather(a, IntVec{2, 2, 0})), "[30,30,10]");
}

TEST(Gather, SequenceElements) {
  Array a = from_ints2({{1, 2}, {}, {3, 4, 5}});
  EXPECT_EQ(to_text(gather(a, IntVec{2, 0, 2, 1})),
            "[[3,4,5],[1,2],[3,4,5],[]]");
}

TEST(Gather, DeepElements) {
  Array a = from_ints3({{{1}, {2}}, {{3, 4}}});
  EXPECT_EQ(to_text(gather(a, IntVec{1, 1, 0})),
            "[[[3,4]],[[3,4]],[[1],[2]]]");
}

TEST(Gather, TupleElements) {
  Array a = Array::tuple({from_ints({1, 2, 3}),
                          from_ints2({{9}, {}, {8, 7}})});
  EXPECT_EQ(to_text(gather(a, IntVec{2, 0})), "[(3,[8,7]),(1,[9])]");
}

TEST(Gather, OutOfRangeThrows) {
  EXPECT_THROW((void)gather(from_ints({1}), IntVec{1}), EvalError);
}

TEST(Pack, RestrictOnRepresentation) {
  Array a = from_ints2({{1}, {2, 2}, {}, {3}});
  EXPECT_EQ(to_text(pack(a, BoolVec{1, 0, 1, 1})), "[[1],[],[3]]");
}

TEST(Pack, LengthMismatchThrows) {
  EXPECT_THROW((void)pack(from_ints({1, 2}), BoolVec{1}), VectorError);
}

TEST(Combine, InterleavesByMask) {
  Array t = from_ints2({{1}, {2, 2}});
  Array f = from_ints2({{9, 9, 9}});
  EXPECT_EQ(to_text(combine(BoolVec{1, 0, 1}, t, f)),
            "[[1],[9,9,9],[2,2]]");
}

TEST(Combine, EmptySideWorks) {
  Array t = from_ints({});
  Array f = from_ints({4, 5});
  EXPECT_EQ(to_text(combine(BoolVec{0, 0}, t, f)), "[4,5]");
}

TEST(Combine, StructureMismatchThrows) {
  EXPECT_THROW((void)combine(BoolVec{1, 0}, from_ints({1}), from_ints2({{2}})),
               RepresentationError);
}

TEST(CombinePack, InverseLawsOnNested) {
  Array r = random_nested_ints(3, 2, 40, 4);
  BoolVec m = random_mask(4, 40, 1, 2);
  Array t = pack(r, m);
  Array f = pack(r, vl::logical_not(m));
  EXPECT_EQ(combine(m, t, f), r);
}

TEST(Concat, Nested) {
  EXPECT_EQ(to_text(concat(from_ints2({{1}, {}}), from_ints2({{2, 3}}))),
            "[[1],[],[2,3]]");
}

TEST(EmptyLike, PreservesStructure) {
  Array a = from_ints3({{{1}}, {}});
  Array e = empty_like(a);
  EXPECT_EQ(e.length(), 0);
  EXPECT_TRUE(same_structure(a, e));
}

TEST(BroadcastElement, ReplicatesOneElement) {
  Array a = from_ints2({{1, 2}, {3}});
  EXPECT_EQ(to_text(broadcast_element(a, 1, 3)), "[[3],[3],[3]]");
  EXPECT_EQ(to_text(broadcast_element(a, 0, 0)), "[]");
  EXPECT_THROW((void)broadcast_element(a, 2, 1), VectorError);
}

TEST(SegBroadcast, Dist1Semantics) {
  // dist^1([10, 20], [3, 1]) elements: 10 thrice, 20 once.
  EXPECT_EQ(to_text(seg_broadcast(from_ints({10, 20}), IntVec{3, 1})),
            "[10,10,10,20]");
}

TEST(ElementAndSlice, Basic) {
  Array a = from_ints({5, 6, 7, 8});
  EXPECT_EQ(to_text(element(a, 2)), "[7]");
  EXPECT_EQ(to_text(slice(a, 1, 2)), "[6,7]");
  EXPECT_THROW((void)slice(a, 3, 2), VectorError);
}

TEST(SameStructure, Cases) {
  EXPECT_TRUE(same_structure(from_ints({1}), from_ints({})));
  EXPECT_FALSE(same_structure(from_ints({1}), from_ints2({{1}})));
  EXPECT_TRUE(same_structure(from_ints2({{1}}), from_ints2({})));
  EXPECT_FALSE(same_structure(Array::ints({}), Array::reals({})));
}

/// Property: gather distributes over nesting — gathering whole segments
/// equals per-segment boxed selection.
class GatherNestedProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(GatherNestedProperty, MatchesBoxedSelection) {
  const std::uint64_t seed = GetParam();
  Array a = random_nested_ints(seed, 2, 25, 5);
  IntVec idx = random_ints(seed + 1, 40, 0, 24);
  Array got = gather(a, idx);
  // reference via slow element/concat path
  Array expect = empty_like(a);
  for (Size i = 0; i < idx.size(); ++i) {
    expect = concat(expect, element(a, idx[i]));
  }
  EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GatherNestedProperty,
                         ::testing::Values<std::uint64_t>(21, 22, 23, 24));

}  // namespace
}  // namespace proteus::seq
