// Tests for the pretty printer, including the depth-extension notation of
// transformed programs.
#include <gtest/gtest.h>

#include "lang/lang.hpp"

namespace proteus::lang {
namespace {

TEST(Printer, ParsePrintFixpoint) {
  // print(parse(print(parse(s)))) == print(parse(s)) for P programs.
  const char* src = R"(
    fun f(v: seq(int), b: bool): seq(int) =
      [x <- v | x > 0 : if b then x else -x]
  )";
  Program p1 = parse_program(src);
  std::string t1 = to_text(p1);
  Program p2 = parse_program(t1);
  EXPECT_EQ(to_text(p2), t1);
}

TEST(Printer, DepthSuffixes) {
  ExprPtr arg = make_expr(VarRef{"v", false}, Type::seq(Type::int_()));
  ExprPtr call = make_expr(PrimCall{Prim::kMul, 2, {arg, arg}, {1, 1}},
                           Type::seq(Type::int_()));
  EXPECT_EQ(to_text(call), "mult^2(v, v)");
  ExprPtr fcall = make_expr(FunCall{"sqs", 1, {arg}, {1}},
                            Type::seq(Type::seq(Type::int_())));
  EXPECT_EQ(to_text(fcall), "sqs^1(v)");
}

TEST(Printer, InfixOnlyAtDepthZero) {
  ExprPtr a = make_expr(IntLit{1}, Type::int_());
  ExprPtr plain = make_expr(PrimCall{Prim::kAdd, 0, {a, a}, {}}, Type::int_());
  EXPECT_EQ(to_text(plain), "(1 + 1)");
  ExprPtr lifted = make_expr(PrimCall{Prim::kAdd, 1, {a, a}, {}},
                             Type::seq(Type::int_()));
  EXPECT_EQ(to_text(lifted), "add^1(1, 1)");
}

TEST(Printer, SpelledNamesForInfixOps) {
  ExprPtr a = make_expr(IntLit{1}, Type::int_());
  auto text = [&](Prim op) {
    return to_text(
        make_expr(PrimCall{op, 1, {a, a}, {}}, Type::seq(Type::bool_())));
  };
  EXPECT_EQ(text(Prim::kEq), "eq^1(1, 1)");
  EXPECT_EQ(text(Prim::kLe), "le^1(1, 1)");
  EXPECT_EQ(text(Prim::kDiv), "div^1(1, 1)");
  EXPECT_EQ(text(Prim::kSub), "sub^1(1, 1)");
}

TEST(Printer, FunctionDefinition) {
  Program p = parse_program("fun f(x: int): int = x + 1");
  EXPECT_EQ(to_text(p.functions[0]), "fun f(x: int): int =\n  (x + 1)\n");
}

TEST(Printer, IteratorWithFilter) {
  EXPECT_EQ(to_text(parse_expression("[x <- v | p(x) : f(x)]")),
            "[x <- v | p(x) : f(x)]");
}

TEST(Printer, PrimNameTable) {
  EXPECT_STREQ(prim_name(Prim::kRange1), "range1");
  EXPECT_STREQ(prim_name(Prim::kEmptyFrame), "empty_frame");
  Prim p;
  EXPECT_TRUE(lookup_prim("restrict", &p));
  EXPECT_EQ(p, Prim::kRestrict);
  EXPECT_TRUE(lookup_prim("any_true", &p));
  EXPECT_EQ(p, Prim::kAnyTrue);
  EXPECT_FALSE(lookup_prim("nonesuch", &p));
}

TEST(Printer, ExtensionNames) {
  EXPECT_EQ(extension_name("f", 0), "f");
  EXPECT_EQ(extension_name("f", 1), "f^1");
  EXPECT_EQ(extension_name("sqs", 3), "sqs^3");
}

}  // namespace
}  // namespace proteus::lang
