// Tests for the type representation.
#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "lang/types.hpp"

namespace proteus::lang {
namespace {

TEST(Types, ScalarsAreInterned) {
  EXPECT_EQ(Type::int_().get(), Type::int_().get());
  EXPECT_EQ(Type::bool_().get(), Type::bool_().get());
}

TEST(Types, Predicates) {
  EXPECT_TRUE(Type::int_()->is_scalar());
  EXPECT_TRUE(Type::int_()->is_numeric());
  EXPECT_TRUE(Type::real()->is_numeric());
  EXPECT_FALSE(Type::bool_()->is_numeric());
  EXPECT_TRUE(Type::seq(Type::int_())->is_seq());
  EXPECT_TRUE(Type::tuple({Type::int_()})->is_tuple());
  EXPECT_TRUE(Type::fun({Type::int_()}, Type::bool_())->is_fun());
}

TEST(Types, StructuralEquality) {
  EXPECT_TRUE(equal(Type::seq(Type::int_()), Type::seq(Type::int_())));
  EXPECT_FALSE(equal(Type::seq(Type::int_()), Type::seq(Type::bool_())));
  EXPECT_TRUE(equal(Type::tuple({Type::int_(), Type::bool_()}),
                    Type::tuple({Type::int_(), Type::bool_()})));
  EXPECT_FALSE(equal(Type::tuple({Type::int_()}),
                     Type::tuple({Type::int_(), Type::int_()})));
  EXPECT_TRUE(equal(Type::fun({Type::int_()}, Type::int_()),
                    Type::fun({Type::int_()}, Type::int_())));
  EXPECT_FALSE(equal(Type::fun({Type::int_()}, Type::int_()),
                     Type::fun({Type::int_()}, Type::bool_())));
}

TEST(Types, SeqDepthAndBase) {
  TypePtr t = Type::seq_n(Type::bool_(), 3);
  EXPECT_EQ(seq_depth(t), 3);
  EXPECT_TRUE(equal(seq_base(t), Type::bool_()));
  EXPECT_EQ(seq_depth(Type::int_()), 0);
}

TEST(Types, ToString) {
  EXPECT_EQ(to_string(Type::seq(Type::seq(Type::int_()))), "seq(seq(int))");
  EXPECT_EQ(to_string(Type::tuple({Type::int_(), Type::real()})),
            "(int, real)");
  EXPECT_EQ(to_string(Type::fun({Type::int_(), Type::int_()}, Type::bool_())),
            "(int, int) -> bool");
}

TEST(Types, AccessorsThrowOnWrongKind) {
  EXPECT_THROW((void)Type::int_()->elem(), TypeError);
  EXPECT_THROW((void)Type::int_()->components(), TypeError);
  EXPECT_THROW((void)Type::int_()->params(), TypeError);
  EXPECT_THROW((void)Type::int_()->result(), TypeError);
}

TEST(Types, ParseType) {
  EXPECT_TRUE(equal(parse_type("seq(seq(int))"),
                    Type::seq(Type::seq(Type::int_()))));
  EXPECT_TRUE(equal(parse_type("(int, bool)"),
                    Type::tuple({Type::int_(), Type::bool_()})));
  EXPECT_TRUE(equal(parse_type("(int) -> seq(int)"),
                    Type::fun({Type::int_()}, Type::seq(Type::int_()))));
  EXPECT_TRUE(equal(parse_type("((int))"), Type::int_()));  // grouping
  EXPECT_TRUE(equal(parse_type("() -> int"), Type::fun({}, Type::int_())));
}

TEST(Types, ParseTypeErrors) {
  EXPECT_THROW((void)parse_type("quux"), SyntaxError);
  EXPECT_THROW((void)parse_type("()"), SyntaxError);  // empty tuple
  EXPECT_THROW((void)parse_type("seq int"), SyntaxError);
}

}  // namespace
}  // namespace proteus::lang
