// Tests for the scanner.
#include <gtest/gtest.h>

#include "lang/lexer.hpp"
#include "vl/check.hpp"

namespace proteus::lang {
namespace {

std::vector<Tok> kinds(std::string_view src) {
  std::vector<Tok> out;
  for (const Token& t : lex(src)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInput) {
  EXPECT_EQ(kinds(""), (std::vector<Tok>{Tok::kEnd}));
  EXPECT_EQ(kinds("   \n\t  "), (std::vector<Tok>{Tok::kEnd}));
}

TEST(Lexer, Keywords) {
  EXPECT_EQ(kinds("fun let in if then else true false and or not mod"),
            (std::vector<Tok>{Tok::kFun, Tok::kLet, Tok::kIn, Tok::kIf,
                              Tok::kThen, Tok::kElse, Tok::kTrue, Tok::kFalse,
                              Tok::kAnd, Tok::kOr, Tok::kNot, Tok::kMod,
                              Tok::kEnd}));
}

TEST(Lexer, Identifiers) {
  auto toks = lex("foo _bar baz2 sqs^1");
  EXPECT_EQ(toks[0].text, "foo");
  EXPECT_EQ(toks[1].text, "_bar");
  EXPECT_EQ(toks[2].text, "baz2");
  EXPECT_EQ(toks[3].text, "sqs^1");  // '^' allowed for extension names
}

TEST(Lexer, IntLiterals) {
  auto toks = lex("0 42 123456789012345");
  EXPECT_EQ(toks[0].int_value, 0);
  EXPECT_EQ(toks[1].int_value, 42);
  EXPECT_EQ(toks[2].int_value, 123456789012345LL);
}

TEST(Lexer, RealLiterals) {
  auto toks = lex("1.5 2.0e3 7e-2");
  EXPECT_EQ(toks[0].kind, Tok::kRealLit);
  EXPECT_DOUBLE_EQ(toks[0].real_value, 1.5);
  EXPECT_DOUBLE_EQ(toks[1].real_value, 2000.0);
  EXPECT_DOUBLE_EQ(toks[2].real_value, 0.07);
}

TEST(Lexer, RangeDotsDoNotEatInt) {
  // "1..n" must lex as INT DOTDOT IDENT, not a real literal.
  EXPECT_EQ(kinds("[1..n]"),
            (std::vector<Tok>{Tok::kLBracket, Tok::kIntLit, Tok::kDotDot,
                              Tok::kIdent, Tok::kRBracket, Tok::kEnd}));
}

TEST(Lexer, IdentifierEAfterNumber) {
  // "2e" is 2 followed by identifier e (no exponent digits).
  EXPECT_EQ(kinds("2e"),
            (std::vector<Tok>{Tok::kIntLit, Tok::kIdent, Tok::kEnd}));
}

TEST(Lexer, MultiCharOperators) {
  EXPECT_EQ(kinds("<- -> => == != <= >= ++ .."),
            (std::vector<Tok>{Tok::kLeftArrow, Tok::kArrow, Tok::kFatArrow,
                              Tok::kEqEq, Tok::kBangEq, Tok::kLe, Tok::kGe,
                              Tok::kPlusPlus, Tok::kDotDot, Tok::kEnd}));
}

TEST(Lexer, SingleCharOperators) {
  EXPECT_EQ(kinds("( ) [ ] , : ; . # | = + - * / < >"),
            (std::vector<Tok>{Tok::kLParen, Tok::kRParen, Tok::kLBracket,
                              Tok::kRBracket, Tok::kComma, Tok::kColon,
                              Tok::kSemicolon, Tok::kDot, Tok::kHash,
                              Tok::kBar, Tok::kAssign, Tok::kPlus, Tok::kMinus,
                              Tok::kStar, Tok::kSlash, Tok::kLt, Tok::kGt,
                              Tok::kEnd}));
}

TEST(Lexer, Comments) {
  EXPECT_EQ(kinds("1 // comment to end of line\n 2"),
            (std::vector<Tok>{Tok::kIntLit, Tok::kIntLit, Tok::kEnd}));
}

TEST(Lexer, SourceLocations) {
  auto toks = lex("a\n  b");
  EXPECT_EQ(toks[0].loc.line, 1);
  EXPECT_EQ(toks[0].loc.column, 1);
  EXPECT_EQ(toks[1].loc.line, 2);
  EXPECT_EQ(toks[1].loc.column, 3);
}

TEST(Lexer, BadCharacterThrows) {
  EXPECT_THROW((void)lex("a @ b"), SyntaxError);
  EXPECT_THROW((void)lex("a ! b"), SyntaxError);  // '!' needs '='
}

TEST(Lexer, IteratorExample) {
  // The paper's notation in ASCII.
  EXPECT_EQ(kinds("[i <- [1 .. n] : i * i]"),
            (std::vector<Tok>{Tok::kLBracket, Tok::kIdent, Tok::kLeftArrow,
                              Tok::kLBracket, Tok::kIntLit, Tok::kDotDot,
                              Tok::kIdent, Tok::kRBracket, Tok::kColon,
                              Tok::kIdent, Tok::kStar, Tok::kIdent,
                              Tok::kRBracket, Tok::kEnd}));
}

}  // namespace
}  // namespace proteus::lang
