// Tests for the recursive-descent parser (structure and precedence).
#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "lang/typecheck.hpp"
#include "lang/printer.hpp"

namespace proteus::lang {
namespace {

std::string round(std::string_view src) {
  return to_text(parse_expression(src));
}

TEST(Parser, Literals) {
  EXPECT_EQ(round("42"), "42");
  EXPECT_EQ(round("true"), "true");
  EXPECT_EQ(round("false"), "false");
  EXPECT_EQ(round("1.5"), "1.5");
}

TEST(Parser, ArithmeticPrecedence) {
  EXPECT_EQ(round("1 + 2 * 3"), "(1 + (2 * 3))");
  EXPECT_EQ(round("(1 + 2) * 3"), "((1 + 2) * 3)");
  EXPECT_EQ(round("1 - 2 - 3"), "((1 - 2) - 3)");  // left assoc
  EXPECT_EQ(round("6 / 3 * 2"), "((6 / 3) * 2)");
  EXPECT_EQ(round("7 mod 2 + 1"), "((7 mod 2) + 1)");
}

TEST(Parser, ComparisonAndLogic) {
  EXPECT_EQ(round("1 < 2 and 3 >= 2"), "((1 < 2) and (3 >= 2))");
  EXPECT_EQ(round("not a or b"), "(not(a) or b)");
  EXPECT_EQ(round("a == b"), "(a == b)");
  EXPECT_EQ(round("a != b"), "(a != b)");
}

TEST(Parser, UnaryOperators) {
  EXPECT_EQ(round("-x + 1"), "(neg(x) + 1)");
  EXPECT_EQ(round("#v"), "length(v)");
  EXPECT_EQ(round("#v + 1"), "(length(v) + 1)");
}

TEST(Parser, IndexingAndCalls) {
  EXPECT_EQ(round("v[1]"), "seq_index(v, 1)");
  EXPECT_EQ(round("v[1][2]"), "seq_index(seq_index(v, 1), 2)");
  EXPECT_EQ(round("f(x, y)"), "f(x, y)");
  EXPECT_EQ(round("f(x)[2]"), "seq_index(f(x), 2)");
}

TEST(Parser, TupleAndExtract) {
  EXPECT_EQ(round("(a, b, c)"), "(a, b, c)");
  EXPECT_EQ(round("t.1"), "t.1");
  EXPECT_EQ(round("t.2.1"), "t.2.1");
  EXPECT_EQ(round("(a)"), "a");  // grouping, not tuple
}

TEST(Parser, SequenceForms) {
  EXPECT_EQ(round("[1, 2, 3]"), "[1, 2, 3]");
  EXPECT_EQ(round("[1 .. n]"), "range(1, n)");
  EXPECT_EQ(round("[x]"), "[x]");
  EXPECT_EQ(round("a ++ b"), "concat(a, b)");
}

TEST(Parser, TypedEmptySequence) {
  ExprPtr e = parse_expression("([] : seq(int))");
  const auto* lit = as<SeqExpr>(e);
  ASSERT_NE(lit, nullptr);
  EXPECT_TRUE(lit->elems.empty());
  EXPECT_TRUE(equal(lit->elem_type, Type::int_()));
}

TEST(Parser, UntypedEmptyLiteralParsesButNeedsContext) {
  // `[]` parses (so it can take its type from siblings) but a lone one is
  // rejected by the checker.
  ExprPtr e = parse_expression("[]");
  EXPECT_NE(as<SeqExpr>(e), nullptr);
  Program empty;
  EXPECT_THROW((void)typecheck_expression(empty, e), TypeError);
}

TEST(Parser, Iterator) {
  EXPECT_EQ(round("[i <- [1 .. n] : i * i]"),
            "[i <- range(1, n) : (i * i)]");
  EXPECT_EQ(round("[x <- v | x > 0 : x + 1]"),
            "[x <- v | (x > 0) : (x + 1)]");
}

TEST(Parser, LetAndIf) {
  EXPECT_EQ(round("let x = 1 in x + 2"), "let x = 1 in (x + 2)");
  EXPECT_EQ(round("if a then 1 else 2"), "if a then 1 else 2");
  EXPECT_EQ(round("let x = 1 in let y = 2 in x"),
            "let x = 1 in let y = 2 in x");
}

TEST(Parser, Lambda) {
  EXPECT_EQ(round("fun(x: int) => x + 1"), "fun(x: int) => (x + 1)");
  EXPECT_EQ(round("(fun(x: int) => x)(3)"), "(fun(x: int) => x)(3)");
}

TEST(Parser, FunctionDefinitions) {
  Program p = parse_program(R"(
    fun one(): int = 1
    fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]
    fun infer(x: int) = x
  )");
  ASSERT_EQ(p.functions.size(), 3u);
  EXPECT_EQ(p.functions[0].name, "one");
  EXPECT_TRUE(p.functions[0].params.empty());
  EXPECT_EQ(p.functions[1].params.size(), 1u);
  EXPECT_TRUE(equal(p.functions[1].result, Type::seq(Type::int_())));
  EXPECT_EQ(p.functions[2].result, nullptr);  // inferred later
}

TEST(Parser, Errors) {
  EXPECT_THROW((void)parse_expression("1 +"), SyntaxError);
  EXPECT_THROW((void)parse_expression("(1, 2"), SyntaxError);
  EXPECT_THROW((void)parse_expression("[x <- v : ]"), SyntaxError);
  EXPECT_THROW((void)parse_expression("let x 1 in x"), SyntaxError);
  EXPECT_THROW((void)parse_expression("if a then 1"), SyntaxError);
  EXPECT_THROW((void)parse_expression("t.x"), SyntaxError);  // needs int index
  EXPECT_THROW((void)parse_program("fun f(x) = x"), SyntaxError);  // missing type
  EXPECT_THROW((void)parse_expression("1 2"), SyntaxError);  // trailing tokens
}

TEST(Parser, ComparisonNonAssociative) {
  EXPECT_THROW((void)parse_expression("1 < 2 < 3"), SyntaxError);
}

TEST(Parser, DestructuringLet) {
  std::string t = round("let (a, b) = p in a + b");
  EXPECT_NE(t.find(".1"), std::string::npos) << t;
  EXPECT_NE(t.find(".2"), std::string::npos) << t;
  EXPECT_THROW((void)parse_expression("let (a) = p"), SyntaxError);
}

TEST(Parser, DeepUpdateForm) {
  // Table 2: seq_update with an index path.
  EXPECT_EQ(round("(s; [2] : 9)"), "update(s, 2, 9)");
  std::string two = round("(s; [1][2] : 9)");
  EXPECT_NE(two.find("update("), std::string::npos);
  EXPECT_NE(two.find("seq_index("), std::string::npos);
  EXPECT_THROW((void)parse_expression("(s; : 9)"), SyntaxError);
  EXPECT_THROW((void)parse_expression("(s; [1] 9)"), SyntaxError);
}

TEST(Parser, PaperExamples) {
  // Definitions from Section 2, reformatted into the ASCII syntax.
  EXPECT_NO_THROW(parse_program(R"(
    fun odd(a: int): bool = 1 == (a mod 2)
    fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]
    fun concat2(v: seq(int), w: seq(int)): seq(int) =
      [i <- [1 .. #v + #w] :
        if i <= #v then v[i] else w[i - #v]]
    fun oddsq(n: int): seq(seq(int)) =
      [i <- [1 .. n] | odd(i) : sqs(i)]
  )"));
}

}  // namespace
}  // namespace proteus::lang
