// Accept/reject suites for the static monomorphic type checker.
#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "lang/typecheck.hpp"

namespace proteus::lang {
namespace {

Program check(std::string_view src) {
  return typecheck(parse_program(src));
}

TypePtr type_of(std::string_view program, std::string_view expr) {
  Program p = check(program);
  return typecheck_expression(p, parse_expression(expr))->type;
}

TEST(Typecheck, ScalarArithmetic) {
  EXPECT_TRUE(equal(type_of("", "1 + 2 * 3"), Type::int_()));
  EXPECT_TRUE(equal(type_of("", "1.5 + 2.5"), Type::real()));
  EXPECT_TRUE(equal(type_of("", "real(2) * 3.0"), Type::real()));
  EXPECT_TRUE(equal(type_of("", "int(1.9)"), Type::int_()));
}

TEST(Typecheck, NoImplicitPromotion) {
  EXPECT_THROW((void)type_of("", "1 + 2.0"), TypeError);
}

TEST(Typecheck, Comparisons) {
  EXPECT_TRUE(equal(type_of("", "1 < 2"), Type::bool_()));
  EXPECT_TRUE(equal(type_of("", "true == false"), Type::bool_()));
  EXPECT_THROW((void)type_of("", "true < false"), TypeError);
  EXPECT_THROW((void)type_of("", "1 == true"), TypeError);
}

TEST(Typecheck, SequencePrimitives) {
  EXPECT_TRUE(equal(type_of("", "#[1,2]"), Type::int_()));
  EXPECT_TRUE(equal(type_of("", "[1 .. 9]"), Type::seq(Type::int_())));
  EXPECT_TRUE(equal(type_of("", "[1,2][1]"), Type::int_()));
  EXPECT_TRUE(equal(type_of("", "[[1],[2]][1]"), Type::seq(Type::int_())));
  EXPECT_TRUE(equal(type_of("", "restrict([1,2],[true,false])"),
                    Type::seq(Type::int_())));
  EXPECT_TRUE(equal(type_of("", "combine([true,false],[1],[2])"),
                    Type::seq(Type::int_())));
  EXPECT_TRUE(
      equal(type_of("", "dist([1,2], 3)"), Type::seq(Type::seq(Type::int_()))));
  EXPECT_TRUE(equal(type_of("", "flatten([[1],[2]])"), Type::seq(Type::int_())));
  EXPECT_TRUE(equal(type_of("", "sum([1.0])"), Type::real()));
  EXPECT_TRUE(equal(type_of("", "update([1,2], 1, 9)"),
                    Type::seq(Type::int_())));
}

TEST(Typecheck, SequenceHomogeneity) {
  EXPECT_THROW((void)type_of("", "[1, true]"), TypeError);
  EXPECT_THROW((void)type_of("", "[[1], [true]]"), TypeError);
}

TEST(Typecheck, TypedEmptyLiteral) {
  EXPECT_TRUE(equal(type_of("", "([] : seq(int))"), Type::seq(Type::int_())));
  EXPECT_TRUE(equal(type_of("", "[1] ++ ([] : seq(int))"),
                    Type::seq(Type::int_())));
  EXPECT_THROW((void)type_of("", "[1.0] ++ ([] : seq(int))"), TypeError);
}

TEST(Typecheck, Iterator) {
  EXPECT_TRUE(equal(type_of("", "[i <- [1 .. 3] : i * i]"),
                    Type::seq(Type::int_())));
  EXPECT_TRUE(equal(type_of("", "[i <- [1 .. 3] : [j <- [1 .. i] : j]]"),
                    Type::seq(Type::seq(Type::int_()))));
  EXPECT_TRUE(equal(type_of("", "[i <- [1 .. 3] | i > 1 : i]"),
                    Type::seq(Type::int_())));
  EXPECT_THROW((void)type_of("", "[i <- 5 : i]"), TypeError);        // non-seq domain
  EXPECT_THROW((void)type_of("", "[i <- [1] | 3 : i]"), TypeError);  // non-bool filter
}

TEST(Typecheck, IfRules) {
  EXPECT_TRUE(equal(type_of("", "if true then 1 else 2"), Type::int_()));
  EXPECT_THROW((void)type_of("", "if 1 then 1 else 2"), TypeError);
  EXPECT_THROW((void)type_of("", "if true then 1 else true"), TypeError);
}

TEST(Typecheck, TupleRules) {
  EXPECT_TRUE(equal(type_of("", "(1, true).2"), Type::bool_()));
  EXPECT_THROW((void)type_of("", "(1, true).3"), TypeError);
  EXPECT_THROW((void)type_of("", "(1).1"), TypeError);  // (1) is grouping
}

TEST(Typecheck, FunctionCalls) {
  const char* prog = R"(
    fun inc(x: int): int = x + 1
    fun apply_twice(f: (int) -> int, x: int): int = f(f(x))
  )";
  EXPECT_TRUE(equal(type_of(prog, "inc(1)"), Type::int_()));
  EXPECT_TRUE(equal(type_of(prog, "apply_twice(inc, 3)"), Type::int_()));
  EXPECT_THROW((void)type_of(prog, "inc(true)"), TypeError);
  EXPECT_THROW((void)type_of(prog, "inc(1, 2)"), TypeError);
  EXPECT_THROW((void)type_of(prog, "nosuch(1)"), TypeError);
}

TEST(Typecheck, ResultInference) {
  Program p = check("fun f(x: int) = [x, x]");
  EXPECT_TRUE(equal(p.find("f")->result, Type::seq(Type::int_())));
}

TEST(Typecheck, RecursionNeedsResultAnnotation) {
  EXPECT_NO_THROW(check(
      "fun fact(n: int): int = if n <= 1 then 1 else n * fact(n - 1)"));
  EXPECT_THROW((void)check("fun fact(n: int) = if n <= 1 then 1 else n * fact(n-1)"),
               TypeError);
}

TEST(Typecheck, ForwardReferenceNeedsAnnotation) {
  EXPECT_NO_THROW(check(R"(
    fun a(x: int): int = b(x)
    fun b(x: int): int = x
  )"));
  EXPECT_THROW((void)check(R"(
    fun a(x: int): int = b(x)
    fun b(x: int) = x
  )"),
               TypeError);
}

TEST(Typecheck, DeclaredResultMustMatch) {
  EXPECT_THROW((void)check("fun f(x: int): bool = x + 1"), TypeError);
}

TEST(Typecheck, DuplicateAndReservedNames) {
  EXPECT_THROW((void)check("fun f(x: int): int = x fun f(y: int): int = y"),
               TypeError);
  EXPECT_THROW((void)check("fun sum(x: int): int = x"), TypeError);  // primitive
  EXPECT_THROW((void)check("fun f(sum: int): int = sum"), TypeError);
  EXPECT_THROW((void)type_of("fun g(x: int): int = x", "let g = 1 in g"), TypeError);
}

TEST(Typecheck, LambdaLifting) {
  Program lifted;
  Program p = check("fun id(x: int): int = x");
  ExprPtr e = typecheck_expression(
      p, parse_expression("(fun(x: int) => x * 2)(21)"), &lifted);
  EXPECT_TRUE(equal(e->type, Type::int_()));
  ASSERT_EQ(lifted.functions.size(), 1u);
  EXPECT_TRUE(equal(lifted.functions[0].result, Type::int_()));
}

TEST(Typecheck, LambdasAreFullyParameterized) {
  // A lambda cannot capture enclosing variables (Section 2).
  EXPECT_THROW((void)type_of("", "let y = 1 in (fun(x: int) => x + y)(2)"),
               TypeError);
}

TEST(Typecheck, PrimitiveAsValueRejected) {
  EXPECT_THROW((void)type_of("", "let f = length in 1"), TypeError);
}

TEST(Typecheck, FunctionValueAsArgument) {
  const char* prog = R"(
    fun inc(x: int): int = x + 1
    fun use(f: (int) -> int): int = f(0)
  )";
  EXPECT_TRUE(equal(type_of(prog, "use(inc)"), Type::int_()));
}

TEST(Typecheck, SequencesOfFunctionsRejected) {
  const char* prog = "fun inc(x: int): int = x + 1";
  EXPECT_THROW((void)type_of(prog, "[inc, inc]"), TypeError);
}

TEST(Typecheck, ExtendedPrimRules) {
  EXPECT_TRUE(equal(type_of("", "reverse([1,2])"), Type::seq(Type::int_())));
  EXPECT_THROW((void)type_of("", "reverse(1)"), TypeError);
  EXPECT_TRUE(equal(type_of("", "zip([1],[true])"),
                    Type::seq(Type::tuple({Type::int_(), Type::bool_()}))));
  EXPECT_THROW((void)type_of("", "zip([1], 2)"), TypeError);
  EXPECT_TRUE(equal(type_of("", "sqrt(2.0)"), Type::real()));
  EXPECT_THROW((void)type_of("", "sqrt(2)"), TypeError);
  EXPECT_TRUE(equal(
      type_of("", "seq_index_inner([5,6,7],[1,3])"), Type::seq(Type::int_())));
  EXPECT_THROW((void)type_of("", "seq_index_inner([5],[true])"), TypeError);
}

TEST(Typecheck, PrimOverloadResolution) {
  // prim_result_type directly
  EXPECT_TRUE(equal(
      prim_result_type(Prim::kAdd, {Type::real(), Type::real()}),
      Type::real()));
  EXPECT_THROW((void)prim_result_type(Prim::kAdd, {Type::bool_(), Type::bool_()}),
               TypeError);
  EXPECT_THROW((void)prim_result_type(Prim::kFlatten, {Type::seq(Type::int_())}),
               TypeError);
  EXPECT_TRUE(equal(
      prim_result_type(Prim::kFlatten,
                       {Type::seq(Type::seq(Type::bool_()))}),
      Type::seq(Type::bool_())));
}

}  // namespace
}  // namespace proteus::lang
