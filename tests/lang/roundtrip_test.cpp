// Printer/parser round-trip properties over realistic whole programs:
// print(parse(x)) is a fixpoint, and re-checking the printed text yields
// the same signatures.
#include <gtest/gtest.h>

#include "lang/lang.hpp"

namespace proteus::lang {
namespace {

class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, PrintParsePrintIsFixpoint) {
  Program p1 = parse_program(GetParam());
  std::string t1 = to_text(p1);
  Program p2 = parse_program(t1);
  EXPECT_EQ(to_text(p2), t1);
}

TEST_P(RoundTrip, PrintedTextTypechecksToSameSignatures) {
  Program checked1 = typecheck(parse_program(GetParam()));
  Program checked2 = typecheck(parse_program(to_text(checked1)));
  ASSERT_EQ(checked1.functions.size(), checked2.functions.size());
  for (std::size_t i = 0; i < checked1.functions.size(); ++i) {
    const FunDef& a = checked1.functions[i];
    const FunDef& b = checked2.functions[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_TRUE(equal(a.result, b.result)) << a.name;
    ASSERT_EQ(a.params.size(), b.params.size());
    for (std::size_t k = 0; k < a.params.size(); ++k) {
      EXPECT_TRUE(equal(a.params[k].type, b.params[k].type));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, RoundTrip,
    ::testing::Values(
        "fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]",
        R"(fun odd(a: int): bool = 1 == (a mod 2)
           fun oddsq(n: int): seq(seq(int)) =
             [i <- [1 .. n] | odd(i) : [j <- [1 .. i] : j]])",
        R"(fun qs(v: seq(int)): seq(int) =
             if #v <= 1 then v
             else let p = v[1] in
               qs([x <- v | x < p : x]) ++ [x <- v | x == p : x] ++
               qs([x <- v | x > p : x]))",
        R"(fun pairs(v: seq(int)): seq((int, (int, bool))) =
             [x <- v : (x, (x * 2, x > 0))]
           fun firsts(v: seq((int, (int, bool)))): seq(int) =
             [p <- v : p.1 + p.2.1])",
        R"(fun fold(f: (int,int) -> int, z: int, v: seq(int)): int =
             if #v == 0 then z
             else f(fold(f, z, [i <- [1 .. #v - 1] : v[i]]), v[#v])
           fun add2(a: int, b: int): int = a + b
           fun use(m: seq(seq(int))): seq(int) =
             [row <- m : fold(add2, 0, row)])",
        R"(fun stats(v: seq(real)): (real, real) =
             let m = sum(v) / real(#v) in
             (m, sum([x <- v : (x - m) * (x - m)]) / real(#v)))",
        R"(fun upd(m: seq(seq(int)), i: int): seq(seq(int)) =
             (m; [i][1] : 0)
           fun lens(m: seq(seq(int))): seq(int) = [r <- m : #r])",
        R"(fun emptyish(n: int): seq(seq(int)) =
             if n == 0 then ([] : seq(seq(int)))
             else [[1], [], range1(n)])"));

}  // namespace
}  // namespace proteus::lang
