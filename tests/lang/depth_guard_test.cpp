// Regression tests for the recursion-depth guards in the parser and
// printer: adversarially deep inputs must raise a structured T003 trap
// instead of overrunning the C++ stack (the parser used to segfault on
// deeply parenthesized input).
#include <gtest/gtest.h>

#include <string>

#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "rt/rt.hpp"

namespace proteus::lang {
namespace {

std::string deep_parens(std::size_t depth) {
  std::string s;
  s.reserve(2 * depth + 1);
  s.append(depth, '(');
  s += '1';
  s.append(depth, ')');
  return s;
}

TEST(DepthGuard, ParserTraps100kDeepNesting) {
  // 100k levels of '(' would previously exhaust the C++ stack; now the
  // structural-nesting governor traps at kDefaultMaxNesting.
  try {
    (void)parse_expression(deep_parens(100000));
    FAIL() << "expected T003";
  } catch (const rt::RuntimeTrap& e) {
    EXPECT_EQ(e.trap(), rt::Trap::kDepth);
    EXPECT_EQ(e.site(), "parser");
  }
}

TEST(DepthGuard, ParserTrapsDeeplyNestedTypes) {
  std::string t;
  t.reserve(100000 * 5 + 3);
  for (int i = 0; i < 100000; ++i) t += "seq(";
  t += "int";
  t.append(100000, ')');
  try {
    (void)parse_type(t);
    FAIL() << "expected T003";
  } catch (const rt::RuntimeTrap& e) {
    EXPECT_EQ(e.trap(), rt::Trap::kDepth);
    EXPECT_EQ(e.site(), "parser");
  }
}

TEST(DepthGuard, ParserAcceptsReasonableNesting) {
  ExprPtr e = parse_expression(deep_parens(500));
  ASSERT_NE(e, nullptr);
  // A tightened budget lowers the ceiling for the same input.
  rt::ExecBudget b;
  b.max_depth = 100;
  rt::GovernorScope scope(b);
  EXPECT_THROW((void)parse_expression(deep_parens(500)), rt::RuntimeTrap);
}

TEST(DepthGuard, PrinterTrapsUnderTightDepthBudget) {
  // Depth ~100 expression parses fine under the defaults...
  std::string src;
  for (int i = 0; i < 100; ++i) src += "let x" + std::to_string(i) + " = 1 in ";
  src += "0";
  ExprPtr e = parse_expression(src);
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(to_text(e).empty());
  // ...but rendering it under a depth-30 budget traps in the printer.
  rt::ExecBudget b;
  b.max_depth = 30;
  rt::GovernorScope scope(b);
  try {
    (void)to_text(e);
    FAIL() << "expected T003";
  } catch (const rt::RuntimeTrap& trap) {
    EXPECT_EQ(trap.trap(), rt::Trap::kDepth);
    EXPECT_EQ(trap.site(), "printer");
  }
}

}  // namespace
}  // namespace proteus::lang
