// histogram_test.cpp — the log-bucketed latency histogram behind
// serve.*.duration_us: bucket boundaries, quantile estimation, merge,
// and the invariants the OpenMetrics exporter depends on (cumulative
// bucket monotonicity).
#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace proteus::obs {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.p99(), 0u);
}

TEST(HistogramTest, BucketUpperBounds) {
  // Bucket 0 holds only 0; bucket i (i >= 1) holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper_bound(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper_bound(3), 7u);
  EXPECT_EQ(Histogram::bucket_upper_bound(10), 1023u);
  EXPECT_EQ(Histogram::bucket_upper_bound(63), UINT64_MAX / 2);
  EXPECT_EQ(Histogram::bucket_upper_bound(64), UINT64_MAX);
}

TEST(HistogramTest, ObservePlacesValuesInTheRightBucket) {
  Histogram h;
  h.observe(0);    // bucket 0
  h.observe(1);    // bucket 1
  h.observe(2);    // bucket 2: [2, 3]
  h.observe(3);    // bucket 2
  h.observe(4);    // bucket 3: [4, 7]
  h.observe(7);    // bucket 3
  h.observe(8);    // bucket 4: [8, 15]
  h.observe(UINT64_MAX);  // bucket 64

  const auto& b = h.buckets();
  EXPECT_EQ(b[0], 1u);
  EXPECT_EQ(b[1], 1u);
  EXPECT_EQ(b[2], 2u);
  EXPECT_EQ(b[3], 2u);
  EXPECT_EQ(b[4], 1u);
  EXPECT_EQ(b[64], 1u);
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), UINT64_MAX);
}

TEST(HistogramTest, CountSumMinMax) {
  Histogram h;
  h.observe(10);
  h.observe(20);
  h.observe(5);
  EXPECT_FALSE(h.empty());
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 35u);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 20u);
}

TEST(HistogramTest, SingleValueQuantilesCollapseToIt) {
  Histogram h;
  h.observe(42);
  // One observation: every quantile is clamped into [min, max] = [42, 42].
  EXPECT_EQ(h.quantile(0.0), 42u);
  EXPECT_EQ(h.p50(), 42u);
  EXPECT_EQ(h.p95(), 42u);
  EXPECT_EQ(h.p99(), 42u);
}

TEST(HistogramTest, QuantilesAreMonotoneAndBucketAccurate) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.observe(v);

  const std::uint64_t p50 = h.p50();
  const std::uint64_t p95 = h.p95();
  const std::uint64_t p99 = h.p99();
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max());
  EXPECT_GE(p50, h.min());

  // The estimate can be off by at most one bucket width (2x): the true
  // p50 of 1..1000 is 500, which lives in bucket [256, 511].
  EXPECT_GE(p50, 256u);
  EXPECT_LE(p50, 511u);
  // True p99 is 990, bucket [512, 1023].
  EXPECT_GE(p99, 512u);
  EXPECT_LE(p99, 1023u);
}

TEST(HistogramTest, QuantileClampsToObservedRange) {
  Histogram h;
  h.observe(100);
  h.observe(100);
  h.observe(100);
  // All mass at 100 (bucket [64, 127]): interpolation must not escape
  // the observed [min, max] envelope.
  EXPECT_EQ(h.p50(), 100u);
  EXPECT_EQ(h.p99(), 100u);
}

TEST(HistogramTest, MergeFoldsEverything) {
  Histogram a;
  a.observe(1);
  a.observe(1000);
  Histogram b;
  b.observe(7);
  b.observe(2);

  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 1010u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 1000u);
  EXPECT_EQ(a.buckets()[1], 1u);   // 1
  EXPECT_EQ(a.buckets()[2], 1u);   // 2
  EXPECT_EQ(a.buckets()[3], 1u);   // 7
  EXPECT_EQ(a.buckets()[10], 1u);  // 1000
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  Histogram a;
  a.observe(5);
  Histogram empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 5u);

  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.min(), 5u);
}

TEST(HistogramTest, CumulativeBucketsAreMonotone) {
  // The OpenMetrics exporter emits cumulative _bucket{le="..."} series;
  // the per-bucket counts must sum to count() so the running sum is
  // monotone and ends at count().
  Histogram h;
  const std::uint64_t values[] = {0, 1, 3, 9, 27, 81, 243, 729, 6561, 59049};
  for (const std::uint64_t v : values) h.observe(v);

  std::uint64_t running = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    running += h.buckets()[i];
    EXPECT_LE(running, h.count());
  }
  EXPECT_EQ(running, h.count());
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.observe(9);
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.buckets()[4], 0u);
}

}  // namespace
}  // namespace proteus::obs
