// log_test.cpp — the structured logger behind proteusd's per-request
// lines: level filtering, the text and NDJSON formats, escaping, and
// sink redirection. Tests configure the global logger onto a local
// ostringstream and restore kOff afterwards so suites stay independent.
#include "obs/log.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace proteus::obs {
namespace {

/// RAII: point the global logger at a local buffer for one test, then
/// silence it again.
class LogCapture {
 public:
  LogCapture(LogLevel level, bool json) {
    logger().configure(level, json, &buffer_);
  }
  ~LogCapture() { logger().configure(LogLevel::kOff, false, nullptr); }
  [[nodiscard]] std::string text() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
};

TEST(LogLevelTest, ParseRoundTrip) {
  bool ok = false;
  EXPECT_EQ(parse_log_level("debug", &ok), LogLevel::kDebug);
  EXPECT_TRUE(ok);
  EXPECT_EQ(parse_log_level("info", &ok), LogLevel::kInfo);
  EXPECT_TRUE(ok);
  EXPECT_EQ(parse_log_level("warn", &ok), LogLevel::kWarn);
  EXPECT_TRUE(ok);
  EXPECT_EQ(parse_log_level("error", &ok), LogLevel::kError);
  EXPECT_TRUE(ok);
  EXPECT_EQ(parse_log_level("off", &ok), LogLevel::kOff);
  EXPECT_TRUE(ok);

  EXPECT_EQ(parse_log_level("verbose", &ok), LogLevel::kOff);
  EXPECT_FALSE(ok);
  EXPECT_EQ(parse_log_level("", nullptr), LogLevel::kOff);

  for (const LogLevel level :
       {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn, LogLevel::kError,
        LogLevel::kOff}) {
    EXPECT_EQ(parse_log_level(log_level_name(level), &ok), level);
    EXPECT_TRUE(ok);
  }
}

TEST(LoggerTest, OffByDefaultAndFiltering) {
  EXPECT_FALSE(log_enabled(LogLevel::kError));  // global default is kOff

  LogCapture capture(LogLevel::kWarn, false);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));

  log(LogLevel::kInfo, "dropped", {});
  log(LogLevel::kWarn, "kept", {});
  const std::string out = capture.text();
  EXPECT_EQ(out.find("dropped"), std::string::npos);
  EXPECT_NE(out.find("event=kept"), std::string::npos);
}

TEST(LoggerTest, TextFormatOneLinePerRecord) {
  LogCapture capture(LogLevel::kInfo, false);
  log(LogLevel::kInfo, "serve.request",
      {{"op", "eval"}, {"duration_us", std::uint64_t{42}}});
  const std::string out = capture.text();

  // ts=<ISO8601> level=info event=serve.request op=eval duration_us=42
  EXPECT_EQ(out.rfind("ts=", 0), 0u);
  EXPECT_NE(out.find(" level=info "), std::string::npos);
  EXPECT_NE(out.find(" event=serve.request "), std::string::npos);
  EXPECT_NE(out.find(" op=eval "), std::string::npos);
  EXPECT_NE(out.find(" duration_us=42\n"), std::string::npos);
  EXPECT_EQ(out.find('\n'), out.size() - 1);  // exactly one line
}

TEST(LoggerTest, TextFormatQuotesValuesWithSpaces) {
  LogCapture capture(LogLevel::kInfo, false);
  log(LogLevel::kInfo, "trap",
      {{"message", "budget exceeded at step 9"}, {"empty", ""}});
  const std::string out = capture.text();
  EXPECT_NE(out.find("message=\"budget exceeded at step 9\""),
            std::string::npos);
  EXPECT_NE(out.find("empty=\"\""), std::string::npos);
}

TEST(LoggerTest, JsonFormatIsNdjson) {
  LogCapture capture(LogLevel::kInfo, true);
  log(LogLevel::kInfo, "serve.request",
      {{"op", "eval"},
       {"ok", std::uint64_t{1}},
       {"delta", std::int64_t{-3}},
       {"msg", "say \"hi\"\n"}});
  const std::string out = capture.text();

  EXPECT_EQ(out.rfind("{\"ts_ms\":", 0), 0u);
  EXPECT_NE(out.find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(out.find("\"event\":\"serve.request\""), std::string::npos);
  EXPECT_NE(out.find("\"op\":\"eval\""), std::string::npos);
  EXPECT_NE(out.find("\"ok\":1"), std::string::npos);
  EXPECT_NE(out.find("\"delta\":-3"), std::string::npos);
  // Escaped: the quote and the newline must not appear raw.
  EXPECT_NE(out.find("\"msg\":\"say \\\"hi\\\"\\n\""), std::string::npos);
  EXPECT_EQ(out.find('\n'), out.size() - 1);  // one line, despite the \n value
}

TEST(LoggerTest, VectorFieldOverload) {
  LogCapture capture(LogLevel::kInfo, true);
  std::vector<LogField> fields;
  fields.emplace_back("a", std::uint64_t{1});
  fields.emplace_back("b", "two");
  log(LogLevel::kInfo, "vec", fields);
  const std::string out = capture.text();
  EXPECT_NE(out.find("\"a\":1"), std::string::npos);
  EXPECT_NE(out.find("\"b\":\"two\""), std::string::npos);
}

TEST(LoggerTest, ReconfigureSwitchesFormatAndLevel) {
  std::ostringstream first;
  logger().configure(LogLevel::kDebug, false, &first);
  log(LogLevel::kDebug, "text.record", {});
  EXPECT_EQ(first.str().rfind("ts=", 0), 0u);

  std::ostringstream second;
  logger().configure(LogLevel::kError, true, &second);
  log(LogLevel::kWarn, "filtered", {});
  log(LogLevel::kError, "json.record", {});
  EXPECT_EQ(second.str().rfind("{\"ts_ms\":", 0), 0u);
  EXPECT_EQ(second.str().find("filtered"), std::string::npos);

  logger().configure(LogLevel::kOff, false, nullptr);
}

}  // namespace
}  // namespace proteus::obs
