// metrics_test.cpp — the flat metric registry every engine publishes
// through: set/add semantics, zero-default reads, the text and JSON
// renderings --stats is built on, plus the ISSUE 7 additions — gauges,
// histograms (flattened into the text/JSON schema), and the
// OpenMetrics exposition Prometheus scrapes.
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace proteus::obs {
namespace {

TEST(MetricsRegistryTest, SetAddGet) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.get("vl.element_work"), 0u);
  EXPECT_FALSE(m.contains("vl.element_work"));

  m.set("vl.element_work", 10);
  m.add("vl.element_work", 5);
  m.add("vec.calls", 1);
  EXPECT_EQ(m.get("vl.element_work"), 15u);
  EXPECT_EQ(m.get("vec.calls"), 1u);
  EXPECT_TRUE(m.contains("vec.calls"));
  EXPECT_FALSE(m.empty());

  m.set("vl.element_work", 3);  // set overwrites
  EXPECT_EQ(m.get("vl.element_work"), 3u);

  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.get("vec.calls"), 0u);
}

TEST(MetricsRegistryTest, WriteTextSortedByName) {
  MetricsRegistry m;
  m.set("vl.element_work", 900);
  m.set("vec.calls", 3);
  std::ostringstream os;
  m.write_text(os);
  EXPECT_EQ(os.str(), "vec.calls 3\nvl.element_work 900\n");
}

TEST(MetricsRegistryTest, WriteJsonFlatObject) {
  MetricsRegistry m;
  std::ostringstream empty;
  m.write_json(empty);
  EXPECT_EQ(empty.str(), "{}");

  m.set("vl.element_work", 900);
  m.set("vec.calls", 3);
  std::ostringstream os;
  m.write_json(os);
  EXPECT_EQ(os.str(), "{\"vec.calls\":3,\"vl.element_work\":900}");
}

TEST(MetricsRegistryTest, WriteJsonEscapesNames) {
  MetricsRegistry m;
  m.set("weird\"name\n", 1);
  std::ostringstream os;
  m.write_json(os);
  EXPECT_EQ(os.str(), "{\"weird\\\"name\\n\":1}");
}

TEST(MetricsRegistryTest, GaugesShareTheScalarNamespace) {
  MetricsRegistry m;
  m.set_gauge("serve.uptime_seconds", 12);
  m.set("serve.requests", 3);
  EXPECT_EQ(m.get("serve.uptime_seconds"), 12u);
  EXPECT_TRUE(m.is_gauge("serve.uptime_seconds"));
  EXPECT_FALSE(m.is_gauge("serve.requests"));

  // Text/JSON render gauges like any other scalar.
  std::ostringstream os;
  m.write_text(os);
  EXPECT_EQ(os.str(), "serve.requests 3\nserve.uptime_seconds 12\n");
}

TEST(MetricsRegistryTest, ObserveCreatesAndFillsHistogram) {
  MetricsRegistry m;
  EXPECT_EQ(m.histogram("lat"), nullptr);
  m.observe("lat", 3);
  m.observe("lat", 5);
  const Histogram* h = m.histogram("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_EQ(h->sum(), 8u);
  EXPECT_FALSE(m.empty());  // histogram-only registry is non-empty
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.histogram("lat"), nullptr);
}

TEST(MetricsRegistryTest, HistogramHandleObservesInPlace) {
  MetricsRegistry m;
  Histogram* h = m.histogram_handle("serve.request.duration_us");
  ASSERT_NE(h, nullptr);
  EXPECT_TRUE(h->empty());  // pre-registered, not yet observed
  h->observe(7);
  // Same underlying histogram as the name-based lookups.
  EXPECT_EQ(m.histogram("serve.request.duration_us")->count(), 1u);
  EXPECT_EQ(m.histogram_handle("serve.request.duration_us"), h);
}

TEST(MetricsRegistryTest, TextAndJsonFlattenHistograms) {
  MetricsRegistry m;
  m.set("vec.calls", 2);
  m.observe("lat", 10);
  m.observe("lat", 20);

  std::ostringstream text;
  m.write_text(text);
  EXPECT_EQ(text.str(),
            "lat.count 2\n"
            "lat.max 20\n"
            "lat.min 10\n"
            "lat.p50 15\n"
            "lat.p95 20\n"
            "lat.p99 20\n"
            "lat.sum 30\n"
            "vec.calls 2\n");

  std::ostringstream json;
  m.write_json(json);
  const std::string out = json.str();
  EXPECT_EQ(out.front(), '{');
  EXPECT_NE(out.find("\"lat.count\":2"), std::string::npos);
  EXPECT_NE(out.find("\"lat.sum\":30"), std::string::npos);
  EXPECT_NE(out.find("\"vec.calls\":2"), std::string::npos);
}

TEST(MetricsRegistryTest, OpenMetricsEmptyRegistryIsJustEof) {
  MetricsRegistry m;
  std::ostringstream os;
  m.write_openmetrics(os);
  EXPECT_EQ(os.str(), "# EOF\n");
}

TEST(MetricsRegistryTest, OpenMetricsCountersGaugesHistograms) {
  MetricsRegistry m;
  m.set("serve.requests", 5);
  m.set_gauge("serve.requests_inflight", 1);
  m.observe("serve.eval.duration_us", 3);   // bucket le="3"
  m.observe("serve.eval.duration_us", 3);
  m.observe("serve.eval.duration_us", 10);  // bucket le="15"

  std::ostringstream os;
  m.write_openmetrics(os);
  EXPECT_EQ(os.str(),
            "# TYPE serve_requests counter\n"
            "serve_requests_total 5\n"
            "# TYPE serve_requests_inflight gauge\n"
            "serve_requests_inflight 1\n"
            "# TYPE serve_eval_duration_us histogram\n"
            "serve_eval_duration_us_bucket{le=\"3\"} 2\n"
            "serve_eval_duration_us_bucket{le=\"15\"} 3\n"
            "serve_eval_duration_us_bucket{le=\"+Inf\"} 3\n"
            "serve_eval_duration_us_sum 16\n"
            "serve_eval_duration_us_count 3\n"
            "# EOF\n");
}

TEST(MetricsRegistryTest, OpenMetricsBucketsAreCumulativeAndMonotone) {
  MetricsRegistry m;
  for (std::uint64_t v : {1u, 2u, 4u, 8u, 16u, 300u}) m.observe("h", v);
  std::ostringstream os;
  m.write_openmetrics(os);
  const std::string out = os.str();

  // Every emitted bucket count must be <= the next one, ending at count.
  std::uint64_t previous = 0;
  std::size_t pos = 0;
  int buckets_seen = 0;
  while ((pos = out.find("h_bucket{le=", pos)) != std::string::npos) {
    const std::size_t space = out.find("} ", pos);
    ASSERT_NE(space, std::string::npos);
    const std::uint64_t value = std::stoull(out.substr(space + 2));
    EXPECT_GE(value, previous);
    previous = value;
    ++buckets_seen;
    pos = space;
  }
  EXPECT_GE(buckets_seen, 2);
  EXPECT_EQ(previous, 6u);  // the +Inf bucket carries the total count
  EXPECT_NE(out.find("h_count 6\n"), std::string::npos);
}

TEST(OpenMetricsNameTest, ManglesToMetricCharset) {
  EXPECT_EQ(openmetrics_name("serve.eval.duration_us"),
            "serve_eval_duration_us");
  EXPECT_EQ(openmetrics_name("vm.op.+.count"), "vm_op___count");
  EXPECT_EQ(openmetrics_name("already_fine:name"), "already_fine:name");
  EXPECT_EQ(openmetrics_name("9starts.with.digit"), "_9starts_with_digit");
  EXPECT_EQ(openmetrics_name(""), "_");
}

}  // namespace
}  // namespace proteus::obs
