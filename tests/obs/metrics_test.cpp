// metrics_test.cpp — the flat metric registry every engine publishes
// through: set/add semantics, zero-default reads, and the text and JSON
// renderings --stats is built on.
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace proteus::obs {
namespace {

TEST(MetricsRegistryTest, SetAddGet) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.get("vl.element_work"), 0u);
  EXPECT_FALSE(m.contains("vl.element_work"));

  m.set("vl.element_work", 10);
  m.add("vl.element_work", 5);
  m.add("vec.calls", 1);
  EXPECT_EQ(m.get("vl.element_work"), 15u);
  EXPECT_EQ(m.get("vec.calls"), 1u);
  EXPECT_TRUE(m.contains("vec.calls"));
  EXPECT_FALSE(m.empty());

  m.set("vl.element_work", 3);  // set overwrites
  EXPECT_EQ(m.get("vl.element_work"), 3u);

  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.get("vec.calls"), 0u);
}

TEST(MetricsRegistryTest, WriteTextSortedByName) {
  MetricsRegistry m;
  m.set("vl.element_work", 900);
  m.set("vec.calls", 3);
  std::ostringstream os;
  m.write_text(os);
  EXPECT_EQ(os.str(), "vec.calls 3\nvl.element_work 900\n");
}

TEST(MetricsRegistryTest, WriteJsonFlatObject) {
  MetricsRegistry m;
  std::ostringstream empty;
  m.write_json(empty);
  EXPECT_EQ(empty.str(), "{}");

  m.set("vl.element_work", 900);
  m.set("vec.calls", 3);
  std::ostringstream os;
  m.write_json(os);
  EXPECT_EQ(os.str(), "{\"vec.calls\":3,\"vl.element_work\":900}");
}

}  // namespace
}  // namespace proteus::obs
