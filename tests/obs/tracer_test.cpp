// tracer_test.cpp — unit tests for the span/event model: inactive spans
// are free and record nothing, active spans carry counters, rule instants
// render to derivation lines, and the Chrome trace export has the
// trace-event fields Perfetto expects.
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace proteus::obs {
namespace {

TEST(SpanTest, InactiveWithoutTracer) {
  ASSERT_EQ(tracer(), nullptr);
  Span span("cat", "name");
  EXPECT_FALSE(span.active());
  span.counter("ignored", 1);  // must be a no-op, not a crash
}

TEST(SpanTest, RecordsSpanWithCounters) {
  Tracer t;
  {
    TracerScope scope(&t);
    Span span("run", "run.vector");
    EXPECT_TRUE(span.active());
    span.counter("elements", 42);
    span.counter("segments", 7);
  }
  const auto events = t.events();
  ASSERT_EQ(events.size(), 1u);
  const TraceEvent& e = events[0];
  EXPECT_EQ(e.kind, TraceEvent::Kind::kSpan);
  EXPECT_STREQ(e.cat, "run");
  EXPECT_EQ(e.name, "run.vector");
  EXPECT_GT(e.tid, 0u);
  ASSERT_EQ(e.counters.size(), 2u);
  EXPECT_EQ(e.counters[0].first, "elements");
  EXPECT_EQ(e.counters[0].second, 42u);
  EXPECT_EQ(e.counters[1].first, "segments");
  EXPECT_EQ(e.counters[1].second, 7u);
}

TEST(SpanTest, NestedSpansRecordInnermostFirst) {
  Tracer t;
  {
    TracerScope scope(&t);
    Span outer("compile", "compile");
    { Span inner("compile", "parse"); }
  }
  const auto events = t.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "parse");
  EXPECT_EQ(events[1].name, "compile");
  EXPECT_LE(events[0].dur_ns, events[1].dur_ns);
}

TEST(TracerScopeTest, RestoresPreviousSink) {
  Tracer a;
  Tracer b;
  TracerScope sa(&a);
  {
    TracerScope sb(&b);
    EXPECT_EQ(tracer(), &b);
  }
  EXPECT_EQ(tracer(), &a);
}

TEST(MaybeTracerScopeTest, NullLeavesCurrentSinkAlone) {
  Tracer a;
  TracerScope sa(&a);
  {
    MaybeTracerScope maybe(nullptr);
    EXPECT_EQ(tracer(), &a);
  }
  EXPECT_EQ(tracer(), &a);
}

TEST(MaybeTracerScopeTest, NonNullInstallsAndRestores) {
  Tracer a;
  Tracer b;
  TracerScope sa(&a);
  {
    MaybeTracerScope maybe(&b);
    EXPECT_EQ(tracer(), &b);
  }
  EXPECT_EQ(tracer(), &a);
}

TEST(TracerTest, RuleLinesRenderInstants) {
  Tracer t;
  t.instant("rule", "R2a", "[i <- v : i]", {{"depth", 2}});
  t.instant("other", "not-a-rule");
  t.instant("rule", "R1", "snippet");
  const auto lines = t.rule_lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{R2a} @2  [i <- v : i]");
  EXPECT_EQ(lines[1], "{R1} @0  snippet");
  // `from` slices off the prefix (e.g. a previous compile's events).
  EXPECT_EQ(t.rule_lines(1).size(), 1u);
  EXPECT_TRUE(t.rule_lines(3).empty());
}

TEST(TracerTest, ClearAndCount) {
  Tracer t;
  EXPECT_EQ(t.event_count(), 0u);
  t.instant("rule", "R0");
  t.instant("rule", "R0");
  EXPECT_EQ(t.event_count(), 2u);
  t.clear();
  EXPECT_EQ(t.event_count(), 0u);
  EXPECT_TRUE(t.events().empty());
}

TEST(TracerTest, ChromeTraceShape) {
  Tracer t;
  {
    TracerScope scope(&t);
    Span span("compile", "parse");
    span.counter("source_bytes", 7);
  }
  t.instant("rule", "R2c", "a\"b");
  std::ostringstream os;
  t.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"parse\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"compile\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"source_bytes\":7"), std::string::npos);
  EXPECT_NE(json.find("\"expr\":\"a\\\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(ThreadTracerScopeTest, OverridesGlobalSinkOnThisThread) {
  Tracer global;
  Tracer local;
  TracerScope g(&global);
  {
    ThreadTracerScope scope(&local);
    EXPECT_EQ(tracer(), &local);
    Span span("serve", "handled");
  }
  EXPECT_EQ(tracer(), &global);
  EXPECT_EQ(local.event_count(), 1u);
  EXPECT_EQ(global.event_count(), 0u);
}

TEST(ThreadTracerScopeTest, NullIsNoOverride) {
  Tracer global;
  TracerScope g(&global);
  {
    ThreadTracerScope scope(nullptr);
    EXPECT_EQ(tracer(), &global);  // falls through to the global sink
  }
  EXPECT_EQ(tracer(), &global);
}

TEST(ThreadTracerScopeTest, NestedScopesRestoreInOrder) {
  Tracer a;
  Tracer b;
  {
    ThreadTracerScope sa(&a);
    {
      ThreadTracerScope sb(&b);
      EXPECT_EQ(tracer(), &b);
    }
    EXPECT_EQ(tracer(), &a);
  }
  EXPECT_EQ(tracer(), nullptr);
}

TEST(ThreadTracerScopeTest, ConcurrentThreadsRecordIntoTheirOwnSinks) {
  // The serving daemon's per-request isolation: N workers, each with a
  // thread-local tracer, never interleave events — even with a global
  // sink installed underneath. Run under tsan in CI.
  Tracer global;
  TracerScope g(&global);
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 50;
  std::vector<Tracer> locals(kThreads);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    pool.emplace_back([&locals, i] {
      ThreadTracerScope scope(&locals[static_cast<std::size_t>(i)]);
      for (int s = 0; s < kSpansPerThread; ++s) {
        Span span("serve", "request");
        span.counter("thread", static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& t : pool) t.join();

  EXPECT_EQ(global.event_count(), 0u);
  for (int i = 0; i < kThreads; ++i) {
    const auto& local = locals[static_cast<std::size_t>(i)];
    EXPECT_EQ(local.event_count(),
              static_cast<std::size_t>(kSpansPerThread));
    for (const TraceEvent& e : local.events()) {
      ASSERT_EQ(e.counters.size(), 1u);
      EXPECT_EQ(e.counters[0].second, static_cast<std::uint64_t>(i));
    }
  }
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(json_escape("plain text"), "plain text");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\r"), "a\\nb\\tc\\r");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(ThreadIdTest, StableWithinAndDistinctAcrossThreads) {
  const std::uint32_t main_id = thread_id();
  EXPECT_GT(main_id, 0u);
  EXPECT_EQ(thread_id(), main_id);
  std::uint32_t other = 0;
  std::thread([&] { other = thread_id(); }).join();
  EXPECT_NE(other, main_id);
}

}  // namespace
}  // namespace proteus::obs
