// testing.hpp — shared helpers for the proteus-vec test suite.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "core/proteus.hpp"

namespace proteus::testing {

/// Builds a boxed value from a P literal (e.g. "[[1,2],[3]]").
inline interp::Value val(std::string_view literal) {
  return parse_value(literal);
}

/// Runs `fn(args...)` on every engine of `session` — the reference
/// interpreter, the vector-model tree executor, and the bytecode VM —
/// asserts the three agree, and returns the (reference) result for
/// further checks.
inline interp::Value both(Session& session, const std::string& fn,
                          const interp::ValueList& args) {
  interp::Value reference = session.run_reference(fn, args);
  interp::Value vectorised = session.run_vector(fn, args);
  EXPECT_EQ(reference, vectorised)
      << fn << ": reference " << interp::to_text(reference) << " vs vector "
      << interp::to_text(vectorised);
  interp::Value bytecode = session.run_vm(fn, args);
  EXPECT_EQ(reference, bytecode)
      << fn << ": reference " << interp::to_text(reference) << " vs vm "
      << interp::to_text(bytecode);
  // And once more with the plan-backed arena allocator: recycling
  // buffers through memory-plan slots must be observationally invisible.
  session.set_arena(true);
  interp::Value arena = session.run_vm(fn, args);
  session.set_arena(false);
  EXPECT_EQ(reference, arena)
      << fn << ": reference " << interp::to_text(reference)
      << " vs arena vm " << interp::to_text(arena);
  return reference;
}

/// Asserts both engines agree AND match an expected literal.
inline void expect_both(Session& session, const std::string& fn,
                        const interp::ValueList& args,
                        std::string_view expected) {
  interp::Value result = both(session, fn, args);
  EXPECT_EQ(result, val(expected)) << fn << " = " << interp::to_text(result);
}

}  // namespace proteus::testing
