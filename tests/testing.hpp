// testing.hpp — shared helpers for the proteus-vec test suite.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "core/proteus.hpp"

namespace proteus::testing {

/// Builds a boxed value from a P literal (e.g. "[[1,2],[3]]").
inline interp::Value val(std::string_view literal) {
  return parse_value(literal);
}

/// Runs `fn(args...)` on both engines of `session` and asserts equality;
/// returns the (reference) result for further checks.
inline interp::Value both(Session& session, const std::string& fn,
                          const interp::ValueList& args) {
  interp::Value reference = session.run_reference(fn, args);
  interp::Value vectorised = session.run_vector(fn, args);
  EXPECT_EQ(reference, vectorised)
      << fn << ": reference " << interp::to_text(reference) << " vs vector "
      << interp::to_text(vectorised);
  return reference;
}

/// Asserts both engines agree AND match an expected literal.
inline void expect_both(Session& session, const std::string& fn,
                        const interp::ValueList& args,
                        std::string_view expected) {
  interp::Value result = both(session, fn, args);
  EXPECT_EQ(result, val(expected)) << fn << " = " << interp::to_text(result);
}

}  // namespace proteus::testing
