#!/bin/sh
# Serve-layer chaos/overload smoke (docs/SERVING.md "Overload & lifecycle").
#
# Starts a deliberately under-provisioned proteusd, hammers it with the
# retrying loadgen client, and asserts zero wrong answers end to end —
# then SIGTERMs the daemon and asserts it drains to exit 0. Fault
# injection composes: run with PROTEUS_FAULT=sock-read:3 (or --inject via
# PROTEUSD_FLAGS) to add simulated resets/stalls on top of the overload.
#
#   scripts/loadgen.sh [build-dir]          # default: build
#   PROTEUS_FAULT=sock-read:3 scripts/loadgen.sh
#   PROTEUSD_FLAGS="--workers 2 --max-queue 4" scripts/loadgen.sh
set -e
cd "$(dirname "$0")/.."
BUILD="${1:-build}"
PROTEUSD="$BUILD/tools/proteusd"
LOADGEN="$BUILD/tools/loadgen"
test -x "$PROTEUSD" || { echo "loadgen.sh: $PROTEUSD not built" >&2; exit 2; }
test -x "$LOADGEN" || { echo "loadgen.sh: $LOADGEN not built" >&2; exit 2; }

d=$(mktemp -d)
trap 'rm -rf "$d"; kill "$pid" 2>/dev/null || true' EXIT

# shellcheck disable=SC2086  # PROTEUSD_FLAGS is intentionally word-split
"$PROTEUSD" --port 0 --workers 1 --max-queue 2 --retry-after-ms 20 \
  ${PROTEUSD_FLAGS:-} >"$d/announce" &
pid=$!
n=0
while ! grep -q 'listening on' "$d/announce" 2>/dev/null; do
  n=$((n+1)); test "$n" -lt 100 || { echo "daemon never announced" >&2; exit 1; }
  sleep 0.1
done
port=$(sed -n 's/proteusd listening on //p' "$d/announce")

"$LOADGEN" --port "$port" --threads 8 --requests 20 --max-attempts 20 \
  | tee "$d/summary"
grep -q '"wrong":0' "$d/summary"
grep -q '"failed":0' "$d/summary"

# Graceful drain: TERM must wind the daemon down with exit code 0.
kill -TERM "$pid"
rc=0; wait "$pid" || rc=$?
test "$rc" -eq 0 || { echo "drain exited $rc, want 0" >&2; exit 1; }
echo "loadgen smoke ok (port $port, drain rc $rc)"
