#!/usr/bin/env python3
"""check_openmetrics.py -- validate an OpenMetrics exposition.

Reads the exposition text from a file argument (or stdin with no
argument) and checks the subset of the OpenMetrics spec proteusd emits
(docs/OBSERVABILITY.md):

  * every sample line belongs to a metric family announced by a
    preceding `# TYPE <name> counter|gauge|histogram` line;
  * counter samples use the `_total` suffix, histogram samples the
    `_bucket`/`_sum`/`_count` suffixes, gauges the bare name;
  * histogram `_bucket{le="..."}` series are cumulative (monotone
    non-decreasing), end with an `le="+Inf"` bucket, and that bucket
    equals the family's `_count`;
  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]*;
  * the exposition ends with exactly one `# EOF` terminator.

Exit status: 0 on a valid exposition, 1 with a diagnostic per violation
otherwise. Used by the CI metrics-scrape smoke and usable by hand:

    curl -s localhost:9464/metrics | python3 scripts/check_openmetrics.py
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
BUCKET_RE = re.compile(r'^(?P<name>[a-zA-Z0-9_:]+)_bucket\{le="(?P<le>[^"]+)"\} (?P<value>\d+)$')
SAMPLE_RE = re.compile(r"^(?P<name>[a-zA-Z0-9_:]+) (?P<value>-?\d+(\.\d+)?)$")


def main() -> int:
    if len(sys.argv) > 2:
        print(f"usage: {sys.argv[0]} [exposition.txt]", file=sys.stderr)
        return 2
    if len(sys.argv) == 2:
        with open(sys.argv[1], encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = sys.stdin.read()

    errors = []
    families = {}  # name -> type
    # histogram state: family -> {"buckets": [(le, value)], "sum": v, "count": v}
    histograms = {}
    saw_eof = False

    for lineno, line in enumerate(text.splitlines(), start=1):
        def err(message):
            errors.append(f"line {lineno}: {message}: {line!r}")

        if saw_eof:
            err("content after # EOF")
            continue
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                err("malformed TYPE line")
                continue
            name = parts[2]
            if not NAME_RE.match(name):
                err(f"invalid metric name {name!r}")
            if name in families:
                err(f"duplicate TYPE for {name!r}")
            families[name] = parts[3]
            if parts[3] == "histogram":
                histograms[name] = {"buckets": [], "sum": None, "count": None}
            continue
        if line.startswith("#"):
            err("unknown comment line (only # TYPE and # EOF are emitted)")
            continue

        bucket = BUCKET_RE.match(line)
        if bucket:
            name = bucket.group("name")
            if families.get(name) != "histogram":
                err(f"_bucket sample for non-histogram family {name!r}")
                continue
            histograms[name]["buckets"].append(
                (bucket.group("le"), int(bucket.group("value"))))
            continue

        sample = SAMPLE_RE.match(line)
        if not sample:
            err("unparseable sample line")
            continue
        name, value = sample.group("name"), sample.group("value")
        if name.endswith("_sum") and name[:-4] in histograms:
            histograms[name[:-4]]["sum"] = int(value)
        elif name.endswith("_count") and name[:-6] in histograms:
            histograms[name[:-6]]["count"] = int(value)
        elif name.endswith("_total") and name[:-6] in families:
            if families[name[:-6]] != "counter":
                err(f"_total sample for non-counter family {name[:-6]!r}")
        elif families.get(name) == "gauge":
            pass
        else:
            err(f"sample for unannounced family {name!r}")

    if not saw_eof:
        errors.append("missing # EOF terminator")

    for name, state in histograms.items():
        buckets = state["buckets"]
        if not buckets:
            errors.append(f"histogram {name!r} has no _bucket samples")
            continue
        if buckets[-1][0] != "+Inf":
            errors.append(f"histogram {name!r} does not end with le=\"+Inf\"")
        values = [v for _, v in buckets]
        if values != sorted(values):
            errors.append(f"histogram {name!r} buckets are not cumulative: {values}")
        if state["count"] is None:
            errors.append(f"histogram {name!r} is missing _count")
        elif buckets[-1][0] == "+Inf" and buckets[-1][1] != state["count"]:
            errors.append(
                f"histogram {name!r}: +Inf bucket {buckets[-1][1]} != _count {state['count']}")
        if state["sum"] is None:
            errors.append(f"histogram {name!r} is missing _sum")

    for message in errors:
        print(f"check_openmetrics: {message}", file=sys.stderr)
    if not errors:
        hist = len(histograms)
        print(f"openmetrics ok: {len(families)} families ({hist} histograms)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
