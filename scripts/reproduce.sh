#!/bin/sh
# Reproduce every result: build, run the full test suite, regenerate every
# figure/claim bench (see EXPERIMENTS.md for the expected shapes).
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
# bench_workloads also leaves machine-readable BENCH_<name>.json files
# (quicksort, quickhull, spmv on all three engines) in the repo root —
# see docs/OBSERVABILITY.md for the schema.
for b in build/bench/bench_*; do "$b"; done 2>&1 | tee bench_output.txt
# Engine comparison: bytecode VM vs tree-walking executor over the shared
# kernel table (identical work counters; any delta is dispatch overhead).
build/bench/bench_vm_dispatch 2>&1 | tee vm_dispatch_output.txt
echo "done: see test_output.txt, bench_output.txt, vm_dispatch_output.txt"
echo "      and machine-readable BENCH_*.json:"
ls -1 BENCH_*.json 2>/dev/null || true
