#include "seq/nested.hpp"

#include <sstream>

#include "vl/check.hpp"
#include "vl/segdesc.hpp"

namespace proteus::seq {

namespace {
struct IntLeaf {
  IntVec v;
};
struct RealLeaf {
  RealVec v;
};
struct BoolLeaf {
  BoolVec v;
};
struct TupleNode {
  std::vector<Array> comps;
};
struct NestedNode {
  IntVec lens;
  Array elems;
};
}  // namespace

struct Array::Node {
  std::variant<IntLeaf, RealLeaf, BoolLeaf, TupleNode, NestedNode> alt;
};

Array Array::ints(IntVec values) {
  return Array(std::make_shared<Node>(Node{IntLeaf{std::move(values)}}));
}

Array Array::reals(RealVec values) {
  return Array(std::make_shared<Node>(Node{RealLeaf{std::move(values)}}));
}

Array Array::bools(BoolVec values) {
  return Array(std::make_shared<Node>(Node{BoolLeaf{std::move(values)}}));
}

Array Array::tuple(std::vector<Array> components) {
  PROTEUS_REQUIRE(RepresentationError, !components.empty(),
                  "tuple array needs at least one component");
  const Size n = components.front().length();
  for (const Array& c : components) {
    PROTEUS_REQUIRE(RepresentationError, c.length() == n,
                    "tuple array components must have equal length");
  }
  return Array(std::make_shared<Node>(Node{TupleNode{std::move(components)}}));
}

Array Array::nested(IntVec lengths, Array inner) {
  vl::require_descriptor(lengths, inner.length(), "Array::nested");
  return Array(
      std::make_shared<Node>(Node{NestedNode{std::move(lengths), std::move(inner)}}));
}

// The const_casts below are legal because every Node is created via
// make_shared<Node> (non-const) above; the const view is only how Arrays
// share the spine, and use_count() == 1 makes the mutation unobservable.

bool Array::steal_values(IntVec& out) {
  if (node_.use_count() != 1) return false;
  auto* leaf = std::get_if<IntLeaf>(&const_cast<Node*>(node_.get())->alt);
  if (leaf == nullptr) return false;
  out = std::move(leaf->v);
  leaf->v = IntVec{};
  return true;
}

bool Array::steal_values(RealVec& out) {
  if (node_.use_count() != 1) return false;
  auto* leaf = std::get_if<RealLeaf>(&const_cast<Node*>(node_.get())->alt);
  if (leaf == nullptr) return false;
  out = std::move(leaf->v);
  leaf->v = RealVec{};
  return true;
}

bool Array::steal_values(BoolVec& out) {
  if (node_.use_count() != 1) return false;
  auto* leaf = std::get_if<BoolLeaf>(&const_cast<Node*>(node_.get())->alt);
  if (leaf == nullptr) return false;
  out = std::move(leaf->v);
  leaf->v = BoolVec{};
  return true;
}

Size Array::length() const {
  return std::visit(
      [](const auto& n) -> Size {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, IntLeaf> ||
                      std::is_same_v<T, RealLeaf> ||
                      std::is_same_v<T, BoolLeaf>) {
          return n.v.size();
        } else if constexpr (std::is_same_v<T, TupleNode>) {
          return n.comps.front().length();
        } else {
          return n.lens.size();
        }
      },
      node_->alt);
}

Array::Kind Array::kind() const {
  return std::visit(
      [](const auto& n) -> Kind {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, IntLeaf>) return Kind::kInt;
        if constexpr (std::is_same_v<T, RealLeaf>) return Kind::kReal;
        if constexpr (std::is_same_v<T, BoolLeaf>) return Kind::kBool;
        if constexpr (std::is_same_v<T, TupleNode>) return Kind::kTuple;
        if constexpr (std::is_same_v<T, NestedNode>) return Kind::kNested;
      },
      node_->alt);
}

int Array::element_depth() const {
  if (kind() == Kind::kNested) return 1 + inner().element_depth();
  return 0;
}

const IntVec& Array::int_values() const {
  const auto* n = std::get_if<IntLeaf>(&node_->alt);
  PROTEUS_REQUIRE(RepresentationError, n != nullptr,
                  "array does not hold Int scalars");
  return n->v;
}

const RealVec& Array::real_values() const {
  const auto* n = std::get_if<RealLeaf>(&node_->alt);
  PROTEUS_REQUIRE(RepresentationError, n != nullptr,
                  "array does not hold Real scalars");
  return n->v;
}

const BoolVec& Array::bool_values() const {
  const auto* n = std::get_if<BoolLeaf>(&node_->alt);
  PROTEUS_REQUIRE(RepresentationError, n != nullptr,
                  "array does not hold Bool scalars");
  return n->v;
}

const std::vector<Array>& Array::components() const {
  const auto* n = std::get_if<TupleNode>(&node_->alt);
  PROTEUS_REQUIRE(RepresentationError, n != nullptr,
                  "array does not hold tuples");
  return n->comps;
}

const IntVec& Array::lengths() const {
  const auto* n = std::get_if<NestedNode>(&node_->alt);
  PROTEUS_REQUIRE(RepresentationError, n != nullptr,
                  "array does not hold nested sequences");
  return n->lens;
}

const Array& Array::inner() const {
  const auto* n = std::get_if<NestedNode>(&node_->alt);
  PROTEUS_REQUIRE(RepresentationError, n != nullptr,
                  "array does not hold nested sequences");
  return n->elems;
}

bool operator==(const Array& a, const Array& b) {
  if (a.node_ == b.node_) return true;
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case Array::Kind::kInt:
      return a.int_values() == b.int_values();
    case Array::Kind::kReal:
      return a.real_values() == b.real_values();
    case Array::Kind::kBool:
      return a.bool_values() == b.bool_values();
    case Array::Kind::kTuple:
      return a.components() == b.components();
    case Array::Kind::kNested:
      return a.lengths() == b.lengths() && a.inner() == b.inner();
  }
  return false;
}

void Array::validate() const {
  switch (kind()) {
    case Kind::kInt:
    case Kind::kReal:
    case Kind::kBool:
      return;
    case Kind::kTuple: {
      const auto& cs = components();
      PROTEUS_REQUIRE(RepresentationError, !cs.empty(),
                      "tuple array has no components");
      for (const Array& c : cs) {
        PROTEUS_REQUIRE(RepresentationError, c.length() == cs.front().length(),
                        "tuple array components disagree on length");
        c.validate();
      }
      return;
    }
    case Kind::kNested: {
      vl::require_descriptor(lengths(), inner().length(), "Array::validate");
      inner().validate();
      return;
    }
  }
}

Size Array::leaf_count() const {
  switch (kind()) {
    case Kind::kInt:
    case Kind::kReal:
    case Kind::kBool:
      return length();
    case Kind::kTuple: {
      Size total = 0;
      for (const Array& c : components()) total += c.leaf_count();
      return total;
    }
    case Kind::kNested:
      return inner().leaf_count();
  }
  return 0;
}

std::vector<IntVec> descriptor_stack(const Array& a) {
  std::vector<IntVec> stack;
  stack.push_back(IntVec{a.length()});
  const Array* cur = &a;
  while (cur->kind() == Array::Kind::kNested) {
    stack.push_back(cur->lengths());
    cur = &cur->inner();
  }
  PROTEUS_REQUIRE(RepresentationError,
                  cur->kind() == Array::Kind::kInt ||
                      cur->kind() == Array::Kind::kReal ||
                      cur->kind() == Array::Kind::kBool,
                  "descriptor_stack: nesting spine interrupted by a tuple");
  return stack;
}

const IntVec& leaf_int_values(const Array& a) {
  const Array* cur = &a;
  while (cur->kind() == Array::Kind::kNested) cur = &cur->inner();
  return cur->int_values();
}

namespace {

void render_range(const Array& a, Size lo, Size hi, std::ostream& os);

void render_element(const Array& a, Size i, std::ostream& os) {
  switch (a.kind()) {
    case Array::Kind::kInt:
      os << a.int_values()[i];
      return;
    case Array::Kind::kReal:
      os << a.real_values()[i];
      return;
    case Array::Kind::kBool:
      os << (a.bool_values()[i] ? "true" : "false");
      return;
    case Array::Kind::kTuple: {
      os << '(';
      const auto& cs = a.components();
      for (std::size_t c = 0; c < cs.size(); ++c) {
        if (c > 0) os << ',';
        render_element(cs[c], i, os);
      }
      os << ')';
      return;
    }
    case Array::Kind::kNested: {
      Size lo = 0;
      for (Size s = 0; s < i; ++s) lo += a.lengths()[s];
      render_range(a.inner(), lo, lo + a.lengths()[i], os);
      return;
    }
  }
}

void render_range(const Array& a, Size lo, Size hi, std::ostream& os) {
  os << '[';
  for (Size i = lo; i < hi; ++i) {
    if (i > lo) os << ',';
    render_element(a, i, os);
  }
  os << ']';
}

}  // namespace

std::string to_text(const Array& a) {
  std::ostringstream os;
  render_range(a, 0, a.length(), os);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Array& a) {
  return os << to_text(a);
}

}  // namespace proteus::seq
