#include "seq/extract_insert.hpp"

#include <vector>

#include "vl/check.hpp"

namespace proteus::seq {

Array extract(const Array& frame, int d) {
  PROTEUS_REQUIRE(RepresentationError, d >= 0,
                  "extract: negative flatten depth");
  Array cur = frame;
  for (int k = 0; k < d; ++k) {
    PROTEUS_REQUIRE(RepresentationError, cur.kind() == Array::Kind::kNested,
                    "extract: frame has fewer than " + std::to_string(d) +
                        " nesting levels");
    cur = cur.inner();
  }
  return cur;
}

Array insert(const Array& result, const Array& frame, int d) {
  PROTEUS_REQUIRE(RepresentationError, d >= 0,
                  "insert: negative nesting depth");
  // Collect the top d descriptors of the frame.
  std::vector<const IntVec*> descriptors;
  descriptors.reserve(static_cast<std::size_t>(d));
  const Array* cur = &frame;
  for (int k = 0; k < d; ++k) {
    PROTEUS_REQUIRE(RepresentationError, cur->kind() == Array::Kind::kNested,
                    "insert: frame has fewer than " + std::to_string(d) +
                        " nesting levels");
    descriptors.push_back(&cur->lengths());
    cur = &cur->inner();
  }
  PROTEUS_REQUIRE(RepresentationError, result.length() == cur->length(),
                  "insert: result length " + std::to_string(result.length()) +
                      " does not match frame element count " +
                      std::to_string(cur->length()));
  // Re-attach from the innermost descriptor outward.
  Array wrapped = result;
  for (auto it = descriptors.rbegin(); it != descriptors.rend(); ++it) {
    wrapped = Array::nested(**it, wrapped);
  }
  return wrapped;
}

int spine_depth(const Array& a) {
  int d = 0;
  const Array* cur = &a;
  while (cur->kind() == Array::Kind::kNested) {
    ++d;
    cur = &cur->inner();
  }
  return d;
}

}  // namespace proteus::seq
