// ops.hpp — structural kernels on the vector representation.
//
// Each operation here lifts a flat vl primitive through the element
// structure of an Array: scalar leaves run the vl kernel once, tuple
// elements run it per component, and sequence elements run it on the
// descriptor and recurse on the inner elements with an index/mask vector
// expanded through the descriptor. Everything is expressed in terms of the
// vector model's own primitives (gather, scan, pack, distribute), so the
// work counted by vl::stats() is exactly the vector-model work.
#pragma once

#include "seq/nested.hpp"

namespace proteus::seq {

/// out[i] = a[idx[i]] (0-origin element selection; duplicates allowed).
[[nodiscard]] Array gather(const Array& a, const IntVec& idx);

/// Elements of `a` at the true positions of `mask` — the paper's
/// restrict(V, M) on the representation.
[[nodiscard]] Array pack(const Array& a, const BoolVec& mask);

/// The paper's combine(M, V, U): #mask == t.length() + f.length();
/// result takes from `t` at true positions and `f` at false positions.
[[nodiscard]] Array combine(const BoolVec& mask, const Array& t,
                            const Array& f);

/// Concatenation of two conformable (same element structure) arrays.
[[nodiscard]] Array concat(const Array& a, const Array& b);

/// The empty array with the same element structure as `a` (rule R2d's
/// empty_frame on representations).
[[nodiscard]] Array empty_like(const Array& a);

/// n copies of element i of `a` — dist(c, n) for a non-scalar c.
[[nodiscard]] Array broadcast_element(const Array& a, Size i, Size n);

/// dist^1: element i of `a` replicated counts[i] times, concatenated.
[[nodiscard]] Array seg_broadcast(const Array& a, const IntVec& counts);

/// Single element i of `a` as a one-element array.
[[nodiscard]] Array element(const Array& a, Size i);

/// Elements [lo, lo+len) of `a`.
[[nodiscard]] Array slice(const Array& a, Size lo, Size len);

/// Structural conformability (same kinds/arity at every level); value
/// lengths are not compared.
[[nodiscard]] bool same_structure(const Array& a, const Array& b);

}  // namespace proteus::seq
