// extract_insert.hpp — the representation manipulations of Figure 2.
//
// extract(V, d) flattens the top d nesting levels of a frame: in the
// descriptor-stack picture it replaces the top d descriptors by the
// singleton [sum(V_d)]; in this library's spine representation it simply
// drops d Nested wrappers, sharing everything below — O(d), not O(data).
//
// insert(R, V, d) is the converse: it re-attaches the top d descriptors of
// V onto R (discarding R's implicit top), requiring that R's length equal
// the total element count of V at depth d. The paper's identity
//     insert(extract(V, d), V, d) == V
// is pinned by tests/seq/extract_insert_test.cpp.
#pragma once

#include "seq/nested.hpp"

namespace proteus::seq {

/// Flatten the top `d` nesting levels of `frame` (d == 0 is the identity).
/// Throws RepresentationError when frame has fewer than d nesting levels.
[[nodiscard]] Array extract(const Array& frame, int d);

/// Wrap `result` in the top `d` descriptors of `frame`. Requires
/// result.length() == extract(frame, d).length().
[[nodiscard]] Array insert(const Array& result, const Array& frame, int d);

/// Number of Nested wrappers on the spine above the element representation
/// (the maximum d accepted by extract).
[[nodiscard]] int spine_depth(const Array& a);

}  // namespace proteus::seq
