// nested.hpp — the vector representation of nested sequences (Section 4.1,
// Figure 1 of the paper).
//
// An Array is the flat representation of *a sequence of elements*:
//
//   * scalar elements      -> one flat value vector (IntVec/RealVec/BoolVec)
//   * tuple elements       -> one Array per component (structure-of-arrays;
//                             this is why the paper notes k > d+1 vectors
//                             when the element type is a tuple)
//   * sequence elements    -> one descriptor (segment-length) vector plus
//                             the Array of all inner elements, concatenated
//
// A depth-d nested sequence of scalars therefore carries exactly d-1
// explicit descriptor vectors above one value vector; together with the
// implicit singleton top descriptor [length()] this is precisely the
// paper's stack V_1..V_d of descriptors over value vectors, with the
// invariant  #V_{i+1} == sum(V_i)  enforced at construction.
//
// Arrays are immutable and structurally shared (shared_ptr spine): the
// extract/insert operations of Figure 2 restructure only the descriptor
// spine and share the value vectors, which is what makes the translation
// rule T1 cheap (see bench_fig2_extract_insert).
#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

#include "vl/vec.hpp"

namespace proteus::seq {

using vl::Bool;
using vl::BoolVec;
using vl::Int;
using vl::IntVec;
using vl::Real;
using vl::RealVec;
using vl::Size;

/// Flat vector representation of a sequence of elements. Regular immutable
/// value type; copies are O(1) (shared spine).
class Array {
 public:
  enum class Kind : std::uint8_t { kInt, kReal, kBool, kTuple, kNested };

  /// Sequence of Int scalars.
  static Array ints(IntVec values);
  /// Sequence of Real scalars.
  static Array reals(RealVec values);
  /// Sequence of Bool scalars.
  static Array bools(BoolVec values);
  /// Sequence of tuples, one component Array per tuple slot (all the same
  /// length). At least one component is required.
  static Array tuple(std::vector<Array> components);
  /// Sequence of sequences: `lengths` partitions `inner` (sum(lengths) must
  /// equal inner.length() — the paper's descriptor invariant).
  static Array nested(IntVec lengths, Array inner);

  /// Number of elements in the (top level of the) represented sequence.
  [[nodiscard]] Size length() const;

  [[nodiscard]] Kind kind() const;

  /// Nesting depth of the *element* type: 0 for scalars and tuples, 1 +
  /// depth(inner) for sequence elements.
  [[nodiscard]] int element_depth() const;

  // Accessors; each throws RepresentationError unless kind() matches.
  [[nodiscard]] const IntVec& int_values() const;
  [[nodiscard]] const RealVec& real_values() const;
  [[nodiscard]] const BoolVec& bool_values() const;
  [[nodiscard]] const std::vector<Array>& components() const;
  [[nodiscard]] const IntVec& lengths() const;
  [[nodiscard]] const Array& inner() const;

  /// Deep structural equality (same kind, same descriptors, same values).
  friend bool operator==(const Array& a, const Array& b);

  /// Re-validates every descriptor invariant in the spine (used by failure-
  /// injection tests; construction already enforces them).
  void validate() const;

  /// Total number of scalars stored in all value vectors beneath this node.
  [[nodiscard]] Size leaf_count() const;

  /// Identity of the underlying node; lets tests assert structural sharing
  /// (e.g. that extract does not copy value vectors).
  [[nodiscard]] const void* node_identity() const { return node_.get(); }

  // Buffer reuse hooks for the fused elementwise evaluator: when this
  // Array is the *sole owner* of a scalar leaf of the matching kind, the
  // value vector is moved out into `out` (the Array keeps a valid, empty
  // leaf) and the call returns true. Shared or non-matching arrays are
  // left untouched — structural sharing makes sole ownership the exact
  // condition under which mutation is unobservable.
  [[nodiscard]] bool steal_values(IntVec& out);
  [[nodiscard]] bool steal_values(RealVec& out);
  [[nodiscard]] bool steal_values(BoolVec& out);

 private:
  struct Node;  // defined in nested.cpp (recursive through Array)

  explicit Array(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

/// The explicit descriptor stack of Figure 1 for an Array whose elements
/// are (possibly nested) scalars: result[0] is the singleton top descriptor
/// [length()], result[i] the i-th level's segment lengths. Throws
/// RepresentationError when a tuple interrupts the nesting spine.
[[nodiscard]] std::vector<IntVec> descriptor_stack(const Array& a);

/// The single value vector at the bottom of a pure nested-scalar Array.
[[nodiscard]] const IntVec& leaf_int_values(const Array& a);

/// Renders the represented sequence in P literal syntax, e.g.
/// "[[2,7],[3,9,8]]".
[[nodiscard]] std::string to_text(const Array& a);

std::ostream& operator<<(std::ostream& os, const Array& a);

}  // namespace proteus::seq
