#include "seq/ops.hpp"

#include "vl/vl.hpp"

namespace proteus::seq {

namespace {

void require_same_structure(const Array& a, const Array& b, const char* op) {
  PROTEUS_REQUIRE(RepresentationError, same_structure(a, b),
                  std::string(op) + ": arrays have different element structure");
}

}  // namespace

Array gather(const Array& a, const IntVec& idx) {
  switch (a.kind()) {
    case Array::Kind::kInt:
      return Array::ints(vl::gather(a.int_values(), idx));
    case Array::Kind::kReal:
      return Array::reals(vl::gather(a.real_values(), idx));
    case Array::Kind::kBool:
      return Array::bools(vl::gather(a.bool_values(), idx));
    case Array::Kind::kTuple: {
      std::vector<Array> comps;
      comps.reserve(a.components().size());
      for (const Array& c : a.components()) comps.push_back(gather(c, idx));
      return Array::tuple(std::move(comps));
    }
    case Array::Kind::kNested: {
      // Select whole segments: new descriptor, then expand per-segment
      // start offsets to per-element source positions.
      IntVec out_lens = vl::gather(a.lengths(), idx);
      IntVec src_offsets = vl::lengths_to_offsets(a.lengths());
      IntVec starts = vl::gather(src_offsets, idx);
      IntVec base = vl::seg_dist(starts, out_lens);
      IntVec ranks = vl::segment_ranks(out_lens);
      IntVec positions = vl::add(base, vl::sub(ranks, Int{1}));
      return Array::nested(std::move(out_lens), gather(a.inner(), positions));
    }
  }
  throw RepresentationError("gather: corrupt array kind");
}

Array pack(const Array& a, const BoolVec& mask) {
  PROTEUS_REQUIRE(VectorError, a.length() == mask.size(),
                  "restrict: sequence and mask lengths differ");
  return gather(a, vl::pack_indices(mask));
}

Array combine(const BoolVec& mask, const Array& t, const Array& f) {
  require_same_structure(t, f, "combine");
  PROTEUS_REQUIRE(VectorError, mask.size() == t.length() + f.length(),
                  "combine: #M must equal #V + #U");
  // Source index into concat(t, f): true positions take the i-th true
  // element of t, false positions the i-th false element of f.
  IntVec ones(mask.size());
  Int* op = ones.data();
  for (Size i = 0; i < mask.size(); ++i) op[i] = mask[i] ? 1 : 0;
  IntVec true_rank = vl::scan_add(ones);  // #true before i
  IntVec pos(mask.size());
  Int* pp = pos.data();
  const Int* tr = true_rank.data();
  for (Size i = 0; i < mask.size(); ++i) {
    pp[i] = mask[i] ? tr[i] : t.length() + (i - tr[i]);
  }
  vl::stats().record(mask.size());
  return gather(concat(t, f), pos);
}

Array concat(const Array& a, const Array& b) {
  require_same_structure(a, b, "concat");
  switch (a.kind()) {
    case Array::Kind::kInt:
      return Array::ints(vl::concat(a.int_values(), b.int_values()));
    case Array::Kind::kReal:
      return Array::reals(vl::concat(a.real_values(), b.real_values()));
    case Array::Kind::kBool:
      return Array::bools(vl::concat(a.bool_values(), b.bool_values()));
    case Array::Kind::kTuple: {
      std::vector<Array> comps;
      comps.reserve(a.components().size());
      for (std::size_t c = 0; c < a.components().size(); ++c) {
        comps.push_back(concat(a.components()[c], b.components()[c]));
      }
      return Array::tuple(std::move(comps));
    }
    case Array::Kind::kNested:
      return Array::nested(vl::concat(a.lengths(), b.lengths()),
                           concat(a.inner(), b.inner()));
  }
  throw RepresentationError("concat: corrupt array kind");
}

Array empty_like(const Array& a) {
  switch (a.kind()) {
    case Array::Kind::kInt:
      return Array::ints(IntVec{});
    case Array::Kind::kReal:
      return Array::reals(RealVec{});
    case Array::Kind::kBool:
      return Array::bools(BoolVec{});
    case Array::Kind::kTuple: {
      std::vector<Array> comps;
      comps.reserve(a.components().size());
      for (const Array& c : a.components()) comps.push_back(empty_like(c));
      return Array::tuple(std::move(comps));
    }
    case Array::Kind::kNested:
      return Array::nested(IntVec{}, empty_like(a.inner()));
  }
  throw RepresentationError("empty_like: corrupt array kind");
}

Array broadcast_element(const Array& a, Size i, Size n) {
  PROTEUS_REQUIRE(VectorError, i >= 0 && i < a.length(),
                  "broadcast_element: index out of range");
  return gather(a, vl::dist(Int{i}, n));
}

Array seg_broadcast(const Array& a, const IntVec& counts) {
  PROTEUS_REQUIRE(VectorError, a.length() == counts.size(),
                  "dist: value and count sequences must have equal length");
  return gather(a, vl::seg_dist(vl::iota(a.length(), 0), counts));
}

Array element(const Array& a, Size i) { return broadcast_element(a, i, 1); }

Array slice(const Array& a, Size lo, Size len) {
  PROTEUS_REQUIRE(VectorError, lo >= 0 && len >= 0 && lo + len <= a.length(),
                  "slice: range out of bounds");
  return gather(a, vl::iota(len, lo));
}

bool same_structure(const Array& a, const Array& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case Array::Kind::kInt:
    case Array::Kind::kReal:
    case Array::Kind::kBool:
      return true;
    case Array::Kind::kTuple: {
      if (a.components().size() != b.components().size()) return false;
      for (std::size_t c = 0; c < a.components().size(); ++c) {
        if (!same_structure(a.components()[c], b.components()[c])) {
          return false;
        }
      }
      return true;
    }
    case Array::Kind::kNested:
      return same_structure(a.inner(), b.inner());
  }
  return false;
}

}  // namespace proteus::seq
