#include "seq/build.hpp"

#include <random>

#include "vl/check.hpp"

namespace proteus::seq {

Array from_ints(const std::vector<Int>& values) {
  return Array::ints(IntVec(values.begin(), values.end()));
}

Array from_ints2(const std::vector<std::vector<Int>>& values) {
  IntVec lengths;
  IntVec flat;
  lengths.reserve(static_cast<Size>(values.size()));
  std::size_t total = 0;
  for (const auto& seg : values) total += seg.size();
  flat.reserve(static_cast<Size>(total));
  for (const auto& seg : values) {
    lengths.push_back(static_cast<Int>(seg.size()));
    for (Int v : seg) flat.push_back(v);
  }
  return Array::nested(std::move(lengths), Array::ints(std::move(flat)));
}

Array from_ints3(const std::vector<std::vector<std::vector<Int>>>& values) {
  IntVec top;
  std::vector<std::vector<Int>> mid;
  top.reserve(static_cast<Size>(values.size()));
  std::size_t total = 0;
  for (const auto& seg : values) total += seg.size();
  mid.reserve(total);
  for (const auto& seg : values) {
    top.push_back(static_cast<Int>(seg.size()));
    for (const auto& s : seg) mid.push_back(s);
  }
  return Array::nested(std::move(top), from_ints2(mid));
}

std::vector<std::vector<Int>> to_ints2(const Array& a) {
  PROTEUS_REQUIRE(RepresentationError, a.kind() == Array::Kind::kNested,
                  "to_ints2: expected a depth-2 array");
  const IntVec& lens = a.lengths();
  const IntVec& flat = a.inner().int_values();
  std::vector<std::vector<Int>> out;
  out.reserve(static_cast<std::size_t>(lens.size()));
  Size pos = 0;
  for (Size s = 0; s < lens.size(); ++s) {
    std::vector<Int> seg;
    seg.reserve(static_cast<std::size_t>(lens[s]));
    for (Int k = 0; k < lens[s]; ++k) seg.push_back(flat[pos++]);
    out.push_back(std::move(seg));
  }
  return out;
}

Array random_nested_ints(std::uint64_t seed, int depth, Size top_len,
                         Size max_seg) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Int> seg_dist_(0, max_seg);
  std::uniform_int_distribution<Int> val_dist(-1000, 1000);

  // Build descriptor levels top-down, then fill the value vector.
  Size count = top_len;
  std::vector<IntVec> levels;
  for (int level = 0; level < depth; ++level) {
    IntVec lens(count);
    Size next = 0;
    for (Size i = 0; i < count; ++i) {
      lens[i] = seg_dist_(rng);
      next += lens[i];
    }
    levels.push_back(std::move(lens));
    count = next;
  }
  IntVec values(count);
  for (Size i = 0; i < count; ++i) values[i] = val_dist(rng);

  Array a = Array::ints(std::move(values));
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    a = Array::nested(*it, std::move(a));
  }
  return a;
}

IntVec random_ints(std::uint64_t seed, Size n, Int lo, Int hi) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Int> dist(lo, hi);
  IntVec out(n);
  for (Size i = 0; i < n; ++i) out[i] = dist(rng);
  return out;
}

BoolVec random_mask(std::uint64_t seed, Size n, int num, int den) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> dist(0, den - 1);
  BoolVec out(n);
  for (Size i = 0; i < n; ++i) out[i] = Bool(dist(rng) < num ? 1 : 0);
  return out;
}

}  // namespace proteus::seq
