// build.hpp — convenience constructors for nested-sequence Arrays: from
// C++ containers (tests, examples) and from a seeded generator (property
// tests and benches; deterministic so runs are reproducible).
#pragma once

#include <cstdint>
#include <vector>

#include "seq/nested.hpp"

namespace proteus::seq {

/// [v1, ..., vn] of Ints.
[[nodiscard]] Array from_ints(const std::vector<Int>& values);

/// [[..],[..],...] — depth-2 nested Ints.
[[nodiscard]] Array from_ints2(const std::vector<std::vector<Int>>& values);

/// Depth-3 nested Ints.
[[nodiscard]] Array from_ints3(
    const std::vector<std::vector<std::vector<Int>>>& values);

/// Back-conversion for assertions.
[[nodiscard]] std::vector<std::vector<Int>> to_ints2(const Array& a);

/// Deterministic random nested Int array: `depth` nesting levels above the
/// value vector (depth == 0 yields a flat vector), `top_len` elements at
/// the top, segment lengths uniform in [0, max_seg].
[[nodiscard]] Array random_nested_ints(std::uint64_t seed, int depth,
                                       Size top_len, Size max_seg);

/// Deterministic random flat Int vector with values in [lo, hi].
[[nodiscard]] IntVec random_ints(std::uint64_t seed, Size n, Int lo, Int hi);

/// Deterministic random mask with P(true) = num/den.
[[nodiscard]] BoolVec random_mask(std::uint64_t seed, Size n, int num,
                                  int den);

}  // namespace proteus::seq
