// seq.hpp — umbrella header for the nested-sequence representation layer
// (Sections 4.1 and 4.2 of the paper).
#pragma once

#include "seq/build.hpp"
#include "seq/extract_insert.hpp"
#include "seq/nested.hpp"
#include "seq/ops.hpp"
