// diagnostic.hpp — the structured diagnostic engine shared by every static
// analysis pass of proteus-vec: the shape/depth abstract interpreter over
// the post-T1 V-IR (analysis/shape.hpp), the structural V-form checks
// folded in from the old xform verifier, and the VCODE bytecode verifier
// (vm/verify.hpp).
//
// A pass emits Diagnostics into a Report instead of throwing on the first
// violation: each diagnostic carries a severity, a stable machine-readable
// code (V0xx structural, V1xx shape/depth, V2xx warnings, B2xx bytecode),
// the enclosing function, a source span when one survived the
// transformation, and the paper rule the violated invariant comes from
// (e.g. "R2d", "Fig.2"). Reports render as one-line-per-diagnostic text or
// as a machine-readable JSON document (`proteusc --analyze=json`; schema
// in docs/ANALYSIS.md), and every added diagnostic is also published as an
// "analysis" instant event on the installed obs tracer so findings appear
// in `--trace-json` Chrome traces.
//
// Callers that need the old throw-on-failure contract wrap a failed Report
// in AnalysisError (a TransformError, so existing catch sites keep
// working) — proteusc turns that into a clean one-line-per-diagnostic
// report and exit code 3 instead of an uncaught-exception abort.
#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "lang/ast.hpp"
#include "vl/check.hpp"

namespace proteus::analysis {

enum class Severity : std::uint8_t { kNote, kWarning, kError };

/// Printable severity ("note" / "warning" / "error").
[[nodiscard]] const char* severity_name(Severity s);

/// One analysis finding.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;      ///< stable machine code, e.g. "V103", "B210"
  std::string message;   ///< human-readable statement of the violation
  std::string function;  ///< enclosing function ("<expression>", "<module>")
  lang::SourceLoc loc;   ///< best-effort source span ({0,0} when unknown)
  std::string rule;      ///< paper anchor ("R2d", "Fig.2", "T1", "VCODE")
};

/// Canonical one-line rendering:
///   error[V103] fun quicksort^1 @3:7: <message> (rule Fig.2)
[[nodiscard]] std::string to_line(const Diagnostic& d);

/// An ordered collection of diagnostics from one or more analysis passes.
/// Exact duplicates are dropped so fixpoint-style passes stay readable.
class Report {
 public:
  /// Appends `d` (deduplicated) and publishes it as an "analysis" instant
  /// event on the installed obs tracer, if any.
  void add(Diagnostic d);

  void error(std::string code, std::string message, std::string function,
             lang::SourceLoc loc = {}, std::string rule = {});
  void warning(std::string code, std::string message, std::string function,
               lang::SourceLoc loc = {}, std::string rule = {});

  /// True when the report contains no errors (warnings/notes allowed).
  [[nodiscard]] bool ok() const { return error_count() == 0; }
  [[nodiscard]] std::size_t error_count() const;
  [[nodiscard]] std::size_t warning_count() const;
  [[nodiscard]] bool empty() const { return diagnostics_.empty(); }
  [[nodiscard]] std::size_t size() const { return diagnostics_.size(); }

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diagnostics_;
  }

  /// True when the report contains a diagnostic with this code.
  [[nodiscard]] bool has(std::string_view code) const;

  /// Appends every diagnostic of `other` (without re-publishing events).
  void merge(const Report& other);

  /// One line per diagnostic (to_line), errors first.
  [[nodiscard]] std::string to_text() const;

  /// The machine-readable document of docs/ANALYSIS.md:
  ///   {"verdict":"ok"|"reject","errors":N,"warnings":N,
  ///    "diagnostics":[{...}, ...]}
  void write_json(std::ostream& os) const;

  /// Same document with one extra top-level member spliced in before the
  /// closing brace; `extra_raw_json` must be a complete `"key":value`
  /// fragment (used by proteusc --analyze=json for the "memory" section).
  void write_json(std::ostream& os, std::string_view extra_raw_json) const;

 private:
  /// Appends without dedup or event publishing (merge's workhorse).
  void append(Diagnostic d);

  std::vector<Diagnostic> diagnostics_;
};

/// Thrown when an analysis pass that must gate execution (the pipeline's
/// analyze stage, VM load-time verification) finds errors. Derives from
/// TransformError so pre-existing catch sites treat it as a compile
/// failure; what() embeds the full one-line-per-diagnostic report.
class AnalysisError : public TransformError {
 public:
  explicit AnalysisError(Report report);

  [[nodiscard]] const Report& report() const { return *report_; }

 private:
  std::shared_ptr<const Report> report_;  // shared: exceptions must copy cheaply
};

}  // namespace proteus::analysis
