#include "analysis/shape.hpp"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lang/types.hpp"

namespace proteus::analysis {

using namespace lang;

namespace {

/// Union-find over symbolic segment-descriptor variables. A root may be
/// bound to a concrete top-level length; unifying two roots with distinct
/// concrete lengths is the only failure (the lattice's bottom).
class ShapeCtx {
 public:
  int fresh() {
    parent_.push_back(static_cast<int>(parent_.size()));
    len_.push_back(-1);
    return static_cast<int>(parent_.size()) - 1;
  }

  int fresh_len(long long n) {
    int v = fresh();
    len_[static_cast<std::size_t>(v)] = n < 0 ? 0 : n;
    return v;
  }

  int find(int a) {
    while (parent_[static_cast<std::size_t>(a)] != a) {
      parent_[static_cast<std::size_t>(a)] =
          parent_[static_cast<std::size_t>(
              parent_[static_cast<std::size_t>(a)])];
      a = parent_[static_cast<std::size_t>(a)];
    }
    return a;
  }

  /// Merges the classes of `a` and `b`. Returns false when both carry
  /// distinct concrete lengths (a provable shape conflict).
  bool unify(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return true;
    const long long la = len_[static_cast<std::size_t>(a)];
    const long long lb = len_[static_cast<std::size_t>(b)];
    if (la >= 0 && lb >= 0 && la != lb) return false;
    parent_[static_cast<std::size_t>(a)] = b;
    if (lb < 0) len_[static_cast<std::size_t>(b)] = la;
    return true;
  }

  /// Concrete length of `a`'s class, or -1 when unknown.
  [[nodiscard]] long long length(int a) {
    return len_[static_cast<std::size_t>(find(a))];
  }

 private:
  std::vector<int> parent_;
  std::vector<long long> len_;
};

/// Abstract value: one descriptor variable per Seq nesting level,
/// outermost first (empty for scalars, tuples, and function values).
struct Shape {
  std::vector<int> dims;
};

bool is_int_literal(const ExprPtr& e, vl::Int* out = nullptr) {
  const auto* lit = as<IntLit>(e);
  if (lit == nullptr) return false;
  if (out != nullptr) *out = lit->value;
  return true;
}

class Analyzer {
 public:
  Analyzer(const Program& program, Report& report)
      : program_(program), report_(report) {
    for (const FunDef& f : program.functions) {
      collect_calls(f.body, callees_[f.name]);
    }
  }

  void function(const FunDef& f) {
    fn_ = f.name;
    fn_def_ = &f;
    guarded_ = false;
    env_.clear();
    for (const Param& p : f.params) {
      env_.emplace_back(p.name, from_type(p.type));
    }
    eval(f.body);
  }

  void expression(const ExprPtr& e,
                  const std::vector<std::string>& in_scope) {
    fn_ = "<expression>";
    fn_def_ = nullptr;
    guarded_ = false;
    env_.clear();
    for (const std::string& name : in_scope) {
      env_.emplace_back(name, std::nullopt);  // shape derived at use site
    }
    eval(e);
  }

 private:
  // --- diagnostics -----------------------------------------------------------

  void err(const char* code, std::string msg, const ExprPtr& at,
           const char* rule = "") {
    report_.error(code, std::move(msg), fn_,
                  at != nullptr ? at->loc : SourceLoc{}, rule);
  }

  void warn(const char* code, std::string msg, const ExprPtr& at,
            const char* rule = "") {
    report_.warning(code, std::move(msg), fn_,
                    at != nullptr ? at->loc : SourceLoc{}, rule);
  }

  // --- shape helpers ---------------------------------------------------------

  Shape from_type(const TypePtr& t) {
    Shape s;
    if (t == nullptr) return s;
    const int d = seq_depth(t);
    s.dims.reserve(static_cast<std::size_t>(d));
    for (int i = 0; i < d; ++i) s.dims.push_back(ctx_.fresh());
    return s;
  }

  std::string len_text(int var) {
    const long long n = ctx_.length(var);
    return n < 0 ? std::string("?") : std::to_string(n);
  }

  /// Unifies two top-level descriptors; a concrete conflict is the
  /// Figure 1 invariant provably violated.
  void unify_tops(int a, int b, const ExprPtr& at, const char* what) {
    const std::string la = len_text(a);
    const std::string lb = len_text(b);
    if (!ctx_.unify(a, b)) {
      err("V102",
          std::string(what) + " requires conformable segment shapes, but "
              "the descriptors have lengths " + la + " and " + lb,
          at, "Fig.1");
    }
  }

  // --- call graph (for the R2d guard check) ----------------------------------

  void collect_calls(const ExprPtr& e, std::set<std::string>& out) {
    if (e == nullptr) return;
    std::visit(
        [&](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, FunCall>) {
            out.insert(node.name);
            for (const ExprPtr& a : node.args) collect_calls(a, out);
          } else if constexpr (std::is_same_v<T, Let>) {
            collect_calls(node.init, out);
            collect_calls(node.body, out);
          } else if constexpr (std::is_same_v<T, If>) {
            collect_calls(node.cond, out);
            collect_calls(node.then_expr, out);
            collect_calls(node.else_expr, out);
          } else if constexpr (std::is_same_v<T, PrimCall>) {
            for (const ExprPtr& a : node.args) collect_calls(a, out);
          } else if constexpr (std::is_same_v<T, TupleExpr> ||
                               std::is_same_v<T, SeqExpr>) {
            for (const ExprPtr& a : node.elems) collect_calls(a, out);
          } else if constexpr (std::is_same_v<T, IndirectCall>) {
            collect_calls(node.fn, out);
            for (const ExprPtr& a : node.args) collect_calls(a, out);
          } else if constexpr (std::is_same_v<T, TupleGet>) {
            collect_calls(node.tuple, out);
          } else if constexpr (std::is_same_v<T, Iterator>) {
            collect_calls(node.domain, out);
            collect_calls(node.filter, out);
            collect_calls(node.body, out);
          } else if constexpr (std::is_same_v<T, Call>) {
            collect_calls(node.callee, out);
            for (const ExprPtr& a : node.args) collect_calls(a, out);
          } else if constexpr (std::is_same_v<T, LambdaExpr>) {
            collect_calls(node.body, out);
          }
        },
        e->node);
  }

  /// True when `from` can (transitively) call `to`.
  bool reaches(const std::string& from, const std::string& to) {
    const std::string key = from + "\x1f" + to;
    auto memo = reach_memo_.find(key);
    if (memo != reach_memo_.end()) return memo->second;
    std::set<std::string> seen;
    std::vector<std::string> stack{from};
    bool found = false;
    while (!stack.empty() && !found) {
      std::string cur = std::move(stack.back());
      stack.pop_back();
      if (!seen.insert(cur).second) continue;
      auto it = callees_.find(cur);
      if (it == callees_.end()) continue;
      for (const std::string& next : it->second) {
        if (next == to) {
          found = true;
          break;
        }
        stack.push_back(next);
      }
    }
    reach_memo_[key] = found;
    return found;
  }

  // --- evaluation ------------------------------------------------------------

  Shape eval(const ExprPtr& e) {
    if (e == nullptr) {
      err("V001", "null expression", e, "T1");
      return {};
    }
    if (e->type == nullptr) {
      err("V001", "expression lacks a type annotation", e, "T1");
    }
    return std::visit([&](const auto& node) { return eval_node(node, e); },
                      e->node);
  }

  Shape eval_node(const IntLit&, const ExprPtr&) { return {}; }
  Shape eval_node(const RealLit&, const ExprPtr&) { return {}; }
  Shape eval_node(const BoolLit&, const ExprPtr&) { return {}; }

  Shape eval_node(const VarRef& n, const ExprPtr& e) {
    if (n.is_function) {
      if (!program_.contains(n.name)) {
        err("V003", "function value '" + n.name + "' is not defined", e);
      }
      return {};
    }
    for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
      if (it->first == n.name) {
        if (it->second.has_value()) return *it->second;
        return from_type(e->type);  // caller-provided free variable
      }
    }
    err("V002", "variable '" + n.name + "' is not in scope", e);
    return from_type(e->type);
  }

  Shape eval_node(const Let& n, const ExprPtr&) {
    Shape init = eval(n.init);
    env_.emplace_back(n.var, std::move(init));
    Shape body = eval(n.body);
    env_.pop_back();
    return body;
  }

  Shape eval_node(const If& n, const ExprPtr& e) {
    eval(n.cond);
    if (n.cond != nullptr && n.cond->type != nullptr &&
        n.cond->type->kind() != TypeKind::kBool) {
      err("V004", "V conditional has a non-bool (non-scalar) condition",
          n.cond);
    }
    const auto* guard = as<PrimCall>(n.cond);
    const bool is_guard = guard != nullptr && guard->op == Prim::kAnyTrue;
    const bool saved = guarded_;
    guarded_ = saved || is_guard;
    eval(n.then_expr);
    guarded_ = saved;
    eval(n.else_expr);
    // Join: branch shapes are data-dependent; the lattice's top.
    return from_type(e->type);
  }

  Shape eval_node(const Iterator&, const ExprPtr& e) {
    err("V005", "iterator survived the transformation", e, "R2");
    return from_type(e->type);
  }
  Shape eval_node(const Call&, const ExprPtr& e) {
    err("V005", "unresolved Call node", e, "T1");
    return from_type(e->type);
  }
  Shape eval_node(const LambdaExpr&, const ExprPtr& e) {
    err("V005", "unlifted lambda", e, "R1");
    return from_type(e->type);
  }

  /// Shared depth/lift checks of every call-like node. Returns the list
  /// of frame argument indices (empty when depth is 0 or malformed).
  std::vector<std::size_t> check_call_shape(
      std::size_t n_args, int depth,
      const std::vector<std::uint8_t>& lifted, const char* what,
      const ExprPtr& e) {
    if (depth < 0 || depth > 1) {
      err("V006",
          std::string(what) + " has extension depth " +
              std::to_string(depth) + " (> 1: T1 was not applied?)",
          e, "T1");
      return {};
    }
    if (!lifted.empty() && lifted.size() != n_args) {
      err("V007",
          std::string(what) + " has " + std::to_string(lifted.size()) +
              " lift flags for " + std::to_string(n_args) + " arguments",
          e, "§4.5");
      return {};
    }
    if (depth == 0) return {};
    std::vector<std::size_t> frames;
    for (std::size_t i = 0; i < n_args; ++i) {
      if (lifted.empty() || lifted[i] != 0) frames.push_back(i);
    }
    if (frames.empty() && n_args > 0) {
      err("V008",
          std::string(what) +
              " at depth 1 broadcasts every argument (should have been "
              "hoisted to depth 0)",
          e, "§4.5");
    }
    return frames;
  }

  /// Unifies the top-level descriptors of depth-1 frame operands and
  /// returns the shared descriptor variable (or -1).
  int conform_frames(const std::vector<Shape>& args,
                     const std::vector<std::size_t>& frames,
                     const char* what, const ExprPtr& e) {
    int top = -1;
    for (std::size_t i : frames) {
      const Shape& s = args[i];
      if (s.dims.empty()) {
        err("V101",
            "argument " + std::to_string(i + 1) + " of " + what +
                " is used as a depth-1 frame but has a depth-0 type",
            e, "T1");
        continue;
      }
      if (top < 0) {
        top = s.dims[0];
      } else {
        unify_tops(top, s.dims[0], e, what);
      }
    }
    return top;
  }

  Shape eval_node(const PrimCall& n, const ExprPtr& e) {
    std::vector<Shape> args;
    args.reserve(n.args.size());
    for (const ExprPtr& a : n.args) args.push_back(eval(a));
    const char* what = prim_name(n.op);

    if (n.op == Prim::kEmptyFrame) {
      if (n.depth < 1) {
        err("V009", "empty_frame lacks its frame-depth marker", e, "R2d");
      }
      if (n.args.size() != 1) {
        err("V009", "empty_frame takes exactly the mask", e, "R2d");
      }
      return from_type(e->type);
    }
    if (n.op == Prim::kAnyTrue) {
      if (n.depth != 0) {
        err("V006", "any_true is a whole-frame (depth-0) primitive", e,
            "R2d");
      }
      if (n.args.size() != 1) {
        err("V011", "any_true takes exactly the mask frame", e, "R2d");
      }
      return {};
    }
    if (n.op == Prim::kExtract) return eval_extract(n, args, e);
    if (n.op == Prim::kInsert) return eval_insert(n, args, e);

    if (static_cast<int>(n.args.size()) != prim_arity(n.op)) {
      err("V011",
          std::string(what) + " takes " +
              std::to_string(prim_arity(n.op)) + " arguments, got " +
              std::to_string(n.args.size()),
          e);
      return from_type(e->type);
    }
    std::vector<std::size_t> frames =
        check_call_shape(n.args.size(), n.depth, n.lifted, what, e);

    if (n.depth == 1) {
      const int top = conform_frames(args, frames, what, e);
      Shape result = from_type(e->type);
      if (top >= 0 && !result.dims.empty()) {
        ctx_.unify(result.dims[0], top);
      } else if (top >= 0 && result.dims.empty()) {
        err("V101",
            std::string(what) +
                "^1 produces a frame but the node's static type is depth-0",
            e, "T1");
      }
      return result;
    }
    return eval_prim0(n, args, e);
  }

  /// Depth-0 shape transfer of the sequence primitives of Table 2 /
  /// Section 4.5.
  Shape eval_prim0(const PrimCall& n, const std::vector<Shape>& args,
                   const ExprPtr& e) {
    Shape result = from_type(e->type);
    switch (n.op) {
      case Prim::kRestrict:
      case Prim::kZip:
        // Elementwise pairings: both operands share one descriptor.
        if (!args[0].dims.empty() && !args[1].dims.empty()) {
          unify_tops(args[0].dims[0], args[1].dims[0], e,
                     prim_name(n.op));
        }
        if (n.op == Prim::kZip && !result.dims.empty() &&
            !args[0].dims.empty()) {
          ctx_.unify(result.dims[0], args[0].dims[0]);
        }
        break;
      case Prim::kCombine:
        // The result interleaves v/u across the mask: #result == #mask.
        if (!result.dims.empty() && !args[0].dims.empty()) {
          ctx_.unify(result.dims[0], args[0].dims[0]);
        }
        break;
      case Prim::kSeqUpdate:
      case Prim::kReverse:
        // Length-preserving at the top level.
        if (!result.dims.empty() && !args[0].dims.empty()) {
          ctx_.unify(result.dims[0], args[0].dims[0]);
        }
        break;
      case Prim::kRange1: {
        vl::Int bound = 0;
        if (!result.dims.empty() && is_int_literal(n.args[0], &bound)) {
          ctx_.unify(result.dims[0],
                     ctx_.fresh_len(bound < 0 ? 0 : bound));
        }
        break;
      }
      case Prim::kRange: {
        vl::Int lo = 0;
        vl::Int hi = 0;
        if (!result.dims.empty() && is_int_literal(n.args[0], &lo) &&
            is_int_literal(n.args[1], &hi)) {
          ctx_.unify(result.dims[0],
                     ctx_.fresh_len(hi < lo ? 0 : hi - lo + 1));
        }
        break;
      }
      case Prim::kDist: {
        vl::Int count = 0;
        if (!result.dims.empty() && is_int_literal(n.args[1], &count)) {
          ctx_.unify(result.dims[0],
                     ctx_.fresh_len(count < 0 ? 0 : count));
        }
        break;
      }
      case Prim::kFlatten:
        if (args[0].dims.size() < 2) {
          err("V101",
              "flatten needs a doubly-nested operand (depth >= 2), got "
              "depth " + std::to_string(args[0].dims.size()),
              e, "Fig.1");
        } else if (!result.dims.empty()) {
          // Levels below the merged pair are untouched.
          for (std::size_t i = 1; i < result.dims.size() &&
                                  i + 1 < args[0].dims.size();
               ++i) {
            ctx_.unify(result.dims[i], args[0].dims[i + 1]);
          }
        }
        break;
      default:
        break;
    }
    return result;
  }

  Shape eval_extract(const PrimCall& n, const std::vector<Shape>& args,
                     const ExprPtr& e) {
    vl::Int d = 0;
    if (n.args.size() != 2 || !is_int_literal(n.args[1], &d) || d < 0) {
      err("V010", "extract needs a literal depth argument", e, "Fig.2");
      return from_type(e->type);
    }
    if (d == 0) {
      warn("V201", "extract at depth 0 is the identity (no-op surgery)", e,
           "Fig.2");
    }
    const Shape& v = args[0];
    if (v.dims.size() < static_cast<std::size_t>(d) + 1) {
      err("V101",
          "extract strips " + std::to_string(d) +
              " descriptor levels from a value of nesting depth " +
              std::to_string(v.dims.size()),
          e, "Fig.2");
      return from_type(e->type);
    }
    Shape result;
    result.dims.assign(v.dims.begin() + static_cast<std::ptrdiff_t>(d),
                       v.dims.end());
    if (e->type != nullptr &&
        static_cast<std::size_t>(seq_depth(e->type)) !=
            result.dims.size()) {
      err("V102",
          "extract result has inferred depth " +
              std::to_string(result.dims.size()) +
              " but its static type says " +
              std::to_string(seq_depth(e->type)),
          e, "Fig.2");
      return from_type(e->type);
    }
    return result;
  }

  Shape eval_insert(const PrimCall& n, const std::vector<Shape>& args,
                    const ExprPtr& e) {
    vl::Int d = 0;
    if (n.args.size() != 3 || !is_int_literal(n.args[2], &d) || d < 0) {
      err("V010", "insert needs a literal depth argument", e, "Fig.2");
      return from_type(e->type);
    }
    if (d == 0) {
      warn("V201", "insert at depth 0 is the identity (no-op surgery)", e,
           "Fig.2");
    }
    const Shape& inner = args[0];
    const Shape& frame = args[1];
    if (frame.dims.size() < static_cast<std::size_t>(d) + 1) {
      err("V101",
          "insert re-attaches " + std::to_string(d) +
              " descriptor levels from a frame of nesting depth " +
              std::to_string(frame.dims.size()),
          e, "Fig.2");
      return from_type(e->type);
    }
    if (inner.dims.empty()) {
      err("V101", "insert of a depth-0 value (nothing to re-frame)", e,
          "Fig.2");
      return from_type(e->type);
    }
    // Figure 1: the inserted value's top descriptor must be the frame's
    // level-d descriptor (#V_{d+1} == sum(V_d) after re-attachment).
    if (!ctx_.unify(inner.dims[0],
                    frame.dims[static_cast<std::size_t>(d)])) {
      err("V103",
          "insert re-attaches onto a frame level of length " +
              len_text(frame.dims[static_cast<std::size_t>(d)]) +
              " but the inserted value has top-level length " +
              len_text(inner.dims[0]),
          e, "Fig.2");
    }
    const std::size_t expected =
        static_cast<std::size_t>(d) + inner.dims.size();
    if (e->type != nullptr &&
        static_cast<std::size_t>(seq_depth(e->type)) != expected) {
      err("V103",
          "unbalanced extract/insert: re-attaching " + std::to_string(d) +
              " levels onto a depth-" + std::to_string(inner.dims.size()) +
              " value yields depth " + std::to_string(expected) +
              ", but the static type says " +
              std::to_string(seq_depth(e->type)),
          e, "Fig.2");
      return from_type(e->type);
    }
    Shape result;
    result.dims.assign(frame.dims.begin(),
                       frame.dims.begin() + static_cast<std::ptrdiff_t>(d));
    result.dims.insert(result.dims.end(), inner.dims.begin(),
                       inner.dims.end());
    return result;
  }

  Shape eval_node(const FunCall& n, const ExprPtr& e) {
    std::vector<Shape> args;
    args.reserve(n.args.size());
    for (const ExprPtr& a : n.args) args.push_back(eval(a));
    if (n.depth != 0) {
      err("V006",
          "user call '" + n.name + "' still has extension depth " +
              std::to_string(n.depth) + " (T1 renames depth-1 calls)",
          e, "T1");
    }
    const FunDef* target = program_.find(n.name);
    if (target == nullptr) {
      err("V003", "call target '" + n.name + "' is not defined", e);
    } else if (target->params.size() != n.args.size()) {
      err("V012",
          "call of '" + n.name + "' passes " +
              std::to_string(n.args.size()) + " arguments to " +
              std::to_string(target->params.size()) + " parameters",
          e);
    }
    // Rule R2d: a flattened recursive descent must sit under the
    // any_true empty-frame guard or it cannot terminate.
    if (fn_def_ != nullptr && fn_def_->extension_depth >= 1 && !guarded_ &&
        (n.name == fn_def_->name || reaches(n.name, fn_def_->name))) {
      err("V104",
          "flattened recursive call to '" + n.name +
              "' is not protected by an empty-frame guard",
          e, "R2d");
    }
    return from_type(e->type);
  }

  Shape eval_node(const IndirectCall& n, const ExprPtr& e) {
    eval(n.fn);
    std::vector<Shape> args;
    args.reserve(n.args.size());
    for (const ExprPtr& a : n.args) args.push_back(eval(a));
    if (n.fn != nullptr && n.fn->type != nullptr && !n.fn->type->is_fun()) {
      err("V013", "indirect call through a non-function value", e);
    }
    std::vector<std::size_t> frames = check_call_shape(
        n.args.size(), n.depth, n.lifted, "indirect call", e);
    if (n.depth == 1) conform_frames(args, frames, "indirect call", e);
    return from_type(e->type);
  }

  Shape eval_node(const TupleExpr& n, const ExprPtr& e) {
    std::vector<Shape> args;
    args.reserve(n.elems.size());
    for (const ExprPtr& a : n.elems) args.push_back(eval(a));
    std::vector<std::size_t> frames = check_call_shape(
        n.elems.size(), n.depth, {}, "tuple_cons", e);
    Shape result = from_type(e->type);
    if (n.depth == 1) {
      const int top = conform_frames(args, frames, "tuple_cons", e);
      if (top >= 0 && !result.dims.empty()) {
        ctx_.unify(result.dims[0], top);
      }
    }
    return result;
  }

  Shape eval_node(const TupleGet& n, const ExprPtr& e) {
    Shape tuple = eval(n.tuple);
    if (n.depth < 0 || n.depth > 1) {
      err("V006", "tuple_extract has extension depth > 1", e, "T1");
    }
    if (n.index < 1) {
      err("V014", "tuple component index below 1", e);
    }
    Shape result = from_type(e->type);
    if (n.depth == 1 && !tuple.dims.empty() && !result.dims.empty()) {
      // Selecting one component array out of a tuple frame preserves the
      // frame's descriptor.
      ctx_.unify(result.dims[0], tuple.dims[0]);
    }
    return result;
  }

  Shape eval_node(const SeqExpr& n, const ExprPtr& e) {
    std::vector<Shape> args;
    args.reserve(n.elems.size());
    for (const ExprPtr& a : n.elems) args.push_back(eval(a));
    std::vector<std::size_t> frames =
        check_call_shape(n.elems.size(), n.depth, {}, "seq_cons", e);
    if (n.elems.empty() && n.elem_type == nullptr) {
      err("V015", "empty sequence literal without an element type", e);
    }
    Shape result = from_type(e->type);
    if (n.depth == 1) {
      // seq_cons^1 builds one length-k sequence per slot from k
      // conformable element frames.
      const int top = conform_frames(args, frames, "seq_cons", e);
      if (top >= 0 && !result.dims.empty()) {
        ctx_.unify(result.dims[0], top);
      }
    } else if (!result.dims.empty()) {
      ctx_.unify(result.dims[0],
                 ctx_.fresh_len(static_cast<long long>(n.elems.size())));
    }
    return result;
  }

  const Program& program_;
  Report& report_;
  ShapeCtx ctx_;
  std::vector<std::pair<std::string, std::optional<Shape>>> env_;
  std::string fn_;
  const FunDef* fn_def_ = nullptr;
  bool guarded_ = false;
  std::map<std::string, std::set<std::string>> callees_;
  std::map<std::string, bool> reach_memo_;
};

}  // namespace

Report analyze_program(const Program& program) {
  Report report;
  Analyzer analyzer(program, report);
  for (const FunDef& f : program.functions) {
    analyzer.function(f);
  }
  return report;
}

Report analyze_expression(const Program& program, const ExprPtr& expr,
                          const std::vector<std::string>& in_scope) {
  Report report;
  Analyzer analyzer(program, report);
  analyzer.expression(expr, in_scope);
  return report;
}

}  // namespace proteus::analysis
