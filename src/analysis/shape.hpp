// shape.hpp — static shape/depth analysis of post-T1 V programs by
// abstract interpretation over the nesting-depth lattice.
//
// The paper's correctness story rests on invariants of the flat
// representation (Section 4.1, Figure 1): the descriptor stack satisfies
// #V_{i+1} == sum(V_i), every depth-1 parallel extension f^1 is applied to
// conformable frames, extract/insert pairs balance (Figure 2), and the
// flattened recursion of rule R2d only descends under an any_true
// empty-frame guard. The executors check these dynamically (throwing
// RepresentationError mid-run); this pass proves them statically.
//
// Abstract domain. Every expression gets a Shape: one symbolic segment-
// descriptor variable per Seq nesting level, outermost first. Descriptor
// variables live in a union-find; an operation that requires two levels
// to describe the same segment structure unifies their variables, and a
// variable may be bound to a concrete top-level length when one is known
// statically (sequence literals, range1/dist with literal bounds). The
// lattice is flat: unknown (free variable) above all concrete lengths;
// unifying two distinct known lengths is the only unification failure.
// Joins at conditionals return fresh variables (the top of the lattice),
// so the analysis never rejects a shape merely for being data-dependent.
//
// The pass also performs every structural V-form check folded in from the
// old xform verifier (scope, arity, depth <= 1, lift flags, literal
// depth arguments, surviving source constructs) so all compile-time
// failures share one diagnostic format. Diagnostic codes are listed in
// docs/ANALYSIS.md.
#pragma once

#include "analysis/diagnostic.hpp"
#include "lang/ast.hpp"

namespace proteus::analysis {

/// Analyzes every function body of a post-T1 V program; never throws —
/// all findings land in the returned Report.
[[nodiscard]] Report analyze_program(const lang::Program& program);

/// Analyzes one V expression in the scope of `program`, with `in_scope`
/// naming any free variables that are legitimately bound by the caller.
[[nodiscard]] Report analyze_expression(
    const lang::Program& program, const lang::ExprPtr& expr,
    const std::vector<std::string>& in_scope = {});

}  // namespace proteus::analysis
