#include "analysis/diagnostic.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "obs/tracer.hpp"

namespace proteus::analysis {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string to_line(const Diagnostic& d) {
  std::string out = severity_name(d.severity);
  out += "[";
  out += d.code;
  out += "] ";
  if (!d.function.empty()) {
    if (d.function.front() != '<') out += "fun ";
    out += d.function;
    out += " ";
  }
  if (d.loc.line > 0) {
    // += one piece at a time: the `"@" + to_string(...)` temporary form
    // trips GCC 12's -Werror=restrict false positive (PR105651) at -O2+.
    out += '@';
    out += std::to_string(d.loc.line);
    out += ':';
    out += std::to_string(d.loc.column);
    out += ' ';
  }
  out += ": ";
  out += d.message;
  if (!d.rule.empty()) out += " (rule " + d.rule + ")";
  return out;
}

void Report::add(Diagnostic d) {
  for (const Diagnostic& seen : diagnostics_) {
    if (seen.severity == d.severity && seen.code == d.code &&
        seen.message == d.message && seen.function == d.function &&
        seen.loc.line == d.loc.line && seen.loc.column == d.loc.column) {
      return;
    }
  }
  if (obs::Tracer* t = obs::tracer()) {
    t->instant("analysis", d.code, to_line(d));
  }
  diagnostics_.push_back(std::move(d));
}

void Report::append(Diagnostic d) { diagnostics_.push_back(std::move(d)); }

void Report::error(std::string code, std::string message,
                   std::string function, lang::SourceLoc loc,
                   std::string rule) {
  add(Diagnostic{Severity::kError, std::move(code), std::move(message),
                 std::move(function), loc, std::move(rule)});
}

void Report::warning(std::string code, std::string message,
                     std::string function, lang::SourceLoc loc,
                     std::string rule) {
  add(Diagnostic{Severity::kWarning, std::move(code), std::move(message),
                 std::move(function), loc, std::move(rule)});
}

std::size_t Report::error_count() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::kError;
                    }));
}

std::size_t Report::warning_count() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::kWarning;
                    }));
}

bool Report::has(std::string_view code) const {
  return std::any_of(
      diagnostics_.begin(), diagnostics_.end(),
      [&](const Diagnostic& d) { return d.code == code; });
}

void Report::merge(const Report& other) {
  // No re-publishing: the source report already emitted its findings as
  // instant events when they were added.
  for (const Diagnostic& d : other.diagnostics_) append(d);
}

std::string Report::to_text() const {
  std::string out;
  for (Severity want : {Severity::kError, Severity::kWarning,
                        Severity::kNote}) {
    for (const Diagnostic& d : diagnostics_) {
      if (d.severity == want) {
        out += to_line(d);
        out += '\n';
      }
    }
  }
  return out;
}

void Report::write_json(std::ostream& os) const { write_json(os, {}); }

void Report::write_json(std::ostream& os,
                        std::string_view extra_raw_json) const {
  os << "{\"verdict\":\"" << (ok() ? "ok" : "reject") << "\",\"errors\":"
     << error_count() << ",\"warnings\":" << warning_count()
     << ",\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : diagnostics_) {
    if (!first) os << ',';
    first = false;
    os << "{\"severity\":\"" << severity_name(d.severity) << "\",\"code\":\""
       << obs::json_escape(d.code) << "\",\"function\":\""
       << obs::json_escape(d.function) << "\",\"line\":" << d.loc.line
       << ",\"column\":" << d.loc.column << ",\"message\":\""
       << obs::json_escape(d.message) << "\",\"rule\":\""
       << obs::json_escape(d.rule) << "\"}";
  }
  os << "]";
  if (!extra_raw_json.empty()) os << ',' << extra_raw_json;
  os << "}";
}

namespace {

std::string summarize(const Report& report) {
  std::ostringstream os;
  os << "static analysis found " << report.error_count() << " error"
     << (report.error_count() == 1 ? "" : "s");
  if (report.warning_count() > 0) {
    os << " and " << report.warning_count() << " warning"
       << (report.warning_count() == 1 ? "" : "s");
  }
  os << ":\n" << report.to_text();
  std::string text = os.str();
  if (!text.empty() && text.back() == '\n') text.pop_back();
  return text;
}

}  // namespace

AnalysisError::AnalysisError(Report report)
    : TransformError(summarize(report)),
      report_(std::make_shared<const Report>(std::move(report))) {}

}  // namespace proteus::analysis
