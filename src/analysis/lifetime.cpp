// lifetime.cpp — see lifetime.hpp. Structure:
//
//   1. forward abstract interpretation of register contents in the affine
//      size domain (AbsVal), widened at merge points,
//   2. backward may-liveness over the same CFG; deaths = operands of pc
//      not live out of pc,
//   3. a forward "physically held" pass mirroring the planned VM exactly
//      (held' = (held ∪ def) \ deaths), whose per-pc byte sum plus the
//      in-flight allocation gives the raw peak,
//   4. greedy interval coloring of flat-vector registers into slots,
//   5. M3xx wasteful-pattern warnings.
//
// Interprocedural: call summaries (result value + raw peak, both in terms
// of the callee's input scale) resolve bottom-up in passes; functions in
// recursion cycles never resolve and compose as unbounded — quicksort-
// style flattened recursion legitimately has no static bound.
#include "analysis/lifetime.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "lang/types.hpp"
#include "seq/extract_insert.hpp"

namespace proteus::analysis {

namespace {

using vm::Function;
using vm::Instr;
using vm::Module;
using vm::Op;
using lang::Prim;

constexpr std::uint64_t kSat = std::numeric_limits<std::uint64_t>::max();

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  return a > kSat - b ? kSat : a + b;
}

std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  return a > kSat / b ? kSat : a * b;
}

/// Per-buffer descriptor allowance: a flat value costs its elements plus
/// one vector header / descriptor worth of slack.
constexpr std::uint64_t kBufferOverhead = 64;
/// Fixed slack added to a published bound (tiny frames, empty-descriptor
/// vectors, allocator rounding).
constexpr std::uint64_t kPlanSlack = 4096;
/// Merge-count at one pc after which changed bounds widen to top.
constexpr std::uint32_t kWidenLimit = 8;

std::uint64_t width_of(SlotKind k) {
  return k == SlotKind::kBool ? 1 : 8;
}

/// Abstract register contents for the size pass.
struct AbsVal {
  enum Tag : std::uint8_t { kUnset, kScalar, kFlat, kTop } tag = kUnset;
  SlotKind kind = SlotKind::kUnknown;
  /// kFlat: element-count bound. kScalar: upper bound on the (integer)
  /// value itself — this is what carries `length(v)` into the count
  /// operand of `range1`/`dist`, the T1 codegen for every comprehension.
  SymBound elems;
  bool has_value = false;     ///< kScalar: exact integer value known
  std::int64_t value = 0;

  static AbsVal unset() { return {}; }
  static AbsVal top() {
    return {kTop, SlotKind::kUnknown, SymBound::top(), false, 0};
  }
  static AbsVal scalar(SlotKind k) {
    return {kScalar, k, SymBound::top(), false, 0};
  }
  static AbsVal scalar_capped(SlotKind k, SymBound cap) {
    return {kScalar, k, cap, false, 0};
  }
  static AbsVal scalar_int(std::int64_t v) {
    return {kScalar, SlotKind::kInt,
            SymBound::konst(v < 0 ? 0 : static_cast<std::uint64_t>(v)), true,
            v};
  }
  static AbsVal flat(SlotKind k, SymBound elems) {
    return {kFlat, k, elems, false, 0};
  }

  bool operator==(const AbsVal&) const = default;
};

AbsVal join(const AbsVal& a, const AbsVal& b) {
  if (a.tag == AbsVal::kUnset) return b;
  if (b.tag == AbsVal::kUnset) return a;
  if (a.tag != b.tag) return AbsVal::top();
  if (a.tag == AbsVal::kScalar) {
    AbsVal out = AbsVal::scalar_capped(
        a.kind == b.kind ? a.kind : SlotKind::kUnknown, a.elems.max(b.elems));
    if (a.has_value && b.has_value && a.value == b.value) {
      out.has_value = true;
      out.value = a.value;
    }
    return out;
  }
  if (a.tag == AbsVal::kFlat) {
    return AbsVal::flat(a.kind == b.kind ? a.kind : SlotKind::kUnknown,
                        a.elems.max(b.elems));
  }
  return a;  // kTop
}

/// Drops the unstable parts of a merged value (widening at a hot join).
AbsVal widen(const AbsVal& v) {
  switch (v.tag) {
    case AbsVal::kScalar: {
      return AbsVal::scalar(v.kind);
    }
    case AbsVal::kFlat:
      return AbsVal::flat(v.kind, SymBound::top());
    default:
      return v;
  }
}

/// Byte bound of one register's contents (0 for scalars, top for values
/// the domain cannot size: nested sequences, tuples, functions).
SymBound bytes_of(const AbsVal& v) {
  switch (v.tag) {
    case AbsVal::kUnset:
    case AbsVal::kScalar:
      return SymBound::konst(0);
    case AbsVal::kFlat: {
      if (v.elems.is_top()) return SymBound::top();
      const std::uint64_t w = width_of(v.kind);
      return SymBound::linear(sat_add(sat_mul(v.elems.c0, w), kBufferOverhead),
                              sat_mul(v.elems.c1, w));
    }
    case AbsVal::kTop:
      return SymBound::top();
  }
  return SymBound::top();
}

/// Leaf-scalar bound of one register (for a callee's input scale).
SymBound leaves_of(const AbsVal& v) {
  switch (v.tag) {
    case AbsVal::kUnset:
    case AbsVal::kScalar:
      return SymBound::konst(0);
    case AbsVal::kFlat:
      return v.elems;
    case AbsVal::kTop:
      return SymBound::top();
  }
  return SymBound::top();
}

SlotKind kind_of_type(const lang::TypePtr& t) {
  switch (t->kind()) {
    case lang::TypeKind::kInt:
      return SlotKind::kInt;
    case lang::TypeKind::kReal:
      return SlotKind::kReal;
    case lang::TypeKind::kBool:
      return SlotKind::kBool;
    default:
      return SlotKind::kUnknown;
  }
}

SlotKind kind_of_array(const seq::Array& a) {
  switch (a.kind()) {
    case seq::Array::Kind::kInt:
      return SlotKind::kInt;
    case seq::Array::Kind::kReal:
      return SlotKind::kReal;
    case seq::Array::Kind::kBool:
      return SlotKind::kBool;
    default:
      return SlotKind::kUnknown;
  }
}

AbsVal abstract_constant(const kernels::VValue& v) {
  if (v.is_int()) return AbsVal::scalar_int(v.as_int());
  if (v.is_real()) return AbsVal::scalar(SlotKind::kReal);
  if (v.is_bool()) return AbsVal::scalar(SlotKind::kBool);
  if (v.is_seq()) {
    const seq::Array& a = v.as_seq();
    if (seq::spine_depth(a) == 0 && a.kind() != seq::Array::Kind::kTuple &&
        a.kind() != seq::Array::Kind::kNested) {
      return AbsVal::flat(kind_of_array(a),
                          SymBound::konst(static_cast<std::uint64_t>(
                              a.length() < 0 ? 0 : a.length())));
    }
    // Nested / tuple-element constant: bounded by its own leaf count.
    return AbsVal::top();
  }
  return AbsVal::top();  // tuple / function values
}

/// True when the opcode writes Instr::dst (mirrors vm/verify.cpp).
bool writes_dst(Op op) {
  switch (op) {
    case Op::kBranchEmpty:
    case Op::kJump:
    case Op::kJumpIfFalse:
    case Op::kRet:
      return false;
    default:
      return true;
  }
}

/// Calls `f(succ)` for every CFG successor of pc (mirrors the verifier).
template <typename F>
void for_each_succ(const Instr& in, std::size_t pc, std::size_t n, F&& f) {
  switch (in.op) {
    case Op::kRet:
      break;
    case Op::kJump:
      f(static_cast<std::size_t>(in.aux));
      break;
    case Op::kJumpIfFalse:
    case Op::kBranchEmpty:
      f(static_cast<std::size_t>(in.aux));
      if (pc + 1 < n) f(pc + 1);
      break;
    default:
      if (pc + 1 < n) f(pc + 1);
      break;
  }
}

/// True when the instruction allocates at least one fresh buffer.
bool allocates(const Instr& in) {
  switch (in.op) {
    case Op::kElementwise:
    case Op::kFusedMap:
    case Op::kBuild:
    case Op::kGather:
    case Op::kPack:
    case Op::kSegment:
    case Op::kEmptyFrame:
    case Op::kSeqCons:
    case Op::kExtract:
    case Op::kInsert:
      return true;
    case Op::kReduce:
    case Op::kTuple:
    case Op::kTupleGet:
      return in.depth == 1;
    default:
      return false;
  }
}

/// Interprocedural summary of one function, in terms of its own input
/// scale N: the abstract result value and the raw (unpublished) peak.
struct Summary {
  AbsVal result = AbsVal::top();
  SymBound peak = SymBound::top();
};

struct FnResult {
  FunctionPlan plan;
  Summary summary;
};

class Analyzer {
 public:
  Analyzer(const Module& m, const std::vector<Summary>& summaries,
           const std::vector<char>& resolved)
      : m_(m), summaries_(summaries), resolved_(resolved) {}

  FnResult analyze(std::size_t fi, Report* report);

 private:
  AbsVal transfer_value(const Function& fn, const Instr& in,
                        const std::uint16_t* a,
                        const std::vector<AbsVal>& state) const;
  SymBound call_scale(const Instr& in, const std::uint16_t* a,
                      const std::vector<AbsVal>& state,
                      std::size_t first_arg) const;

  const Module& m_;
  const std::vector<Summary>& summaries_;
  const std::vector<char>& resolved_;
};

/// Input-scale bound of a call: the summed leaf bounds of the argument
/// registers (top as soon as one argument is unsized).
SymBound Analyzer::call_scale(const Instr& in, const std::uint16_t* a,
                              const std::vector<AbsVal>& state,
                              std::size_t first_arg) const {
  SymBound n = SymBound::konst(0);
  for (std::size_t i = first_arg; i < in.args_count; ++i) {
    n = n.plus(leaves_of(state[a[i]]));
  }
  return n;
}

AbsVal Analyzer::transfer_value(const Function& fn, const Instr& in,
                                const std::uint16_t* a,
                                const std::vector<AbsVal>& state) const {
  const auto flat_arg = [&](std::size_t i) -> const AbsVal& {
    return state[a[i]];
  };
  switch (in.op) {
    case Op::kConst:
    case Op::kLoadFun:
      return abstract_constant(
          m_.constants[static_cast<std::size_t>(in.aux)]);
    case Op::kMove:
      return state[a[0]];
    case Op::kScalar: {
      // Track exact integer values through the handful of arithmetic ops
      // that feed range/dist lengths; everything else keeps the kind only.
      const auto val = [&](std::size_t i) { return state[a[i]]; };
      if (in.args_count == 2 && val(0).has_value && val(1).has_value) {
        const std::int64_t x = val(0).value;
        const std::int64_t y = val(1).value;
        switch (in.prim) {
          case Prim::kAdd: {
            std::int64_t r = 0;
            if (!__builtin_add_overflow(x, y, &r)) return AbsVal::scalar_int(r);
            break;
          }
          case Prim::kSub: {
            std::int64_t r = 0;
            if (!__builtin_sub_overflow(x, y, &r)) return AbsVal::scalar_int(r);
            break;
          }
          case Prim::kMul: {
            std::int64_t r = 0;
            if (!__builtin_mul_overflow(x, y, &r)) return AbsVal::scalar_int(r);
            break;
          }
          case Prim::kMin:
            return AbsVal::scalar_int(std::min(x, y));
          case Prim::kMax:
            return AbsVal::scalar_int(std::max(x, y));
          default:
            break;
        }
      }
      if (in.args_count == 1 && in.prim == Prim::kNeg && val(0).has_value &&
          val(0).value != std::numeric_limits<std::int64_t>::min()) {
        return AbsVal::scalar_int(-val(0).value);
      }
      // Value caps survive the monotone ops (x<=cx, y<=cy imply
      // x+y <= cx+cy and min/max(x,y) <= max(cx,cy)); sub/mul/div can
      // amplify through negatives, so they fall through to top caps.
      if (in.args_count == 2 && val(0).tag == AbsVal::kScalar &&
          val(1).tag == AbsVal::kScalar) {
        switch (in.prim) {
          case Prim::kAdd:
            return AbsVal::scalar_capped(val(0).kind,
                                         val(0).elems.plus(val(1).elems));
          case Prim::kMin:
          case Prim::kMax:
            return AbsVal::scalar_capped(val(0).kind,
                                         val(0).elems.max(val(1).elems));
          default:
            break;
        }
      }
      switch (in.prim) {
        case Prim::kEq:
        case Prim::kNe:
        case Prim::kLt:
        case Prim::kLe:
        case Prim::kGt:
        case Prim::kGe:
        case Prim::kAnd:
        case Prim::kOr:
        case Prim::kNot:
          return AbsVal::scalar(SlotKind::kBool);
        case Prim::kToReal:
        case Prim::kSqrt:
          return AbsVal::scalar(SlotKind::kReal);
        case Prim::kToInt:
          return AbsVal::scalar(SlotKind::kInt);
        default:
          return AbsVal::scalar(in.args_count > 0 ? state[a[0]].kind
                                                  : SlotKind::kUnknown);
      }
    }
    case Op::kElementwise: {
      // Result length = frame length. A *lifted* operand is a frame
      // sequence (an empty/absent lift set means every operand is); a
      // non-lifted one is a broadcast scalar and does not bound it —
      // kernels::apply_prim1 takes the frame length from the first
      // lifted argument.
      const std::vector<std::uint8_t>* lifted =
          in.lifted >= 0
              ? &fn.lifted_sets[static_cast<std::size_t>(in.lifted)]
              : nullptr;
      SymBound elems = SymBound::konst(0);
      bool any_frame = false;
      SlotKind frame_kind = SlotKind::kUnknown;
      for (std::size_t i = 0; i < in.args_count; ++i) {
        const bool is_frame =
            lifted == nullptr || lifted->empty() || (*lifted)[i] != 0;
        if (!is_frame) continue;
        const AbsVal& v = flat_arg(i);
        if (v.tag == AbsVal::kScalar) continue;  // broadcast depth-0 value
        any_frame = true;
        if (v.tag == AbsVal::kFlat) {
          elems = elems.max(v.elems);
          if (frame_kind == SlotKind::kUnknown) frame_kind = v.kind;
        } else {
          elems = SymBound::top();
        }
      }
      SlotKind k = frame_kind;
      switch (in.prim) {
        case Prim::kEq:
        case Prim::kNe:
        case Prim::kLt:
        case Prim::kLe:
        case Prim::kGt:
        case Prim::kGe:
        case Prim::kAnd:
        case Prim::kOr:
        case Prim::kNot:
          k = SlotKind::kBool;
          break;
        case Prim::kToReal:
        case Prim::kSqrt:
          k = SlotKind::kReal;
          break;
        case Prim::kToInt:
          k = SlotKind::kInt;
          break;
        default:
          break;
      }
      return AbsVal::flat(k, any_frame ? elems : SymBound::top());
    }
    case Op::kFusedMap: {
      const kernels::FusedExpr& fe =
          fn.fused[static_cast<std::size_t>(in.aux)];
      SymBound elems = SymBound::konst(0);
      bool any_frame = false;
      SlotKind frame_kind = SlotKind::kUnknown;
      for (std::size_t i = 0; i < in.args_count; ++i) {
        if ((fe.input_flags[i] & kernels::kFusedBroadcast) != 0) continue;
        const AbsVal& v = flat_arg(i);
        if (v.tag == AbsVal::kScalar) continue;
        any_frame = true;
        if (v.tag == AbsVal::kFlat) {
          elems = elems.max(v.elems);
          if (frame_kind == SlotKind::kUnknown) frame_kind = v.kind;
        } else {
          elems = SymBound::top();
        }
      }
      // The root micro-op decides the element kind of the output buffer.
      SlotKind k = frame_kind;
      switch (fe.nodes.back().prim) {
        case Prim::kEq:
        case Prim::kNe:
        case Prim::kLt:
        case Prim::kLe:
        case Prim::kGt:
        case Prim::kGe:
        case Prim::kAnd:
        case Prim::kOr:
        case Prim::kNot:
          k = SlotKind::kBool;
          break;
        case Prim::kToReal:
        case Prim::kSqrt:
          k = SlotKind::kReal;
          break;
        case Prim::kToInt:
          k = SlotKind::kInt;
          break;
        default:
          break;
      }
      return AbsVal::flat(k, any_frame ? elems : SymBound::top());
    }
    case Op::kBuild: {
      if (in.depth != 0) return AbsVal::top();
      if (in.prim == Prim::kRange && in.args_count == 2 &&
          state[a[0]].has_value && state[a[1]].has_value) {
        const std::int64_t lo = state[a[0]].value;
        const std::int64_t hi = state[a[1]].value;
        const std::uint64_t len =
            hi < lo ? 0 : static_cast<std::uint64_t>(hi - lo) + 1;
        return AbsVal::flat(SlotKind::kInt, SymBound::konst(len));
      }
      if (in.prim == Prim::kRange && in.args_count == 2 &&
          state[a[0]].has_value && state[a[0]].value >= 1 &&
          state[a[1]].tag == AbsVal::kScalar) {
        // [lo..hi] with lo >= 1 known: count <= max(hi, 0) <= cap(hi).
        return AbsVal::flat(SlotKind::kInt, state[a[1]].elems);
      }
      if (in.prim == Prim::kRange1 && in.args_count == 1 &&
          state[a[0]].tag == AbsVal::kScalar) {
        // [1..c]: the count IS the operand's value, so its cap bounds it
        // (this is how `length -> range1 -> gather` stays finite).
        return AbsVal::flat(SlotKind::kInt, state[a[0]].elems);
      }
      if (in.prim == Prim::kDist && in.args_count == 2) {
        const AbsVal& c = state[a[0]];
        const AbsVal& r = state[a[1]];
        if (c.tag == AbsVal::kScalar && r.has_value) {
          return AbsVal::flat(c.kind,
                              SymBound::konst(r.value < 0
                                                  ? 0
                                                  : static_cast<std::uint64_t>(
                                                        r.value)));
        }
        if (c.tag == AbsVal::kScalar) {
          return AbsVal::flat(c.kind, r.tag == AbsVal::kScalar
                                          ? r.elems
                                          : SymBound::top());
        }
        return AbsVal::top();  // dist of a non-scalar replicates structure
      }
      if (in.prim == Prim::kRange || in.prim == Prim::kRange1) {
        return AbsVal::flat(SlotKind::kInt, SymBound::top());
      }
      return AbsVal::top();
    }
    case Op::kGather: {
      if (in.depth != 0) {
        if (in.prim == Prim::kSeqIndex && in.args_count == 2) {
          // v[i] lifted over a frame of indices: |frame| elements of v's
          // kind (a broadcast v stays kFlat; a lifted — nested — v is
          // already kTop and falls through).
          const AbsVal& v = state[a[0]];
          const AbsVal& is = state[a[1]];
          if (v.tag == AbsVal::kFlat && is.tag == AbsVal::kFlat) {
            return AbsVal::flat(v.kind, is.elems);
          }
        }
        return AbsVal::top();
      }
      if (in.prim == Prim::kSeqIndex && in.args_count == 2) {
        // v[i]: one element of v.
        const AbsVal& v = state[a[0]];
        if (v.tag == AbsVal::kFlat) return AbsVal::scalar(v.kind);
        return AbsVal::top();
      }
      if (in.prim == Prim::kSeqIndexInner && in.args_count == 2) {
        // [v[i] : i in is]: len(is) elements of v's kind.
        const AbsVal& v = state[a[0]];
        const AbsVal& is = state[a[1]];
        if (v.tag == AbsVal::kFlat) {
          return AbsVal::flat(v.kind, is.tag == AbsVal::kFlat
                                          ? is.elems
                                          : SymBound::top());
        }
        return AbsVal::top();
      }
      return AbsVal::top();
    }
    case Op::kPack: {
      if (in.depth != 0) return AbsVal::top();
      if (in.prim == Prim::kRestrict || in.prim == Prim::kSeqUpdate) {
        const AbsVal& v = state[a[0]];
        if (v.tag == AbsVal::kFlat) return v;
        return AbsVal::top();
      }
      if (in.prim == Prim::kCombine && in.args_count == 3) {
        const AbsVal& v = state[a[1]];
        const AbsVal& u = state[a[2]];
        if (v.tag == AbsVal::kFlat && u.tag == AbsVal::kFlat) {
          return AbsVal::flat(v.kind == u.kind ? v.kind : SlotKind::kUnknown,
                              v.elems.plus(u.elems));
        }
        return AbsVal::top();
      }
      return AbsVal::top();
    }
    case Op::kReduce:
      if (in.depth != 0) {
        // Segmented reduction: one scalar per segment of a nested operand
        // the flat domain does not size.
        return AbsVal::flat(SlotKind::kUnknown, SymBound::top());
      }
      switch (in.prim) {
        case Prim::kLength:
          // The length *value* is capped by the operand's element bound —
          // the hinge that sizes every downstream range1/dist.
          return AbsVal::scalar_capped(
              SlotKind::kInt, in.args_count > 0 &&
                                      state[a[0]].tag == AbsVal::kFlat
                                  ? state[a[0]].elems
                                  : SymBound::top());
        case Prim::kAnyV:
        case Prim::kAllV:
        case Prim::kAnyTrue:
          return AbsVal::scalar(SlotKind::kBool);
        default:
          return AbsVal::scalar(in.args_count > 0 &&
                                        state[a[0]].tag == AbsVal::kFlat
                                    ? state[a[0]].kind
                                    : SlotKind::kUnknown);
      }
    case Op::kSegment: {
      if (in.depth != 0) return AbsVal::top();
      if (in.prim == Prim::kConcat && in.args_count == 2) {
        const AbsVal& v = state[a[0]];
        const AbsVal& u = state[a[1]];
        if (v.tag == AbsVal::kFlat && u.tag == AbsVal::kFlat) {
          return AbsVal::flat(v.kind == u.kind ? v.kind : SlotKind::kUnknown,
                              v.elems.plus(u.elems));
        }
        return AbsVal::top();
      }
      if (in.prim == Prim::kReverse && in.args_count == 1) {
        const AbsVal& v = state[a[0]];
        if (v.tag == AbsVal::kFlat) return v;
        return AbsVal::top();
      }
      return AbsVal::top();  // flatten / zip restructure the spine
    }
    case Op::kEmptyFrame:
      // Zero leaves under a constant-size descriptor spine.
      return AbsVal::flat(SlotKind::kUnknown, SymBound::konst(0));
    case Op::kSeqCons: {
      if (in.depth != 0) return AbsVal::top();
      if (in.args_count == 0) {
        if (in.aux >= 0 &&
            static_cast<std::size_t>(in.aux) < m_.types.size()) {
          const lang::TypePtr& t =
              m_.types[static_cast<std::size_t>(in.aux)];
          if (t->is_seq() && t->elem()->is_scalar()) {
            return AbsVal::flat(kind_of_type(t->elem()), SymBound::konst(0));
          }
        }
        return AbsVal::flat(SlotKind::kUnknown, SymBound::konst(0));
      }
      const AbsVal& first = state[a[0]];
      if (first.tag == AbsVal::kScalar) {
        return AbsVal::flat(first.kind, SymBound::konst(in.args_count));
      }
      return AbsVal::top();  // sequence-of-sequence / tuple literal
    }
    case Op::kCall: {
      if (in.aux < 0) return AbsVal::top();
      const auto callee = static_cast<std::size_t>(in.aux);
      if (callee >= resolved_.size() || resolved_[callee] == 0) {
        return AbsVal::top();
      }
      const Summary& s = summaries_[callee];
      const SymBound n = call_scale(in, a, state, 0);
      if (n.is_top()) {
        return s.result.tag == AbsVal::kScalar ? s.result : AbsVal::top();
      }
      if (s.result.tag == AbsVal::kFlat) {
        return AbsVal::flat(s.result.kind, s.result.elems.compose(n));
      }
      AbsVal r = s.result;
      r.has_value = false;  // a summary's exact value is per-context
      return r;
    }
    case Op::kTuple:
    case Op::kTupleGet:
    case Op::kExtract:
    case Op::kInsert:
    case Op::kCallIndirect:
      return AbsVal::top();
    default:
      return AbsVal::top();
  }
}

FnResult Analyzer::analyze(std::size_t fi, Report* report) {
  const Function& fn = m_.functions[fi];
  FnResult out;
  const std::size_t n = fn.code.size();
  const std::size_t n_regs = fn.n_regs;
  out.plan.death_off.assign(n + 1, 0);
  out.plan.reg_slot.assign(n_regs, -1);
  if (n == 0) {
    out.summary = Summary{};
    return out;
  }

  // --- 1. forward size pass (widened worklist dataflow) ---------------------
  std::vector<std::vector<AbsVal>> in_state(n);
  std::vector<std::uint8_t> reached(n, 0);
  std::vector<std::uint32_t> merges(n, 0);

  std::vector<AbsVal> entry(n_regs, AbsVal::unset());
  const vm::Signature* sig = m_.signature(static_cast<std::uint32_t>(fi));
  for (std::size_t r = 0; r < fn.n_params; ++r) {
    if (sig != nullptr && r < sig->params.size()) {
      const lang::TypePtr& t = sig->params[r];
      if (t->is_scalar()) {
        entry[r] = AbsVal::scalar(kind_of_type(t));
      } else if (t->is_seq() && t->elem()->is_scalar()) {
        entry[r] = AbsVal::flat(kind_of_type(t->elem()), SymBound::linear(0, 1));
      } else {
        entry[r] = AbsVal::top();
      }
    } else {
      entry[r] = AbsVal::top();
    }
  }

  std::vector<std::size_t> work;
  auto flow_to = [&](std::size_t pc, const std::vector<AbsVal>& state) {
    if (pc >= n) return;
    if (reached[pc] == 0) {
      reached[pc] = 1;
      in_state[pc] = state;
      work.push_back(pc);
      return;
    }
    bool changed = false;
    const bool widen_now = ++merges[pc] > kWidenLimit;
    for (std::size_t r = 0; r < n_regs; ++r) {
      AbsVal merged = join(in_state[pc][r], state[r]);
      if (merged == in_state[pc][r]) continue;
      if (widen_now) merged = widen(merged);
      if (merged == in_state[pc][r]) continue;
      in_state[pc][r] = merged;
      changed = true;
    }
    if (changed) work.push_back(pc);
  };

  flow_to(0, entry);
  while (!work.empty()) {
    const std::size_t pc = work.back();
    work.pop_back();
    const Instr& in = fn.code[pc];
    std::vector<AbsVal> state = in_state[pc];
    if (writes_dst(in.op)) {
      state[in.dst] =
          transfer_value(fn, in, fn.arg_pool.data() + in.args_off, state);
    }
    for_each_succ(in, pc, n, [&](std::size_t succ) { flow_to(succ, state); });
  }

  // --- 2. backward may-liveness ---------------------------------------------
  const std::size_t words = (n_regs + 63) / 64;
  std::vector<std::uint64_t> live_in(n * words, 0);
  const auto bit = [](std::size_t r) {
    return std::uint64_t{1} << (r % 64);
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t pc = n; pc-- > 0;) {
      if (reached[pc] == 0) continue;
      const Instr& in = fn.code[pc];
      // live-out = union of successors' live-in.
      std::vector<std::uint64_t> row(words, 0);
      for_each_succ(in, pc, n, [&](std::size_t succ) {
        for (std::size_t w = 0; w < words; ++w) {
          row[w] |= live_in[succ * words + w];
        }
      });
      // minus def, plus uses.
      if (writes_dst(in.op)) row[in.dst / 64] &= ~bit(in.dst);
      const std::uint16_t* a = fn.arg_pool.data() + in.args_off;
      for (std::size_t i = 0; i < in.args_count; ++i) {
        row[a[i] / 64] |= bit(a[i]);
      }
      for (std::size_t w = 0; w < words; ++w) {
        if (live_in[pc * words + w] != row[w]) {
          live_in[pc * words + w] = row[w];
          changed = true;
        }
      }
    }
  }

  const auto live_out_word = [&](std::size_t pc, std::size_t w) {
    std::uint64_t v = 0;
    for_each_succ(fn.code[pc], pc, n, [&](std::size_t succ) {
      v |= live_in[succ * words + w];
    });
    return v;
  };

  // --- 3. deaths (CSR) -------------------------------------------------------
  std::vector<std::vector<std::uint16_t>> deaths(n);
  for (std::size_t pc = 0; pc < n; ++pc) {
    if (reached[pc] == 0) continue;
    const Instr& in = fn.code[pc];
    const std::uint16_t* a = fn.arg_pool.data() + in.args_off;
    for (std::size_t i = 0; i < in.args_count; ++i) {
      const std::uint16_t r = a[i];
      if (writes_dst(in.op) && r == in.dst) continue;
      if ((live_out_word(pc, r / 64) & bit(r)) != 0) continue;
      auto& d = deaths[pc];
      if (std::find(d.begin(), d.end(), r) == d.end()) d.push_back(r);
    }
    std::sort(deaths[pc].begin(), deaths[pc].end());
  }
  for (std::size_t pc = 0; pc < n; ++pc) {
    out.plan.death_off[pc + 1] =
        out.plan.death_off[pc] +
        static_cast<std::uint32_t>(deaths[pc].size());
    out.plan.death_regs.insert(out.plan.death_regs.end(), deaths[pc].begin(),
                               deaths[pc].end());
  }

  // --- 4. physically-held pass + peak ---------------------------------------
  // Mirrors the planned VM exactly: held' = (held ∪ def) \ deaths. The raw
  // peak is the largest per-pc byte sum of held registers plus the bytes
  // the instruction itself materializes (or its callee's peak).
  std::vector<std::uint64_t> held_in(n * words, 0);
  std::vector<std::uint8_t> held_seen(n, 0);
  const auto held_flow = [&](std::size_t pc,
                             const std::vector<std::uint64_t>& row) {
    bool delta = held_seen[pc] == 0;
    held_seen[pc] = 1;
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t merged = held_in[pc * words + w] | row[w];
      if (merged != held_in[pc * words + w]) {
        held_in[pc * words + w] = merged;
        delta = true;
      }
    }
    return delta;
  };
  {
    std::vector<std::uint64_t> entry_row(words, 0);
    for (std::size_t r = 0; r < fn.n_params; ++r) entry_row[r / 64] |= bit(r);
    (void)held_flow(0, entry_row);
    std::vector<std::size_t> hw{0};
    while (!hw.empty()) {
      const std::size_t pc = hw.back();
      hw.pop_back();
      const Instr& in = fn.code[pc];
      std::vector<std::uint64_t> row(
          held_in.begin() + static_cast<std::ptrdiff_t>(pc * words),
          held_in.begin() + static_cast<std::ptrdiff_t>((pc + 1) * words));
      if (writes_dst(in.op)) row[in.dst / 64] |= bit(in.dst);
      for (const std::uint16_t r : deaths[pc]) row[r / 64] &= ~bit(r);
      for_each_succ(in, pc, n, [&](std::size_t succ) {
        if (held_flow(succ, row)) hw.push_back(succ);
      });
    }
  }

  SymBound raw_peak = SymBound::konst(0);
  out.summary.result = AbsVal::unset();
  for (std::size_t pc = 0; pc < n; ++pc) {
    if (reached[pc] == 0) continue;
    const Instr& in = fn.code[pc];
    const std::uint16_t* a = fn.arg_pool.data() + in.args_off;

    SymBound held_bytes = SymBound::konst(0);
    for (std::size_t r = 0; r < n_regs; ++r) {
      if ((held_in[pc * words + r / 64] & bit(r)) == 0) continue;
      held_bytes = held_bytes.plus(bytes_of(in_state[pc][r]));
    }
    SymBound transient = SymBound::konst(0);
    if (in.op == Op::kCall) {
      if (in.aux >= 0 &&
          static_cast<std::size_t>(in.aux) < resolved_.size() &&
          resolved_[static_cast<std::size_t>(in.aux)] != 0) {
        const Summary& s = summaries_[static_cast<std::size_t>(in.aux)];
        const SymBound scale = call_scale(in, a, in_state[pc], 0);
        transient = scale.is_top() ? (s.peak == SymBound::konst(0)
                                          ? SymBound::konst(0)
                                          : SymBound::top())
                                   : s.peak.compose(scale);
      } else {
        transient = SymBound::top();
      }
    } else if (in.op == Op::kCallIndirect) {
      transient = SymBound::top();
    } else if (allocates(in)) {
      transient = bytes_of(transfer_value(fn, in, a, in_state[pc]));
      out.plan.static_allocs += 1;
    }
    raw_peak = raw_peak.max(held_bytes.plus(transient));

    if (in.op == Op::kRet) {
      out.summary.result = join(out.summary.result, in_state[pc][a[0]]);
    }
  }
  if (out.summary.result.tag == AbsVal::kUnset) {
    out.summary.result = AbsVal::top();
  }
  out.summary.peak = raw_peak;
  // Published bound: live + in-flight, doubled to cover the evaluation
  // arena's pooled dead buffers (the arena caps its pool at bound/2), plus
  // fixed slack. See docs/VM.md.
  out.plan.peak_bytes =
      raw_peak.plus(raw_peak).plus(SymBound::konst(kPlanSlack));

  // --- 5. slot coloring ------------------------------------------------------
  {
    std::vector<AbsVal> joined(n_regs, AbsVal::unset());
    std::vector<std::size_t> first_def(n_regs, n);
    std::vector<std::size_t> last_touch(n_regs, 0);
    std::vector<std::uint8_t> defined(n_regs, 0);
    for (std::size_t r = 0; r < fn.n_params; ++r) {
      first_def[r] = 0;
      defined[r] = 1;
    }
    for (std::size_t pc = 0; pc < n; ++pc) {
      if (reached[pc] == 0) continue;
      const Instr& in = fn.code[pc];
      for (std::size_t r = 0; r < n_regs; ++r) {
        joined[r] = join(joined[r], in_state[pc][r]);
      }
      const std::uint16_t* a = fn.arg_pool.data() + in.args_off;
      for (std::size_t i = 0; i < in.args_count; ++i) {
        defined[a[i]] = 1;
        last_touch[a[i]] = std::max(last_touch[a[i]], pc);
      }
      if (writes_dst(in.op)) {
        defined[in.dst] = 1;
        first_def[in.dst] = std::min(first_def[in.dst], pc);
        last_touch[in.dst] = std::max(last_touch[in.dst], pc);
      }
    }
    std::vector<std::size_t> order;
    for (std::size_t r = 0; r < n_regs; ++r) {
      if (defined[r] != 0 && joined[r].tag == AbsVal::kFlat &&
          first_def[r] < n) {
        order.push_back(r);
      }
    }
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      return first_def[x] != first_def[y] ? first_def[x] < first_def[y]
                                          : x < y;
    });
    std::vector<std::size_t> busy_until;  // parallel to plan.slots
    for (const std::size_t r : order) {
      std::int32_t slot = -1;
      for (std::size_t s = 0; s < out.plan.slots.size(); ++s) {
        if (out.plan.slots[s].kind == joined[r].kind &&
            busy_until[s] < first_def[r]) {
          slot = static_cast<std::int32_t>(s);
          break;
        }
      }
      if (slot < 0) {
        out.plan.slots.push_back(SlotPlan{joined[r].kind, joined[r].elems});
        busy_until.push_back(last_touch[r]);
        slot = static_cast<std::int32_t>(out.plan.slots.size() - 1);
      } else {
        out.plan.slots[static_cast<std::size_t>(slot)].elems =
            out.plan.slots[static_cast<std::size_t>(slot)].elems.max(
                joined[r].elems);
        busy_until[static_cast<std::size_t>(slot)] = last_touch[r];
      }
      out.plan.reg_slot[r] = slot;
    }
  }

  // --- 6. M3xx wasteful-pattern warnings ------------------------------------
  if (report != nullptr) {
    const auto warn = [&](const char* code, std::string msg, std::size_t pc) {
      report->warning(code,
                      "pc " + std::to_string(pc) + ": " + std::move(msg),
                      fn.name, {}, "VCODE");
    };
    for (std::size_t pc = 0; pc < n; ++pc) {
      if (reached[pc] == 0) continue;
      const Instr& in = fn.code[pc];
      // M301: a computed value nothing ever reads.
      if (writes_dst(in.op) && in.op != Op::kCall &&
          in.op != Op::kCallIndirect &&
          (live_out_word(pc, in.dst / 64) & bit(in.dst)) == 0) {
        warn("M301",
             "dead store: r" + std::to_string(in.dst) +
                 " is written but never read",
             pc);
      }
      // M303: a copy whose source dies at the copy.
      if (in.op == Op::kMove) {
        const std::uint16_t src = fn.arg_pool[in.args_off];
        if (std::binary_search(deaths[pc].begin(), deaths[pc].end(), src)) {
          warn("M303",
               "redundant copy: r" + std::to_string(src) +
                   " dies here; the move could be elided",
               pc);
        }
      }
      // M302: a buffer materialized only to feed one scalar reduction.
      if ((in.op == Op::kElementwise || in.op == Op::kFusedMap) &&
          writes_dst(in.op)) {
        std::size_t uses = 0;
        std::size_t use_pc = 0;
        for (std::size_t q = pc + 1; q < n && uses < 2; ++q) {
          if (reached[q] == 0) continue;
          const Instr& user = fn.code[q];
          const std::uint16_t* ua = fn.arg_pool.data() + user.args_off;
          for (std::size_t i = 0; i < user.args_count; ++i) {
            if (ua[i] == in.dst) {
              ++uses;
              use_pc = q;
              break;
            }
          }
          if (writes_dst(user.op) && user.dst == in.dst) break;
        }
        if (uses == 1) {
          const Instr& user = fn.code[use_pc];
          if (user.op == Op::kReduce && user.depth == 0 &&
              std::binary_search(deaths[use_pc].begin(),
                                 deaths[use_pc].end(), in.dst)) {
            warn("M302",
                 "r" + std::to_string(in.dst) +
                     " is materialized only to feed the reduction at pc " +
                     std::to_string(use_pc) +
                     " (the fuser missed a fold)",
                 pc);
          }
        }
      }
    }
  }
  return out;
}

/// True when every resolved-summary dependency of `fn` is available:
/// all direct kCall targets resolved (self/mutual recursion never is).
bool callees_resolved(const Function& fn, std::size_t self,
                      const std::vector<char>& resolved) {
  for (const Instr& in : fn.code) {
    if (in.op != Op::kCall || in.aux < 0) continue;
    const auto callee = static_cast<std::size_t>(in.aux);
    if (callee == self || callee >= resolved.size() ||
        resolved[callee] == 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

SymBound SymBound::plus(const SymBound& o) const {
  if (unbounded || o.unbounded) return top();
  return {sat_add(c0, o.c0), sat_add(c1, o.c1), false};
}

SymBound SymBound::max(const SymBound& o) const {
  if (unbounded || o.unbounded) return top();
  return {std::max(c0, o.c0), std::max(c1, o.c1), false};
}

SymBound SymBound::times(std::uint64_t k) const {
  if (unbounded) return top();
  return {sat_mul(c0, k), sat_mul(c1, k), false};
}

SymBound SymBound::compose(const SymBound& inner) const {
  if (unbounded) return top();
  if (c1 == 0) return *this;  // constant: no N to substitute
  if (inner.unbounded) return top();
  return {sat_add(c0, sat_mul(c1, inner.c0)), sat_mul(c1, inner.c1), false};
}

std::uint64_t SymBound::eval(std::uint64_t n) const {
  if (unbounded) return kSat;
  return sat_add(c0, sat_mul(c1, n));
}

std::string SymBound::to_text() const {
  if (unbounded) return "unbounded";
  if (c1 == 0) return std::to_string(c0);
  std::string s = std::to_string(c1) + "*N";
  if (c0 != 0) s = std::to_string(c0) + " + " + s;
  return s;
}

const char* slot_kind_name(SlotKind k) {
  switch (k) {
    case SlotKind::kInt:
      return "int";
    case SlotKind::kReal:
      return "real";
    case SlotKind::kBool:
      return "bool";
    case SlotKind::kUnknown:
      return "any";
  }
  return "any";
}

PlanResult plan_module(const vm::Module& m) {
  PlanResult out;
  const std::size_t n = m.functions.size();
  std::vector<Summary> summaries(n);
  std::vector<char> resolved(n, 0);

  // Bottom-up summary resolution; anything in a call cycle stays
  // unresolved and composes as unbounded.
  for (std::size_t pass = 0; pass <= n; ++pass) {
    bool progress = false;
    Analyzer analyzer(m, summaries, resolved);
    for (std::size_t f = 0; f < n; ++f) {
      if (resolved[f] != 0) continue;
      if (!callees_resolved(m.functions[f], f, resolved)) continue;
      summaries[f] = analyzer.analyze(f, nullptr).summary;
      resolved[f] = 1;
      progress = true;
    }
    if (!progress) break;
  }

  Analyzer analyzer(m, summaries, resolved);
  out.plan.functions.resize(n);
  for (std::size_t f = 0; f < n; ++f) {
    out.plan.functions[f] = analyzer.analyze(f, &out.report).plan;
  }
  return out;
}

std::uint64_t input_scale(const std::vector<kernels::VValue>& args) {
  std::uint64_t n = 0;
  for (const kernels::VValue& v : args) {
    if (v.is_seq()) {
      n = sat_add(n, static_cast<std::uint64_t>(
                         std::max<seq::Size>(0, v.as_seq().leaf_count())));
    } else if (v.is_tuple()) {
      n = sat_add(n, input_scale(v.as_tuple()));
    }
  }
  return n;
}

std::string plan_to_text(const FunctionPlan& plan) {
  std::string s;
  s += "// memory plan: peak <= " + plan.peak_bytes.to_text() +
       " bytes, " + std::to_string(plan.static_allocs) + " static allocs, " +
       std::to_string(plan.slots.size()) + " slots\n";
  for (std::size_t i = 0; i < plan.slots.size(); ++i) {
    s += "//   slot " + std::to_string(i) + ": " +
         slot_kind_name(plan.slots[i].kind) +
         ", elems <= " + plan.slots[i].elems.to_text();
    std::string regs;
    for (std::size_t r = 0; r < plan.reg_slot.size(); ++r) {
      if (plan.reg_slot[r] == static_cast<std::int32_t>(i)) {
        regs += (regs.empty() ? "" : ",") + ("r" + std::to_string(r));
      }
    }
    if (!regs.empty()) s += "  <- " + regs;
    s += "\n";
  }
  return s;
}

}  // namespace proteus::analysis
