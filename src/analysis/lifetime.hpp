// lifetime.hpp — static buffer-lifetime and memory-plan analysis over
// VCODE bytecode.
//
// The paper's flat vector operations make buffer lifetimes statically
// decidable: every VCODE register has a def / last-use interval in the
// instruction CFG, and the segment-descriptor representation gives each
// flat buffer a size that is an affine function of the input scale. This
// pass combines
//
//   * an interprocedural backward liveness / last-use dataflow over the
//     same instruction-level CFG the bytecode verifier (vm/verify.cpp)
//     walks for its must-define analysis, and
//   * a forward symbolic size propagation in an affine domain
//     c0 + c1*N (N = total leaf scalars of the function's inputs), with
//     widening at join points and call-summary composition,
//
// into a per-function MemoryPlan:
//
//   * deaths[pc]       — registers whose value is dead after pc; the VM's
//                        planned path clears them so buffers return to the
//                        evaluation arena at their last use,
//   * register→slot    — a greedy interval coloring of flat-vector
//                        registers into arena slots with size classes,
//   * peak_bytes       — a static peak-resident-bytes bound for one call
//                        (admission control: docs/SERVING.md),
//   * static_allocs    — how many instructions of the function allocate a
//                        fresh buffer,
//
// plus M3xx warnings for wasteful patterns the optimizer missed (dead
// stores, reduce-only materializations, redundant copies). The plan is
// serialized into PVCM images (vm/module_io.*, B217 consistency check),
// rendered by disasm and `proteusc --analyze=memory`, and consumed by the
// VM's plan-backed arena (vl/arena.hpp). See docs/ANALYSIS.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "kernels/vvalue.hpp"
#include "vm/bytecode.hpp"

namespace proteus::analysis {

/// Affine symbolic byte/element bound c0 + c1*N, where N is the total
/// number of leaf scalars across the function's arguments. `unbounded`
/// is the domain's top (recursion, data-dependent sizes, descriptor
/// surgery the domain cannot track). Arithmetic saturates at 2^64-1.
struct SymBound {
  std::uint64_t c0 = 0;
  std::uint64_t c1 = 0;
  bool unbounded = false;

  static SymBound konst(std::uint64_t c) { return {c, 0, false}; }
  static SymBound linear(std::uint64_t c0, std::uint64_t c1) {
    return {c0, c1, false};
  }
  static SymBound top() { return {0, 0, true}; }

  [[nodiscard]] bool is_top() const { return unbounded; }

  /// Saturating pointwise sum / coefficient-wise max (the domain join).
  [[nodiscard]] SymBound plus(const SymBound& o) const;
  [[nodiscard]] SymBound max(const SymBound& o) const;
  /// Saturating scale by a constant factor.
  [[nodiscard]] SymBound times(std::uint64_t k) const;
  /// Substitutes N := `inner` (interprocedural summary composition):
  /// (c0 + c1*N) ∘ inner = c0 + c1*inner.c0 + (c1*inner.c1)*N.
  [[nodiscard]] SymBound compose(const SymBound& inner) const;
  /// Evaluates at a concrete input scale; 2^64-1 when unbounded.
  [[nodiscard]] std::uint64_t eval(std::uint64_t n) const;

  /// "512", "64 + 8*N", or "unbounded".
  [[nodiscard]] std::string to_text() const;

  bool operator==(const SymBound&) const = default;
};

/// Element kind a plan slot holds (the three CVL scalar carriers).
enum class SlotKind : std::uint8_t { kInt, kReal, kBool, kUnknown };

[[nodiscard]] const char* slot_kind_name(SlotKind k);

/// One arena slot: the registers colored onto it all hold flat vectors of
/// this kind, never live simultaneously, with `elems` bounding the element
/// count of any buffer the slot ever holds.
struct SlotPlan {
  SlotKind kind = SlotKind::kUnknown;
  SymBound elems;
  bool operator==(const SlotPlan&) const = default;
};

/// The memory plan of one compiled function (parallel to its code).
struct FunctionPlan {
  /// CSR layout over pcs (death_off has code.size()+1 entries): the
  /// registers in death_regs[death_off[pc], death_off[pc+1]) hold values
  /// that are dead once pc's instruction has read its operands. The VM's
  /// planned path resets them so sole-owner buffers recycle immediately.
  std::vector<std::uint32_t> death_off;
  std::vector<std::uint16_t> death_regs;
  /// Register -> slot index, -1 for scalar / untracked registers.
  std::vector<std::int32_t> reg_slot;
  std::vector<SlotPlan> slots;
  /// Static peak-resident bound for one call of this function, covering
  /// live buffers, the in-flight allocation, callee peaks, and the
  /// evaluation arena's pooled (dead but recyclable) buffers.
  SymBound peak_bytes;
  /// Instructions of this function that allocate a fresh buffer.
  std::uint32_t static_allocs = 0;

  bool operator==(const FunctionPlan&) const = default;
};

/// The module-wide plan artifact: one FunctionPlan per Module function.
struct MemoryPlan {
  std::vector<FunctionPlan> functions;
  bool operator==(const MemoryPlan&) const = default;
};

/// plan_module's result: the plan plus M3xx wasteful-pattern warnings
/// (never errors — a plan always exists for a verified module).
struct PlanResult {
  MemoryPlan plan;
  Report report;
};

/// Computes the memory plan of a module. The module must be structurally
/// sound (vm::verify_module passes): the pass indexes operand pools and
/// register files unguarded, exactly like the verifier's dataflow.
/// Deterministic: equal modules produce equal plans (the B217 load-time
/// consistency check in vm/module_io.cpp depends on this).
[[nodiscard]] PlanResult plan_module(const vm::Module& m);

/// Total leaf scalars across an argument list — the concrete N a
/// function's symbolic bounds are expressed over.
[[nodiscard]] std::uint64_t input_scale(
    const std::vector<kernels::VValue>& args);

/// Renders one function's plan as the disassembler's summary block
/// (slot table, peak bound, static allocation count).
[[nodiscard]] std::string plan_to_text(const FunctionPlan& plan);

}  // namespace proteus::analysis
