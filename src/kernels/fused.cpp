#include "kernels/fused.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>

#include "rt/governor.hpp"
#include "vl/kernel.hpp"
#include "vl/vl.hpp"

namespace proteus::kernels {

using lang::Prim;
using vl::Bool;
using vl::BoolVec;
using vl::Int;
using vl::IntVec;
using vl::Real;
using vl::RealVec;
using vl::Size;

bool fusible_prim(Prim p) {
  return static_cast<int>(p) <= static_cast<int>(Prim::kSqrt);
}

std::size_t fused_prim_count(const FusedExpr& e) {
  std::size_t count = 0;
  for (const MicroOp& mo : e.nodes) {
    if (mo.kind == MicroOp::Kind::kPrim) count += 1;
  }
  return count;
}

namespace {

[[noreturn]] void eval_fail(const std::string& msg) { throw EvalError(msg); }

/// Scalar kinds flowing through a chain; kOther marks values the unfused
/// kernels would reject at dispatch (tuples, nested frames, broadcast
/// aggregates) so the same "no depth-1 ... kernel" diagnostic fires.
enum class K : std::uint8_t { kInt, kReal, kBool, kOther };

constexpr Size kBlock = 2048;

constexpr std::size_t elem_size(K k) {
  return k == K::kBool ? sizeof(Bool) : sizeof(Int);
}

/// The typed per-lane kernels, one per (prim, operand-kind) pair the
/// unfused ew_unary/ew_binary tables accept.
enum class Kern : std::uint8_t {
  kAddI, kSubI, kMulI, kDivI, kModI, kMinI, kMaxI,
  kEqI, kNeI, kLtI, kLeI, kGtI, kGeI,
  kAddR, kSubR, kMulR, kDivR, kMinR, kMaxR,
  kEqR, kNeR, kLtR, kLeR, kGtR, kGeR,
  kAndB, kOrB, kEqB, kNeB,
  kNegI, kNegR, kToReal, kToInt, kSqrtR, kNotB,
};

struct KernSel {
  Kern kern{};
  K out = K::kOther;
  const char* len_name = nullptr;  ///< vl kernel name for the length check
  bool two_records = false;        ///< Bool eq = not(xor): two vl records
};

bool select_binary(Prim p, K ka, K kb, KernSel& sel) {
  if (ka == K::kInt && kb == K::kInt) {
    switch (p) {
      case Prim::kAdd: sel = {Kern::kAddI, K::kInt, "add", false}; return true;
      case Prim::kSub: sel = {Kern::kSubI, K::kInt, "sub", false}; return true;
      case Prim::kMul: sel = {Kern::kMulI, K::kInt, "mul", false}; return true;
      case Prim::kDiv: sel = {Kern::kDivI, K::kInt, "div", false}; return true;
      case Prim::kMod: sel = {Kern::kModI, K::kInt, "mod", false}; return true;
      case Prim::kMin: sel = {Kern::kMinI, K::kInt, "min", false}; return true;
      case Prim::kMax: sel = {Kern::kMaxI, K::kInt, "max", false}; return true;
      case Prim::kEq: sel = {Kern::kEqI, K::kBool, "eq", false}; return true;
      case Prim::kNe: sel = {Kern::kNeI, K::kBool, "ne", false}; return true;
      case Prim::kLt: sel = {Kern::kLtI, K::kBool, "lt", false}; return true;
      case Prim::kLe: sel = {Kern::kLeI, K::kBool, "le", false}; return true;
      case Prim::kGt: sel = {Kern::kGtI, K::kBool, "gt", false}; return true;
      case Prim::kGe: sel = {Kern::kGeI, K::kBool, "ge", false}; return true;
      default: return false;
    }
  }
  if (ka == K::kReal && kb == K::kReal) {
    switch (p) {
      case Prim::kAdd: sel = {Kern::kAddR, K::kReal, "add", false}; return true;
      case Prim::kSub: sel = {Kern::kSubR, K::kReal, "sub", false}; return true;
      case Prim::kMul: sel = {Kern::kMulR, K::kReal, "mul", false}; return true;
      case Prim::kDiv: sel = {Kern::kDivR, K::kReal, "div", false}; return true;
      case Prim::kMin: sel = {Kern::kMinR, K::kReal, "min", false}; return true;
      case Prim::kMax: sel = {Kern::kMaxR, K::kReal, "max", false}; return true;
      case Prim::kEq: sel = {Kern::kEqR, K::kBool, "eq", false}; return true;
      case Prim::kNe: sel = {Kern::kNeR, K::kBool, "ne", false}; return true;
      case Prim::kLt: sel = {Kern::kLtR, K::kBool, "lt", false}; return true;
      case Prim::kLe: sel = {Kern::kLeR, K::kBool, "le", false}; return true;
      case Prim::kGt: sel = {Kern::kGtR, K::kBool, "gt", false}; return true;
      case Prim::kGe: sel = {Kern::kGeR, K::kBool, "ge", false}; return true;
      default: return false;
    }
  }
  if (ka == K::kBool && kb == K::kBool) {
    switch (p) {
      case Prim::kAnd: sel = {Kern::kAndB, K::kBool, "and", false}; return true;
      case Prim::kOr: sel = {Kern::kOrB, K::kBool, "or", false}; return true;
      // Unfused Bool eq/ne route through logical_xor (length-checked as
      // "xor"); eq adds the logical_not pass on top.
      case Prim::kEq: sel = {Kern::kEqB, K::kBool, "xor", true}; return true;
      case Prim::kNe: sel = {Kern::kNeB, K::kBool, "xor", false}; return true;
      default: return false;
    }
  }
  return false;
}

bool select_unary(Prim p, K ka, KernSel& sel) {
  switch (p) {
    case Prim::kNeg:
      if (ka == K::kInt) { sel = {Kern::kNegI, K::kInt, nullptr, false}; return true; }
      if (ka == K::kReal) { sel = {Kern::kNegR, K::kReal, nullptr, false}; return true; }
      return false;
    case Prim::kToReal:
      if (ka == K::kInt) { sel = {Kern::kToReal, K::kReal, nullptr, false}; return true; }
      return false;
    case Prim::kToInt:
      if (ka == K::kReal) { sel = {Kern::kToInt, K::kInt, nullptr, false}; return true; }
      return false;
    case Prim::kSqrt:
      if (ka == K::kReal) { sel = {Kern::kSqrtR, K::kReal, nullptr, false}; return true; }
      return false;
    case Prim::kNot:
      if (ka == K::kBool) { sel = {Kern::kNotB, K::kBool, nullptr, false}; return true; }
      return false;
    default:
      return false;
  }
}

/// How a kernel operand is addressed inside a block.
struct OpRef {
  enum class Tag : std::uint8_t { kFrame, kSplat, kScratch };
  Tag tag = Tag::kFrame;
  const void* base = nullptr;  ///< kFrame: leaf data; kSplat: splat buffer
  std::size_t off = 0;         ///< kScratch: byte offset into the arena
  std::size_t esize = 0;       ///< kFrame: element size for start scaling
};

struct NodePlan {
  Kern kern{};
  bool binary = false;
  bool is_root = false;
  OpRef a, b;
  std::size_t dst_off = 0;  ///< scratch offset (non-root)
};

struct NodeInfo {
  K kind = K::kOther;
  Size len = 0;
  bool is_vec = false;         ///< vector-valued (seq leaf or interior)
  bool resolved = false;       ///< leaf: as_seq / scalar payload resolved
  const void* data = nullptr;  ///< vector leaf data base
  Int iv = 0;
  Real rv = 0;
  Bool bv = 0;
};

template <typename T, typename R, typename F>
inline void loop2(const void* a, const void* b, void* d, Size len, F&& f) {
  const T* x = static_cast<const T*>(a);
  const T* y = static_cast<const T*>(b);
  R* r = static_cast<R*>(d);
  for (Size i = 0; i < len; ++i) r[i] = f(x[i], y[i]);
}

template <typename T, typename R, typename F>
inline void loop1(const void* a, void* d, Size len, F&& f) {
  const T* x = static_cast<const T*>(a);
  R* r = static_cast<R*>(d);
  for (Size i = 0; i < len; ++i) r[i] = f(x[i]);
}

void run_kern(Kern k, const void* a, const void* b, void* d, Size len) {
  using vl::detail::checked_div;
  using vl::detail::checked_mod;
  switch (k) {
    case Kern::kAddI: loop2<Int, Int>(a, b, d, len, [](Int x, Int y) { return x + y; }); return;
    case Kern::kSubI: loop2<Int, Int>(a, b, d, len, [](Int x, Int y) { return x - y; }); return;
    case Kern::kMulI: loop2<Int, Int>(a, b, d, len, [](Int x, Int y) { return x * y; }); return;
    case Kern::kDivI: loop2<Int, Int>(a, b, d, len, [](Int x, Int y) { return checked_div(x, y); }); return;
    case Kern::kModI: loop2<Int, Int>(a, b, d, len, [](Int x, Int y) { return checked_mod(x, y); }); return;
    case Kern::kMinI: loop2<Int, Int>(a, b, d, len, [](Int x, Int y) { return x < y ? x : y; }); return;
    case Kern::kMaxI: loop2<Int, Int>(a, b, d, len, [](Int x, Int y) { return x < y ? y : x; }); return;
    case Kern::kEqI: loop2<Int, Bool>(a, b, d, len, [](Int x, Int y) { return Bool(x == y ? 1 : 0); }); return;
    case Kern::kNeI: loop2<Int, Bool>(a, b, d, len, [](Int x, Int y) { return Bool(x != y ? 1 : 0); }); return;
    case Kern::kLtI: loop2<Int, Bool>(a, b, d, len, [](Int x, Int y) { return Bool(x < y ? 1 : 0); }); return;
    case Kern::kLeI: loop2<Int, Bool>(a, b, d, len, [](Int x, Int y) { return Bool(x <= y ? 1 : 0); }); return;
    case Kern::kGtI: loop2<Int, Bool>(a, b, d, len, [](Int x, Int y) { return Bool(x > y ? 1 : 0); }); return;
    case Kern::kGeI: loop2<Int, Bool>(a, b, d, len, [](Int x, Int y) { return Bool(x >= y ? 1 : 0); }); return;
    case Kern::kAddR: loop2<Real, Real>(a, b, d, len, [](Real x, Real y) { return x + y; }); return;
    case Kern::kSubR: loop2<Real, Real>(a, b, d, len, [](Real x, Real y) { return x - y; }); return;
    case Kern::kMulR: loop2<Real, Real>(a, b, d, len, [](Real x, Real y) { return x * y; }); return;
    case Kern::kDivR: loop2<Real, Real>(a, b, d, len, [](Real x, Real y) { return x / y; }); return;
    case Kern::kMinR: loop2<Real, Real>(a, b, d, len, [](Real x, Real y) { return x < y ? x : y; }); return;
    case Kern::kMaxR: loop2<Real, Real>(a, b, d, len, [](Real x, Real y) { return x < y ? y : x; }); return;
    case Kern::kEqR: loop2<Real, Bool>(a, b, d, len, [](Real x, Real y) { return Bool(x == y ? 1 : 0); }); return;
    case Kern::kNeR: loop2<Real, Bool>(a, b, d, len, [](Real x, Real y) { return Bool(x != y ? 1 : 0); }); return;
    case Kern::kLtR: loop2<Real, Bool>(a, b, d, len, [](Real x, Real y) { return Bool(x < y ? 1 : 0); }); return;
    case Kern::kLeR: loop2<Real, Bool>(a, b, d, len, [](Real x, Real y) { return Bool(x <= y ? 1 : 0); }); return;
    case Kern::kGtR: loop2<Real, Bool>(a, b, d, len, [](Real x, Real y) { return Bool(x > y ? 1 : 0); }); return;
    case Kern::kGeR: loop2<Real, Bool>(a, b, d, len, [](Real x, Real y) { return Bool(x >= y ? 1 : 0); }); return;
    case Kern::kAndB: loop2<Bool, Bool>(a, b, d, len, [](Bool x, Bool y) { return Bool((x && y) ? 1 : 0); }); return;
    case Kern::kOrB: loop2<Bool, Bool>(a, b, d, len, [](Bool x, Bool y) { return Bool((x || y) ? 1 : 0); }); return;
    case Kern::kEqB: loop2<Bool, Bool>(a, b, d, len, [](Bool x, Bool y) { return Bool((!x != !y) ? 0 : 1); }); return;
    case Kern::kNeB: loop2<Bool, Bool>(a, b, d, len, [](Bool x, Bool y) { return Bool((!x != !y) ? 1 : 0); }); return;
    case Kern::kNegI: loop1<Int, Int>(a, d, len, [](Int x) { return -x; }); return;
    case Kern::kNegR: loop1<Real, Real>(a, d, len, [](Real x) { return -x; }); return;
    case Kern::kToReal: loop1<Int, Real>(a, d, len, [](Int x) { return static_cast<Real>(x); }); return;
    case Kern::kToInt: loop1<Real, Int>(a, d, len, [](Real x) { return static_cast<Int>(x); }); return;
    case Kern::kSqrtR: loop1<Real, Real>(a, d, len, [](Real x) { return std::sqrt(x); }); return;
    case Kern::kNotB: loop1<Bool, Bool>(a, d, len, [](Bool x) { return Bool(x ? 0 : 1); }); return;
  }
}

[[noreturn]] void corrupt() {
  eval_fail("fused: malformed micro-expression (verifier bypassed?)");
}

}  // namespace

VValue eval_fused(const FusedExpr& e, std::vector<VValue> inputs) {
  const std::size_t n_nodes = e.nodes.size();
  if (n_nodes == 0 || n_nodes > kMaxFusedNodes ||
      inputs.size() != e.n_inputs() ||
      e.nodes.back().kind != MicroOp::Kind::kPrim) {
    corrupt();
  }

  // --- analysis: kinds, frame lengths, kernels, cost-model emulation ----
  //
  // Walks interior nodes in post-order (= original instruction order) and
  // replays, per node, exactly what apply_prim1 would have done for the
  // unfused instruction: frame length from the first lifted operand,
  // broadcast replication (a vl dist record each), kernel dispatch by
  // operand kind, the vl length check, and the kernel's own work record.
  // Every diagnostic string matches the unfused path's.
  std::vector<NodeInfo> info(n_nodes);
  std::vector<NodePlan> plan(n_nodes);

  const auto resolve_leaf = [&](std::size_t c) -> NodeInfo& {
    NodeInfo& ni = info[c];
    if (ni.resolved) return ni;
    const MicroOp& mo = e.nodes[c];
    const std::uint8_t flags = e.input_flags[mo.input];
    const VValue& v = inputs[mo.input];
    if ((flags & kFusedBroadcast) != 0) {
      ni.is_vec = false;
      if (v.is_int()) {
        ni.kind = K::kInt;
        ni.iv = v.as_int();
      } else if (v.is_real()) {
        ni.kind = K::kReal;
        ni.rv = v.as_real();
      } else if (v.is_bool()) {
        ni.kind = K::kBool;
        ni.bv = v.as_bool() ? 1 : 0;
      } else if (v.is_fun()) {
        eval_fail("function values cannot be replicated into frames");
      } else {
        ni.kind = K::kOther;  // seq/tuple broadcast: kernel dispatch fails
      }
    } else {
      ni.is_vec = true;
      const Array& arr = v.as_seq();  // may throw, as apply_prim1's scan does
      ni.len = arr.length();
      switch (arr.kind()) {
        case Array::Kind::kInt:
          ni.kind = K::kInt;
          ni.data = arr.int_values().data();
          break;
        case Array::Kind::kReal:
          ni.kind = K::kReal;
          ni.data = arr.real_values().data();
          break;
        case Array::Kind::kBool:
          ni.kind = K::kBool;
          ni.data = arr.bool_values().data();
          break;
        default:
          ni.kind = K::kOther;  // tuple/nested frame: kernel dispatch fails
          break;
      }
    }
    ni.resolved = true;
    return ni;
  };

  vl::VectorStats& st = vl::stats();
  for (std::size_t k = 0; k < n_nodes; ++k) {
    const MicroOp& mo = e.nodes[k];
    if (mo.kind == MicroOp::Kind::kInput) {
      if (mo.input >= inputs.size()) corrupt();
      continue;
    }
    if (!fusible_prim(mo.prim)) corrupt();
    const bool binary = lang::prim_arity(mo.prim) == 2;
    const std::size_t ca = mo.a;
    const std::size_t cb = mo.b;
    if (ca >= k || (binary && cb >= k)) corrupt();
    const auto is_vec_child = [&](std::size_t c) {
      return e.nodes[c].kind == MicroOp::Kind::kPrim ||
             (e.input_flags[e.nodes[c].input] & kFusedBroadcast) == 0;
    };
    // Frame length from the first lifted (vector) operand, in order.
    std::size_t first_vec = n_nodes;
    if (is_vec_child(ca)) {
      first_vec = ca;
    } else if (binary && is_vec_child(cb)) {
      first_vec = cb;
    }
    PROTEUS_REQUIRE(EvalError, first_vec < n_nodes,
                    "depth-1 extension applied with no frame argument");
    if (e.nodes[first_vec].kind == MicroOp::Kind::kInput) {
      (void)resolve_leaf(first_vec);
    }
    const Size n_frame = info[first_vec].len;
    // Replicate broadcast operands (a vl dist record each), resolve the
    // rest, in operand order.
    const std::size_t n_children = binary ? 2 : 1;
    for (std::size_t ci = 0; ci < n_children; ++ci) {
      const std::size_t c = ci == 0 ? ca : cb;
      if (e.nodes[c].kind == MicroOp::Kind::kPrim) continue;
      const NodeInfo& ni = resolve_leaf(c);
      if (!ni.is_vec && ni.kind != K::kOther) st.record(n_frame);
    }
    // Kernel dispatch by operand kind, then the vl length check.
    KernSel sel;
    if (binary) {
      if (!select_binary(mo.prim, info[ca].kind, info[cb].kind, sel)) {
        eval_fail(std::string("no depth-1 binary kernel for '") +
                  lang::prim_name(mo.prim) + "'");
      }
      const Size la = info[ca].is_vec ? info[ca].len : n_frame;
      const Size lb = info[cb].is_vec ? info[cb].len : n_frame;
      PROTEUS_REQUIRE(VectorError, la == lb,
                      std::string(sel.len_name) +
                          ": operand lengths differ (" + std::to_string(la) +
                          " vs " + std::to_string(lb) + ")");
      st.record(la);
      if (sel.two_records) st.record(la);
      info[k] = NodeInfo{};
      info[k].kind = sel.out;
      info[k].len = la;
    } else {
      if (!select_unary(mo.prim, info[ca].kind, sel)) {
        eval_fail(std::string("no depth-1 unary kernel for '") +
                  lang::prim_name(mo.prim) + "'");
      }
      const Size la = info[ca].is_vec ? info[ca].len : n_frame;
      st.record(la);
      info[k] = NodeInfo{};
      info[k].kind = sel.out;
      info[k].len = la;
    }
    info[k].is_vec = true;
    info[k].resolved = true;
    plan[k].kern = sel.kern;
    plan[k].binary = binary;
    plan[k].is_root = k == n_nodes - 1;
  }

  const std::size_t root = n_nodes - 1;
  const K out_kind = info[root].kind;
  const Size n = info[root].len;

  // --- output buffer: reuse a dying input in place when we own it -------
  IntVec out_i;
  RealVec out_r;
  BoolVec out_b;
  bool stolen = false;
  for (std::size_t s = 0; s < inputs.size() && !stolen; ++s) {
    if ((e.input_flags[s] & kFusedLastUse) == 0) continue;
    if ((e.input_flags[s] & kFusedBroadcast) != 0) continue;
    if (!inputs[s].is_seq()) continue;
    const Array& arr = inputs[s].as_seq();
    if (arr.length() != n) continue;
    Array owned = std::move(inputs[s]).take_seq();
    switch (out_kind) {
      case K::kInt: stolen = owned.steal_values(out_i); break;
      case K::kReal: stolen = owned.steal_values(out_r); break;
      case K::kBool: stolen = owned.steal_values(out_b); break;
      case K::kOther: break;
    }
    // Leaf data pointers resolved above stay valid either way: a vector
    // move keeps the heap buffer, and a failed steal puts the spine back.
    if (!stolen) inputs[s] = VValue::seq(std::move(owned));
  }
  if (!stolen) {
    bool recycled = false;
    switch (out_kind) {
      case K::kInt: out_i = IntVec(n); recycled = out_i.recycled(); break;
      case K::kReal: out_r = RealVec(n); recycled = out_r.recycled(); break;
      case K::kBool: out_b = BoolVec(n); recycled = out_b.recycled(); break;
      case K::kOther: corrupt();
    }
    st.record_alloc(recycled);  // the chain's single full-length allocation
  }
  void* out_base = nullptr;
  switch (out_kind) {
    case K::kInt: out_base = out_i.data(); break;
    case K::kReal: out_base = out_r.data(); break;
    case K::kBool: out_base = out_b.data(); break;
    case K::kOther: corrupt();
  }
  const std::size_t out_esize = elem_size(out_kind);

  // --- block plan: scratch offsets, splat buffers, operand refs ---------
  std::size_t arena_bytes = 0;
  std::vector<std::vector<std::byte>> splats(n_nodes);
  std::vector<std::size_t> scratch_off(n_nodes, 0);
  const Size block = std::min<Size>(kBlock, n);
  for (std::size_t k = 0; k < n_nodes; ++k) {
    const MicroOp& mo = e.nodes[k];
    if (mo.kind == MicroOp::Kind::kPrim) {
      if (k != root) {
        scratch_off[k] = arena_bytes;
        arena_bytes +=
            (static_cast<std::size_t>(block) * elem_size(info[k].kind) + 7) &
            ~std::size_t{7};
      }
      continue;
    }
    if (!info[k].resolved || info[k].is_vec || block == 0) continue;
    // Broadcast scalar: fill one block-sized splat so every kernel loop
    // reads uniform pointers. O(block) scratch, not a frame allocation.
    auto& buf = splats[k];
    buf.resize(static_cast<std::size_t>(block) * elem_size(info[k].kind));
    switch (info[k].kind) {
      case K::kInt: {
        Int* p = reinterpret_cast<Int*>(buf.data());
        std::fill(p, p + block, info[k].iv);
        break;
      }
      case K::kReal: {
        Real* p = reinterpret_cast<Real*>(buf.data());
        std::fill(p, p + block, info[k].rv);
        break;
      }
      case K::kBool: {
        Bool* p = reinterpret_cast<Bool*>(buf.data());
        std::fill(p, p + block, info[k].bv);
        break;
      }
      case K::kOther: break;
    }
  }

  std::vector<std::size_t> interior;
  interior.reserve(n_nodes);
  const auto make_ref = [&](std::size_t c) {
    OpRef r;
    if (e.nodes[c].kind == MicroOp::Kind::kPrim) {
      r.tag = OpRef::Tag::kScratch;
      r.off = scratch_off[c];
    } else if (info[c].is_vec) {
      r.tag = OpRef::Tag::kFrame;
      r.base = info[c].data;
      r.esize = elem_size(info[c].kind);
    } else {
      r.tag = OpRef::Tag::kSplat;
      r.base = splats[c].data();
    }
    return r;
  };
  for (std::size_t k = 0; k < n_nodes; ++k) {
    if (e.nodes[k].kind != MicroOp::Kind::kPrim) continue;
    plan[k].a = make_ref(e.nodes[k].a);
    if (plan[k].binary) plan[k].b = make_ref(e.nodes[k].b);
    interior.push_back(k);
  }

  // --- the single pass --------------------------------------------------
  const auto resolve = [](const OpRef& r, std::byte* arena,
                          Size start) -> const void* {
    switch (r.tag) {
      case OpRef::Tag::kFrame:
        return static_cast<const std::byte*>(r.base) +
               static_cast<std::size_t>(start) * r.esize;
      case OpRef::Tag::kSplat:
        return r.base;
      case OpRef::Tag::kScratch:
        return arena + r.off;
    }
    return nullptr;
  };
  const auto run_block = [&](Size start, std::byte* arena) {
    const Size len = std::min<Size>(kBlock, n - start);
    for (const std::size_t k : interior) {
      const NodePlan& np = plan[k];
      const void* pa = resolve(np.a, arena, start);
      const void* pb = np.binary ? resolve(np.b, arena, start) : nullptr;
      void* pd = np.is_root
                     ? static_cast<void*>(
                           static_cast<std::byte*>(out_base) +
                           static_cast<std::size_t>(start) * out_esize)
                     : static_cast<void*>(arena + np.dst_off);
      run_kern(np.kern, pa, pb, pd, len);
    }
  };
  for (const std::size_t k : interior) plan[k].dst_off = scratch_off[k];

  const Size n_blocks = n == 0 ? 0 : (n + kBlock - 1) / kBlock;
  // Governor check points: throwing across an OpenMP region would
  // terminate the process, so inside the parallel loop threads only
  // *observe* a deferred trip and skip their remaining blocks; the
  // serial polls before/after the region raise the trap.
  rt::poll("fused");
#ifdef _OPENMP
  if (vl::detail::use_threads(n)) {
#pragma omp parallel
    {
      std::vector<std::byte> arena(arena_bytes);
#pragma omp for schedule(static)
      for (Size b = 0; b < n_blocks; ++b) {
        if (!rt::tripped()) run_block(b * kBlock, arena.data());
      }
    }
  } else
#endif
  {
    std::vector<std::byte> arena(arena_bytes);
    for (Size b = 0; b < n_blocks; ++b) {
      rt::poll("fused");
      run_block(b * kBlock, arena.data());
    }
  }
  rt::poll("fused");

  switch (out_kind) {
    case K::kInt: return VValue::seq(Array::ints(std::move(out_i)));
    case K::kReal: return VValue::seq(Array::reals(std::move(out_r)));
    case K::kBool: return VValue::seq(Array::bools(std::move(out_b)));
    case K::kOther: break;
  }
  corrupt();
}

}  // namespace proteus::kernels
