// vvalue.hpp — runtime values of the vector-model engines (the tree
// executor of exec/ and the bytecode VM of vm/).
//
// Where the reference interpreter boxes every element, these engines keep
// each sequence in the flat vector representation of Section 4.1: a VValue
// sequence holds one seq::Array describing all its elements at once. The
// depth-1 primitive kernels of prims.hpp operate on these arrays with vl
// primitives — one vector operation per program operation, which is the
// essence of the vector model.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "interp/value.hpp"
#include "lang/types.hpp"
#include "seq/seq.hpp"

namespace proteus::kernels {

using seq::Array;
using vl::Int;
using vl::Real;
using vl::Size;

/// A vector-model runtime value.
class VValue {
 public:
  VValue() : node_(Int{0}) {}

  static VValue ints(Int v) { return VValue(Node{v}); }
  static VValue reals(Real v) { return VValue(Node{v}); }
  static VValue bools(bool v) { return VValue(Node{v}); }
  static VValue seq(Array elements) {
    return VValue(Node{SeqRep{std::move(elements)}});
  }
  static VValue tuple(std::vector<VValue> components) {
    return VValue(Node{TupleRep{std::move(components)}});
  }
  static VValue fun(std::string name) {
    return VValue(Node{FunRep{std::move(name)}});
  }

  [[nodiscard]] bool is_int() const {
    return std::holds_alternative<Int>(node_);
  }
  [[nodiscard]] bool is_real() const {
    return std::holds_alternative<Real>(node_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(node_);
  }
  [[nodiscard]] bool is_seq() const {
    return std::holds_alternative<SeqRep>(node_);
  }
  [[nodiscard]] bool is_tuple() const {
    return std::holds_alternative<TupleRep>(node_);
  }
  [[nodiscard]] bool is_fun() const {
    return std::holds_alternative<FunRep>(node_);
  }

  [[nodiscard]] Int as_int() const;
  [[nodiscard]] Real as_real() const;
  [[nodiscard]] bool as_bool() const;
  /// The element array of a sequence value.
  [[nodiscard]] const Array& as_seq() const;
  /// Destructively takes the element array out of a sequence value; the
  /// fused evaluator uses this to consume a dying register's buffer.
  [[nodiscard]] Array take_seq() &&;
  [[nodiscard]] const std::vector<VValue>& as_tuple() const;
  [[nodiscard]] const std::string& fun_name() const;

 private:
  struct SeqRep {
    Array elements;
  };
  struct TupleRep {
    std::vector<VValue> components;
  };
  struct FunRep {
    std::string name;
  };
  using Node = std::variant<Int, Real, bool, SeqRep, TupleRep, FunRep>;

  explicit VValue(Node node) : node_(std::move(node)) {}

  Node node_;
};

/// The empty element array for elements of static type `elem` (used by
/// empty literals and rule R2d's empty_frame).
[[nodiscard]] Array empty_array_of(const lang::TypePtr& elem);

/// n copies of the depth-0 value `v` as an element array (replication of a
/// broadcast argument; Section 3's depth-0 -> depth-d conversion at the
/// representation level).
[[nodiscard]] Array materialize(const VValue& v, Size n);

/// Element i of `a`, unboxed to a depth-0 VValue.
[[nodiscard]] VValue element_value(const Array& a, Size i);

// --- conversions to/from the interpreter's boxed values -----------------------

/// Boxed -> vector-model, guided by the value's static type.
[[nodiscard]] VValue from_boxed(const interp::Value& v,
                                const lang::TypePtr& type);

/// Vector-model -> boxed, guided by the value's static type.
[[nodiscard]] interp::Value to_boxed(const VValue& v,
                                     const lang::TypePtr& type);

}  // namespace proteus::kernels
