#include "kernels/prims.hpp"

#include <cmath>
#include <functional>
#include <utility>

#include "rt/governor.hpp"
#include "vl/vl.hpp"

namespace proteus::kernels {

using lang::Prim;
using vl::Bool;
using vl::BoolVec;
using vl::IntVec;
using vl::RealVec;

namespace {

[[noreturn]] void eval_fail(const std::string& msg) { throw EvalError(msg); }

Int checked_index0(Int i, Size n) {
  if (i < 1 || i > n) {
    eval_fail("seq_index: index " + std::to_string(i) +
              " out of range for sequence of length " + std::to_string(n));
  }
  return i - 1;
}

// --- depth-0 scalar primitives -------------------------------------------------

VValue scalar2(Prim op, const VValue& a, const VValue& b) {
  if (a.is_int() && b.is_int()) {
    Int x = a.as_int();
    Int y = b.as_int();
    switch (op) {
      case Prim::kAdd:
        return VValue::ints(x + y);
      case Prim::kSub:
        return VValue::ints(x - y);
      case Prim::kMul:
        return VValue::ints(x * y);
      case Prim::kDiv:
        if (y == 0) eval_fail("division by zero");
        return VValue::ints(x / y);
      case Prim::kMod:
        if (y == 0) eval_fail("mod by zero");
        return VValue::ints(x % y);
      case Prim::kMin:
        return VValue::ints(x < y ? x : y);
      case Prim::kMax:
        return VValue::ints(x < y ? y : x);
      case Prim::kEq:
        return VValue::bools(x == y);
      case Prim::kNe:
        return VValue::bools(x != y);
      case Prim::kLt:
        return VValue::bools(x < y);
      case Prim::kLe:
        return VValue::bools(x <= y);
      case Prim::kGt:
        return VValue::bools(x > y);
      case Prim::kGe:
        return VValue::bools(x >= y);
      default:
        break;
    }
  } else if (a.is_real() && b.is_real()) {
    Real x = a.as_real();
    Real y = b.as_real();
    switch (op) {
      case Prim::kAdd:
        return VValue::reals(x + y);
      case Prim::kSub:
        return VValue::reals(x - y);
      case Prim::kMul:
        return VValue::reals(x * y);
      case Prim::kDiv:
        return VValue::reals(x / y);
      case Prim::kMin:
        return VValue::reals(x < y ? x : y);
      case Prim::kMax:
        return VValue::reals(x < y ? y : x);
      case Prim::kEq:
        return VValue::bools(x == y);
      case Prim::kNe:
        return VValue::bools(x != y);
      case Prim::kLt:
        return VValue::bools(x < y);
      case Prim::kLe:
        return VValue::bools(x <= y);
      case Prim::kGt:
        return VValue::bools(x > y);
      case Prim::kGe:
        return VValue::bools(x >= y);
      default:
        break;
    }
  } else if (a.is_bool() && b.is_bool()) {
    switch (op) {
      case Prim::kAnd:
        return VValue::bools(a.as_bool() && b.as_bool());
      case Prim::kOr:
        return VValue::bools(a.as_bool() || b.as_bool());
      case Prim::kEq:
        return VValue::bools(a.as_bool() == b.as_bool());
      case Prim::kNe:
        return VValue::bools(a.as_bool() != b.as_bool());
      default:
        break;
    }
  }
  eval_fail(std::string("no scalar overload of '") + prim_name(op) + "'");
}

// --- depth-1 elementwise kernels ------------------------------------------------

Array ew_unary(Prim op, const Array& a) {
  switch (a.kind()) {
    case Array::Kind::kInt: {
      const IntVec& v = a.int_values();
      switch (op) {
        case Prim::kNeg:
          return Array::ints(vl::neg(v));
        case Prim::kToReal:
          return Array::reals(vl::to_real(v));
        default:
          break;
      }
      break;
    }
    case Array::Kind::kReal: {
      const RealVec& v = a.real_values();
      switch (op) {
        case Prim::kNeg:
          return Array::reals(vl::neg(v));
        case Prim::kToInt:
          return Array::ints(vl::to_int(v));
        case Prim::kSqrt:
          return Array::reals(vl::sqrt(v));
        default:
          break;
      }
      break;
    }
    case Array::Kind::kBool:
      if (op == Prim::kNot) {
        return Array::bools(vl::logical_not(a.bool_values()));
      }
      break;
    default:
      break;
  }
  eval_fail(std::string("no depth-1 unary kernel for '") + prim_name(op) +
            "'");
}

Array ew_binary(Prim op, const Array& a, const Array& b) {
  if (a.kind() == Array::Kind::kInt && b.kind() == Array::Kind::kInt) {
    const IntVec& x = a.int_values();
    const IntVec& y = b.int_values();
    switch (op) {
      case Prim::kAdd:
        return Array::ints(vl::add(x, y));
      case Prim::kSub:
        return Array::ints(vl::sub(x, y));
      case Prim::kMul:
        return Array::ints(vl::mul(x, y));
      case Prim::kDiv:
        return Array::ints(vl::div(x, y));
      case Prim::kMod:
        return Array::ints(vl::mod(x, y));
      case Prim::kMin:
        return Array::ints(vl::min(x, y));
      case Prim::kMax:
        return Array::ints(vl::max(x, y));
      case Prim::kEq:
        return Array::bools(vl::eq(x, y));
      case Prim::kNe:
        return Array::bools(vl::ne(x, y));
      case Prim::kLt:
        return Array::bools(vl::lt(x, y));
      case Prim::kLe:
        return Array::bools(vl::le(x, y));
      case Prim::kGt:
        return Array::bools(vl::gt(x, y));
      case Prim::kGe:
        return Array::bools(vl::ge(x, y));
      default:
        break;
    }
  } else if (a.kind() == Array::Kind::kReal &&
             b.kind() == Array::Kind::kReal) {
    const RealVec& x = a.real_values();
    const RealVec& y = b.real_values();
    switch (op) {
      case Prim::kAdd:
        return Array::reals(vl::add(x, y));
      case Prim::kSub:
        return Array::reals(vl::sub(x, y));
      case Prim::kMul:
        return Array::reals(vl::mul(x, y));
      case Prim::kDiv:
        return Array::reals(vl::div(x, y));
      case Prim::kMin:
        return Array::reals(vl::min(x, y));
      case Prim::kMax:
        return Array::reals(vl::max(x, y));
      case Prim::kEq:
        return Array::bools(vl::eq(x, y));
      case Prim::kNe:
        return Array::bools(vl::ne(x, y));
      case Prim::kLt:
        return Array::bools(vl::lt(x, y));
      case Prim::kLe:
        return Array::bools(vl::le(x, y));
      case Prim::kGt:
        return Array::bools(vl::gt(x, y));
      case Prim::kGe:
        return Array::bools(vl::ge(x, y));
      default:
        break;
    }
  } else if (a.kind() == Array::Kind::kBool &&
             b.kind() == Array::Kind::kBool) {
    const BoolVec& x = a.bool_values();
    const BoolVec& y = b.bool_values();
    switch (op) {
      case Prim::kAnd:
        return Array::bools(vl::logical_and(x, y));
      case Prim::kOr:
        return Array::bools(vl::logical_or(x, y));
      case Prim::kEq:
        return Array::bools(vl::logical_not(vl::logical_xor(x, y)));
      case Prim::kNe:
        return Array::bools(vl::logical_xor(x, y));
      default:
        break;
    }
  }
  eval_fail(std::string("no depth-1 binary kernel for '") + prim_name(op) +
            "'");
}

// --- depth-1 sequence kernels ---------------------------------------------------

/// Non-negative clamp of per-slot counts ([1..n] is empty when n < 1).
IntVec clamp_counts(const IntVec& counts) {
  BoolVec negative = vl::lt(counts, Int{0});
  return vl::select(negative, IntVec(counts.size(), Int{0}), counts);
}

void check_index_frame(const IntVec& idx, const IntVec& limits) {
  if (idx.empty()) return;
  BoolVec ok = vl::logical_and(vl::ge(idx, Int{1}), vl::le(idx, limits));
  if (!vl::all(ok)) {
    for (Size k = 0; k < idx.size(); ++k) {
      if (idx[k] < 1 || idx[k] > limits[k]) {
        eval_fail("seq_index: index " + std::to_string(idx[k]) +
                  " out of range for sequence of length " +
                  std::to_string(limits[k]));
      }
    }
  }
}

Array range1_1(const Array& ns) {
  const IntVec& raw = ns.int_values();
  IntVec lens = clamp_counts(raw);
  return Array::nested(std::move(lens), Array::ints(vl::seg_iota1(raw)));
}

Array range_1(const Array& lo, const Array& hi) {
  const IntVec& l = lo.int_values();
  const IntVec& h = hi.int_values();
  IntVec span = vl::add(vl::sub(h, l), Int{1});
  IntVec lens = clamp_counts(span);
  // value at 1-origin rank r within slot s is l[s] + r - 1
  IntVec ranks = vl::segment_ranks(lens);
  IntVec base = vl::seg_dist(l, lens);
  IntVec values = vl::sub(vl::add(base, ranks), Int{1});
  return Array::nested(std::move(lens), Array::ints(std::move(values)));
}

Array dist_1(const Array& values, const Array& counts) {
  IntVec lens = clamp_counts(counts.int_values());
  return Array::nested(lens, seq::seg_broadcast(values, lens));
}

Array seq_index_1_frame(const Array& s, const Array& idx) {
  const IntVec& lens = s.lengths();
  const IntVec& i = idx.int_values();
  vl::require_same_length(lens, i, "seq_index^1");
  check_index_frame(i, lens);
  IntVec offsets = vl::lengths_to_offsets(lens);
  IntVec positions = vl::add(offsets, vl::sub(i, Int{1}));
  return seq::gather(s.inner(), positions);
}

Array seq_index_1_shared(const Array& source, const Array& idx) {
  const IntVec& i = idx.int_values();
  IntVec limits(i.size(), source.length());
  check_index_frame(i, limits);
  return seq::gather(source, vl::sub(i, Int{1}));
}

/// seq_index_inner^1: per-slot gather from each slot's own row, without
/// replicating the rows (the generalized Section 4.5 optimization).
Array seq_index_inner_1(const Array& v, const Array& idx) {
  const IntVec& rows = v.lengths();
  const IntVec& per_slot = idx.lengths();
  vl::require_same_length(rows, per_slot, "seq_index_inner^1");
  const IntVec& i = idx.inner().int_values();
  IntVec ids = vl::segment_ids(per_slot);
  IntVec limits = vl::gather(rows, ids);
  check_index_frame(i, limits);
  IntVec base = vl::gather(vl::lengths_to_offsets(rows), ids);
  IntVec positions = vl::add(base, vl::sub(i, Int{1}));
  return Array::nested(per_slot, seq::gather(v.inner(), positions));
}

Array restrict_1(const Array& v, const Array& m) {
  PROTEUS_REQUIRE(EvalError, v.lengths() == m.lengths(),
                  "restrict^1: non-conformable frames");
  const BoolVec& mask = m.inner().bool_values();
  IntVec new_lens = vl::seg_pack_lengths(v.lengths(), mask);
  return Array::nested(std::move(new_lens), seq::pack(v.inner(), mask));
}

Array combine_1(const Array& m, const Array& t, const Array& f) {
  const BoolVec& mask = m.inner().bool_values();
  return Array::nested(m.lengths(), seq::combine(mask, t.inner(), f.inner()));
}

Array update_1(const Array& s, const Array& idx, const Array& x) {
  const IntVec& lens = s.lengths();
  const IntVec& i = idx.int_values();
  vl::require_same_length(lens, i, "update^1");
  check_index_frame(i, lens);
  IntVec offsets = vl::lengths_to_offsets(lens);
  IntVec targets = vl::add(offsets, vl::sub(i, Int{1}));
  const Size n_inner = s.inner().length();
  IntVec own = vl::iota(n_inner, 0);
  IntVec replacement = vl::iota(lens.size(), n_inner);
  IntVec map = vl::scatter(own, targets, replacement);
  return Array::nested(lens, seq::gather(seq::concat(s.inner(), x), map));
}

Array concat_1(const Array& a, const Array& b) {
  const IntVec& la = a.lengths();
  const IntVec& lb = b.lengths();
  vl::require_same_length(la, lb, "concat^1");
  IntVec out_lens = vl::add(la, lb);
  IntVec ids = vl::segment_ids(out_lens);
  IntVec ranks0 = vl::sub(vl::segment_ranks(out_lens), Int{1});
  IntVec la_of = vl::gather(la, ids);
  IntVec aoff = vl::gather(vl::lengths_to_offsets(la), ids);
  IntVec boff = vl::gather(vl::lengths_to_offsets(lb), ids);
  BoolVec in_a = vl::lt(ranks0, la_of);
  IntVec pos_a = vl::add(aoff, ranks0);
  IntVec pos_b = vl::add(vl::add(boff, vl::sub(ranks0, la_of)),
                         IntVec(ranks0.size(), a.inner().length()));
  IntVec pos = vl::select(in_a, pos_a, pos_b);
  return Array::nested(std::move(out_lens),
                       seq::gather(seq::concat(a.inner(), b.inner()), pos));
}

/// reverse^1: per-slot reversal (positions: mirror within each segment).
Array reverse_1(const Array& v) {
  const IntVec& lens = v.lengths();
  IntVec offsets = vl::lengths_to_offsets(lens);
  IntVec ids = vl::segment_ids(lens);
  IntVec ranks = vl::segment_ranks(lens);
  // element at 1-origin rank r of slot s reads offset[s] + len[s] - r
  IntVec pos = vl::sub(
      vl::add(vl::gather(offsets, ids), vl::gather(lens, ids)), ranks);
  return Array::nested(lens, seq::gather(v.inner(), pos));
}

/// zip^1: per-slot zip — same descriptor, tuple of the inner arrays.
Array zip_1(const Array& x, const Array& y) {
  PROTEUS_REQUIRE(EvalError, x.lengths() == y.lengths(),
                  "zip^1: non-conformable frames (per-slot lengths differ)");
  return Array::nested(x.lengths(), Array::tuple({x.inner(), y.inner()}));
}

Array flatten_1(const Array& v) {
  PROTEUS_REQUIRE(EvalError, v.inner().kind() == Array::Kind::kNested,
                  "flatten^1: elements are not sequences");
  const Array& inner = v.inner();
  IntVec new_lens = vl::seg_reduce_add(inner.lengths(), v.lengths());
  return Array::nested(std::move(new_lens), inner.inner());
}

Array seq_cons_1(const std::vector<Array>& elems) {
  PROTEUS_REQUIRE(EvalError, !elems.empty(),
                  "seq_cons^1 with no element frames");
  const Size n = elems[0].length();
  const Size k = static_cast<Size>(elems.size());
  Array all = elems[0];
  for (std::size_t c = 1; c < elems.size(); ++c) {
    all = seq::concat(all, elems[c]);
  }
  IntVec p = vl::iota(n * k, 0);
  IntVec idx = vl::add(vl::mul(vl::mod(p, k), n), vl::div(p, k));
  return Array::nested(IntVec(n, k), seq::gather(all, idx));
}

Array reduce_1(Prim op, const Array& v) {
  const IntVec& lens = v.lengths();
  const Array& inner = v.inner();
  if (op == Prim::kSum) {
    if (inner.kind() == Array::Kind::kReal) {
      return Array::reals(vl::seg_reduce_add(inner.real_values(), lens));
    }
    return Array::ints(vl::seg_reduce_add(inner.int_values(), lens));
  }
  if (op == Prim::kMaxVal || op == Prim::kMinVal) {
    if (!vl::all(vl::gt(lens, Int{0})) && lens.size() > 0) {
      eval_fail("maxval/minval of an empty sequence");
    }
    if (inner.kind() == Array::Kind::kReal) {
      const RealVec& x = inner.real_values();
      return Array::reals(op == Prim::kMaxVal ? vl::seg_reduce_max(x, lens)
                                              : vl::seg_reduce_min(x, lens));
    }
    const IntVec& x = inner.int_values();
    return Array::ints(op == Prim::kMaxVal ? vl::seg_reduce_max(x, lens)
                                           : vl::seg_reduce_min(x, lens));
  }
  if (op == Prim::kAnyV) {
    return Array::bools(vl::seg_reduce_or(inner.bool_values(), lens));
  }
  if (op == Prim::kAllV) {
    return Array::bools(vl::seg_reduce_and(inner.bool_values(), lens));
  }
  eval_fail(std::string("no depth-1 reduction kernel for '") + prim_name(op) +
            "'");
}

}  // namespace

// --- depth-0 entry ---------------------------------------------------------------

VValue apply_prim0(Prim op, const std::vector<VValue>& args) {
  rt::poll("kernel");  // cooperative check for direct kernel-table callers
  switch (op) {
    case Prim::kAdd:
    case Prim::kSub:
    case Prim::kMul:
    case Prim::kDiv:
    case Prim::kMod:
    case Prim::kMin:
    case Prim::kMax:
    case Prim::kEq:
    case Prim::kNe:
    case Prim::kLt:
    case Prim::kLe:
    case Prim::kGt:
    case Prim::kGe:
    case Prim::kAnd:
    case Prim::kOr:
      return scalar2(op, args[0], args[1]);
    case Prim::kNeg:
      return args[0].is_int() ? VValue::ints(-args[0].as_int())
                              : VValue::reals(-args[0].as_real());
    case Prim::kNot:
      return VValue::bools(!args[0].as_bool());
    case Prim::kSqrt:
      return VValue::reals(std::sqrt(args[0].as_real()));
    case Prim::kToReal:
      return VValue::reals(static_cast<Real>(args[0].as_int()));
    case Prim::kToInt:
      return VValue::ints(static_cast<Int>(args[0].as_real()));
    case Prim::kLength:
      return VValue::ints(args[0].as_seq().length());
    case Prim::kRange:
      return VValue::seq(Array::ints(
          vl::range(args[0].as_int(), args[1].as_int(), 1)));
    case Prim::kRange1:
      return VValue::seq(Array::ints(vl::iota1(args[0].as_int())));
    case Prim::kRestrict: {
      const Array& v = args[0].as_seq();
      const Array& m = args[1].as_seq();
      PROTEUS_REQUIRE(EvalError, v.length() == m.length(),
                      "restrict: sequence and mask lengths differ");
      return VValue::seq(seq::pack(v, m.bool_values()));
    }
    case Prim::kCombine: {
      const Array& m = args[0].as_seq();
      return VValue::seq(
          seq::combine(m.bool_values(), args[1].as_seq(), args[2].as_seq()));
    }
    case Prim::kDist: {
      Int r = args[1].as_int();
      return VValue::seq(materialize(args[0], r < 0 ? 0 : r));
    }
    case Prim::kSeqIndex: {
      const Array& s = args[0].as_seq();
      Int i = checked_index0(args[1].as_int(), s.length());
      return element_value(s, i);
    }
    case Prim::kSeqIndexInner: {
      const Array& s = args[0].as_seq();
      const IntVec& i = args[1].as_seq().int_values();
      IntVec limits(i.size(), s.length());
      check_index_frame(i, limits);
      return VValue::seq(seq::gather(s, vl::sub(i, Int{1})));
    }
    case Prim::kSeqUpdate: {
      const Array& s = args[0].as_seq();
      Int i = checked_index0(args[1].as_int(), s.length());
      Array x = materialize(args[2], 1);
      IntVec map = vl::scatter(vl::iota(s.length(), 0), IntVec{i},
                               IntVec{s.length()});
      return VValue::seq(seq::gather(seq::concat(s, x), map));
    }
    case Prim::kFlatten:
      return VValue::seq(seq::extract(args[0].as_seq(), 1));
    case Prim::kConcat:
      return VValue::seq(seq::concat(args[0].as_seq(), args[1].as_seq()));
    case Prim::kSum: {
      const Array& v = args[0].as_seq();
      if (v.kind() == Array::Kind::kReal) {
        return VValue::reals(vl::reduce_add(v.real_values()));
      }
      return VValue::ints(vl::reduce_add(v.int_values()));
    }
    case Prim::kMaxVal:
    case Prim::kMinVal: {
      const Array& v = args[0].as_seq();
      PROTEUS_REQUIRE(EvalError, v.length() > 0,
                      "maxval/minval of an empty sequence");
      if (v.kind() == Array::Kind::kReal) {
        return VValue::reals(op == Prim::kMaxVal
                                 ? vl::reduce_max(v.real_values())
                                 : vl::reduce_min(v.real_values()));
      }
      return VValue::ints(op == Prim::kMaxVal ? vl::reduce_max(v.int_values())
                                              : vl::reduce_min(v.int_values()));
    }
    case Prim::kReverse: {
      const Array& v = args[0].as_seq();
      if (v.length() == 0) return VValue::seq(v);
      IntVec idx = vl::reverse(vl::iota(v.length(), 0));
      return VValue::seq(seq::gather(v, idx));
    }
    case Prim::kZip: {
      const Array& x = args[0].as_seq();
      const Array& y = args[1].as_seq();
      PROTEUS_REQUIRE(EvalError, x.length() == y.length(),
                      "zip: sequences have different lengths");
      return VValue::seq(Array::tuple({x, y}));
    }
    case Prim::kAnyV:
      return VValue::bools(vl::any(args[0].as_seq().bool_values()));
    case Prim::kAllV:
      return VValue::bools(vl::all(args[0].as_seq().bool_values()));
    case Prim::kExtract:
      return VValue::seq(
          seq::extract(args[0].as_seq(), static_cast<int>(args[1].as_int())));
    case Prim::kInsert:
      return VValue::seq(seq::insert(args[0].as_seq(), args[1].as_seq(),
                                     static_cast<int>(args[2].as_int())));
    case Prim::kAnyTrue:
      return VValue::bools(any_true_frame(args[0]));
    case Prim::kEmptyFrame:
      eval_fail("empty_frame requires its frame depth and type (executor bug)");
  }
  eval_fail("corrupt primitive opcode");
}

// --- depth-1 entry ---------------------------------------------------------------

VValue apply_prim1(Prim op, const std::vector<VValue>& args,
                   const std::vector<std::uint8_t>& lifted,
                   const PrimOptions& options) {
  rt::poll("kernel");  // cooperative check for direct kernel-table callers
  auto is_lifted = [&](std::size_t i) {
    return lifted.empty() || lifted[i] != 0;
  };

  // Section 4.5 fast path: seq_index with a fixed (broadcast) source is a
  // gather from the shared sequence, with no replication.
  if (op == Prim::kSeqIndex && options.shared_source_gather &&
      !is_lifted(0) && is_lifted(1)) {
    return VValue::seq(
        seq_index_1_shared(args[0].as_seq(), args[1].as_seq()));
  }

  // Frame length from the first lifted argument.
  Size n = -1;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (is_lifted(i)) {
      n = args[i].as_seq().length();
      break;
    }
  }
  PROTEUS_REQUIRE(EvalError, n >= 0,
                  "depth-1 extension applied with no frame argument");

  // Normalize: replicate broadcast arguments across the frame.
  std::vector<Array> frames;
  frames.reserve(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) {
    frames.push_back(is_lifted(i) ? args[i].as_seq()
                                  : materialize(args[i], n));
  }

  switch (op) {
    case Prim::kAdd:
    case Prim::kSub:
    case Prim::kMul:
    case Prim::kDiv:
    case Prim::kMod:
    case Prim::kMin:
    case Prim::kMax:
    case Prim::kEq:
    case Prim::kNe:
    case Prim::kLt:
    case Prim::kLe:
    case Prim::kGt:
    case Prim::kGe:
    case Prim::kAnd:
    case Prim::kOr:
      return VValue::seq(ew_binary(op, frames[0], frames[1]));
    case Prim::kNeg:
    case Prim::kNot:
    case Prim::kToReal:
    case Prim::kToInt:
    case Prim::kSqrt:
      return VValue::seq(ew_unary(op, frames[0]));
    case Prim::kLength:
      return VValue::seq(Array::ints(frames[0].lengths()));
    case Prim::kRange:
      return VValue::seq(range_1(frames[0], frames[1]));
    case Prim::kRange1:
      return VValue::seq(range1_1(frames[0]));
    case Prim::kRestrict:
      return VValue::seq(restrict_1(frames[0], frames[1]));
    case Prim::kCombine:
      return VValue::seq(combine_1(frames[0], frames[1], frames[2]));
    case Prim::kDist:
      return VValue::seq(dist_1(frames[0], frames[1]));
    case Prim::kSeqIndex:
      return VValue::seq(seq_index_1_frame(frames[0], frames[1]));
    case Prim::kSeqIndexInner:
      return VValue::seq(seq_index_inner_1(frames[0], frames[1]));
    case Prim::kSeqUpdate:
      return VValue::seq(update_1(frames[0], frames[1], frames[2]));
    case Prim::kFlatten:
      return VValue::seq(flatten_1(frames[0]));
    case Prim::kConcat:
      return VValue::seq(concat_1(frames[0], frames[1]));
    case Prim::kReverse:
      return VValue::seq(reverse_1(frames[0]));
    case Prim::kZip:
      return VValue::seq(zip_1(frames[0], frames[1]));
    case Prim::kSum:
    case Prim::kMaxVal:
    case Prim::kMinVal:
    case Prim::kAnyV:
    case Prim::kAllV:
      return VValue::seq(reduce_1(op, frames[0]));
    case Prim::kExtract:
    case Prim::kInsert:
    case Prim::kEmptyFrame:
    case Prim::kAnyTrue:
      eval_fail(std::string("'") + prim_name(op) +
                "' has no depth-1 extension (it is a depth-0 representation "
                "primitive)");
  }
  eval_fail("corrupt primitive opcode");
}

VValue empty_frame_value(const VValue& mask, int depth,
                         const lang::TypePtr& type) {
  PROTEUS_REQUIRE(EvalError, depth >= 1 && type != nullptr && type->is_seq(),
                  "empty_frame: bad depth or type annotation");
  // Element type beta of Seq^depth(beta):
  lang::TypePtr beta = type;
  for (int k = 0; k < depth; ++k) beta = beta->elem();

  // Recursive structure copy of the mask's array above the deepest level.
  std::function<Array(const Array&, int)> build = [&](const Array& m,
                                                      int d) -> Array {
    if (d == 1) return empty_array_of(beta);
    if (d == 2) {
      return Array::nested(IntVec(m.length(), Int{0}), empty_array_of(beta));
    }
    return Array::nested(m.lengths(), build(m.inner(), d - 1));
  };
  return VValue::seq(build(mask.as_seq(), depth));
}

VValue seq_cons0(const std::vector<VValue>& elems,
                 const lang::TypePtr& elem_type) {
  if (elems.empty()) {
    PROTEUS_REQUIRE(EvalError, elem_type != nullptr,
                    "seq_cons: empty literal without an element type");
    return VValue::seq(empty_array_of(elem_type));
  }
  Array all = materialize(elems[0], 1);
  for (std::size_t i = 1; i < elems.size(); ++i) {
    all = seq::concat(all, materialize(elems[i], 1));
  }
  return VValue::seq(std::move(all));
}

VValue tuple_cons(std::vector<VValue> elems, int depth) {
  if (depth == 0) return VValue::tuple(std::move(elems));
  std::vector<Array> comps;
  comps.reserve(elems.size());
  for (const VValue& v : elems) comps.push_back(v.as_seq());
  return VValue::seq(Array::tuple(std::move(comps)));
}

VValue tuple_get(const VValue& tuple, int index, int depth) {
  const std::size_t k = static_cast<std::size_t>(index - 1);
  if (depth == 0) {
    const auto& comps = tuple.as_tuple();
    PROTEUS_REQUIRE(EvalError, k < comps.size(),
                    "tuple component index out of range");
    return comps[k];
  }
  const auto& comps = tuple.as_seq().components();
  PROTEUS_REQUIRE(EvalError, k < comps.size(),
                  "tuple component index out of range");
  return VValue::seq(comps[k]);
}

VValue seq_cons1(const std::vector<VValue>& elems) {
  std::vector<Array> frames;
  frames.reserve(elems.size());
  for (const VValue& e : elems) frames.push_back(e.as_seq());
  return VValue::seq(seq_cons_1(frames));
}

bool any_true_frame(const VValue& frame) {
  const Array* cur = &frame.as_seq();
  while (cur->kind() == Array::Kind::kNested) cur = &cur->inner();
  return vl::any(cur->bool_values());
}

}  // namespace proteus::kernels
