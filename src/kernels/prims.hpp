// prims.hpp — the shared kernel table: vector-model implementations of the
// Table 2 primitives and their depth-1 parallel extensions (Section 4.4).
//
// Both execution engines — the tree-walking exec::Executor and the bytecode
// vm::VM — funnel every primitive application through this one table, so a
// kernel fix or optimization reaches both engines at once and differential
// results cannot drift at the kernel level.
//
// apply_prim0 evaluates a primitive on depth-0 values (scalars and whole
// sequences); apply_prim1 evaluates the depth-1 extension on frames, where
// broadcast (depth-0) arguments are either served by a shared-source fast
// path (seq_index's fixed source, Section 4.5) or replicated across the
// frame first. Depth >= 2 extensions never reach this layer: the T1
// translation reduced them to extract / depth-1 / insert.
#pragma once

#include <vector>

#include "kernels/vvalue.hpp"
#include "lang/ast.hpp"

namespace proteus::kernels {

/// Controls the Section 4.5 shared-source fast paths (the ablation bench
/// flips this off to measure the replication cost the paper describes).
struct PrimOptions {
  bool shared_source_gather = true;
};

/// Depth-0 primitive application (includes extract/insert/any_true).
[[nodiscard]] VValue apply_prim0(lang::Prim op,
                                 const std::vector<VValue>& args);

/// Depth-1 parallel extension; lifted[i] == 0 marks a broadcast argument
/// (empty `lifted` means all arguments are frames).
[[nodiscard]] VValue apply_prim1(lang::Prim op,
                                 const std::vector<VValue>& args,
                                 const std::vector<std::uint8_t>& lifted,
                                 const PrimOptions& options = {});

/// Rule R2d's empty_frame: same structure as `mask` above the deepest
/// level, no elements at depth `depth`; `type` is Seq^depth(beta).
[[nodiscard]] VValue empty_frame_value(const VValue& mask, int depth,
                                       const lang::TypePtr& type);

/// True when any leaf of the (arbitrary-depth) boolean frame is true.
[[nodiscard]] bool any_true_frame(const VValue& frame);

/// seq_cons^1: builds one length-k sequence per frame slot from k
/// conformable element frames.
[[nodiscard]] VValue seq_cons1(const std::vector<VValue>& elems);

/// seq_cons at depth 0: the sequence literal [e1, ..., en]; `elem_type` is
/// the static element type (required when `elems` is empty).
[[nodiscard]] VValue seq_cons0(const std::vector<VValue>& elems,
                               const lang::TypePtr& elem_type);

/// Tuple construction; depth 1 builds the structure-of-arrays frame of
/// conformable component frames.
[[nodiscard]] VValue tuple_cons(std::vector<VValue> elems, int depth);

/// 1-origin tuple component extraction; depth 1 selects the component
/// array out of a tuple frame.
[[nodiscard]] VValue tuple_get(const VValue& tuple, int index, int depth);

}  // namespace proteus::kernels
