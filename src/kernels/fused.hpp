// fused.hpp — single-pass evaluation of fused elementwise chains.
//
// The VCODE optimizer (vm/fuse.hpp) collapses a chain of depth-1
// elementwise instructions over a common frame into one kFusedMap
// superinstruction carrying a micro-expression: a tiny post-order program
// whose leaves are the surviving operand registers (or broadcast scalars)
// and whose interior nodes are elementwise prims. This module evaluates
// such an expression in ONE pass over the data — block by block through a
// per-thread scratch arena instead of one full Vec materialization per
// intermediate — and can run the whole chain in place in the buffer of a
// dying input (the optimizer marks last uses; sole ownership is checked
// at run time via the Array spine's use count).
//
// Cost-model contract: primitive_calls / element_work and the throw
// behaviour of a fused chain are emulated node-for-node to match what the
// unfused instructions would have reported — engines must stay
// indistinguishable to the differential and stats-parity harnesses. Only
// vl::VectorStats::buffer_allocs is allowed to drop: that counter is
// physical, and its reduction is the point of the optimization.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kernels/vvalue.hpp"
#include "lang/ast.hpp"

namespace proteus::kernels {

/// One node of a fused micro-expression.
struct MicroOp {
  enum class Kind : std::uint8_t { kInput, kPrim };
  Kind kind = Kind::kInput;
  lang::Prim prim = lang::Prim::kAdd;  ///< kPrim: the elementwise prim
  std::uint8_t a = 0;                  ///< kPrim: operand node index (< own)
  std::uint8_t b = 0;                  ///< kPrim binary: second operand
  std::uint8_t input = 0;              ///< kInput: operand slot of the instr
};

// Flags on each operand slot of a fused instruction.
inline constexpr std::uint8_t kFusedBroadcast = 1;  ///< depth-0 arg: splat
inline constexpr std::uint8_t kFusedLastUse = 2;    ///< register dies here

/// A fused elementwise chain: `nodes` in post-order (every operand index
/// precedes its user; the root is nodes.back()), one input_flags entry per
/// operand slot of the carrying instruction.
struct FusedExpr {
  std::vector<MicroOp> nodes;
  std::vector<std::uint8_t> input_flags;
  [[nodiscard]] std::size_t n_inputs() const { return input_flags.size(); }
};

/// Node-count cap: child indices are uint8 and the per-thread scratch
/// arena stays cache-sized.
inline constexpr std::size_t kMaxFusedNodes = 64;

/// True when `p` belongs to the fusible elementwise family (the depth-1
/// kernels of ew_unary/ew_binary in prims.cpp).
[[nodiscard]] bool fusible_prim(lang::Prim p);

/// Number of interior (kPrim) nodes of `e`.
[[nodiscard]] std::size_t fused_prim_count(const FusedExpr& e);

/// Evaluates the chain over `inputs` (one VValue per operand slot; slots
/// flagged kFusedLastUse arrive as the moved-out register contents, which
/// enables in-place reuse). Serial and OpenMP paths, selected exactly like
/// the unfused kernels.
[[nodiscard]] VValue eval_fused(const FusedExpr& e,
                                std::vector<VValue> inputs);

}  // namespace proteus::kernels
