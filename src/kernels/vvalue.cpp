#include "kernels/vvalue.hpp"

#include "vl/check.hpp"
#include "vl/vl.hpp"

namespace proteus::kernels {

using lang::TypeKind;
using lang::TypePtr;

Int VValue::as_int() const {
  const Int* v = std::get_if<Int>(&node_);
  PROTEUS_REQUIRE(EvalError, v != nullptr, "vector value is not an int");
  return *v;
}

Real VValue::as_real() const {
  const Real* v = std::get_if<Real>(&node_);
  PROTEUS_REQUIRE(EvalError, v != nullptr, "vector value is not a real");
  return *v;
}

bool VValue::as_bool() const {
  const bool* v = std::get_if<bool>(&node_);
  PROTEUS_REQUIRE(EvalError, v != nullptr, "vector value is not a bool");
  return *v;
}

const Array& VValue::as_seq() const {
  const SeqRep* v = std::get_if<SeqRep>(&node_);
  PROTEUS_REQUIRE(EvalError, v != nullptr, "vector value is not a sequence");
  return v->elements;
}

Array VValue::take_seq() && {
  SeqRep* v = std::get_if<SeqRep>(&node_);
  PROTEUS_REQUIRE(EvalError, v != nullptr, "vector value is not a sequence");
  return std::move(v->elements);
}

const std::vector<VValue>& VValue::as_tuple() const {
  const TupleRep* v = std::get_if<TupleRep>(&node_);
  PROTEUS_REQUIRE(EvalError, v != nullptr, "vector value is not a tuple");
  return v->components;
}

const std::string& VValue::fun_name() const {
  const FunRep* v = std::get_if<FunRep>(&node_);
  PROTEUS_REQUIRE(EvalError, v != nullptr, "vector value is not a function");
  return v->name;
}

Array empty_array_of(const TypePtr& elem) {
  switch (elem->kind()) {
    case TypeKind::kInt:
      return Array::ints({});
    case TypeKind::kReal:
      return Array::reals({});
    case TypeKind::kBool:
      return Array::bools({});
    case TypeKind::kSeq:
      return Array::nested(vl::IntVec{}, empty_array_of(elem->elem()));
    case TypeKind::kTuple: {
      std::vector<Array> comps;
      for (const TypePtr& c : elem->components()) {
        comps.push_back(empty_array_of(c));
      }
      return Array::tuple(std::move(comps));
    }
    case TypeKind::kFun:
      throw EvalError(
          "sequences of function values have no flat representation");
  }
  throw EvalError("corrupt type in empty_array_of");
}

Array materialize(const VValue& v, Size n) {
  if (v.is_int()) return Array::ints(vl::dist(v.as_int(), n));
  if (v.is_real()) return Array::reals(vl::dist(v.as_real(), n));
  if (v.is_bool()) {
    return Array::bools(vl::dist<vl::Bool>(v.as_bool() ? 1 : 0, n));
  }
  if (v.is_seq()) {
    const Array& arr = v.as_seq();
    Array one = Array::nested(vl::IntVec{arr.length()}, arr);
    return seq::broadcast_element(one, 0, n);
  }
  if (v.is_tuple()) {
    std::vector<Array> comps;
    for (const VValue& c : v.as_tuple()) comps.push_back(materialize(c, n));
    return Array::tuple(std::move(comps));
  }
  throw EvalError("function values cannot be replicated into frames");
}

VValue element_value(const Array& a, Size i) {
  PROTEUS_REQUIRE(EvalError, i >= 0 && i < a.length(),
                  "element index out of range");
  switch (a.kind()) {
    case Array::Kind::kInt:
      return VValue::ints(a.int_values()[i]);
    case Array::Kind::kReal:
      return VValue::reals(a.real_values()[i]);
    case Array::Kind::kBool:
      return VValue::bools(a.bool_values()[i] != 0);
    case Array::Kind::kTuple: {
      std::vector<VValue> comps;
      for (const Array& c : a.components()) {
        comps.push_back(element_value(c, i));
      }
      return VValue::tuple(std::move(comps));
    }
    case Array::Kind::kNested:
      return VValue::seq(seq::element(a, i).inner());
  }
  throw EvalError("corrupt array kind");
}

VValue from_boxed(const interp::Value& v, const TypePtr& type) {
  switch (type->kind()) {
    case TypeKind::kInt:
      return VValue::ints(v.as_int());
    case TypeKind::kReal:
      return VValue::reals(v.as_real());
    case TypeKind::kBool:
      return VValue::bools(v.as_bool());
    case TypeKind::kSeq:
      return VValue::seq(interp::to_array(v, type));
    case TypeKind::kTuple: {
      const auto& comps = type->components();
      const auto& vals = v.as_tuple();
      PROTEUS_REQUIRE(EvalError, comps.size() == vals.size(),
                      "tuple arity mismatch in conversion");
      std::vector<VValue> out;
      for (std::size_t i = 0; i < comps.size(); ++i) {
        out.push_back(from_boxed(vals[i], comps[i]));
      }
      return VValue::tuple(std::move(out));
    }
    case TypeKind::kFun:
      return VValue::fun(v.fun_name());
  }
  throw EvalError("corrupt type in conversion");
}

interp::Value to_boxed(const VValue& v, const TypePtr& type) {
  switch (type->kind()) {
    case TypeKind::kInt:
      return interp::Value::ints(v.as_int());
    case TypeKind::kReal:
      return interp::Value::reals(v.as_real());
    case TypeKind::kBool:
      return interp::Value::bools(v.as_bool());
    case TypeKind::kSeq:
      return interp::from_array(v.as_seq(), type);
    case TypeKind::kTuple: {
      const auto& comps = type->components();
      const auto& vals = v.as_tuple();
      PROTEUS_REQUIRE(EvalError, comps.size() == vals.size(),
                      "tuple arity mismatch in conversion");
      interp::ValueList out;
      for (std::size_t i = 0; i < comps.size(); ++i) {
        out.push_back(to_boxed(vals[i], comps[i]));
      }
      return interp::Value::tuple(std::move(out));
    }
    case TypeKind::kFun:
      return interp::Value::fun(v.fun_name());
  }
  throw EvalError("corrupt type in conversion");
}

}  // namespace proteus::kernels
