#include "vm/fuse.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "kernels/fused.hpp"
#include "vm/bytecode.hpp"

namespace proteus::vm {

namespace {

using kernels::FusedExpr;
using kernels::MicroOp;

/// Mirrors the verifier: opcodes that write Instr::dst.
bool writes_reg(Op op) {
  switch (op) {
    case Op::kBranchEmpty:
    case Op::kJump:
    case Op::kJumpIfFalse:
    case Op::kRet:
      return false;
    default:
      return true;
  }
}

bool is_branch(Op op) {
  return op == Op::kJump || op == Op::kJumpIfFalse || op == Op::kBranchEmpty;
}

/// Working form of one instruction: the operand list is materialized so
/// passes can rewrite it without aliasing the shared arg_pool.
struct IInstr {
  Instr in;
  std::vector<std::uint16_t> args;
  bool removed = false;
};

using LiveSet = std::vector<std::uint8_t>;  // one flag per register

class FunctionOptimizer {
 public:
  FunctionOptimizer(Function& fn, FuseStats& stats)
      : fn_(fn), stats_(stats) {}

  void run() {
    if (fn_.code.empty()) return;
    load();
    propagate_copies();
    fuse_chains();
    compact();
    while (eliminate_dead()) compact();
    mark_last_uses();
    emit();
  }

 private:
  // --- IR in/out -------------------------------------------------------------

  void load() {
    ir_.reserve(fn_.code.size());
    for (const Instr& in : fn_.code) {
      IInstr ii;
      ii.in = in;
      ii.args.assign(fn_.arg_pool.begin() + in.args_off,
                     fn_.arg_pool.begin() + in.args_off + in.args_count);
      ir_.push_back(std::move(ii));
    }
  }

  void emit() {
    fn_.code.clear();
    fn_.arg_pool.clear();
    std::uint16_t max_reg = fn_.n_params == 0
                                ? 0
                                : static_cast<std::uint16_t>(fn_.n_params - 1);
    for (IInstr& ii : ir_) {
      ii.in.args_off = static_cast<std::uint32_t>(fn_.arg_pool.size());
      ii.in.args_count = static_cast<std::uint16_t>(ii.args.size());
      for (const std::uint16_t r : ii.args) {
        fn_.arg_pool.push_back(r);
        max_reg = std::max(max_reg, r);
      }
      if (writes_reg(ii.in.op)) max_reg = std::max(max_reg, ii.in.dst);
      fn_.code.push_back(ii.in);
    }
    fn_.n_regs = static_cast<std::uint16_t>(max_reg + 1);
    fn_.fused = std::move(fused_);
  }

  /// Drops removed instructions and remaps branch targets. A removed
  /// target (an absorbed chain member) forwards to the next surviving
  /// instruction of its block; control instructions are never removed,
  /// so the forward scan cannot fall off the end.
  void compact() {
    const std::size_t n = ir_.size();
    std::vector<std::size_t> new_index(n + 1, 0);
    std::size_t alive = 0;
    for (std::size_t pc = 0; pc < n; ++pc) {
      new_index[pc] = alive;
      if (!ir_[pc].removed) ++alive;
    }
    new_index[n] = alive;
    std::vector<IInstr> next;
    next.reserve(alive);
    for (std::size_t pc = 0; pc < n; ++pc) {
      if (ir_[pc].removed) continue;
      IInstr ii = std::move(ir_[pc]);
      if (is_branch(ii.in.op)) {
        std::size_t t = static_cast<std::size_t>(ii.in.aux);
        while (t < n && ir_[t].removed) ++t;
        ii.in.aux = static_cast<std::int32_t>(new_index[t]);
      }
      next.push_back(std::move(ii));
    }
    ir_ = std::move(next);
  }

  // --- CFG / dataflow helpers ------------------------------------------------

  /// Successor pcs of `pc` in the instruction-level CFG.
  void successors(std::size_t pc, std::size_t out[2], std::size_t& count) const {
    const Instr& in = ir_[pc].in;
    count = 0;
    switch (in.op) {
      case Op::kRet:
        return;
      case Op::kJump:
        out[count++] = static_cast<std::size_t>(in.aux);
        return;
      case Op::kJumpIfFalse:
      case Op::kBranchEmpty:
        out[count++] = static_cast<std::size_t>(in.aux);
        if (pc + 1 < ir_.size()) out[count++] = pc + 1;
        return;
      default:
        if (pc + 1 < ir_.size()) out[count++] = pc + 1;
        return;
    }
  }

  /// Backward may-liveness to the instruction level: live_out[pc][r] is
  /// true when some path from pc's successors reads r before writing it.
  std::vector<LiveSet> liveness() const {
    const std::size_t n = ir_.size();
    const std::size_t n_regs = fn_.n_regs;
    std::vector<LiveSet> live_out(n, LiveSet(n_regs, 0));
    std::vector<LiveSet> uses(n, LiveSet(n_regs, 0));
    for (std::size_t pc = 0; pc < n; ++pc) {
      for (const std::uint16_t r : ir_[pc].args) uses[pc][r] = 1;
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t pc = n; pc-- > 0;) {
        std::size_t succ[2];
        std::size_t n_succ = 0;
        successors(pc, succ, n_succ);
        for (std::size_t s = 0; s < n_succ; ++s) {
          const std::size_t sp = succ[s];
          const Instr& sin = ir_[sp].in;
          const bool sdef = writes_reg(sin.op);
          for (std::size_t r = 0; r < n_regs; ++r) {
            const bool in_live =
                uses[sp][r] != 0 ||
                (live_out[sp][r] != 0 &&
                 !(sdef && static_cast<std::size_t>(sin.dst) == r));
            if (in_live && live_out[pc][r] == 0) {
              live_out[pc][r] = 1;
              changed = true;
            }
          }
        }
      }
    }
    return live_out;
  }

  /// Basic-block boundaries: [starts[i], starts[i+1]) are the blocks.
  std::vector<std::size_t> block_starts() const {
    const std::size_t n = ir_.size();
    std::vector<std::uint8_t> leader(n + 1, 0);
    leader[0] = 1;
    leader[n] = 1;
    for (std::size_t pc = 0; pc < n; ++pc) {
      const Instr& in = ir_[pc].in;
      if (is_branch(in.op)) {
        leader[static_cast<std::size_t>(in.aux)] = 1;
        leader[pc + 1] = 1;
      } else if (in.op == Op::kRet) {
        leader[pc + 1] = 1;
      }
    }
    std::vector<std::size_t> starts;
    for (std::size_t pc = 0; pc <= n; ++pc) {
      if (leader[pc] != 0) starts.push_back(pc);
    }
    return starts;
  }

  /// True when operand `slot` of `ii` is a lifted (frame) operand rather
  /// than a broadcast scalar.
  bool lifted_slot(const IInstr& ii, std::size_t slot) const {
    if (ii.in.lifted < 0) return true;
    const auto& set =
        fn_.lifted_sets[static_cast<std::size_t>(ii.in.lifted)];
    if (set.empty()) return true;
    return set[slot] != 0;
  }

  // --- pass 1: block-local copy propagation ----------------------------------

  /// Rewrites uses of move destinations to their sources so the moves go
  /// dead (and chains flow through the original registers, which fusion
  /// can then follow).
  void propagate_copies() {
    const std::vector<std::size_t> starts = block_starts();
    for (std::size_t b = 0; b + 1 < starts.size(); ++b) {
      std::map<std::uint16_t, std::uint16_t> copy;
      for (std::size_t pc = starts[b]; pc < starts[b + 1]; ++pc) {
        IInstr& ii = ir_[pc];
        for (std::uint16_t& r : ii.args) {
          auto it = copy.find(r);
          if (it != copy.end()) r = it->second;
        }
        if (!writes_reg(ii.in.op)) continue;
        const std::uint16_t d = ii.in.dst;
        copy.erase(d);
        for (auto it = copy.begin(); it != copy.end();) {
          it = it->second == d ? copy.erase(it) : std::next(it);
        }
        if (ii.in.op == Op::kMove && ii.args[0] != d) copy[d] = ii.args[0];
      }
    }
  }

  // --- pass 2: elementwise chain fusion --------------------------------------

  bool fusible_instr(std::size_t pc) const {
    const IInstr& ii = ir_[pc];
    return !ii.removed && ii.in.op == Op::kElementwise && ii.in.depth == 1 &&
           kernels::fusible_prim(ii.in.prim) &&
           ii.args.size() ==
               static_cast<std::size_t>(lang::prim_arity(ii.in.prim));
  }

  void fuse_chains() {
    const std::vector<LiveSet> live_out = liveness();
    const std::vector<std::size_t> starts = block_starts();
    absorbed_.assign(ir_.size(), 0);
    reach_at_.assign(ir_.size(), {});
    use_count_.assign(ir_.size(), 0);
    escape_.assign(ir_.size(), 0);

    for (std::size_t b = 0; b + 1 < starts.size(); ++b) {
      const std::size_t lo = starts[b];
      const std::size_t hi = starts[b + 1];
      if (lo == hi) continue;

      // Forward scan: the in-block reaching def of every operand
      // occurrence, per-def use counts, and which defs escape the block.
      std::vector<std::int64_t> reach(fn_.n_regs, -1);
      for (std::size_t pc = lo; pc < hi; ++pc) {
        IInstr& ii = ir_[pc];
        reach_at_[pc].assign(ii.args.size(), -1);
        for (std::size_t s = 0; s < ii.args.size(); ++s) {
          const std::int64_t d = reach[ii.args[s]];
          reach_at_[pc][s] = d;
          if (d >= 0) use_count_[static_cast<std::size_t>(d)] += 1;
        }
        if (writes_reg(ii.in.op)) {
          reach[ii.in.dst] = static_cast<std::int64_t>(pc);
        }
      }
      for (std::size_t r = 0; r < fn_.n_regs; ++r) {
        if (reach[r] >= 0 && live_out[hi - 1][r] != 0) {
          escape_[static_cast<std::size_t>(reach[r])] = 1;
        }
      }

      for (std::size_t pc = hi; pc-- > lo;) {
        if (fusible_instr(pc) && absorbed_[pc] == 0) try_fuse(pc, lo);
      }
    }
  }

  /// True when the chain rooted at `root` may absorb the producer at `d`:
  /// a fusible single-use in-block def whose own operands are unchanged
  /// between the producer and the root (their values at `root` are the
  /// values the producer would have read).
  bool absorbable(std::int64_t d, std::size_t root, std::size_t lo) const {
    if (d < 0) return false;
    const auto dp = static_cast<std::size_t>(d);
    if (dp < lo || !fusible_instr(dp) || absorbed_[dp] != 0) return false;
    if (use_count_[dp] != 1 || escape_[dp] != 0) return false;
    for (const std::uint16_t l : ir_[dp].args) {
      for (std::size_t q = dp + 1; q < root; ++q) {
        if (!ir_[q].removed && writes_reg(ir_[q].in.op) &&
            ir_[q].in.dst == l) {
          return false;
        }
      }
    }
    return true;
  }

  void try_fuse(std::size_t root, std::size_t lo) {
    // Decide the chain: grow the absorbed set greedily from the root,
    // bounded by the micro-expression node cap (each absorbed producer
    // turns one leaf into an interior node plus its own leaves).
    std::vector<std::size_t> parts{root};
    std::size_t nodes =
        1 + static_cast<std::size_t>(lang::prim_arity(ir_[root].in.prim));
    for (std::size_t i = 0; i < parts.size(); ++i) {
      const IInstr& ii = ir_[parts[i]];
      for (std::size_t s = 0; s < ii.args.size(); ++s) {
        if (!lifted_slot(ii, s)) continue;
        const std::int64_t d = reach_at_[parts[i]][s];
        if (!absorbable(d, root, lo)) continue;
        const auto dp = static_cast<std::size_t>(d);
        if (std::find(parts.begin(), parts.end(), dp) != parts.end()) continue;
        const auto arity =
            static_cast<std::size_t>(lang::prim_arity(ir_[dp].in.prim));
        if (nodes + arity > kernels::kMaxFusedNodes) continue;
        nodes += arity;
        parts.push_back(dp);
      }
    }
    if (parts.size() < 2) return;
    std::sort(parts.begin(), parts.end());

    // Emit the micro-expression: interiors in original instruction order
    // (so the fused kernel replays the unfused cost model in order),
    // one kInput leaf per operand occurrence.
    FusedExpr fe;
    std::vector<std::uint16_t> slot_regs;
    std::map<std::size_t, std::uint8_t> node_of;
    bool any_frame = false;
    for (const std::size_t p : parts) {
      const IInstr& ii = ir_[p];
      std::uint8_t children[2] = {0, 0};
      for (std::size_t s = 0; s < ii.args.size(); ++s) {
        const std::int64_t d = reach_at_[p][s];
        const auto it = d >= 0 ? node_of.find(static_cast<std::size_t>(d))
                               : node_of.end();
        if (it != node_of.end()) {
          children[s] = it->second;
          continue;
        }
        MicroOp leaf;
        leaf.kind = MicroOp::Kind::kInput;
        leaf.input = static_cast<std::uint8_t>(slot_regs.size());
        const bool frame = lifted_slot(ii, s);
        any_frame = any_frame || frame;
        fe.input_flags.push_back(frame ? 0 : kernels::kFusedBroadcast);
        slot_regs.push_back(ii.args[s]);
        children[s] = static_cast<std::uint8_t>(fe.nodes.size());
        fe.nodes.push_back(leaf);
      }
      MicroOp op;
      op.kind = MicroOp::Kind::kPrim;
      op.prim = ii.in.prim;
      op.a = children[0];
      op.b = children[1];
      node_of[p] = static_cast<std::uint8_t>(fe.nodes.size());
      fe.nodes.push_back(op);
    }
    // A chain with no frame operand would throw on every execution (and
    // the verifier rejects it); leave such code alone.
    if (!any_frame) return;

    for (const std::size_t p : parts) {
      absorbed_[p] = 1;
      if (p != root) ir_[p].removed = true;
    }
    IInstr& ri = ir_[root];
    ri.in.op = Op::kFusedMap;
    ri.in.lifted = -1;
    ri.in.aux = static_cast<std::int32_t>(fused_.size());
    ri.in.aux2 = -1;
    ri.args = std::move(slot_regs);
    fused_.push_back(std::move(fe));
    stats_.fused_chains += 1;
    stats_.fused_prims += parts.size();
    stats_.eliminated_instrs += parts.size() - 1;
  }

  // --- pass 3: dead move/constant elimination --------------------------------

  bool eliminate_dead() {
    const std::vector<LiveSet> live_out = liveness();
    bool removed_any = false;
    for (std::size_t pc = 0; pc < ir_.size(); ++pc) {
      IInstr& ii = ir_[pc];
      const Op op = ii.in.op;
      const bool pure =
          op == Op::kMove || op == Op::kConst || op == Op::kLoadFun;
      if (!pure) continue;
      const bool self_move = op == Op::kMove && ii.args[0] == ii.in.dst;
      if (!self_move && live_out[pc][ii.in.dst] != 0) continue;
      ii.removed = true;
      removed_any = true;
      stats_.eliminated_instrs += 1;
      if (op == Op::kMove) stats_.eliminated_moves += 1;
    }
    return removed_any;
  }

  // --- pass 4: last-use marking for in-place execution -----------------------

  void mark_last_uses() {
    if (fused_.empty()) return;
    const std::vector<LiveSet> live_out = liveness();
    for (std::size_t pc = 0; pc < ir_.size(); ++pc) {
      IInstr& ii = ir_[pc];
      if (ii.in.op != Op::kFusedMap) continue;
      FusedExpr& fe = fused_[static_cast<std::size_t>(ii.in.aux)];
      for (std::size_t s = 0; s < ii.args.size(); ++s) {
        const std::uint16_t r = ii.args[s];
        bool last = true;
        for (std::size_t t = s + 1; t < ii.args.size(); ++t) {
          if (ii.args[t] == r) last = false;
        }
        // The old value of the destination register dies here no matter
        // what liveness says: the instruction overwrites it.
        if (last && (r == ii.in.dst || live_out[pc][r] == 0)) {
          fe.input_flags[s] |= kernels::kFusedLastUse;
        }
      }
    }
  }

  Function& fn_;
  FuseStats& stats_;
  std::vector<IInstr> ir_;
  std::vector<FusedExpr> fused_;
  std::vector<std::uint8_t> absorbed_;
  std::vector<std::vector<std::int64_t>> reach_at_;
  std::vector<std::size_t> use_count_;
  std::vector<std::uint8_t> escape_;
};

}  // namespace

std::shared_ptr<const Module> optimize_module(const Module& m,
                                              FuseStats* stats) {
  auto out = std::make_shared<Module>(m);
  FuseStats local;
  FuseStats& tally = stats != nullptr ? *stats : local;
  for (Function& fn : out->functions) {
    FunctionOptimizer(fn, tally).run();
  }
  return out;
}

}  // namespace proteus::vm
