// disasm.hpp — human-readable listing of a vm::Module, the `--dump vcode`
// stage of proteusc and the format used by docs/VM.md.
//
// The listing is one line per instruction:
//
//     3  elementwise  r5 <- add^1(r2, r3) lifted=01
//     7  brempty      r1 -> @12
//
// with registers `rN`, constant-pool references resolved inline, and
// branch targets as absolute instruction indices `@N`.
#pragma once

#include <string>

#include "vm/bytecode.hpp"

namespace proteus::vm {

/// Listing of every function in the module (entry last, marked).
[[nodiscard]] std::string to_text(const Module& module);

/// Listing of a single function.
[[nodiscard]] std::string to_text(const Module& module, const Function& fn);

}  // namespace proteus::vm
