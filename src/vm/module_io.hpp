// module_io.hpp — the versioned binary (de)serializer for vm::Module:
// the compile-once / evaluate-many substrate of the serving daemon
// (src/serve/, docs/SERVING.md) and the AOT module cache of proteusc
// (`--emit-module` / `--load-module` / `--module-cache`).
//
// A module image is a self-contained encoding of everything the VM needs
// to dispatch: functions (instructions, argument pools, lift sets, fused
// micro-expressions), the constant pool (full nested-vector values), the
// type pool, the name pool, the entry index — plus the external calling
// convention (vm::Signature per function), which is what lets a loaded
// module be *called* with boxed P values when no AST exists in the
// process.
//
// Layout (all integers little-endian):
//
//   u32 magic "PVCM"   u32 version   u64 source_hash   body...
//
// Trust model: a module image is untrusted input. The loader never
// indexes past the buffer (every read is bounds-checked against the
// remaining bytes, every count validated before allocation) and never
// throws on malformed bytes — structural damage surfaces as B215
// (malformed/truncated image) or B216 (bad magic / unsupported version)
// diagnostics in the returned report, and the decoded module is then
// re-proved safe to dispatch by the existing bytecode verifier
// (vm/verify.hpp), exactly as if it had come from the assembler. An
// embedded memory plan is likewise untrusted: at a verifying load it is
// recomputed from the decoded bytecode and compared — any divergence is
// B217 (plan/bytecode mismatch), so a tampered plan can never steer the
// VM's plan-backed register clearing. A
// loaded module therefore enjoys the same soundness guarantee as a
// freshly compiled one, or it is rejected with a structured report —
// never a crash (see tests/vm/module_io_test.cpp's truncation sweep).
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>

#include "analysis/diagnostic.hpp"
#include "vm/bytecode.hpp"

namespace proteus::vm {

/// "PVCM" little-endian.
inline constexpr std::uint32_t kModuleMagic = 0x4D435650u;

/// Bump on any layout change; the loader rejects other versions (B216).
/// v2 added the memory-plan section (analysis/lifetime.hpp) after the
/// entry index, guarded by the B217 plan/bytecode consistency check.
inline constexpr std::uint32_t kModuleVersion = 2;

/// FNV-1a 64-bit over `source` and an options tag: the cache key of the
/// module caches. Stable across processes and platforms, so on-disk cache
/// entries survive restarts and are shared between proteusc
/// (--module-cache) and proteusd (--cache-dir).
[[nodiscard]] std::uint64_t source_hash(std::string_view source,
                                        std::string_view options_tag = {});

/// The stable compile-options fingerprint that goes into the cache key;
/// e.g. optimize=true, verify=true -> "O1:v". Every producer/consumer of
/// a shared module cache must derive its keys through this one function.
[[nodiscard]] std::string options_tag(bool optimize, bool verify);

/// Rendered as 16 lowercase hex digits (cache file stem / protocol key).
[[nodiscard]] std::string hash_hex(std::uint64_t hash);

/// Outcome of decoding a module image.
struct ModuleLoadResult {
  /// The decoded, verified module; null when `report` carries errors.
  std::shared_ptr<const Module> module;
  /// B215/B216 structural findings plus the bytecode verifier's report.
  analysis::Report report;
  /// The source hash recorded in the image header (0 for hand-built
  /// images); cache layers compare it against the key they looked up.
  std::uint64_t source_hash = 0;

  [[nodiscard]] bool ok() const { return module != nullptr; }
};

/// Serializes `m` (with `hash` in the header) onto `os` / into a string.
void write_module(std::ostream& os, const Module& m, std::uint64_t hash = 0);
[[nodiscard]] std::string module_bytes(const Module& m,
                                       std::uint64_t hash = 0);

/// Decodes a module image. Never throws on malformed input; with
/// `verify` (default) the decoded module must also pass the bytecode
/// verifier before it is surfaced.
[[nodiscard]] ModuleLoadResult load_module(std::string_view bytes,
                                           bool verify = true);

/// File conveniences. write_module_file throws proteus::Error on I/O
/// failure; load_module_file reports an unreadable file as a B215
/// diagnostic (same contract as malformed bytes).
void write_module_file(const std::string& path, const Module& m,
                       std::uint64_t hash = 0);
[[nodiscard]] ModuleLoadResult load_module_file(const std::string& path,
                                                bool verify = true);

}  // namespace proteus::vm
