#include "vm/vm.hpp"

#include <chrono>
#include <optional>
#include <utility>

#include "analysis/lifetime.hpp"
#include "obs/tracer.hpp"
#include "rt/governor.hpp"
#include "vl/arena.hpp"
#include "vl/backend.hpp"
#include "vl/check.hpp"
#include "vm/verify.hpp"

namespace proteus::vm {

using kernels::VValue;
using Clock = std::chrono::steady_clock;

namespace {

const std::vector<std::uint8_t> kAllFrames;  // empty lifted set

/// Arena cap when the plan's bound is unbounded (flattened recursion):
/// generous enough that quicksort-scale workloads recycle freely, small
/// enough that a pathological run cannot bank unbounded memory.
constexpr std::uint64_t kDefaultArenaCap = std::uint64_t{256} << 20;

[[noreturn]] void unknown_function(const std::string& name) {
  // Same diagnostic as the tree executor so the engines stay
  // indistinguishable to the differential harness.
  throw EvalError("vector executor: unknown function '" + name +
                  "' (was its parallel extension generated?)");
}

}  // namespace

VM::VM(std::shared_ptr<const Module> module, VMOptions options)
    : module_(std::move(module)), options_(options) {
  PROTEUS_REQUIRE(EvalError, module_ != nullptr, "vm: null module");
  if (options_.verify) verify_module_or_throw(*module_);
}

const analysis::FunctionPlan* VM::plan_of(std::uint32_t index) const {
  if (!options_.arena || module_->plan == nullptr) return nullptr;
  if (index >= module_->plan->functions.size()) return nullptr;
  const analysis::FunctionPlan& fp = module_->plan->functions[index];
  // A plan out of step with the code (hand-edited module, loader with
  // verification off) is ignored rather than trusted.
  if (fp.death_off.size() !=
      module_->functions[index].code.size() + 1) {
    return nullptr;
  }
  return &fp;
}

void VM::admit_root(const analysis::FunctionPlan* fp,
                    const std::vector<VValue>& args, const std::string& name,
                    std::uint64_t* arena_cap) {
  *arena_cap = 0;
  if (fp == nullptr && !options_.admission) return;
  // Admission consults the plan even when arena execution is off.
  const analysis::MemoryPlan* plan = module_->plan.get();
  const analysis::FunctionPlan* bound_fp = fp;
  if (bound_fp == nullptr && plan != nullptr) {
    auto it = module_->fn_index.find(name);
    if (it != module_->fn_index.end() &&
        it->second < plan->functions.size()) {
      bound_fp = &plan->functions[it->second];
    }
  }
  if (bound_fp == nullptr) return;
  const std::uint64_t n = analysis::input_scale(args);
  const analysis::SymBound& bound = bound_fp->peak_bytes;
  if (options_.admission && !bound.is_top()) {
    const std::uint64_t limit = rt::max_resident_limit();
    if (limit != 0 && bound.eval(n) > limit) {
      rt::raise(rt::Trap::kMemory,
                "admission: static peak bound " +
                    std::to_string(bound.eval(n)) + " bytes for '" + name +
                    "' exceeds the resident-byte budget (" +
                    std::to_string(limit) + ")",
                "vm.admit");
    }
  }
  if (fp != nullptr) {
    // The arena banks at most half the published bound, so live buffers
    // plus pooled ones stay within it (docs/VM.md).
    *arena_cap = bound.is_top() ? kDefaultArenaCap : bound.eval(n) / 2;
    vl::stats().arena_slots = fp->slots.size();
    vl::stats().arena_bytes_planned = bound.is_top() ? 0 : bound.eval(n);
  }
}

VValue VM::call_function(const std::string& name, std::vector<VValue> args) {
  auto it = module_->fn_index.find(name);
  if (it == module_->fn_index.end()) unknown_function(name);
  std::uint64_t arena_cap = 0;
  admit_root(plan_of(it->second), args, name, &arena_cap);
  std::optional<vl::arena::Scope> scope;
  if (arena_cap != 0) scope.emplace(arena_cap);
  return invoke(it->second, std::move(args), name);
}

VValue VM::eval_entry() {
  PROTEUS_REQUIRE(EvalError, module_->entry >= 0,
                  "vm: module has no compiled entry expression");
  const auto entry = static_cast<std::uint32_t>(module_->entry);
  const Function& fn = module_->functions[entry];
  const analysis::FunctionPlan* fp = plan_of(entry);
  std::uint64_t arena_cap = 0;
  admit_root(fp, {}, fn.name, &arena_cap);
  std::optional<vl::arena::Scope> scope;
  if (arena_cap != 0) scope.emplace(arena_cap);
  return run(fn, std::vector<VValue>(fn.n_regs), fp);
}

VValue VM::invoke(std::uint32_t index, std::vector<VValue> args,
                  const std::string& name) {
  const Function& fn = module_->functions[index];
  PROTEUS_REQUIRE(EvalError, args.size() == fn.n_params,
                  "'" + name + "' called with wrong argument count");
  if (++call_depth_ > rt::depth_limit()) {
    --call_depth_;
    rt::raise(rt::Trap::kDepth, "call depth limit exceeded in '" + name + "'",
              "vm");
  }
  stats_.calls += 1;
  args.resize(fn.n_regs);
  VValue result = run(fn, std::move(args), plan_of(index));
  --call_depth_;
  return result;
}

VValue VM::run(const Function& fn, std::vector<VValue> regs,
               const analysis::FunctionPlan* fp) {
  const Instr* code = fn.code.data();
  const bool profile = options_.profile;
  // Plan-backed last-use clearing: after pc's operands are consumed, the
  // registers the plan proves dead reset to the default VValue. Dropping
  // the last reference destroys the backing buffers, which the active
  // arena scope then recycles (vl/arena.hpp).
  const auto clear_dead = [&](std::size_t at) {
    if (fp == nullptr) return;
    for (std::uint32_t i = fp->death_off[at]; i < fp->death_off[at + 1];
         ++i) {
      regs[fp->death_regs[i]] = VValue();
    }
  };
  std::size_t pc = 0;
  for (;;) {
    // One cooperative governor check per instruction: cancellation,
    // deadline, and trips deferred from parallel kernel regions surface
    // here with the current pc. Inactive cost is one relaxed load.
    rt::poll("vm", static_cast<std::int64_t>(pc));
    const Instr& in = code[pc];
    const std::size_t at = pc;
    ++pc;
    stats_.instructions += 1;
    OpProfile& prof = stats_.per_op[static_cast<std::size_t>(in.op)];
    prof.count += 1;
    const std::uint16_t* a = fn.arg_pool.data() + in.args_off;
    const auto gather = [&](std::size_t from) {
      std::vector<VValue> vals;
      vals.reserve(in.args_count - from);
      for (std::size_t i = from; i < in.args_count; ++i) {
        vals.push_back(regs[a[i]]);
      }
      return vals;
    };

    // Movement and control: no vl work to attribute.
    switch (in.op) {
      case Op::kConst:
      case Op::kLoadFun:
        regs[in.dst] = module_->constants[static_cast<std::size_t>(in.aux)];
        continue;
      case Op::kMove:
        regs[in.dst] = regs[a[0]];
        clear_dead(at);
        continue;
      case Op::kJump:
        pc = static_cast<std::size_t>(in.aux);
        continue;
      case Op::kJumpIfFalse: {
        const bool cond = regs[a[0]].as_bool();
        clear_dead(at);
        if (!cond) pc = static_cast<std::size_t>(in.aux);
        continue;
      }
      case Op::kRet:
        return std::move(regs[a[0]]);
      case Op::kCall: {
        if (in.aux < 0) {
          unknown_function(module_->names[static_cast<std::size_t>(in.aux2)]);
        }
        const auto callee = static_cast<std::uint32_t>(in.aux);
        std::vector<VValue> vals = gather(0);
        clear_dead(at);  // free caller copies for the callee's lifetime
        regs[in.dst] =
            invoke(callee, std::move(vals), module_->functions[callee].name);
        continue;
      }
      case Op::kCallIndirect: {
        const VValue& f = regs[a[0]];
        const std::string target =
            in.depth == 0 ? f.fun_name()
                          : lang::extension_name(f.fun_name(), 1);
        auto it = module_->fn_index.find(target);
        if (it == module_->fn_index.end()) unknown_function(target);
        std::vector<VValue> vals = gather(1);
        clear_dead(at);
        regs[in.dst] = invoke(it->second, std::move(vals), target);
        continue;
      }
      default:
        break;
    }

    // Kernel opcodes: attribute vl element work (and, when profiling,
    // wall time) to this opcode family. The span costs one branch per
    // kernel instruction when no tracer is installed.
    obs::Span span("op", op_name(in.op));
    const std::uint64_t work0 = vl::stats().element_work;
    const Clock::time_point t0 = profile ? Clock::now() : Clock::time_point{};
    VValue out;
    switch (in.op) {
      case Op::kScalar:
      case Op::kElementwise:
      case Op::kBuild:
      case Op::kGather:
      case Op::kPack:
      case Op::kReduce:
      case Op::kSegment: {
        stats_.prim_applications += 1;
        stats_.per_prim[in.prim] += 1;
        std::vector<VValue> vals = gather(0);
        out = in.depth == 0
                  ? kernels::apply_prim0(in.prim, vals)
                  : kernels::apply_prim1(
                        in.prim, vals,
                        in.lifted >= 0
                            ? fn.lifted_sets[static_cast<std::size_t>(
                                  in.lifted)]
                            : kAllFrames,
                        options_.prims);
        break;
      }
      case Op::kExtract:
        stats_.prim_applications += 1;
        stats_.per_prim[in.prim] += 1;
        out = VValue::seq(seq::extract(regs[a[0]].as_seq(), in.depth));
        break;
      case Op::kInsert:
        stats_.prim_applications += 1;
        stats_.per_prim[in.prim] += 1;
        out = VValue::seq(seq::insert(regs[a[0]].as_seq(),
                                      regs[a[1]].as_seq(), in.depth));
        break;
      case Op::kEmptyFrame:
        stats_.prim_applications += 1;
        stats_.per_prim[in.prim] += 1;
        out = kernels::empty_frame_value(
            regs[a[0]], in.depth,
            module_->types[static_cast<std::size_t>(in.aux)]);
        break;
      case Op::kBranchEmpty: {
        // The fused R2d guard still counts as an any_true application so
        // engine stats stay comparable.
        stats_.prim_applications += 1;
        stats_.per_prim[lang::Prim::kAnyTrue] += 1;
        const bool any = kernels::any_true_frame(regs[a[0]]);
        clear_dead(at);
        prof.element_work += vl::stats().element_work - work0;
        if (span.active()) {
          span.counter("elements", vl::stats().element_work - work0);
        }
        if (profile) {
          prof.nanos += static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now() - t0)
                  .count());
        }
        if (!any) pc = static_cast<std::size_t>(in.aux);
        continue;
      }
      case Op::kSeqCons:
        out = in.depth == 1
                  ? kernels::seq_cons1(gather(0))
                  : kernels::seq_cons0(
                        gather(0),
                        in.aux >= 0
                            ? module_->types[static_cast<std::size_t>(in.aux)]
                            : nullptr);
        break;
      case Op::kTuple:
        out = kernels::tuple_cons(gather(0), in.depth);
        break;
      case Op::kTupleGet:
        out = kernels::tuple_get(regs[a[0]], in.aux, in.depth);
        break;
      case Op::kFusedMap: {
        const kernels::FusedExpr& fe =
            fn.fused[static_cast<std::size_t>(in.aux)];
        std::vector<VValue> vals;
        vals.reserve(in.args_count);
        for (std::size_t i = 0; i < in.args_count; ++i) {
          // A dying register moves into the kernel so its buffer can be
          // reused in place; flags mark only the LAST occurrence of a
          // register, so earlier duplicate slots still see the value.
          if ((fe.input_flags[i] & kernels::kFusedLastUse) != 0) {
            vals.push_back(std::move(regs[a[i]]));
          } else {
            vals.push_back(regs[a[i]]);
          }
        }
        // Every constituent prim still counts as one application, exactly
        // as the unfused chain would have reported.
        for (const kernels::MicroOp& mo : fe.nodes) {
          if (mo.kind == kernels::MicroOp::Kind::kPrim) {
            stats_.prim_applications += 1;
            stats_.per_prim[mo.prim] += 1;
          }
        }
        out = kernels::eval_fused(fe, std::move(vals));
        break;
      }
      default:
        throw EvalError("vm: corrupt instruction stream");
    }
    prof.element_work += vl::stats().element_work - work0;
    if (span.active()) {
      span.counter("elements", vl::stats().element_work - work0);
    }
    if (profile) {
      prof.nanos += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               t0)
              .count());
    }
    regs[in.dst] = std::move(out);
    clear_dead(at);
  }
}

}  // namespace proteus::vm
