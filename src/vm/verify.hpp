// verify.hpp — the VCODE bytecode verifier: a load-time linear pass over a
// compiled vm::Module that proves the instruction stream is safe to
// dispatch before the VM ever executes it.
//
// The dispatch loop in vm.cpp indexes registers, constant/type/name pools,
// and jump targets without bounds checks — that is what makes it fast, and
// it is sound only for modules the compiler produced. This verifier
// re-establishes that soundness for modules from any source: it checks
// opcode operand arity, register-file bounds, pool-index validity, jump
// targets, call argument counts against callee signatures, and — via a
// worklist dataflow over the instruction-level control-flow graph — that no
// register is read before every path to the read has written it, and that
// register kinds (scalar / sequence-of-depth-d / tuple / function) are
// consistent with each use, including the descriptor-depth compatibility
// of extract/insert surgery (Figure 2).
//
// Diagnostic codes (B2xx; full table in docs/ANALYSIS.md):
//   B201 module table invalid (entry / fn_index out of range)
//   B202 control flow falls off the end of a function
//   B203 register operand outside the function's register file
//   B204 operand list outside the function's argument pool
//   B205 opcode operand arity / selector mismatch
//   B206 pool index out of range (constants / types / names / lift sets)
//   B207 jump target out of range
//   B208 call argument count disagrees with the callee's parameters
//   B209 lift-flag set size disagrees with the operand count
//   B210 register possibly read before it is written
//   B211 register kind incompatible with its use (depth surgery, guards)
//   B212 depth field out of range for the opcode
//
// Verification is on by default at module load (vm::VMOptions::verify) and
// after pipeline assembly (xform::PipelineOptions::verify_vcode); pass
// `--no-verify-vcode` to proteusc to skip it.
#pragma once

#include "analysis/diagnostic.hpp"
#include "vm/bytecode.hpp"

namespace proteus::vm {

/// Verifies a compiled module; never throws — all findings land in the
/// returned Report.
[[nodiscard]] analysis::Report verify_module(const Module& m);

/// Verifies and throws analysis::AnalysisError when the module is rejected.
void verify_module_or_throw(const Module& m);

}  // namespace proteus::vm
