#include "vm/disasm.hpp"

#include <iomanip>
#include <sstream>

#include "analysis/lifetime.hpp"

namespace proteus::vm {

const char* op_name(Op op) {
  switch (op) {
    case Op::kConst:        return "const";
    case Op::kLoadFun:      return "loadfun";
    case Op::kMove:         return "move";
    case Op::kScalar:       return "scalar";
    case Op::kElementwise:  return "elementwise";
    case Op::kBuild:        return "build";
    case Op::kGather:       return "gather";
    case Op::kPack:         return "pack";
    case Op::kReduce:       return "reduce";
    case Op::kSegment:      return "segment";
    case Op::kExtract:      return "extract";
    case Op::kInsert:       return "insert";
    case Op::kEmptyFrame:   return "empty_frame";
    case Op::kSeqCons:      return "seq_cons";
    case Op::kTuple:        return "tuple";
    case Op::kTupleGet:     return "tuple_get";
    case Op::kFusedMap:     return "fused";
    case Op::kCall:         return "call";
    case Op::kCallIndirect: return "call_ind";
    case Op::kBranchEmpty:  return "brempty";
    case Op::kJump:         return "jump";
    case Op::kJumpIfFalse:  return "jfalse";
    case Op::kRet:          return "ret";
  }
  return "?";
}

namespace {

std::string constant_text(const kernels::VValue& v) {
  if (v.is_int()) return std::to_string(v.as_int());
  if (v.is_real()) {
    std::ostringstream os;
    os << v.as_real();
    return os.str();
  }
  if (v.is_bool()) return v.as_bool() ? "true" : "false";
  if (v.is_fun()) return "&" + v.fun_name();
  return "<aggregate>";
}

std::string reg_list(const Module&, const Function& fn, const Instr& in,
                     std::size_t from = 0) {
  std::string out = "(";
  for (std::size_t i = from; i < in.args_count; ++i) {
    if (i != from) out += ", ";
    // += in two steps: `"r" + to_string(...)` trips GCC 12's
    // -Werror=restrict false positive (PR105651) at -O2+.
    out += 'r';
    out += std::to_string(fn.arg_pool[in.args_off + i]);
  }
  return out + ")";
}

/// Renders node `at` of a fused micro-expression as a prefix tree, leaves
/// shown as their operand registers (broadcast leaves with a ^ prefix).
void fused_tree(std::ostream& os, const Function& fn, const Instr& in,
                const kernels::FusedExpr& fe, std::size_t at) {
  const kernels::MicroOp& mo = fe.nodes[at];
  if (mo.kind == kernels::MicroOp::Kind::kInput) {
    const std::uint8_t flags = fe.input_flags[mo.input];
    if ((flags & kernels::kFusedBroadcast) != 0) os << '^';
    os << 'r' << fn.arg_pool[in.args_off + mo.input];
    if ((flags & kernels::kFusedLastUse) != 0) os << '!';
    return;
  }
  os << lang::prim_name(mo.prim) << '(';
  fused_tree(os, fn, in, fe, mo.a);
  if (lang::prim_arity(mo.prim) == 2) {
    os << ", ";
    fused_tree(os, fn, in, fe, mo.b);
  }
  os << ')';
}

std::string lifted_text(const Function& fn, const Instr& in) {
  if (in.lifted < 0) return "";
  std::string out = " lifted=";
  for (std::uint8_t b :
       fn.lifted_sets[static_cast<std::size_t>(in.lifted)]) {
    out += b != 0 ? '1' : '0';
  }
  return out;
}

void instr_text(std::ostream& os, const Module& m, const Function& fn,
                std::size_t at) {
  const Instr& in = fn.code[at];
  os << std::setw(4) << at << "  " << std::left << std::setw(12)
     << op_name(in.op) << std::right << " ";
  const auto arg0 = [&] { return fn.arg_pool[in.args_off]; };
  const auto aux = [&] { return static_cast<std::size_t>(in.aux); };
  switch (in.op) {
    case Op::kConst:
    case Op::kLoadFun:
      os << "r" << in.dst << " <- " << constant_text(m.constants[aux()]);
      break;
    case Op::kMove:
      os << "r" << in.dst << " <- r" << arg0();
      break;
    case Op::kScalar:
    case Op::kElementwise:
    case Op::kBuild:
    case Op::kGather:
    case Op::kPack:
    case Op::kReduce:
    case Op::kSegment:
      os << "r" << in.dst << " <- " << lang::prim_name(in.prim)
         << (in.depth == 1 ? "^1" : "") << reg_list(m, fn, in)
         << lifted_text(fn, in);
      break;
    case Op::kExtract:
    case Op::kInsert:
      os << "r" << in.dst << " <- " << lang::prim_name(in.prim)
         << reg_list(m, fn, in) << " depth=" << int{in.depth};
      break;
    case Op::kEmptyFrame:
      os << "r" << in.dst << " <- empty_frame(r" << arg0()
         << ") depth=" << int{in.depth};
      break;
    case Op::kSeqCons:
      os << "r" << in.dst << " <- seq" << (in.depth == 1 ? "^1" : "")
         << reg_list(m, fn, in);
      break;
    case Op::kTuple:
      os << "r" << in.dst << " <- tuple" << (in.depth == 1 ? "^1" : "")
         << reg_list(m, fn, in);
      break;
    case Op::kTupleGet:
      os << "r" << in.dst << " <- r" << arg0() << "."
         << in.aux << (in.depth == 1 ? " ^1" : "");
      break;
    case Op::kFusedMap: {
      const kernels::FusedExpr& fe =
          fn.fused[static_cast<std::size_t>(in.aux)];
      os << "r" << in.dst << " <- ";
      fused_tree(os, fn, in, fe, fe.nodes.size() - 1);
      os << "  ; " << kernels::fused_prim_count(fe) << " prims";
      break;
    }
    case Op::kCall:
      os << "r" << in.dst << " <- ";
      if (in.aux >= 0) {
        os << m.functions[aux()].name;
      } else {
        os << "<unresolved " << m.names[static_cast<std::size_t>(in.aux2)]
           << ">";
      }
      os << reg_list(m, fn, in);
      break;
    case Op::kCallIndirect:
      os << "r" << in.dst << " <- *r" << arg0()
         << (in.depth == 1 ? "^1" : "") << reg_list(m, fn, in, 1);
      break;
    case Op::kBranchEmpty:
      os << "r" << arg0() << " -> @" << in.aux;
      break;
    case Op::kJump:
      os << "-> @" << in.aux;
      break;
    case Op::kJumpIfFalse:
      os << "r" << arg0() << " -> @" << in.aux;
      break;
    case Op::kRet:
      os << "r" << arg0();
      break;
  }
  os << "\n";
}

}  // namespace

std::string to_text(const Module& module, const Function& fn) {
  std::ostringstream os;
  os << "fun " << fn.name << " (params " << fn.n_params << ", regs "
     << fn.n_regs << ", code " << fn.code.size() << "):\n";
  if (module.plan != nullptr) {
    // The memory plan is per-function and parallel to `functions`.
    for (std::size_t i = 0; i < module.functions.size(); ++i) {
      if (&module.functions[i] == &fn &&
          i < module.plan->functions.size()) {
        os << analysis::plan_to_text(module.plan->functions[i]);
        break;
      }
    }
  }
  for (std::size_t i = 0; i < fn.code.size(); ++i) {
    instr_text(os, module, fn, i);
  }
  return os.str();
}

std::string to_text(const Module& module) {
  std::ostringstream os;
  os << "module: " << module.functions.size() << " function"
     << (module.functions.size() == 1 ? "" : "s") << ", "
     << module.constants.size() << " constant"
     << (module.constants.size() == 1 ? "" : "s") << "\n";
  for (std::size_t i = 0; i < module.functions.size(); ++i) {
    os << "\n";
    if (static_cast<std::int32_t>(i) == module.entry) os << "; entry\n";
    os << to_text(module, module.functions[i]);
  }
  return os.str();
}

}  // namespace proteus::vm
