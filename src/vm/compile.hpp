// compile.hpp — the bytecode compiler: lowers a post-T1 V program (every
// call depth <= 1, no iterators) into a linked vm::Module.
//
// Lowering is a single syntax-directed pass per function:
//
//   * let-bound variables and parameters become slot-addressed virtual
//     registers (a scoped free-list keeps frames small),
//   * literals intern into the module constant pool,
//   * direct calls resolve to function indices at compile time,
//   * `if any_true(M)` — rule R2d's guard on flattened recursion —
//     fuses into the single kBranchEmpty opcode,
//   * extract/insert fold their static depth literal into the instruction.
//
// The input must satisfy xform::verify_vector_program; feeding untransformed
// P constructs (iterators, unresolved calls, lambdas) throws TransformError.
#pragma once

#include <memory>

#include "lang/ast.hpp"
#include "vm/bytecode.hpp"

namespace proteus::vm {

/// Compiles a V program (e.g. xform::Compiled::vec) and an optional closed
/// V entry expression (compiled as the parameterless `Module::entry`
/// function). Throws TransformError on non-V input. Returned mutable so
/// the pipeline can attach the external calling convention (Signatures)
/// before freezing the module behind shared_ptr<const Module>.
[[nodiscard]] std::shared_ptr<Module> compile_module(
    const lang::Program& program, const lang::ExprPtr& entry = nullptr);

/// The opcode family a (prim, depth) selector lowers to. Shared with the
/// bytecode verifier, which rejects instructions whose opcode disagrees
/// with their selector.
[[nodiscard]] Op family_of(lang::Prim p, int depth);

}  // namespace proteus::vm
