// bytecode.hpp — the VCODE-style linear instruction format the bytecode VM
// executes.
//
// The tree executor re-walks the V-form AST on every call: per-node
// variant dispatch, environment lookups by string, and re-resolution of
// callee functions at every flattened-recursion level. Historically the
// paper's T1 target was not a syntax tree but a *linear* segmented-vector
// instruction stream (VCODE over CVL) run by a small abstract machine;
// this module is that substrate. A V program compiles once into flat
// code — slot-addressed virtual registers, a constant pool, pre-resolved
// call targets, and explicit branches — and the dispatch loop in vm.hpp
// replays it with nothing left to look up.
//
// One opcode covers each vl primitive family (elementwise, build, gather,
// pack, reduce, segment-surgery, extract/insert) with the concrete
// lang::Prim carried as the selector; control flow is kCall / kRet /
// kBranchEmpty — the branch-on-empty-frame that guards the paper's
// flattened recursion (rule R2d's any_true(M) test, fused with its `if`).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernels/fused.hpp"
#include "kernels/vvalue.hpp"
#include "lang/ast.hpp"

namespace proteus::analysis {
struct MemoryPlan;
}  // namespace proteus::analysis

namespace proteus::vm {

/// VM opcodes. The kPrim* block is metadata-rich dispatch: every member
/// funnels into the shared kernel table keyed by `Instr::prim` and
/// `Instr::depth`; the distinction exists so profiles and disassembly
/// group work by vl primitive family.
enum class Op : std::uint8_t {
  // value movement
  kConst,       ///< dst <- constants[aux]
  kLoadFun,     ///< dst <- function value functions[aux].name
  kMove,        ///< dst <- reg args[0]
  // vl primitive families (selector: prim + depth)
  kScalar,      ///< depth-0 scalar arithmetic / comparison / logic
  kElementwise, ///< depth-1 elementwise kernels
  kBuild,       ///< range / range1 / dist (iota + distribute family)
  kGather,      ///< seq_index / seq_index_inner (permute family)
  kPack,        ///< restrict / combine / update (pack + scatter family)
  kReduce,      ///< length / sum / maxval / minval / any / all / any_true
  kSegment,     ///< flatten / concat / reverse / zip (descriptor surgery)
  kExtract,     ///< representation extract (Figure 2)
  kInsert,      ///< representation insert (Figure 2)
  kEmptyFrame,  ///< rule R2d's empty frame; aux = types[] index
  // constructors
  kSeqCons,     ///< sequence literal; depth 0 or 1; aux = types[] index or -1
  kTuple,       ///< tuple construction at depth 0/1
  kTupleGet,    ///< tuple component extraction; aux = 1-origin index
  // superinstructions (emitted by the optimizer in fuse.hpp, never by the
  // assembler)
  kFusedMap,    ///< single-pass elementwise chain; aux = Function::fused idx
  // control
  kCall,        ///< dst <- functions[aux](args); aux2 = name for diagnostics
  kCallIndirect,///< dst <- (reg args[0])^depth(args[1..])
  kBranchEmpty, ///< if !any_true_frame(reg args[0]) then pc <- aux
  kJump,        ///< pc <- aux
  kJumpIfFalse, ///< if !reg args[0] then pc <- aux
  kRet,         ///< return reg args[0]
};

inline constexpr int kNumOps = static_cast<int>(Op::kRet) + 1;

/// Printable mnemonic of an opcode.
[[nodiscard]] const char* op_name(Op op);

/// One VM instruction. Fixed-size: variable-length operand lists live in
/// the owning function's `arg_pool` (args_off/args_count) and the set of
/// broadcast flags in its `lifted_sets` (lifted index).
struct Instr {
  Op op = Op::kRet;
  lang::Prim prim = lang::Prim::kAdd;  ///< selector for the kPrim* block
  std::uint8_t depth = 0;              ///< 0 or 1 (empty_frame: frame depth)
  std::uint16_t dst = 0;               ///< destination register
  std::uint16_t args_count = 0;
  std::uint32_t args_off = 0;          ///< into Function::arg_pool
  std::int32_t lifted = -1;            ///< into Function::lifted_sets, or -1
  std::int32_t aux = -1;               ///< const/fun/type index, branch target
  std::int32_t aux2 = -1;              ///< secondary payload (name index)
};

/// One compiled function: params arrive in registers [0, n_params).
struct Function {
  std::string name;
  std::uint16_t n_params = 0;
  std::uint16_t n_regs = 0;
  std::vector<Instr> code;
  std::vector<std::uint16_t> arg_pool;
  std::vector<std::vector<std::uint8_t>> lifted_sets;
  std::vector<kernels::FusedExpr> fused;  ///< kFusedMap micro-expressions
};

/// External calling convention of one function: the *source-level* (P)
/// parameter and result types that guide boxed-value conversion at the
/// module boundary (kernels::from_boxed / to_boxed). Populated by the
/// pipeline from the type-checked program for user-visible functions (and
/// the entry expression); the `^d` parallel extensions the transformation
/// manufactures are internal and carry no signature. Serialized with the
/// module (vm/module_io.hpp), which is what lets a loaded module be
/// called without any AST in sight.
struct Signature {
  bool present = false;
  std::vector<lang::TypePtr> params;
  lang::TypePtr result;
};

/// A linked module: every function of a V program plus shared pools. The
/// optional entry expression compiles as the parameterless function at
/// index `entry`.
struct Module {
  std::vector<Function> functions;
  std::unordered_map<std::string, std::uint32_t> fn_index;
  std::vector<kernels::VValue> constants;
  std::vector<lang::TypePtr> types;    ///< empty_frame / empty-literal types
  std::vector<std::string> names;      ///< unresolved-call diagnostics
  std::vector<Signature> signatures;   ///< parallel to `functions`; may be
                                       ///< empty for hand-built modules
  std::int32_t entry = -1;

  /// Memory plan computed by analysis::plan_module (one FunctionPlan per
  /// function) — attached by the pipeline's plan-memory stage and by the
  /// PVCM loader; null for hand-built or unplanned modules. Shared and
  /// immutable: VMs read it concurrently.
  std::shared_ptr<const analysis::MemoryPlan> plan;

  [[nodiscard]] const Function* find(const std::string& name) const {
    auto it = fn_index.find(name);
    return it == fn_index.end() ? nullptr : &functions[it->second];
  }

  /// Signature of function `index`, or null when none was recorded.
  [[nodiscard]] const Signature* signature(std::uint32_t index) const {
    if (index >= signatures.size() || !signatures[index].present) {
      return nullptr;
    }
    return &signatures[index];
  }
};

}  // namespace proteus::vm
