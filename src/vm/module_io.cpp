#include "vm/module_io.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "analysis/lifetime.hpp"
#include "kernels/fused.hpp"
#include "seq/seq.hpp"
#include "vm/verify.hpp"

namespace proteus::vm {

namespace {

using kernels::FusedExpr;
using kernels::MicroOp;
using kernels::VValue;
using lang::Prim;
using lang::TypeKind;
using lang::TypePtr;
using seq::Array;

// Out-of-range enum payloads are rejected at decode: a switch over a
// smuggled enumerator is the one corruption the bytecode verifier cannot
// see (it trusts the enums it inspects).
constexpr std::uint8_t kMaxOp = static_cast<std::uint8_t>(Op::kRet);
constexpr std::uint8_t kMaxPrim = static_cast<std::uint8_t>(Prim::kAnyTrue);
constexpr std::uint8_t kMaxTypeKind = static_cast<std::uint8_t>(TypeKind::kFun);

/// Recursion ceiling for decoded types / arrays / tuple values: deep
/// enough for any program the pipeline emits, shallow enough that a
/// crafted image cannot overflow the decoder's stack.
constexpr int kMaxDecodeDepth = 200;

// VValue wire tags.
enum : std::uint8_t {
  kValInt = 0,
  kValReal = 1,
  kValBool = 2,
  kValSeq = 3,
  kValTuple = 4,
  kValFun = 5,
};

// ---- encoding ---------------------------------------------------------------

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) { le(v); }
  void u32(std::uint32_t v) { le(v); }
  void u64(std::uint64_t v) { le(v); }
  void i32(std::int32_t v) { le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { le(static_cast<std::uint64_t>(v)); }
  void f64(double v) { le(std::bit_cast<std::uint64_t>(v)); }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s);
  }

  void bytes(const std::uint8_t* p, std::size_t n) {
    out_.append(reinterpret_cast<const char*>(p), n);
  }

  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  template <typename T>
  void le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }

  std::string out_;
};

void write_type(Writer& w, const TypePtr& t) {
  w.u8(static_cast<std::uint8_t>(t->kind()));
  switch (t->kind()) {
    case TypeKind::kInt:
    case TypeKind::kReal:
    case TypeKind::kBool:
      break;
    case TypeKind::kSeq:
      write_type(w, t->elem());
      break;
    case TypeKind::kTuple: {
      const auto& comps = t->components();
      w.u32(static_cast<std::uint32_t>(comps.size()));
      for (const TypePtr& c : comps) write_type(w, c);
      break;
    }
    case TypeKind::kFun: {
      const auto params = t->params();
      w.u32(static_cast<std::uint32_t>(params.size()));
      for (const TypePtr& p : params) write_type(w, p);
      write_type(w, t->result());
      break;
    }
  }
}

void write_array(Writer& w, const Array& a) {
  w.u8(static_cast<std::uint8_t>(a.kind()));
  switch (a.kind()) {
    case Array::Kind::kInt: {
      const auto& v = a.int_values();
      w.u64(static_cast<std::uint64_t>(v.size()));
      for (vl::Int x : v) w.i64(x);
      break;
    }
    case Array::Kind::kReal: {
      const auto& v = a.real_values();
      w.u64(static_cast<std::uint64_t>(v.size()));
      for (vl::Real x : v) w.f64(x);
      break;
    }
    case Array::Kind::kBool: {
      const auto& v = a.bool_values();
      w.u64(static_cast<std::uint64_t>(v.size()));
      for (vl::Bool x : v) w.u8(x);
      break;
    }
    case Array::Kind::kTuple: {
      const auto& comps = a.components();
      w.u32(static_cast<std::uint32_t>(comps.size()));
      for (const Array& c : comps) write_array(w, c);
      break;
    }
    case Array::Kind::kNested: {
      const auto& lens = a.lengths();
      w.u64(static_cast<std::uint64_t>(lens.size()));
      for (vl::Int x : lens) w.i64(x);
      write_array(w, a.inner());
      break;
    }
  }
}

void write_value(Writer& w, const VValue& v) {
  if (v.is_int()) {
    w.u8(kValInt);
    w.i64(v.as_int());
  } else if (v.is_real()) {
    w.u8(kValReal);
    w.f64(v.as_real());
  } else if (v.is_bool()) {
    w.u8(kValBool);
    w.u8(v.as_bool() ? 1 : 0);
  } else if (v.is_seq()) {
    w.u8(kValSeq);
    write_array(w, v.as_seq());
  } else if (v.is_tuple()) {
    w.u8(kValTuple);
    const auto& comps = v.as_tuple();
    w.u32(static_cast<std::uint32_t>(comps.size()));
    for (const VValue& c : comps) write_value(w, c);
  } else {
    w.u8(kValFun);
    w.str(v.fun_name());
  }
}

void write_function(Writer& w, const Function& f) {
  w.str(f.name);
  w.u16(f.n_params);
  w.u16(f.n_regs);
  w.u32(static_cast<std::uint32_t>(f.code.size()));
  for (const Instr& in : f.code) {
    w.u8(static_cast<std::uint8_t>(in.op));
    w.u8(static_cast<std::uint8_t>(in.prim));
    w.u8(in.depth);
    w.u16(in.dst);
    w.u16(in.args_count);
    w.u32(in.args_off);
    w.i32(in.lifted);
    w.i32(in.aux);
    w.i32(in.aux2);
  }
  w.u32(static_cast<std::uint32_t>(f.arg_pool.size()));
  for (std::uint16_t a : f.arg_pool) w.u16(a);
  w.u32(static_cast<std::uint32_t>(f.lifted_sets.size()));
  for (const auto& set : f.lifted_sets) {
    w.u32(static_cast<std::uint32_t>(set.size()));
    if (!set.empty()) w.bytes(set.data(), set.size());
  }
  w.u32(static_cast<std::uint32_t>(f.fused.size()));
  for (const FusedExpr& e : f.fused) {
    w.u32(static_cast<std::uint32_t>(e.nodes.size()));
    for (const MicroOp& n : e.nodes) {
      w.u8(static_cast<std::uint8_t>(n.kind));
      w.u8(static_cast<std::uint8_t>(n.prim));
      w.u8(n.a);
      w.u8(n.b);
      w.u8(n.input);
    }
    w.u32(static_cast<std::uint32_t>(e.input_flags.size()));
    if (!e.input_flags.empty()) {
      w.bytes(e.input_flags.data(), e.input_flags.size());
    }
  }
}

// ---- decoding ---------------------------------------------------------------

/// Bounds-checked cursor over the image bytes. Every read either succeeds
/// in full or latches a failure (with the offending offset) and leaves all
/// further reads inert, so decode code can stay straight-line and test
/// `ok()` at section boundaries.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : data_(bytes) {}

  [[nodiscard]] bool ok() const { return !failed_; }
  [[nodiscard]] std::size_t offset() const { return off_; }
  [[nodiscard]] std::size_t remaining() const {
    return failed_ ? 0 : data_.size() - off_;
  }

  void fail() { failed_ = true; }

  std::uint8_t u8() { return take<std::uint8_t>(); }
  std::uint16_t u16() { return take<std::uint16_t>(); }
  std::uint32_t u32() { return take<std::uint32_t>(); }
  std::uint64_t u64() { return take<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(take<std::uint32_t>()); }
  std::int64_t i64() { return static_cast<std::int64_t>(take<std::uint64_t>()); }
  double f64() { return std::bit_cast<double>(take<std::uint64_t>()); }

  /// A length prefix for items of at least `item_size` bytes each; any
  /// count the remaining bytes cannot possibly satisfy is rejected before
  /// a single element is allocated (a 4-byte header cannot demand a
  /// gigabyte of vector).
  std::uint64_t count64(std::size_t item_size) {
    const std::uint64_t n = u64();
    if (failed_) return 0;
    if (item_size != 0 && n > remaining() / item_size) {
      failed_ = true;
      return 0;
    }
    return n;
  }

  std::uint32_t count32(std::size_t item_size) {
    const std::uint32_t n = u32();
    if (failed_) return 0;
    if (item_size != 0 && n > remaining() / item_size) {
      failed_ = true;
      return 0;
    }
    return n;
  }

  std::string str() {
    const std::uint32_t n = count32(1);
    if (failed_) return {};
    std::string s(data_.substr(off_, n));
    off_ += n;
    return s;
  }

  void bytes(std::uint8_t* dst, std::size_t n) {
    if (failed_ || n > remaining()) {
      failed_ = true;
      return;
    }
    std::memcpy(dst, data_.data() + off_, n);
    off_ += n;
  }

 private:
  template <typename T>
  T take() {
    if (failed_ || sizeof(T) > remaining()) {
      failed_ = true;
      return T{};
    }
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(
          v | static_cast<T>(static_cast<std::uint8_t>(data_[off_ + i]))
                  << (8 * i));
    }
    off_ += sizeof(T);
    return v;
  }

  std::string_view data_;
  std::size_t off_ = 0;
  bool failed_ = false;
};

TypePtr read_type(Reader& r, int depth) {
  if (depth > kMaxDecodeDepth) {
    r.fail();
    return nullptr;
  }
  const std::uint8_t kind = r.u8();
  if (!r.ok() || kind > kMaxTypeKind) {
    r.fail();
    return nullptr;
  }
  switch (static_cast<TypeKind>(kind)) {
    case TypeKind::kInt:
      return lang::Type::int_();
    case TypeKind::kReal:
      return lang::Type::real();
    case TypeKind::kBool:
      return lang::Type::bool_();
    case TypeKind::kSeq: {
      TypePtr elem = read_type(r, depth + 1);
      return r.ok() ? lang::Type::seq(std::move(elem)) : nullptr;
    }
    case TypeKind::kTuple: {
      const std::uint32_t n = r.count32(1);
      if (!r.ok() || n == 0) {
        r.fail();
        return nullptr;
      }
      std::vector<TypePtr> comps;
      comps.reserve(n);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        comps.push_back(read_type(r, depth + 1));
      }
      return r.ok() ? lang::Type::tuple(std::move(comps)) : nullptr;
    }
    case TypeKind::kFun: {
      const std::uint32_t n = r.count32(1);
      std::vector<TypePtr> params;
      params.reserve(r.ok() ? n : 0);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        params.push_back(read_type(r, depth + 1));
      }
      TypePtr result = r.ok() ? read_type(r, depth + 1) : nullptr;
      return r.ok() ? lang::Type::fun(std::move(params), std::move(result))
                    : nullptr;
    }
  }
  r.fail();
  return nullptr;
}

vl::IntVec read_int_vec(Reader& r) {
  const std::uint64_t n = r.count64(8);
  std::vector<vl::Int> v;
  v.reserve(r.ok() ? static_cast<std::size_t>(n) : 0);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) v.push_back(r.i64());
  return vl::IntVec(std::move(v));
}

Array read_array(Reader& r, int depth) {
  if (depth > kMaxDecodeDepth) {
    r.fail();
    return Array::ints(vl::IntVec{});
  }
  const std::uint8_t kind = r.u8();
  if (!r.ok() || kind > static_cast<std::uint8_t>(Array::Kind::kNested)) {
    r.fail();
    return Array::ints(vl::IntVec{});
  }
  switch (static_cast<Array::Kind>(kind)) {
    case Array::Kind::kInt:
      return Array::ints(read_int_vec(r));
    case Array::Kind::kReal: {
      const std::uint64_t n = r.count64(8);
      std::vector<vl::Real> v;
      v.reserve(r.ok() ? static_cast<std::size_t>(n) : 0);
      for (std::uint64_t i = 0; i < n && r.ok(); ++i) v.push_back(r.f64());
      return Array::reals(vl::RealVec(std::move(v)));
    }
    case Array::Kind::kBool: {
      const std::uint64_t n = r.count64(1);
      std::vector<vl::Bool> v(r.ok() ? static_cast<std::size_t>(n) : 0);
      if (!v.empty()) r.bytes(v.data(), v.size());
      return Array::bools(vl::BoolVec(std::move(v)));
    }
    case Array::Kind::kTuple: {
      const std::uint32_t n = r.count32(1);
      if (!r.ok() || n == 0) {
        r.fail();
        return Array::ints(vl::IntVec{});
      }
      std::vector<Array> comps;
      comps.reserve(n);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        comps.push_back(read_array(r, depth + 1));
      }
      if (!r.ok()) return Array::ints(vl::IntVec{});
      return Array::tuple(std::move(comps));  // throws on ragged components
    }
    case Array::Kind::kNested: {
      vl::IntVec lens = read_int_vec(r);
      Array inner = read_array(r, depth + 1);
      if (!r.ok()) return Array::ints(vl::IntVec{});
      // nested() re-enforces the descriptor invariant sum(lens) ==
      // inner.length(); a violation throws and load_module maps it to B215.
      return Array::nested(std::move(lens), std::move(inner));
    }
  }
  r.fail();
  return Array::ints(vl::IntVec{});
}

VValue read_value(Reader& r, int depth) {
  if (depth > kMaxDecodeDepth) {
    r.fail();
    return VValue::ints(0);
  }
  const std::uint8_t tag = r.u8();
  switch (tag) {
    case kValInt:
      return VValue::ints(r.i64());
    case kValReal:
      return VValue::reals(r.f64());
    case kValBool:
      return VValue::bools(r.u8() != 0);
    case kValSeq:
      return VValue::seq(read_array(r, depth + 1));
    case kValTuple: {
      const std::uint32_t n = r.count32(1);
      std::vector<VValue> comps;
      comps.reserve(r.ok() ? n : 0);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        comps.push_back(read_value(r, depth + 1));
      }
      return VValue::tuple(std::move(comps));
    }
    case kValFun:
      return VValue::fun(r.str());
    default:
      r.fail();
      return VValue::ints(0);
  }
}

bool read_function(Reader& r, Function& f) {
  f.name = r.str();
  f.n_params = r.u16();
  f.n_regs = r.u16();

  const std::uint32_t n_code = r.count32(23);  // encoded Instr size
  f.code.reserve(r.ok() ? n_code : 0);
  for (std::uint32_t i = 0; i < n_code && r.ok(); ++i) {
    Instr in;
    const std::uint8_t op = r.u8();
    const std::uint8_t prim = r.u8();
    if (op > kMaxOp || prim > kMaxPrim) {
      r.fail();
      return false;
    }
    in.op = static_cast<Op>(op);
    in.prim = static_cast<Prim>(prim);
    in.depth = r.u8();
    in.dst = r.u16();
    in.args_count = r.u16();
    in.args_off = r.u32();
    in.lifted = r.i32();
    in.aux = r.i32();
    in.aux2 = r.i32();
    f.code.push_back(in);
  }

  const std::uint32_t n_pool = r.count32(2);
  f.arg_pool.reserve(r.ok() ? n_pool : 0);
  for (std::uint32_t i = 0; i < n_pool && r.ok(); ++i) {
    f.arg_pool.push_back(r.u16());
  }

  const std::uint32_t n_sets = r.count32(4);
  f.lifted_sets.reserve(r.ok() ? n_sets : 0);
  for (std::uint32_t i = 0; i < n_sets && r.ok(); ++i) {
    const std::uint32_t len = r.count32(1);
    std::vector<std::uint8_t> set(r.ok() ? len : 0);
    if (!set.empty()) r.bytes(set.data(), set.size());
    f.lifted_sets.push_back(std::move(set));
  }

  const std::uint32_t n_fused = r.count32(8);
  f.fused.reserve(r.ok() ? n_fused : 0);
  for (std::uint32_t i = 0; i < n_fused && r.ok(); ++i) {
    FusedExpr e;
    const std::uint32_t n_nodes = r.count32(5);
    if (!r.ok() || n_nodes == 0 || n_nodes > kernels::kMaxFusedNodes) {
      r.fail();
      return false;
    }
    e.nodes.reserve(n_nodes);
    for (std::uint32_t j = 0; j < n_nodes && r.ok(); ++j) {
      MicroOp n;
      const std::uint8_t kind = r.u8();
      const std::uint8_t prim = r.u8();
      n.a = r.u8();
      n.b = r.u8();
      n.input = r.u8();
      if (kind > static_cast<std::uint8_t>(MicroOp::Kind::kPrim) ||
          prim > kMaxPrim) {
        r.fail();
        return false;
      }
      n.kind = static_cast<MicroOp::Kind>(kind);
      n.prim = static_cast<Prim>(prim);
      // The fused evaluator walks the post-order micro-program without
      // bounds checks (the optimizer only emits well-formed expressions);
      // a loaded expression must prove the same well-formedness here —
      // the bytecode verifier does not look inside superinstructions.
      if (n.kind == MicroOp::Kind::kPrim &&
          (!kernels::fusible_prim(n.prim) || n.a >= j || n.b >= j)) {
        r.fail();
        return false;
      }
      e.nodes.push_back(n);
    }
    const std::uint32_t n_flags = r.count32(1);
    e.input_flags.resize(r.ok() ? n_flags : 0);
    if (!e.input_flags.empty()) {
      r.bytes(e.input_flags.data(), e.input_flags.size());
    }
    for (const MicroOp& n : e.nodes) {
      if (n.kind == MicroOp::Kind::kInput && n.input >= e.input_flags.size()) {
        r.fail();
        return false;
      }
    }
    f.fused.push_back(std::move(e));
  }
  return r.ok();
}

void write_bound(Writer& w, const analysis::SymBound& b) {
  w.u8(b.unbounded ? 1 : 0);
  w.u64(b.c0);
  w.u64(b.c1);
}

analysis::SymBound read_bound(Reader& r) {
  analysis::SymBound b;
  const std::uint8_t unbounded = r.u8();
  if (unbounded > 1) {
    r.fail();
    return b;
  }
  b.unbounded = unbounded != 0;
  b.c0 = r.u64();
  b.c1 = r.u64();
  if (b.unbounded && (b.c0 != 0 || b.c1 != 0)) {
    // Canonical encoding only: top is always {0,0,true}. This keeps the
    // B217 recompute-and-compare byte-exact.
    r.fail();
  }
  return b;
}

void write_plan(Writer& w, const Module& m) {
  const analysis::MemoryPlan* plan = m.plan.get();
  const bool present =
      plan != nullptr && plan->functions.size() == m.functions.size();
  w.u8(present ? 1 : 0);
  if (!present) return;
  for (const analysis::FunctionPlan& fp : plan->functions) {
    write_bound(w, fp.peak_bytes);
    w.u32(fp.static_allocs);
    w.u32(static_cast<std::uint32_t>(fp.death_off.size()));
    for (std::uint32_t x : fp.death_off) w.u32(x);
    w.u32(static_cast<std::uint32_t>(fp.death_regs.size()));
    for (std::uint16_t x : fp.death_regs) w.u16(x);
    w.u32(static_cast<std::uint32_t>(fp.reg_slot.size()));
    for (std::int32_t x : fp.reg_slot) w.i32(x);
    w.u32(static_cast<std::uint32_t>(fp.slots.size()));
    for (const analysis::SlotPlan& s : fp.slots) {
      w.u8(static_cast<std::uint8_t>(s.kind));
      write_bound(w, s.elems);
    }
  }
}

/// Decodes the v2 plan section into `plan`; false (reader failed) on
/// malformed bytes. `n_functions` anchors the per-function record count.
bool read_plan(Reader& r, std::size_t n_functions,
               analysis::MemoryPlan& plan) {
  plan.functions.resize(n_functions);
  for (std::size_t i = 0; i < n_functions && r.ok(); ++i) {
    analysis::FunctionPlan& fp = plan.functions[i];
    fp.peak_bytes = read_bound(r);
    fp.static_allocs = r.u32();
    const std::uint32_t n_off = r.count32(4);
    fp.death_off.reserve(r.ok() ? n_off : 0);
    for (std::uint32_t j = 0; j < n_off && r.ok(); ++j) {
      fp.death_off.push_back(r.u32());
    }
    const std::uint32_t n_regs = r.count32(2);
    fp.death_regs.reserve(r.ok() ? n_regs : 0);
    for (std::uint32_t j = 0; j < n_regs && r.ok(); ++j) {
      fp.death_regs.push_back(r.u16());
    }
    const std::uint32_t n_slots_map = r.count32(4);
    fp.reg_slot.reserve(r.ok() ? n_slots_map : 0);
    for (std::uint32_t j = 0; j < n_slots_map && r.ok(); ++j) {
      fp.reg_slot.push_back(r.i32());
    }
    const std::uint32_t n_slots = r.count32(17);  // bound + kind
    fp.slots.reserve(r.ok() ? n_slots : 0);
    for (std::uint32_t j = 0; j < n_slots && r.ok(); ++j) {
      const std::uint8_t kind = r.u8();
      if (kind > static_cast<std::uint8_t>(analysis::SlotKind::kUnknown)) {
        r.fail();
        break;
      }
      analysis::SlotPlan sp;
      sp.kind = static_cast<analysis::SlotKind>(kind);
      sp.elems = read_bound(r);
      fp.slots.push_back(sp);
    }
  }
  return r.ok();
}

analysis::Diagnostic structural(std::string code, std::string message) {
  analysis::Diagnostic d;
  d.code = std::move(code);
  d.message = std::move(message);
  d.function = "<module>";
  d.rule = "VCODE";
  return d;
}

}  // namespace

std::uint64_t source_hash(std::string_view source,
                          std::string_view options_tag) {
  // FNV-1a 64-bit; the 0x1F separator keeps ("ab","c") and ("a","bc")
  // distinct.
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::string_view s) {
    for (char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001b3ull;
    }
  };
  mix(source);
  h ^= 0x1F;
  h *= 0x100000001b3ull;
  mix(options_tag);
  return h;
}

std::string options_tag(bool optimize, bool verify) {
  std::string tag = optimize ? "O1" : "O0";
  tag += verify ? ":v" : ":nv";
  return tag;
}

std::string hash_hex(std::uint64_t hash) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = digits[hash & 0xF];
    hash >>= 4;
  }
  return s;
}

void write_module(std::ostream& os, const Module& m, std::uint64_t hash) {
  const std::string bytes = module_bytes(m, hash);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string module_bytes(const Module& m, std::uint64_t hash) {
  Writer w;
  w.u32(kModuleMagic);
  w.u32(kModuleVersion);
  w.u64(hash);

  w.u32(static_cast<std::uint32_t>(m.functions.size()));
  for (const Function& f : m.functions) write_function(w, f);

  w.u32(static_cast<std::uint32_t>(m.constants.size()));
  for (const VValue& c : m.constants) write_value(w, c);

  w.u32(static_cast<std::uint32_t>(m.types.size()));
  for (const TypePtr& t : m.types) write_type(w, t);

  w.u32(static_cast<std::uint32_t>(m.names.size()));
  for (const std::string& n : m.names) w.str(n);

  w.u32(static_cast<std::uint32_t>(m.signatures.size()));
  for (const Signature& s : m.signatures) {
    const bool present = s.present && s.result != nullptr;
    w.u8(present ? 1 : 0);
    if (!present) continue;
    w.u32(static_cast<std::uint32_t>(s.params.size()));
    for (const TypePtr& p : s.params) write_type(w, p);
    write_type(w, s.result);
  }

  w.i32(m.entry);

  write_plan(w, m);
  return w.take();
}

ModuleLoadResult load_module(std::string_view bytes, bool verify) {
  ModuleLoadResult result;
  Reader r(bytes);

  const std::uint32_t magic = r.u32();
  const std::uint32_t version = r.u32();
  result.source_hash = r.u64();
  if (!r.ok() || magic != kModuleMagic) {
    result.report.add(structural(
        "B216", "not a VCODE module image (bad magic)"));
    return result;
  }
  if (version != kModuleVersion) {
    result.report.add(structural(
        "B216", "unsupported module format version " +
                    std::to_string(version) + " (this build reads version " +
                    std::to_string(kModuleVersion) + ")"));
    return result;
  }

  auto module = std::make_shared<Module>();
  try {
    const std::uint32_t n_funs = r.count32(9);  // min encoded Function size
    module->functions.reserve(r.ok() ? n_funs : 0);
    for (std::uint32_t i = 0; i < n_funs && r.ok(); ++i) {
      Function f;
      if (!read_function(r, f)) break;
      // Rebuilt rather than serialized: last definition wins, exactly the
      // rule compile_module applies.
      module->fn_index[f.name] = i;
      module->functions.push_back(std::move(f));
    }

    const std::uint32_t n_consts = r.count32(1);
    module->constants.reserve(r.ok() ? n_consts : 0);
    for (std::uint32_t i = 0; i < n_consts && r.ok(); ++i) {
      module->constants.push_back(read_value(r, 0));
    }

    const std::uint32_t n_types = r.count32(1);
    module->types.reserve(r.ok() ? n_types : 0);
    for (std::uint32_t i = 0; i < n_types && r.ok(); ++i) {
      module->types.push_back(read_type(r, 0));
    }

    const std::uint32_t n_names = r.count32(4);
    module->names.reserve(r.ok() ? n_names : 0);
    for (std::uint32_t i = 0; i < n_names && r.ok(); ++i) {
      module->names.push_back(r.str());
    }

    const std::uint32_t n_sigs = r.count32(1);
    module->signatures.resize(r.ok() ? n_sigs : 0);
    for (std::uint32_t i = 0; i < n_sigs && r.ok(); ++i) {
      if (r.u8() == 0) continue;
      Signature& s = module->signatures[i];
      const std::uint32_t n_params = r.count32(1);
      s.params.reserve(r.ok() ? n_params : 0);
      for (std::uint32_t j = 0; j < n_params && r.ok(); ++j) {
        s.params.push_back(read_type(r, 0));
      }
      s.result = r.ok() ? read_type(r, 0) : nullptr;
      s.present = r.ok();
    }

    module->entry = r.i32();

    const std::uint8_t has_plan = r.u8();
    if (r.ok() && has_plan > 1) r.fail();
    if (r.ok() && has_plan == 1) {
      analysis::MemoryPlan plan;
      if (read_plan(r, module->functions.size(), plan)) {
        module->plan =
            std::make_shared<const analysis::MemoryPlan>(std::move(plan));
      }
    }
  } catch (const std::exception& e) {
    // Representation invariants (descriptor sums, ragged tuples, empty
    // tuples) are enforced by the Array/Type constructors; an image that
    // violates them is malformed, not a crash.
    result.report.add(structural(
        "B215", std::string("module image malformed: ") + e.what()));
    return result;
  }

  if (!r.ok()) {
    result.report.add(structural(
        "B215", "module image truncated or malformed at byte offset " +
                    std::to_string(r.offset())));
    return result;
  }
  if (r.remaining() != 0) {
    result.report.add(structural(
        "B215", std::to_string(r.remaining()) +
                    " trailing bytes after module image"));
    return result;
  }

  if (verify) {
    // The decoder proved the bytes well-formed; the bytecode verifier now
    // proves the decoded program safe to dispatch (register bounds, pool
    // indexes, control flow, init-before-use — docs/ANALYSIS.md B2xx).
    analysis::Report vr = verify_module(*module);
    result.report.merge(vr);
    if (!vr.ok()) return result;

    // An embedded memory plan steers the VM's register clearing, so it is
    // never trusted: recompute it from the (now verified) bytecode and
    // demand byte-for-byte agreement. plan_module is deterministic, so a
    // faithful image always passes; any divergence is tampering or a
    // writer/reader skew (B217). Loads with verify=false skip this and
    // the VM falls back to its own structural plan check.
    if (module->plan != nullptr) {
      analysis::PlanResult recomputed = analysis::plan_module(*module);
      if (!(recomputed.plan == *module->plan)) {
        result.report.add(structural(
            "B217", "embedded memory plan does not match the module's "
                    "bytecode (stale or tampered plan section)"));
        return result;
      }
    }
  }

  result.module = std::move(module);
  return result;
}

void write_module_file(const std::string& path, const Module& m,
                       std::uint64_t hash) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  PROTEUS_REQUIRE(Error, os.good(),
                  "cannot open module file for writing: " + path);
  write_module(os, m, hash);
  os.flush();
  PROTEUS_REQUIRE(Error, os.good(), "failed writing module file: " + path);
}

ModuleLoadResult load_module_file(const std::string& path, bool verify) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) {
    ModuleLoadResult result;
    result.report.add(
        structural("B215", "cannot read module file: " + path));
    return result;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return load_module(buf.str(), verify);
}

}  // namespace proteus::vm
