// fuse.hpp — the VCODE optimizer: per-function dataflow over assembled
// bytecode that (a) collapses chains of depth-1 elementwise instructions
// over a common frame into single-pass kFusedMap superinstructions,
// (b) propagates copies and removes the moves and constants the fusion
// left dead, and (c) marks each fused operand's last use so the VM can
// move a dying register into the kernel and run the chain in place in
// its buffer.
//
// The optimizer is semantics- and cost-model-preserving by construction:
// a fused chain reports the same primitive_calls / element_work /
// per-prim tallies and throws the same diagnostics as the instructions
// it replaced (see kernels/fused.hpp). Only physical buffer allocations
// (vl.buffer_allocs) drop — one output buffer per chain instead of one
// per instruction.
#pragma once

#include <cstdint>
#include <memory>

namespace proteus::vm {

struct Module;

/// Tallies of one optimize_module run (surfaced by proteusc --stats and
/// the pipeline's optimize-vcode span).
struct FuseStats {
  std::uint64_t fused_chains = 0;      ///< kFusedMap superinstructions made
  std::uint64_t fused_prims = 0;       ///< elementwise instrs folded in
  std::uint64_t eliminated_instrs = 0; ///< instructions removed outright
  std::uint64_t eliminated_moves = 0;  ///< of which register moves
};

/// Optimizes every function of `m` and returns the rewritten module (the
/// input is not modified; unoptimized callers can keep running it).
[[nodiscard]] std::shared_ptr<const Module> optimize_module(
    const Module& m, FuseStats* stats = nullptr);

}  // namespace proteus::vm
