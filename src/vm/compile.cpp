#include "vm/compile.hpp"

#include <map>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "vl/check.hpp"

namespace proteus::vm {

using kernels::VValue;
using lang::Expr;
using lang::ExprPtr;
using lang::FunDef;
using lang::Prim;

/// The vl primitive family an operation belongs to (profiling/disassembly
/// metadata; dispatch reads `prim` + `depth`). Exposed so the bytecode
/// verifier can check that each instruction's opcode matches its selector.
Op family_of(Prim p, int depth) {
  switch (p) {
    case Prim::kExtract:
      return Op::kExtract;
    case Prim::kInsert:
      return Op::kInsert;
    case Prim::kEmptyFrame:
      return Op::kEmptyFrame;
    case Prim::kRange:
    case Prim::kRange1:
    case Prim::kDist:
      return Op::kBuild;
    case Prim::kSeqIndex:
    case Prim::kSeqIndexInner:
      return Op::kGather;
    case Prim::kRestrict:
    case Prim::kCombine:
    case Prim::kSeqUpdate:
      return Op::kPack;
    case Prim::kLength:
    case Prim::kSum:
    case Prim::kMaxVal:
    case Prim::kMinVal:
    case Prim::kAnyV:
    case Prim::kAllV:
    case Prim::kAnyTrue:
      return Op::kReduce;
    case Prim::kFlatten:
    case Prim::kConcat:
    case Prim::kReverse:
    case Prim::kZip:
      return Op::kSegment;
    default:
      return depth == 0 ? Op::kScalar : Op::kElementwise;
  }
}

namespace {

[[noreturn]] void fail(const std::string& msg) { throw TransformError(msg); }

/// Shared interning pools of the module under construction.
class Builder {
 public:
  explicit Builder(Module& m) : module_(m) {}

  std::int32_t const_int(vl::Int v) {
    auto [it, fresh] = ints_.try_emplace(v, next());
    if (fresh) module_.constants.push_back(VValue::ints(v));
    return it->second;
  }
  std::int32_t const_real(vl::Real v) {
    // NaN never compares equal to itself; intern it un-deduplicated.
    if (v != v) {
      module_.constants.push_back(VValue::reals(v));
      return next() - 1;
    }
    auto [it, fresh] = reals_.try_emplace(v, next());
    if (fresh) module_.constants.push_back(VValue::reals(v));
    return it->second;
  }
  std::int32_t const_bool(bool v) {
    auto [it, fresh] = bools_.try_emplace(v, next());
    if (fresh) module_.constants.push_back(VValue::bools(v));
    return it->second;
  }
  std::int32_t const_fun(const std::string& name) {
    auto [it, fresh] = funs_.try_emplace(name, next());
    if (fresh) module_.constants.push_back(VValue::fun(name));
    return it->second;
  }

  std::int32_t type_index(const lang::TypePtr& t) {
    for (std::size_t i = 0; i < module_.types.size(); ++i) {
      if (module_.types[i] == t) return static_cast<std::int32_t>(i);
    }
    module_.types.push_back(t);
    return static_cast<std::int32_t>(module_.types.size() - 1);
  }

  std::int32_t name_index(const std::string& name) {
    for (std::size_t i = 0; i < module_.names.size(); ++i) {
      if (module_.names[i] == name) return static_cast<std::int32_t>(i);
    }
    module_.names.push_back(name);
    return static_cast<std::int32_t>(module_.names.size() - 1);
  }

  [[nodiscard]] std::int32_t fn_lookup(const std::string& name) const {
    auto it = module_.fn_index.find(name);
    return it == module_.fn_index.end() ? -1
                                        : static_cast<std::int32_t>(it->second);
  }

  [[nodiscard]] bool has_fn(const std::string& name) const {
    return module_.fn_index.contains(name);
  }

 private:
  std::int32_t next() const {
    return static_cast<std::int32_t>(module_.constants.size());
  }

  Module& module_;
  std::map<vl::Int, std::int32_t> ints_;
  std::map<vl::Real, std::int32_t> reals_;
  std::map<bool, std::int32_t> bools_;
  std::map<std::string, std::int32_t> funs_;
};

using Reg = std::uint16_t;

/// Compiles one function body into linear code with a scoped register
/// free-list (a released slot is reused by later temporaries, keeping
/// frames near the live-range width of the body).
class FunCompiler {
 public:
  FunCompiler(Builder& builder, Function& out)
      : builder_(builder), out_(out) {}

  void compile(const std::vector<lang::Param>& params, const ExprPtr& body) {
    out_.n_params = static_cast<std::uint16_t>(params.size());
    next_ = out_.n_params;
    for (Reg i = 0; i < out_.n_params; ++i) {
      env_.emplace_back(params[static_cast<std::size_t>(i)].name, i);
    }
    std::vector<Reg> owned;
    Reg r = operand(body, owned);
    emit(Instr{.op = Op::kRet}, {r});
    release(owned);
    out_.n_regs = next_;
  }

 private:
  // --- register allocation ---------------------------------------------------

  Reg alloc() {
    if (!free_.empty()) {
      Reg r = free_.back();
      free_.pop_back();
      return r;
    }
    PROTEUS_REQUIRE(TransformError, next_ < 0xFFFF,
                    "vm compiler: function needs too many registers");
    return next_++;
  }
  void release(Reg r) { free_.push_back(r); }
  void release(const std::vector<Reg>& regs) {
    for (Reg r : regs) release(r);
  }

  // --- code emission ---------------------------------------------------------

  std::size_t emit(Instr in, const std::vector<Reg>& args) {
    in.args_off = static_cast<std::uint32_t>(out_.arg_pool.size());
    in.args_count = static_cast<std::uint16_t>(args.size());
    out_.arg_pool.insert(out_.arg_pool.end(), args.begin(), args.end());
    out_.code.push_back(in);
    return out_.code.size() - 1;
  }

  std::size_t here() const { return out_.code.size(); }
  void patch(std::size_t at) {
    out_.code[at].aux = static_cast<std::int32_t>(here());
  }

  std::int32_t lifted_index(const std::vector<std::uint8_t>& lifted) {
    if (lifted.empty()) return -1;
    for (std::size_t i = 0; i < out_.lifted_sets.size(); ++i) {
      if (out_.lifted_sets[i] == lifted) return static_cast<std::int32_t>(i);
    }
    out_.lifted_sets.push_back(lifted);
    return static_cast<std::int32_t>(out_.lifted_sets.size() - 1);
  }

  // --- expression lowering ---------------------------------------------------

  /// Register holding `e`'s value: a bound variable's own slot (nothing
  /// emitted, not owned) or a fresh temporary appended to `owned`.
  Reg operand(const ExprPtr& e, std::vector<Reg>& owned) {
    if (const auto* v = lang::as<lang::VarRef>(e)) {
      if (!v->is_function) {
        if (const Reg* r = lookup(v->name)) return *r;
      }
    }
    Reg t = alloc();
    owned.push_back(t);
    compile_into(e, t);
    return t;
  }

  std::vector<Reg> operands(const std::vector<ExprPtr>& es,
                            std::vector<Reg>& owned) {
    std::vector<Reg> regs;
    regs.reserve(es.size());
    for (const ExprPtr& e : es) regs.push_back(operand(e, owned));
    return regs;
  }

  /// Like operand(), but a non-variable expression computes straight into
  /// `dst` (the accumulator trick: the VM writes dst only after reading
  /// every source, so dst may double as a source). Keeps left-deep
  /// expression chains at O(1) live registers instead of O(depth).
  Reg operand_into(const ExprPtr& e, Reg dst) {
    if (const auto* v = lang::as<lang::VarRef>(e)) {
      if (!v->is_function) {
        if (const Reg* r = lookup(v->name)) return *r;
      }
    }
    compile_into(e, dst);
    return dst;
  }

  /// Operand registers for an argument list whose first non-variable
  /// argument accumulates into `dst`.
  std::vector<Reg> operands_into(const std::vector<ExprPtr>& es, Reg dst,
                                 std::vector<Reg>& owned) {
    std::vector<Reg> regs;
    regs.reserve(es.size());
    for (std::size_t i = 0; i < es.size(); ++i) {
      regs.push_back(i == 0 ? operand_into(es[0], dst)
                            : operand(es[i], owned));
    }
    return regs;
  }

  void compile_into(const ExprPtr& e, Reg dst) {
    std::visit([&](const auto& node) { lower(node, e, dst); }, e->node);
  }

  void lower(const lang::IntLit& n, const ExprPtr&, Reg dst) {
    emit(Instr{.op = Op::kConst, .dst = dst, .aux = builder_.const_int(n.value)},
         {});
  }
  void lower(const lang::RealLit& n, const ExprPtr&, Reg dst) {
    emit(Instr{.op = Op::kConst, .dst = dst,
               .aux = builder_.const_real(n.value)},
         {});
  }
  void lower(const lang::BoolLit& n, const ExprPtr&, Reg dst) {
    emit(Instr{.op = Op::kConst, .dst = dst,
               .aux = builder_.const_bool(n.value)},
         {});
  }

  void lower(const lang::VarRef& n, const ExprPtr&, Reg dst) {
    if (!n.is_function) {
      if (const Reg* r = lookup(n.name)) {
        emit(Instr{.op = Op::kMove, .dst = dst}, {*r});
        return;
      }
    }
    if (builder_.has_fn(n.name)) {
      emit(Instr{.op = Op::kLoadFun, .dst = dst,
                 .aux = builder_.const_fun(n.name)},
           {});
      return;
    }
    fail("vm compiler: unbound variable '" + n.name + "'");
  }

  void lower(const lang::Let& n, const ExprPtr&, Reg dst) {
    std::vector<Reg> owned;
    Reg r = operand(n.init, owned);
    env_.emplace_back(n.var, r);
    compile_into(n.body, dst);
    env_.pop_back();
    release(owned);
  }

  void lower(const lang::If& n, const ExprPtr&, Reg dst) {
    std::size_t branch;
    // The condition may accumulate into dst: the branch consumes it
    // before either arm overwrites the register.
    //
    // Rule R2d's recursion guard `if any_true(M) ...` becomes the VM's
    // branch-on-empty-frame: one opcode walks M's spine and jumps.
    const auto* guard = lang::as<lang::PrimCall>(n.cond);
    if (guard != nullptr && guard->op == Prim::kAnyTrue &&
        guard->depth == 0) {
      Reg m = operand_into(guard->args[0], dst);
      branch = emit(Instr{.op = Op::kBranchEmpty}, {m});
    } else {
      Reg c = operand_into(n.cond, dst);
      branch = emit(Instr{.op = Op::kJumpIfFalse}, {c});
    }
    compile_into(n.then_expr, dst);
    std::size_t jump = emit(Instr{.op = Op::kJump}, {});
    patch(branch);
    compile_into(n.else_expr, dst);
    patch(jump);
  }

  void lower(const lang::PrimCall& n, const ExprPtr& e, Reg dst) {
    std::vector<Reg> owned;
    if (n.op == Prim::kEmptyFrame) {
      Reg m = operand_into(n.args[0], dst);
      emit(Instr{.op = Op::kEmptyFrame,
                 .prim = n.op,
                 .depth = static_cast<std::uint8_t>(n.depth),
                 .dst = dst,
                 .aux = builder_.type_index(e->type)},
           {m});
      return;
    }
    if (n.op == Prim::kExtract || n.op == Prim::kInsert) {
      PROTEUS_REQUIRE(TransformError, n.depth == 0,
                      "extract/insert have no parallel extension");
      // The representation depth is a static Int literal (T1 emits it so);
      // fold it into the instruction instead of spending a register.
      const std::size_t d_at = n.args.size() - 1;
      const auto* d = lang::as<lang::IntLit>(n.args[d_at]);
      if (d == nullptr || d->value < 0 || d->value > 0xFF) {
        fail("vm compiler: extract/insert without a static depth literal");
      }
      std::vector<ExprPtr> frames(n.args.begin(), n.args.begin() +
                                  static_cast<std::ptrdiff_t>(d_at));
      std::vector<Reg> regs = operands_into(frames, dst, owned);
      emit(Instr{.op = family_of(n.op, n.depth),
                 .prim = n.op,
                 .depth = static_cast<std::uint8_t>(d->value),
                 .dst = dst},
           regs);
      release(owned);
      return;
    }
    PROTEUS_REQUIRE(TransformError, n.depth <= 1,
                    "vm compiler given a depth >= 2 primitive call; run the "
                    "T1 translation first");
    std::vector<Reg> regs = operands_into(n.args, dst, owned);
    emit(Instr{.op = family_of(n.op, n.depth),
               .prim = n.op,
               .depth = static_cast<std::uint8_t>(n.depth),
               .dst = dst,
               .lifted = n.depth == 1 ? lifted_index(n.lifted) : -1},
         regs);
    release(owned);
  }

  void lower(const lang::FunCall& n, const ExprPtr&, Reg dst) {
    PROTEUS_REQUIRE(TransformError, n.depth == 0,
                    "vm compiler given a depth-extended user call; run the "
                    "T1 translation first");
    std::vector<Reg> owned;
    std::vector<Reg> regs = operands_into(n.args, dst, owned);
    emit(Instr{.op = Op::kCall,
               .dst = dst,
               .aux = builder_.fn_lookup(n.name),
               .aux2 = builder_.name_index(n.name)},
         regs);
    release(owned);
  }

  void lower(const lang::IndirectCall& n, const ExprPtr&, Reg dst) {
    PROTEUS_REQUIRE(TransformError, n.depth <= 1,
                    "vm compiler given a depth >= 2 indirect call");
    std::vector<Reg> owned;
    std::vector<Reg> regs;
    regs.push_back(operand_into(n.fn, dst));
    for (Reg r : operands(n.args, owned)) regs.push_back(r);
    emit(Instr{.op = Op::kCallIndirect,
               .depth = static_cast<std::uint8_t>(n.depth),
               .dst = dst},
         regs);
    release(owned);
  }

  void lower(const lang::TupleExpr& n, const ExprPtr&, Reg dst) {
    std::vector<Reg> owned;
    std::vector<Reg> regs = operands_into(n.elems, dst, owned);
    emit(Instr{.op = Op::kTuple,
               .depth = static_cast<std::uint8_t>(n.depth),
               .dst = dst},
         regs);
    release(owned);
  }

  void lower(const lang::TupleGet& n, const ExprPtr&, Reg dst) {
    Reg t = operand_into(n.tuple, dst);
    emit(Instr{.op = Op::kTupleGet,
               .depth = static_cast<std::uint8_t>(n.depth),
               .dst = dst,
               .aux = n.index},
         {t});
  }

  void lower(const lang::SeqExpr& n, const ExprPtr& e, Reg dst) {
    std::vector<Reg> owned;
    std::vector<Reg> regs = operands_into(n.elems, dst, owned);
    std::int32_t type_idx = -1;
    if (n.depth == 0) {
      lang::TypePtr elem = n.elem_type;
      if (elem == nullptr && n.elems.empty()) {
        PROTEUS_REQUIRE(TransformError,
                        e->type != nullptr && e->type->is_seq(),
                        "vm compiler: untyped empty sequence literal");
        elem = e->type->elem();
      }
      if (elem != nullptr) type_idx = builder_.type_index(elem);
    }
    emit(Instr{.op = Op::kSeqCons,
               .depth = static_cast<std::uint8_t>(n.depth > 0 ? 1 : 0),
               .dst = dst,
               .aux = type_idx},
         regs);
    release(owned);
  }

  void lower(const lang::Iterator&, const ExprPtr&, Reg) {
    fail("vm compiler given an iterator; run the transformation first");
  }
  void lower(const lang::Call&, const ExprPtr&, Reg) {
    fail("vm compiler given an unresolved Call node");
  }
  void lower(const lang::LambdaExpr&, const ExprPtr&, Reg) {
    fail("vm compiler given an unlifted lambda");
  }

  // --- environment -----------------------------------------------------------

  [[nodiscard]] const Reg* lookup(const std::string& name) const {
    for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
      if (it->first == name) return &it->second;
    }
    return nullptr;
  }

  Builder& builder_;
  Function& out_;
  std::vector<std::pair<std::string, Reg>> env_;
  std::vector<Reg> free_;
  Reg next_ = 0;
};

}  // namespace

std::shared_ptr<Module> compile_module(const lang::Program& program,
                                       const ExprPtr& entry) {
  auto module = std::make_shared<Module>();
  Builder builder(*module);

  // Pass 1: register every function name so direct calls resolve to
  // indices regardless of definition order (duplicates: last wins, the
  // tree executor's rule).
  module->functions.reserve(program.functions.size() + 1);
  for (const FunDef& f : program.functions) {
    Function fn;
    fn.name = f.name;
    module->fn_index[f.name] =
        static_cast<std::uint32_t>(module->functions.size());
    module->functions.push_back(std::move(fn));
  }

  // Pass 2: compile bodies.
  for (std::size_t i = 0; i < program.functions.size(); ++i) {
    const FunDef& f = program.functions[i];
    FunCompiler(builder, module->functions[i]).compile(f.params, f.body);
  }

  if (entry != nullptr) {
    Function fn;
    fn.name = "__entry";
    module->entry = static_cast<std::int32_t>(module->functions.size());
    module->functions.push_back(std::move(fn));
    FunCompiler(builder, module->functions.back()).compile({}, entry);
  }
  return module;
}

}  // namespace proteus::vm
