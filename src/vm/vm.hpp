// vm.hpp — the dispatch-loop interpreter over vm::Module bytecode.
//
// Where the tree executor re-walks the AST (variant dispatch per node,
// string environment lookups, function re-resolution per call), the VM
// replays pre-linked flat code: registers index a frame vector, constants
// and call targets were resolved at compile time, and each instruction
// funnels into the shared kernel table of kernels/prims.hpp — so results
// are bit-identical to the tree executor by construction.
//
// Profiling: the VM always counts instructions, primitive applications,
// and calls, and attributes vl element work (vl::stats() deltas) to the
// executing opcode. Per-opcode wall time costs a clock read per
// instruction and is gated behind VMOptions::profile.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kernels/prims.hpp"
#include "vm/bytecode.hpp"

namespace proteus::analysis {
struct FunctionPlan;
}  // namespace proteus::analysis

namespace proteus::vm {

/// Knobs of a VM run.
struct VMOptions {
  kernels::PrimOptions prims;  ///< shared-source gather etc. (as in exec)
  bool profile = false;        ///< per-opcode wall-clock timing
  /// Run the bytecode verifier (vm/verify.hpp) at construction and throw
  /// analysis::AnalysisError when the module is rejected. Callers holding
  /// a module the pipeline already verified may pass false.
  bool verify = true;
  /// Execute on the memory plan (requires Module::plan): dead registers
  /// clear at their statically known last use and a per-evaluation arena
  /// (vl/arena.hpp) recycles the freed buffers, pre-sized from the plan's
  /// peak bound. Off by default — plan-backed and heap execution are
  /// bit-identical, but pooled buffers shift `charge_bytes` timing.
  bool arena = false;
  /// Plan-based admission control: reject a call up front (T001) when the
  /// plan's static peak bound at the arguments' input scale already
  /// exceeds the thread's resident-byte budget. Off by default (bounds
  /// are conservative; unbounded plans always admit).
  bool admission = false;
};

/// Accumulated cost of one opcode across a run.
struct OpProfile {
  std::uint64_t count = 0;         ///< instructions dispatched
  std::uint64_t element_work = 0;  ///< vl element work attributed
  std::uint64_t nanos = 0;         ///< wall time (VMOptions::profile only)
};

/// Execution counters of a VM (vl::stats()-compatible element-work
/// accounting, plus the exec::ExecStats-style prim/call tallies).
struct VMStats {
  std::uint64_t instructions = 0;
  std::uint64_t prim_applications = 0;
  std::uint64_t calls = 0;
  std::array<OpProfile, kNumOps> per_op{};
  std::map<lang::Prim, std::uint64_t> per_prim;
};

// Call depth is bounded by the execution governor (rt::depth_limit():
// the installed budget's max_depth, or rt::kDefaultMaxCallDepth) — the
// same guard as the tree executor, raised as an rt::RuntimeTrap (T003).

/// The bytecode interpreter. Holds the module and per-run statistics.
class VM {
 public:
  explicit VM(std::shared_ptr<const Module> module, VMOptions options = {});

  /// Calls a compiled function by name (the tree executor's
  /// call_function contract, including its error messages). Takes the
  /// arguments by value: they move straight into the frame's registers,
  /// so a caller done with its copies hands buffers to the VM — which the
  /// fused kernels can then recycle in place.
  [[nodiscard]] kernels::VValue call_function(const std::string& name,
                                              std::vector<kernels::VValue> args);

  /// Runs the module's compiled entry expression.
  [[nodiscard]] kernels::VValue eval_entry();

  [[nodiscard]] const VMStats& stats() const { return stats_; }
  void reset_stats() { stats_ = VMStats{}; }

  [[nodiscard]] const Module& module() const { return *module_; }

 private:
  kernels::VValue run(const Function& fn, std::vector<kernels::VValue> regs,
                      const analysis::FunctionPlan* fp);
  kernels::VValue invoke(std::uint32_t index,
                         std::vector<kernels::VValue> args,
                         const std::string& name);
  /// The plan of function `index` when plan-backed execution is on and the
  /// module carries a matching plan; null otherwise.
  [[nodiscard]] const analysis::FunctionPlan* plan_of(
      std::uint32_t index) const;
  /// Root-call setup shared by the public entry points: plan-based
  /// admission (T001 before any work) and the result of the peak bound
  /// evaluated at the arguments' input scale (for the arena cap).
  void admit_root(const analysis::FunctionPlan* fp,
                  const std::vector<kernels::VValue>& args,
                  const std::string& name, std::uint64_t* arena_cap);

  std::shared_ptr<const Module> module_;
  VMOptions options_;
  VMStats stats_;
  int call_depth_ = 0;
};

}  // namespace proteus::vm
