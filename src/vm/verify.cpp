#include "vm/verify.hpp"

#include <string>
#include <vector>

#include "lang/types.hpp"
#include "seq/extract_insert.hpp"
#include "vm/compile.hpp"

namespace proteus::vm {

using analysis::Report;
using lang::Prim;

namespace {

/// Abstract register contents for the dataflow pass. kUnset is the
/// "possibly never written" state (must-define analysis: a register that
/// is unset on any path into an instruction may not be read there);
/// kAny is the top of the kind lattice.
struct Kind {
  enum Tag : std::uint8_t {
    kUnset,
    kScalar,
    kSeq,
    kTuple,
    kFun,
    kAny
  } tag = kUnset;
  int depth = -1;  ///< kSeq nesting depth; -1 when unknown

  static Kind unset() { return {}; }
  static Kind scalar() { return {kScalar, -1}; }
  static Kind seq(int d) { return {kSeq, d}; }
  static Kind tuple() { return {kTuple, -1}; }
  static Kind fun() { return {kFun, -1}; }
  static Kind any() { return {kAny, -1}; }

  bool operator==(const Kind& o) const {
    return tag == o.tag && depth == o.depth;
  }
};

Kind join(const Kind& a, const Kind& b) {
  if (a.tag == Kind::kUnset || b.tag == Kind::kUnset) return Kind::unset();
  if (a.tag != b.tag) return Kind::any();
  if (a.tag == Kind::kSeq && a.depth != b.depth) return Kind::seq(-1);
  return a;
}

Kind kind_of_constant(const kernels::VValue& v) {
  // A flat array has spine_depth 0 but nesting depth 1.
  if (v.is_seq()) return Kind::seq(seq::spine_depth(v.as_seq()) + 1);
  if (v.is_tuple()) return Kind::tuple();
  if (v.is_fun()) return Kind::fun();
  return Kind::scalar();
}

/// True when the opcode writes Instr::dst.
bool writes_dst(Op op) {
  switch (op) {
    case Op::kBranchEmpty:
    case Op::kJump:
    case Op::kJumpIfFalse:
    case Op::kRet:
      return false;
    default:
      return true;
  }
}

/// Expected operand count for an opcode, or -1 when variable.
int expected_args(const Instr& in) {
  switch (in.op) {
    case Op::kConst:
    case Op::kLoadFun:
    case Op::kJump:
      return 0;
    case Op::kMove:
    case Op::kEmptyFrame:
    case Op::kTupleGet:
    case Op::kBranchEmpty:
    case Op::kJumpIfFalse:
    case Op::kRet:
    case Op::kExtract:
      return 1;
    case Op::kInsert:
      return 2;
    case Op::kScalar:
    case Op::kElementwise:
    case Op::kBuild:
    case Op::kGather:
    case Op::kPack:
    case Op::kReduce:
    case Op::kSegment:
      return lang::prim_arity(in.prim);
    default:
      return -1;  // kSeqCons, kTuple, kCall, kCallIndirect, kFusedMap
  }
}

class Verifier {
 public:
  explicit Verifier(const Module& m, Report& report)
      : module_(m), report_(report) {}

  void run() {
    check_module_tables();
    for (const Function& fn : module_.functions) {
      fn_ = &fn;
      errors_before_ = report_.error_count();
      check_structure();
      // Dataflow indexes registers and operand pools unguarded; only a
      // structurally sound function can be analyzed.
      if (report_.error_count() == errors_before_) check_dataflow();
    }
  }

 private:
  void err(const char* code, std::string msg, std::size_t pc) {
    report_.error(code, "pc " + std::to_string(pc) + ": " + std::move(msg),
                  fn_ != nullptr ? fn_->name : "<module>", {}, "VCODE");
  }

  void module_err(const char* code, std::string msg) {
    report_.error(code, std::move(msg), "<module>", {}, "VCODE");
  }

  void check_module_tables() {
    const auto n = static_cast<std::int64_t>(module_.functions.size());
    if (module_.entry >= n) {
      module_err("B201", "entry index " + std::to_string(module_.entry) +
                             " outside the function table of size " +
                             std::to_string(n));
    }
    for (const auto& [name, index] : module_.fn_index) {
      if (index >= module_.functions.size()) {
        module_err("B201", "fn_index['" + name + "'] = " +
                               std::to_string(index) +
                               " outside the function table");
      } else if (module_.functions[index].name != name) {
        module_err("B201", "fn_index['" + name + "'] names function '" +
                               module_.functions[index].name + "'");
      }
    }
  }

  bool valid_target(std::int32_t aux) const {
    return aux >= 0 &&
           static_cast<std::size_t>(aux) < fn_->code.size();
  }

  // --- linear structural pass ------------------------------------------------

  void check_structure() {
    const Function& fn = *fn_;
    if (fn.n_params > fn.n_regs) {
      err("B203",
          std::to_string(fn.n_params) + " parameters but only " +
              std::to_string(fn.n_regs) + " registers",
          0);
    }
    if (fn.code.empty()) {
      err("B202", "function has no instructions", 0);
      return;
    }
    for (std::size_t pc = 0; pc < fn.code.size(); ++pc) {
      check_instr(fn.code[pc], pc);
    }
    const Op last = fn.code.back().op;
    if (last != Op::kRet && last != Op::kJump) {
      err("B202",
          std::string("control flow falls off the end (last op is ") +
              op_name(last) + ")",
          fn.code.size() - 1);
    }
  }

  void check_instr(const Instr& in, std::size_t pc) {
    const Function& fn = *fn_;
    // Operand list and register-file bounds.
    if (static_cast<std::size_t>(in.args_off) + in.args_count >
        fn.arg_pool.size()) {
      err("B204",
          "operand list [" + std::to_string(in.args_off) + ", +" +
              std::to_string(in.args_count) + ") outside the argument pool",
          pc);
      return;
    }
    const std::uint16_t* a = fn.arg_pool.data() + in.args_off;
    for (std::size_t i = 0; i < in.args_count; ++i) {
      if (a[i] >= fn.n_regs) {
        err("B203",
            "operand register r" + std::to_string(a[i]) +
                " outside the register file of size " +
                std::to_string(fn.n_regs),
            pc);
      }
    }
    if (writes_dst(in.op) && in.dst >= fn.n_regs) {
      err("B203",
          "destination register r" + std::to_string(in.dst) +
              " outside the register file of size " +
              std::to_string(fn.n_regs),
          pc);
    }

    // Opcode operand arity.
    const int want = expected_args(in);
    if (want >= 0 && in.args_count != static_cast<std::uint16_t>(want)) {
      err("B205",
          std::string(op_name(in.op)) + " takes " + std::to_string(want) +
              " operands, got " + std::to_string(in.args_count),
          pc);
    }

    // Per-opcode payload checks.
    switch (in.op) {
      case Op::kConst:
      case Op::kLoadFun:
        if (in.aux < 0 || static_cast<std::size_t>(in.aux) >=
                              module_.constants.size()) {
          err("B206", "constant index " + std::to_string(in.aux) +
                          " outside the constant pool",
              pc);
        }
        break;
      case Op::kScalar:
      case Op::kElementwise:
      case Op::kBuild:
      case Op::kGather:
      case Op::kPack:
      case Op::kReduce:
      case Op::kSegment: {
        if (in.depth > 1) {
          err("B212",
              std::string("kernel depth ") + std::to_string(in.depth) +
                  " (> 1: T1 was not applied?)",
              pc);
        }
        if (family_of(in.prim, in.depth) != in.op) {
          err("B205",
              std::string(op_name(in.op)) + " opcode disagrees with its " +
                  lang::prim_name(in.prim) + " selector",
              pc);
        }
        if (in.lifted >= 0) {
          if (static_cast<std::size_t>(in.lifted) >=
              fn.lifted_sets.size()) {
            err("B206", "lift-set index " + std::to_string(in.lifted) +
                            " outside the function's lift sets",
                pc);
          } else {
            const auto& set =
                fn.lifted_sets[static_cast<std::size_t>(in.lifted)];
            if (!set.empty() && set.size() != in.args_count) {
              err("B209",
                  std::to_string(set.size()) + " lift flags for " +
                      std::to_string(in.args_count) + " operands",
                  pc);
            }
          }
        }
        break;
      }
      case Op::kExtract:
        if (in.prim != Prim::kExtract) {
          err("B205", "extract opcode with a non-extract selector", pc);
        }
        break;
      case Op::kInsert:
        if (in.prim != Prim::kInsert) {
          err("B205", "insert opcode with a non-insert selector", pc);
        }
        break;
      case Op::kEmptyFrame:
        if (in.depth < 1) {
          err("B212", "empty_frame lacks its frame-depth marker", pc);
        }
        if (in.aux < 0 ||
            static_cast<std::size_t>(in.aux) >= module_.types.size()) {
          err("B206", "type index " + std::to_string(in.aux) +
                          " outside the type pool",
              pc);
        }
        break;
      case Op::kSeqCons:
        if (in.depth > 1) {
          err("B212", "seq_cons depth > 1", pc);
        }
        if (in.args_count == 0 && in.aux < 0) {
          err("B206", "empty sequence literal without a type index", pc);
        }
        if (in.aux >= 0 &&
            static_cast<std::size_t>(in.aux) >= module_.types.size()) {
          err("B206", "type index " + std::to_string(in.aux) +
                          " outside the type pool",
              pc);
        }
        break;
      case Op::kTuple:
        if (in.args_count == 0) {
          err("B205", "tuple construction with no components", pc);
        }
        if (in.depth > 1) err("B212", "tuple_cons depth > 1", pc);
        break;
      case Op::kTupleGet:
        if (in.aux < 1) {
          err("B206",
              "tuple component index " + std::to_string(in.aux) +
                  " (components are 1-origin)",
              pc);
        }
        if (in.depth > 1) err("B212", "tuple_extract depth > 1", pc);
        break;
      case Op::kFusedMap:
        check_fused(in, pc);
        break;
      case Op::kCall:
        if (in.aux >= 0) {
          if (static_cast<std::size_t>(in.aux) >=
              module_.functions.size()) {
            err("B206", "callee index " + std::to_string(in.aux) +
                            " outside the function table",
                pc);
          } else {
            const Function& callee =
                module_.functions[static_cast<std::size_t>(in.aux)];
            if (in.args_count != callee.n_params) {
              err("B208",
                  "call of '" + callee.name + "' passes " +
                      std::to_string(in.args_count) + " arguments to " +
                      std::to_string(callee.n_params) + " parameters",
                  pc);
            }
          }
        } else if (in.aux2 < 0 || static_cast<std::size_t>(in.aux2) >=
                                      module_.names.size()) {
          err("B206",
              "unresolved call without a valid diagnostic name index", pc);
        }
        break;
      case Op::kCallIndirect:
        if (in.args_count < 1) {
          err("B205", "indirect call without a callee operand", pc);
        }
        if (in.depth > 1) err("B212", "indirect call depth > 1", pc);
        break;
      case Op::kBranchEmpty:
      case Op::kJump:
      case Op::kJumpIfFalse:
        if (!valid_target(in.aux)) {
          err("B207", "jump target " + std::to_string(in.aux) +
                          " outside the code of size " +
                          std::to_string(fn.code.size()),
              pc);
        }
        break;
      case Op::kMove:
      case Op::kRet:
        break;
    }
  }

  /// kFusedMap: the superinstruction's micro-expression must be a closed,
  /// acyclic post-order program over the instruction's operand slots
  /// (B213), and its operand-slot metadata must agree with the operand
  /// list (B214).
  void check_fused(const Instr& in, std::size_t pc) {
    const Function& fn = *fn_;
    if (in.depth != 1) {
      err("B212", "fused superinstruction with depth != 1", pc);
    }
    if (in.aux < 0 ||
        static_cast<std::size_t>(in.aux) >= fn.fused.size()) {
      err("B213", "fused-expression index " + std::to_string(in.aux) +
                      " outside the function's fused pool",
          pc);
      return;
    }
    const kernels::FusedExpr& fe =
        fn.fused[static_cast<std::size_t>(in.aux)];
    if (fe.nodes.empty() || fe.nodes.size() > kernels::kMaxFusedNodes) {
      err("B213",
          "fused expression with " + std::to_string(fe.nodes.size()) +
              " nodes (1.." + std::to_string(kernels::kMaxFusedNodes) +
              " allowed)",
          pc);
      return;
    }
    if (fe.nodes.back().kind != kernels::MicroOp::Kind::kPrim) {
      err("B213", "fused expression whose root is a bare operand", pc);
    }
    if (fe.input_flags.size() != in.args_count) {
      err("B214",
          std::to_string(fe.input_flags.size()) +
              " operand-slot flags for " + std::to_string(in.args_count) +
              " operands",
          pc);
      return;
    }
    bool any_frame = false;
    for (const std::uint8_t flags : fe.input_flags) {
      if ((flags & kernels::kFusedBroadcast) == 0) any_frame = true;
    }
    if (!any_frame) {
      err("B214", "fused expression with every operand broadcast", pc);
    }
    for (std::size_t k = 0; k < fe.nodes.size(); ++k) {
      const kernels::MicroOp& mo = fe.nodes[k];
      if (mo.kind == kernels::MicroOp::Kind::kInput) {
        if (mo.input >= fe.input_flags.size()) {
          err("B214",
              "micro-op " + std::to_string(k) + " reads operand slot " +
                  std::to_string(mo.input) + " of " +
                  std::to_string(fe.input_flags.size()),
              pc);
        }
        continue;
      }
      if (!kernels::fusible_prim(mo.prim)) {
        err("B213",
            std::string("non-elementwise prim '") +
                lang::prim_name(mo.prim) + "' inside a fused expression",
            pc);
      }
      // Post-order: children strictly precede their user (acyclic by
      // construction when this holds everywhere).
      const int arity = lang::prim_arity(mo.prim);
      if (mo.a >= k || (arity == 2 && mo.b >= k)) {
        err("B213",
            "micro-op " + std::to_string(k) +
                " reads a node at or after itself",
            pc);
      }
    }
  }

  // --- worklist dataflow over the instruction-level CFG ----------------------

  void check_dataflow() {
    const Function& fn = *fn_;
    const std::size_t n = fn.code.size();
    std::vector<std::vector<Kind>> in_state(n);
    std::vector<std::uint8_t> reached(n, 0);

    std::vector<Kind> entry(fn.n_regs, Kind::unset());
    for (std::size_t r = 0; r < fn.n_params; ++r) entry[r] = Kind::any();

    std::vector<std::size_t> work;
    auto flow_to = [&](std::size_t pc, const std::vector<Kind>& state) {
      if (pc >= n) return;
      if (reached[pc] == 0) {
        reached[pc] = 1;
        in_state[pc] = state;
        work.push_back(pc);
        return;
      }
      bool changed = false;
      for (std::size_t r = 0; r < state.size(); ++r) {
        Kind merged = join(in_state[pc][r], state[r]);
        if (!(merged == in_state[pc][r])) {
          in_state[pc][r] = merged;
          changed = true;
        }
      }
      if (changed) work.push_back(pc);
    };

    flow_to(0, entry);
    while (!work.empty()) {
      const std::size_t pc = work.back();
      work.pop_back();
      std::vector<Kind> state = in_state[pc];
      const Instr& in = fn.code[pc];
      transfer(in, pc, state);
      switch (in.op) {
        case Op::kRet:
          break;
        case Op::kJump:
          flow_to(static_cast<std::size_t>(in.aux), state);
          break;
        case Op::kJumpIfFalse:
        case Op::kBranchEmpty:
          flow_to(static_cast<std::size_t>(in.aux), state);
          flow_to(pc + 1, state);
          break;
        default:
          flow_to(pc + 1, state);
          break;
      }
    }
  }

  /// Checks the uses of one instruction against the incoming state and
  /// applies its definition.
  void transfer(const Instr& in, std::size_t pc, std::vector<Kind>& state) {
    const Function& fn = *fn_;
    const std::uint16_t* a = fn.arg_pool.data() + in.args_off;
    for (std::size_t i = 0; i < in.args_count; ++i) {
      if (state[a[i]].tag == Kind::kUnset) {
        err("B210",
            "register r" + std::to_string(a[i]) +
                " may be read before it is written",
            pc);
        state[a[i]] = Kind::any();  // report once per path shape
      }
    }

    Kind out = Kind::any();
    switch (in.op) {
      case Op::kConst:
      case Op::kLoadFun:
        out = kind_of_constant(
            module_.constants[static_cast<std::size_t>(in.aux)]);
        break;
      case Op::kMove:
        out = state[a[0]];
        break;
      case Op::kScalar:
        out = Kind::scalar();
        break;
      case Op::kElementwise: {
        int d = -1;
        for (std::size_t i = 0; i < in.args_count; ++i) {
          if (state[a[i]].tag == Kind::kSeq && state[a[i]].depth > 0) {
            d = state[a[i]].depth;
            break;
          }
        }
        out = Kind::seq(d);
        break;
      }
      case Op::kFusedMap: {
        // Same kind transfer as the chain it replaced: the result is a
        // flat frame whose descriptor comes from the lifted operands.
        // A definitely-non-sequence register in a frame (non-broadcast)
        // slot would make every constituent instruction fail.
        const auto& fe =
            fn.fused[static_cast<std::size_t>(in.aux)];
        int d = -1;
        for (std::size_t i = 0; i < in.args_count; ++i) {
          if ((fe.input_flags[i] & kernels::kFusedBroadcast) != 0) continue;
          const Kind v = state[a[i]];
          if (v.tag == Kind::kScalar || v.tag == Kind::kTuple ||
              v.tag == Kind::kFun) {
            err("B211",
                "fused frame operand r" + std::to_string(a[i]) +
                    " is not a sequence",
                pc);
          }
          if (d < 0 && v.tag == Kind::kSeq && v.depth > 0) d = v.depth;
        }
        out = Kind::seq(d);
        break;
      }
      case Op::kBuild:
        if (in.prim == Prim::kRange || in.prim == Prim::kRange1) {
          out = Kind::seq(1 + in.depth);
        } else {
          out = Kind::seq(-1);
        }
        break;
      case Op::kGather:
      case Op::kTupleGet:
      case Op::kCall:
      case Op::kCallIndirect:
        out = Kind::any();
        break;
      case Op::kPack: {
        // restrict(v, m) / combine(m, v, u) / update(s, i, v): the result
        // has the data operand's kind.
        const std::size_t data = in.prim == Prim::kCombine ? 1 : 0;
        out = data < in.args_count && state[a[data]].tag == Kind::kSeq
                  ? state[a[data]]
                  : Kind::seq(-1);
        break;
      }
      case Op::kReduce:
        out = in.depth == 0 ? Kind::scalar() : Kind::seq(-1);
        break;
      case Op::kSegment:
        out = Kind::seq(-1);
        break;
      case Op::kExtract: {
        const Kind v = state[a[0]];
        if (v.tag == Kind::kScalar || v.tag == Kind::kTuple ||
            v.tag == Kind::kFun) {
          err("B211", "extract of a non-sequence register", pc);
          out = Kind::seq(-1);
        } else if (v.tag == Kind::kSeq && v.depth >= 0 &&
                   v.depth < in.depth + 1) {
          err("B211",
              "extract strips " + std::to_string(in.depth) +
                  " descriptor levels from a depth-" +
                  std::to_string(v.depth) + " register",
              pc);
          out = Kind::seq(-1);
        } else {
          out = Kind::seq(v.tag == Kind::kSeq && v.depth >= 0
                              ? v.depth - in.depth
                              : -1);
        }
        break;
      }
      case Op::kInsert: {
        const Kind inner = state[a[0]];
        const Kind frame = state[a[1]];
        if (inner.tag == Kind::kScalar || inner.tag == Kind::kTuple ||
            inner.tag == Kind::kFun || frame.tag == Kind::kScalar ||
            frame.tag == Kind::kTuple || frame.tag == Kind::kFun) {
          err("B211", "insert of a non-sequence register", pc);
        } else if (frame.tag == Kind::kSeq && frame.depth >= 0 &&
                   frame.depth < in.depth + 1) {
          err("B211",
              "insert re-attaches " + std::to_string(in.depth) +
                  " descriptor levels from a depth-" +
                  std::to_string(frame.depth) + " frame register",
              pc);
        }
        out = Kind::seq(inner.tag == Kind::kSeq && inner.depth >= 0
                            ? inner.depth + in.depth
                            : -1);
        break;
      }
      case Op::kEmptyFrame:
        out = Kind::seq(-1);
        break;
      case Op::kSeqCons:
        if (in.depth == 1) {
          out = Kind::seq(-1);
        } else if (in.args_count > 0 && state[a[0]].tag == Kind::kSeq &&
                   state[a[0]].depth >= 0) {
          out = Kind::seq(state[a[0]].depth + 1);
        } else if (in.args_count > 0 &&
                   state[a[0]].tag == Kind::kScalar) {
          out = Kind::seq(1);
        } else {
          out = Kind::seq(-1);
        }
        break;
      case Op::kTuple:
        out = in.depth == 0 ? Kind::tuple() : Kind::seq(-1);
        break;
      case Op::kBranchEmpty:
        if (state[a[0]].tag == Kind::kScalar ||
            state[a[0]].tag == Kind::kTuple ||
            state[a[0]].tag == Kind::kFun) {
          err("B211", "branch-on-empty of a non-sequence register", pc);
        }
        return;
      case Op::kJumpIfFalse:
        if (state[a[0]].tag == Kind::kSeq ||
            state[a[0]].tag == Kind::kTuple ||
            state[a[0]].tag == Kind::kFun) {
          err("B211", "conditional branch on a non-scalar register", pc);
        }
        return;
      case Op::kJump:
      case Op::kRet:
        return;
    }
    if (writes_dst(in.op)) state[in.dst] = out;
  }

  const Module& module_;
  Report& report_;
  const Function* fn_ = nullptr;
  std::size_t errors_before_ = 0;
};

}  // namespace

Report verify_module(const Module& m) {
  Report report;
  Verifier verifier(m, report);
  verifier.run();
  return report;
}

void verify_module_or_throw(const Module& m) {
  Report report = verify_module(m);
  if (!report.ok()) throw analysis::AnalysisError(std::move(report));
}

}  // namespace proteus::vm
