// lang.hpp — umbrella header for the front end of the source language P.
#pragma once

#include "lang/ast.hpp"
#include "lang/lexer.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "lang/typecheck.hpp"
#include "lang/types.hpp"
