#include "lang/ast.hpp"

#include <array>
#include <utility>

namespace proteus::lang {

namespace {

struct PrimEntry {
  Prim op;
  const char* name;
};

// Source-visible names. The representation primitives (extract, insert,
// empty_frame, any_true) are introduced only by the translation but are
// given names so transformed programs can be printed and re-parsed.
constexpr std::array<PrimEntry, 40> kPrimTable{{
    {Prim::kAdd, "+"},
    {Prim::kSub, "-"},
    {Prim::kMul, "*"},
    {Prim::kDiv, "/"},
    {Prim::kMod, "mod"},
    {Prim::kNeg, "neg"},
    {Prim::kMin, "min"},
    {Prim::kMax, "max"},
    {Prim::kEq, "=="},
    {Prim::kNe, "!="},
    {Prim::kLt, "<"},
    {Prim::kLe, "<="},
    {Prim::kGt, ">"},
    {Prim::kGe, ">="},
    {Prim::kAnd, "and"},
    {Prim::kOr, "or"},
    {Prim::kNot, "not"},
    {Prim::kToReal, "real"},
    {Prim::kToInt, "int"},
    {Prim::kSqrt, "sqrt"},
    {Prim::kLength, "length"},
    {Prim::kRange, "range"},
    {Prim::kRange1, "range1"},
    {Prim::kRestrict, "restrict"},
    {Prim::kCombine, "combine"},
    {Prim::kDist, "dist"},
    {Prim::kSeqIndex, "seq_index"},
    {Prim::kSeqIndexInner, "seq_index_inner"},
    {Prim::kSeqUpdate, "update"},
    {Prim::kFlatten, "flatten"},
    {Prim::kConcat, "concat"},
    {Prim::kSum, "sum"},
    {Prim::kMaxVal, "maxval"},
    {Prim::kMinVal, "minval"},
    {Prim::kAnyV, "any"},
    {Prim::kAllV, "all"},
    {Prim::kReverse, "reverse"},
    {Prim::kZip, "zip"},
    {Prim::kExtract, "extract"},
    {Prim::kInsert, "insert"},
}};

}  // namespace

const char* prim_name(Prim p) {
  for (const auto& e : kPrimTable) {
    if (e.op == p) return e.name;
  }
  if (p == Prim::kEmptyFrame) return "empty_frame";
  if (p == Prim::kAnyTrue) return "any_true";
  return "<prim>";
}

bool lookup_prim(const std::string& name, Prim* out) {
  for (const auto& e : kPrimTable) {
    if (name == e.name) {
      *out = e.op;
      return true;
    }
  }
  if (name == "empty_frame") {
    *out = Prim::kEmptyFrame;
    return true;
  }
  if (name == "any_true") {
    *out = Prim::kAnyTrue;
    return true;
  }
  return false;
}

ExprPtr make_expr(ExprNode node, TypePtr type, SourceLoc loc) {
  return std::make_shared<const Expr>(
      Expr{std::move(node), std::move(type), loc});
}

const FunDef* Program::find(const std::string& name) const {
  for (const FunDef& f : functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

FunDef* Program::find(const std::string& name) {
  for (FunDef& f : functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

bool Program::contains(const std::string& name) const {
  return find(name) != nullptr;
}

std::string extension_name(const std::string& base, int d) {
  if (d == 0) return base;
  return base + "^" + std::to_string(d);
}

}  // namespace proteus::lang
