#include "lang/ast.hpp"

#include <array>
#include <utility>

namespace proteus::lang {

namespace {

struct PrimEntry {
  Prim op;
  const char* name;
};

// Source-visible names. The representation primitives (extract, insert,
// empty_frame, any_true) are introduced only by the translation but are
// given names so transformed programs can be printed and re-parsed.
constexpr std::array<PrimEntry, 40> kPrimTable{{
    {Prim::kAdd, "+"},
    {Prim::kSub, "-"},
    {Prim::kMul, "*"},
    {Prim::kDiv, "/"},
    {Prim::kMod, "mod"},
    {Prim::kNeg, "neg"},
    {Prim::kMin, "min"},
    {Prim::kMax, "max"},
    {Prim::kEq, "=="},
    {Prim::kNe, "!="},
    {Prim::kLt, "<"},
    {Prim::kLe, "<="},
    {Prim::kGt, ">"},
    {Prim::kGe, ">="},
    {Prim::kAnd, "and"},
    {Prim::kOr, "or"},
    {Prim::kNot, "not"},
    {Prim::kToReal, "real"},
    {Prim::kToInt, "int"},
    {Prim::kSqrt, "sqrt"},
    {Prim::kLength, "length"},
    {Prim::kRange, "range"},
    {Prim::kRange1, "range1"},
    {Prim::kRestrict, "restrict"},
    {Prim::kCombine, "combine"},
    {Prim::kDist, "dist"},
    {Prim::kSeqIndex, "seq_index"},
    {Prim::kSeqIndexInner, "seq_index_inner"},
    {Prim::kSeqUpdate, "update"},
    {Prim::kFlatten, "flatten"},
    {Prim::kConcat, "concat"},
    {Prim::kSum, "sum"},
    {Prim::kMaxVal, "maxval"},
    {Prim::kMinVal, "minval"},
    {Prim::kAnyV, "any"},
    {Prim::kAllV, "all"},
    {Prim::kReverse, "reverse"},
    {Prim::kZip, "zip"},
    {Prim::kExtract, "extract"},
    {Prim::kInsert, "insert"},
}};

}  // namespace

const char* prim_name(Prim p) {
  for (const auto& e : kPrimTable) {
    if (e.op == p) return e.name;
  }
  if (p == Prim::kEmptyFrame) return "empty_frame";
  if (p == Prim::kAnyTrue) return "any_true";
  return "<prim>";
}

bool lookup_prim(const std::string& name, Prim* out) {
  for (const auto& e : kPrimTable) {
    if (name == e.name) {
      *out = e.op;
      return true;
    }
  }
  if (name == "empty_frame") {
    *out = Prim::kEmptyFrame;
    return true;
  }
  if (name == "any_true") {
    *out = Prim::kAnyTrue;
    return true;
  }
  return false;
}

int prim_arity(Prim p) {
  switch (p) {
    case Prim::kNeg:
    case Prim::kNot:
    case Prim::kToReal:
    case Prim::kToInt:
    case Prim::kSqrt:
    case Prim::kLength:
    case Prim::kRange1:
    case Prim::kFlatten:
    case Prim::kSum:
    case Prim::kMaxVal:
    case Prim::kMinVal:
    case Prim::kAnyV:
    case Prim::kAllV:
    case Prim::kReverse:
    case Prim::kEmptyFrame:
    case Prim::kAnyTrue:
      return 1;
    case Prim::kAdd:
    case Prim::kSub:
    case Prim::kMul:
    case Prim::kDiv:
    case Prim::kMod:
    case Prim::kMin:
    case Prim::kMax:
    case Prim::kEq:
    case Prim::kNe:
    case Prim::kLt:
    case Prim::kLe:
    case Prim::kGt:
    case Prim::kGe:
    case Prim::kAnd:
    case Prim::kOr:
    case Prim::kRange:
    case Prim::kRestrict:
    case Prim::kDist:
    case Prim::kSeqIndex:
    case Prim::kSeqIndexInner:
    case Prim::kConcat:
    case Prim::kZip:
    case Prim::kExtract:
      return 2;
    case Prim::kCombine:
    case Prim::kSeqUpdate:
    case Prim::kInsert:
      return 3;
  }
  return -1;
}

ExprPtr make_expr(ExprNode node, TypePtr type, SourceLoc loc) {
  return std::make_shared<const Expr>(
      Expr{std::move(node), std::move(type), loc});
}

const FunDef* Program::find(const std::string& name) const {
  for (const FunDef& f : functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

FunDef* Program::find(const std::string& name) {
  for (FunDef& f : functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

bool Program::contains(const std::string& name) const {
  return find(name) != nullptr;
}

std::string extension_name(const std::string& base, int d) {
  if (d == 0) return base;
  return base + "^" + std::to_string(d);
}

}  // namespace proteus::lang
