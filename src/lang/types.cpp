#include "lang/types.hpp"

#include <sstream>

namespace proteus::lang {

TypePtr Type::make(TypeKind kind, std::vector<TypePtr> children) {
  // Not make_shared: the constructor is private.
  return TypePtr(new Type(kind, std::move(children)));
}

const TypePtr& Type::elem() const {
  PROTEUS_REQUIRE(TypeError, kind_ == TypeKind::kSeq,
                  "elem() on non-sequence type");
  return children_[0];
}

const std::vector<TypePtr>& Type::components() const {
  PROTEUS_REQUIRE(TypeError, kind_ == TypeKind::kTuple,
                  "components() on non-tuple type");
  return children_;
}

std::vector<TypePtr> Type::params() const {
  PROTEUS_REQUIRE(TypeError, kind_ == TypeKind::kFun,
                  "params() on non-function type");
  return {children_.begin(), children_.end() - 1};
}

const TypePtr& Type::result() const {
  PROTEUS_REQUIRE(TypeError, kind_ == TypeKind::kFun,
                  "result() on non-function type");
  return children_.back();
}

TypePtr Type::int_() {
  static const TypePtr t = make(TypeKind::kInt, {});
  return t;
}

TypePtr Type::real() {
  static const TypePtr t = make(TypeKind::kReal, {});
  return t;
}

TypePtr Type::bool_() {
  static const TypePtr t = make(TypeKind::kBool, {});
  return t;
}

TypePtr Type::seq(TypePtr elem) {
  PROTEUS_REQUIRE(TypeError, elem != nullptr, "seq() of null type");
  return make(TypeKind::kSeq, {std::move(elem)});
}

TypePtr Type::seq_n(TypePtr base, int d) {
  PROTEUS_REQUIRE(TypeError, d >= 0, "seq_n() with negative depth");
  TypePtr t = std::move(base);
  for (int i = 0; i < d; ++i) t = seq(std::move(t));
  return t;
}

TypePtr Type::tuple(std::vector<TypePtr> components) {
  PROTEUS_REQUIRE(TypeError, !components.empty(),
                  "tuple type needs at least one component");
  return make(TypeKind::kTuple, std::move(components));
}

TypePtr Type::fun(std::vector<TypePtr> params, TypePtr result) {
  std::vector<TypePtr> children = params;
  children.push_back(std::move(result));
  TypePtr t = make(TypeKind::kFun, std::move(children));
  return t;
}

bool equal(const TypePtr& a, const TypePtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case TypeKind::kInt:
    case TypeKind::kReal:
    case TypeKind::kBool:
      return true;
    case TypeKind::kSeq:
      return equal(a->elem(), b->elem());
    case TypeKind::kTuple: {
      const auto& ca = a->components();
      const auto& cb = b->components();
      if (ca.size() != cb.size()) return false;
      for (std::size_t i = 0; i < ca.size(); ++i) {
        if (!equal(ca[i], cb[i])) return false;
      }
      return true;
    }
    case TypeKind::kFun: {
      const auto& pa = a->params();
      const auto& pb = b->params();
      if (pa.size() != pb.size()) return false;
      for (std::size_t i = 0; i < pa.size(); ++i) {
        if (!equal(pa[i], pb[i])) return false;
      }
      return equal(a->result(), b->result());
    }
  }
  return false;
}

std::string to_string(const TypePtr& t) {
  if (t == nullptr) return "<untyped>";
  std::ostringstream os;
  switch (t->kind()) {
    case TypeKind::kInt:
      os << "int";
      break;
    case TypeKind::kReal:
      os << "real";
      break;
    case TypeKind::kBool:
      os << "bool";
      break;
    case TypeKind::kSeq:
      os << "seq(" << to_string(t->elem()) << ')';
      break;
    case TypeKind::kTuple: {
      os << '(';
      const auto& cs = t->components();
      for (std::size_t i = 0; i < cs.size(); ++i) {
        if (i > 0) os << ", ";
        os << to_string(cs[i]);
      }
      os << ')';
      break;
    }
    case TypeKind::kFun: {
      os << '(';
      const auto& ps = t->params();
      for (std::size_t i = 0; i < ps.size(); ++i) {
        if (i > 0) os << ", ";
        os << to_string(ps[i]);
      }
      os << ") -> " << to_string(t->result());
      break;
    }
  }
  return os.str();
}

int seq_depth(const TypePtr& t) {
  int d = 0;
  const Type* cur = t.get();
  while (cur != nullptr && cur->kind() == TypeKind::kSeq) {
    ++d;
    cur = cur->elem().get();
  }
  return d;
}

TypePtr seq_base(const TypePtr& t) {
  TypePtr cur = t;
  while (cur != nullptr && cur->kind() == TypeKind::kSeq) cur = cur->elem();
  return cur;
}

}  // namespace proteus::lang
