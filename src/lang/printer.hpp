// printer.hpp — renders expressions and programs back to concrete syntax.
//
// Transformed (V-form) programs print depth-extended calls with the
// paper's notation, e.g. `mult^2(j, j)` and `range1^1(n)`, so the worked
// example of Section 5 can be compared textually against the paper.
#pragma once

#include <string>

#include "lang/ast.hpp"

namespace proteus::lang {

/// Renders one expression on a single line.
[[nodiscard]] std::string to_text(const ExprPtr& expr);

/// Renders a function definition (multi-line, indented body).
[[nodiscard]] std::string to_text(const FunDef& fun);

/// Renders a whole program.
[[nodiscard]] std::string to_text(const Program& program);

}  // namespace proteus::lang
