// parser.hpp — recursive-descent parser for the concrete syntax of P.
//
// Grammar (operators listed loosest-to-tightest):
//
//   program  := fundef*
//   fundef   := 'fun' IDENT '(' [param {',' param}] ')' [':' type] '=' expr
//   param    := IDENT ':' type
//   type     := 'int' | 'real' | 'bool' | 'seq' '(' type ')'
//             | '(' type {',' type} ')' ['->' type]
//   expr     := 'fun' '(' params ')' '=>' expr          (lambda)
//             | 'let' IDENT '=' expr 'in' expr
//             | 'if' expr 'then' expr 'else' expr
//             | or-expr
//   or / and / not / comparison / (+ - ++) / (* / mod) / unary(- #)
//   postfix  := primary { '(' args ')' | '[' expr ']' | '.' INT }
//   primary  := literal | IDENT
//             | '(' expr {',' expr} ')'                 (group / tuple)
//             | '(' '[' ']' ':' type ')'                (typed empty seq)
//             | '[' expr '..' expr ']'                  (range)
//             | '[' IDENT '<-' expr ['|' expr] ':' expr ']'   (iterator)
//             | '[' [expr {',' expr}] ']'               (sequence literal)
//
// The parser resolves no names: every application is a Call node and every
// identifier a VarRef; see typecheck.hpp.
#pragma once

#include <string_view>

#include "lang/ast.hpp"

namespace proteus::lang {

/// Parses a whole program (a sequence of function definitions).
[[nodiscard]] Program parse_program(std::string_view source);

/// Parses a single expression (for tests and the REPL-style examples).
[[nodiscard]] ExprPtr parse_expression(std::string_view source);

/// Parses a type (for tests).
[[nodiscard]] TypePtr parse_type(std::string_view source);

}  // namespace proteus::lang
