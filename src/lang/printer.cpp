#include "lang/printer.hpp"

#include <sstream>

#include "rt/governor.hpp"

namespace proteus::lang {

namespace {

bool is_infix(Prim p) {
  switch (p) {
    case Prim::kAdd:
    case Prim::kSub:
    case Prim::kMul:
    case Prim::kDiv:
    case Prim::kMod:
    case Prim::kEq:
    case Prim::kNe:
    case Prim::kLt:
    case Prim::kLe:
    case Prim::kGt:
    case Prim::kGe:
    case Prim::kAnd:
    case Prim::kOr:
      return true;
    default:
      return false;
  }
}

class Printer {
 public:
  std::string expr_text(const ExprPtr& e) {
    os_.str("");
    render(e);
    return os_.str();
  }

  std::string fun_text(const FunDef& f) {
    os_.str("");
    os_ << "fun " << f.name << '(';
    for (std::size_t i = 0; i < f.params.size(); ++i) {
      if (i > 0) os_ << ", ";
      os_ << f.params[i].name << ": " << to_string(f.params[i].type);
    }
    os_ << ')';
    if (f.result != nullptr) os_ << ": " << to_string(f.result);
    os_ << " =\n  ";
    render(f.body);
    os_ << '\n';
    return os_.str();
  }

 private:
  void render(const ExprPtr& e) {
    // Rendering recurses with the AST; deep (possibly synthesized) trees
    // trap (T003) rather than overrun the C++ stack mid-print.
    rt::NestingGuard nesting(&depth_, "printer");
    std::visit([&](const auto& node) { render_node(node, e); }, e->node);
  }

  void render_list(const std::vector<ExprPtr>& items) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i > 0) os_ << ", ";
      render(items[i]);
    }
  }

  void render_node(const IntLit& n, const ExprPtr&) { os_ << n.value; }
  void render_node(const RealLit& n, const ExprPtr&) { os_ << n.value; }
  void render_node(const BoolLit& n, const ExprPtr&) {
    os_ << (n.value ? "true" : "false");
  }
  void render_node(const VarRef& n, const ExprPtr&) { os_ << n.name; }

  void render_node(const Let& n, const ExprPtr&) {
    os_ << "let " << n.var << " = ";
    render(n.init);
    os_ << " in ";
    render(n.body);
  }

  void render_node(const If& n, const ExprPtr&) {
    os_ << "if ";
    render(n.cond);
    os_ << " then ";
    render(n.then_expr);
    os_ << " else ";
    render(n.else_expr);
  }

  void render_node(const Iterator& n, const ExprPtr&) {
    os_ << '[' << n.var << " <- ";
    render(n.domain);
    if (n.filter != nullptr) {
      os_ << " | ";
      render(n.filter);
    }
    os_ << " : ";
    render(n.body);
    os_ << ']';
  }

  void render_node(const Call& n, const ExprPtr&) {
    // Unresolved calls: render operator names infix and simple names as
    // ordinary calls so pre-typecheck trees read like source.
    if (const auto* var = as<VarRef>(n.callee)) {
      Prim p;
      if (n.args.size() == 2 && lookup_prim(var->name, &p) && is_infix(p)) {
        os_ << '(';
        render(n.args[0]);
        os_ << ' ' << var->name << ' ';
        render(n.args[1]);
        os_ << ')';
        return;
      }
      os_ << var->name << '(';
      render_list(n.args);
      os_ << ')';
      return;
    }
    os_ << '(';
    render(n.callee);
    os_ << ")(";
    render_list(n.args);
    os_ << ')';
  }

  void render_node(const PrimCall& n, const ExprPtr&) {
    if (n.depth == 0 && is_infix(n.op) && n.args.size() == 2) {
      os_ << '(';
      render(n.args[0]);
      os_ << ' ' << prim_name(n.op) << ' ';
      render(n.args[1]);
      os_ << ')';
      return;
    }
    os_ << spelled_name(prim_name(n.op)) << suffix(n.depth) << '(';
    render_list(n.args);
    os_ << ')';
  }

  void render_node(const FunCall& n, const ExprPtr&) {
    os_ << n.name << suffix(n.depth) << '(';
    render_list(n.args);
    os_ << ')';
  }

  void render_node(const IndirectCall& n, const ExprPtr&) {
    if (n.depth == 0) {
      // (f)(args): parseable application of a function value.
      os_ << '(';
      render(n.fn);
      os_ << ")(";
      render_list(n.args);
      os_ << ')';
      return;
    }
    os_ << "apply" << suffix(n.depth) << '(';
    render(n.fn);
    if (!n.args.empty()) {
      os_ << ", ";
      render_list(n.args);
    }
    os_ << ')';
  }

  void render_node(const TupleExpr& n, const ExprPtr&) {
    if (n.depth > 0) {
      os_ << "tuple_cons" << suffix(n.depth) << '(';
      render_list(n.elems);
      os_ << ')';
      return;
    }
    os_ << '(';
    render_list(n.elems);
    os_ << ')';
  }

  void render_node(const TupleGet& n, const ExprPtr&) {
    if (n.depth > 0) {
      os_ << "tuple_extract" << suffix(n.depth) << '(';
      render(n.tuple);
      os_ << ", " << n.index << ')';
      return;
    }
    render(n.tuple);
    os_ << '.' << n.index;
  }

  void render_node(const SeqExpr& n, const ExprPtr& e) {
    if (n.depth > 0) {
      os_ << "seq_cons" << suffix(n.depth) << '(';
      render_list(n.elems);
      os_ << ')';
      return;
    }
    if (n.elems.empty()) {
      if (e->type != nullptr) {
        os_ << "([] : " << to_string(e->type) << ')';
      } else {
        os_ << "[]";  // untyped literal: type comes from context
      }
      return;
    }
    os_ << '[';
    render_list(n.elems);
    os_ << ']';
  }

  void render_node(const LambdaExpr& n, const ExprPtr&) {
    os_ << "fun(";
    for (std::size_t i = 0; i < n.params.size(); ++i) {
      if (i > 0) os_ << ", ";
      os_ << n.params[i] << ": " << to_string(n.param_types[i]);
    }
    os_ << ") => ";
    render(n.body);
  }

  /// Infix primitive names need a spellable form in prefix position
  /// (e.g. the depth-1 extension of + prints as `add^1`).
  static std::string spelled_name(const std::string& name) {
    if (name == "+") return "add";
    if (name == "-") return "sub";
    if (name == "*") return "mult";
    if (name == "/") return "div";
    if (name == "==") return "eq";
    if (name == "!=") return "ne";
    if (name == "<") return "lt";
    if (name == "<=") return "le";
    if (name == ">") return "gt";
    if (name == ">=") return "ge";
    return name;
  }

  static std::string suffix(int depth) {
    // Built up via += (not `"^" + to_string(...)`): the temporary-insert
    // form trips GCC 12's -Werror=restrict false positive (PR105651)
    // under -O2 and higher.
    std::string out;
    if (depth != 0) {
      out += '^';
      out += std::to_string(depth);
    }
    return out;
  }

  std::ostringstream os_;
  int depth_ = 0;  ///< current AST-recursion depth
};

}  // namespace

std::string to_text(const ExprPtr& expr) { return Printer().expr_text(expr); }

std::string to_text(const FunDef& fun) { return Printer().fun_text(fun); }

std::string to_text(const Program& program) {
  std::string out;
  for (const FunDef& f : program.functions) {
    out += to_text(f);
    out += '\n';
  }
  return out;
}

}  // namespace proteus::lang
