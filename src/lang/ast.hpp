// ast.hpp — abstract syntax of the source language P and of its
// transformed, iterator-free form V.
//
// One expression type serves both languages: the parser produces P nodes
// (including Iterator and unresolved Call), the type checker resolves
// calls into PrimCall / FunCall / IndirectCall, and the transformation
// engine (src/xform) eliminates Iterator nodes and introduces depth-d
// parallel extensions (the `depth` field of the call nodes) plus the
// representation primitives kExtract / kInsert / kEmptyFrame / kAnyTrue of
// Section 4. A well-formed V expression contains no Iterator or Call
// nodes and no filter clauses.
//
// Expressions are immutable and shared; transformation passes build new
// spines and share unchanged subtrees.
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "lang/types.hpp"
#include "vl/vec.hpp"

namespace proteus::lang {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Source position for diagnostics.
struct SourceLoc {
  int line = 0;
  int column = 0;
};

/// The predefined functions of P (Table 2), the Section 4 representation
/// primitives, and the Section 4.5 extended primitive set.
enum class Prim : std::uint8_t {
  // scalar arithmetic / comparison / logic (overloaded on Int/Real)
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kNeg,
  kMin,
  kMax,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kNot,
  kToReal,
  kToInt,
  kSqrt,  // sqrt : real -> real
  // sequence primitives of Table 2
  kLength,     // #e
  kRange,      // [e1 .. e2]
  kRange1,     // range1(n) = [1..n]
  kRestrict,   // restrict(v, m)
  kCombine,    // combine(m, v, u)
  kDist,       // dist(c, r)
  kSeqIndex,   // v[i]        (1-origin)
  kSeqIndexInner,  // seq_index_inner(v, is) = [v[i] : i in is] — the
                   // Section 4.5 shared-row gather introduced by the
                   // optimizer (never written in source)
  kSeqUpdate,  // update(s, i, v) — out-of-place single-level update
  // Section 4.5 extended predefined functions
  kFlatten,    // flatten(v) : Seq(Seq(a)) -> Seq(a)
  kConcat,     // v ++ w
  kSum,        // sum(v)
  kMaxVal,     // maxval(v) (nonempty)
  kMinVal,     // minval(v) (nonempty)
  kAnyV,       // any(v)
  kAllV,       // all(v)
  kReverse,    // reverse(v)
  kZip,        // zip(a, b) : (Seq(x), Seq(y)) -> Seq((x, y))
  // representation primitives introduced by the translation (Section 4)
  kExtract,     // extract(frame, d)  — second arg is an Int literal
  kInsert,      // insert(result, frame, d)
  kEmptyFrame,  // empty frame with the node's static type
  kAnyTrue,     // the R2d guard: restrict(M,M) != empty_frame(M)
};

/// Name of a primitive as it appears in source / printed output.
[[nodiscard]] const char* prim_name(Prim p);

/// Looks up a primitive by source name; returns false when `name` is not
/// a primitive.
[[nodiscard]] bool lookup_prim(const std::string& name, Prim* out);

/// Number of arguments a primitive takes (extract/insert counts include
/// the trailing literal depth argument; empty_frame counts the mask).
/// Shared by the type checker's resolution, the static shape analyzer,
/// and the VCODE bytecode verifier so arity knowledge cannot drift.
[[nodiscard]] int prim_arity(Prim p);

// --- expression node payloads -----------------------------------------------

struct IntLit {
  vl::Int value;
};

struct RealLit {
  vl::Real value;
};

struct BoolLit {
  bool value;
};

/// Reference to a let/iterator-bound variable, a function parameter, or a
/// top-level function name (resolved during type checking; `is_function`
/// marks the last case).
struct VarRef {
  std::string name;
  bool is_function = false;
};

struct Let {
  std::string var;
  ExprPtr init;
  ExprPtr body;
};

struct If {
  ExprPtr cond;
  ExprPtr then_expr;
  ExprPtr else_expr;
};

/// The data-parallel construct of P: [var <- domain : body] and its
/// filtered form [var <- domain | filter : body] (filter may be null).
struct Iterator {
  std::string var;
  ExprPtr domain;
  ExprPtr filter;  // may be null
  ExprPtr body;
};

/// Unresolved application (parser output only).
struct Call {
  ExprPtr callee;
  std::vector<ExprPtr> args;
};

/// Application of the depth-`depth` parallel extension of a primitive.
///
/// When depth > 0, `lifted[i]` says whether argument i is a depth-`depth`
/// frame (1) or a depth-0 value broadcast across the frame (0) — the
/// Section 4.5 optimization of not replicating invariant arguments. An
/// empty `lifted` means every argument is a frame.
struct PrimCall {
  Prim op;
  int depth = 0;
  std::vector<ExprPtr> args;
  std::vector<std::uint8_t> lifted;
};

/// Application of the depth-`depth` parallel extension of a named
/// top-level function. Unlike primitives, user functions receive every
/// non-function argument as a frame (the transformation dist's invariant
/// arguments up, as Section 3 prescribes); function-typed arguments are
/// always broadcast.
struct FunCall {
  std::string name;
  int depth = 0;
  std::vector<ExprPtr> args;
  std::vector<std::uint8_t> lifted;
};

/// Application of a function *value* (a function-typed variable), at
/// parallel-extension depth `depth`.
struct IndirectCall {
  ExprPtr fn;
  int depth = 0;
  std::vector<ExprPtr> args;
  std::vector<std::uint8_t> lifted;
};

/// Tuple construction; depth > 0 is the parallel extension (every element
/// expression is then a depth-`depth` frame).
struct TupleExpr {
  std::vector<ExprPtr> elems;
  int depth = 0;
};

/// 1-origin tuple component extraction e.k (k a static constant); depth > 0
/// extracts the component from every tuple in a depth-`depth` frame.
struct TupleGet {
  ExprPtr tuple;
  int index;
  int depth = 0;
};

/// Sequence literal [e1, ..., en]; depth > 0 is the parallel extension of
/// seq_cons (builds one length-n sequence per frame slot).
struct SeqExpr {
  std::vector<ExprPtr> elems;
  /// Element type; required to type the empty literal `[] : seq(T)`.
  TypePtr elem_type;  // may be null before type checking for nonempty lits
  int depth = 0;
};

/// Fully-parameterized lambda (no free variables; enforced by the checker).
struct LambdaExpr {
  std::vector<std::string> params;
  std::vector<TypePtr> param_types;
  ExprPtr body;
  /// Name assigned during lambda lifting (empty before lifting).
  std::string lifted_name;
};

using ExprNode =
    std::variant<IntLit, RealLit, BoolLit, VarRef, Let, If, Iterator, Call,
                 PrimCall, FunCall, IndirectCall, TupleExpr, TupleGet, SeqExpr,
                 LambdaExpr>;

/// An expression: payload + static type (null until type checking) +
/// source location.
struct Expr {
  ExprNode node;
  TypePtr type;
  SourceLoc loc;
};

/// Builds an expression node (type/loc optional).
ExprPtr make_expr(ExprNode node, TypePtr type = nullptr, SourceLoc loc = {});

/// Convenience accessors; each returns nullptr when the node kind differs.
template <typename T>
const T* as(const ExprPtr& e) {
  return e == nullptr ? nullptr : std::get_if<T>(&e->node);
}

// --- function definitions and programs ---------------------------------------

struct Param {
  std::string name;
  TypePtr type;
};

/// Top-level `fun name(p1: T1, ...): R = body`. Parallel extensions
/// generated by the transformation are stored as separate FunDefs named
/// `name^d` with `extension_of == name` and `extension_depth == d`.
struct FunDef {
  std::string name;
  std::vector<Param> params;
  TypePtr result;  // may be null before checking when omitted in source
  ExprPtr body;
  SourceLoc loc;

  std::string extension_of;  // empty for user-written functions
  int extension_depth = 0;
};

/// A program: an ordered set of named function definitions.
struct Program {
  std::vector<FunDef> functions;

  [[nodiscard]] const FunDef* find(const std::string& name) const;
  [[nodiscard]] FunDef* find(const std::string& name);
  [[nodiscard]] bool contains(const std::string& name) const;
};

/// The name of the depth-d parallel extension of `f` (f itself for d == 0).
[[nodiscard]] std::string extension_name(const std::string& base, int d);

}  // namespace proteus::lang
