// types.hpp — the static types of the source language P (Section 2):
//
//   T ::= Int | Real | Bool | Seq(T) | (T x ... x T) | (T,...,T) -> T
//
// (Real is a conservative extension of the paper's scalar set, which the
// paper itself says is "limited to simplify the exposition".) All types
// are static and monomorphic; overloaded arithmetic is resolved during
// type checking. Types are immutable shared values with structural
// equality.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "vl/check.hpp"

namespace proteus::lang {

class Type;
using TypePtr = std::shared_ptr<const Type>;

enum class TypeKind : std::uint8_t {
  kInt,
  kReal,
  kBool,
  kSeq,
  kTuple,
  kFun,
};

/// A monomorphic type of P. Construct through the factory functions below
/// (scalar types are interned singletons).
class Type {
 public:
  [[nodiscard]] TypeKind kind() const { return kind_; }

  [[nodiscard]] bool is_scalar() const {
    return kind_ == TypeKind::kInt || kind_ == TypeKind::kReal ||
           kind_ == TypeKind::kBool;
  }
  [[nodiscard]] bool is_numeric() const {
    return kind_ == TypeKind::kInt || kind_ == TypeKind::kReal;
  }
  [[nodiscard]] bool is_seq() const { return kind_ == TypeKind::kSeq; }
  [[nodiscard]] bool is_tuple() const { return kind_ == TypeKind::kTuple; }
  [[nodiscard]] bool is_fun() const { return kind_ == TypeKind::kFun; }

  /// Element type of a Seq type (throws TypeError otherwise).
  [[nodiscard]] const TypePtr& elem() const;

  /// Component types of a tuple type (throws TypeError otherwise).
  [[nodiscard]] const std::vector<TypePtr>& components() const;

  /// Parameter types of a function type (throws TypeError otherwise).
  [[nodiscard]] std::vector<TypePtr> params() const;

  /// Result type of a function type (throws TypeError otherwise).
  [[nodiscard]] const TypePtr& result() const;

  // Factories (scalar results are interned; Seq/Tuple/Fun are fresh nodes).
  static TypePtr int_();
  static TypePtr real();
  static TypePtr bool_();
  static TypePtr seq(TypePtr elem);
  /// Seq^d(base): d nested Seq wrappers.
  static TypePtr seq_n(TypePtr base, int d);
  static TypePtr tuple(std::vector<TypePtr> components);
  static TypePtr fun(std::vector<TypePtr> params, TypePtr result);

 private:
  Type(TypeKind kind, std::vector<TypePtr> children)
      : kind_(kind), children_(std::move(children)) {}

  static TypePtr make(TypeKind kind, std::vector<TypePtr> children);

  TypeKind kind_;
  std::vector<TypePtr> children_;  // Seq: [elem]; Tuple: comps; Fun: params+result
};

/// Structural equality.
[[nodiscard]] bool equal(const TypePtr& a, const TypePtr& b);

/// Rendered form, e.g. "seq(seq(int))", "(int, bool)", "(int) -> int".
[[nodiscard]] std::string to_string(const TypePtr& t);

/// Number of Seq wrappers before a non-Seq type is reached.
[[nodiscard]] int seq_depth(const TypePtr& t);

/// The type under all Seq wrappers.
[[nodiscard]] TypePtr seq_base(const TypePtr& t);

}  // namespace proteus::lang
