#include "lang/parser.hpp"

#include <utility>

#include "lang/lexer.hpp"
#include "rt/governor.hpp"
#include "vl/check.hpp"

namespace proteus::lang {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(lex(source)) {}

  Program program() {
    Program p;
    while (!at(Tok::kEnd)) {
      p.functions.push_back(fundef());
    }
    return p;
  }

  ExprPtr expression_only() {
    ExprPtr e = expr();
    expect(Tok::kEnd, "after expression");
    return e;
  }

  TypePtr type_only() {
    TypePtr t = type();
    expect(Tok::kEnd, "after type");
    return t;
  }

 private:
  // --- token plumbing --------------------------------------------------------

  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    std::size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;  // the kEnd token
    return tokens_[i];
  }

  [[nodiscard]] bool at(Tok t) const { return peek().kind == t; }

  const Token& advance() { return tokens_[pos_++]; }

  bool accept(Tok t) {
    if (at(t)) {
      advance();
      return true;
    }
    return false;
  }

  const Token& expect(Tok t, const char* context) {
    if (!at(t)) {
      fail("expected " + token_name(t) + " " + context + ", found " +
           token_name(peek().kind));
    }
    return advance();
  }

  [[noreturn]] void fail(const std::string& msg) const {
    const Token& t = peek();
    throw SyntaxError("parse error at " + std::to_string(t.loc.line) + ":" +
                      std::to_string(t.loc.column) + ": " + msg);
  }

  // --- types -----------------------------------------------------------------

  TypePtr type() {
    // Recursive descent mirrors source nesting; bound it so adversarially
    // deep inputs trap (T003) instead of overrunning the C++ stack.
    rt::NestingGuard nesting(&depth_, "parser");
    if (at(Tok::kIdent)) {
      const std::string& name = peek().text;
      if (name == "int") {
        advance();
        return Type::int_();
      }
      if (name == "real") {
        advance();
        return Type::real();
      }
      if (name == "bool") {
        advance();
        return Type::bool_();
      }
      if (name == "seq") {
        advance();
        expect(Tok::kLParen, "after 'seq'");
        TypePtr elem = type();
        expect(Tok::kRParen, "to close 'seq('");
        return Type::seq(std::move(elem));
      }
      fail("unknown type name '" + name + "'");
    }
    if (accept(Tok::kLParen)) {
      std::vector<TypePtr> items;
      if (!at(Tok::kRParen)) {
        items.push_back(type());
        while (accept(Tok::kComma)) items.push_back(type());
      }
      expect(Tok::kRParen, "to close type list");
      if (accept(Tok::kArrow)) {
        TypePtr result = type();
        return Type::fun(std::move(items), std::move(result));
      }
      if (items.size() == 1) return items[0];
      if (items.empty()) fail("empty tuple type");
      return Type::tuple(std::move(items));
    }
    fail("expected a type");
  }

  // --- function definitions --------------------------------------------------

  std::vector<Param> params() {
    std::vector<Param> ps;
    expect(Tok::kLParen, "to open parameter list");
    if (!at(Tok::kRParen)) {
      do {
        Param p;
        p.name = expect(Tok::kIdent, "as parameter name").text;
        expect(Tok::kColon, "after parameter name");
        p.type = type();
        ps.push_back(std::move(p));
      } while (accept(Tok::kComma));
    }
    expect(Tok::kRParen, "to close parameter list");
    return ps;
  }

  FunDef fundef() {
    FunDef f;
    f.loc = peek().loc;
    expect(Tok::kFun, "to begin a function definition");
    f.name = expect(Tok::kIdent, "as function name").text;
    f.params = params();
    if (accept(Tok::kColon)) f.result = type();
    expect(Tok::kAssign, "before function body");
    f.body = expr();
    return f;
  }

  // --- expressions -----------------------------------------------------------

  ExprPtr expr() {
    // Same stack-depth bound as type(): parse depth tracks source nesting.
    rt::NestingGuard nesting(&depth_, "parser");
    SourceLoc loc = peek().loc;
    if (at(Tok::kFun)) return lambda(loc);
    if (accept(Tok::kLet)) {
      // Destructuring form: let (a, b, ...) = e in body
      if (accept(Tok::kLParen)) {
        std::vector<std::string> names;
        do {
          names.push_back(expect(Tok::kIdent, "in destructuring let").text);
        } while (accept(Tok::kComma));
        expect(Tok::kRParen, "to close destructuring pattern");
        expect(Tok::kAssign, "after destructuring pattern");
        ExprPtr init = expr();
        expect(Tok::kIn, "after let initializer");
        ExprPtr body = expr();
        // let _tdst = e in let a = _tdst.1 in let b = _tdst.2 in ... body
        std::string tmp = "_tdst" + std::to_string(++update_counter_);
        for (std::size_t k = names.size(); k-- > 0;) {
          ExprPtr comp = make_expr(
              TupleGet{make_expr(VarRef{tmp, false}, nullptr, loc),
                       static_cast<int>(k) + 1},
              nullptr, loc);
          body = make_expr(Let{names[k], std::move(comp), std::move(body)},
                           nullptr, loc);
        }
        return make_expr(Let{tmp, std::move(init), std::move(body)}, nullptr,
                         loc);
      }
      std::string var = expect(Tok::kIdent, "after 'let'").text;
      expect(Tok::kAssign, "after let variable");
      ExprPtr init = expr();
      expect(Tok::kIn, "after let initializer");
      ExprPtr body = expr();
      return make_expr(Let{std::move(var), std::move(init), std::move(body)},
                       nullptr, loc);
    }
    if (accept(Tok::kIf)) {
      ExprPtr cond = expr();
      expect(Tok::kThen, "after if condition");
      ExprPtr then_e = expr();
      expect(Tok::kElse, "after then branch");
      ExprPtr else_e = expr();
      return make_expr(
          If{std::move(cond), std::move(then_e), std::move(else_e)}, nullptr,
          loc);
    }
    return or_expr();
  }

  ExprPtr lambda(SourceLoc loc) {
    expect(Tok::kFun, "to begin a lambda");
    std::vector<Param> ps = params();
    expect(Tok::kFatArrow, "after lambda parameters");
    ExprPtr body = expr();
    LambdaExpr lam;
    for (Param& p : ps) {
      lam.params.push_back(std::move(p.name));
      lam.param_types.push_back(std::move(p.type));
    }
    lam.body = std::move(body);
    return make_expr(std::move(lam), nullptr, loc);
  }

  ExprPtr prim_call(const char* name, std::vector<ExprPtr> args,
                    SourceLoc loc) {
    ExprPtr callee = make_expr(VarRef{name, false}, nullptr, loc);
    return make_expr(Call{std::move(callee), std::move(args)}, nullptr, loc);
  }

  ExprPtr or_expr() {
    ExprPtr lhs = and_expr();
    while (at(Tok::kOr)) {
      SourceLoc loc = advance().loc;
      lhs = prim_call("or", {lhs, and_expr()}, loc);
    }
    return lhs;
  }

  ExprPtr and_expr() {
    ExprPtr lhs = not_expr();
    while (at(Tok::kAnd)) {
      SourceLoc loc = advance().loc;
      lhs = prim_call("and", {lhs, not_expr()}, loc);
    }
    return lhs;
  }

  ExprPtr not_expr() {
    if (at(Tok::kNot)) {
      SourceLoc loc = advance().loc;
      return prim_call("not", {not_expr()}, loc);
    }
    return cmp_expr();
  }

  ExprPtr cmp_expr() {
    ExprPtr lhs = add_expr();
    const char* op = nullptr;
    switch (peek().kind) {
      case Tok::kEqEq:
        op = "==";
        break;
      case Tok::kBangEq:
        op = "!=";
        break;
      case Tok::kLt:
        op = "<";
        break;
      case Tok::kLe:
        op = "<=";
        break;
      case Tok::kGt:
        op = ">";
        break;
      case Tok::kGe:
        op = ">=";
        break;
      default:
        return lhs;
    }
    SourceLoc loc = advance().loc;
    return prim_call(op, {lhs, add_expr()}, loc);  // comparisons non-assoc
  }

  ExprPtr add_expr() {
    ExprPtr lhs = mul_expr();
    for (;;) {
      if (at(Tok::kPlus)) {
        SourceLoc loc = advance().loc;
        lhs = prim_call("+", {lhs, mul_expr()}, loc);
      } else if (at(Tok::kMinus)) {
        SourceLoc loc = advance().loc;
        lhs = prim_call("-", {lhs, mul_expr()}, loc);
      } else if (at(Tok::kPlusPlus)) {
        SourceLoc loc = advance().loc;
        lhs = prim_call("concat", {lhs, mul_expr()}, loc);
      } else {
        return lhs;
      }
    }
  }

  ExprPtr mul_expr() {
    ExprPtr lhs = unary_expr();
    for (;;) {
      if (at(Tok::kStar)) {
        SourceLoc loc = advance().loc;
        lhs = prim_call("*", {lhs, unary_expr()}, loc);
      } else if (at(Tok::kSlash)) {
        SourceLoc loc = advance().loc;
        lhs = prim_call("/", {lhs, unary_expr()}, loc);
      } else if (at(Tok::kMod)) {
        SourceLoc loc = advance().loc;
        lhs = prim_call("mod", {lhs, unary_expr()}, loc);
      } else {
        return lhs;
      }
    }
  }

  ExprPtr unary_expr() {
    if (at(Tok::kMinus)) {
      SourceLoc loc = advance().loc;
      return prim_call("neg", {unary_expr()}, loc);
    }
    if (at(Tok::kHash)) {
      SourceLoc loc = advance().loc;
      return prim_call("length", {unary_expr()}, loc);
    }
    return postfix_expr();
  }

  ExprPtr postfix_expr() {
    ExprPtr e = primary_expr();
    for (;;) {
      if (at(Tok::kLParen)) {
        SourceLoc loc = advance().loc;
        std::vector<ExprPtr> args;
        if (!at(Tok::kRParen)) {
          args.push_back(expr());
          while (accept(Tok::kComma)) args.push_back(expr());
        }
        expect(Tok::kRParen, "to close argument list");
        e = make_expr(Call{std::move(e), std::move(args)}, nullptr, loc);
      } else if (at(Tok::kLBracket)) {
        SourceLoc loc = advance().loc;
        ExprPtr index = expr();
        expect(Tok::kRBracket, "to close index");
        e = prim_call("seq_index", {std::move(e), std::move(index)}, loc);
      } else if (at(Tok::kDot)) {
        SourceLoc loc = advance().loc;
        // "t.2.1" lexes the trailing "2.1" as a real literal; reinterpret
        // it as two chained component indices.
        if (at(Tok::kRealLit)) {
          const Token& k = advance();
          std::size_t dot = k.text.find('.');
          if (dot == std::string::npos ||
              k.text.find_first_not_of("0123456789.") != std::string::npos ||
              k.text.find('.', dot + 1) != std::string::npos) {
            fail("expected integer tuple component indices");
          }
          int first = std::stoi(k.text.substr(0, dot));
          int second = std::stoi(k.text.substr(dot + 1));
          e = make_expr(TupleGet{std::move(e), first}, nullptr, loc);
          e = make_expr(TupleGet{std::move(e), second}, nullptr, loc);
        } else {
          const Token& k = expect(Tok::kIntLit, "as tuple component index");
          e = make_expr(TupleGet{std::move(e), static_cast<int>(k.int_value)},
                        nullptr, loc);
        }
      } else {
        return e;
      }
    }
  }

  ExprPtr primary_expr() {
    SourceLoc loc = peek().loc;
    if (at(Tok::kIntLit)) {
      return make_expr(IntLit{advance().int_value}, nullptr, loc);
    }
    if (at(Tok::kRealLit)) {
      return make_expr(RealLit{advance().real_value}, nullptr, loc);
    }
    if (accept(Tok::kTrue)) return make_expr(BoolLit{true}, nullptr, loc);
    if (accept(Tok::kFalse)) return make_expr(BoolLit{false}, nullptr, loc);
    if (at(Tok::kIdent)) {
      return make_expr(VarRef{advance().text, false}, nullptr, loc);
    }
    if (accept(Tok::kLParen)) return paren_expr(loc);
    if (accept(Tok::kLBracket)) return bracket_expr(loc);
    fail("expected an expression, found " + token_name(peek().kind));
  }

  /// '(' already consumed: grouping, tuple, or ascribed sequence literal.
  ExprPtr paren_expr(SourceLoc loc) {
    ExprPtr first = expr();
    // Deep functional update, Table 2: (s; [i1][i2]...[ik] : v).
    if (accept(Tok::kSemicolon)) {
      std::vector<ExprPtr> path;
      while (accept(Tok::kLBracket)) {
        path.push_back(expr());
        expect(Tok::kRBracket, "to close update index");
      }
      if (path.empty()) fail("expected '[index]' after ';' in update form");
      expect(Tok::kColon, "before update value");
      ExprPtr value = expr();
      expect(Tok::kRParen, "to close update form");
      return build_update(first, path, 0, std::move(value), loc);
    }
    // Sequence-literal ascription: ( [..] : seq(T) ). Needed to type empty
    // literals; propagates elementwise into nested literals.
    if (accept(Tok::kColon)) {
      TypePtr t = type();
      expect(Tok::kRParen, "to close ascribed literal");
      return propagate_seq_type(first, t, loc);
    }
    if (accept(Tok::kComma)) {
      std::vector<ExprPtr> elems;
      elems.push_back(std::move(first));
      do {
        elems.push_back(expr());
      } while (accept(Tok::kComma));
      expect(Tok::kRParen, "to close tuple");
      return make_expr(TupleExpr{std::move(elems)}, nullptr, loc);
    }
    expect(Tok::kRParen, "to close parenthesized expression");
    return first;
  }

  /// '[' already consumed: range, iterator, or sequence literal.
  ExprPtr bracket_expr(SourceLoc loc) {
    // Iterator: [ IDENT <- ... ]
    if (peek().kind == Tok::kIdent && peek(1).kind == Tok::kLeftArrow) {
      std::string var = advance().text;
      advance();  // <-
      ExprPtr domain = expr();
      ExprPtr filter;
      if (accept(Tok::kBar)) filter = expr();
      expect(Tok::kColon, "before iterator body");
      ExprPtr body = expr();
      expect(Tok::kRBracket, "to close iterator");
      return make_expr(Iterator{std::move(var), std::move(domain),
                                std::move(filter), std::move(body)},
                       nullptr, loc);
    }
    if (accept(Tok::kRBracket)) {
      // Untyped empty literal: legal when the element type is inferable
      // from siblings or an ascription; the checker rejects it otherwise.
      return make_expr(SeqExpr{}, nullptr, loc);
    }
    ExprPtr first = expr();
    if (accept(Tok::kDotDot)) {
      ExprPtr hi = expr();
      expect(Tok::kRBracket, "to close range");
      return prim_call("range", {std::move(first), std::move(hi)}, loc);
    }
    std::vector<ExprPtr> elems;
    elems.push_back(std::move(first));
    while (accept(Tok::kComma)) elems.push_back(expr());
    expect(Tok::kRBracket, "to close sequence literal");
    SeqExpr lit;
    lit.elems = std::move(elems);
    return make_expr(std::move(lit), nullptr, loc);
  }

  /// Desugars the deep update (s; [i1]...[ik] : v) of Table 2 into nested
  /// single-level updates:
  ///   (s; [i] : v)    = update(s, i, v)
  ///   (s; [i]p : v)   = let a = s in let b = i in
  ///                     update(a, b, (a[b]; p : v))
  ExprPtr build_update(ExprPtr seq, const std::vector<ExprPtr>& path,
                       std::size_t k, ExprPtr value, SourceLoc loc) {
    if (k + 1 == path.size()) {
      return prim_call("update", {std::move(seq), path[k], std::move(value)},
                       loc);
    }
    std::string a = "_tupd" + std::to_string(++update_counter_);
    std::string b = "_tupi" + std::to_string(update_counter_);
    ExprPtr avar = make_expr(VarRef{a, false}, nullptr, loc);
    ExprPtr bvar = make_expr(VarRef{b, false}, nullptr, loc);
    ExprPtr elem = prim_call("seq_index", {avar, bvar}, loc);
    ExprPtr inner =
        build_update(std::move(elem), path, k + 1, std::move(value), loc);
    ExprPtr updated = prim_call("update", {avar, bvar, std::move(inner)}, loc);
    ExprPtr with_b = make_expr(Let{b, path[k], std::move(updated)}, nullptr,
                               loc);
    return make_expr(Let{a, std::move(seq), std::move(with_b)}, nullptr, loc);
  }

  int update_counter_ = 0;

  /// Pushes an ascribed sequence type down into a (possibly nested)
  /// sequence literal, filling elem_type fields.
  ExprPtr propagate_seq_type(const ExprPtr& e, const TypePtr& t,
                             SourceLoc loc) {
    const auto* lit = as<SeqExpr>(e);
    if (lit == nullptr) {
      fail("type ascription is only supported on sequence literals");
    }
    if (!t->is_seq()) {
      fail("sequence literal ascribed the non-sequence type " + to_string(t));
    }
    SeqExpr out;
    out.elem_type = t->elem();
    out.elems.reserve(lit->elems.size());
    for (const ExprPtr& elem : lit->elems) {
      if (as<SeqExpr>(elem) != nullptr && t->elem()->is_seq()) {
        out.elems.push_back(propagate_seq_type(elem, t->elem(), elem->loc));
      } else {
        out.elems.push_back(elem);
      }
    }
    return make_expr(std::move(out), t, loc);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  int depth_ = 0;  ///< current grammar-recursion depth (expr/type)
};

}  // namespace

Program parse_program(std::string_view source) {
  return Parser(source).program();
}

ExprPtr parse_expression(std::string_view source) {
  return Parser(source).expression_only();
}

TypePtr parse_type(std::string_view source) {
  return Parser(source).type_only();
}

}  // namespace proteus::lang
