#include "lang/typecheck.hpp"

#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "vl/check.hpp"

namespace proteus::lang {

namespace {

[[noreturn]] void type_fail(SourceLoc loc, const std::string& msg) {
  throw TypeError("type error at " + std::to_string(loc.line) + ":" +
                  std::to_string(loc.column) + ": " + msg);
}

std::string describe_args(const std::vector<TypePtr>& args) {
  std::string s = "(";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) s += ", ";
    s += to_string(args[i]);
  }
  return s + ")";
}

class Checker {
 public:
  explicit Checker(const Program& input) : input_(input) {
    // Phase 1: record the signature of every function whose result type is
    // declared (these support recursion and forward references).
    for (const FunDef& f : input.functions) {
      PROTEUS_REQUIRE(TypeError, !is_reserved(f.name),
                      "function name '" + f.name +
                          "' collides with a primitive");
      PROTEUS_REQUIRE(TypeError, known_names_.insert(f.name).second,
                      "duplicate function definition '" + f.name + "'");
      if (f.result != nullptr) {
        fun_types_[f.name] = signature(f);
      }
    }
  }

  Program run() {
    for (const FunDef& f : input_.functions) {
      check_function(f);
    }
    return std::move(output_);
  }

  ExprPtr check_standalone(const ExprPtr& expr, Program* lifted_out) {
    // All input functions are assumed already checked: import them.
    for (const FunDef& f : input_.functions) {
      PROTEUS_REQUIRE(TypeError, f.result != nullptr,
                      "typecheck_expression requires a checked program");
      fun_types_[f.name] = signature(f);
    }
    current_fun_ = "toplevel";
    ExprPtr typed = check(expr);
    if (lifted_out != nullptr) *lifted_out = std::move(output_);
    return typed;
  }

 private:
  static TypePtr signature(const FunDef& f) {
    std::vector<TypePtr> params;
    params.reserve(f.params.size());
    for (const Param& p : f.params) {
      PROTEUS_REQUIRE(TypeError, p.type != nullptr,
                      "parameter '" + p.name + "' of '" + f.name +
                          "' lacks a type annotation");
      params.push_back(p.type);
    }
    return Type::fun(std::move(params), f.result);
  }

  static bool is_reserved(const std::string& name) {
    Prim p;
    return lookup_prim(name, &p);
  }

  void check_function(const FunDef& f) {
    current_fun_ = f.name;
    scopes_.clear();
    push_scope();
    for (const Param& p : f.params) {
      PROTEUS_REQUIRE(TypeError, !is_reserved(p.name) &&
                          !known_names_.contains(p.name),
                      "parameter '" + p.name +
                          "' shadows a function or primitive");
      declare(p.name, p.type, f.loc);
    }
    ExprPtr body = check(f.body);
    pop_scope();

    FunDef out = f;
    out.body = body;
    if (out.result == nullptr) {
      out.result = body->type;
      fun_types_[out.name] = signature(out);
    } else {
      PROTEUS_REQUIRE(
          TypeError, equal(out.result, body->type),
          "body of '" + f.name + "' has type " + to_string(body->type) +
              " but the declared result type is " + to_string(out.result));
    }
    output_.functions.push_back(std::move(out));
  }

  // --- scope management ------------------------------------------------------

  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }

  void declare(const std::string& name, TypePtr type, SourceLoc loc) {
    if (is_reserved(name) || known_names_.contains(name)) {
      type_fail(loc, "'" + name + "' shadows a function or primitive name");
    }
    scopes_.back()[name] = std::move(type);
  }

  [[nodiscard]] const TypePtr* lookup_var(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

  // --- expression checking ---------------------------------------------------

  ExprPtr check(const ExprPtr& e) {
    return std::visit([&](const auto& node) { return check_node(node, e); },
                      e->node);
  }

  ExprPtr check_node(const IntLit& n, const ExprPtr& e) {
    return make_expr(n, Type::int_(), e->loc);
  }

  ExprPtr check_node(const RealLit& n, const ExprPtr& e) {
    return make_expr(n, Type::real(), e->loc);
  }

  ExprPtr check_node(const BoolLit& n, const ExprPtr& e) {
    return make_expr(n, Type::bool_(), e->loc);
  }

  ExprPtr check_node(const VarRef& n, const ExprPtr& e) {
    if (const TypePtr* t = lookup_var(n.name)) {
      return make_expr(VarRef{n.name, false}, *t, e->loc);
    }
    auto fn = fun_types_.find(n.name);
    if (fn != fun_types_.end()) {
      return make_expr(VarRef{n.name, true}, fn->second, e->loc);
    }
    Prim p;
    if (lookup_prim(n.name, &p)) {
      type_fail(e->loc, "primitive '" + n.name +
                            "' cannot be used as a value; wrap it in a fun");
    }
    if (known_names_.contains(n.name)) {
      type_fail(e->loc,
                "function '" + n.name +
                    "' is referenced before its result type is known; "
                    "annotate its result type to allow forward references");
    }
    type_fail(e->loc, "unknown identifier '" + n.name + "'");
  }

  ExprPtr check_node(const Let& n, const ExprPtr& e) {
    ExprPtr init = check(n.init);
    push_scope();
    declare(n.var, init->type, e->loc);
    ExprPtr body = check(n.body);
    pop_scope();
    TypePtr t = body->type;
    return make_expr(Let{n.var, std::move(init), std::move(body)},
                     std::move(t), e->loc);
  }

  ExprPtr check_node(const If& n, const ExprPtr& e) {
    ExprPtr cond = check(n.cond);
    if (!equal(cond->type, Type::bool_())) {
      type_fail(e->loc,
                "if condition has type " + to_string(cond->type) +
                    ", expected bool");
    }
    ExprPtr then_e = check(n.then_expr);
    ExprPtr else_e = check(n.else_expr);
    if (!equal(then_e->type, else_e->type)) {
      type_fail(e->loc, "if branches have different types: " +
                            to_string(then_e->type) + " vs " +
                            to_string(else_e->type));
    }
    TypePtr t = then_e->type;
    return make_expr(If{std::move(cond), std::move(then_e), std::move(else_e)},
                     std::move(t), e->loc);
  }

  ExprPtr check_node(const Iterator& n, const ExprPtr& e) {
    ExprPtr domain = check(n.domain);
    if (!domain->type->is_seq()) {
      type_fail(e->loc, "iterator domain has type " + to_string(domain->type) +
                            ", expected a sequence");
    }
    push_scope();
    declare(n.var, domain->type->elem(), e->loc);
    ExprPtr filter;
    if (n.filter != nullptr) {
      filter = check(n.filter);
      if (!equal(filter->type, Type::bool_())) {
        type_fail(e->loc, "iterator filter has type " +
                              to_string(filter->type) + ", expected bool");
      }
    }
    ExprPtr body = check(n.body);
    pop_scope();
    TypePtr t = Type::seq(body->type);
    return make_expr(Iterator{n.var, std::move(domain), std::move(filter),
                              std::move(body)},
                     std::move(t), e->loc);
  }

  ExprPtr check_node(const Call& n, const ExprPtr& e) {
    std::vector<ExprPtr> args;
    args.reserve(n.args.size());
    std::vector<TypePtr> arg_types;
    arg_types.reserve(n.args.size());
    for (const ExprPtr& a : n.args) {
      args.push_back(check(a));
      arg_types.push_back(args.back()->type);
    }

    // Case 1: callee is a bare name — a primitive, a known function, or a
    // function-typed local variable.
    if (const auto* var = as<VarRef>(n.callee)) {
      if (const TypePtr* vt = lookup_var(var->name)) {
        return finish_indirect(
            make_expr(VarRef{var->name, false}, *vt, n.callee->loc),
            std::move(args), arg_types, e->loc);
      }
      Prim p;
      if (lookup_prim(var->name, &p)) {
        TypePtr result = resolve_prim(p, arg_types, e->loc);
        return make_expr(PrimCall{p, 0, std::move(args), {}}, std::move(result),
                         e->loc);
      }
      auto fn = fun_types_.find(var->name);
      if (fn != fun_types_.end()) {
        check_call_args(fn->second, arg_types, var->name, e->loc);
        TypePtr result = fn->second->result();
        return make_expr(FunCall{var->name, 0, std::move(args), {}},
                         std::move(result), e->loc);
      }
      if (known_names_.contains(var->name)) {
        type_fail(e->loc,
                  "function '" + var->name +
                      "' is called before its result type is known; "
                      "annotate its result type to allow this");
      }
      type_fail(e->loc, "unknown function '" + var->name + "'");
    }

    // Case 2: callee is a lambda — lift it and call the lifted name.
    if (as<LambdaExpr>(n.callee) != nullptr) {
      ExprPtr lifted = check(n.callee);  // VarRef to the lifted definition
      const auto* ref = as<VarRef>(lifted);
      check_call_args(lifted->type, arg_types, ref->name, e->loc);
      TypePtr result = lifted->type->result();
      return make_expr(FunCall{ref->name, 0, std::move(args), {}},
                       std::move(result), e->loc);
    }

    // Case 3: arbitrary function-valued expression.
    return finish_indirect(check(n.callee), std::move(args), arg_types,
                           e->loc);
  }

  ExprPtr finish_indirect(ExprPtr fn, std::vector<ExprPtr> args,
                          const std::vector<TypePtr>& arg_types,
                          SourceLoc loc) {
    if (!fn->type->is_fun()) {
      type_fail(loc, "applied expression has type " + to_string(fn->type) +
                         ", expected a function");
    }
    check_call_args(fn->type, arg_types, "<function value>", loc);
    TypePtr result = fn->type->result();
    return make_expr(IndirectCall{std::move(fn), 0, std::move(args), {}},
                     std::move(result), loc);
  }

  void check_call_args(const TypePtr& fn_type,
                       const std::vector<TypePtr>& args,
                       const std::string& name, SourceLoc loc) {
    std::vector<TypePtr> params = fn_type->params();
    if (params.size() != args.size()) {
      type_fail(loc, "'" + name + "' expects " +
                         std::to_string(params.size()) + " argument(s), got " +
                         std::to_string(args.size()));
    }
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (!equal(params[i], args[i])) {
        type_fail(loc, "argument " + std::to_string(i + 1) + " of '" + name +
                           "' has type " + to_string(args[i]) + ", expected " +
                           to_string(params[i]));
      }
    }
  }

  ExprPtr check_node(const PrimCall& n, const ExprPtr& e) {
    // Re-checking already-resolved code (e.g. transformed programs).
    std::vector<ExprPtr> args;
    std::vector<TypePtr> arg_types;
    for (const ExprPtr& a : n.args) {
      args.push_back(check(a));
      arg_types.push_back(args.back()->type);
    }
    if (n.op == Prim::kEmptyFrame) {
      PROTEUS_REQUIRE(TypeError, e->type != nullptr,
                      "empty_frame node lacks a type annotation");
      return make_expr(PrimCall{n.op, n.depth, std::move(args), n.lifted}, e->type,
                       e->loc);
    }
    PROTEUS_REQUIRE(TypeError, n.depth == 0,
                    "cannot re-check a depth-extended primitive call");
    TypePtr result = resolve_prim(n.op, arg_types, e->loc);
    return make_expr(PrimCall{n.op, 0, std::move(args), {}}, std::move(result),
                     e->loc);
  }

  ExprPtr check_node(const FunCall& n, const ExprPtr& e) {
    PROTEUS_REQUIRE(TypeError, n.depth == 0,
                    "cannot re-check a depth-extended function call");
    std::vector<ExprPtr> args;
    std::vector<TypePtr> arg_types;
    for (const ExprPtr& a : n.args) {
      args.push_back(check(a));
      arg_types.push_back(args.back()->type);
    }
    auto fn = fun_types_.find(n.name);
    if (fn == fun_types_.end()) {
      type_fail(e->loc, "unknown function '" + n.name + "'");
    }
    check_call_args(fn->second, arg_types, n.name, e->loc);
    TypePtr result = fn->second->result();
    return make_expr(FunCall{n.name, 0, std::move(args), {}}, std::move(result),
                     e->loc);
  }

  ExprPtr check_node(const IndirectCall& n, const ExprPtr& e) {
    std::vector<ExprPtr> args;
    std::vector<TypePtr> arg_types;
    for (const ExprPtr& a : n.args) {
      args.push_back(check(a));
      arg_types.push_back(args.back()->type);
    }
    return finish_indirect(check(n.fn), std::move(args), arg_types, e->loc);
  }

  ExprPtr check_node(const TupleExpr& n, const ExprPtr& e) {
    std::vector<ExprPtr> elems;
    std::vector<TypePtr> types;
    for (const ExprPtr& el : n.elems) {
      elems.push_back(check(el));
      types.push_back(elems.back()->type);
    }
    TypePtr t = Type::tuple(std::move(types));
    return make_expr(TupleExpr{std::move(elems)}, std::move(t), e->loc);
  }

  ExprPtr check_node(const TupleGet& n, const ExprPtr& e) {
    ExprPtr tuple = check(n.tuple);
    if (!tuple->type->is_tuple()) {
      type_fail(e->loc, "component extraction from non-tuple type " +
                            to_string(tuple->type));
    }
    const auto& comps = tuple->type->components();
    if (n.index < 1 || static_cast<std::size_t>(n.index) > comps.size()) {
      type_fail(e->loc, "tuple component index " + std::to_string(n.index) +
                            " out of range (tuple has " +
                            std::to_string(comps.size()) + " components)");
    }
    TypePtr t = comps[static_cast<std::size_t>(n.index - 1)];
    return make_expr(TupleGet{std::move(tuple), n.index}, std::move(t),
                     e->loc);
  }

  /// True for a bare `[]` whose element type is not yet known.
  static bool is_untyped_empty_literal(const ExprPtr& el) {
    const auto* lit = as<SeqExpr>(el);
    return lit != nullptr && lit->elems.empty() && lit->elem_type == nullptr;
  }

  ExprPtr check_node(const SeqExpr& n, const ExprPtr& e) {
    // Two passes so bare `[]` elements can take their type from siblings
    // (e.g. [[1],[],[2]]); a lone `[]` still needs an ascription.
    std::vector<ExprPtr> elems(n.elems.size());
    TypePtr elem_type = n.elem_type;
    for (std::size_t i = 0; i < n.elems.size(); ++i) {
      if (is_untyped_empty_literal(n.elems[i])) continue;
      elems[i] = check(n.elems[i]);
      if (elem_type == nullptr) elem_type = elems[i]->type;
    }
    if (elem_type == nullptr) {
      type_fail(e->loc,
                "empty sequence literal lacks an element type; ascribe it: "
                "([...] : seq(T))");
    }
    for (std::size_t i = 0; i < n.elems.size(); ++i) {
      if (elems[i] != nullptr) continue;
      if (!elem_type->is_seq()) {
        type_fail(n.elems[i]->loc,
                  "empty sequence element in a sequence of non-sequence "
                  "elements (" +
                      to_string(elem_type) + ")");
      }
      elems[i] = make_expr(SeqExpr{{}, elem_type->elem(), 0}, elem_type,
                           n.elems[i]->loc);
    }
    for (const ExprPtr& el : elems) {
      if (!equal(el->type, elem_type)) {
        type_fail(e->loc, "sequence literal is not homogeneous: element of "
                          "type " +
                              to_string(el->type) + " in a sequence of " +
                              to_string(elem_type));
      }
    }
    PROTEUS_REQUIRE(TypeError, !elem_type->is_fun(),
                    "sequences of function values cannot be constructed");
    TypePtr t = Type::seq(elem_type);
    return make_expr(SeqExpr{std::move(elems), elem_type}, std::move(t),
                     e->loc);
  }

  ExprPtr check_node(const LambdaExpr& n, const ExprPtr& e) {
    // Lambdas are fully parameterized: check the body in a fresh scope that
    // sees only the lambda's own parameters (and top-level functions).
    std::vector<std::unordered_map<std::string, TypePtr>> saved;
    saved.swap(scopes_);
    push_scope();
    for (std::size_t i = 0; i < n.params.size(); ++i) {
      PROTEUS_REQUIRE(TypeError, n.param_types[i] != nullptr,
                      "lambda parameter '" + n.params[i] +
                          "' lacks a type annotation");
      declare(n.params[i], n.param_types[i], e->loc);
    }
    ExprPtr body;
    try {
      body = check(n.body);
    } catch (const TypeError& err) {
      scopes_.swap(saved);
      throw TypeError(std::string(err.what()) +
                      " (note: lambdas are fully parameterized and cannot "
                      "reference enclosing variables)");
    }
    pop_scope();
    scopes_.swap(saved);

    // Lift to a fresh top-level definition and refer to it by name.
    std::string name =
        current_fun_ + "_lam" + std::to_string(++lambda_counter_);
    FunDef def;
    def.name = name;
    for (std::size_t i = 0; i < n.params.size(); ++i) {
      def.params.push_back(Param{n.params[i], n.param_types[i]});
    }
    def.result = body->type;
    def.body = body;
    def.loc = e->loc;
    TypePtr fn_type = signature(def);
    fun_types_[name] = fn_type;
    known_names_.insert(name);
    output_.functions.push_back(std::move(def));
    return make_expr(VarRef{name, true}, std::move(fn_type), e->loc);
  }

  TypePtr resolve_prim(Prim op, const std::vector<TypePtr>& args,
                       SourceLoc loc) {
    try {
      return prim_result_type(op, args);
    } catch (const TypeError& err) {
      type_fail(loc, err.what());
    }
  }

  const Program& input_;
  Program output_;
  std::unordered_map<std::string, TypePtr> fun_types_;
  std::unordered_set<std::string> known_names_;
  std::vector<std::unordered_map<std::string, TypePtr>> scopes_;
  std::string current_fun_;
  int lambda_counter_ = 0;
};

[[noreturn]] void no_overload(Prim op, const std::vector<TypePtr>& args) {
  throw TypeError(std::string("no overload of '") + prim_name(op) +
                  "' accepts " + describe_args(args));
}

void need_arity(Prim op, const std::vector<TypePtr>& args, std::size_t n) {
  if (args.size() != n) no_overload(op, args);
}

}  // namespace

TypePtr prim_result_type(Prim op, const std::vector<TypePtr>& args) {
  using K = TypeKind;
  auto is = [&](std::size_t i, K k) { return args[i]->kind() == k; };
  auto same = [&](std::size_t i, std::size_t j) {
    return equal(args[i], args[j]);
  };

  switch (op) {
    case Prim::kAdd:
    case Prim::kSub:
    case Prim::kMul:
    case Prim::kDiv:
      need_arity(op, args, 2);
      if (same(0, 1) && args[0]->is_numeric()) return args[0];
      no_overload(op, args);
    case Prim::kMod:
      need_arity(op, args, 2);
      if (is(0, K::kInt) && is(1, K::kInt)) return args[0];
      no_overload(op, args);
    case Prim::kNeg:
      need_arity(op, args, 1);
      if (args[0]->is_numeric()) return args[0];
      no_overload(op, args);
    case Prim::kMin:
    case Prim::kMax:
      need_arity(op, args, 2);
      if (same(0, 1) && args[0]->is_numeric()) return args[0];
      no_overload(op, args);
    case Prim::kEq:
    case Prim::kNe:
      need_arity(op, args, 2);
      if (same(0, 1) && args[0]->is_scalar()) return Type::bool_();
      no_overload(op, args);
    case Prim::kLt:
    case Prim::kLe:
    case Prim::kGt:
    case Prim::kGe:
      need_arity(op, args, 2);
      if (same(0, 1) && args[0]->is_numeric()) return Type::bool_();
      no_overload(op, args);
    case Prim::kAnd:
    case Prim::kOr:
      need_arity(op, args, 2);
      if (is(0, K::kBool) && is(1, K::kBool)) return Type::bool_();
      no_overload(op, args);
    case Prim::kNot:
      need_arity(op, args, 1);
      if (is(0, K::kBool)) return Type::bool_();
      no_overload(op, args);
    case Prim::kToReal:
      need_arity(op, args, 1);
      if (is(0, K::kInt)) return Type::real();
      no_overload(op, args);
    case Prim::kToInt:
      need_arity(op, args, 1);
      if (is(0, K::kReal)) return Type::int_();
      no_overload(op, args);
    case Prim::kSqrt:
      need_arity(op, args, 1);
      if (is(0, K::kReal)) return Type::real();
      no_overload(op, args);
    case Prim::kLength:
      need_arity(op, args, 1);
      if (is(0, K::kSeq)) return Type::int_();
      no_overload(op, args);
    case Prim::kRange:
      need_arity(op, args, 2);
      if (is(0, K::kInt) && is(1, K::kInt)) return Type::seq(Type::int_());
      no_overload(op, args);
    case Prim::kRange1:
      need_arity(op, args, 1);
      if (is(0, K::kInt)) return Type::seq(Type::int_());
      no_overload(op, args);
    case Prim::kRestrict:
      need_arity(op, args, 2);
      if (is(0, K::kSeq) && equal(args[1], Type::seq(Type::bool_()))) {
        return args[0];
      }
      no_overload(op, args);
    case Prim::kCombine:
      need_arity(op, args, 3);
      if (equal(args[0], Type::seq(Type::bool_())) && is(1, K::kSeq) &&
          same(1, 2)) {
        return args[1];
      }
      no_overload(op, args);
    case Prim::kDist:
      need_arity(op, args, 2);
      if (!args[0]->is_fun() && is(1, K::kInt)) return Type::seq(args[0]);
      no_overload(op, args);
    case Prim::kSeqIndex:
      need_arity(op, args, 2);
      if (is(0, K::kSeq) && is(1, K::kInt)) return args[0]->elem();
      no_overload(op, args);
    case Prim::kSeqIndexInner:
      need_arity(op, args, 2);
      if (is(0, K::kSeq) && equal(args[1], Type::seq(Type::int_()))) {
        return args[0];
      }
      no_overload(op, args);
    case Prim::kSeqUpdate:
      need_arity(op, args, 3);
      if (is(0, K::kSeq) && is(1, K::kInt) && equal(args[0]->elem(), args[2])) {
        return args[0];
      }
      no_overload(op, args);
    case Prim::kFlatten:
      need_arity(op, args, 1);
      if (is(0, K::kSeq) && args[0]->elem()->is_seq()) return args[0]->elem();
      no_overload(op, args);
    case Prim::kConcat:
      need_arity(op, args, 2);
      if (is(0, K::kSeq) && same(0, 1)) return args[0];
      no_overload(op, args);
    case Prim::kSum:
      need_arity(op, args, 1);
      if (is(0, K::kSeq) && args[0]->elem()->is_numeric()) {
        return args[0]->elem();
      }
      no_overload(op, args);
    case Prim::kMaxVal:
    case Prim::kMinVal:
      need_arity(op, args, 1);
      if (is(0, K::kSeq) && args[0]->elem()->is_numeric()) {
        return args[0]->elem();
      }
      no_overload(op, args);
    case Prim::kAnyV:
    case Prim::kAllV:
      need_arity(op, args, 1);
      if (equal(args[0], Type::seq(Type::bool_()))) return Type::bool_();
      no_overload(op, args);
    case Prim::kReverse:
      need_arity(op, args, 1);
      if (is(0, K::kSeq)) return args[0];
      no_overload(op, args);
    case Prim::kZip:
      need_arity(op, args, 2);
      if (is(0, K::kSeq) && is(1, K::kSeq) && !args[0]->elem()->is_fun() &&
          !args[1]->elem()->is_fun()) {
        return Type::seq(Type::tuple({args[0]->elem(), args[1]->elem()}));
      }
      no_overload(op, args);
    case Prim::kExtract: {
      // extract(frame, d): removes d Seq wrappers; d is an Int literal
      // argument whose value the transformation engine validates.
      need_arity(op, args, 2);
      no_overload(op, args);  // only constructed by xform with known types
    }
    case Prim::kInsert:
      need_arity(op, args, 3);
      no_overload(op, args);
    case Prim::kEmptyFrame:
      throw TypeError("empty_frame requires an explicit type annotation");
    case Prim::kAnyTrue:
      need_arity(op, args, 1);
      if (equal(seq_base(args[0]), Type::bool_()) && args[0]->is_seq()) {
        return Type::bool_();
      }
      no_overload(op, args);
  }
  no_overload(op, args);
}

Program typecheck(const Program& program) { return Checker(program).run(); }

ExprPtr typecheck_expression(const Program& program, const ExprPtr& expr,
                             Program* lifted_out) {
  return Checker(program).check_standalone(expr, lifted_out);
}

}  // namespace proteus::lang
