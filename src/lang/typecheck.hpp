// typecheck.hpp — static, monomorphic type checking and name resolution
// for P (Section 2 requires every expression's type to be static and
// monomorphic; overloading of the arithmetic primitives on Int/Real is
// resolved here).
//
// The checker
//   * resolves every Call node into PrimCall / FunCall / IndirectCall,
//   * annotates every expression with its type,
//   * lifts lambda expressions (which must be fully parameterized — no
//     free variables — per Section 2) into fresh top-level definitions,
//   * fills in omitted function result types (a result annotation is
//     required only for recursive and forward-referenced functions).
//
// Scoping rules: iterator and let variables may shadow each other and
// parameters, but may not shadow primitive or top-level function names
// (this keeps call resolution static, which the transformation relies on).
#pragma once

#include "lang/ast.hpp"

namespace proteus::lang {

/// Type-checks `program` and returns the checked (resolved, annotated,
/// lambda-lifted) program. Throws TypeError on failure.
[[nodiscard]] Program typecheck(const Program& program);

/// Type-checks a standalone expression against the functions of an
/// already-checked `program` (used for "run this expression" entry
/// points). Returns the typed expression.
[[nodiscard]] ExprPtr typecheck_expression(const Program& program,
                                           const ExprPtr& expr,
                                           Program* lifted_out = nullptr);

/// Result type of applying primitive `op` to arguments of the given
/// types; throws TypeError when no overload matches. `empty_frame_type`
/// supplies the result type for kEmptyFrame (which is not inferable from
/// its argument alone).
[[nodiscard]] TypePtr prim_result_type(Prim op,
                                       const std::vector<TypePtr>& args);

}  // namespace proteus::lang
