// token.hpp — lexical tokens of the concrete syntax of P.
//
// The concrete syntax follows the paper's notation in ASCII:
//
//   fun sqs(n: int): seq(int) = [i <- [1 .. n] : i * i]
//   fun oddsq(n: int) = [i <- [1 .. n] | 1 == (i mod 2) : sqs(i)]
//
// `<-` binds an iterator variable, `|` introduces the filter, `#e` is
// length, `e.k` tuple extraction, `[a .. b]` a range, `++` concatenation.
#pragma once

#include <string>

#include "lang/ast.hpp"

namespace proteus::lang {

enum class Tok : std::uint8_t {
  kEnd,
  kIdent,
  kIntLit,
  kRealLit,
  // keywords
  kFun,
  kLet,
  kIn,
  kIf,
  kThen,
  kElse,
  kTrue,
  kFalse,
  kAnd,
  kOr,
  kNot,
  kMod,
  // punctuation / operators
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kColon,
  kSemicolon,
  kDot,
  kDotDot,
  kHash,
  kBar,
  kAssign,      // =
  kArrow,       // ->
  kFatArrow,    // =>
  kLeftArrow,   // <-
  kPlus,
  kPlusPlus,
  kMinus,
  kStar,
  kSlash,
  kEqEq,
  kBangEq,
  kLt,
  kLe,
  kGt,
  kGe,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;     // identifier spelling / literal spelling
  vl::Int int_value = 0;
  vl::Real real_value = 0.0;
  SourceLoc loc;
};

/// Human-readable token name for diagnostics.
[[nodiscard]] std::string token_name(Tok t);

}  // namespace proteus::lang
