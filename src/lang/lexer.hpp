// lexer.hpp — hand-written scanner for the concrete syntax of P.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lang/token.hpp"

namespace proteus::lang {

/// Scans a whole source text into tokens (ending with a kEnd token).
/// Throws SyntaxError on malformed input. Comments run from `//` to end
/// of line.
[[nodiscard]] std::vector<Token> lex(std::string_view source);

}  // namespace proteus::lang
