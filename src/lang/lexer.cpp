#include "lang/lexer.hpp"

#include <cctype>
#include <charconv>
#include <unordered_map>

#include "vl/check.hpp"

namespace proteus::lang {

namespace {

const std::unordered_map<std::string_view, Tok>& keywords() {
  static const std::unordered_map<std::string_view, Tok> kw{
      {"fun", Tok::kFun},   {"let", Tok::kLet},     {"in", Tok::kIn},
      {"if", Tok::kIf},     {"then", Tok::kThen},   {"else", Tok::kElse},
      {"true", Tok::kTrue}, {"false", Tok::kFalse}, {"and", Tok::kAnd},
      {"or", Tok::kOr},     {"not", Tok::kNot},     {"mod", Tok::kMod},
  };
  return kw;
}

class Scanner {
 public:
  explicit Scanner(std::string_view src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    for (;;) {
      skip_trivia();
      Token t = next();
      const bool done = t.kind == Tok::kEnd;
      out.push_back(std::move(t));
      if (done) return out;
    }
  }

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_trivia() {
    for (;;) {
      while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) {
        advance();
      }
      if (peek() == '/' && peek(1) == '/') {
        while (!at_end() && peek() != '\n') advance();
        continue;
      }
      return;
    }
  }

  [[nodiscard]] SourceLoc here() const { return {line_, col_}; }

  [[noreturn]] void fail(const std::string& msg) const {
    throw SyntaxError("lex error at " + std::to_string(line_) + ":" +
                      std::to_string(col_) + ": " + msg);
  }

  Token make(Tok kind, SourceLoc loc, std::string text = {}) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.loc = loc;
    return t;
  }

  Token next() {
    SourceLoc loc = here();
    if (at_end()) return make(Tok::kEnd, loc);

    char c = peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return identifier(loc);
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return number(loc);
    }

    advance();
    switch (c) {
      case '(':
        return make(Tok::kLParen, loc);
      case ')':
        return make(Tok::kRParen, loc);
      case '[':
        return make(Tok::kLBracket, loc);
      case ']':
        return make(Tok::kRBracket, loc);
      case ',':
        return make(Tok::kComma, loc);
      case ':':
        return make(Tok::kColon, loc);
      case ';':
        return make(Tok::kSemicolon, loc);
      case '#':
        return make(Tok::kHash, loc);
      case '|':
        return make(Tok::kBar, loc);
      case '.':
        if (peek() == '.') {
          advance();
          return make(Tok::kDotDot, loc);
        }
        return make(Tok::kDot, loc);
      case '+':
        if (peek() == '+') {
          advance();
          return make(Tok::kPlusPlus, loc);
        }
        return make(Tok::kPlus, loc);
      case '-':
        if (peek() == '>') {
          advance();
          return make(Tok::kArrow, loc);
        }
        return make(Tok::kMinus, loc);
      case '*':
        return make(Tok::kStar, loc);
      case '/':
        return make(Tok::kSlash, loc);
      case '=':
        if (peek() == '=') {
          advance();
          return make(Tok::kEqEq, loc);
        }
        if (peek() == '>') {
          advance();
          return make(Tok::kFatArrow, loc);
        }
        return make(Tok::kAssign, loc);
      case '!':
        if (peek() == '=') {
          advance();
          return make(Tok::kBangEq, loc);
        }
        fail("expected '=' after '!'");
      case '<':
        if (peek() == '-') {
          advance();
          return make(Tok::kLeftArrow, loc);
        }
        if (peek() == '=') {
          advance();
          return make(Tok::kLe, loc);
        }
        return make(Tok::kLt, loc);
      case '>':
        if (peek() == '=') {
          advance();
          return make(Tok::kGe, loc);
        }
        return make(Tok::kGt, loc);
      default:
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  Token identifier(SourceLoc loc) {
    std::size_t start = pos_;
    while (!at_end() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                         peek() == '_' || peek() == '^')) {
      advance();
    }
    std::string text(src_.substr(start, pos_ - start));
    auto it = keywords().find(text);
    if (it != keywords().end()) return make(it->second, loc);
    Token t = make(Tok::kIdent, loc, std::move(text));
    return t;
  }

  Token number(SourceLoc loc) {
    std::size_t start = pos_;
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
      advance();
    }
    // A '.' is part of the number only when followed by a digit ("1..n"
    // must lex as 1 then "..").
    bool is_real = false;
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      is_real = true;
      advance();
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        advance();
      }
    }
    if (peek() == 'e' || peek() == 'E') {
      std::size_t mark = pos_;
      advance();
      if (peek() == '+' || peek() == '-') advance();
      if (std::isdigit(static_cast<unsigned char>(peek()))) {
        is_real = true;
        while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
          advance();
        }
      } else {
        pos_ = mark;  // 'e' begins an identifier, not an exponent
      }
    }
    std::string text(src_.substr(start, pos_ - start));
    Token t = make(is_real ? Tok::kRealLit : Tok::kIntLit, loc, text);
    if (is_real) {
      t.real_value = std::stod(text);
    } else {
      vl::Int value = 0;
      auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), value);
      if (ec != std::errc{} || ptr != text.data() + text.size()) {
        fail("integer literal out of range: " + text);
      }
      t.int_value = value;
    }
    return t;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view source) {
  return Scanner(source).run();
}

std::string token_name(Tok t) {
  switch (t) {
    case Tok::kEnd:
      return "end of input";
    case Tok::kIdent:
      return "identifier";
    case Tok::kIntLit:
      return "integer literal";
    case Tok::kRealLit:
      return "real literal";
    case Tok::kFun:
      return "'fun'";
    case Tok::kLet:
      return "'let'";
    case Tok::kIn:
      return "'in'";
    case Tok::kIf:
      return "'if'";
    case Tok::kThen:
      return "'then'";
    case Tok::kElse:
      return "'else'";
    case Tok::kTrue:
      return "'true'";
    case Tok::kFalse:
      return "'false'";
    case Tok::kAnd:
      return "'and'";
    case Tok::kOr:
      return "'or'";
    case Tok::kNot:
      return "'not'";
    case Tok::kMod:
      return "'mod'";
    case Tok::kLParen:
      return "'('";
    case Tok::kRParen:
      return "')'";
    case Tok::kLBracket:
      return "'['";
    case Tok::kRBracket:
      return "']'";
    case Tok::kComma:
      return "','";
    case Tok::kColon:
      return "':'";
    case Tok::kSemicolon:
      return "';'";
    case Tok::kDot:
      return "'.'";
    case Tok::kDotDot:
      return "'..'";
    case Tok::kHash:
      return "'#'";
    case Tok::kBar:
      return "'|'";
    case Tok::kAssign:
      return "'='";
    case Tok::kArrow:
      return "'->'";
    case Tok::kFatArrow:
      return "'=>'";
    case Tok::kLeftArrow:
      return "'<-'";
    case Tok::kPlus:
      return "'+'";
    case Tok::kPlusPlus:
      return "'++'";
    case Tok::kMinus:
      return "'-'";
    case Tok::kStar:
      return "'*'";
    case Tok::kSlash:
      return "'/'";
    case Tok::kEqEq:
      return "'=='";
    case Tok::kBangEq:
      return "'!='";
    case Tok::kLt:
      return "'<'";
    case Tok::kLe:
      return "'<='";
    case Tok::kGt:
      return "'>'";
    case Tok::kGe:
      return "'>='";
  }
  return "<token>";
}

}  // namespace proteus::lang
