// trap.hpp — the serve-layer lifecycle-trap taxonomy of proteusd
// (docs/SERVING.md "Overload & lifecycle").
//
// The runtime governor's T001–T008 codes (rt/trap.hpp) classify what can
// go wrong *inside* an evaluation; the S001–S008 codes here classify what
// can go wrong *around* one — at the connection and admission layer the
// paper's flattening machinery never has to think about. Unlike a
// RuntimeTrap these are not exceptions: an S-code is either rendered into
// a structured {"ok":false,"error":{...}} frame written to the offending
// connection before it is closed, or (for simulated peer failures) only
// counted, exactly as a real reset would leave no reply behind. Every
// occurrence is counted as serve.trap.S00x in the daemon's registry,
// mirroring the serve.trap.T00x rows of budget traps.
#pragma once

#include <cstdint>

namespace proteus::serve {

/// Stable serve-trap codes. Values are the numeric part of the "S00x"
/// code and must never be renumbered (tests, CI, and the docs key off
/// them, like the T00x table).
enum class ServeTrap : std::uint8_t {
  kOverload = 1,     ///< S001: admission refused — connection queue full
  kIdleTimeout = 2,  ///< S002: connection idle past the idle timeout
  kIoTimeout = 3,    ///< S003: read/write made no progress past the I/O timeout
  kLineTooLong = 4,  ///< S004: request line exceeded the per-line byte bound
  kDraining = 5,     ///< S005: server draining — connection retired unserved
  kInjectRead = 6,   ///< S006: injected socket-read fault (simulated reset)
  kInjectWrite = 7,  ///< S007: injected socket-write fault (broken pipe)
  kInjectStall = 8,  ///< S008: injected socket stall (simulated slowloris)
};

/// "S001" ... "S008".
[[nodiscard]] const char* serve_trap_code(ServeTrap t) noexcept;

/// Human-readable one-line reason for the code.
[[nodiscard]] const char* serve_trap_reason(ServeTrap t) noexcept;

/// The "kind" field of the error frame carrying this code
/// ("overload", "timeout", "bad_request", "draining", "io").
[[nodiscard]] const char* serve_trap_kind(ServeTrap t) noexcept;

/// True for traps a well-behaved client should retry after a backoff
/// (the busy/draining shedding frames, which carry retry_after_ms).
/// Timeouts and over-limit input are the client's own fault and would
/// recur verbatim.
[[nodiscard]] bool serve_trap_retryable(ServeTrap t) noexcept;

}  // namespace proteus::serve
