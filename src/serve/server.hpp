// server.hpp — proteusd's request engine: compile-once / evaluate-many
// serving of P programs over newline-delimited JSON (docs/SERVING.md).
//
// One Server owns one ModuleCache and one metrics aggregate; transports
// are thin shells around `handle_line` (one NDJSON request in, one NDJSON
// reply out):
//
//   * serve_stdio — single-threaded stdin/stdout loop (`proteusd
//     --stdio`): what the CI smoke job and the tests drive.
//   * serve_tcp — a listener plus a small worker pool; each worker owns
//     one connection at a time and calls handle_line per request line.
//     Admission is bounded (--max-queue/--max-conns: over-capacity
//     connections are shed with a structured S001 busy frame instead of
//     queueing without bound), every read/write is poll-guarded by the
//     idle/I/O timeouts and the per-line byte bound (S002–S004), and the
//     wrappers are fault-injectable (PROTEUS_FAULT=sock-read:N,...) for
//     chaos testing. See docs/SERVING.md "Overload & lifecycle".
//   * serve_metrics_http — an optional second listener (`--metrics-port`)
//     answering HTTP `GET /metrics` with the OpenMetrics exposition, so
//     a stock Prometheus can scrape the daemon.
//
// Lifecycle: the server runs, then either stops (request_stop — the
// {"op":"shutdown"} path: transports wind down after the in-flight
// request; queued connections are retired with an S005 frame) or drains
// (begin_drain — the SIGTERM/SIGINT path: stop accepting, serve
// everything in flight and queued for up to drain_ms, then stop).
// {"op":"health"} reports ok|draining|stopping plus queue depth for
// readiness probes.
//
// handle_line is fully thread-safe and is also the unit the concurrency
// tests hammer directly (no sockets needed): the cache is mutex-guarded,
// metrics go through a mutex-guarded MetricsRegistry (the registry itself
// is a plain map), and every evaluation runs inside its own
// rt::GovernorScope — per-request budgets on the worker's thread, traps
// returned as structured {"ok":false,"error":{...}} replies while the
// daemon keeps serving (the per-thread governor refactor in
// rt/governor.hpp is what makes budgets request-local).
//
// Telemetry (docs/OBSERVABILITY.md): every request gets a server-assigned
// `request_id` echoed in its reply, a latency observation into the
// serve.*.duration_us histograms (hit/miss split for evals), and — when
// structured logging is configured — one NDJSON log line. Requests
// sampled at `trace_sample_rate` additionally record their spans into a
// per-request tracer (obs::ThreadTracerScope, so concurrent workers never
// share a sink) kept in a bounded ring and served back as Chrome-trace
// JSON by {"op":"trace"} — a slow production request can be opened in
// Perfetto after the fact.
//
// Protocol (one JSON object per line; full schema in docs/SERVING.md):
//
//   {"op":"ping"}
//   {"op":"compile","source":"fun f(...)...","entry":"f(3)"?}
//   {"op":"eval","source":...|"key":"<16 hex>","fun":"f","args":["[1,2]"],
//    "budget":{"steps":..,"bytes":..,"depth":..,"deadline_ms":..}?}
//   {"op":"eval","source":...,"entry":"f(3)"}        (entry evaluation)
//   {"op":"metrics"}   {"op":"metrics","format":"openmetrics"}
//   {"op":"trace","request_id":"<16 hex>"?,"limit":N?}
//   {"op":"health"}
//   {"op":"shutdown"}
//
// Every request may carry an "id", echoed verbatim in the reply.
#pragma once

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <deque>
#include <istream>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "rt/governor.hpp"
#include "serve/cache.hpp"
#include "serve/json.hpp"
#include "serve/trap.hpp"

namespace proteus::serve {

struct ServerOptions {
  /// Run the VCODE optimizer on compiled programs (proteusd --no-optimize).
  bool optimize = true;
  /// Bytecode-verify assembled and disk-loaded modules (--no-verify).
  bool verify = true;
  /// Persistent module-cache directory; empty = in-memory only.
  std::string cache_dir;
  /// TCP worker threads (ignored by --stdio).
  int workers = 2;
  /// Ceiling applied to every request. A request's own "budget" object
  /// may only tighten these (a client cannot out-budget the daemon).
  rt::ExecBudget max_budget;
  /// Plan-backed arena execution for every eval (proteusd --arena):
  /// per-evaluation buffer recycling driven by the module's memory plan.
  bool arena = false;
  /// Plan-based admission control (proteusd --admission): evals whose
  /// static peak-resident bound exceeds the request's max_resident_bytes
  /// budget trap T001 before any work runs. See docs/SERVING.md.
  bool admission = false;
  /// Master switch for the per-request telemetry wrapper (request ids,
  /// histograms, logs, sampling). Off = PR 6 request path exactly
  /// (proteusd --no-telemetry; bench_obs_overhead's baseline).
  bool telemetry = true;
  /// Fraction of requests whose spans are recorded into the trace ring
  /// (0 = never, 1 = every request). Sampling is deterministic in the
  /// request sequence number, not random.
  double trace_sample_rate = 0.0;
  /// Bounded ring of most-recent sampled request traces served by
  /// {"op":"trace"}.
  std::size_t trace_ring_capacity = 32;

  // --- Overload protection & connection lifecycle (serve_tcp only; see
  // --- docs/SERVING.md "Overload & lifecycle"). 0 disables a knob.

  /// Maximum connections waiting for a worker (--max-queue). An accept
  /// beyond this is shed with a structured S001 busy frame instead of
  /// queueing without bound.
  int max_queue = 64;
  /// Maximum total accepted connections, queued + in service
  /// (--max-conns). 0 = bounded only by max_queue + workers.
  int max_conns = 0;
  /// Close a connection that sends nothing for this long (S002 frame).
  int idle_timeout_ms = 60000;
  /// Close a connection whose read/write makes no progress for this
  /// long mid-request (S003 frame). One stalled client can never pin a
  /// worker past this bound.
  int io_timeout_ms = 10000;
  /// Per-request-line byte bound; a newline-free or oversized line gets
  /// a structured S004 reply and the connection is closed.
  std::size_t max_line_bytes = 8u << 20;
  /// Grace period for begin_drain(): in-flight and queued requests are
  /// served for up to this long before the server stops.
  int drain_ms = 5000;
  /// retry_after_ms stamped into S001/S005 shedding frames — the busy
  /// client's backoff hint.
  int retry_after_ms = 100;
  /// Async-signal-safe external shutdown request: when non-null, the
  /// transports poll it and call begin_drain() once it becomes nonzero
  /// (proteusd points it at its SIGTERM/SIGINT flag).
  const volatile std::sig_atomic_t* shutdown_flag = nullptr;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});

  /// Handles one NDJSON request line, returns the reply line (without the
  /// trailing newline). Never throws; thread-safe.
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// Structured form of handle_line for in-process callers/tests. With
  /// telemetry on this is the per-request wrapper: request_id assignment,
  /// duration histograms, log line, trace sampling.
  [[nodiscard]] Json handle_request(const Json& request);

  /// Reads request lines from `in` until EOF or a shutdown request,
  /// writing one reply line per request to `out`. Returns 0 on a clean
  /// finish.
  int serve_stdio(std::istream& in, std::ostream& out);

  /// Binds `host:port` (port 0 picks a free port), announces
  /// "proteusd listening on <port>" on `announce`, then serves until a
  /// shutdown request. Returns 0 on a clean finish, 1 on socket failure.
  int serve_tcp(const std::string& host, int port, std::ostream& announce);

  /// Binds `host:port` and answers HTTP `GET /metrics` with the
  /// OpenMetrics exposition (anything else is a 404) until a shutdown
  /// request. Announces "proteusd metrics on <port>" on `announce`.
  /// Returns 0 on a clean finish, 1 on socket failure. Run it on its own
  /// thread next to serve_tcp/serve_stdio.
  int serve_metrics_http(const std::string& host, int port,
                         std::ostream& announce);

  /// Port serve_metrics_http bound (for tests); -1 until bound.
  [[nodiscard]] int metrics_http_port() const {
    return metrics_port_.load(std::memory_order_acquire);
  }

  /// Port serve_tcp bound (for tests); -1 until bound.
  [[nodiscard]] int tcp_port() const {
    return tcp_port_.load(std::memory_order_acquire);
  }

  /// Makes the transports wind down after the in-flight request.
  /// Queued-but-unserved connections are retired with an S005 frame.
  void request_stop() {
    lifecycle_.store(static_cast<int>(Lifecycle::kStopping),
                     std::memory_order_release);
  }
  [[nodiscard]] bool stopping() const {
    return lifecycle_.load(std::memory_order_acquire) ==
           static_cast<int>(Lifecycle::kStopping);
  }

  /// Flips a running server into draining mode: serve_tcp stops
  /// accepting, in-flight and queued requests are served for up to
  /// options().drain_ms, then the server stops. Idempotent; a no-op on a
  /// server that is already draining or stopping. This is what the
  /// SIGTERM/SIGINT handlers reach through ServerOptions::shutdown_flag.
  void begin_drain();
  [[nodiscard]] bool draining() const {
    return lifecycle_.load(std::memory_order_acquire) ==
           static_cast<int>(Lifecycle::kDraining);
  }

  /// Snapshot of the serve.* counters, histograms, and gauges
  /// (docs/OBSERVABILITY.md). The registry is copied under the lock;
  /// uptime/inflight gauges are stamped after.
  [[nodiscard]] obs::MetricsRegistry metrics() const;

  [[nodiscard]] const ServerOptions& options() const { return options_; }
  [[nodiscard]] ModuleCache& cache() { return cache_; }

 private:
  enum class Lifecycle : int { kRunning = 0, kDraining = 1, kStopping = 2 };

  /// Outcome of one poll-guarded socket operation.
  enum class IoStatus : std::uint8_t {
    kOk,       ///< progress was made
    kTimeout,  ///< no progress within the caller's timeout
    kClosed,   ///< orderly EOF from the peer
    kError,    ///< reset/injected fault/unrecoverable errno
    kStopped,  ///< the server stopped while waiting
  };

  /// One sampled request's recorded spans, kept for {"op":"trace"}.
  struct RequestTrace {
    std::string request_id;
    std::string op;
    std::uint64_t duration_us = 0;
    std::vector<obs::TraceEvent> events;
  };

  /// The op switch (ping/compile/eval/metrics/trace/health/shutdown)
  /// without the telemetry envelope.
  [[nodiscard]] Json dispatch_op(const Json& request);

  [[nodiscard]] Json do_compile(const Json& req);
  [[nodiscard]] Json do_eval(const Json& req);
  [[nodiscard]] Json do_metrics(const Json& req);
  [[nodiscard]] Json do_trace(const Json& req);
  [[nodiscard]] Json do_health(const Json& req);

  [[nodiscard]] bool accepting() const {
    return lifecycle_.load(std::memory_order_acquire) ==
           static_cast<int>(Lifecycle::kRunning);
  }
  /// Milliseconds left before the drain deadline: -1 when not draining,
  /// 0 once the deadline has passed.
  [[nodiscard]] int drain_remaining_ms() const;
  /// Observes options_.shutdown_flag (the signal handlers' flag) and
  /// begins draining when it is set.
  void poll_external_shutdown();

#if !defined(_WIN32)
  /// Serves one accepted TCP connection until EOF, timeout, over-limit
  /// input, fault, or lifecycle end. Closes the fd.
  void serve_connection(int fd);
  /// Poll-guarded single read: waits readable for up to timeout_ms
  /// (<0 = unbounded; serve_connection passes <=200ms slices so the
  /// lifecycle is re-checked promptly), then reads once. Injection point
  /// for sock-read (S006, acts as a reset) and sock-stall (S008, acts as
  /// a peer that will never progress — reclaimed without a reply).
  [[nodiscard]] IoStatus conn_read(int fd, char* buf, std::size_t cap,
                                   int timeout_ms, std::size_t* got);
  /// Poll-guarded full write of `data` with a per-progress timeout.
  /// Injection point for sock-write (acts as kError).
  [[nodiscard]] IoStatus conn_write(int fd, const std::string& data,
                                    int timeout_ms);
  /// Best-effort structured error frame for a connection being refused
  /// or retired (S001/S002/...): counted as serve.trap.S00x, written
  /// with a short timeout, never blocks the caller for long.
  void send_trap_frame(int fd, ServeTrap trap);
#endif

  /// Compiles (or cache-hits) the program of `req`; on failure fills
  /// `*error` with a structured error object and returns nullopt.
  [[nodiscard]] std::optional<CacheEntry> obtain(const Json& req,
                                                 std::uint64_t* key,
                                                 bool* cache_hit, Json* error);

  void count(const std::string& name, std::uint64_t delta = 1);
  void observe_metric(const std::string& name, std::uint64_t value);

  /// True when request number `seq` (1-based) is trace-sampled:
  /// deterministic, exactly rate-proportional over any prefix.
  [[nodiscard]] bool sampled(std::uint64_t seq) const;

  /// Records the telemetry of one finished request (histograms, log
  /// line, trace ring) and stamps `request_id` into the reply.
  [[nodiscard]] Json finish_request(const Json& request, Json reply,
                                    const std::string& request_id,
                                    const std::string& op,
                                    std::uint64_t duration_us,
                                    obs::Tracer* request_tracer);

  ServerOptions options_;
  ModuleCache cache_;
  mutable std::mutex metrics_mu_;
  obs::MetricsRegistry metrics_;
  // Latency histograms, pre-registered at construction so the request
  // path observes through stable pointers instead of name lookups.
  // Valid for the server's lifetime (metrics_ is never cleared);
  // observations still happen under metrics_mu_.
  obs::Histogram* h_request_us_ = nullptr;
  obs::Histogram* h_eval_us_ = nullptr;
  obs::Histogram* h_compile_us_ = nullptr;
  obs::Histogram* h_eval_hit_us_ = nullptr;
  obs::Histogram* h_eval_miss_us_ = nullptr;
  std::atomic<int> lifecycle_{static_cast<int>(Lifecycle::kRunning)};
  /// steady_clock epoch-ns of the drain deadline; 0 = not draining.
  std::atomic<std::int64_t> drain_deadline_ns_{0};
  std::atomic<std::uint64_t> queue_depth_{0};
  std::atomic<std::uint64_t> active_conns_{0};
  std::atomic<std::uint64_t> seq_{0};
  // Plan gauges from the most recent eval (point-in-time, like inflight).
  std::atomic<std::uint64_t> arena_slots_{0};
  std::atomic<std::uint64_t> arena_bytes_planned_{0};
  std::atomic<std::uint64_t> inflight_{0};
  std::chrono::steady_clock::time_point started_;
  std::uint64_t rid_base_ = 0;  ///< request-id namespace, fixed per process
  mutable std::mutex trace_mu_;
  std::deque<RequestTrace> trace_ring_;
  std::atomic<int> metrics_port_{-1};
  std::atomic<int> tcp_port_{-1};
};

}  // namespace proteus::serve
