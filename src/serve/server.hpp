// server.hpp — proteusd's request engine: compile-once / evaluate-many
// serving of P programs over newline-delimited JSON (docs/SERVING.md).
//
// One Server owns one ModuleCache and one metrics aggregate; transports
// are thin shells around `handle_line` (one NDJSON request in, one NDJSON
// reply out):
//
//   * serve_stdio — single-threaded stdin/stdout loop (`proteusd
//     --stdio`): what the CI smoke job and the tests drive.
//   * serve_tcp — a listener plus a small worker pool; each worker owns
//     one connection at a time and calls handle_line per request line.
//
// handle_line is fully thread-safe and is also the unit the concurrency
// tests hammer directly (no sockets needed): the cache is mutex-guarded,
// metrics go through a mutex-guarded MetricsRegistry (the registry itself
// is a plain map), and every evaluation runs inside its own
// rt::GovernorScope — per-request budgets on the worker's thread, traps
// returned as structured {"ok":false,"error":{...}} replies while the
// daemon keeps serving (the per-thread governor refactor in
// rt/governor.hpp is what makes budgets request-local).
//
// Protocol (one JSON object per line; full schema in docs/SERVING.md):
//
//   {"op":"ping"}
//   {"op":"compile","source":"fun f(...)...","entry":"f(3)"?}
//   {"op":"eval","source":...|"key":"<16 hex>","fun":"f","args":["[1,2]"],
//    "budget":{"steps":..,"bytes":..,"depth":..,"deadline_ms":..}?}
//   {"op":"eval","source":...,"entry":"f(3)"}        (entry evaluation)
//   {"op":"metrics"}   {"op":"shutdown"}
//
// Every request may carry an "id", echoed verbatim in the reply.
#pragma once

#include <atomic>
#include <cstdint>
#include <istream>
#include <mutex>
#include <ostream>
#include <string>

#include "obs/metrics.hpp"
#include "rt/governor.hpp"
#include "serve/cache.hpp"
#include "serve/json.hpp"

namespace proteus::serve {

struct ServerOptions {
  /// Run the VCODE optimizer on compiled programs (proteusd --no-optimize).
  bool optimize = true;
  /// Bytecode-verify assembled and disk-loaded modules (--no-verify).
  bool verify = true;
  /// Persistent module-cache directory; empty = in-memory only.
  std::string cache_dir;
  /// TCP worker threads (ignored by --stdio).
  int workers = 2;
  /// Ceiling applied to every request. A request's own "budget" object
  /// may only tighten these (a client cannot out-budget the daemon).
  rt::ExecBudget max_budget;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});

  /// Handles one NDJSON request line, returns the reply line (without the
  /// trailing newline). Never throws; thread-safe.
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// Structured form of handle_line for in-process callers/tests.
  [[nodiscard]] Json handle_request(const Json& request);

  /// Reads request lines from `in` until EOF or a shutdown request,
  /// writing one reply line per request to `out`. Returns 0 on a clean
  /// finish.
  int serve_stdio(std::istream& in, std::ostream& out);

  /// Binds `host:port` (port 0 picks a free port), announces
  /// "proteusd listening on <port>" on `announce`, then serves until a
  /// shutdown request. Returns 0 on a clean finish, 1 on socket failure.
  int serve_tcp(const std::string& host, int port, std::ostream& announce);

  /// Makes the transports wind down after the in-flight request.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool stopping() const {
    return stop_.load(std::memory_order_relaxed);
  }

  /// Snapshot of the serve.* counters (docs/OBSERVABILITY.md).
  [[nodiscard]] obs::MetricsRegistry metrics() const;

  [[nodiscard]] const ServerOptions& options() const { return options_; }
  [[nodiscard]] ModuleCache& cache() { return cache_; }

 private:
  [[nodiscard]] Json do_compile(const Json& req);
  [[nodiscard]] Json do_eval(const Json& req);
  [[nodiscard]] Json do_metrics();

  /// Compiles (or cache-hits) the program of `req`; on failure fills
  /// `*error` with a structured error object and returns nullopt.
  [[nodiscard]] std::optional<CacheEntry> obtain(const Json& req,
                                                 std::uint64_t* key,
                                                 bool* cache_hit, Json* error);

  void count(const std::string& name, std::uint64_t delta = 1);

  ServerOptions options_;
  ModuleCache cache_;
  mutable std::mutex metrics_mu_;
  obs::MetricsRegistry metrics_;
  std::atomic<bool> stop_{false};
};

}  // namespace proteus::serve
