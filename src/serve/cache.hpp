// cache.hpp — the compile-once module cache of the serving layer.
//
// Keyed by vm::source_hash(source, options_tag): the same program text
// under the same compile options always maps to the same key, across
// requests, connections, and (through the disk tier) process restarts.
//
// Two tiers:
//
//   * memory — the full xform::Compiled (shared_ptr, never copied): a hit
//     serves evaluation through a regular Session with the whole
//     degradation ladder available. This is the hot tier concurrent
//     requests share.
//   * disk (optional) — the serialized VCODE module image
//     (vm/module_io.hpp) under <dir>/<hex key>.pvcm: survives restarts
//     and is shared with `proteusc --module-cache`. A disk hit re-verifies
//     the image through the bytecode verifier and serves through
//     ModuleRunner (VM only — source forms are not on disk).
//
// All methods are safe to call from concurrent worker threads.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "vm/bytecode.hpp"
#include "xform/pipeline.hpp"

namespace proteus::serve {

/// One cached compilation. Exactly one of the two views may be missing:
/// `compiled` is null for entries rehydrated from a disk image.
struct CacheEntry {
  std::shared_ptr<const xform::Compiled> compiled;
  std::shared_ptr<const vm::Module> module;  ///< never null in a valid entry
};

class ModuleCache {
 public:
  /// `disk_dir` empty: memory-only. Otherwise the directory is created
  /// (best-effort) and used as the persistent tier.
  explicit ModuleCache(std::string disk_dir = {});

  /// Memory first, then disk. A disk hit is promoted into memory (as a
  /// module-only entry) so it pays verification once per process.
  /// `verify` gates load-time bytecode verification of disk images.
  [[nodiscard]] std::optional<CacheEntry> lookup(std::uint64_t key,
                                                 bool verify = true);

  /// Publishes `entry` under `key` (first writer wins — concurrent
  /// compilers of the same source race benignly) and, when a disk tier is
  /// configured, writes the module image. Returns the surviving entry.
  CacheEntry insert(std::uint64_t key, CacheEntry entry);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const std::string& disk_dir() const { return disk_dir_; }

 private:
  [[nodiscard]] std::string image_path(std::uint64_t key) const;

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, CacheEntry> entries_;
  std::string disk_dir_;
};

}  // namespace proteus::serve
