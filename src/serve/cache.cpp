#include "serve/cache.hpp"

#include <filesystem>
#include <string>

#if defined(_WIN32)
#include <process.h>
#else
#include <unistd.h>
#endif

#include "vm/module_io.hpp"

namespace proteus::serve {

namespace {

long current_pid() {
#if defined(_WIN32)
  return static_cast<long>(_getpid());
#else
  return static_cast<long>(::getpid());
#endif
}

}  // namespace

ModuleCache::ModuleCache(std::string disk_dir)
    : disk_dir_(std::move(disk_dir)) {
  if (!disk_dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(disk_dir_, ec);
    // A failure here degrades to memory-only behaviour: every disk probe
    // below simply misses. The daemon reports the configured directory at
    // startup so a typo is visible.
  }
}

std::string ModuleCache::image_path(std::uint64_t key) const {
  return disk_dir_ + "/" + vm::hash_hex(key) + ".pvcm";
}

std::optional<CacheEntry> ModuleCache::lookup(std::uint64_t key,
                                              bool verify) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) return it->second;
  }
  if (disk_dir_.empty()) return std::nullopt;
  vm::ModuleLoadResult loaded = vm::load_module_file(image_path(key), verify);
  if (!loaded.ok() || loaded.source_hash != key) {
    // Unreadable, corrupt, rejected by the verifier, or a hash-renamed
    // file: all are treated as a miss — the caller recompiles and the
    // insert below overwrites the bad image.
    return std::nullopt;
  }
  return insert(key, CacheEntry{nullptr, std::move(loaded.module)});
}

CacheEntry ModuleCache::insert(std::uint64_t key, CacheEntry entry) {
  bool won = false;
  CacheEntry surviving;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      it = entries_.emplace(key, std::move(entry)).first;
      won = true;
    } else if (it->second.compiled == nullptr && entry.compiled != nullptr) {
      // First writer wins, with one exception: a full compilation
      // upgrades a module-only entry rehydrated from disk, so later
      // evaluations of that source regain the degradation ladder.
      it->second = std::move(entry);
      won = true;
    }
    surviving = it->second;
  }
  if (won && !disk_dir_.empty() && surviving.module != nullptr) {
    // Crash-safe publication: write the image to a .tmp sibling and
    // rename it into place. rename(2) within a directory is atomic, so a
    // crash mid-write leaves only an orphaned .tmp — a concurrent (or
    // later) process can never load a torn .pvcm. The pid suffix keeps
    // two daemons on the same cache_dir from clobbering each other's
    // half-written temporaries.
    const std::string final_path = image_path(key);
    const std::string tmp_path =
        final_path + ".tmp." + std::to_string(current_pid());
    try {
      vm::write_module_file(tmp_path, *surviving.module, key);
      std::filesystem::rename(tmp_path, final_path);
    } catch (const Error&) {
      // Disk tier is best-effort; serving continues from memory.
      std::error_code ec;
      std::filesystem::remove(tmp_path, ec);
    } catch (const std::filesystem::filesystem_error&) {
      std::error_code ec;
      std::filesystem::remove(tmp_path, ec);
    }
  }
  return surviving;
}

std::size_t ModuleCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace proteus::serve
